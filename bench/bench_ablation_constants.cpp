// Ablation — how the protocol constants shape the leak: sweep the
// inactivity penalty quotient (Phase0's 2^26 vs Bellatrix's 2^24), the
// score bias and the ejection threshold, and report the induced ejection
// epochs, GST safety bound and the Figure 7 minimum beta0.
#include "bench/bench_common.hpp"

#include "src/analytic/solvers.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Ablation: protocol constants vs leak dynamics");
  Table t({"config", "quotient", "bias", "eject thr",
           "inactive eject", "semi eject", "GST bound", "min beta0"});
  struct Case {
    std::string name;
    analytic::AnalyticConfig cfg;
  };
  std::vector<Case> cases;
  cases.push_back({"paper (calibrated)", analytic::AnalyticConfig::paper()});
  cases.push_back({"paper (stated 16.75)", analytic::AnalyticConfig::stated()});
  cases.push_back({"mainnet (2^24, 16 ETH)", analytic::AnalyticConfig::mainnet()});
  {
    auto c = analytic::AnalyticConfig::paper();
    c.score_bias = 8.0;  // doubled inactivity bias
    cases.push_back({"bias 8", c});
  }
  {
    auto c = analytic::AnalyticConfig::paper();
    c.quotient = std::pow(2.0, 27);  // gentler leak
    cases.push_back({"quotient 2^27", c});
  }
  for (const auto& [name, cfg] : cases) {
    t.add_row({name, Table::fmt(std::log2(cfg.quotient), 0) + " (log2)",
               Table::fmt(cfg.score_bias, 0),
               Table::fmt(cfg.ejection_threshold, 4),
               Table::fmt(analytic::ejection_epoch(
                              analytic::Behavior::kInactive, cfg), 1),
               Table::fmt(analytic::ejection_epoch(
                              analytic::Behavior::kSemiActive, cfg), 1),
               Table::fmt(analytic::gst_safety_upper_bound(cfg), 1),
               Table::fmt(analytic::beta0_lower_bound(0.5, cfg), 4)});
  }
  bench::emit(t, "ablation_constants.csv");
  std::printf(
      "observations: a smaller quotient (mainnet 2^24) drains stake ~2x\n"
      "faster, halving the safety bound, while pure quotient rescalings\n"
      "leave the minimum beta0 invariant (it depends only on the\n"
      "semi-active/inactive decay ratio at the ejection epoch); changing\n"
      "the bias or the ejection threshold moves the bound slightly.\n");
}

void BM_GstBound(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::gst_safety_upper_bound(cfg));
  }
}
BENCHMARK(BM_GstBound);

void BM_Beta0LowerBound(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::mainnet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::beta0_lower_bound(0.5, cfg));
  }
}
BENCHMARK(BM_Beta0LowerBound);

}  // namespace

LEAK_BENCH_MAIN(report)
