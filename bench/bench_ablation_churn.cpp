// Ablation — the exit churn limit the paper abstracts away: mass
// ejections at the end of the leak are rate-limited to
// max(4, n/65536) per epoch, which smears Figure 3's jump and delays
// recovery.  Quantifies the gap between the paper's instantaneous
// ejection and the spec's queued exits, across validator-set sizes.
#include "bench/bench_common.hpp"

#include "src/penalties/churn.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Ablation: instantaneous ejection (paper) vs exit churn (spec)");
  Table t({"validators", "churn/epoch", "supermaj (instant)",
           "supermaj (churn)", "delay", "wave width (epochs)"});
  for (const std::uint32_t n : {500u, 1000u, 2000u}) {
    sim::PartitionSimConfig instant;
    instant.n_validators = n;
    instant.strategy = sim::Strategy::kNone;
    instant.max_epochs = 6000;
    const auto fast = sim::run_partition_sim(instant);

    sim::PartitionSimConfig churned = instant;
    churned.spec.use_churn_limit = true;
    const auto slow = sim::run_partition_sim(churned);

    // Wave width: inactive count / limit.
    const auto limit = penalties::churn_limit(n);
    const double width = static_cast<double>(n / 2) /
                         static_cast<double>(limit);
    t.add_row({std::to_string(n), std::to_string(limit),
               std::to_string(fast.branch[0].supermajority_epoch),
               std::to_string(slow.branch[0].supermajority_epoch),
               std::to_string(slow.branch[0].supermajority_epoch -
                              fast.branch[0].supermajority_epoch),
               Table::fmt(width, 0)});
  }
  bench::emit(t, "ablation_churn.csv");
  std::printf(
      "the supermajority slips by only a few epochs (the ratio is near\n"
      "2/3 when the wave starts) but the ejection wave itself stretches\n"
      "over n/2 / churn_limit epochs — at mainnet scale (~1M validators,\n"
      "limit 15) a full half-set ejection would take ~2 days of epochs,\n"
      "well beyond the paper's instantaneous-jump picture.\n");
}

void BM_ChurnQueueEpoch(benchmark::State& state) {
  chain::ValidatorRegistry reg(
      static_cast<std::uint32_t>(state.range(0)));
  penalties::ExitQueue q;
  for (std::uint32_t i = 0; i < reg.size() / 2; ++i) {
    q.request_exit(ValidatorIndex{i});
  }
  std::uint64_t epoch = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.process_epoch(reg, Epoch{epoch++}));
  }
}
BENCHMARK(BM_ChurnQueueEpoch)->Arg(1000)->Arg(10000);

}  // namespace

LEAK_BENCH_MAIN(report)
