// Fault-injection harness: cost of the FaultSchedule JSON contract
// (parse + validate + dump) and of the FaultDriver compilation paths,
// next to a small cascading-partition simulation.  The schedule is
// re-parsed for every sweep cell (it rides in the `faults` param), so
// its round-trip cost must stay negligible against even the cheapest
// cell runtime.
#include "bench/bench_common.hpp"

#include <string>

#include "src/faults/driver.hpp"
#include "src/faults/schedule.hpp"
#include "src/net/network.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

[[nodiscard]] faults::FaultSchedule cascade_schedule() {
  faults::FaultSchedule s =
      faults::FaultSchedule::staggered_partition(3, 100, 600, 150);
  s.events.push_back(faults::ValidatorOutage{900, 50, 0.25});
  return s;
}

[[nodiscard]] faults::FaultSchedule weather_schedule() {
  faults::FaultSchedule s;
  s.events.push_back(
      faults::LatencyEpisode{2.0, 2.0, faults::LinkClass::kAll, 3.0});
  s.events.push_back(
      faults::LossEpisode{4.0, 2.0, faults::LinkClass::kAll, 0.15});
  return s;
}

void report() {
  bench::print_header("Fault-injection harness: schedule compilation");
  const faults::FaultSchedule cascade = cascade_schedule();
  sim::PartitionSimConfig cfg;
  faults::compile_partition(cascade, &cfg);
  const std::string dumped = cascade.dump();
  Table t({"quantity", "value"});
  t.add_row({"cascade events", std::to_string(cascade.events.size())});
  t.add_row({"compiled branches", std::to_string(cfg.branches)});
  t.add_row({"compiled windows", std::to_string(cfg.windows.size())});
  t.add_row({"compiled outages", std::to_string(cfg.outages.size())});
  t.add_row({"dump bytes", std::to_string(dumped.size())});
  bench::emit(t, "fault_schedule.csv");
}

void BM_ScheduleParseValidate(benchmark::State& state) {
  const std::string text = cascade_schedule().dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(faults::FaultSchedule::from_string(text));
  }
}
BENCHMARK(BM_ScheduleParseValidate);

void BM_ScheduleDump(benchmark::State& state) {
  const faults::FaultSchedule s = cascade_schedule();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.dump());
  }
}
BENCHMARK(BM_ScheduleDump);

void BM_CompilePartition(benchmark::State& state) {
  const faults::FaultSchedule s = cascade_schedule();
  for (auto _ : state) {
    sim::PartitionSimConfig cfg;
    faults::compile_partition(s, &cfg);
    benchmark::DoNotOptimize(cfg);
  }
}
BENCHMARK(BM_CompilePartition);

void BM_ApplyNetwork(benchmark::State& state) {
  const faults::FaultSchedule s = weather_schedule();
  for (auto _ : state) {
    net::NetworkConfig cfg;
    cfg.num_nodes = 1;
    faults::apply_network(s, 384.0, &cfg);
    benchmark::DoNotOptimize(cfg);
  }
}
BENCHMARK(BM_ApplyNetwork);

/// The compiled cascading arc end to end: staggered opens, staggered
/// heals, one outage, re-entrant leak, full recovery tail.
void BM_CascadeSim(benchmark::State& state) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = static_cast<std::uint32_t>(state.range(0));
  cfg.max_epochs = 2000;
  cfg.trajectory_stride = cfg.max_epochs;
  faults::compile_partition(cascade_schedule(), &cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_partition_sim(cfg));
  }
}
BENCHMARK(BM_CascadeSim)->Arg(60)->Arg(120);

}  // namespace

LEAK_BENCH_MAIN(report)
