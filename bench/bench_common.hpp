// Shared helpers for the per-table / per-figure benchmark binaries.
// Every binary first prints its paper-reproduction report (the rows or
// series the paper reports, next to our computed values), then runs the
// google-benchmark timings of the underlying kernels.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "src/support/table.hpp"

namespace leak::bench {

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a table and optionally dump it as CSV (LEAK_BENCH_CSV=1).
inline void emit(const Table& table, const std::string& csv_name) {
  std::printf("%s", table.to_string().c_str());
  if (table.maybe_write_csv(csv_name)) {
    std::printf("(wrote %s)\n", csv_name.c_str());
  }
}

/// Standard main: report first, then benchmark timings.
#define LEAK_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace leak::bench
