// Shared helpers for the per-table / per-figure benchmark binaries.
// Every binary first prints its paper-reproduction report (the rows or
// series the paper reports, next to our computed values), then runs the
// google-benchmark timings of the underlying kernels.  The emission
// helpers themselves live in src/support/report.hpp, shared with the
// scenario-result writer.
#pragma once

#include <benchmark/benchmark.h>

#include <string>

#include "src/support/report.hpp"
#include "src/support/table.hpp"

namespace leak::bench {

using reporting::emit;
using reporting::print_header;

/// Standard main: report first, then benchmark timings.
#define LEAK_BENCH_MAIN(report_fn)                       \
  int main(int argc, char** argv) {                      \
    report_fn();                                         \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace leak::bench
