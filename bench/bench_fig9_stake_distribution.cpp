// Figures 8 & 9 — the bouncing attack's stake law: the Figure 8 Markov
// chain's two-epoch increment distribution, the Figure 9 censored stake
// distribution at t = 4024 (point mass at 0 for ejected validators,
// log-normal bulk, point mass at the 32 ETH cap), cross-validated by
// exact random-walk convolution and Monte Carlo.
#include "bench/bench_common.hpp"

#include "src/bouncing/distribution.hpp"
#include "src/bouncing/markov.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/bouncing/walk.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/scenario/registry.hpp"
#include "src/support/stats.hpp"
#include "tests/oracles/scalar_oracles.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header("Figure 8: two-epoch score increment law (Eq 15)");
  Table m({"p0", "P[+8]", "P[+3]", "P[-2]", "mean/2epochs"});
  for (const double p0 : {0.3, 0.4, 0.5}) {
    const auto inc = bouncing::two_epoch_increment(p0);
    m.add_row({Table::fmt(p0, 1), Table::fmt(inc.p_plus8, 4),
               Table::fmt(inc.p_plus3, 4), Table::fmt(inc.p_minus2, 4),
               Table::fmt(8 * inc.p_plus8 + 3 * inc.p_plus3 -
                              2 * inc.p_minus2, 3)});
  }
  bench::emit(m, "fig8.csv");

  const double t = 4024.0;
  bouncing::StakeLaw law(0.5, cfg);
  bench::print_header("Figure 9: censored stake law at t=4024 (p0=0.5)");
  Table p({"component", "closed form", "Monte Carlo"});
  // Monte Carlo through the scenario registry: the bouncing-mc
  // defaults ARE the Figure 9 configuration (4000 paths, t=4024,
  // seed 99), so the published numbers come from the same path a
  // `leakctl run bouncing-mc` or a sweep cell uses.
  const auto& mc_scenario =
      *scenario::builtin_registry().find("bouncing-mc");
  const auto r = mc_scenario.run(mc_scenario.spec().defaults());
  std::printf("(Monte Carlo on %u threads, registry scenario \"%s\")\n",
              r.threads, r.scenario.c_str());
  p.add_row({"mass at 0 (ejected)", Table::fmt(law.mass_ejected(t), 5),
             Table::fmt(r.metric("ejected_fraction"), 5)});
  p.add_row({"mass at 32 (capped)", Table::fmt(law.mass_capped(t), 5),
             Table::fmt(r.metric("capped_fraction"), 5)});
  p.add_row({"median of bulk (ETH)",
             Table::fmt(std::exp(law.mu_ln(t)), 3),
             Table::fmt(r.metric("median_alive_stake"), 3)});
  bench::emit(p, "fig9_masses.csv");

  Table d({"stake (ETH)", "density P(s,t)", "cdf F(s,t)"});
  for (double s = 17.0; s <= 32.0; s += 1.0) {
    d.add_row({Table::fmt(s, 1), Table::fmt(law.pdf_censored(s, t), 5),
               Table::fmt(law.cdf_censored(s, t), 5)});
  }
  bench::emit(d, "fig9_density.csv");

  bench::print_header(
      "Gaussian (Eq 16) vs exact walk convolution at t=1000");
  const auto pmf = bouncing::exact_score_pmf(0.5, 1000, false);
  Table g({"statistic", "paper Gaussian", "exact walk"});
  const auto w = bouncing::WalkParams::paper(0.5);
  g.add_row({"mean score", Table::fmt(w.drift * 1000.0, 1),
             Table::fmt(pmf.mean(), 1)});
  g.add_row({"variance", Table::fmt(2.0 * w.diffusion * 1000.0, 1),
             Table::fmt(pmf.variance(), 1)});
  bench::emit(g, "fig9_gaussian_check.csv");
  std::printf(
      "note: the paper's Gaussian carries twice the exact walk variance\n"
      "(documented in EXPERIMENTS.md); the median-based Figure 10 results\n"
      "are insensitive to it.\n");
}

void BM_ExactScorePmf(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::exact_score_pmf(
        0.5, static_cast<std::size_t>(state.range(0)), true));
  }
}
BENCHMARK(BM_ExactScorePmf)->Arg(200)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

void BM_CensoredCdf(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  bouncing::StakeLaw law(0.5, cfg);
  double s = 17.0;
  for (auto _ : state) {
    s = s >= 31.0 ? 17.0 : s + 1e-3;
    benchmark::DoNotOptimize(law.cdf_censored(s, 4024.0));
  }
}
BENCHMARK(BM_CensoredCdf);

void BM_MonteCarloPaths(benchmark::State& state) {
  for (auto _ : state) {
    bouncing::McConfig mc;
    mc.paths = static_cast<std::size_t>(state.range(0));
    mc.epochs = 2000;
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 2000);
}
BENCHMARK(BM_MonteCarloPaths)->Arg(500)->Arg(2000)
    ->Unit(benchmark::kMillisecond);

// Scalar reference kernel on the 10k-path Figure 9 run, single thread:
// the baseline the batched kernel must beat (the CI bench-smoke job
// compares BM_MonteCarloBlockSize against this, tools/
// check_bench_speedup.py).  The scalar kernel now lives in the test
// oracle library (tests/oracles/) — production code no longer carries
// it.  items = path-epochs; paths/sec is items_per_second / 2000.
void BM_MonteCarloScalarRef(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.paths = 10000;
  mc.epochs = 2000;
  mc.threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::run_bouncing_mc_scalar(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mc.paths) * 2000);
}
BENCHMARK(BM_MonteCarloScalarRef)->Unit(benchmark::kMillisecond);

// Block-size sweep of the batched kernel on the same 10k-path run,
// single thread, full (matrix-materializing) mode — apples-to-apples
// with the scalar reference.  Arg is the block size; results are
// bit-identical across all of them (tests/test_montecarlo_batch.cpp).
void BM_MonteCarloBlockSize(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.paths = 10000;
  mc.epochs = 2000;
  mc.threads = 1;
  mc.block = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mc.paths) * 2000);
  state.counters["block"] =
      static_cast<double>(runner::resolve_block(mc.block));
}
BENCHMARK(BM_MonteCarloBlockSize)
    ->Arg(1)->Arg(8)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMillisecond);

// Same sweep in summary mode: the per-path matrix is never
// materialized (memory O(snapshots x block)), the streaming summaries
// are bit-identical to full mode.
void BM_MonteCarloSummaryMode(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.paths = 10000;
  mc.epochs = 2000;
  mc.threads = 1;
  mc.block = static_cast<std::size_t>(state.range(0));
  mc.keep_paths = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mc.paths) * 2000);
}
BENCHMARK(BM_MonteCarloSummaryMode)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// Thread-scaling sweep of the Figure 9 10k-path run: Arg is the
// thread count (0 = auto), results identical across all of them.
void BM_MonteCarloPathsThreads(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.paths = 10000;
  mc.epochs = 2000;
  mc.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mc.paths) * 2000);
  state.counters["threads"] =
      static_cast<double>(runner::resolve_threads(mc.threads));
}
BENCHMARK(BM_MonteCarloPathsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

LEAK_BENCH_MAIN(report)
