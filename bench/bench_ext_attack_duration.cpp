// Extension bench — bouncing-attack lifetime: the paper bounds the
// attack's continuation probability per epoch by 1-(1-beta0)^j and notes
// that reaching epoch 7000 has probability ~1e-121.  This bench runs the
// attack-lifetime Monte Carlo (proposer lottery + Figure 8 stake
// dynamics) and reports the duration distribution and the unconditional
// probability of crossing the 1/3 threshold before the attack dies.
#include "bench/bench_common.hpp"

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/markov.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Extension: bouncing-attack lifetime (j = 8 proposer slots)");
  Table t({"beta0", "E[duration] geometric", "mean (MC)", "median (MC)",
           "p99 (MC)", "P[beta>1/3 before death]"});
  for (const double b0 : {0.15, 0.25, 0.30, 0.33, 1.0 / 3.0}) {
    bouncing::AttackSimConfig cfg;
    cfg.beta0 = b0;
    cfg.runs = 600;
    cfg.honest_validators = 60;
    cfg.seed = 11;
    const auto r = bouncing::run_attack_sim(cfg);
    t.add_row({Table::fmt(b0, 4),
               Table::fmt(bouncing::expected_duration_constant_beta(b0, 8),
                          1),
               Table::fmt(r.mean_duration, 1),
               Table::fmt(r.median_duration, 1),
               Table::fmt(r.p99_duration, 1),
               Table::fmt(r.prob_threshold_broken, 4)});
  }
  bench::emit(t, "ext_attack_duration.csv");
  std::printf(
      "takeaway: even at beta0 = 1/3 the attack's median lifetime is\n"
      "~%0.0f epochs, far below the thousands needed for a comfortable\n"
      "margin past 1/3 — quantifying the paper's 1e-121 remark with the\n"
      "full stake dynamics in the loop.\n",
      bouncing::expected_duration_constant_beta(1.0 / 3.0, 8) * 0.69);

  bench::print_header("Sensitivity to j (slots the adversary can use)");
  Table s({"j", "E[duration] (b0=1/3)", "P[break 1/3] (MC)"});
  for (const int j : {2, 4, 8, 16, 32}) {
    bouncing::AttackSimConfig cfg;
    cfg.beta0 = 1.0 / 3.0;
    cfg.j = j;
    cfg.runs = 400;
    cfg.honest_validators = 40;
    cfg.seed = 13;
    const auto r = bouncing::run_attack_sim(cfg);
    s.add_row({std::to_string(j),
               Table::fmt(bouncing::expected_duration_constant_beta(
                              1.0 / 3.0, j), 1),
               Table::fmt(r.prob_threshold_broken, 4)});
  }
  bench::emit(s, "ext_attack_duration_j.csv");
}

void BM_AttackLifetime(benchmark::State& state) {
  for (auto _ : state) {
    bouncing::AttackSimConfig cfg;
    cfg.beta0 = 0.33;
    cfg.runs = static_cast<std::size_t>(state.range(0));
    cfg.honest_validators = 60;
    benchmark::DoNotOptimize(bouncing::run_attack_sim(cfg));
  }
}
BENCHMARK(BM_AttackLifetime)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
