// Ablation — discretization error: the paper's continuous model
// (Eq 3's closed forms) vs the exact per-epoch protocol recurrences
// (Eqs 1-2) vs the Gwei-integer penalty engine, across horizons.
#include "bench/bench_common.hpp"

#include <cmath>

#include "src/analytic/stake_model.hpp"
#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"

namespace {

using namespace leak;

double registry_stake_at(std::uint64_t horizon, bool semi) {
  chain::ValidatorRegistry reg(1);
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
  spec.ejection_balance = Gwei{0};
  penalties::InactivityTracker tracker(reg, spec);
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {semi && (t % 2 == 0)});
  }
  return reg.at(ValidatorIndex{0}).balance.eth();
}

void report() {
  auto cfg = analytic::AnalyticConfig::paper();
  cfg.ejection_threshold = 0.0;  // trajectories without ejection
  bench::print_header(
      "Ablation: continuous vs discrete vs integer-Gwei trajectories");
  Table t({"behavior", "epochs", "continuous (ODE)", "discrete (Eq 1-2)",
           "Gwei engine", "max rel err"});
  for (const bool semi : {false, true}) {
    const auto b = semi ? analytic::Behavior::kSemiActive
                        : analytic::Behavior::kInactive;
    for (const std::uint64_t h : {500ULL, 2000ULL, 4000ULL}) {
      const double cont = analytic::stake(b, static_cast<double>(h), cfg);
      const auto disc = analytic::simulate_discrete(b, h, cfg);
      const double gwei = registry_stake_at(h, semi);
      const double err = std::max(std::abs(disc.stake[h] / cont - 1.0),
                                  std::abs(gwei / cont - 1.0));
      t.add_row({semi ? "semi-active" : "inactive", std::to_string(h),
                 Table::fmt(cont, 4), Table::fmt(disc.stake[h], 4),
                 Table::fmt(gwei, 4),
                 Table::fmt(err * 100.0, 4) + "%"});
    }
  }
  bench::emit(t, "ablation_discretization.csv");
  std::printf(
      "the continuous model stays within ~0.5%% of the exact protocol\n"
      "arithmetic over the whole leak horizon, which justifies the\n"
      "paper's ODE treatment.\n");
}

void BM_OdeIntegration(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::stake_ode(
        analytic::Behavior::kInactive, 4000.0, cfg,
        static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_OdeIntegration)->Arg(100)->Arg(2000);

void BM_GweiEngine4000Epochs(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry_stake_at(4000, false));
  }
}
BENCHMARK(BM_GweiEngine4000Epochs)->Unit(benchmark::kMicrosecond);

}  // namespace

LEAK_BENCH_MAIN(report)
