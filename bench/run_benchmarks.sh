#!/usr/bin/env bash
# Run every leak_bench binary with --benchmark_format=json and
# aggregate the per-binary reports into one BENCH_results.json at the
# repo root (override with -o). Future perf-focused PRs compare
# against this file and must not regress it.
#
# Usage: bench/run_benchmarks.sh [-b BUILD_DIR] [-o OUTPUT_JSON]
#        [-- extra benchmark flags...]
# Flags after "--" go to every binary verbatim, e.g.
#   bench/run_benchmarks.sh -- --benchmark_min_time=0.05
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${REPO_ROOT}/build"
OUTPUT="${REPO_ROOT}/BENCH_results.json"

while getopts "b:o:h" opt; do
  case "${opt}" in
    b) BUILD_DIR="${OPTARG}" ;;
    o) OUTPUT="${OPTARG}" ;;
    h)
      echo "usage: $0 [-b BUILD_DIR] [-o OUTPUT_JSON]"
      exit 0
      ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))
EXTRA_FLAGS=("$@")

BENCH_DIR="${BUILD_DIR}/bench"
if [[ ! -d "${BENCH_DIR}" ]]; then
  echo "error: ${BENCH_DIR} not found - build first:" >&2
  echo "  cmake -B \"${BUILD_DIR}\" -S \"${REPO_ROOT}\" && cmake --build \"${BUILD_DIR}\" --target leak_bench -j" >&2
  exit 1
fi

BINARIES=()
for bin in "${BENCH_DIR}"/bench_*; do
  [[ -f "${bin}" && -x "${bin}" ]] && BINARIES+=("${bin}")
done
if [[ ${#BINARIES[@]} -eq 0 ]]; then
  echo "error: no bench_* binaries in ${BENCH_DIR} (benchmark library missing at configure time?)" >&2
  exit 1
fi

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "${TMP_DIR}"' EXIT

for bin in "${BINARIES[@]}"; do
  name="$(basename "${bin}")"
  echo ">> ${name}"
  # Benchmarks print their paper-reproduction report on stdout before
  # the timings; --benchmark_out keeps the JSON clean of that text.
  "${bin}" --benchmark_format=json \
           --benchmark_out="${TMP_DIR}/${name}.json" \
           --benchmark_out_format=json \
           ${EXTRA_FLAGS[@]+"${EXTRA_FLAGS[@]}"} > /dev/null
done

python3 - "${OUTPUT}" "${TMP_DIR}" <<'EOF'
import json, pathlib, sys

output, tmp_dir = sys.argv[1], pathlib.Path(sys.argv[2])
merged = {"context": None, "benchmarks": []}
for report in sorted(tmp_dir.glob("bench_*.json")):
    data = json.loads(report.read_text())
    if merged["context"] is None:
        merged["context"] = data.get("context", {})
    binary = report.stem
    for bench in data.get("benchmarks", []):
        bench["binary"] = binary
        merged["benchmarks"].append(bench)

pathlib.Path(output).write_text(json.dumps(merged, indent=2) + "\n")
print(f"wrote {output}: {len(merged['benchmarks'])} benchmarks "
      f"from {len(list(tmp_dir.glob('bench_*.json')))} binaries")
EOF
