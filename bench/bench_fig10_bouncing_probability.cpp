// Figure 10 — probability that the Byzantine stake proportion exceeds
// 1/3 during the probabilistic bouncing attack (Eq 24), for beta0 in
// {1/3, 0.3333, 0.333, 0.33, 0.329, 0.3}, p0 = 0.5, with the Byzantine
// ejection at epoch 7653; cross-validated with Monte Carlo and the
// attack-continuation probability bound.
#include "bench/bench_common.hpp"

#include "src/analytic/stake_model.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/bouncing/markov.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/scenario/registry.hpp"
#include "src/support/parse.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bouncing::StakeLaw law(0.5, cfg);
  const double betas[] = {1.0 / 3.0, 0.3333, 0.333, 0.33, 0.329, 0.3};

  bench::print_header(
      "Figure 10: P[beta > 1/3] vs epoch (Eq 24, p0=0.5, one branch)");
  Table t({"epoch", "b0=1/3", "b0=0.3333", "b0=0.333", "b0=0.33",
           "b0=0.329", "b0=0.3"});
  for (std::size_t e = 500; e <= 7500; e += 500) {
    std::vector<std::string> row{std::to_string(e)};
    for (const double b0 : betas) {
      row.push_back(Table::fmt(
          bouncing::prob_beta_exceeds_third(static_cast<double>(e), b0,
                                            law, cfg), 4));
    }
    t.add_row(row);
  }
  bench::emit(t, "fig10.csv");
  std::printf("Byzantine (semi-active) ejection epoch: %.0f\n",
              analytic::ejection_epoch(analytic::Behavior::kSemiActive,
                                       cfg));

  bench::print_header("Monte Carlo cross-check (exact discrete dynamics)");
  std::printf("(Monte Carlo on %u threads)\n", runner::resolve_threads(0));
  Table v({"beta0", "epoch", "Eq 24", "Monte Carlo"});
  // The cross-check runs through the bouncing-mc registry scenario:
  // one --set beta0=... away from what `leakctl sweep` executes.
  const auto& mc_scenario =
      *scenario::builtin_registry().find("bouncing-mc");
  for (const double b0 : {1.0 / 3.0, 0.333, 0.33}) {
    auto params = mc_scenario.spec().defaults();
    params.set("beta0", b0);
    params.set("paths", std::int64_t{3000});
    params.set("epochs", std::int64_t{6000});
    params.set("snapshots", std::string("3000,6000"));
    params.set("seed", std::int64_t{7});
    const auto r = mc_scenario.run(params);
    for (std::size_t k = 0; k < r.trials->rows(); ++k) {
      const double epoch = parse::real(r.trials->cell(k, 0)).value_or(0.0);
      const double mc_prob = parse::real(r.trials->cell(k, 3)).value_or(0.0);
      v.add_row({Table::fmt(b0, 4), r.trials->cell(k, 0),
                 Table::fmt(bouncing::prob_beta_exceeds_third(epoch, b0, law,
                                                              cfg), 4),
                 Table::fmt(mc_prob, 4)});
    }
  }
  bench::emit(v, "fig10_mc.csv");

  bench::print_header(
      "Attack-continuation probability (1-(1-b0)^j)^k (Section 5.3)");
  Table c({"beta0", "j", "k", "probability"});
  c.add_row({"1/3", "8", "7000",
             Table::fmt(std::log10(bouncing::continuation_probability(
                            1.0 / 3.0, 8, 7000)), 1) +
                 " (log10)"});
  c.add_row({"1/3", "8", "100",
             Table::fmt(bouncing::continuation_probability(1.0 / 3.0, 8,
                                                           100), 4)});
  c.add_row({"0.3", "8", "100",
             Table::fmt(bouncing::continuation_probability(0.3, 8, 100),
                        4)});
  bench::emit(c, "fig10_continuation.csv");
}

void BM_Eq24Point(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  bouncing::StakeLaw law(0.5, cfg);
  double t = 100.0;
  for (auto _ : state) {
    t = t >= 7000.0 ? 100.0 : t + 1.0;
    benchmark::DoNotOptimize(
        bouncing::prob_beta_exceeds_third(t, 0.33, law, cfg));
  }
}
BENCHMARK(BM_Eq24Point);

void BM_Fig10FullGrid(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  bouncing::StakeLaw law(0.5, cfg);
  for (auto _ : state) {
    for (std::size_t e = 100; e <= 7500; e += 100) {
      for (const double b0 : {1.0 / 3.0, 0.333, 0.33, 0.3}) {
        benchmark::DoNotOptimize(bouncing::prob_beta_exceeds_third(
            static_cast<double>(e), b0, law, cfg));
      }
    }
  }
}
BENCHMARK(BM_Fig10FullGrid)->Unit(benchmark::kMicrosecond);

// Thread-scaling sweep of the Figure 10 Monte Carlo cross-check.
void BM_Fig10MonteCarloThreads(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.beta0 = 0.33;
  mc.paths = 3000;
  mc.epochs = 3000;
  mc.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {3000}));
  }
  state.counters["threads"] =
      static_cast<double>(runner::resolve_threads(mc.threads));
}
BENCHMARK(BM_Fig10MonteCarloThreads)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Block-size sweep of the same cross-check (batched kernel, summary
// mode, single thread); Arg is the block size, results bit-identical
// across all of them.
void BM_MonteCarloBlockSize(benchmark::State& state) {
  bouncing::McConfig mc;
  mc.beta0 = 0.33;
  mc.paths = 3000;
  mc.epochs = 3000;
  mc.threads = 1;
  mc.block = static_cast<std::size_t>(state.range(0));
  mc.keep_paths = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {3000}));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(mc.paths) * 3000);
}
BENCHMARK(BM_MonteCarloBlockSize)->Arg(1)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
