// Table 3 — time before finalization on conflicting branches with the
// non-slashable (semi-active alternation) strategy, p0 = 0.5.
#include "bench/bench_common.hpp"

#include "src/analytic/tables.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Table 3: conflicting-finalization epoch, non-slashable "
      "(semi-active) strategy (p0=0.5)");
  const auto cfg = analytic::AnalyticConfig::paper();
  Table t({"beta0", "paper", "Eq 10 root", "sim (16.75 ETH)", "rel.err"});
  for (const auto& row : analytic::table3(cfg)) {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.beta0 = row.beta0;
    sc.p0 = 0.5;
    sc.strategy = row.beta0 > 0.0 ? sim::Strategy::kSemiActiveFinalize
                                  : sim::Strategy::kNone;
    sc.max_epochs = 6000;
    const auto sr = sim::run_partition_sim(sc);
    t.add_row({Table::fmt(row.beta0, 2), Table::fmt(row.paper_epochs, 0),
               Table::fmt(row.computed_epochs, 1),
               Table::fmt(
                   static_cast<double>(sr.branch[0].supermajority_epoch), 0),
               Table::fmt(std::abs(row.computed_epochs - row.paper_epochs) /
                              row.paper_epochs * 100.0,
                          3) +
                   "%"});
  }
  bench::emit(t, "table3.csv");
  std::printf(
      "note: the paper's 0.10-0.20 rows sit ~0.5%% above the exact Eq 10\n"
      "roots; the beta0=0.33 row (555.65) and the honest limit reproduce\n"
      "exactly (see EXPERIMENTS.md).\n");
}

void BM_Eq10Root(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  const double beta0 = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytic::time_to_supermajority_semiactive(0.5, beta0, cfg));
  }
}
BENCHMARK(BM_Eq10Root)->Arg(10)->Arg(20)->Arg(33);

void BM_PartitionSimSemiActive(benchmark::State& state) {
  for (auto _ : state) {
    sim::PartitionSimConfig sc;
    sc.n_validators = static_cast<std::uint32_t>(state.range(0));
    sc.beta0 = 0.33;
    sc.strategy = sim::Strategy::kSemiActiveFinalize;
    sc.max_epochs = 1000;
    benchmark::DoNotOptimize(sim::run_partition_sim(sc));
  }
}
BENCHMARK(BM_PartitionSimSemiActive)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
