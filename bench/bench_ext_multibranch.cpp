// Extension bench — the multi-branch rotation attack: generalizing the
// paper's two-branch semi-active strategy (Section 5.2) to an adversary
// rotating over m branches with duty cycle 1/m.  Reports how the
// minimum Byzantine stake to cross 1/3 and the time to conflicting
// finalization vary with m, and the post-leak recovery tail
// (Figure 3's "ratio still increases after 2/3" effect) per branch
// split.
#include "bench/bench_common.hpp"

#include "src/analytic/duty_cycle.hpp"
#include "src/analytic/recovery.hpp"
#include "src/analytic/solvers.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header(
      "Extension: m-branch rotation attack (duty cycle 1/m per branch)");
  Table t({"branches", "duty slope", "byz ejection", "min beta0 for 1/3",
           "supermajority epoch (b0=0.25)"});
  for (unsigned m = 2; m <= 8; ++m) {
    t.add_row({std::to_string(m),
               Table::fmt(analytic::duty_cycle_slope(m, cfg), 3),
               Table::fmt(analytic::duty_cycle_ejection_epoch(m, cfg), 0),
               Table::fmt(analytic::multibranch_beta0_lower_bound(m, cfg), 4),
               Table::fmt(
                   analytic::multibranch_supermajority_epoch(m, 0.25, cfg),
                   0)});
  }
  bench::emit(t, "ext_multibranch.csv");
  std::printf(
      "takeaway: splitting honest validators across more branches lowers\n"
      "the Byzantine stake needed to cross 1/3 (0.2421 at m=2 falls\n"
      "below 0.2 by m=4) at the cost of slower per-branch recovery —\n"
      "a sharper version of the paper's two-branch bound.\n");

  bench::print_header(
      "Post-leak recovery tail (Figure 3 'keeps rising' effect)");
  Table r({"p0", "leak end epoch", "score at end", "recovery epochs",
           "extra loss (ETH)"});
  for (const double p0 : {0.55, 0.6, 0.65}) {
    const double t_end = analytic::time_to_supermajority_honest(p0, cfg);
    const double score = analytic::score_at_leak_end(t_end, cfg);
    const double s_end =
        analytic::stake(analytic::Behavior::kInactive, t_end, cfg);
    r.add_row({Table::fmt(p0, 2), Table::fmt(t_end, 0),
               Table::fmt(score, 0),
               Table::fmt(analytic::recovery_epochs(score), 0),
               Table::fmt(analytic::residual_loss(score, s_end, cfg), 3)});
  }
  bench::emit(r, "ext_recovery.csv");

  // The registry view of the same extensions: the semiactive-sweep
  // scenario cross-checks the closed forms above with a Monte Carlo,
  // and multi-partition-recovery runs the k-branch heal schedule on
  // the epoch-granular simulator (small sizes — this is a report, the
  // CI-guarded numbers live in bench/baselines/).
  bench::print_header(
      "Registry scenarios: semiactive-sweep / multi-partition-recovery");
  const auto& registry = scenario::builtin_registry();
  {
    const auto& sc = *registry.find("semiactive-sweep");
    Table t({"branches", "beta_max", "supermajority epoch",
             "mc P[beta>1/3]"});
    for (const std::int64_t m : {2, 3, 4}) {
      auto params = sc.spec().defaults();
      params.set("branches", m);
      params.set("paths", std::int64_t{256});
      params.set("epochs", std::int64_t{2000});
      const auto res = sc.run(params);
      t.add_row({std::to_string(m), Table::fmt(res.metric("beta_max"), 4),
                 Table::fmt(res.metric("supermajority_recovery_epoch"), 0),
                 Table::fmt(res.metric("mc_prob_beta_exceeds"), 3)});
    }
    bench::emit(t, "ext_semiactive_sweep.csv");
  }
  {
    const auto& sc = *registry.find("multi-partition-recovery");
    Table t({"branches", "stagger", "recovered", "mean residual (ETH)",
             "closed-form err (ETH)"});
    for (const std::int64_t stagger : {0, 400}) {
      auto params = sc.spec().defaults();
      params.set("paths", std::int64_t{4});
      params.set("n_validators", std::int64_t{200});
      params.set("branches", std::int64_t{3});
      params.set("heal_epoch", std::int64_t{1500});
      params.set("heal_stagger", stagger);
      params.set("max_epochs", std::int64_t{5000});
      const auto res = sc.run(params);
      t.add_row({"3", std::to_string(stagger),
                 Table::fmt(res.metric("recovered_fraction"), 2),
                 Table::fmt(res.metric("mean_residual_loss_eth"), 3),
                 Table::fmt(res.metric("det_recovery_closed_form_abs_err"),
                            5)});
    }
    bench::emit(t, "ext_multi_partition_recovery.csv");
  }
}

void BM_MultibranchBound(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::multibranch_beta0_lower_bound(
        static_cast<unsigned>(state.range(0)), cfg));
  }
}
BENCHMARK(BM_MultibranchBound)->Arg(2)->Arg(8);

void BM_ResidualLossDiscrete(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytic::residual_loss_discrete(12000.0, 24.0, cfg));
  }
}
BENCHMARK(BM_ResidualLossDiscrete);

void BM_MultibranchExceedThreshold(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::multibranch_exceed_threshold(
        static_cast<unsigned>(state.range(0)), 0.33, 2000.0, cfg));
  }
}
BENCHMARK(BM_MultibranchExceedThreshold)->Arg(2)->Arg(4);

/// One full k-branch heal-schedule run of the epoch-granular simulator
/// (the multi-partition-recovery inner kernel).
void BM_KBranchPartitionHeal(benchmark::State& state) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 200;
  cfg.strategy = sim::Strategy::kNone;
  cfg.branches = static_cast<std::uint32_t>(state.range(0));
  cfg.heal_epoch = 1500;
  cfg.heal_stagger = 400;
  cfg.max_epochs = 5000;
  cfg.trajectory_stride = cfg.max_epochs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_partition_sim(cfg));
  }
}
BENCHMARK(BM_KBranchPartitionHeal)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
