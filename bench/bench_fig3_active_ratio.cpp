// Figure 3 — evolution of the ratio of active validators for p0 in
// {0.2 .. 0.6}: Eq 5 series with the ejection jump at 4685, plus the
// discrete-protocol simulator's measured ratio for cross-validation.
#include "bench/bench_common.hpp"

#include "src/analytic/ratio_model.hpp"
#include "src/analytic/solvers.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header(
      "Figure 3: ratio of active validators vs epochs since leak (Eq 5)");
  const double p0s[] = {0.6, 0.5, 0.4, 0.3, 0.2};
  Table t({"epoch", "p0=0.6", "p0=0.5", "p0=0.4", "p0=0.3", "p0=0.2"});
  for (std::size_t e = 0; e <= 8000; e += 400) {
    std::vector<std::string> row{std::to_string(e)};
    for (const double p0 : p0s) {
      row.push_back(
          Table::fmt(analytic::active_ratio_honest(
                         static_cast<double>(e), p0, cfg), 4));
    }
    t.add_row(row);
  }
  bench::emit(t, "fig3.csv");

  bench::print_header("Crossing epochs of the 2/3 threshold");
  Table c({"p0", "closed form (Eq 6)", "sim (16.75 ETH)"});
  for (const double p0 : p0s) {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.p0 = p0;
    sc.strategy = sim::Strategy::kNone;
    sc.max_epochs = 6000;
    const auto r = sim::run_partition_sim(sc);
    c.add_row({Table::fmt(p0, 1),
               Table::fmt(analytic::time_to_supermajority_honest(p0, cfg), 1),
               std::to_string(r.branch[0].supermajority_epoch)});
  }
  bench::emit(c, "fig3_crossings.csv");
}

void BM_ActiveRatio(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  double t = 0.0;
  for (auto _ : state) {
    t += 0.5;
    benchmark::DoNotOptimize(analytic::active_ratio_honest(t, 0.4, cfg));
  }
}
BENCHMARK(BM_ActiveRatio);

void BM_Eq6Solve(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytic::time_to_supermajority_honest(0.55, cfg));
  }
}
BENCHMARK(BM_Eq6Solve);

void BM_PartitionSimHonest(benchmark::State& state) {
  for (auto _ : state) {
    sim::PartitionSimConfig sc;
    sc.n_validators = static_cast<std::uint32_t>(state.range(0));
    sc.strategy = sim::Strategy::kNone;
    sc.max_epochs = 5000;
    benchmark::DoNotOptimize(sim::run_partition_sim(sc));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 5000);
}
BENCHMARK(BM_PartitionSimHonest)->Arg(500)->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
