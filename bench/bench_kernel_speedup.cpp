// Per-driver batched-vs-scalar speedup pairs.  Each Monte Carlo driver
// (bouncing, attack, population, partition) is timed twice on the same
// workload, single-threaded: once through its pre-rollout scalar
// oracle (tests/oracles/), once through the production SoA batched
// kernel.  The two members of a pair set identical items, so
// items_per_second ratios are the speedup directly —
// tools/check_bench_speedup.py gates each driver's ratio in CI.
// Bit-identity of the pair members is enforced separately by
// tests/test_montecarlo_batch.cpp; this binary only measures.
#include "bench/bench_common.hpp"

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/sim/partition_sim.hpp"
#include "tests/oracles/scalar_oracles.hpp"

namespace {

using namespace leak;

// --- shared per-driver workloads ---------------------------------------
// One fixed config per driver, used by both pair members so the timing
// ratio is the kernel speedup and nothing else.

bouncing::McConfig bouncing_workload() {
  bouncing::McConfig mc;
  mc.paths = 2000;
  mc.epochs = 2000;
  mc.threads = 1;
  return mc;
}
constexpr std::int64_t kBouncingItems = 2000 * 2000;  // path-epochs

bouncing::AttackSimConfig attack_workload() {
  bouncing::AttackSimConfig cfg;
  cfg.beta0 = 0.33;
  cfg.runs = 300;
  cfg.honest_validators = 60;
  cfg.seed = 11;
  cfg.threads = 1;
  return cfg;
}
constexpr std::int64_t kAttackItems = 300 * 60;  // run-validators

bouncing::PopulationEnsembleConfig population_workload() {
  bouncing::PopulationEnsembleConfig cfg;
  cfg.base.honest_validators = 200;
  cfg.base.epochs = 1000;
  cfg.base.beta0 = 1.0 / 3.0;
  cfg.paths = 8;
  cfg.threads = 1;
  return cfg;
}
constexpr std::int64_t kPopulationItems = 8 * 200 * 1000;  // validator-epochs

sim::PartitionTrialsConfig partition_workload() {
  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = 200;
  cfg.base.beta0 = 0.2;
  cfg.base.strategy = sim::Strategy::kSemiActiveFinalize;
  cfg.base.max_epochs = 1200;
  cfg.base.trajectory_stride = 1200;
  cfg.trials = 4;
  cfg.threads = 1;
  return cfg;
}
constexpr std::int64_t kPartitionItems = 4 * 200;  // trial-validators

void report() {
  bench::print_header(
      "Per-driver batched-vs-scalar speedup pairs (single thread)");
  Table t({"driver", "scalar benchmark", "batched benchmark", "workload"});
  t.add_row({"bouncing", "BM_BouncingScalarRef", "BM_BouncingBatch",
             "2000 paths x 2000 epochs"});
  t.add_row({"attack", "BM_AttackScalarRef", "BM_AttackBatch",
             "300 runs, 60 validators"});
  t.add_row({"population", "BM_PopulationScalarRef", "BM_PopulationBatch",
             "8 paths, 200 validators x 1000 epochs"});
  t.add_row({"partition", "BM_PartitionScalarRef", "BM_PartitionBatch",
             "4 trials, 200 validators, 2 branches"});
  bench::emit(t, "kernel_speedup_pairs.csv");
  std::printf(
      "gate: tools/check_bench_speedup.py requires batched >= 1.1x scalar\n"
      "items_per_second for every driver (each pair shares its workload).\n");
}

// --- bouncing ----------------------------------------------------------

void BM_BouncingScalarRef(benchmark::State& state) {
  const auto mc = bouncing_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::run_bouncing_mc_scalar(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() * kBouncingItems);
}
BENCHMARK(BM_BouncingScalarRef)->Unit(benchmark::kMillisecond);

void BM_BouncingBatch(benchmark::State& state) {
  const auto mc = bouncing_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_bouncing_mc(mc, {2000}));
  }
  state.SetItemsProcessed(state.iterations() * kBouncingItems);
}
BENCHMARK(BM_BouncingBatch)->Unit(benchmark::kMillisecond);

// --- attack ------------------------------------------------------------

void BM_AttackScalarRef(benchmark::State& state) {
  const auto cfg = attack_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::run_attack_sim_scalar(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kAttackItems);
}
BENCHMARK(BM_AttackScalarRef)->Unit(benchmark::kMillisecond);

void BM_AttackBatch(benchmark::State& state) {
  const auto cfg = attack_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_attack_sim(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kAttackItems);
}
BENCHMARK(BM_AttackBatch)->Unit(benchmark::kMillisecond);

// --- population --------------------------------------------------------

void BM_PopulationScalarRef(benchmark::State& state) {
  const auto cfg = population_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::run_population_ensemble_scalar(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kPopulationItems);
}
BENCHMARK(BM_PopulationScalarRef)->Unit(benchmark::kMillisecond);

void BM_PopulationBatch(benchmark::State& state) {
  const auto cfg = population_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bouncing::run_population_ensemble(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kPopulationItems);
}
BENCHMARK(BM_PopulationBatch)->Unit(benchmark::kMillisecond);

// --- partition ---------------------------------------------------------

void BM_PartitionScalarRef(benchmark::State& state) {
  const auto cfg = partition_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle::run_partition_trials_scalar(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kPartitionItems);
}
BENCHMARK(BM_PartitionScalarRef)->Unit(benchmark::kMillisecond);

void BM_PartitionBatch(benchmark::State& state) {
  const auto cfg = partition_workload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_partition_trials(cfg));
  }
  state.SetItemsProcessed(state.iterations() * kPartitionItems);
}
BENCHMARK(BM_PartitionBatch)->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
