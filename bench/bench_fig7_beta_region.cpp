// Figure 7 — the (p0, beta0) region where the Byzantine proportion can
// exceed 1/3 on both branches: the mirrored frontier curves and the
// global optimum (0.5, 0.2421).
#include "bench/bench_common.hpp"

#include "src/analytic/solvers.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/numeric.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header(
      "Figure 7: frontier beta0(p0) for beta_max >= 1/3 (Eq 13)");
  Table t({"p0", "frontier branch1", "frontier branch2", "both branches"});
  for (const auto& pt :
       analytic::fig7_frontier(num::linspace(0.05, 0.95, 19), cfg)) {
    t.add_row({Table::fmt(pt.p0, 2), Table::fmt(pt.beta0_branch1, 4),
               Table::fmt(pt.beta0_branch2, 4),
               Table::fmt(pt.beta0_both, 4)});
  }
  bench::emit(t, "fig7.csv");

  const auto opt = analytic::fig7_optimum(cfg);
  Table o({"quantity", "paper", "computed"});
  o.add_row({"optimal p0", "0.5", Table::fmt(opt.p0, 2)});
  o.add_row({"minimal beta0", "0.2421", Table::fmt(opt.beta0_both, 4)});
  bench::emit(o, "fig7_optimum.csv");

  bench::print_header(
      "Simulator verification at p0=0.5 (16.75 ETH threshold)");
  const auto stated = analytic::AnalyticConfig::stated();
  const double bound = analytic::beta0_lower_bound(0.5, stated);
  Table v({"beta0", "predicted", "sim beta peak (branch 1)",
           "exceeded both?"});
  for (const double d : {-0.03, -0.01, 0.01, 0.03}) {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.beta0 = bound + d;
    sc.strategy = sim::Strategy::kSemiActiveOverthrow;
    sc.max_epochs = 5000;
    const auto r = sim::run_partition_sim(sc);
    v.add_row({Table::fmt(bound + d, 4), d > 0 ? "exceed" : "stay below",
               Table::fmt(r.branch[0].beta_peak, 4),
               r.beta_exceeded_third_both ? "yes" : "no"});
  }
  bench::emit(v, "fig7_sim.csv");
}

void BM_BetaMax(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  double p0 = 0.1;
  for (auto _ : state) {
    p0 = p0 >= 0.9 ? 0.1 : p0 + 1e-4;
    benchmark::DoNotOptimize(analytic::beta_max(p0, 0.25, cfg));
  }
}
BENCHMARK(BM_BetaMax);

void BM_Fig7Frontier(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  const auto grid = num::linspace(0.01, 0.99, 199);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::fig7_frontier(grid, cfg));
  }
}
BENCHMARK(BM_Fig7Frontier)->Unit(benchmark::kMicrosecond);

}  // namespace

LEAK_BENCH_MAIN(report)
