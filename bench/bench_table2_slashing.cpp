// Table 2 — time before finalization on conflicting branches with the
// slashable Byzantine strategy (active on both branches), p0 = 0.5.
// Columns: paper value, closed form (Eq 9), and the discrete-protocol
// partition simulator measurement.
#include "bench/bench_common.hpp"

#include "src/analytic/tables.hpp"
#include "src/sim/partition_sim.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Table 2: conflicting-finalization epoch, slashable strategy "
      "(p0=0.5)");
  const auto cfg = analytic::AnalyticConfig::paper();
  const auto stated = analytic::AnalyticConfig::stated();
  Table t({"beta0", "paper", "closed form (Eq 9)", "sim (16.75 ETH)",
           "rel.err"});
  for (const auto& row : analytic::table2(cfg)) {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.beta0 = row.beta0;
    sc.p0 = 0.5;
    sc.strategy = row.beta0 > 0.0 ? sim::Strategy::kSlashable
                                  : sim::Strategy::kNone;
    sc.max_epochs = 6000;
    const auto sr = sim::run_partition_sim(sc);
    const double sim_t =
        static_cast<double>(sr.branch[0].supermajority_epoch);
    t.add_row({Table::fmt(row.beta0, 2), Table::fmt(row.paper_epochs, 0),
               Table::fmt(row.computed_epochs, 1), Table::fmt(sim_t, 0),
               Table::fmt(std::abs(row.computed_epochs - row.paper_epochs) /
                              row.paper_epochs * 100.0,
                          3) +
                   "%"});
  }
  bench::emit(t, "table2.csv");
  bench::print_header("Reference: stated 16.75 ETH threshold closed form");
  Table t2({"beta0", "Eq 9 (16.75)"});
  for (const auto& row : analytic::table2(stated)) {
    t2.add_row(
        {Table::fmt(row.beta0, 2), Table::fmt(row.computed_epochs, 1)});
  }
  bench::emit(t2, "table2_stated.csv");
}

void BM_Eq9ClosedForm(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  const double beta0 = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analytic::time_to_supermajority_slashing(0.5, beta0, cfg));
  }
}
BENCHMARK(BM_Eq9ClosedForm)->Arg(10)->Arg(20)->Arg(33);

void BM_PartitionSimSlashable(benchmark::State& state) {
  for (auto _ : state) {
    sim::PartitionSimConfig sc;
    sc.n_validators = static_cast<std::uint32_t>(state.range(0));
    sc.beta0 = 0.2;
    sc.strategy = sim::Strategy::kSlashable;
    sc.max_epochs = 4000;
    benchmark::DoNotOptimize(sim::run_partition_sim(sc));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 4000);
}
BENCHMARK(BM_PartitionSimSlashable)->Arg(200)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
