// Search infrastructure: the optimizer's inner loop — grid seeding
// plus pattern descent over a cheap analytic objective — and the warm
// journal-resume path (every candidate replayed from the evaluation
// cache).  The inner loop's overhead per candidate bounds how cheap a
// scenario has to be before `leakctl search` bookkeeping, rather than
// simulation, dominates.
#include "bench/bench_common.hpp"

#include <cstdio>
#include <string>

#include "src/scenario/registry.hpp"
#include "src/search/objective.hpp"
#include "src/search/search.hpp"

namespace {

using namespace leak;

[[nodiscard]] search::ResolvedSearch cheap_search() {
  std::string error;
  auto resolved = search::resolve_search(
      scenario::builtin_registry(), "semiactive-sweep:beta_max:max",
      {"branches=2:6:1", "beta0=0.26:0.34:0.02"},
      {"paths=16", "epochs=300"}, &error);
  if (!resolved) std::abort();
  return *resolved;
}

void report() {
  bench::print_header("Adversary search: inner-loop shape");
  const auto resolved = cheap_search();
  const auto& sc =
      *scenario::builtin_registry().find(resolved.objective.scenario);
  search::SearchOptions opts;
  opts.budget = 16;
  const auto result = search::run_search(sc, resolved.objective,
                                         resolved.axes, opts);
  Table t({"quantity", "value"});
  t.add_row({"grid candidates", std::to_string(result.grid_size)});
  t.add_row({"budget", std::to_string(result.budget)});
  t.add_row({"evaluations used", std::to_string(result.evaluations)});
  t.add_row({"baseline value", Table::fmt_exact(result.baseline_value)});
  t.add_row({"searched best", Table::fmt_exact(result.best_value)});
  bench::emit(t, "search_inner_loop.csv");
}

void BM_SearchInnerLoop(benchmark::State& state) {
  const auto resolved = cheap_search();
  const auto& sc =
      *scenario::builtin_registry().find(resolved.objective.scenario);
  search::SearchOptions opts;
  opts.budget = static_cast<std::size_t>(state.range(0));
  std::size_t evaluations = 0;
  for (auto _ : state) {
    const auto result =
        search::run_search(sc, resolved.objective, resolved.axes, opts);
    evaluations += result.evaluations;
    benchmark::DoNotOptimize(result.best_value);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(evaluations));
  state.SetLabel("items = candidate evaluations");
}
BENCHMARK(BM_SearchInnerLoop)->Arg(8)->Arg(16);

void BM_SearchWarmResume(benchmark::State& state) {
  // Every candidate already journaled: measures open + scan + replay +
  // the descent bookkeeping, with zero scenario evaluations.
  const auto resolved = cheap_search();
  const auto& sc =
      *scenario::builtin_registry().find(resolved.objective.scenario);
  search::SearchOptions opts;
  opts.budget = 16;
  opts.journal_path = "/tmp/leak_bench_search_journal.jsonl";
  std::remove(opts.journal_path.c_str());
  (void)search::run_search(sc, resolved.objective, resolved.axes, opts);
  for (auto _ : state) {
    const auto result =
        search::run_search(sc, resolved.objective, resolved.axes, opts);
    if (result.cache_hits != result.evaluations) {
      state.SkipWithError("resume re-evaluated candidates");
      break;
    }
    benchmark::DoNotOptimize(result.best_value);
  }
  std::remove(opts.journal_path.c_str());
}
BENCHMARK(BM_SearchWarmResume);

}  // namespace

LEAK_BENCH_MAIN(report)
