// Figure 6 — time before finalization on conflicting branches as a
// function of beta0, for the slashable and non-slashable strategies
// (the two curves of the figure; x-axis here is the epoch count).
#include "bench/bench_common.hpp"

#include "src/analytic/solvers.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header(
      "Figure 6: epochs to conflicting finalization vs beta0 (p0=0.5)");
  Table t({"beta0", "with slashing (Eq 9)", "without slashing (Eq 10)",
           "speedup vs honest (slash)", "speedup (non-slash)"});
  const double honest = analytic::conflicting_finalization_epoch(
      0.5, 0.0, analytic::ByzantineStrategy::kNone, cfg);
  for (double b0 = 0.0; b0 <= 0.3301; b0 += 0.02) {
    const double beta0 = std::min(b0, 0.33);
    const double slash = analytic::conflicting_finalization_epoch(
        0.5, beta0, analytic::ByzantineStrategy::kSlashable, cfg);
    const double semi = analytic::conflicting_finalization_epoch(
        0.5, beta0, analytic::ByzantineStrategy::kSemiActive, cfg);
    t.add_row({Table::fmt(beta0, 2), Table::fmt(slash, 1),
               Table::fmt(semi, 1), Table::fmt(honest / slash, 2) + "x",
               Table::fmt(honest / semi, 2) + "x"});
  }
  bench::emit(t, "fig6.csv");
  std::printf(
      "shape checks: both curves decrease in beta0; the slashable curve\n"
      "lies below the non-slashable curve; at beta0=0.33 the speedups are\n"
      "~9x and ~8x over the honest baseline of %.0f epochs.\n", honest);
}

void BM_Fig6FullSweep(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    for (double b0 = 0.0; b0 <= 0.33; b0 += 0.01) {
      benchmark::DoNotOptimize(analytic::conflicting_finalization_epoch(
          0.5, b0, analytic::ByzantineStrategy::kSemiActive, cfg));
    }
  }
}
BENCHMARK(BM_Fig6FullSweep)->Unit(benchmark::kMicrosecond);

}  // namespace

LEAK_BENCH_MAIN(report)
