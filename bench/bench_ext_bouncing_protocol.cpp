// Extension bench — protocol-view bouncing attack: Section 5.3's full
// mechanics (withheld-vote release, alternating justification, duty-
// roster proposer lottery, exact leak penalties on both branch views).
// Reports lifetime statistics and how they respond to beta0 and j,
// bridging Eq 24 (per-epoch stake law) and the 1e-121 lifetime remark.
#include "bench/bench_common.hpp"

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/markov.hpp"
#include "src/sim/bouncing_protocol_sim.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header(
      "Extension: protocol-view bouncing attack (j = 8, p0 just inside "
      "the Eq 14 window)");
  Table t({"beta0", "p0", "mean duration", "ended by lottery",
           "P[beta > 1/3]"});
  for (const double b0 : {0.30, 0.33, 1.0 / 3.0}) {
    sim::BouncingProtocolConfig cfg;
    cfg.beta0 = b0;
    const auto window = bouncing::feasible_p0_interval(b0);
    cfg.p0 = window->first + 0.02;  // just inside the feasible window
    cfg.n_validators = 300;
    cfg.max_epochs = 2000;
    const auto agg = sim::run_bouncing_protocol_ensemble(cfg, 80);
    t.add_row({Table::fmt(b0, 4), Table::fmt(cfg.p0, 3),
               Table::fmt(agg.mean_duration, 1),
               Table::fmt(agg.prob_ended_by_lottery, 3),
               Table::fmt(agg.prob_beta_exceeded, 3)});
  }
  bench::emit(t, "ext_bouncing_protocol.csv");

  bench::print_header("Lifetime vs j (beta0 = 0.33)");
  Table s({"j", "mean duration (protocol sim)",
           "mean duration (abstract model)"});
  for (const int j : {2, 4, 8, 16}) {
    sim::BouncingProtocolConfig cfg;
    cfg.beta0 = 0.33;
    cfg.j = j;
    cfg.max_epochs = 3000;
    const auto agg = sim::run_bouncing_protocol_ensemble(cfg, 60);
    s.add_row({std::to_string(j), Table::fmt(agg.mean_duration, 1),
               Table::fmt(
                   bouncing::expected_duration_constant_beta(0.33, j), 1)});
  }
  bench::emit(s, "ext_bouncing_protocol_j.csv");
  std::printf(
      "the protocol sim's lifetimes track the geometric model, and the\n"
      "probability of crossing 1/3 within a lifetime stays negligible —\n"
      "the full-stack confirmation of the paper's Section 5.3 caveat.\n");
}

void BM_BouncingProtocolRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::BouncingProtocolConfig cfg;
    cfg.beta0 = 0.33;
    cfg.n_validators = static_cast<std::uint32_t>(state.range(0));
    cfg.max_epochs = 500;
    benchmark::DoNotOptimize(sim::run_bouncing_protocol(cfg));
  }
}
BENCHMARK(BM_BouncingProtocolRun)->Arg(100)->Arg(300)
    ->Unit(benchmark::kMillisecond);

}  // namespace

LEAK_BENCH_MAIN(report)
