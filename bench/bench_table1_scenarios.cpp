// Table 1 — the five analysed scenarios and their outcomes, each with a
// quantitative witness computed end to end (closed form + simulators).
#include "bench/bench_common.hpp"

#include "src/analytic/tables.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/sim/slot_sim.hpp"

namespace {

using namespace leak;

void report() {
  bench::print_header("Table 1: analysed scenarios and outcomes");
  const auto cfg = analytic::AnalyticConfig::paper();
  // The rows come from the `table1` registry scenario, so this report
  // and `leakctl run table1` print the same artifact.
  const auto& registry = scenario::builtin_registry();
  const auto& table1_scenario = *registry.find("table1");
  const auto t1 = table1_scenario.run(table1_scenario.spec().defaults());
  bench::emit(*t1.trials, "table1.csv");

  bench::print_header("End-to-end verification of each outcome");
  Table v({"scenario", "check", "result"});
  {
    sim::PartitionSimConfig sc;
    sc.n_validators = 400;
    sc.strategy = sim::Strategy::kNone;
    sc.max_epochs = 5000;
    const auto r = sim::run_partition_sim(sc);
    v.add_row({"5.1", "two conflicting finalized branches (sim)",
               r.conflicting_finalization_epoch > 0
                   ? "yes, epoch " +
                         std::to_string(r.conflicting_finalization_epoch)
                   : "no"});
  }
  {
    sim::SlotSimConfig sc;
    sc.n_honest = 30;
    sc.n_byzantine = 2;
    sc.epochs = 8;
    sc.p0 = 0.5;
    sc.gst_epoch = 4.0;
    const auto r = sim::SlotSim(sc).run();
    v.add_row({"5.2.1", "equivocators slashed after GST (slot sim)",
               std::to_string(r.slashed.size()) + " slashed"});
  }
  {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.beta0 = 0.33;
    sc.strategy = sim::Strategy::kSemiActiveFinalize;
    sc.max_epochs = 1000;
    const auto r = sim::run_partition_sim(sc);
    v.add_row({"5.2.2", "conflict without slashable action (sim)",
               "epoch " + std::to_string(r.conflicting_finalization_epoch)});
  }
  {
    sim::PartitionSimConfig sc;
    sc.n_validators = 1000;
    sc.beta0 = 0.26;
    sc.strategy = sim::Strategy::kSemiActiveOverthrow;
    sc.max_epochs = 5000;
    const auto r = sim::run_partition_sim(sc);
    v.add_row({"5.2.3", "beta > 1/3 on both branches (sim, beta0=0.26)",
               r.beta_exceeded_third_both
                   ? "yes, peak " + Table::fmt(r.branch[0].beta_peak, 4)
                   : "no"});
  }
  {
    bouncing::StakeLaw law(0.5, cfg);
    const double p =
        bouncing::prob_beta_exceeds_third(4000.0, 0.333, law, cfg);
    v.add_row({"5.3", "P[beta>1/3] at t=4000, beta0=0.333 (Eq 24)",
               Table::fmt(p, 4)});
  }
  {
    // Monte Carlo robustness of 5.1: redraw the honest split iid and
    // check conflicting finalization survives the sampling noise.  The
    // partition-trials registry defaults ARE this configuration (400
    // validators, honest, 5000 epochs, 32 trials, seed 2024), so the
    // published row comes from the same path `leakctl run
    // partition-trials` uses.
    const auto& trials_scenario = *registry.find("partition-trials");
    const auto r = trials_scenario.run(trials_scenario.spec().defaults());
    v.add_row({"5.1", "conflicting finalization over 32 random splits "
                      "(threads=" +
                          std::to_string(r.threads) + ")",
               Table::fmt(r.metric("conflicting_fraction"), 3) +
                   " of trials, mean ep " +
                   Table::fmt(r.metric("mean_conflict_epoch"), 0)});
  }
  bench::emit(v, "table1_verification.csv");
}

void BM_Table1Generation(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::table1(cfg));
  }
}
BENCHMARK(BM_Table1Generation);

void BM_SlotSimEpoch(benchmark::State& state) {
  for (auto _ : state) {
    sim::SlotSimConfig sc;
    sc.n_honest = 32;
    sc.epochs = static_cast<std::size_t>(state.range(0));
    benchmark::DoNotOptimize(sim::SlotSim(sc).run());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) * 32);
}
BENCHMARK(BM_SlotSimEpoch)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Thread-scaling sweep of the randomized-split partition trials.
void BM_PartitionTrialsThreads(benchmark::State& state) {
  sim::PartitionTrialsConfig tc;
  tc.base.n_validators = 200;
  tc.base.strategy = sim::Strategy::kNone;
  tc.base.max_epochs = 2000;
  tc.trials = 16;
  tc.threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_partition_trials(tc));
  }
  state.counters["threads"] =
      static_cast<double>(runner::resolve_threads(tc.threads));
}
BENCHMARK(BM_PartitionTrialsThreads)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

LEAK_BENCH_MAIN(report)
