// Serve infrastructure: throughput of the append-only results store —
// CRC framing, durable (fsync) vs buffered appends, and full-file
// scans.  The store is the per-cell checkpoint path of `leakctl
// serve`, so its append cost bounds how fine-grained sweep
// checkpointing can be before it shows up next to the cell runtimes.
#include "bench/bench_common.hpp"

#include <cstdio>
#include <string>

#include "src/serve/store.hpp"
#include "src/support/json.hpp"

namespace {

using namespace leak;

[[nodiscard]] json::Value sample_payload(int cell) {
  json::Value doc = json::Value::object();
  doc.set("type", "cell");
  doc.set("job", "0123456789abcdef");
  doc.set("cell", std::int64_t{cell});
  doc.set("fp", "deadbeef");
  json::Value result = json::Value::object();
  result.set("scenario", "bouncing-mc");
  json::Value metrics = json::Value::object();
  metrics.set("ejected_fraction", 0.125);
  metrics.set("capped_fraction", 0.5);
  metrics.set("prob_beta_exceeds", 0.03125);
  result.set("metrics", std::move(metrics));
  doc.set("result", std::move(result));
  return doc;
}

void report() {
  bench::print_header("Serve results store: record framing");
  const json::Value payload = sample_payload(0);
  const std::string line = serve::ResultsStore::frame(payload);
  Table t({"quantity", "value"});
  t.add_row({"framed record bytes", std::to_string(line.size())});
  t.add_row({"frame overhead bytes", "9 (crc32 hex + space)"});
  bench::emit(t, "serve_store.csv");
}

void BM_StoreFrame(benchmark::State& state) {
  const json::Value payload = sample_payload(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::ResultsStore::frame(payload));
  }
}
BENCHMARK(BM_StoreFrame);

void BM_StoreUnframe(benchmark::State& state) {
  const std::string line =
      serve::ResultsStore::frame(sample_payload(7));
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve::ResultsStore::unframe(line));
  }
}
BENCHMARK(BM_StoreUnframe);

void BM_StoreAppend(benchmark::State& state) {
  const bool sync = state.range(0) != 0;
  const std::string path = "/tmp/leak_bench_store.jsonl";
  std::remove(path.c_str());
  serve::ResultsStore store(path);
  const json::Value payload = sample_payload(3);
  for (auto _ : state) {
    if (!store.append(payload, sync)) {
      state.SkipWithError("append failed");
      break;
    }
  }
  state.SetLabel(sync ? "fsync per record" : "buffered");
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreAppend)->Arg(0)->Arg(1);

void BM_StoreScan(benchmark::State& state) {
  const std::string path = "/tmp/leak_bench_store_scan.jsonl";
  std::remove(path.c_str());
  serve::ResultsStore store(path);
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    if (!store.append(sample_payload(i), /*sync=*/false)) {
      state.SkipWithError("append failed");
      return;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.scan());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  std::remove(path.c_str());
}
BENCHMARK(BM_StoreScan)->Arg(100)->Arg(1000);

}  // namespace

LEAK_BENCH_MAIN(report)
