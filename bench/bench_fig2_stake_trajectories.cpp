// Figure 2 — stake trajectories of active / semi-active / inactive
// validators during an inactivity leak, with ejection markers
// (paper: inactive ejected at 4685, semi-active at 7652).
#include "bench/bench_common.hpp"

#include "src/analytic/stake_model.hpp"
#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"

namespace {

using namespace leak;

void report() {
  const auto cfg = analytic::AnalyticConfig::paper();
  bench::print_header("Figure 2: stake trajectories during the leak (ETH)");
  Table t({"epoch", "active", "semi-active", "inactive",
           "semi (discrete)", "inactive (discrete)"});
  const auto semi_d =
      analytic::simulate_discrete(analytic::Behavior::kSemiActive, 8000, cfg);
  const auto inact_d =
      analytic::simulate_discrete(analytic::Behavior::kInactive, 8000, cfg);
  for (std::size_t e = 0; e <= 8000; e += 500) {
    const double te = static_cast<double>(e);
    const auto cell = [&](const analytic::DiscreteTrajectory& d) {
      const bool gone =
          d.ejection_epoch >= 0 &&
          static_cast<std::int64_t>(e) >= d.ejection_epoch;
      return gone ? std::string("ejected") : Table::fmt(d.stake[e], 3);
    };
    t.add_row({std::to_string(e),
               Table::fmt(analytic::stake_with_ejection(
                              analytic::Behavior::kActive, te, cfg), 3),
               Table::fmt(analytic::stake_with_ejection(
                              analytic::Behavior::kSemiActive, te, cfg), 3),
               Table::fmt(analytic::stake_with_ejection(
                              analytic::Behavior::kInactive, te, cfg), 3),
               cell(semi_d), cell(inact_d)});
  }
  bench::emit(t, "fig2.csv");

  Table m({"quantity", "paper", "computed (paper cfg)",
           "computed (stated 16.75)"});
  const auto stated = analytic::AnalyticConfig::stated();
  m.add_row({"inactive ejection epoch", "4685",
             Table::fmt(analytic::ejection_epoch(
                            analytic::Behavior::kInactive, cfg), 1),
             Table::fmt(analytic::ejection_epoch(
                            analytic::Behavior::kInactive, stated), 1)});
  m.add_row({"semi-active ejection epoch", "7652",
             Table::fmt(analytic::ejection_epoch(
                            analytic::Behavior::kSemiActive, cfg), 1),
             Table::fmt(analytic::ejection_epoch(
                            analytic::Behavior::kSemiActive, stated), 1)});
  bench::emit(m, "fig2_ejections.csv");
}

void BM_ClosedFormStake(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(
        analytic::stake(analytic::Behavior::kInactive, t, cfg));
  }
}
BENCHMARK(BM_ClosedFormStake);

void BM_DiscreteTrajectory(benchmark::State& state) {
  const auto cfg = analytic::AnalyticConfig::paper();
  for (auto _ : state) {
    benchmark::DoNotOptimize(analytic::simulate_discrete(
        analytic::Behavior::kInactive,
        static_cast<std::size_t>(state.range(0)), cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DiscreteTrajectory)->Arg(1000)->Arg(8000);

void BM_RegistryLeakEpoch(benchmark::State& state) {
  // Cost of one full penalty-engine epoch over a large registry.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  chain::ValidatorRegistry reg(n);
  penalties::InactivityTracker tracker(reg, penalties::SpecConfig::paper());
  const std::vector<std::uint8_t> active(n, 0);
  std::uint64_t epoch = 5;
  for (auto _ : state) {
    tracker.process_epoch(Epoch{epoch++}, Epoch{0}, active);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RegistryLeakEpoch)->Arg(1000)->Arg(100000);

}  // namespace

LEAK_BENCH_MAIN(report)
