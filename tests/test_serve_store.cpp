// Tests for the append-only CRC-framed results store: framing and
// unframing, append/scan round-trips, torn-tail detection at every
// truncation point, and repair — the durability half of the sweep
// service's kill -9 contract.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "src/serve/store.hpp"
#include "src/support/crc32.hpp"

namespace leak::serve {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "store_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".jsonl";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  [[nodiscard]] json::Value payload(int cell) const {
    json::Value doc = json::Value::object();
    doc.set("type", "cell");
    doc.set("cell", std::int64_t{cell});
    return doc;
  }

  [[nodiscard]] std::string read_file() const {
    std::ifstream in(path_);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  std::string path_;
};

TEST_F(StoreTest, FrameIsCrcSpaceCompactJson) {
  const json::Value doc = payload(7);
  const std::string line = ResultsStore::frame(doc);
  const std::string body = doc.dump();
  ASSERT_GT(line.size(), 9u);
  EXPECT_EQ(line.substr(9), body);
  EXPECT_EQ(line[8], ' ');
  EXPECT_EQ(line.substr(0, 8), crc32::to_hex(crc32::of(body)));
}

TEST_F(StoreTest, UnframeRejectsEveryCorruption) {
  const std::string good = ResultsStore::frame(payload(1));
  ASSERT_TRUE(ResultsStore::unframe(good).has_value());

  // Flip one payload byte: CRC mismatch.
  std::string flipped = good;
  flipped[10] ^= 1;
  EXPECT_FALSE(ResultsStore::unframe(flipped).has_value());
  // Corrupt the CRC field itself.
  std::string bad_crc = good;
  bad_crc[0] = bad_crc[0] == 'f' ? '0' : 'f';
  EXPECT_FALSE(ResultsStore::unframe(bad_crc).has_value());
  // Structural damage.
  EXPECT_FALSE(ResultsStore::unframe("").has_value());
  EXPECT_FALSE(ResultsStore::unframe("too short").has_value());
  EXPECT_FALSE(ResultsStore::unframe(good.substr(0, 12)).has_value());
  EXPECT_FALSE(
      ResultsStore::unframe("zzzzzzzz " + good.substr(9)).has_value());
  // Valid CRC over a non-JSON body.
  const std::string not_json = "not json at all";
  EXPECT_FALSE(
      ResultsStore::unframe(crc32::to_hex(crc32::of(not_json)) + " " +
                            not_json)
          .has_value());
}

TEST_F(StoreTest, AppendScanRoundTrips) {
  ResultsStore store(path_);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.append(payload(i)));
  }
  std::string error;
  const StoreScan scan = store.scan(&error);
  EXPECT_FALSE(scan.torn_tail) << error;
  ASSERT_EQ(scan.records.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(scan.records[static_cast<std::size_t>(i)]
                  .payload.find("cell")
                  ->as_int(),
              i);
  }
  EXPECT_EQ(scan.valid_bytes, read_file().size());
}

TEST_F(StoreTest, MissingFileScansEmpty) {
  const ResultsStore store(path_);
  std::string error;
  const StoreScan scan = store.scan(&error);
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, 0u);
}

TEST_F(StoreTest, TornTailAtEveryTruncationPointIsDetected) {
  ResultsStore store(path_);
  ASSERT_TRUE(store.append(payload(0)));
  ASSERT_TRUE(store.append(payload(1)));
  const std::string full = read_file();
  const std::size_t first_line = full.find('\n') + 1;

  // Truncating anywhere inside the second record (including dropping
  // just the trailing newline) must keep exactly the first record.
  for (std::size_t cut = first_line + 1; cut < full.size(); ++cut) {
    std::ofstream(path_, std::ios::trunc) << full.substr(0, cut);
    const StoreScan scan = store.scan();
    EXPECT_TRUE(scan.torn_tail) << "cut at " << cut;
    ASSERT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first_line) << "cut at " << cut;
  }
}

TEST_F(StoreTest, RepairTruncatesTornTailAndAppendsContinue) {
  ResultsStore store(path_);
  ASSERT_TRUE(store.append(payload(0)));
  const std::string full = read_file();
  std::ofstream(path_, std::ios::app) << "deadbeef {\"torn";

  ASSERT_TRUE(store.scan().torn_tail);
  std::string error;
  ASSERT_TRUE(store.repair(&error)) << error;
  EXPECT_EQ(read_file(), full);

  // Appends after repair land on the clean boundary.
  ASSERT_TRUE(store.append(payload(1)));
  const StoreScan scan = store.scan();
  EXPECT_FALSE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[1].payload.find("cell")->as_int(), 1);
}

TEST_F(StoreTest, GarbageMidFileStopsTheScanAtTheGarbage) {
  ResultsStore store(path_);
  ASSERT_TRUE(store.append(payload(0)));
  std::ofstream(path_, std::ios::app) << "garbage line\n";
  ResultsStore tail_writer(path_);
  ASSERT_TRUE(tail_writer.append(payload(1)));

  // The valid prefix is only the first record: a store is trusted
  // exactly up to its first invalid line, never beyond.
  const StoreScan scan = store.scan();
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 1u);
}

TEST_F(StoreTest, AppendFramedValidatesBeforeWriting) {
  ResultsStore store(path_);
  EXPECT_FALSE(store.append_framed("deadbeef {\"bad\": true}"));
  EXPECT_TRUE(store.append_framed(ResultsStore::frame(payload(3))));
  const StoreScan scan = store.scan();
  ASSERT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.records[0].payload.find("cell")->as_int(), 3);
}

}  // namespace
}  // namespace leak::serve
