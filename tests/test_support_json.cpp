// Tests for the JSON document model: serializer/parser round-trips,
// strictness, and error reporting.
#include <gtest/gtest.h>

#include <string>

#include "src/support/json.hpp"

namespace leak::json {
namespace {

TEST(JsonTest, ScalarDump) {
  EXPECT_EQ(Value(nullptr).dump(), "null");
  EXPECT_EQ(Value(true).dump(), "true");
  EXPECT_EQ(Value(false).dump(), "false");
  EXPECT_EQ(Value(42).dump(), "42");
  EXPECT_EQ(Value(-7).dump(), "-7");
  EXPECT_EQ(Value(0.33).dump(), "0.33");
  EXPECT_EQ(Value("hi").dump(), "\"hi\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Value obj = Value::object();
  obj.set("zebra", 1);
  obj.set("alpha", 2);
  obj.set("mid", 3);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
  // Overwrite keeps the original position.
  obj.set("zebra", 9);
  EXPECT_EQ(obj.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":3}");
}

TEST(JsonTest, StringEscaping) {
  EXPECT_EQ(Value("a\"b\\c\n\t").dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(Value(std::string(1, '\x01')).dump(), "\"\\u0001\"");
}

TEST(JsonTest, RoundTripComplexDocument) {
  Value doc = Value::object();
  doc.set("name", "bouncing-mc");
  doc.set("paths", 4000);
  doc.set("beta0", 0.33);
  doc.set("flag", true);
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  arr.push_back(nullptr);
  doc.set("list", std::move(arr));
  Value inner = Value::object();
  inner.set("k", -12);
  doc.set("inner", std::move(inner));

  for (const int indent : {-1, 0, 2}) {
    const auto parsed = Value::parse(doc.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent " << indent;
    EXPECT_EQ(*parsed, doc) << "indent " << indent;
  }
}

TEST(JsonTest, DoubleRoundTripIsExact) {
  for (const double v : {0.1, 1.0 / 3.0, 1e-300, 6.02e23, -0.0, 4024.0}) {
    const auto parsed = Value::parse(Value(v).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->as_double(), v);
  }
}

TEST(JsonTest, ParseDistinguishesIntAndDouble) {
  const auto a = Value::parse("[7, 7.0, -3, 1e2]");
  ASSERT_TRUE(a.has_value());
  EXPECT_TRUE(a->at(0).is_int());
  EXPECT_TRUE(a->at(1).is_double());
  EXPECT_TRUE(a->at(2).is_int());
  EXPECT_TRUE(a->at(3).is_double());
  EXPECT_EQ(a->at(0).as_int(), 7);
  EXPECT_EQ(a->at(3).as_double(), 100.0);
}

TEST(JsonTest, ParseUnicodeEscapes) {
  const auto v = Value::parse("\"a\\u00e9\\ud83d\\ude00z\"");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\xc3\xa9\xf0\x9f\x98\x80z");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  std::string error;
  for (const char* bad :
       {"", "{", "[1,]", "{\"a\":}", "tru", "01x", "\"unterminated",
        "[1] trailing", "{\"a\":1,\"a\":2}", "\"\\ud800\"", "nan",
        "{\"a\" 1}", "[1 2]", "01", "-007", "[0.5, 00.5]"}) {
    EXPECT_FALSE(Value::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, ParseReportsByteOffset) {
  std::string error;
  EXPECT_FALSE(Value::parse("[1, 2, x]", &error).has_value());
  EXPECT_NE(error.find("byte 7"), std::string::npos) << error;
}

TEST(JsonTest, TypeMismatchThrows) {
  const Value v(42);
  EXPECT_THROW((void)v.as_string(), std::logic_error);
  EXPECT_THROW((void)v.as_array(), std::logic_error);
  EXPECT_THROW((void)Value("s").as_int(), std::logic_error);
  // as_double widens ints by design.
  EXPECT_EQ(v.as_double(), 42.0);
}

TEST(JsonTest, DeepNestingRejected) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Value::parse(deep).has_value());
  // Sane depth still fine.
  std::string ok(30, '[');
  ok += std::string(30, ']');
  EXPECT_TRUE(Value::parse(ok).has_value());
}

TEST(JsonTest, PrettyPrintShape) {
  Value obj = Value::object();
  obj.set("a", 1);
  EXPECT_EQ(obj.dump(2), "{\n  \"a\": 1\n}");
}

}  // namespace
}  // namespace leak::json
