// Tests for the branch active-stake ratios (Eqs 5, 8, 10, 11, 13) and
// the Figure 3 behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/ratio_model.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(HonestRatio, StartsAtP0) {
  for (double p0 : {0.2, 0.4, 0.6}) {
    EXPECT_NEAR(active_ratio_honest(0.0, p0, kPaper), p0, 1e-12);
  }
}

TEST(HonestRatio, MatchesEq5) {
  // Eq 5: p0 / (p0 + (1-p0) e^{-t^2/2^25}).
  const double t = 2000.0, p0 = 0.4;
  const double expect =
      p0 / (p0 + (1.0 - p0) * std::exp(-t * t / std::pow(2.0, 25)));
  EXPECT_NEAR(active_ratio_honest(t, p0, kPaper), expect, 1e-12);
}

TEST(HonestRatio, MonotoneIncreasing) {
  double prev = 0.0;
  for (double t = 0.0; t <= 6000.0; t += 50.0) {
    const double r = active_ratio_honest(t, 0.3, kPaper);
    EXPECT_GE(r, prev);
    prev = r;
  }
}

TEST(HonestRatio, JumpsToOneAtEjection) {
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  EXPECT_LT(active_ratio_honest(t_eject - 1.0, 0.3, kPaper), 1.0);
  EXPECT_DOUBLE_EQ(active_ratio_honest(t_eject + 1.0, 0.3, kPaper), 1.0);
}

TEST(HonestRatio, Fig3CurveShape) {
  // p0 = 0.6 crosses 2/3 well before ejection; p0 = 0.5 and below only
  // cross at the ejection jump (Figure 3 discussion).
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  bool crossed_before = false;
  for (double t = 0.0; t < t_eject - 5.0; t += 10.0) {
    if (active_ratio_honest(t, 0.6, kPaper) > 2.0 / 3.0) {
      crossed_before = true;
      break;
    }
  }
  EXPECT_TRUE(crossed_before);
  EXPECT_LT(active_ratio_honest(t_eject - 5.0, 0.5, kPaper), 2.0 / 3.0);
}

TEST(HonestRatio, ParamValidation) {
  EXPECT_THROW(static_cast<void>(active_ratio_honest(0.0, -0.1, kPaper)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(active_ratio_honest(0.0, 1.1, kPaper)),
               std::invalid_argument);
}

TEST(SlashingRatio, StartsAboveHonest) {
  // Byzantine active on both branches: the branch starts with
  // p0 (1-b0) + b0 active share.
  const double p0 = 0.5, b0 = 0.2;
  const double r0 = active_ratio_slashing(0.0, p0, b0, kPaper);
  const double expect =
      (p0 * (1 - b0) + b0) / (p0 * (1 - b0) + b0 + (1 - p0) * (1 - b0));
  EXPECT_NEAR(r0, expect, 1e-12);
  EXPECT_GT(r0, active_ratio_honest(0.0, p0, kPaper));
}

TEST(SlashingRatio, MatchesEq8) {
  const double t = 1500.0, p0 = 0.5, b0 = 0.15;
  const double decay = std::exp(-t * t / std::pow(2.0, 25));
  const double expect = (p0 * (1 - b0) + b0) /
                        (p0 * (1 - b0) + b0 + (1 - p0) * (1 - b0) * decay);
  EXPECT_NEAR(active_ratio_slashing(t, p0, b0, kPaper), expect, 1e-12);
}

TEST(SlashingRatio, ReducesToHonestAtZeroBeta) {
  for (double t : {0.0, 1000.0, 3000.0}) {
    EXPECT_NEAR(active_ratio_slashing(t, 0.4, 0.0, kPaper),
                active_ratio_honest(t, 0.4, kPaper), 1e-12);
  }
}

TEST(SemiActiveRatio, MatchesEq10) {
  const double t = 400.0, p0 = 0.5, b0 = 0.33;
  const double semi = std::exp(-3.0 * t * t / std::pow(2.0, 28));
  const double inact = std::exp(-t * t / std::pow(2.0, 25));
  const double act = p0 * (1 - b0) + b0 * semi;
  const double expect = act / (act + (1 - p0) * (1 - b0) * inact);
  EXPECT_NEAR(active_ratio_semiactive(t, p0, b0, kPaper), expect, 1e-12);
}

TEST(SemiActiveRatio, BelowSlashingRatio) {
  // Semi-active Byzantine stake decays, so the branch recovers more
  // slowly than with the always-active (slashable) strategy.
  for (double t : {500.0, 1500.0, 3000.0}) {
    EXPECT_LT(active_ratio_semiactive(t, 0.5, 0.2, kPaper),
              active_ratio_slashing(t, 0.5, 0.2, kPaper));
  }
}

TEST(ByzantineProportion, StartsAtBeta0) {
  for (double b0 : {0.1, 0.25, 0.33}) {
    EXPECT_NEAR(byzantine_proportion(0.0, 0.5, b0, kPaper), b0, 1e-12);
  }
}

TEST(ByzantineProportion, PeaksAtHonestEjection) {
  // Before the honest-inactive ejection the proportion grows as the
  // inactive class drains faster than the semi-active Byzantine class;
  // right after the ejection the denominator loses the inactive mass.
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  const double before = byzantine_proportion(t_eject - 50.0, 0.5, 0.3, kPaper);
  const double at = byzantine_proportion(t_eject + 1.0, 0.5, 0.3, kPaper);
  EXPECT_GT(at, before);
  // After the Byzantine (semi-active) ejection it collapses to zero.
  const double t_eject_semi = ejection_epoch(Behavior::kSemiActive, kPaper);
  EXPECT_DOUBLE_EQ(
      byzantine_proportion(t_eject_semi + 1.0, 0.5, 0.3, kPaper), 0.0);
}

TEST(BetaMax, MatchesEq13) {
  const double p0 = 0.5, b0 = 0.3;
  const double t_ej = ejection_epoch(Behavior::kInactive, kPaper);
  const double e = std::exp(-3.0 * t_ej * t_ej / std::pow(2.0, 28));
  const double expect = b0 * e / (p0 * (1 - b0) + b0 * e);
  EXPECT_NEAR(beta_max(p0, b0, kPaper), expect, 1e-12);
}

TEST(BetaMax, PaperExampleCrossesThird) {
  // beta0 = 0.2421 at p0 = 0.5 is exactly the Figure 7 lower bound.
  EXPECT_NEAR(beta_max(0.5, 0.2421, kPaper), 1.0 / 3.0, 5e-4);
  EXPECT_LT(beta_max(0.5, 0.20, kPaper), 1.0 / 3.0);
  EXPECT_GT(beta_max(0.5, 0.30, kPaper), 1.0 / 3.0);
}

TEST(BetaMax, MonotoneInBeta0AndP0) {
  EXPECT_LT(beta_max(0.5, 0.1, kPaper), beta_max(0.5, 0.2, kPaper));
  // Larger honest-active share dilutes the Byzantine peak.
  EXPECT_GT(beta_max(0.3, 0.25, kPaper), beta_max(0.6, 0.25, kPaper));
}

// Parameterized property: all ratios stay in [0, 1] over a grid.
class RatioRange : public ::testing::TestWithParam<std::pair<double, double>> {
};

TEST_P(RatioRange, AllRatiosInUnitInterval) {
  const auto [p0, b0] = GetParam();
  for (double t = 0.0; t <= 9000.0; t += 250.0) {
    for (const double r :
         {active_ratio_honest(t, p0, kPaper),
          active_ratio_slashing(t, p0, b0, kPaper),
          active_ratio_semiactive(t, p0, b0, kPaper),
          byzantine_proportion(t, p0, b0, kPaper)}) {
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioRange,
    ::testing::Values(std::pair{0.1, 0.05}, std::pair{0.3, 0.15},
                      std::pair{0.5, 0.33}, std::pair{0.7, 0.25},
                      std::pair{0.9, 0.01}, std::pair{0.0, 0.2},
                      std::pair{1.0, 0.2}));

}  // namespace
}  // namespace leak::analytic
