// Tests for swap-or-not shuffling and epoch duty assignment.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/chain/shuffle.hpp"

namespace leak::chain {
namespace {

const crypto::Digest kSeed = crypto::sha256("shuffle-seed");

TEST(SwapOrNot, IsAPermutation) {
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 64ULL, 333ULL}) {
    auto perm = shuffle_list(n, kSeed);
    std::sort(perm.begin(), perm.end());
    for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(perm[i], i) << n;
  }
}

TEST(SwapOrNot, DeterministicPerSeed) {
  EXPECT_EQ(shuffle_list(100, kSeed), shuffle_list(100, kSeed));
  EXPECT_NE(shuffle_list(100, kSeed),
            shuffle_list(100, crypto::sha256("other")));
}

TEST(SwapOrNot, ActuallyShuffles) {
  const auto perm = shuffle_list(256, kSeed);
  std::size_t fixed = 0;
  for (std::uint64_t i = 0; i < perm.size(); ++i) fixed += (perm[i] == i);
  EXPECT_LT(fixed, 10u);  // E[fixed points] ~ 1
}

TEST(SwapOrNot, BatchedListMatchesPerIndexReference) {
  // shuffle_list is the hash-batched variant; it must agree elementwise
  // with the reference compute_shuffled_index for every index.
  for (std::uint64_t n : {1ULL, 5ULL, 64ULL, 257ULL, 300ULL}) {
    const auto perm = shuffle_list(n, kSeed);
    for (std::uint64_t i = 0; i < n; ++i) {
      EXPECT_EQ(perm[i], shuffled_index(i, n, kSeed)) << n << ":" << i;
    }
  }
}

TEST(SwapOrNot, RoundsComposeIncrementally) {
  // 0 rounds is the identity.
  EXPECT_EQ(shuffled_index(5, 100, kSeed, 0), 5u);
}

TEST(SwapOrNot, OutOfRangeThrows) {
  EXPECT_THROW(static_cast<void>(shuffled_index(5, 5, kSeed)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(shuffled_index(0, 0, kSeed)),
               std::invalid_argument);
}

class RosterFixture : public ::testing::Test {
 protected:
  RosterFixture() : registry(128) {}
  ValidatorRegistry registry;
};

TEST_F(RosterFixture, EveryValidatorAttestsExactlyOnce) {
  DutyRoster roster(registry, Epoch{3}, 42);
  std::vector<int> seen(128, 0);
  std::size_t total = 0;
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
    for (const auto v : roster.committee(pos)) {
      ++seen[v.value()];
      ++total;
      EXPECT_EQ(roster.committee_position_of(v), pos);
    }
  }
  EXPECT_EQ(total, 128u);
  for (int c : seen) EXPECT_EQ(c, 1);
}

TEST_F(RosterFixture, CommitteesBalanced) {
  DutyRoster roster(registry, Epoch{1}, 7);
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
    EXPECT_EQ(roster.committee(pos).size(), 128u / kSlotsPerEpoch);
  }
}

TEST_F(RosterFixture, ProposersValidAndSpread) {
  DutyRoster roster(registry, Epoch{1}, 7);
  std::vector<std::uint32_t> props;
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
    const auto p = roster.proposer(pos);
    EXPECT_LT(p.value(), 128u);
    props.push_back(p.value());
  }
  // Not all the same proposer.
  std::sort(props.begin(), props.end());
  props.erase(std::unique(props.begin(), props.end()), props.end());
  EXPECT_GT(props.size(), 8u);
}

TEST_F(RosterFixture, RosterChangesAcrossEpochs) {
  DutyRoster a(registry, Epoch{1}, 7);
  DutyRoster b(registry, Epoch{2}, 7);
  bool any_diff = false;
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch && !any_diff; ++pos) {
    if (a.committee(pos) != b.committee(pos)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(RosterFixture, ExitedValidatorsExcluded) {
  for (std::uint32_t i = 0; i < 32; ++i) {
    registry.eject(ValidatorIndex{i}, Epoch{0});
  }
  DutyRoster roster(registry, Epoch{2}, 9);
  EXPECT_EQ(roster.active_count(), 96u);
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
    for (const auto v : roster.committee(pos)) {
      EXPECT_GE(v.value(), 32u);
    }
    EXPECT_GE(roster.proposer(pos).value(), 32u);
  }
}

TEST_F(RosterFixture, LowBalanceProposesLessOften) {
  // Balance-weighted proposer sampling: a validator at the ejection
  // boundary (16 ETH) should propose roughly half as often as a 32 ETH
  // one.  Count over many epochs.
  ValidatorRegistry reg(64);
  for (std::uint32_t i = 0; i < 32; ++i) {
    reg.at(ValidatorIndex{i}).balance = Gwei::from_eth(16.0);
  }
  std::size_t low = 0, high = 0;
  for (std::uint64_t e = 1; e <= 120; ++e) {
    DutyRoster roster(reg, Epoch{e}, 1234);
    for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
      if (roster.proposer(pos).value() < 32) {
        ++low;
      } else {
        ++high;
      }
    }
  }
  const double ratio = static_cast<double>(low) / static_cast<double>(high);
  EXPECT_NEAR(ratio, 0.5, 0.12);
}

TEST_F(RosterFixture, EmptyActiveSetThrows) {
  ValidatorRegistry reg(2);
  reg.eject(ValidatorIndex{0}, Epoch{0});
  reg.eject(ValidatorIndex{1}, Epoch{0});
  EXPECT_THROW(DutyRoster(reg, Epoch{1}, 0), std::invalid_argument);
}

}  // namespace
}  // namespace leak::chain
