// Cross-module integration tests: analytic model vs protocol simulators,
// end-to-end scenario outcomes matching Table 1, and failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/solvers.hpp"
#include "src/analytic/tables.hpp"
#include "src/bouncing/distribution.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/sim/slot_sim.hpp"

namespace leak {
namespace {

const analytic::AnalyticConfig kStated = analytic::AnalyticConfig::stated();

// --- analytic vs discrete-protocol agreement across the beta0 grid ----

class AnalyticVsSim : public ::testing::TestWithParam<double> {};

TEST_P(AnalyticVsSim, SlashableStrategyTimesAgree) {
  const double beta0 = GetParam();
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 400;
  cfg.beta0 = beta0;
  cfg.p0 = 0.5;
  cfg.strategy = sim::Strategy::kSlashable;
  cfg.max_epochs = 6000;
  const auto r = sim::run_partition_sim(cfg);
  const double analytic_t =
      analytic::time_to_supermajority_slashing(0.5, beta0, kStated);
  ASSERT_GT(r.branch[0].supermajority_epoch, 0);
  EXPECT_NEAR(static_cast<double>(r.branch[0].supermajority_epoch),
              analytic_t, std::max(10.0, analytic_t * 0.015))
      << "beta0=" << beta0;
}

TEST_P(AnalyticVsSim, SemiActiveStrategyTimesAgree) {
  const double beta0 = GetParam();
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 400;
  cfg.beta0 = beta0;
  cfg.p0 = 0.5;
  cfg.strategy = sim::Strategy::kSemiActiveFinalize;
  cfg.max_epochs = 6000;
  const auto r = sim::run_partition_sim(cfg);
  const double analytic_t =
      analytic::time_to_supermajority_semiactive(0.5, beta0, kStated);
  ASSERT_GT(r.branch[0].supermajority_epoch, 0);
  EXPECT_NEAR(static_cast<double>(r.branch[0].supermajority_epoch),
              analytic_t, std::max(12.0, analytic_t * 0.02))
      << "beta0=" << beta0;
}

INSTANTIATE_TEST_SUITE_P(BetaGrid, AnalyticVsSim,
                         ::testing::Values(0.10, 0.15, 0.20, 0.33));

// --- Table 1 end-to-end: each scenario's qualitative outcome ----------

TEST(Table1EndToEnd, Scenario51TwoFinalizedBranches) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.strategy = sim::Strategy::kNone;
  cfg.max_epochs = 5000;
  const auto r = sim::run_partition_sim(cfg);
  EXPECT_GT(r.conflicting_finalization_epoch, 0);  // Safety lost
}

TEST(Table1EndToEnd, Scenario521FasterSafetyLossAndSlashable) {
  // The epoch-level sim shows the speedup; the slot-level sim shows the
  // strategy is slashable once communication is restored.
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.beta0 = 0.33;
  cfg.strategy = sim::Strategy::kSlashable;
  cfg.max_epochs = 2000;
  const auto fast = sim::run_partition_sim(cfg);
  EXPECT_GT(fast.conflicting_finalization_epoch, 0);
  EXPECT_LT(fast.conflicting_finalization_epoch, 600);

  sim::SlotSimConfig scfg;
  scfg.n_honest = 30;
  scfg.n_byzantine = 2;
  scfg.epochs = 8;
  scfg.p0 = 0.5;
  scfg.gst_epoch = 4.0;
  const auto slot = sim::SlotSim(scfg).run();
  EXPECT_EQ(slot.slashed.size(), 2u);
}

TEST(Table1EndToEnd, Scenario522NonSlashableSafetyLoss) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.beta0 = 0.33;
  cfg.strategy = sim::Strategy::kSemiActiveFinalize;
  cfg.max_epochs = 2000;
  const auto r = sim::run_partition_sim(cfg);
  EXPECT_GT(r.conflicting_finalization_epoch, 0);
  EXPECT_LT(r.conflicting_finalization_epoch, 700);
  // Semi-active alternation never produces two attestations with the
  // same target epoch: verify non-slashability structurally.
  chain::Attestation a, b;
  a.attester = b.attester = ValidatorIndex{1};
  a.source.epoch = Epoch{2};
  a.target.epoch = Epoch{3};  // active on branch 1 at epoch 3
  b.source.epoch = Epoch{3};
  b.target.epoch = Epoch{4};  // active on branch 2 at epoch 4
  EXPECT_FALSE(chain::is_slashable_pair(a, b));
}

TEST(Table1EndToEnd, Scenario523BetaBeyondThird) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 600;
  cfg.beta0 = 0.26;  // above the ~0.246 bound for the 16.75 threshold
  cfg.strategy = sim::Strategy::kSemiActiveOverthrow;
  cfg.max_epochs = 5000;
  const auto r = sim::run_partition_sim(cfg);
  EXPECT_TRUE(r.beta_exceeded_third_both);
}

TEST(Table1EndToEnd, Scenario53ProbabilisticThreshold) {
  bouncing::McConfig cfg;
  cfg.beta0 = 1.0 / 3.0;
  cfg.paths = 1500;
  cfg.epochs = 2500;
  cfg.seed = 31;
  const auto r = bouncing::run_bouncing_mc(cfg, {2500});
  EXPECT_GT(r.prob_beta_exceeds[0], 0.3);  // "probably": near one half
}

// --- failure injection -------------------------------------------------

TEST(FailureInjection, LatePartitionHealStillSafeBeforeBound) {
  // Partition healing before the leak can finalize anything conflicting
  // preserves Safety end to end (slot-level protocol run).
  for (double gst_epoch : {2.0, 6.0}) {
    sim::SlotSimConfig cfg;
    cfg.n_honest = 24;
    cfg.epochs = 10;
    cfg.p0 = 0.5;
    cfg.gst_epoch = gst_epoch;
    const auto r = sim::SlotSim(cfg).run();
    EXPECT_EQ(r.safety_violations, 0u) << gst_epoch;
  }
}

TEST(FailureInjection, LopsidedPartitionKeepsMajoritySideLive) {
  // p0 = 0.8: region one holds > 2/3 of stake and keeps finalizing
  // through the partition; region two stalls; no safety violation.
  sim::SlotSimConfig cfg;
  cfg.n_honest = 30;
  cfg.epochs = 8;
  cfg.p0 = 0.8;
  cfg.gst_epoch = 100.0;
  const auto r = sim::SlotSim(cfg).run();
  EXPECT_GE(r.finalized_epoch[0], 5u);                  // region one
  EXPECT_LE(r.finalized_epoch[cfg.n_honest - 1], 1u);   // region two
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(FailureInjection, EjectionWaveEndsLeakEvenWithByzantineAbstention) {
  // Even when Byzantine validators go fully silent (worst case for
  // liveness), the ejection wave restores a supermajority of actives.
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.beta0 = 0.3;
  cfg.p0 = 0.5;
  cfg.strategy = sim::Strategy::kNone;  // byzantine stake inactive forever
  cfg.max_epochs = 5500;
  const auto r = sim::run_partition_sim(cfg);
  EXPECT_GT(r.branch[0].supermajority_epoch, 0);
}

// --- cross-validation: Eq 24 closed form vs Monte Carlo ---------------

TEST(CrossValidation, Eq24VsMonteCarloAtMedian) {
  // Compare at beta0 = 1/3 where the prediction (0.5) is variance-free.
  const auto model = analytic::AnalyticConfig::paper();
  bouncing::StakeLaw law(0.5, model);
  const double closed =
      bouncing::prob_beta_exceeds_third(3000.0, 1.0 / 3.0, law, model);
  bouncing::McConfig cfg;
  cfg.beta0 = 1.0 / 3.0;
  cfg.paths = 2000;
  cfg.epochs = 3000;
  cfg.model = model;
  const auto mc = bouncing::run_bouncing_mc(cfg, {3000});
  EXPECT_NEAR(mc.prob_beta_exceeds[0], closed, 0.12);
}

TEST(CrossValidation, Fig2TrajectoriesDiscreteVsRegistry) {
  // The analytic discrete recurrence and the Gwei-integer penalty engine
  // produce the same inactive-stake trajectory within 0.5%.
  chain::ValidatorRegistry reg(1);
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
  spec.ejection_balance = Gwei{0};
  penalties::InactivityTracker tracker(reg, spec);
  auto cfg = analytic::AnalyticConfig::paper();
  cfg.ejection_threshold = 0.0;
  const auto traj =
      analytic::simulate_discrete(analytic::Behavior::kInactive, 3000, cfg);
  for (std::uint64_t t = 1; t <= 3000; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {false});
  }
  EXPECT_NEAR(reg.at(ValidatorIndex{0}).balance.eth() / traj.stake[3000],
              1.0, 5e-3);
}

}  // namespace
}  // namespace leak
