// Contract of the batched Monte Carlo engine: the block-scheduled SoA
// kernel and every block-converted driver are bit-identical to the
// scalar reference for every (block_size, threads) combination, the
// summary mode never materializes the per-path matrix while producing
// the same summaries, and the ordered-merge block runner feeds the
// reduction in index order with bounded in-flight memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"
#include "tests/oracles/scalar_oracles.hpp"

namespace leak {
namespace {

// The (block, threads) grid every driver is checked over.  `0` stands
// for "paths" (resolved per test), exercising one-block scheduling.
std::vector<std::size_t> block_grid(std::size_t paths) {
  return {1, 7, 64, paths};
}
constexpr unsigned kThreadGrid[] = {1, 4};

void expect_mc_equal(const bouncing::McResult& a, const bouncing::McResult& b,
                     const std::string& label) {
  EXPECT_EQ(a.epochs, b.epochs) << label;
  EXPECT_EQ(a.stakes, b.stakes) << label;
  EXPECT_EQ(a.ejected_fraction, b.ejected_fraction) << label;
  EXPECT_EQ(a.capped_fraction, b.capped_fraction) << label;
  EXPECT_EQ(a.prob_beta_exceeds, b.prob_beta_exceeds) << label;
  EXPECT_EQ(a.median_alive_estimate, b.median_alive_estimate) << label;
  ASSERT_EQ(a.stake_stats.size(), b.stake_stats.size()) << label;
  for (std::size_t k = 0; k < a.stake_stats.size(); ++k) {
    EXPECT_EQ(a.stake_stats[k].count(), b.stake_stats[k].count()) << label;
    EXPECT_EQ(a.stake_stats[k].mean(), b.stake_stats[k].mean()) << label;
    EXPECT_EQ(a.stake_stats[k].variance(), b.stake_stats[k].variance())
        << label;
    EXPECT_EQ(a.stake_stats[k].min(), b.stake_stats[k].min()) << label;
    EXPECT_EQ(a.stake_stats[k].max(), b.stake_stats[k].max()) << label;
  }
}

// Acceptance criterion: the batched kernel reproduces the scalar
// kernel bit-for-bit for block sizes {1, 7, 64, paths} x threads
// {1, 4}, spanning the ejection wave so all three path states
// (capped, bulk, ejected) occur.
TEST(BatchBitIdentity, BouncingMcMatchesScalarForEveryBlockAndThreads) {
  bouncing::McConfig cfg;
  cfg.paths = env::scaled_count(400);
  cfg.epochs = 1200;
  cfg.seed = 41;
  cfg.threads = 1;
  const std::vector<std::size_t> snaps{17, 600, 1200};
  const auto ref = oracle::run_bouncing_mc_scalar(cfg, snaps);
  ASSERT_EQ(ref.stakes.size(), snaps.size());
  for (const std::size_t block : block_grid(cfg.paths)) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      const auto batched = bouncing::run_bouncing_mc(cfg, snaps);
      expect_mc_equal(batched, ref,
                      "block=" + std::to_string(block) +
                          " threads=" + std::to_string(threads));
    }
  }
}

// Summary mode: no per-path matrix, same counts and streaming
// summaries, for every (block, threads) pair.
TEST(BatchBitIdentity, SummaryModeNeverMaterializesPathsAndMatchesFull) {
  bouncing::McConfig cfg;
  cfg.paths = env::scaled_count(300);
  cfg.epochs = 900;
  cfg.seed = 99;
  cfg.threads = 1;
  const std::vector<std::size_t> snaps{450, 900};
  const auto full = bouncing::run_bouncing_mc(cfg, snaps);
  ASSERT_FALSE(full.stakes.empty());
  for (const std::size_t block : block_grid(cfg.paths)) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      cfg.keep_paths = false;
      const auto summary = bouncing::run_bouncing_mc(cfg, snaps);
      cfg.keep_paths = true;
      // The guard: summary mode must not allocate the matrix.
      EXPECT_TRUE(summary.stakes.empty());
      EXPECT_EQ(summary.ejected_fraction, full.ejected_fraction);
      EXPECT_EQ(summary.capped_fraction, full.capped_fraction);
      EXPECT_EQ(summary.prob_beta_exceeds, full.prob_beta_exceeds);
      EXPECT_EQ(summary.median_alive_estimate, full.median_alive_estimate);
      ASSERT_EQ(summary.stake_stats.size(), full.stake_stats.size());
      for (std::size_t k = 0; k < full.stake_stats.size(); ++k) {
        EXPECT_EQ(summary.stake_stats[k].count(),
                  full.stake_stats[k].count());
        EXPECT_EQ(summary.stake_stats[k].mean(), full.stake_stats[k].mean());
        EXPECT_EQ(summary.stake_stats[k].variance(),
                  full.stake_stats[k].variance());
      }
    }
  }
}

// The P-squared median estimate stays close to the exact sample
// median of the alive paths (it is an estimate, not the exact order
// statistic — bit-stability across modes is covered above).
TEST(BatchBitIdentity, MedianEstimateTracksExactMedian) {
  bouncing::McConfig cfg;
  cfg.paths = env::scaled_count(2000);
  cfg.epochs = 2000;
  cfg.seed = 7;
  const auto r = bouncing::run_bouncing_mc(cfg, {2000});
  std::vector<double> alive;
  for (const double s : r.stakes[0]) {
    if (s > 0.0) alive.push_back(s);
  }
  ASSERT_GT(alive.size(), 100u);
  const double exact = quantile(std::move(alive), 0.5);
  EXPECT_NEAR(r.median_alive_estimate[0] / exact, 1.0, 0.02);
}

TEST(BatchBitIdentity, AttackSimIdenticalForEveryBlockAndThreads) {
  bouncing::AttackSimConfig cfg;
  cfg.runs = env::scaled_count(150);
  cfg.honest_validators = 25;
  cfg.max_epochs = 1500;
  cfg.seed = 77;
  cfg.threads = 1;
  cfg.block = 1;
  // The scalar oracle is the fixed reference: the batched driver must
  // reproduce it bit-for-bit at every (block, threads).
  const auto ref = oracle::run_attack_sim_scalar(cfg);
  for (const std::size_t block : block_grid(cfg.runs)) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      const auto r = bouncing::run_attack_sim(cfg);
      EXPECT_EQ(r.durations, ref.durations) << block << "/" << threads;
      EXPECT_EQ(r.break_epochs, ref.break_epochs) << block << "/" << threads;
      EXPECT_EQ(r.mean_duration, ref.mean_duration);
      EXPECT_EQ(r.median_duration, ref.median_duration);
      EXPECT_EQ(r.p99_duration, ref.p99_duration);
      EXPECT_EQ(r.prob_threshold_broken, ref.prob_threshold_broken);
    }
  }
}

TEST(BatchBitIdentity, PopulationEnsembleIdenticalForEveryBlockAndThreads) {
  bouncing::PopulationEnsembleConfig cfg;
  cfg.base.honest_validators = 30;
  cfg.base.epochs = 300;
  cfg.base.beta0 = 1.0 / 3.0;
  cfg.paths = env::scaled_count(12);
  cfg.threads = 1;
  cfg.block = 1;
  const auto ref = oracle::run_population_ensemble_scalar(cfg);
  for (const std::size_t block : block_grid(cfg.paths)) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      const auto r = bouncing::run_population_ensemble(cfg);
      EXPECT_EQ(r.first_exceed_epochs, ref.first_exceed_epochs)
          << block << "/" << threads;
      EXPECT_EQ(r.exceed_fraction, ref.exceed_fraction);
      EXPECT_EQ(r.mean_final_beta, ref.mean_final_beta);
    }
  }
}

TEST(BatchBitIdentity, PartitionTrialsIdenticalForEveryBlockAndThreads) {
  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = 100;
  cfg.base.strategy = sim::Strategy::kNone;
  cfg.base.max_epochs = 500;
  cfg.base.trajectory_stride = 500;
  cfg.trials = env::scaled_count(10);
  cfg.seed = 5;
  cfg.threads = 1;
  cfg.block = 1;
  const auto ref = oracle::run_partition_trials_scalar(cfg);
  for (const std::size_t block : block_grid(cfg.trials)) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      const auto r = sim::run_partition_trials(cfg);
      EXPECT_EQ(r.conflict_epochs, ref.conflict_epochs)
          << block << "/" << threads;
      EXPECT_EQ(r.beta_peaks, ref.beta_peaks) << block << "/" << threads;
      EXPECT_EQ(r.conflicting_fraction, ref.conflicting_fraction);
      EXPECT_EQ(r.beta_exceeded_fraction, ref.beta_exceeded_fraction);
      EXPECT_EQ(r.mean_conflict_epoch, ref.mean_conflict_epoch);
    }
  }
}

// Sweep cells are block-size independent: a registry scenario run at
// block 1 and block 64 emits identical metrics and trial rows.
TEST(BatchBitIdentity, ScenarioRunsAreBlockSizeIndependent) {
  const auto& sc = *scenario::builtin_registry().find("bouncing-mc");
  auto params = sc.spec().defaults();
  params.set("paths", static_cast<std::int64_t>(env::scaled_count(200)));
  params.set("epochs", std::int64_t{400});
  params.set("block", std::int64_t{1});
  const auto base = sc.run(params);
  for (const std::int64_t block : {7, 64, 4096}) {
    params.set("block", block);
    const auto r = sc.run(params);
    EXPECT_EQ(r.metrics, base.metrics) << "block=" << block;
    ASSERT_TRUE(r.trials.has_value());
    EXPECT_EQ(r.trials->to_csv(), base.trials->to_csv()) << "block=" << block;
  }
}

// --- the block runner itself -------------------------------------------

TEST(RunBlocks, CoversEveryTrialExactlyOnce) {
  const runner::TrialRunner pool(4);
  for (const std::size_t n : {1ul, 5ul, 64ul, 129ul}) {
    for (const std::size_t block : {1ul, 7ul, 64ul, 200ul}) {
      std::vector<std::atomic<int>> hits(n);
      pool.run_blocks(n, block, [&](std::size_t begin, std::size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        ASSERT_LE(end - begin, block);
        for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << n << "/" << block << "/" << i;
      }
    }
  }
}

TEST(RunBlocks, ExceptionPropagatesAndPoolStaysUsable) {
  const runner::TrialRunner pool(4);
  EXPECT_THROW(
      pool.run_blocks(256, 8,
                      [&](std::size_t begin, std::size_t) {
                        if (begin >= 64) {
                          throw std::runtime_error("block failed");
                        }
                      }),
      std::runtime_error);
  std::atomic<int> count{0};
  pool.run_blocks(32, 4, [&](std::size_t begin, std::size_t end) {
    count.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(RunBlocksOrdered, MergesInAscendingOrderWithBoundedInFlight) {
  const runner::TrialRunner pool(4);
  constexpr std::size_t kTrials = 96;
  constexpr std::size_t kBlock = 8;
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  std::vector<std::size_t> merge_order;
  std::vector<int> sums;
  pool.run_blocks(
      kTrials, kBlock,
      [&](std::size_t begin, std::size_t end) {
        const int now = in_flight.fetch_add(1) + 1;
        int seen = max_in_flight.load();
        while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        int sum = 0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += static_cast<int>(i);
        }
        return sum;
      },
      [&](std::size_t begin, std::size_t, int sum) {
        in_flight.fetch_sub(1);
        merge_order.push_back(begin / kBlock);  // merge runs exclusively
        sums.push_back(sum);
      });
  ASSERT_EQ(merge_order.size(), kTrials / kBlock);
  for (std::size_t b = 0; b < merge_order.size(); ++b) {
    EXPECT_EQ(merge_order[b], b);
  }
  EXPECT_EQ(std::accumulate(sums.begin(), sums.end(), 0),
            static_cast<int>(kTrials * (kTrials - 1) / 2));
  // A worker holds at most one unmerged block: with 4 workers no more
  // than 4 sim results may exist before their merge turn.
  EXPECT_LE(max_in_flight.load(), 4);
}

TEST(RunBlocksOrdered, SerialPathAndExceptions) {
  const runner::TrialRunner pool(1);
  std::vector<std::size_t> order;
  pool.run_blocks(
      10, 3, [](std::size_t begin, std::size_t) { return begin; },
      [&](std::size_t begin, std::size_t, std::size_t value) {
        EXPECT_EQ(begin, value);
        order.push_back(begin);
      });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 3, 6, 9}));

  const runner::TrialRunner parallel(4);
  EXPECT_THROW(parallel.run_blocks(
                   64, 4,
                   [](std::size_t begin, std::size_t) -> int {
                     if (begin == 32) throw std::invalid_argument("sim");
                     return 0;
                   },
                   [](std::size_t, std::size_t, int) {}),
               std::invalid_argument);
  EXPECT_THROW(parallel.run_blocks(
                   64, 4, [](std::size_t, std::size_t) { return 0; },
                   [](std::size_t begin, std::size_t, int) {
                     if (begin == 16) throw std::invalid_argument("merge");
                   }),
               std::invalid_argument);
}

TEST(ResolveBlock, ExplicitWinsElseEnvElseDefault) {
  EXPECT_EQ(runner::resolve_block(17), 17u);
  EXPECT_GE(runner::resolve_block(0), 1u);
}

// The scalar oracle ignores block/keep_paths: it is the fixed
// reference the batched kernel is measured against.
TEST(ScalarReference, IgnoresBatchKnobs) {
  bouncing::McConfig cfg;
  cfg.paths = 50;
  cfg.epochs = 100;
  const auto a = oracle::run_bouncing_mc_scalar(cfg, {100});
  cfg.block = 7;
  cfg.keep_paths = false;
  const auto b = oracle::run_bouncing_mc_scalar(cfg, {100});
  EXPECT_EQ(a.stakes, b.stakes);
  EXPECT_FALSE(b.stakes.empty());
}

// Single-population run: the cohort kernel's serial draw pass consumes
// the shared RNG stream in exactly the scalar order, so the whole
// trajectory is bit-identical.
TEST(BatchBitIdentity, PopulationRunMatchesScalarOracle) {
  bouncing::PopulationRunConfig cfg;
  cfg.honest_validators = 40;
  cfg.epochs = 800;
  cfg.beta0 = 1.0 / 3.0;
  cfg.seed = 23;
  const auto ref = oracle::run_population_bouncing_scalar(cfg);
  const auto r = bouncing::run_population_bouncing(cfg);
  EXPECT_EQ(r.first_exceed_epoch, ref.first_exceed_epoch);
  EXPECT_EQ(r.beta_trajectory, ref.beta_trajectory);
}

}  // namespace
}  // namespace leak
