// Tests for the k-branch partition generalization: heal schedules at
// staggered GSTs, the post-leak recovery tail vs analytic::recovery,
// the degenerate two-branch reduction, and thread-count invariance of
// the randomized-split trials.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/config.hpp"
#include "src/analytic/recovery.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"

namespace leak::sim {
namespace {

PartitionSimConfig healing_config(std::uint32_t branches,
                                  std::size_t heal_epoch,
                                  std::size_t stagger) {
  PartitionSimConfig cfg;
  cfg.n_validators = 300;
  cfg.beta0 = 0.0;
  cfg.strategy = Strategy::kNone;
  cfg.branches = branches;
  cfg.heal_epoch = heal_epoch;
  cfg.heal_stagger = stagger;
  cfg.max_epochs = 9000;
  return cfg;
}

TEST(MultiPartitionHeal, ScheduleHealsEveryBranchInOrder) {
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const auto r = run_partition_sim(healing_config(k, 1500, 400));
    ASSERT_EQ(r.branch.size(), k);
    EXPECT_LT(r.branch[0].healed_epoch, 0);  // canonical branch never heals
    for (std::uint32_t b = 1; b < k; ++b) {
      EXPECT_EQ(r.branch[b].healed_epoch,
                static_cast<std::int64_t>(1500 + (b - 1) * 400))
          << "k=" << k << " b=" << b;
    }
    EXPECT_EQ(r.heal_complete_epoch,
              static_cast<std::int64_t>(1500 + (k - 2) * 400));
    // Finality resumes and the recovery completes within the horizon.
    ASSERT_GT(r.branch[0].finalization_epoch, 0) << "k=" << k;
    ASSERT_GT(r.recovery_complete_epoch, r.branch[0].finalization_epoch)
        << "k=" << k;
    EXPECT_GT(r.residual_loss_total_eth, 0.0);
  }
}

TEST(MultiPartitionHeal, StaggerZeroHealsSimultaneously) {
  const auto r = run_partition_sim(healing_config(4, 2000, 0));
  for (std::uint32_t b = 1; b < 4; ++b) {
    EXPECT_EQ(r.branch[b].healed_epoch, 2000);
  }
  EXPECT_EQ(r.heal_complete_epoch, 2000);
}

TEST(MultiPartitionHeal, RecoveryTailMatchesAnalyticRecovery) {
  // Homogeneous classes: the sim's integer-arithmetic recovery tail
  // must match the exact discrete recurrence closely and the closed
  // form within its discretization error.
  const auto acfg = analytic::AnalyticConfig::paper();
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const auto r = run_partition_sim(healing_config(k, 1500, 400));
    ASSERT_EQ(r.recovery.size(), static_cast<std::size_t>(k - 1));
    for (const auto& rec : r.recovery) {
      ASSERT_GE(rec.return_epoch, 0) << "k=" << k << " b=" << rec.from_branch;
      ASSERT_GT(rec.score_at_return, 0.0);
      const double discrete = analytic::residual_loss_discrete(
          rec.score_at_return, rec.stake_at_return_eth, acfg);
      const double closed = analytic::residual_loss(
          rec.score_at_return, rec.stake_at_return_eth, acfg);
      // Integer Gwei vs double recurrence: sub-0.1% of the stake.
      EXPECT_NEAR(rec.residual_loss_eth, discrete,
                  1e-3 * rec.stake_at_return_eth)
          << "k=" << k << " b=" << rec.from_branch;
      EXPECT_NEAR(rec.residual_loss_eth, closed, 0.01 * (closed + 0.01))
          << "k=" << k << " b=" << rec.from_branch;
      EXPECT_NEAR(static_cast<double>(rec.recovery_epochs),
                  analytic::recovery_epochs(rec.score_at_return), 3.0);
    }
  }
}

TEST(MultiPartitionHeal, LaterHealsLoseMoreStake) {
  // Among classes that return at the same epoch (both healed before the
  // leak ended), the one that sat out longer carries the higher score
  // and pays the larger recovery tail.  A class healing only after the
  // leak ended instead drains its score out-of-leak (at bias minus the
  // recovery rate) and returns cheaper.
  const auto r = run_partition_sim(healing_config(4, 1500, 600));
  ASSERT_EQ(r.recovery.size(), 3u);
  const auto& early = r.recovery[0];  // healed mid-leak
  const auto& late = r.recovery[1];   // healed at the leak's end
  ASSERT_GE(early.return_epoch, 0);
  ASSERT_EQ(early.return_epoch, late.return_epoch);
  EXPECT_GT(late.score_at_return, early.score_at_return);
  EXPECT_GT(late.residual_loss_eth, early.residual_loss_eth);
  // The post-leak healer returned with a partially drained score.
  const auto& post = r.recovery[2];
  ASSERT_GE(post.return_epoch, 0);
  EXPECT_GT(post.return_epoch, late.return_epoch);
  EXPECT_LT(post.score_at_return, early.score_at_return);
}

TEST(MultiPartitionHeal, HealAfterEjectionMarksClassEjected) {
  // Healing after the inactive class was ejected on the canonical
  // branch: nothing returns, and the run must not crash or report a
  // recovery for the dead class.
  auto cfg = healing_config(2, 5500, 0);
  cfg.max_epochs = 7000;
  const auto r = run_partition_sim(cfg);
  ASSERT_EQ(r.recovery.size(), 1u);
  EXPECT_TRUE(r.recovery[0].ejected_before_return);
  EXPECT_LT(r.recovery[0].return_epoch, 0);
}

TEST(MultiPartitionHeal, NoHealIsLegacyTwoBranchBehaviour) {
  // branches = 2, heal disabled must reproduce the legacy two-branch
  // simulator exactly (Scenario 5.1 values from test_partition_sim).
  PartitionSimConfig cfg;
  cfg.n_validators = 1000;
  cfg.strategy = Strategy::kNone;
  cfg.max_epochs = 6000;
  const auto r = run_partition_sim(cfg);
  ASSERT_EQ(r.branch.size(), 2u);
  EXPECT_EQ(r.branch[0].supermajority_epoch, r.branch[1].supermajority_epoch);
  EXPECT_GT(r.conflicting_finalization_epoch, 4600);
  EXPECT_EQ(r.recovery_complete_epoch, -1);
  EXPECT_EQ(r.heal_complete_epoch, -1);
  EXPECT_TRUE(r.recovery.empty());
  EXPECT_EQ(r.residual_loss_total_eth, 0.0);
}

TEST(MultiPartitionHeal, KBranchEvenSplitCounts) {
  const auto r = run_partition_sim(healing_config(3, 0, 0));
  ASSERT_EQ(r.n_honest_per_branch.size(), 3u);
  EXPECT_EQ(r.n_honest_per_branch[0] + r.n_honest_per_branch[1] +
                r.n_honest_per_branch[2],
            300u);
  for (const auto c : r.n_honest_per_branch) EXPECT_EQ(c, 100u);
}

TEST(MultiPartitionTrials, ThreadCountInvariance) {
  PartitionTrialsConfig cfg;
  cfg.base = healing_config(3, 1200, 300);
  cfg.base.n_validators = 150;
  cfg.base.max_epochs = 4000;
  cfg.base.trajectory_stride = cfg.base.max_epochs;
  cfg.trials = env::scaled_count(8);
  cfg.seed = 77;

  cfg.threads = 1;
  const auto a = run_partition_trials(cfg);
  cfg.threads = 4;
  cfg.block = 2;
  const auto b = run_partition_trials(cfg);

  EXPECT_EQ(a.conflict_epochs, b.conflict_epochs);
  EXPECT_EQ(a.beta_peaks, b.beta_peaks);
  EXPECT_EQ(a.residual_losses_eth, b.residual_losses_eth);
  EXPECT_EQ(a.recovery_epochs, b.recovery_epochs);
  EXPECT_EQ(a.mean_residual_loss_eth, b.mean_residual_loss_eth);
  EXPECT_EQ(a.recovered_fraction, b.recovered_fraction);
}

TEST(MultiPartitionTrials, UniformAssignmentCoversAllBranches) {
  PartitionTrialsConfig cfg;
  cfg.base = healing_config(4, 0, 0);
  cfg.base.n_validators = 200;
  cfg.base.max_epochs = 50;  // assignment is what matters here
  cfg.base.trajectory_stride = cfg.base.max_epochs;
  cfg.trials = 2;
  cfg.seed = 5;
  const auto r = run_partition_trials(cfg);
  EXPECT_EQ(r.trials, 2u);
  // No conflicting finalization in 50 epochs.
  for (const auto e : r.conflict_epochs) EXPECT_EQ(e, -1);
}

TEST(MultiPartitionTrials, RejectsBadBranchCount) {
  PartitionTrialsConfig cfg;
  cfg.base.branches = 1;
  EXPECT_THROW(run_partition_trials(cfg), std::invalid_argument);
  PartitionSimConfig s;
  s.branches = 1;
  EXPECT_THROW(run_partition_sim(s), std::invalid_argument);
}

}  // namespace
}  // namespace leak::sim
