// D2 fixture: std <random> engines outside src/support/random.hpp.
#include <random>

unsigned foreign_engines(unsigned seed) {
  std::mt19937 gen(seed);                 // D2
  std::mt19937_64 gen64(seed);            // D2
  std::minstd_rand lcg(seed);             // D2
  std::default_random_engine dre(seed);   // D2
  return static_cast<unsigned>(gen() + gen64() + lcg() + dre());
}
