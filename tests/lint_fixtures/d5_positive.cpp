// D5 fixture: mutable namespace-scope state and thread_local.
#include <cstdint>

int g_call_count = 0;                       // D5 (mutable global)
double g_last_result = 0.0;                 // D5 (mutable global)

namespace leak_fixture {
std::uint64_t g_epoch_cursor = 0;           // D5 (namespace scope)
}

int bump() {
  thread_local int per_thread_count = 0;    // D5 (thread_local)
  ++leak_fixture::g_epoch_cursor;
  g_last_result = 1.0;
  return ++g_call_count + ++per_thread_count;
}
