// D5 fixture: justified thread_local scratch plus clean global shapes.
#include <cstdint>

constexpr int kMaxLanes = 4;                 // constexpr: clean
const double kScale = 2.0;                   // const: clean
static int s_tu_local_debug_flag = 0;        // static: D5 exempts statics

int scratch_reuse() {
  // leaklint: allow(D5): allocation cache only; contents fully re-derived from the per-trial stream before every use
  thread_local std::uint64_t scratch = 0;
  scratch += static_cast<std::uint64_t>(kMaxLanes * kScale);
  s_tu_local_debug_flag = 1;
  return static_cast<int>(scratch) + s_tu_local_debug_flag;
}
