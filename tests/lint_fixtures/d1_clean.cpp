// D1 fixture: no findings -- member .time() calls are not the C call,
// identifiers merely containing banned substrings stay clean, and
// comments may talk about rand() or std::random_device freely.
struct Stopwatch;

long no_entropy(Stopwatch& sw, Stopwatch* p) {
  long time_budget = 0;      // substring of a longer identifier
  long runtime = sw.time();  // member access, not ::time()
  return time_budget + runtime + p->time();
}
