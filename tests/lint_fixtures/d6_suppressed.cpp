// D6 fixture: double accumulate is clean; a justified float survives.
#include <numeric>
#include <vector>

double sanctioned(const std::vector<double>& xs) {
  const double total = std::accumulate(xs.begin(), xs.end(), 0.0);  // clean
  // leaklint: allow(D6): float is the wire format of this exported telemetry field, never accumulated
  float wire_value = 0.0F;
  return total + static_cast<double>(wire_value);
}
