// D1 fixture: the same hits, silenced by justified suppressions.
#include <ctime>

long sanctioned_timing() {
  // leaklint: allow(D1): fixture demonstrating a justified wall-clock read
  long t = time(nullptr);
  long u = time(nullptr);  // leaklint: allow(D1): trailing-comment form of the same justification
  return t + u;
}
