// D1 fixture: every direct-entropy shape the rule must catch.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

int entropy_sources() {
  std::random_device rd;                                   // D1 (and the include is D2)
  srand(42);                                               // D1
  int a = rand();                                          // D1
  long t = time(nullptr);                                  // D1
  auto now = std::chrono::steady_clock::now();             // D1
  auto sys = std::chrono::system_clock::now();             // D1
  (void)now;
  (void)sys;
  return static_cast<int>(rd() + a + t);
}
