// D3 fixture: the banned packed-bool vector, in several spellings.
#include <vector>

std::vector<bool> flags_by_value();                  // D3

void packed_bools() {
  std::vector<bool> a(10);                           // D3
  std::vector< bool > spaced(10);                    // D3 (whitespace)
  std::vector<
      bool>
      wrapped(10);                                   // D3 (line-wrapped)
  a[0] = spaced[1] = wrapped[2] = true;
}
