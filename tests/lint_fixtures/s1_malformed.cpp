// S1 fixture: suppressions that must themselves be findings.
#include <vector>

void bad_suppressions() {
  std::vector<bool> a(4);  // leaklint: allow(D3)
  // leaklint: allow(): empty rule list with justification text
  std::vector<bool> b(4);
  // leaklint: allow(D9): unknown rule id with a justification
  std::vector<bool> c(4);
  a[0] = b[0] = c[0] = true;
}
