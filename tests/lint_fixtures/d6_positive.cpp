// D6 fixture: float accumulation hazards in a kernel TU.
#include <numeric>
#include <vector>

double float_hazards(const std::vector<double>& xs) {
  float partial = 0.0F;                                       // D6 (float)
  for (const double x : xs) partial += static_cast<float>(x); // D6 (float)
  const auto f = std::accumulate(xs.begin(), xs.end(), 0.0f); // D6 (float init)
  const auto r = std::reduce(xs.begin(), xs.end(), 0.0);      // D6 (unordered)
  return static_cast<double>(partial) + f + r;
}
