// D2 fixture: a justified engine use (e.g. a statistical cross-check
// against the reference implementation of a published distribution).
unsigned sanctioned_engine(unsigned seed) {
  // leaklint: allow(D2): fixture demonstrating a justified foreign-engine comparison harness
  unsigned state = seed;  // stand-in; the next line carries the hit
  // leaklint: allow(D2): reference-engine cross-check, never feeds simulation state
  std::mt19937 gen(state);
  return static_cast<unsigned>(gen());
}
