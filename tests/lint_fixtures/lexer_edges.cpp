// Lexer fixture: banned tokens hidden where the lexer must not look,
// plus one real hit inside a multi-line macro.
#include <string>

// Comment bait: std::vector<bool>, rand(), std::mt19937, thread_local.
/* Block-comment bait spanning lines:
   std::random_device rd; time(nullptr);
   std::unordered_map<int, int> m; */

std::string raw_bait() {
  // Raw string bait, including a quote-closing feint:
  auto s = R"lint(
    std::vector<bool> inside_raw;
    std::mt19937 gen(rand());
    )not_the_end" still inside
  )lint";
  auto plain = "string bait: std::vector<bool> time( rand( ";
  auto ch = 'r';  // char literal; and 1'000'000 digit separators parse
  long big = 1'000'000'000;
  return s + plain + ch + std::to_string(big);
}

// A line comment spliced with a backslash stays a comment: rand() \
   time(nullptr) std::vector<bool> still_comment;

#define EPOCH_STEP(reg)        \
  do {                         \
    (reg).seed = rand();       \
  } while (0)
