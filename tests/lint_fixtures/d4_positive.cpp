// D4 fixture: unordered containers in a kernel/reduction TU.
#include <unordered_map>
#include <unordered_set>

double hash_order_accumulation() {
  std::unordered_map<int, double> weights;             // D4
  std::unordered_set<int> seen;                        // D4
  weights[1] = 0.5;
  seen.insert(1);
  double sum = 0.0;
  for (const auto& [k, w] : weights) sum += w;  // the hazard D4 exists for
  return sum;
}
