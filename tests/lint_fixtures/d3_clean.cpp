// D3 fixture: byte flags, plus the banned token in comments/strings only.
#include <cstdint>
#include <string>
#include <vector>

// A std::vector<bool> mentioned in a comment must not fire.
std::string docs() {
  std::vector<std::uint8_t> flags(10, 0);
  flags[1] = 1;
  return "never use std::vector<bool> in src/";  // string content is stripped
}
