// D3 fixture: a justified vector<bool> (single-threaded, memory-bound).
#include <vector>

void justified_packed_bools() {
  // leaklint: allow(D3): single-threaded sieve; 8x memory saving matters and no worker ever writes concurrently
  std::vector<bool> sieve(1 << 20);
  sieve[2] = true;
}
