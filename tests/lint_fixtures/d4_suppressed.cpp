// D4 fixture: justified lookup-only unordered map.
#include <unordered_map>

int lookup_only(int key) {
  // leaklint: allow(D4): lookup-only cache, never iterated, so hash order cannot reach any result
  static std::unordered_map<int, int> cache;
  const auto it = cache.find(key);
  return it == cache.end() ? 0 : it->second;
}
