// Tests for the inactivity-score random walk: exact DP pmf, moments and
// the paper's Gaussian approximation (Eq 16).
#include <gtest/gtest.h>

#include <cmath>

#include "src/bouncing/walk.hpp"
#include "src/support/numeric.hpp"

namespace leak::bouncing {
namespace {

TEST(WalkParamsTest, PaperConstants) {
  const auto w = WalkParams::paper(0.5);
  EXPECT_DOUBLE_EQ(w.drift, 1.5);
  EXPECT_DOUBLE_EQ(w.diffusion, 6.25);  // 25 * 0.25
}

TEST(StepMomentsTest, HalfAndHalf) {
  const auto m = step_moments(0.5);
  EXPECT_DOUBLE_EQ(m.mean, 1.5);
  EXPECT_DOUBLE_EQ(m.variance, 6.25);  // 8.5 - 2.25
}

TEST(StepMomentsTest, ExtremeP0) {
  // Always active: deterministic -1 step.
  const auto act = step_moments(1.0);
  EXPECT_DOUBLE_EQ(act.mean, -1.0);
  EXPECT_DOUBLE_EQ(act.variance, 0.0);
  // Always inactive: deterministic +4 step.
  const auto inact = step_moments(0.0);
  EXPECT_DOUBLE_EQ(inact.mean, 4.0);
  EXPECT_DOUBLE_EQ(inact.variance, 0.0);
}

TEST(Phi, NormalizedOverScores) {
  // Integrate the paper's Gaussian over I: must be ~1.
  const auto w = WalkParams::paper(0.5);
  const double t = 500.0;
  const auto xs = leak::num::linspace(-500.0, 2500.0, 20001);
  std::vector<double> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = phi(xs[i], t, w);
  EXPECT_NEAR(leak::num::trapezoid(xs, ys), 1.0, 1e-6);
}

TEST(Phi, PeaksAtDrift) {
  const auto w = WalkParams::paper(0.5);
  const double t = 300.0;
  const double at_mean = phi(w.drift * t, t, w);
  EXPECT_GT(at_mean, phi(w.drift * t + 50.0, t, w));
  EXPECT_GT(at_mean, phi(w.drift * t - 50.0, t, w));
}

TEST(Phi, InvalidTimeThrows) {
  EXPECT_THROW(phi(0.0, 0.0, WalkParams::paper(0.5)), std::invalid_argument);
}

TEST(ExactPmf, NormalizesAndSupports) {
  const auto pmf = exact_score_pmf(0.5, 50, /*floor_at_zero=*/true);
  double total = 0.0;
  for (double p : pmf.p) total += p;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(pmf.offset, 0);
}

TEST(ExactPmf, UnflooredMeanMatchesDrift) {
  const std::size_t t = 200;
  const auto pmf = exact_score_pmf(0.5, t, /*floor_at_zero=*/false);
  EXPECT_NEAR(pmf.mean(), 1.5 * static_cast<double>(t), 1e-9);
}

TEST(ExactPmf, UnflooredVarianceMatchesStepMoments) {
  const std::size_t t = 200;
  const auto pmf = exact_score_pmf(0.5, t, false);
  // Exact per-epoch variance is 6.25 (half the paper Gaussian's 12.5 t).
  EXPECT_NEAR(pmf.variance(), 6.25 * static_cast<double>(t), 1e-6);
}

TEST(ExactPmf, PaperGaussianOverstatesVarianceByTwo) {
  // Documents the paper's factor-2: its phi has variance 2 D t = 12.5 t
  // while the true walk variance is 6.25 t.
  const std::size_t t = 400;
  const auto pmf = exact_score_pmf(0.5, t, false);
  const auto w = WalkParams::paper(0.5);
  const double paper_var = 2.0 * w.diffusion * static_cast<double>(t);
  EXPECT_NEAR(paper_var / pmf.variance(), 2.0, 1e-6);
}

TEST(ExactPmf, FlooredMeanExceedsUnfloored) {
  // The floor at zero removes negative excursions: mean goes up.
  const auto floored = exact_score_pmf(0.35, 100, true);
  const auto unfloored = exact_score_pmf(0.35, 100, false);
  EXPECT_GT(floored.mean(), unfloored.mean());
}

TEST(ExactPmf, DeterministicCases) {
  // p0 = 1 (always active): score pinned at 0 with floor.
  const auto act = exact_score_pmf(1.0, 30, true);
  EXPECT_NEAR(act.prob_at(0), 1.0, 1e-12);
  // p0 = 0 (never active): score = 4t exactly.
  const auto inact = exact_score_pmf(0.0, 30, true);
  EXPECT_NEAR(inact.prob_at(120), 1.0, 1e-12);
}

TEST(ExactPmf, CdfMonotone) {
  const auto pmf = exact_score_pmf(0.4, 60, true);
  double prev = -1.0;
  for (long long s = 0; s <= 240; s += 10) {
    const double c = pmf.cdf(s);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(pmf.cdf(240), 1.0, 1e-12);
}

TEST(ExactPmf, GaussianLimitShape) {
  // For large t the unfloored pmf approaches a Gaussian with the exact
  // moments: compare the standardized cdf at a few z-scores.
  const std::size_t t = 2000;
  const auto pmf = exact_score_pmf(0.5, t, false);
  const double mu = pmf.mean();
  const double sd = std::sqrt(pmf.variance());
  for (double z : {-1.0, 0.0, 1.0}) {
    const auto x = static_cast<long long>(std::llround(mu + z * sd));
    EXPECT_NEAR(pmf.cdf(x), leak::num::normal_cdf(z), 0.01) << z;
  }
}

TEST(ExactPmf, InvalidArgsThrow) {
  EXPECT_THROW(exact_score_pmf(-0.1, 10, true), std::invalid_argument);
  EXPECT_THROW(exact_score_pmf(0.5, 10, true, 0), std::invalid_argument);
}

// Property sweep over p0: floored pmf mass at 0 decreases in (1-p0).
class FloorMass : public ::testing::TestWithParam<double> {};

TEST_P(FloorMass, MassAtZeroDecreasingInInactivity) {
  const double p0 = GetParam();
  const auto more_active = exact_score_pmf(p0, 80, true);
  const auto less_active = exact_score_pmf(p0 - 0.1, 80, true);
  EXPECT_GE(more_active.prob_at(0), less_active.prob_at(0));
}

INSTANTIATE_TEST_SUITE_P(P0Grid, FloorMass,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9));

}  // namespace
}  // namespace leak::bouncing
