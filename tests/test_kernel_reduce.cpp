// Contract of the ordered reduction tree (TrialRunner::run_reduce):
// partials fold in ascending block order no matter which worker
// finishes first, at most one unfolded partial exists per worker, and
// the summary modes built on it (keep_* = false) are bit-identical to
// the full modes for all four Monte Carlo drivers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"
#include "tests/oracles/scalar_oracles.hpp"

namespace leak {
namespace {

// --- the reduction tree itself -----------------------------------------

// The merge order is a function of (n_trials, block) alone.  Blocks
// early in index order are made the slowest, so with 4 workers the
// completion order is roughly the reverse of the index order — the
// fold order must stay ascending anyway.
TEST(RunReduce, FoldOrderIsAscendingRegardlessOfCompletionOrder) {
  const runner::TrialRunner pool(4);
  constexpr std::size_t kTrials = 48;
  constexpr std::size_t kBlock = 4;
  struct Acc {
    std::vector<std::size_t>* begins;
    long long total = 0;
    void fold(std::size_t begin, std::size_t, long long partial) {
      begins->push_back(begin);
      total += partial;
    }
  };
  std::vector<std::size_t> begins;
  const auto acc = pool.run_reduce(
      kTrials, kBlock, Acc{&begins}, [&](std::size_t begin, std::size_t end) {
        // Earlier blocks sleep longer, inverting the completion order.
        std::this_thread::sleep_for(
            std::chrono::milliseconds((kTrials - begin) / kBlock));
        long long sum = 0;
        for (std::size_t i = begin; i < end; ++i) {
          sum += static_cast<long long>(i);
        }
        return sum;
      });
  ASSERT_EQ(begins.size(), kTrials / kBlock);
  for (std::size_t b = 0; b < begins.size(); ++b) {
    EXPECT_EQ(begins[b], b * kBlock);
  }
  EXPECT_EQ(acc.total,
            static_cast<long long>(kTrials * (kTrials - 1) / 2));
}

// A worker holds at most one unfolded partial: with W workers no more
// than W sim results may exist before their fold turn, so in-flight
// memory is bounded by O(W x sizeof(partial)) however many blocks the
// run has.
TEST(RunReduce, InFlightPartialsBoundedByWorkerCount) {
  constexpr unsigned kWorkers = 4;
  const runner::TrialRunner pool(kWorkers);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  struct Acc {
    std::atomic<int>* in_flight;
    int folded = 0;
    void fold(std::size_t, std::size_t, int) {
      in_flight->fetch_sub(1);
      ++folded;
    }
  };
  const auto acc = pool.run_reduce(
      256, 2, Acc{&in_flight}, [&](std::size_t, std::size_t) {
        const int now = in_flight.fetch_add(1) + 1;
        int seen = max_in_flight.load();
        while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
        }
        return 0;
      });
  EXPECT_EQ(acc.folded, 128);
  EXPECT_LE(max_in_flight.load(), static_cast<int>(kWorkers));
}

// Serial path: one worker degenerates to a strict left fold.
TEST(RunReduce, SerialFoldMatchesLoop) {
  const runner::TrialRunner pool(1);
  struct Acc {
    std::vector<std::size_t> begins;
    void fold(std::size_t begin, std::size_t, std::size_t partial) {
      EXPECT_EQ(begin, partial);
      begins.push_back(begin);
    }
  };
  const auto acc =
      pool.run_reduce(10, 3, Acc{},
                      [](std::size_t begin, std::size_t) { return begin; });
  EXPECT_EQ(acc.begins, (std::vector<std::size_t>{0, 3, 6, 9}));
}

// --- summary-vs-full bit-identity, one test per driver -----------------
//
// Summary mode streams per-trial scalars through the same accumulator
// code full mode uses, in the same trial order, so every aggregate is
// EXPECT_EQ-exact — not approximately equal — at every (block,
// threads) combination.

constexpr unsigned kThreadGrid[] = {1, 4};
constexpr std::size_t kBlockGrid[] = {1, 16};

TEST(SummaryBitIdentity, BouncingMc) {
  bouncing::McConfig cfg;
  cfg.paths = env::scaled_count(200);
  cfg.epochs = 600;
  cfg.seed = 17;
  const std::vector<std::size_t> snaps{300, 600};
  const auto full = bouncing::run_bouncing_mc(cfg, snaps);
  for (const std::size_t block : kBlockGrid) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      cfg.keep_paths = false;
      const auto summary = bouncing::run_bouncing_mc(cfg, snaps);
      cfg.keep_paths = true;
      EXPECT_TRUE(summary.stakes.empty());
      EXPECT_EQ(summary.ejected_fraction, full.ejected_fraction);
      EXPECT_EQ(summary.capped_fraction, full.capped_fraction);
      EXPECT_EQ(summary.prob_beta_exceeds, full.prob_beta_exceeds);
      EXPECT_EQ(summary.median_alive_estimate, full.median_alive_estimate);
      ASSERT_EQ(summary.stake_stats.size(), full.stake_stats.size());
      for (std::size_t k = 0; k < full.stake_stats.size(); ++k) {
        EXPECT_EQ(summary.stake_stats[k].mean(), full.stake_stats[k].mean());
        EXPECT_EQ(summary.stake_stats[k].variance(),
                  full.stake_stats[k].variance());
      }
    }
  }
}

TEST(SummaryBitIdentity, AttackSim) {
  bouncing::AttackSimConfig cfg;
  cfg.runs = env::scaled_count(120);
  cfg.honest_validators = 20;
  cfg.max_epochs = 1000;
  cfg.seed = 31;
  const auto full = bouncing::run_attack_sim(cfg);
  ASSERT_FALSE(full.durations.empty());
  for (const std::size_t block : kBlockGrid) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      cfg.keep_runs = false;
      const auto summary = bouncing::run_attack_sim(cfg);
      cfg.keep_runs = true;
      // The guard: summary mode must not materialize per-run slabs.
      EXPECT_TRUE(summary.durations.empty());
      EXPECT_TRUE(summary.break_epochs.empty());
      EXPECT_EQ(summary.prob_threshold_broken, full.prob_threshold_broken);
      EXPECT_EQ(summary.mean_duration, full.mean_duration);
      EXPECT_EQ(summary.median_duration, full.median_duration);
      EXPECT_EQ(summary.p99_duration, full.p99_duration);
    }
  }
}

TEST(SummaryBitIdentity, PopulationEnsemble) {
  bouncing::PopulationEnsembleConfig cfg;
  cfg.base.honest_validators = 25;
  cfg.base.epochs = 250;
  cfg.base.beta0 = 1.0 / 3.0;
  cfg.paths = env::scaled_count(10);
  const auto full = bouncing::run_population_ensemble(cfg);
  ASSERT_FALSE(full.first_exceed_epochs.empty());
  for (const std::size_t block : kBlockGrid) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      cfg.keep_paths = false;
      const auto summary = bouncing::run_population_ensemble(cfg);
      cfg.keep_paths = true;
      EXPECT_TRUE(summary.first_exceed_epochs.empty());
      EXPECT_EQ(summary.exceed_fraction, full.exceed_fraction);
      EXPECT_EQ(summary.mean_final_beta, full.mean_final_beta);
    }
  }
}

TEST(SummaryBitIdentity, PartitionTrials) {
  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = 80;
  cfg.base.strategy = sim::Strategy::kNone;
  cfg.base.max_epochs = 400;
  cfg.base.trajectory_stride = 400;
  cfg.trials = env::scaled_count(8);
  cfg.seed = 9;
  const auto full = sim::run_partition_trials(cfg);
  ASSERT_FALSE(full.conflict_epochs.empty());
  for (const std::size_t block : kBlockGrid) {
    for (const unsigned threads : kThreadGrid) {
      cfg.block = block;
      cfg.threads = threads;
      cfg.keep_trials = false;
      const auto summary = sim::run_partition_trials(cfg);
      cfg.keep_trials = true;
      EXPECT_TRUE(summary.conflict_epochs.empty());
      EXPECT_TRUE(summary.beta_peaks.empty());
      EXPECT_TRUE(summary.residual_losses_eth.empty());
      EXPECT_TRUE(summary.recovery_epochs.empty());
      EXPECT_EQ(summary.conflicting_fraction, full.conflicting_fraction);
      EXPECT_EQ(summary.beta_exceeded_fraction, full.beta_exceeded_fraction);
      EXPECT_EQ(summary.mean_conflict_epoch, full.mean_conflict_epoch);
      EXPECT_EQ(summary.recovered_fraction, full.recovered_fraction);
      EXPECT_EQ(summary.mean_residual_loss_eth, full.mean_residual_loss_eth);
      EXPECT_EQ(summary.mean_recovery_epoch, full.mean_recovery_epoch);
    }
  }
}

// Cross-check against the oracle: summary mode is transitively
// bit-identical to the pre-rollout scalar aggregation, not just to the
// batched full mode.
TEST(SummaryBitIdentity, AttackSummaryMatchesScalarOracle) {
  bouncing::AttackSimConfig cfg;
  cfg.runs = env::scaled_count(80);
  cfg.honest_validators = 15;
  cfg.max_epochs = 800;
  cfg.seed = 3;
  const auto ref = oracle::run_attack_sim_scalar(cfg);
  cfg.keep_runs = false;
  cfg.threads = 4;
  cfg.block = 8;
  const auto summary = bouncing::run_attack_sim(cfg);
  EXPECT_EQ(summary.prob_threshold_broken, ref.prob_threshold_broken);
  EXPECT_EQ(summary.mean_duration, ref.mean_duration);
  EXPECT_EQ(summary.median_duration, ref.median_duration);
  EXPECT_EQ(summary.p99_duration, ref.p99_duration);
}

}  // namespace
}  // namespace leak
