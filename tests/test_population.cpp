// Tests for the mixed-population generalization: it must collapse to
// every specialized model of the paper and behave sensibly for novel
// mixtures.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/population.hpp"
#include "src/analytic/ratio_model.hpp"
#include "src/analytic/solvers.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(Population5, RecoversEq5) {
  const auto pop = make_honest_partition_population(0.4, kPaper);
  for (double t : {0.0, 500.0, 2000.0, 4000.0, 5000.0}) {
    EXPECT_NEAR(pop.active_ratio(t), active_ratio_honest(t, 0.4, kPaper),
                1e-12)
        << t;
  }
}

TEST(Population5, RecoversEq8) {
  const auto pop = make_slashable_population(0.5, 0.2, kPaper);
  for (double t : {0.0, 1000.0, 3000.0}) {
    EXPECT_NEAR(pop.active_ratio(t),
                active_ratio_slashing(t, 0.5, 0.2, kPaper), 1e-12);
  }
}

TEST(Population5, RecoversEq10AndEq11) {
  const auto pop = make_semiactive_population(0.5, 0.33, kPaper);
  for (double t : {0.0, 300.0, 555.0}) {
    EXPECT_NEAR(pop.active_ratio(t),
                active_ratio_semiactive(t, 0.5, 0.33, kPaper), 1e-12);
    EXPECT_NEAR(pop.proportion(1, t),
                byzantine_proportion(t, 0.5, 0.33, kPaper), 1e-12);
  }
}

TEST(Population5, SupermajorityMatchesSolvers) {
  const auto pop = make_semiactive_population(0.5, 0.33, kPaper);
  EXPECT_NEAR(pop.supermajority_epoch(),
              time_to_supermajority_semiactive(0.5, 0.33, kPaper), 0.5);
  const auto honest = make_honest_partition_population(0.6, kPaper);
  EXPECT_NEAR(honest.supermajority_epoch(),
              time_to_supermajority_honest(0.6, kPaper), 0.5);
}

TEST(Population5, PeakProportionMatchesBetaMax) {
  const auto pop = make_semiactive_population(0.5, 0.3, kPaper);
  const auto peak = pop.peak_proportion(1, 9000.0, 0.5);
  EXPECT_NEAR(peak.value, beta_max(0.5, 0.3, kPaper), 1e-3);
  EXPECT_NEAR(peak.epoch, ejection_epoch(Behavior::kInactive, kPaper), 2.0);
}

TEST(Population5, RealisticFleetWithMissedDuties) {
  // A novel mixture the paper cannot express: 60% perfect validators,
  // 30% validators missing 5% of duties (slope ~ 0.05*(4+1) = 0.25),
  // 10% offline.  The branch starts below 2/3 active... actually at
  // 0.9 active share it is already above; verify the ratio only grows.
  Population pop(
      {
          {"perfect", 0.6, 0.0, true},
          {"flaky", 0.3, 0.25, true},
          {"offline", 0.1, 4.0, false},
      },
      kPaper);
  EXPECT_GT(pop.active_ratio(0.0), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(pop.supermajority_epoch(), 0.0);
  double prev = 0.0;
  for (double t = 0.0; t < 6000.0; t += 100.0) {
    const double r = pop.active_ratio(t);
    EXPECT_GE(r, prev - 1e-9);
    prev = r;
  }
}

TEST(Population5, MinorityActiveBranchNeedsEjectionWave) {
  // 30% active, 60% offline, 10% flaky-active: the branch regains 2/3
  // only when the offline class is ejected.
  Population pop(
      {
          {"active", 0.3, 0.0, true},
          {"offline", 0.6, 4.0, false},
          {"flaky", 0.1, 0.5, true},
      },
      kPaper);
  const double t = pop.supermajority_epoch();
  EXPECT_GT(t, 0.0);
  EXPECT_NEAR(t, ejection_epoch(Behavior::kInactive, kPaper), 30.0);
}

TEST(Population5, ProportionsSumToOne) {
  const auto pop = make_semiactive_population(0.4, 0.25, kPaper);
  for (double t : {0.0, 1000.0, 4000.0, 8000.0}) {
    double sum = 0.0;
    for (std::size_t k = 0; k < pop.classes().size(); ++k) {
      sum += pop.proportion(k, t);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12) << t;
  }
}

TEST(Population5, Validation) {
  EXPECT_THROW(Population({}, kPaper), std::invalid_argument);
  EXPECT_THROW(Population({{"a", 0.5, 0.0, true}}, kPaper),
               std::invalid_argument);  // shares != 1
  EXPECT_THROW(Population({{"a", 1.0, 9.0, true}}, kPaper),
               std::invalid_argument);  // slope > bias
  EXPECT_THROW(Population({{"a", -1.0, 0.0, true}, {"b", 2.0, 0.0, true}},
                          kPaper),
               std::invalid_argument);  // negative share
}

TEST(Population5, NeverRecoversReturnsMinusOne) {
  // Everybody counts inactive: the ratio is identically 0.
  Population pop({{"offline", 1.0, 4.0, false}}, kPaper);
  EXPECT_DOUBLE_EQ(pop.supermajority_epoch(6000.0), -1.0);
}

}  // namespace
}  // namespace leak::analytic
