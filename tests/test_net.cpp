// Tests for the discrete-event queue and the partitioned network model.
#include <gtest/gtest.h>

#include <vector>

#include "src/net/event_queue.hpp"
#include "src/net/network.hpp"

namespace leak::net {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, FifoTiesAtEqualTime) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int count = 0;
  q.schedule_at(1.0, [&] { ++count; });
  q.schedule_at(2.0, [&] { ++count; });
  q.schedule_at(3.0, [&] { ++count; });
  EXPECT_EQ(q.run_until(2.0), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, EventsMaySchedule) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(1.0, [&] {
    q.schedule_in(1.0, [&] { ++fired; });
  });
  q.run_until(5.0);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, PastSchedulingThrows) {
  EventQueue q;
  q.schedule_at(2.0, [] {});
  q.run_until(2.0);
  EXPECT_THROW(q.schedule_at(1.0, [] {}), std::invalid_argument);
  EXPECT_THROW(q.schedule_in(-1.0, [] {}), std::invalid_argument);
}

TEST(EventQueue, ClearDropsPending) {
  EventQueue q;
  q.schedule_at(1.0, [] {});
  q.clear();
  EXPECT_EQ(q.pending(), 0u);
}

struct Rig {
  EventQueue queue;
  NetworkConfig cfg;
  Network net;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> delivered;

  explicit Rig(NetworkConfig c) : cfg(c), net(queue, c) {
    net.set_deliver([this](ValidatorIndex to, const Packet& p) {
      delivered.emplace_back(to.value(), p.payload_id);
    });
  }
};

TEST(NetworkTest, BroadcastReachesEveryoneNoPartition) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 5;
  c.gst = 0.0;
  Rig rig(c);
  rig.net.broadcast(ValidatorIndex{0}, 99);
  rig.queue.run_until(10.0);
  EXPECT_EQ(rig.delivered.size(), 5u);
  for (const auto& [to, id] : rig.delivered) EXPECT_EQ(id, 99u);
}

TEST(NetworkTest, DeliveryWithinDelta) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 3;
  c.delta = 0.8;
  Rig rig(c);
  double max_seen = 0.0;
  rig.net.set_deliver([&](ValidatorIndex, const Packet&) {
    max_seen = std::max(max_seen, rig.queue.now());
  });
  rig.net.broadcast(ValidatorIndex{1}, 1);
  rig.queue.run_until(10.0);
  EXPECT_LE(max_seen, 0.8);
  EXPECT_GT(max_seen, 0.0);
}

TEST(NetworkTest, PartitionBlocksCrossRegionUntilGst) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 4;
  c.gst = 100.0;
  c.delta = 1.0;
  Rig rig(c);
  rig.net.set_region(ValidatorIndex{0}, Region::kOne);
  rig.net.set_region(ValidatorIndex{1}, Region::kOne);
  rig.net.set_region(ValidatorIndex{2}, Region::kTwo);
  rig.net.set_region(ValidatorIndex{3}, Region::kTwo);

  EXPECT_TRUE(rig.net.reachable(ValidatorIndex{0}, ValidatorIndex{1}));
  EXPECT_FALSE(rig.net.reachable(ValidatorIndex{0}, ValidatorIndex{2}));

  std::vector<double> times_to_2;
  rig.net.set_deliver([&](ValidatorIndex to, const Packet&) {
    if (to == ValidatorIndex{2}) times_to_2.push_back(rig.queue.now());
  });
  rig.net.broadcast(ValidatorIndex{0}, 7);
  rig.queue.run_until(200.0);
  // Best-effort broadcast: node 2 still gets it, but only after GST.
  ASSERT_EQ(times_to_2.size(), 1u);
  EXPECT_GE(times_to_2[0], 100.0);
  EXPECT_LE(times_to_2[0], 101.0);
}

TEST(NetworkTest, ByzantineStraddlesPartition) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 3;
  c.gst = 100.0;
  Rig rig(c);
  rig.net.set_region(ValidatorIndex{0}, Region::kOne);
  rig.net.set_region(ValidatorIndex{1}, Region::kTwo);
  rig.net.set_region(ValidatorIndex{2}, Region::kBoth);
  EXPECT_TRUE(rig.net.reachable(ValidatorIndex{2}, ValidatorIndex{0}));
  EXPECT_TRUE(rig.net.reachable(ValidatorIndex{2}, ValidatorIndex{1}));
  EXPECT_TRUE(rig.net.reachable(ValidatorIndex{0}, ValidatorIndex{2}));
}

TEST(NetworkTest, AfterGstEverythingReachable) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 2;
  c.gst = 5.0;
  Rig rig(c);
  rig.net.set_region(ValidatorIndex{0}, Region::kOne);
  rig.net.set_region(ValidatorIndex{1}, Region::kTwo);
  rig.queue.schedule_at(6.0, [] {});
  rig.queue.run_all();
  EXPECT_TRUE(rig.net.reachable(ValidatorIndex{0}, ValidatorIndex{1}));
}

TEST(NetworkTest, ReleaseAtDeliversToAudienceOnly) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 4;
  c.gst = 100.0;
  Rig rig(c);
  rig.net.release_at(10.0, ValidatorIndex{3},
                     {ValidatorIndex{0}, ValidatorIndex{2}}, 55);
  rig.queue.run_until(50.0);
  ASSERT_EQ(rig.delivered.size(), 2u);
  EXPECT_EQ(rig.delivered[0].first, 0u);
  EXPECT_EQ(rig.delivered[1].first, 2u);
}

TEST(NetworkTest, UnicastRespectsPartition) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 2;
  c.gst = 50.0;
  Rig rig(c);
  rig.net.set_region(ValidatorIndex{0}, Region::kOne);
  rig.net.set_region(ValidatorIndex{1}, Region::kTwo);
  std::vector<double> times;
  rig.net.set_deliver([&](ValidatorIndex, const Packet&) {
    times.push_back(rig.queue.now());
  });
  rig.net.unicast(ValidatorIndex{0}, ValidatorIndex{1}, 1);
  rig.queue.run_until(100.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_GE(times[0], 50.0);
}

TEST(NetworkTest, MessageCountersTrack) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 3;
  Rig rig(c);
  rig.net.broadcast(ValidatorIndex{0}, 1);
  rig.net.unicast(ValidatorIndex{0}, ValidatorIndex{1}, 2);
  rig.queue.run_until(10.0);
  EXPECT_EQ(rig.net.messages_sent(), 2u);
  EXPECT_EQ(rig.net.messages_delivered(), 4u);
}

// --- scripted weather (latency/loss episodes) ------------------------------

/// Delivery times for one broadcast from node 0 under `c`.
std::vector<double> broadcast_times(NetworkConfig c) {
  EventQueue q;
  Network net(q, c);
  std::vector<double> times;
  net.set_deliver([&](ValidatorIndex, const Packet&) {
    times.push_back(q.now());
  });
  net.broadcast(ValidatorIndex{0}, 1);
  q.run_until(1000.0);
  return times;
}

TEST(NetworkWeather, EpisodesOutsideTheSendWindowAreBitIdentical) {
  // Weather scheduled long after the send must leave every delivery
  // time untouched: episode checks never consume the jitter stream,
  // and loss draws come from a dedicated lane.
  NetworkConfig plain;
  plain.seed = 42;  // pinned: default, explicit for determinism
  plain.num_nodes = 6;
  NetworkConfig weather = plain;
  weather.latency_episodes.push_back({500.0, 600.0, LinkClass::kAll, 10.0});
  weather.loss_episodes.push_back({500.0, 600.0, LinkClass::kAll, 0.9});
  EXPECT_EQ(broadcast_times(plain), broadcast_times(weather));
}

TEST(NetworkWeather, LatencyEpisodeStretchesJitterDeterministically) {
  // An active factor-3 episode maps each delivery time t to
  // min_delay + 3 * (t - min_delay): same jitter draws, stretched.
  NetworkConfig plain;
  plain.seed = 42;  // pinned: default, explicit for determinism
  plain.num_nodes = 6;
  plain.delta = 1.0;
  plain.min_delay = 0.05;
  NetworkConfig slow = plain;
  slow.latency_episodes.push_back({0.0, 10.0, LinkClass::kAll, 3.0});
  const auto fast_times = broadcast_times(plain);
  const auto slow_times = broadcast_times(slow);
  ASSERT_EQ(fast_times.size(), slow_times.size());
  for (std::size_t i = 0; i < fast_times.size(); ++i) {
    EXPECT_DOUBLE_EQ(slow_times[i], 0.05 + 3.0 * (fast_times[i] - 0.05));
    // factor > 1 deliberately violates the synchrony bound Delta...
    EXPECT_LE(slow_times[i], 0.05 + 3.0 * (1.0 - 0.05));
    // ...but never undercuts the propagation floor.
    EXPECT_GE(slow_times[i], 0.05);
  }
}

TEST(NetworkWeather, FullLossDropsEveryCopyAndCounts) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 5;
  c.loss_episodes.push_back({0.0, 10.0, LinkClass::kAll, 1.0});
  Rig rig(c);
  rig.net.broadcast(ValidatorIndex{0}, 3);
  rig.queue.run_until(50.0);
  EXPECT_TRUE(rig.delivered.empty());
  EXPECT_EQ(rig.net.messages_dropped(), 5u);
  EXPECT_EQ(rig.net.messages_delivered(), 0u);
  EXPECT_EQ(rig.net.messages_sent(), 1u);
}

TEST(NetworkWeather, CrossOnlyLossSparesIntraRegionLinks) {
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 4;
  c.gst = 0.0;  // partition already healed: only the weather bites
  c.loss_episodes.push_back({0.0, 10.0, LinkClass::kCross, 1.0});
  Rig rig(c);
  rig.net.set_region(ValidatorIndex{0}, Region::kOne);
  rig.net.set_region(ValidatorIndex{1}, Region::kOne);
  rig.net.set_region(ValidatorIndex{2}, Region::kTwo);
  rig.net.set_region(ValidatorIndex{3}, Region::kTwo);
  rig.net.broadcast(ValidatorIndex{0}, 9);
  rig.queue.run_until(50.0);
  // Intra copies (self + node 1) land; the two cross copies drop.
  ASSERT_EQ(rig.delivered.size(), 2u);
  for (const auto& [to, id] : rig.delivered) EXPECT_LT(to, 2u);
  EXPECT_EQ(rig.net.messages_dropped(), 2u);
}

TEST(NetworkWeather, SameSeedSameWeatherOutcome) {
  NetworkConfig c;
  c.seed = 7;
  c.num_nodes = 8;
  c.loss_episodes.push_back({0.0, 10.0, LinkClass::kAll, 0.5});
  Rig a(c);
  Rig b(c);
  a.net.broadcast(ValidatorIndex{2}, 11);
  b.net.broadcast(ValidatorIndex{2}, 11);
  a.queue.run_until(50.0);
  b.queue.run_until(50.0);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.net.messages_dropped(), b.net.messages_dropped());
}

TEST(NetworkTest, BadConfigThrows) {
  EventQueue q;
  NetworkConfig c;
  c.seed = 42;  // pinned: default, explicit for determinism
  c.num_nodes = 0;
  EXPECT_THROW(Network(q, c), std::invalid_argument);
  c.num_nodes = 1;
  c.min_delay = 2.0;
  c.delta = 1.0;
  EXPECT_THROW(Network(q, c), std::invalid_argument);
}

}  // namespace
}  // namespace leak::net
