// Randomized property tests: structural invariants under arbitrary
// (seeded, reproducible) operation sequences across the substrate
// modules.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/chain/attestation_pool.hpp"
#include "src/chain/blocktree.hpp"
#include "src/finality/ffg.hpp"
#include "src/net/event_queue.hpp"
#include "src/net/network.hpp"
#include "src/support/codec.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"
#include "src/bouncing/walk.hpp"

namespace leak {
namespace {

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, BlockTreeInvariants) {
  Rng rng(GetParam());
  chain::BlockTree tree;
  std::vector<chain::Digest> known{tree.genesis_id()};
  std::uint64_t next_slot = 1;
  for (int i = 0; i < 300; ++i) {
    const auto parent = known[rng.uniform_index(known.size())];
    const auto b = chain::Block::make(
        parent, Slot{next_slot++},
        ValidatorIndex{static_cast<std::uint32_t>(rng.uniform_index(16))});
    tree.insert(b);
    known.push_back(b.id);
  }
  EXPECT_EQ(tree.size(), known.size());
  // Every known block's chain starts at genesis and ends at the block;
  // every element of the chain is an ancestor of the block.
  for (int i = 0; i < 20; ++i) {
    const auto& id = known[rng.uniform_index(known.size())];
    const auto chain = tree.chain_to(id);
    EXPECT_EQ(chain.front(), tree.genesis_id());
    EXPECT_EQ(chain.back(), id);
    for (const auto& a : chain) {
      EXPECT_TRUE(tree.is_ancestor(a, id));
    }
    // Slots strictly increase along the chain.
    for (std::size_t k = 1; k < chain.size(); ++k) {
      EXPECT_LT(tree.at(chain[k - 1]).slot, tree.at(chain[k]).slot);
    }
  }
  // Leaves are exactly the blocks with no children.
  for (const auto& leaf : tree.leaves()) {
    EXPECT_TRUE(tree.children(leaf).empty());
  }
}

TEST_P(FuzzSeeds, FfgMonotonicityUnderRandomVotes) {
  Rng rng(GetParam());
  chain::ValidatorRegistry registry(32);
  chain::BlockTree tree;
  const chain::Checkpoint genesis{tree.genesis_id(), Epoch{0}};
  finality::FfgTracker ffg(registry, genesis);

  std::uint64_t prev_finalized = 0;
  // Random vote streams: random subsets vote for random targets with
  // random sources, across 40 epochs.
  std::vector<chain::Checkpoint> checkpoints{genesis};
  for (std::uint64_t e = 1; e <= 40; ++e) {
    const chain::Checkpoint target{
        crypto::sha256("cp" + std::to_string(e)), Epoch{e}};
    checkpoints.push_back(target);
    const std::size_t voters = rng.uniform_index(33);
    for (std::size_t v = 0; v < voters; ++v) {
      chain::Attestation a;
      a.attester = ValidatorIndex{static_cast<std::uint32_t>(v)};
      a.slot = Epoch{e}.start_slot();
      a.source = checkpoints[rng.uniform_index(checkpoints.size())];
      a.target = target;
      ffg.on_checkpoint_vote(a);
    }
    ffg.process_epoch(Epoch{e});
    // Invariants: finalized never regresses, finalized <= justified,
    // justified target is actually marked justified.
    EXPECT_GE(ffg.finalized().epoch.value(), prev_finalized);
    prev_finalized = ffg.finalized().epoch.value();
    EXPECT_LE(ffg.finalized().epoch, ffg.justified().epoch);
    EXPECT_TRUE(ffg.is_justified(ffg.justified()));
    // Support can never exceed the total stake.
    EXPECT_LE(ffg.support(target).value(),
              registry.total_active_balance(Epoch{e}).value());
  }
}

TEST_P(FuzzSeeds, AttestationPoolAccounting) {
  Rng rng(GetParam());
  crypto::KeyRegistry keys;
  const auto pairs = keys.generate(24, GetParam());
  chain::AttestationPool pool;
  std::size_t accepted = 0;
  for (int i = 0; i < 400; ++i) {
    chain::Attestation a;
    const auto who = static_cast<std::uint32_t>(rng.uniform_index(24));
    a.attester = ValidatorIndex{who};
    a.slot = Slot{1 + rng.uniform_index(8)};
    a.head = crypto::sha256("head" + std::to_string(rng.uniform_index(3)));
    a.sign(pairs[who]);
    if (rng.bernoulli(0.1)) a.signature.mac[0] ^= 0xff;  // corrupt some
    accepted += pool.ingest(a, keys) ? 1 : 0;
  }
  EXPECT_EQ(pool.size(), accepted);
  // Selection is sorted by participation and bounded.
  const auto picked = pool.select_for_block(5);
  EXPECT_LE(picked.size(), 5u);
  for (std::size_t i = 1; i < picked.size(); ++i) {
    EXPECT_GE(picked[i - 1].participation(), picked[i].participation());
  }
  // Total pooled count equals the sum over groups.
  const auto all = pool.select_for_block(1000000);
  std::size_t sum = 0;
  for (const auto& g : all) sum += g.participation();
  EXPECT_EQ(sum, pool.size());
}

TEST_P(FuzzSeeds, CodecRandomRoundTrips) {
  Rng rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    codec::Writer w;
    std::vector<std::uint64_t> u64s;
    std::vector<std::vector<std::uint8_t>> blobs;
    const int fields = 1 + static_cast<int>(rng.uniform_index(10));
    for (int f = 0; f < fields; ++f) {
      const std::uint64_t v = rng();
      u64s.push_back(v);
      w.put_u64(v);
      std::vector<std::uint8_t> blob(rng.uniform_index(40));
      for (auto& byte : blob) {
        byte = static_cast<std::uint8_t>(rng.uniform_index(256));
      }
      blobs.push_back(blob);
      w.put_blob(blob);
    }
    codec::Reader r(w.bytes());
    for (int f = 0; f < fields; ++f) {
      std::uint64_t v = 0;
      std::vector<std::uint8_t> blob;
      ASSERT_TRUE(r.get_u64(v));
      ASSERT_TRUE(r.get_blob(blob));
      EXPECT_EQ(v, u64s[static_cast<std::size_t>(f)]);
      EXPECT_EQ(blob, blobs[static_cast<std::size_t>(f)]);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

TEST_P(FuzzSeeds, EventQueueExecutionOrder) {
  Rng rng(GetParam());
  net::EventQueue q;
  std::vector<double> executed_at;
  for (int i = 0; i < 200; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    q.schedule_at(t, [&executed_at, &q] {
      executed_at.push_back(q.now());
    });
  }
  q.run_all();
  ASSERT_EQ(executed_at.size(), 200u);
  EXPECT_TRUE(std::is_sorted(executed_at.begin(), executed_at.end()));
}

TEST_P(FuzzSeeds, NetworkDeliversEverythingByGstPlusDelta) {
  Rng rng(GetParam());
  net::EventQueue q;
  net::NetworkConfig cfg;
  cfg.num_nodes = 12;
  cfg.gst = 50.0;
  cfg.delta = 1.0;
  cfg.seed = GetParam();
  net::Network net(q, cfg);
  for (std::uint32_t i = 0; i < 12; ++i) {
    net.set_region(ValidatorIndex{i},
                   rng.bernoulli(0.5) ? net::Region::kOne
                                      : net::Region::kTwo);
  }
  std::size_t delivered = 0;
  double last_time = 0.0;
  net.set_deliver([&](ValidatorIndex, const net::Packet&) {
    ++delivered;
    last_time = std::max(last_time, q.now());
  });
  std::size_t sent = 0;
  for (int i = 0; i < 30; ++i) {
    const auto from =
        ValidatorIndex{static_cast<std::uint32_t>(rng.uniform_index(12))};
    net.broadcast(from, static_cast<std::uint64_t>(i));
    ++sent;
  }
  q.run_until(100.0);
  EXPECT_EQ(delivered, sent * 12);       // best-effort: nobody starves
  EXPECT_LE(last_time, cfg.gst + cfg.delta);  // all in by GST + delta
}

TEST_P(FuzzSeeds, ScoreWalkPmfMatchesMonteCarlo) {
  Rng rng(GetParam());
  const double p0 = 0.2 + 0.6 * rng.uniform();
  const std::size_t epochs = 60;
  const auto pmf = bouncing::exact_score_pmf(p0, epochs, true);
  // Monte Carlo of the same floored walk.
  RunningStats mc;
  for (int path = 0; path < 20000; ++path) {
    long long score = 0;
    for (std::size_t t = 0; t < epochs; ++t) {
      if (rng.bernoulli(p0)) {
        score = std::max(score - 1, 0LL);
      } else {
        score += 4;
      }
    }
    mc.add(static_cast<double>(score));
  }
  EXPECT_NEAR(mc.mean(), pmf.mean(), 4.0 * mc.stddev() / std::sqrt(20000.0))
      << "p0=" << p0;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace leak
