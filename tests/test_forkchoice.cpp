// Tests for stake-weighted LMD-GHOST fork choice.
#include <gtest/gtest.h>

#include "src/chain/forkchoice.hpp"

namespace leak::chain {
namespace {

class ForkChoiceFixture : public ::testing::Test {
 protected:
  ForkChoiceFixture() : registry(8), fc(tree, registry) {}

  Block add(const Digest& parent, std::uint64_t slot, std::uint32_t proposer) {
    const Block b = Block::make(parent, Slot{slot}, ValidatorIndex{proposer});
    tree.insert(b);
    return b;
  }

  BlockTree tree;
  ValidatorRegistry registry;
  ForkChoice fc;
};

TEST_F(ForkChoiceFixture, NoVotesPicksDeterministicLeaf) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  const Digest head = fc.head(tree.genesis_id(), Epoch{0});
  EXPECT_EQ(head, b1.id);
}

TEST_F(ForkChoiceFixture, MajorityStakeWins) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  // 3 votes for a, 1 vote for b; equal stakes.
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{1}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{2}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{3}, b.id, Slot{3});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
}

TEST_F(ForkChoiceFixture, StakeWeightBeatsCount) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  registry.at(ValidatorIndex{0}).balance = Gwei::from_eth(100.0);
  fc.on_attestation(ValidatorIndex{0}, b.id, Slot{3});
  fc.on_attestation(ValidatorIndex{1}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{2}, a.id, Slot{3});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), b.id);
}

TEST_F(ForkChoiceFixture, LatestMessageReplacesOlder) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{0}, b.id, Slot{4});  // newer
  EXPECT_EQ(fc.latest_vote(ValidatorIndex{0}), b.id);
  // Stale vote does not replace.
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{2});
  EXPECT_EQ(fc.latest_vote(ValidatorIndex{0}), b.id);
}

TEST_F(ForkChoiceFixture, VotesForDescendantsCountForAncestors) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block a2 = add(a.id, 3, 2);
  const Block b = add(tree.genesis_id(), 2, 1);
  fc.on_attestation(ValidatorIndex{0}, a2.id, Slot{4});
  fc.on_attestation(ValidatorIndex{1}, a2.id, Slot{4});
  fc.on_attestation(ValidatorIndex{2}, b.id, Slot{4});
  // Subtree at `a` carries 2 votes via a2.
  EXPECT_DOUBLE_EQ(fc.subtree_weight(a.id, Epoch{0}).eth(), 64.0);
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a2.id);
}

TEST_F(ForkChoiceFixture, ExitedValidatorsWeighZero) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{1}, b.id, Slot{3});
  fc.on_attestation(ValidatorIndex{2}, b.id, Slot{3});
  registry.eject(ValidatorIndex{1}, Epoch{0});
  registry.eject(ValidatorIndex{2}, Epoch{0});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
}

TEST_F(ForkChoiceFixture, TieBreaksOnBlockId) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  // No votes at all: deterministic minimum id wins.
  const Digest expected = std::min(a.id, b.id);
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), expected);
}

TEST_F(ForkChoiceFixture, HeadFromJustifiedRootIgnoresOtherBranch) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  const Block b2 = add(b.id, 3, 2);
  // Everyone votes on branch b, but head is computed from root a.
  fc.on_attestation(ValidatorIndex{0}, b2.id, Slot{4});
  EXPECT_EQ(fc.head(a.id, Epoch{0}), a.id);
}

TEST_F(ForkChoiceFixture, DeepChainWalk) {
  Digest tip = tree.genesis_id();
  for (std::uint64_t s = 1; s <= 100; ++s) {
    tip = add(tip, s, static_cast<std::uint32_t>(s % 8)).id;
  }
  fc.on_attestation(ValidatorIndex{0}, tip, Slot{101});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), tip);
}

}  // namespace
}  // namespace leak::chain
