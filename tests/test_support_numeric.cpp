// Unit and property tests for the numerical toolkit.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/numeric.hpp"

namespace leak::num {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const auto r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ExactEndpointRoot) {
  const auto r = bisect([](double x) { return x; }, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.root, 0.0);
}

TEST(Bisect, UnbracketedFails) {
  const auto r = bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0);
  EXPECT_FALSE(r.converged);
}

TEST(Brent, FindsSqrtTwoFast) {
  const auto r = brent([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, std::sqrt(2.0), 1e-10);
  EXPECT_LT(r.iterations, 60);
}

TEST(Brent, TranscendentalRoot) {
  // cos(x) = x has root ~0.7390851332151607.
  const auto r = brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.root, 0.7390851332151607, 1e-9);
}

TEST(Brent, UnbracketedFails) {
  const auto r = brent([](double x) { return 1.0 + x * x; }, -3.0, 3.0);
  EXPECT_FALSE(r.converged);
}

TEST(BracketUpward, FindsBracket) {
  const auto b = bracket_upward([](double x) { return x - 10.0; }, 0.0, 3.0,
                                100.0);
  ASSERT_TRUE(b.has_value());
  EXPECT_LE(b->first, 10.0);
  EXPECT_GE(b->second, 10.0);
}

TEST(BracketUpward, RespectsLimit) {
  const auto b = bracket_upward([](double x) { return x - 10.0; }, 0.0, 3.0,
                                5.0);
  EXPECT_FALSE(b.has_value());
}

TEST(Rk4, ExponentialDecay) {
  // y' = -y, y(0)=1 -> y(1) = e^-1.
  const auto traj = rk4([](double, double y) { return -y; }, 0.0, 1.0, 1.0,
                        100);
  EXPECT_NEAR(traj.back().y, std::exp(-1.0), 1e-8);
  EXPECT_EQ(traj.size(), 101u);
}

TEST(Rk4, TimeDependentRhs) {
  // y' = -t y, y(0)=s0 -> y(t) = s0 e^{-t^2/2}; the leak stake ODE shape.
  const auto traj = rk4([](double t, double y) { return -t * y; }, 0.0, 32.0,
                        2.0, 400);
  EXPECT_NEAR(traj.back().y, 32.0 * std::exp(-2.0), 1e-6);
}

TEST(NormalDist, PdfSymmetry) {
  EXPECT_DOUBLE_EQ(normal_pdf(1.3), normal_pdf(-1.3));
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-12);
}

TEST(NormalDist, CdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-1.959963984540054), 0.025, 1e-9);
}

TEST(NormalDist, QuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(NormalDist, QuantileDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
}

TEST(LogNormal, CdfMatchesClosedForm) {
  // ln s ~ N(0, 1): cdf at s = e is Phi(1).
  EXPECT_NEAR(lognormal_cdf(std::exp(1.0), 0.0, 1.0), normal_cdf(1.0), 1e-12);
  EXPECT_DOUBLE_EQ(lognormal_cdf(0.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(lognormal_cdf(-1.0, 0.0, 1.0), 0.0);
}

TEST(LogNormal, PdfIntegratesToOne) {
  const auto xs = linspace(1e-6, 60.0, 20001);
  std::vector<double> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ys[i] = lognormal_pdf(xs[i], 1.0, 0.5);
  }
  EXPECT_NEAR(trapezoid(xs, ys), 1.0, 1e-4);
}

TEST(KahanSum, CompensatesCancellation) {
  KahanSum s;
  s.add(1.0);
  for (int i = 0; i < 10'000'000; ++i) s.add(1e-16);
  EXPECT_NEAR(s.value(), 1.0 + 1e-9, 1e-12);
}

TEST(Trapezoid, LinearExact) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(trapezoid(x, y), 2.0);
}

TEST(LerpTable, InterpolatesAndClamps) {
  const std::vector<double> x{0.0, 1.0, 2.0};
  const std::vector<double> y{0.0, 10.0, 40.0};
  EXPECT_DOUBLE_EQ(lerp_table(x, y, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(lerp_table(x, y, 1.5), 25.0);
  EXPECT_DOUBLE_EQ(lerp_table(x, y, -3.0), 0.0);
  EXPECT_DOUBLE_EQ(lerp_table(x, y, 9.0), 40.0);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto g = linspace(0.0, 1.0, 5);
  ASSERT_EQ(g.size(), 5u);
  EXPECT_DOUBLE_EQ(g.front(), 0.0);
  EXPECT_DOUBLE_EQ(g.back(), 1.0);
  EXPECT_DOUBLE_EQ(g[2], 0.5);
}

// Property sweep: brent and bisect agree on a family of monotone
// functions f(x) = x^k - c.
class RootAgreement : public ::testing::TestWithParam<std::pair<int, double>> {};

TEST_P(RootAgreement, BrentMatchesBisect) {
  const auto [k, c] = GetParam();
  const auto f = [k = k, c = c](double x) { return std::pow(x, k) - c; };
  const auto rb = bisect(f, 0.0, 10.0, 1e-12);
  const auto rr = brent(f, 0.0, 10.0, 1e-12);
  ASSERT_TRUE(rb.converged);
  ASSERT_TRUE(rr.converged);
  EXPECT_NEAR(rb.root, rr.root, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Powers, RootAgreement,
    ::testing::Values(std::pair{1, 2.0}, std::pair{2, 2.0}, std::pair{3, 5.0},
                      std::pair{4, 7.0}, std::pair{5, 100.0},
                      std::pair{2, 0.5}, std::pair{3, 900.0}));

}  // namespace
}  // namespace leak::num
