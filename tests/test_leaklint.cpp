// Tests for leaklint (tools/lint): the lexer, the file classifier,
// every rule D1-D6, the suppression grammar (including S1 hygiene),
// and the fixture corpus under tests/lint_fixtures/.
//
// Fixtures are linted through lint_file() with an explicit FileClass,
// as-if they lived in src/ (or a kernel TU) — classify() itself is
// covered separately.  The fixture directory is passed in by CMake as
// LEAK_LINT_FIXTURE_DIR; the leaklint tree walker skips it by name so
// the deliberately dirty fixtures never fail the repo-wide lint gate.
#include "tools/lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace {

using leak::lint::FileClass;
using leak::lint::Finding;
using leak::lint::Severity;
using leak::lint::Stripped;
using leak::lint::Suppression;

#ifndef LEAK_LINT_FIXTURE_DIR
#error "LEAK_LINT_FIXTURE_DIR must be defined by the build"
#endif

std::string fixture_path(const std::string& name) {
  return std::string(LEAK_LINT_FIXTURE_DIR) + "/" + name;
}

FileClass src_class() {
  FileClass cls;
  cls.in_src = true;
  return cls;
}

FileClass kernel_class() {
  FileClass cls;
  cls.in_src = true;
  cls.kernel_tu = true;
  return cls;
}

std::size_t count_rule(const std::vector<Finding>& findings,
                       std::string_view rule) {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [&](const Finding& f) { return f.rule == rule; }));
}

std::vector<std::size_t> lines_of(const std::vector<Finding>& findings,
                                  std::string_view rule) {
  std::vector<std::size_t> lines;
  for (const Finding& f : findings) {
    if (f.rule == rule) lines.push_back(f.line);
  }
  return lines;
}

std::vector<Finding> lint_fixture(const std::string& name,
                                  const FileClass& cls,
                                  std::size_t* suppressed = nullptr) {
  auto findings = leak::lint::lint_file(fixture_path(name), name, cls,
                                        suppressed);
  EXPECT_EQ(count_rule(findings, "IO"), 0u)
      << "fixture " << name << " unreadable at " << fixture_path(name);
  return findings;
}

// ---------------------------------------------------------------- lexer

TEST(LeaklintLexer, StripPreservesLengthAndLines) {
  const std::string_view src =
      "int a = 1; // trailing comment\n"
      "/* block\n   comment */ int b = 2;\n";
  const Stripped s = leak::lint::strip(src);
  ASSERT_EQ(s.code.size(), src.size());
  EXPECT_EQ(std::count(s.code.begin(), s.code.end(), '\n'),
            std::count(src.begin(), src.end(), '\n'));
  EXPECT_EQ(s.code.find("comment"), std::string::npos);
  EXPECT_NE(s.code.find("int b = 2;"), std::string::npos);
}

TEST(LeaklintLexer, BlanksStringAndCharContents) {
  const Stripped s = leak::lint::strip(
      "auto s = \"rand() vector<bool>\"; char c = 'x';\n");
  EXPECT_EQ(s.code.find("rand"), std::string::npos);
  EXPECT_EQ(s.code.find('x'), std::string::npos);
  // Delimiters survive so offsets stay meaningful.
  EXPECT_NE(s.code.find('"'), std::string::npos);
  EXPECT_NE(s.code.find('\''), std::string::npos);
}

TEST(LeaklintLexer, BlanksRawStringsIncludingFeintDelimiters) {
  const std::string_view src =
      "auto s = R\"lint(\n"
      "  std::mt19937 gen;\n"
      "  )other\" still text\n"
      ")lint\";\n"
      "std::size_t after = 0;\n";
  const Stripped s = leak::lint::strip(src);
  EXPECT_EQ(s.code.find("mt19937"), std::string::npos);
  EXPECT_EQ(s.code.find("still text"), std::string::npos);
  EXPECT_NE(s.code.find("std::size_t after = 0;"), std::string::npos);
}

TEST(LeaklintLexer, DigitSeparatorIsNotACharLiteral) {
  // A quote glued to a digit must not open a char literal and swallow
  // the rest of the file.
  const Stripped s =
      leak::lint::strip("long big = 1'000'000; int visible = 2;\n");
  EXPECT_NE(s.code.find("int visible = 2;"), std::string::npos);
}

TEST(LeaklintLexer, SplicedLineCommentStaysAComment) {
  const std::string_view src =
      "// comment with a splice \\\n"
      "rand(); still_comment();\n"
      "int real_code = 1;\n";
  const Stripped s = leak::lint::strip(src);
  EXPECT_EQ(s.code.find("rand"), std::string::npos);
  EXPECT_NE(s.code.find("int real_code = 1;"), std::string::npos);
}

TEST(LeaklintLexer, ParsesTrailingSuppression) {
  const Stripped s = leak::lint::strip(
      "foo();  // leaklint: allow(D4): lookup-only map, never iterated\n");
  ASSERT_EQ(s.suppressions.size(), 1u);
  const Suppression& sup = s.suppressions[0];
  EXPECT_FALSE(sup.malformed);
  EXPECT_TRUE(sup.justified);
  EXPECT_FALSE(sup.comment_only);
  EXPECT_EQ(sup.line_begin, 1u);
  EXPECT_EQ(sup.line_end, 1u);
  ASSERT_EQ(sup.rules.size(), 1u);
  EXPECT_EQ(sup.rules[0], "D4");
}

TEST(LeaklintLexer, ParsesCommentOnlyMultiRuleSuppression) {
  const Stripped s = leak::lint::strip(
      "  // leaklint: allow(D3, D4): scratch buffer, single-threaded\n"
      "  std::vector<bool> scratch;\n");
  ASSERT_EQ(s.suppressions.size(), 1u);
  const Suppression& sup = s.suppressions[0];
  EXPECT_TRUE(sup.comment_only);
  EXPECT_TRUE(sup.justified);
  ASSERT_EQ(sup.rules.size(), 2u);
  EXPECT_EQ(sup.rules[0], "D3");
  EXPECT_EQ(sup.rules[1], "D4");
}

TEST(LeaklintLexer, MissingJustificationIsMalformed) {
  const Stripped s = leak::lint::strip("foo();  // leaklint: allow(D4)\n");
  ASSERT_EQ(s.suppressions.size(), 1u);
  EXPECT_TRUE(s.suppressions[0].malformed);
  EXPECT_FALSE(s.suppressions[0].justified);
}

TEST(LeaklintLexer, EmptyRuleListIsMalformed) {
  const Stripped s =
      leak::lint::strip("// leaklint: allow(): because reasons\n");
  ASSERT_EQ(s.suppressions.size(), 1u);
  EXPECT_TRUE(s.suppressions[0].malformed);
}

// ----------------------------------------------------------- classifier

TEST(LeaklintClassify, KernelDirsGetKernelRules) {
  for (const std::string_view path :
       {"src/bouncing/montecarlo.cpp", "src/faults/schedule.cpp",
        "src/runner/trial_runner.hpp", "src/search/search.cpp",
        "src/sim/slot_sim.cpp", "src/penalties/inactivity.cpp"}) {
    const FileClass cls = leak::lint::classify(path);
    EXPECT_TRUE(cls.in_src) << path;
    EXPECT_TRUE(cls.kernel_tu) << path;
    EXPECT_FALSE(cls.entropy_allowed) << path;
    EXPECT_FALSE(cls.engine_allowed) << path;
  }
}

TEST(LeaklintClassify, NonKernelSrcGetsBaseRulesOnly) {
  const FileClass cls = leak::lint::classify("src/analytic/stake_model.cpp");
  EXPECT_TRUE(cls.in_src);
  EXPECT_FALSE(cls.kernel_tu);
}

TEST(LeaklintClassify, SanctionedSitesAreExempt) {
  EXPECT_TRUE(leak::lint::classify("src/support/version.cpp").entropy_allowed);
  EXPECT_TRUE(leak::lint::classify("src/support/version.hpp").entropy_allowed);
  EXPECT_TRUE(leak::lint::classify("src/support/random.hpp").engine_allowed);
  EXPECT_FALSE(leak::lint::classify("src/support/random.hpp").entropy_allowed);
}

TEST(LeaklintClassify, OutsideSrcOnlyD2Applies) {
  const FileClass cls = leak::lint::classify("tests/test_runner.cpp");
  EXPECT_FALSE(cls.in_src);
  EXPECT_FALSE(cls.kernel_tu);
  EXPECT_FALSE(cls.engine_allowed);
}

// ------------------------------------------------------------- rule D1

TEST(LeaklintRuleD1, FlagsEveryDirectEntropySource) {
  const auto findings = lint_fixture("d1_positive.cpp", src_class());
  EXPECT_EQ(lines_of(findings, "D1"),
            (std::vector<std::size_t>{8, 9, 10, 11, 12, 13}));
  // The <random> include is D2 territory, not D1.
  EXPECT_EQ(count_rule(findings, "D2"), 1u);
}

TEST(LeaklintRuleD1, JustifiedSuppressionSilences) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d1_suppressed.cpp", src_class(), &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 2u);
}

TEST(LeaklintRuleD1, MemberTimeCallsAreClean) {
  const auto findings = lint_fixture("d1_clean.cpp", src_class());
  EXPECT_TRUE(findings.empty());
}

TEST(LeaklintRuleD1, DoesNotApplyOutsideSrc) {
  const auto findings = lint_fixture("d1_positive.cpp", FileClass{});
  EXPECT_EQ(count_rule(findings, "D1"), 0u);
  // D2 still applies everywhere.
  EXPECT_EQ(count_rule(findings, "D2"), 1u);
}

// ------------------------------------------------------------- rule D2

TEST(LeaklintRuleD2, FlagsEnginesAndTheRandomHeader) {
  const auto findings = lint_fixture("d2_positive.cpp", FileClass{});
  // One per engine declaration plus the #include <random>.
  EXPECT_EQ(lines_of(findings, "D2"),
            (std::vector<std::size_t>{2, 5, 6, 7, 8}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(LeaklintRuleD2, JustifiedSuppressionSilences) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d2_suppressed.cpp", FileClass{}, &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(LeaklintRuleD2, SanctionedEngineSiteIsExempt) {
  FileClass cls;
  cls.engine_allowed = true;
  const auto findings = lint_fixture("d2_positive.cpp", cls);
  EXPECT_EQ(count_rule(findings, "D2"), 0u);
}

// ------------------------------------------------------------- rule D3

TEST(LeaklintRuleD3, FlagsVectorBoolInAllSpellings) {
  const auto findings = lint_fixture("d3_positive.cpp", src_class());
  EXPECT_EQ(lines_of(findings, "D3"),
            (std::vector<std::size_t>{4, 7, 8, 9}));
}

TEST(LeaklintRuleD3, JustifiedSuppressionSilences) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d3_suppressed.cpp", src_class(), &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(LeaklintRuleD3, CommentsAndStringsAreClean) {
  const auto findings = lint_fixture("d3_clean.cpp", src_class());
  EXPECT_TRUE(findings.empty());
}

TEST(LeaklintRuleD3, DoesNotApplyOutsideSrc) {
  const auto findings = lint_fixture("d3_positive.cpp", FileClass{});
  EXPECT_EQ(count_rule(findings, "D3"), 0u);
}

// ------------------------------------------------------------- rule D4

TEST(LeaklintRuleD4, FlagsUnorderedContainersInKernelTUs) {
  const auto findings = lint_fixture("d4_positive.cpp", kernel_class());
  EXPECT_EQ(lines_of(findings, "D4"), (std::vector<std::size_t>{6, 7}));
  for (const Finding& f : findings) {
    if (f.rule == "D4") {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
}

TEST(LeaklintRuleD4, IncludesThemselvesAreNotFlagged) {
  // The #include <unordered_map> lines (1-based lines 2-3) carry the
  // token too; only the usage sites may fire.
  const auto lines = lines_of(
      lint_fixture("d4_positive.cpp", kernel_class()), "D4");
  EXPECT_TRUE(std::find(lines.begin(), lines.end(), 2u) == lines.end());
  EXPECT_TRUE(std::find(lines.begin(), lines.end(), 3u) == lines.end());
}

TEST(LeaklintRuleD4, JustifiedSuppressionSilences) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d4_suppressed.cpp", kernel_class(), &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(LeaklintRuleD4, DoesNotApplyOutsideKernelTUs) {
  const auto findings = lint_fixture("d4_positive.cpp", src_class());
  EXPECT_EQ(count_rule(findings, "D4"), 0u);
}

// ------------------------------------------------------------- rule D5

TEST(LeaklintRuleD5, FlagsMutableGlobalsAndThreadLocal) {
  const auto findings = lint_fixture("d5_positive.cpp", src_class());
  EXPECT_EQ(lines_of(findings, "D5"),
            (std::vector<std::size_t>{4, 5, 8, 12}));
}

TEST(LeaklintRuleD5, ConstStaticAndSuppressedShapesAreClean) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d5_suppressed.cpp", src_class(), &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(LeaklintRuleD5, DoesNotApplyOutsideSrc) {
  const auto findings = lint_fixture("d5_positive.cpp", FileClass{});
  EXPECT_EQ(count_rule(findings, "D5"), 0u);
}

// ------------------------------------------------------------- rule D6

TEST(LeaklintRuleD6, FlagsFloatAccumulationHazards) {
  const auto findings = lint_fixture("d6_positive.cpp", kernel_class());
  EXPECT_EQ(lines_of(findings, "D6"),
            (std::vector<std::size_t>{6, 7, 8, 9}));
}

TEST(LeaklintRuleD6, DoubleAccumulateIsCleanAndSuppressionWorks) {
  std::size_t suppressed = 0;
  const auto findings =
      lint_fixture("d6_suppressed.cpp", kernel_class(), &suppressed);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(LeaklintRuleD6, DoesNotApplyOutsideKernelTUs) {
  const auto findings = lint_fixture("d6_positive.cpp", src_class());
  EXPECT_EQ(count_rule(findings, "D6"), 0u);
}

// ---------------------------------------------------- suppression rules

TEST(LeaklintRuleS1, MalformedAndUnknownSuppressionsAreFindings) {
  const auto findings = lint_fixture("s1_malformed.cpp", kernel_class());
  // Malformed suppressions never silence: all three D3 hits survive.
  EXPECT_EQ(lines_of(findings, "D3"), (std::vector<std::size_t>{5, 7, 9}));
  // allow(D3) without justification, allow() with an empty rule list,
  // allow(D9) naming an unknown rule.
  EXPECT_EQ(lines_of(findings, "S1"), (std::vector<std::size_t>{5, 6, 8}));
  for (const Finding& f : findings) {
    if (f.rule == "S1") {
      EXPECT_EQ(f.severity, Severity::kError);
    }
  }
}

TEST(LeaklintSuppression, WrongRuleIdDoesNotSilence) {
  const auto findings = leak::lint::lint_source(
      "probe.cpp",
      "#include <vector>\n"
      "// leaklint: allow(D4): wrong rule for this line\n"
      "std::vector<bool> flags(4);\n",
      src_class());
  EXPECT_EQ(count_rule(findings, "D3"), 1u);
}

TEST(LeaklintSuppression, CommentOnlyCoversOnlyTheNextLine) {
  const auto findings = leak::lint::lint_source(
      "probe.cpp",
      "// leaklint: allow(D3): covers the next line only\n"
      "std::vector<bool> covered(4);\n"
      "std::vector<bool> not_covered(4);\n",
      src_class());
  EXPECT_EQ(lines_of(findings, "D3"), (std::vector<std::size_t>{3}));
}

// ------------------------------------------------------- lexer fixtures

TEST(LeaklintLexerFixture, OnlyTheMacroBodyHitSurvives) {
  // Every banned token in comments, strings, raw strings and char
  // literals is invisible; the rand() inside the multi-line #define
  // body is the one real finding.
  const auto findings = lint_fixture("lexer_edges.cpp", kernel_class());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "D1");
  EXPECT_EQ(findings[0].line, 28u);
}

// -------------------------------------------------------------- catalog

TEST(LeaklintCatalog, CoversAllRules) {
  const auto& catalog = leak::lint::rule_catalog();
  for (const std::string_view id :
       {"D1", "D2", "D3", "D4", "D5", "D6", "S1"}) {
    EXPECT_TRUE(std::any_of(catalog.begin(), catalog.end(),
                            [&](const leak::lint::RuleInfo& r) {
                              return id == r.id;
                            }))
        << "missing rule " << id;
  }
  EXPECT_STREQ(leak::lint::severity_name(Severity::kError), "error");
  EXPECT_STREQ(leak::lint::severity_name(Severity::kWarning), "warning");
}

TEST(LeaklintIO, UnreadableFileIsAnIOFinding) {
  const auto findings = leak::lint::lint_file(
      fixture_path("does_not_exist.cpp"), "does_not_exist.cpp", src_class());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "IO");
}

}  // namespace
