// Tests for ScenarioSpec / ParamSet: typed parameters, defaults,
// range/choice validation, key=value parsing, and JSON round-trips
// with unknown-key rejection.
#include <gtest/gtest.h>

#include <string>

#include "src/scenario/spec.hpp"
#include "src/support/json.hpp"

namespace leak::scenario {
namespace {

ScenarioSpec demo_spec() {
  ScenarioSpec spec("demo", "a demo scenario");
  spec.add_int("paths", "trials", 64, 1, 100000)
      .add_double("beta0", "byzantine proportion", 0.33, 0.0, 0.5)
      .add_bool("exact", "use exact dynamics", true)
      .add_string("strategy", "byzantine strategy", "honest",
                  {"honest", "slashable", "semiactive"})
      .add_int("seed", "rng seed", 7)
      .add_int("threads", "workers", 0, 0, 1024);
  return spec;
}

TEST(ScenarioSpecTest, DefaultsCoverEveryParam) {
  const auto spec = demo_spec();
  const ParamSet d = spec.defaults();
  EXPECT_EQ(d.get_int("paths"), 64);
  EXPECT_EQ(d.get_double("beta0"), 0.33);
  EXPECT_TRUE(d.get_bool("exact"));
  EXPECT_EQ(d.get_string("strategy"), "honest");
  EXPECT_FALSE(spec.validate(d).has_value());
}

TEST(ScenarioSpecTest, TypedGettersEnforceTypes) {
  const ParamSet d = demo_spec().defaults();
  EXPECT_THROW((void)d.get_int("beta0"), std::logic_error);
  EXPECT_THROW((void)d.get_string("paths"), std::logic_error);
  EXPECT_THROW((void)d.get_int("nonexistent"), std::out_of_range);
  // get_double widens int parameters.
  EXPECT_EQ(d.get_double("paths"), 64.0);
}

TEST(ScenarioSpecTest, ApplyKvParsesStrictly) {
  const auto spec = demo_spec();
  ParamSet p = spec.defaults();
  EXPECT_FALSE(spec.apply_kv("paths=128", &p).has_value());
  EXPECT_FALSE(spec.apply_kv("beta0=0.25", &p).has_value());
  EXPECT_FALSE(spec.apply_kv("exact=false", &p).has_value());
  EXPECT_FALSE(spec.apply_kv("strategy=slashable", &p).has_value());
  EXPECT_EQ(p.get_int("paths"), 128);
  EXPECT_EQ(p.get_double("beta0"), 0.25);
  EXPECT_FALSE(p.get_bool("exact"));
  EXPECT_EQ(p.get_string("strategy"), "slashable");

  // Malformed assignments are rejected with a message.
  for (const char* bad :
       {"paths=12x", "paths=", "beta0=0,5", "exact=maybe", "nope=1",
        "paths", "=4"}) {
    const auto err = spec.apply_kv(bad, &p);
    EXPECT_TRUE(err.has_value()) << bad;
  }
}

TEST(ScenarioSpecTest, RangeAndChoiceValidation) {
  const auto spec = demo_spec();
  ParamSet p = spec.defaults();
  EXPECT_TRUE(spec.apply_kv("paths=0", &p).has_value());      // below min
  EXPECT_TRUE(spec.apply_kv("beta0=0.6", &p).has_value());    // above max
  EXPECT_TRUE(spec.apply_kv("strategy=bogus", &p).has_value());
  // validate() catches hand-built out-of-range values too.
  ParamSet q = spec.defaults();
  q.set("beta0", 2.0);
  const auto err = spec.validate(q);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("beta0"), std::string::npos);
}

TEST(ScenarioSpecTest, ValidateRejectsUnknownAndMissingAndWrongType) {
  const auto spec = demo_spec();
  ParamSet p = spec.defaults();
  p.set("mystery", std::int64_t{1});
  EXPECT_TRUE(spec.validate(p).has_value());

  ParamSet wrong = spec.defaults();
  wrong.set("paths", 0.5);  // double into an int slot
  EXPECT_TRUE(spec.validate(wrong).has_value());

  ParamSet missing;
  missing.set("paths", std::int64_t{4});
  const auto err = spec.validate(missing);
  ASSERT_TRUE(err.has_value());
  EXPECT_NE(err->find("missing"), std::string::npos);
}

TEST(ScenarioSpecTest, DuplicateParamThrows) {
  ScenarioSpec spec("dup", "x");
  spec.add_int("a", "", 1);
  EXPECT_THROW(spec.add_double("a", "", 2.0), std::invalid_argument);
}

TEST(ScenarioSpecTest, JsonRoundTrip) {
  const auto spec = demo_spec();
  const auto doc = spec.to_json();
  std::string error;
  const auto back = ScenarioSpec::from_json(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->name(), spec.name());
  EXPECT_EQ(back->description(), spec.description());
  ASSERT_EQ(back->params().size(), spec.params().size());
  for (std::size_t i = 0; i < spec.params().size(); ++i) {
    const auto& a = spec.params()[i];
    const auto& b = back->params()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.description, b.description);
    EXPECT_TRUE(a.default_value == b.default_value) << a.name;
    EXPECT_EQ(a.min_value, b.min_value);
    EXPECT_EQ(a.max_value, b.max_value);
    EXPECT_EQ(a.choices, b.choices);
  }
  // And the round-tripped spec serializes identically.
  EXPECT_EQ(back->to_json().dump(), doc.dump());
}

TEST(ScenarioSpecTest, FromJsonRejectsUnknownKeys) {
  auto doc = demo_spec().to_json();
  doc.set("surprise", 1);
  std::string error;
  EXPECT_FALSE(ScenarioSpec::from_json(doc, &error).has_value());
  EXPECT_NE(error.find("surprise"), std::string::npos);

  // Unknown key inside a param entry, injected via string surgery.
  const std::string text = demo_spec().to_json().dump();
  const auto pos = text.find("\"type\":");
  ASSERT_NE(pos, std::string::npos);
  const std::string poisoned =
      text.substr(0, pos) + "\"typo\":1," + text.substr(pos);
  const auto bad = json::Value::parse(poisoned);
  ASSERT_TRUE(bad.has_value());
  EXPECT_FALSE(ScenarioSpec::from_json(*bad, &error).has_value());
  EXPECT_NE(error.find("typo"), std::string::npos);
}

TEST(ScenarioSpecTest, FromJsonRejectsTypeErrors) {
  std::string error;
  const auto bad_type = json::Value::parse(
      "{\"name\":\"x\",\"description\":\"\",\"params\":"
      "[{\"name\":\"a\",\"type\":\"tristate\",\"default\":1}]}");
  ASSERT_TRUE(bad_type.has_value());
  EXPECT_FALSE(ScenarioSpec::from_json(*bad_type, &error).has_value());

  const auto bad_default = json::Value::parse(
      "{\"name\":\"x\",\"description\":\"\",\"params\":"
      "[{\"name\":\"a\",\"type\":\"int\",\"default\":\"seven\"}]}");
  ASSERT_TRUE(bad_default.has_value());
  EXPECT_FALSE(ScenarioSpec::from_json(*bad_default, &error).has_value());
}

TEST(ScenarioSpecTest, ParamsFromJsonValidatesAndFillsDefaults) {
  const auto spec = demo_spec();
  std::string error;
  const auto doc = json::Value::parse("{\"paths\":256,\"beta0\":0.1}");
  ASSERT_TRUE(doc.has_value());
  const auto p = spec.params_from_json(*doc, &error);
  ASSERT_TRUE(p.has_value()) << error;
  EXPECT_EQ(p->get_int("paths"), 256);
  EXPECT_EQ(p->get_double("beta0"), 0.1);
  EXPECT_EQ(p->get_string("strategy"), "honest");  // default filled

  const auto unknown = json::Value::parse("{\"pathz\":256}");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(spec.params_from_json(*unknown, &error).has_value());
  EXPECT_NE(error.find("pathz"), std::string::npos);

  const auto out_of_range = json::Value::parse("{\"beta0\":0.9}");
  ASSERT_TRUE(out_of_range.has_value());
  EXPECT_FALSE(spec.params_from_json(*out_of_range, &error).has_value());
}

TEST(ScenarioSpecTest, ParamSetJsonUsesNativeTypes) {
  const auto d = demo_spec().defaults();
  const auto j = d.to_json();
  EXPECT_TRUE(j.find("paths")->is_int());
  EXPECT_TRUE(j.find("beta0")->is_double());
  EXPECT_TRUE(j.find("exact")->is_bool());
  EXPECT_TRUE(j.find("strategy")->is_string());
}

}  // namespace
}  // namespace leak::scenario
