// Tests for the strict parse helpers and the hardened env knobs:
// trailing garbage, overflow, and empty values are rejected with a
// diagnostic instead of silently truncated.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/support/env.hpp"
#include "src/support/parse.hpp"

namespace leak {
namespace {

TEST(ParseTest, U64Strict) {
  EXPECT_EQ(parse::u64("0"), 0u);
  EXPECT_EQ(parse::u64("18446744073709551615"), ~0ULL);
  EXPECT_EQ(parse::u64("  42\t"), 42u);  // surrounding blanks trimmed
  EXPECT_FALSE(parse::u64(""));
  EXPECT_FALSE(parse::u64("   "));
  EXPECT_FALSE(parse::u64("4x"));          // trailing garbage
  EXPECT_FALSE(parse::u64("4 2"));         // inner whitespace
  EXPECT_FALSE(parse::u64("-1"));          // strtoull would wrap this
  EXPECT_FALSE(parse::u64("+4"));
  EXPECT_FALSE(parse::u64("18446744073709551616"));  // overflow
  EXPECT_FALSE(parse::u64("0x10"));
}

TEST(ParseTest, I64Strict) {
  EXPECT_EQ(parse::i64("-12"), -12);
  EXPECT_EQ(parse::i64("9223372036854775807"), 9223372036854775807LL);
  EXPECT_FALSE(parse::i64("9223372036854775808"));  // overflow
  EXPECT_FALSE(parse::i64("12.5"));
  EXPECT_FALSE(parse::i64(""));
}

TEST(ParseTest, RealStrict) {
  EXPECT_EQ(parse::real("0.25"), 0.25);
  EXPECT_EQ(parse::real("-1e3"), -1000.0);
  EXPECT_EQ(parse::real("33"), 33.0);
  EXPECT_FALSE(parse::real(""));
  EXPECT_FALSE(parse::real("1e3garbage"));
  EXPECT_FALSE(parse::real("nan"));
  EXPECT_FALSE(parse::real("inf"));
  EXPECT_FALSE(parse::real("1e999"));  // overflows to infinity
  EXPECT_FALSE(parse::real("0,5"));    // locale-style decimal comma
}

TEST(ParseTest, BooleanSpellings) {
  EXPECT_EQ(parse::boolean("true"), true);
  EXPECT_EQ(parse::boolean("1"), true);
  EXPECT_EQ(parse::boolean("yes"), true);
  EXPECT_EQ(parse::boolean("off"), false);
  EXPECT_EQ(parse::boolean("0"), false);
  EXPECT_FALSE(parse::boolean("True"));  // case-sensitive by design
  EXPECT_FALSE(parse::boolean("2"));
  EXPECT_FALSE(parse::boolean(""));
}

class EnvKnobTest : public ::testing::Test {
 protected:
  void TearDown() override { unsetenv("LEAK_TEST_KNOB"); }
};

TEST_F(EnvKnobTest, UnsetFallsBackSilently) {
  unsetenv("LEAK_TEST_KNOB");
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 7), 7u);
  EXPECT_EQ(env::double_or("LEAK_TEST_KNOB", 0.5), 0.5);
}

TEST_F(EnvKnobTest, ValidValueWins) {
  setenv("LEAK_TEST_KNOB", "12", 1);
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 7), 12u);
  setenv("LEAK_TEST_KNOB", "0.125", 1);
  EXPECT_EQ(env::double_or("LEAK_TEST_KNOB", 0.5), 0.125);
}

TEST_F(EnvKnobTest, TrailingGarbageRejectedWithDiagnostic) {
  // The old strtoull-based parser silently truncated "4x" to 4.
  setenv("LEAK_TEST_KNOB", "4x", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 7), 7u);
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("LEAK_TEST_KNOB"), std::string::npos) << err;
  EXPECT_NE(err.find("4x"), std::string::npos) << err;
}

TEST_F(EnvKnobTest, OverflowAndEmptyAndNegativeRejected) {
  ::testing::internal::CaptureStderr();
  setenv("LEAK_TEST_KNOB", "18446744073709551616", 1);
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 3), 3u);
  setenv("LEAK_TEST_KNOB", "", 1);
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 3), 3u);
  setenv("LEAK_TEST_KNOB", "-1", 1);
  EXPECT_EQ(env::u64_or("LEAK_TEST_KNOB", 3), 3u);
  setenv("LEAK_TEST_KNOB", "1e999", 1);
  EXPECT_EQ(env::double_or("LEAK_TEST_KNOB", 0.25), 0.25);
  (void)::testing::internal::GetCapturedStderr();
}

TEST_F(EnvKnobTest, PathScaleStillClamps) {
  setenv("LEAK_TEST_PATH_SCALE", "0.5", 1);
  EXPECT_EQ(env::test_path_scale(), 0.5);
  setenv("LEAK_TEST_PATH_SCALE", "99", 1);
  EXPECT_EQ(env::test_path_scale(), 1.0);
  setenv("LEAK_TEST_PATH_SCALE", "bogus", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(env::test_path_scale(), 1.0);
  (void)::testing::internal::GetCapturedStderr();
  unsetenv("LEAK_TEST_PATH_SCALE");
  EXPECT_EQ(env::scaled_count(100), 100u);
}

}  // namespace
}  // namespace leak
