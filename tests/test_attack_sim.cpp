// Tests for the bouncing-attack lifetime simulator: duration
// distribution vs the geometric closed form, and the unconditional
// probability of breaking the 1/3 threshold.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/markov.hpp"
#include "src/support/env.hpp"

namespace leak::bouncing {
namespace {

AttackSimConfig small(double beta0, bool stake_weighted = false) {
  AttackSimConfig cfg;
  cfg.beta0 = beta0;
  cfg.runs = leak::env::scaled_count(400);
  cfg.honest_validators = 60;
  cfg.max_epochs = 8000;
  cfg.seed = 77;
  cfg.stake_weighted_lottery = stake_weighted;
  return cfg;
}

TEST(ExpectedDuration, GeometricClosedForm) {
  // p_die = (1-b0)^j; E[duration] = (1-p_die)/p_die.
  const double b0 = 1.0 / 3.0;
  const double p_die = std::pow(2.0 / 3.0, 8);
  EXPECT_NEAR(expected_duration_constant_beta(b0, 8),
              (1.0 - p_die) / p_die, 1e-12);
  // j = 0: the attack can never continue.
  EXPECT_DOUBLE_EQ(expected_duration_constant_beta(0.3, 0), 0.0);
}

TEST(AttackSim, DurationMatchesGeometricForConstantLottery) {
  if (env::test_path_scale() < 1.0) {
    GTEST_SKIP() << "25% tolerance on the mean needs the full 400 runs";
  }
  const auto cfg = small(1.0 / 3.0, /*stake_weighted=*/false);
  const auto r = run_attack_sim(cfg);
  const double expect = expected_duration_constant_beta(cfg.beta0, cfg.j);
  // ~25 epochs expected; 400 runs give ~8% standard error.
  EXPECT_NEAR(r.mean_duration, expect, expect * 0.25);
}

TEST(AttackSim, SmallerBetaDiesFaster) {
  const auto big = run_attack_sim(small(1.0 / 3.0));
  const auto sml = run_attack_sim(small(0.15));
  EXPECT_LT(sml.mean_duration, big.mean_duration);
}

TEST(AttackSim, MoreProposerSlotsExtendAttack) {
  auto a = small(0.25);
  a.j = 2;
  auto b = small(0.25);
  b.j = 16;
  EXPECT_LT(run_attack_sim(a).mean_duration,
            run_attack_sim(b).mean_duration);
}

TEST(AttackSim, ThresholdRarelyBrokenWithinRealisticLifetimes) {
  // The paper's point: breaking 1/3 via bouncing needs thousands of
  // epochs, but the attack dies in tens — the unconditional probability
  // is tiny even for beta0 = 0.33.
  const auto r = run_attack_sim(small(0.33));
  EXPECT_LT(r.prob_threshold_broken, 0.02);
  EXPECT_LT(r.p99_duration, 500.0);
}

TEST(AttackSim, BetaExactlyThirdBreaksQuicklySometimes) {
  // At beta0 = 1/3 the proportion hovers at the threshold; small
  // fluctuations cross it within the attack's lifetime occasionally.
  auto cfg = small(1.0 / 3.0);
  cfg.honest_validators = 20;  // small population -> fluctuations
  cfg.runs = env::scaled_count(600);
  const auto r = run_attack_sim(cfg);
  EXPECT_GT(r.prob_threshold_broken, 0.05);
}

TEST(AttackSim, StakeWeightedLotteryDiffersFromConstant) {
  // As honest validators bleed stake, beta grows and the stake-weighted
  // lottery survives (weakly) longer on average.
  const auto cst = run_attack_sim(small(0.3, false));
  const auto dyn = run_attack_sim(small(0.3, true));
  EXPECT_GE(dyn.mean_duration, cst.mean_duration * 0.8);
}

TEST(AttackSim, Deterministic) {
  const auto a = run_attack_sim(small(0.3));
  const auto b = run_attack_sim(small(0.3));
  EXPECT_EQ(a.durations, b.durations);
}

TEST(AttackSim, StatisticsConsistent) {
  const auto cfg = small(0.3);
  const auto r = run_attack_sim(cfg);
  EXPECT_EQ(r.durations.size(), cfg.runs);
  EXPECT_LE(r.median_duration, r.p99_duration);
  EXPECT_GE(r.mean_duration, 0.0);
  EXPECT_EQ(r.break_epochs.size() <= r.durations.size(), true);
}

TEST(AttackSim, InvalidConfigThrows) {
  AttackSimConfig cfg;
  cfg.runs = 0;
  EXPECT_THROW(run_attack_sim(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace leak::bouncing
