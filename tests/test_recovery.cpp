// Tests for post-leak recovery: score decay tail and residual losses.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/recovery.hpp"
#include "src/analytic/stake_model.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(Recovery, EpochsLinearInScore) {
  EXPECT_DOUBLE_EQ(recovery_epochs(0.0), 0.0);
  EXPECT_DOUBLE_EQ(recovery_epochs(17.0), 1.0);
  EXPECT_DOUBLE_EQ(recovery_epochs(1700.0), 100.0);
  EXPECT_THROW(static_cast<void>(recovery_epochs(-1.0)),
               std::invalid_argument);
}

TEST(Recovery, ScoreAtLeakEnd) {
  // An always-inactive validator carries score 4t when the leak ends.
  EXPECT_DOUBLE_EQ(score_at_leak_end(1000.0, kPaper), 4000.0);
}

TEST(Recovery, ResidualLossClosedForm) {
  // exp form: loss = s (1 - e^{-I0^2 / (2 * 17 * q)}).
  const double i0 = 4000.0, s = 20.0;
  const double expect =
      s * (1.0 - std::exp(-i0 * i0 / (2.0 * 17.0 * kPaper.quotient)));
  EXPECT_NEAR(residual_loss(i0, s, kPaper), expect, 1e-12);
}

TEST(Recovery, DiscreteMatchesClosedForm) {
  for (const double i0 : {500.0, 4000.0, 12000.0}) {
    const double closed = residual_loss(i0, 24.0, kPaper);
    const double discrete = residual_loss_discrete(i0, 24.0, kPaper);
    // Short recovery tails (~30 epochs at score 500) carry a few
    // percent discretization error on an absolutely tiny loss.
    EXPECT_NEAR(discrete / closed, 1.0, 5e-2) << "score0=" << i0;
  }
}

TEST(Recovery, LossGrowsWithScore) {
  double prev = -1.0;
  for (double i0 = 0.0; i0 <= 16000.0; i0 += 2000.0) {
    const double loss = residual_loss(i0, 20.0, kPaper);
    EXPECT_GT(loss, prev);
    prev = loss;
  }
}

TEST(Recovery, TailIsSmallRelativeToLeakLoss) {
  // Scenario: branch with p0 = 0.6 recovers at ~3107 epochs; the
  // inactive class has lost ~13 ETH during the leak, and loses only a
  // bounded extra amount during the recovery tail.
  const double t = 3107.0;
  const double s_end = stake(Behavior::kInactive, t, kPaper);
  const double leak_loss = 32.0 - s_end;
  const double tail = residual_loss(score_at_leak_end(t, kPaper), s_end,
                                    kPaper);
  EXPECT_GT(tail, 0.0);
  EXPECT_LT(tail, leak_loss);
  // The tail lasts I0/17 ~ 731 epochs.
  EXPECT_NEAR(recovery_epochs(score_at_leak_end(t, kPaper)), 731.0, 1.0);
}

TEST(Recovery, ZeroScoreZeroLoss) {
  EXPECT_DOUBLE_EQ(residual_loss(0.0, 32.0, kPaper), 0.0);
  EXPECT_DOUBLE_EQ(residual_loss_discrete(0.0, 32.0, kPaper), 0.0);
}

}  // namespace
}  // namespace leak::analytic
