// Tests for the adversary-strategy optimizer (src/search): fail-fast
// objective/axis resolution, deterministic grid seeding + pattern
// descent, bit-identity across candidate-evaluation thread counts, and
// the journaled evaluation cache — an interrupted search (budget cut,
// torn tail, or SIGKILL mid-run) resumes to a journal byte-identical
// to an uninterrupted run's.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "src/scenario/registry.hpp"
#include "src/search/journal.hpp"
#include "src/search/objective.hpp"
#include "src/search/search.hpp"
#include "src/serve/store.hpp"
#include "src/support/env.hpp"

namespace leak::search {
namespace {

using scenario::builtin_registry;

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class SearchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "search_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A cheap, smooth objective: the semiactive duty-cycle analytic
  /// peak over (branches, beta0), milliseconds per evaluation.
  [[nodiscard]] ResolvedSearch cheap_search() const {
    std::string error;
    auto resolved = resolve_search(
        builtin_registry(), "semiactive-sweep:beta_max:max",
        {"branches=2:6:1", "beta0=0.26:0.34:0.02"},
        {"paths=" + std::to_string(env::scaled_count(16)), "epochs=300"},
        &error);
    EXPECT_TRUE(resolved.has_value()) << error;
    return *resolved;
  }

  [[nodiscard]] SearchResult run_cheap(const SearchOptions& opts) const {
    const auto resolved = cheap_search();
    const auto& sc = *builtin_registry().find(resolved.objective.scenario);
    return run_search(sc, resolved.objective, resolved.axes, opts);
  }

  std::string dir_;
};

TEST(SearchResolve, ShippedConfigsResolveAgainstTheRegistry) {
  for (const auto& cfg : builtin_search_configs()) {
    std::string error;
    const auto resolved =
        resolve_search(builtin_registry(), cfg.name, {}, {}, &error);
    ASSERT_TRUE(resolved.has_value()) << cfg.name << ": " << error;
    EXPECT_EQ(resolved->config_name, cfg.name);
    EXPECT_EQ(resolved->objective.scenario, cfg.scenario);
    EXPECT_EQ(resolved->objective.metric, cfg.metric);
    EXPECT_FALSE(resolved->axes.empty());
    EXPECT_GE(resolved->budget, 1u);
    // Every config override landed in the base ParamSet.
    for (const auto& kv : cfg.sets) {
      const auto eq = kv.find('=');
      ASSERT_NE(eq, std::string::npos);
      EXPECT_TRUE(resolved->objective.base.contains(kv.substr(0, eq))) << kv;
    }
  }
}

TEST(SearchResolve, UnknownObjectiveListsShippedConfigs) {
  std::string error;
  EXPECT_FALSE(
      resolve_search(builtin_registry(), "no-such", {}, {}, &error));
  for (const auto& cfg : builtin_search_configs()) {
    EXPECT_NE(error.find(cfg.name), std::string::npos) << error;
  }
  EXPECT_FALSE(
      resolve_search(builtin_registry(), "no-such:metric", {}, {}, &error));
  EXPECT_NE(error.find("unknown scenario"), std::string::npos) << error;
}

TEST(SearchResolve, UnknownKnobsFailFastWithKnownParamsHint) {
  // The fail-fast satellite: a mistyped --axis or --set knob is
  // rejected during resolution — before any evaluation or worker
  // spawns — and the error names the declared parameter surface.
  std::string error;
  EXPECT_FALSE(resolve_search(builtin_registry(), "balancing-timing",
                              {"bogus_knob=1:3:1"}, {}, &error));
  EXPECT_NE(error.find("bogus_knob"), std::string::npos) << error;
  EXPECT_NE(error.find("known params:"), std::string::npos) << error;
  EXPECT_NE(error.find("release_delay"), std::string::npos) << error;

  EXPECT_FALSE(resolve_search(builtin_registry(), "balancing-timing", {},
                              {"also_bogus=7"}, &error));
  EXPECT_NE(error.find("known params:"), std::string::npos) << error;
}

TEST(SearchResolve, UserAxisOverridesConfigAxisOverSameParam) {
  std::string error;
  const auto resolved = resolve_search(builtin_registry(), "balancing-timing",
                                       {"release_delay=0.1,0.5"}, {}, &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  std::size_t release_axes = 0;
  for (const auto& axis : resolved->axes) {
    if (axis.param == "release_delay") {
      ++release_axes;
      EXPECT_EQ(axis.values.size(), 2u);
    }
  }
  EXPECT_EQ(release_axes, 1u);
}

TEST_F(SearchTest, FindsAtLeastTheFixedBaselineAndIsRepeatable) {
  SearchOptions opts;
  opts.budget = 20;
  const SearchResult a = run_cheap(opts);
  const SearchResult b = run_cheap(opts);
  // The optimizer is deterministic end to end: identical trajectory,
  // identical report bytes.
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  EXPECT_EQ(a.history_to_csv(), b.history_to_csv());
  // The searched strategy is never worse than the fixed baseline.
  EXPECT_GE(a.best_value, a.baseline_value);
  EXPECT_EQ(a.history.front().cand, std::vector<std::size_t>{});
  EXPECT_LE(a.evaluations, opts.budget);
}

TEST_F(SearchTest, BitIdenticalAcrossEvaluationThreadCounts) {
  SearchOptions one;
  one.budget = 16;
  one.threads = 1;
  SearchOptions four = one;
  four.threads = 4;
  const SearchResult a = run_cheap(one);
  const SearchResult b = run_cheap(four);
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
}

TEST_F(SearchTest, ThreadCountsProduceByteIdenticalJournals) {
  SearchOptions one;
  one.budget = 16;
  one.threads = 1;
  one.journal_path = dir_ + "/one.jsonl";
  SearchOptions four = one;
  four.threads = 4;
  four.journal_path = dir_ + "/four.jsonl";
  const SearchResult a = run_cheap(one);
  const SearchResult b = run_cheap(four);
  EXPECT_EQ(a.best_value, b.best_value);
  EXPECT_EQ(slurp(one.journal_path), slurp(four.journal_path));
}

TEST_F(SearchTest, BudgetCutResumesToByteIdenticalJournal) {
  // Uninterrupted reference.
  SearchOptions clean;
  clean.budget = 16;
  clean.journal_path = dir_ + "/clean.jsonl";
  const SearchResult ref = run_cheap(clean);

  // Interrupted: a small budget stops mid-search; the second run
  // replays the journal and continues where the first stopped.
  SearchOptions cut = clean;
  cut.budget = 5;
  cut.journal_path = dir_ + "/resumed.jsonl";
  const SearchResult partial = run_cheap(cut);
  EXPECT_TRUE(partial.budget_exhausted);
  EXPECT_EQ(partial.evaluations, 5u);

  SearchOptions rest = clean;
  rest.journal_path = cut.journal_path;
  const SearchResult resumed = run_cheap(rest);
  EXPECT_EQ(resumed.cache_hits, 5u);
  EXPECT_EQ(resumed.best_value, ref.best_value);
  EXPECT_EQ(resumed.best_cand, ref.best_cand);
  EXPECT_EQ(slurp(rest.journal_path), slurp(clean.journal_path));
}

TEST_F(SearchTest, CompletedSearchReRunsZeroEvaluations) {
  SearchOptions opts;
  opts.budget = 16;
  opts.journal_path = dir_ + "/done.jsonl";
  const SearchResult first = run_cheap(opts);
  const std::string bytes = slurp(opts.journal_path);
  const SearchResult again = run_cheap(opts);
  EXPECT_EQ(again.cache_hits, again.evaluations);
  EXPECT_EQ(again.best_value, first.best_value);
  EXPECT_EQ(slurp(opts.journal_path), bytes);
}

TEST_F(SearchTest, TornTailIsRepairedAndResumeStaysByteIdentical) {
  SearchOptions clean;
  clean.budget = 12;
  clean.journal_path = dir_ + "/clean.jsonl";
  (void)run_cheap(clean);
  const std::string reference = slurp(clean.journal_path);

  // Chop the last record in half and add torn garbage — the state a
  // kill -9 mid-append leaves behind.
  const std::string torn_path = dir_ + "/torn.jsonl";
  const std::size_t keep = reference.rfind('\n', reference.size() - 2) + 1;
  {
    std::ofstream out(torn_path, std::ios::binary);
    out.write(reference.data(), static_cast<std::streamsize>(keep));
    out << "12345678 {\"half";
  }
  SearchOptions resume = clean;
  resume.journal_path = torn_path;
  const SearchResult resumed = run_cheap(resume);
  EXPECT_GT(resumed.cache_hits, 0u);
  EXPECT_EQ(slurp(torn_path), reference);
}

TEST_F(SearchTest, SigkilledMidSearchResumesByteIdentically) {
  // The headline crash test, in the serve-resume mold: SIGKILL a
  // process mid-search, resume in this process, and require the
  // journal to end byte-identical to an uninterrupted run's.  The
  // balancing objective's evaluations are slow enough (tens of
  // milliseconds and up) for the kill to land mid-search.
  std::string error;
  const auto resolved = resolve_search(
      builtin_registry(), "balancing-timing",
      {"release_delay=0.1,1.1,2.1", "cross_delay=0.1,1.1"},
      {"paths=" + std::to_string(env::scaled_count(4)), "epochs=6",
       "n_honest=8", "n_byzantine=3"},
      &error);
  ASSERT_TRUE(resolved.has_value()) << error;
  const auto& sc = *builtin_registry().find(resolved->objective.scenario);

  SearchOptions clean;
  clean.budget = 8;
  clean.journal_path = dir_ + "/clean.jsonl";
  (void)run_search(sc, resolved->objective, resolved->axes, clean);
  const std::string reference = slurp(clean.journal_path);

  SearchOptions killed = clean;
  killed.journal_path = dir_ + "/killed.jsonl";
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    (void)run_search(sc, resolved->objective, resolved->axes, killed);
    ::_exit(0);
  }
  // Wait until at least the header and one evaluation are durable,
  // then kill -9 the searching process.
  const serve::ResultsStore store(killed.journal_path);
  for (int i = 0; i < 4000 && store.scan().records.size() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  const SearchResult resumed =
      run_search(sc, resolved->objective, resolved->axes, killed);
  EXPECT_GT(resumed.cache_hits, 0u);
  EXPECT_EQ(slurp(killed.journal_path), reference);
}

TEST_F(SearchTest, JournalOfADifferentSearchIsRejected) {
  SearchOptions opts;
  opts.budget = 4;
  opts.journal_path = dir_ + "/journal.jsonl";
  (void)run_cheap(opts);

  // Same path, different metric: refuse rather than poison the cache.
  auto resolved = cheap_search();
  resolved.objective.metric = "supermajority_recovery_epoch";
  const auto& sc = *builtin_registry().find(resolved.objective.scenario);
  EXPECT_THROW(
      (void)run_search(sc, resolved.objective, resolved.axes, opts),
      std::invalid_argument);
}

TEST_F(SearchTest, BudgetOfOneEvaluatesOnlyTheBaseline) {
  SearchOptions opts;
  opts.budget = 1;
  const SearchResult r = run_cheap(opts);
  EXPECT_EQ(r.evaluations, 1u);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_EQ(r.best_value, r.baseline_value);
  EXPECT_EQ(r.best_params, r.base_params);
}

TEST_F(SearchTest, UnknownMetricThrowsWithAvailableMetrics) {
  auto resolved = cheap_search();
  resolved.objective.metric = "no_such_metric";
  const auto& sc = *builtin_registry().find(resolved.objective.scenario);
  SearchOptions opts;
  opts.budget = 4;
  try {
    (void)run_search(sc, resolved.objective, resolved.axes, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("beta_max"), std::string::npos)
        << e.what();
  }
}

TEST_F(SearchTest, JournalHeaderCarriesTheSearchIdentity) {
  const auto resolved = cheap_search();
  const json::Value identity =
      EvalJournal::identity_json(resolved.objective, resolved.axes);
  EXPECT_EQ(identity.find("kind")->as_string(), "search-journal");
  EXPECT_EQ(identity.find("scenario")->as_string(), "semiactive-sweep");
  EXPECT_EQ(identity.find("metric")->as_string(), "beta_max");
  ASSERT_NE(identity.find("axes"), nullptr);
  ASSERT_NE(identity.find("base"), nullptr);
}

}  // namespace
}  // namespace leak::search
