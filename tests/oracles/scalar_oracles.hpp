// Pre-rollout scalar reference kernels, demoted to test oracles.
//
// Each function here is the verbatim scalar implementation a driver
// shipped before it was converted to the SoA batched kernel layer
// (src/kernel/): one validator / one path at a time, branchy, with the
// exact draw order and floating-point op order the batched kernels are
// required to reproduce bit-for-bit.  The production drivers in src/
// no longer carry these paths — they exist only to be compared
// against, by the bit-identity suites (tests/test_montecarlo_batch.cpp)
// and the per-driver speedup benchmarks (bench/bench_kernel_speedup.cpp).
//
// Do not "fix" or modernize this code: its value is that it does not
// change.  Any intentional change to a driver's numeric contract must
// update the oracle and the committed scenario baselines together.
#pragma once

#include <cstddef>
#include <vector>

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/sim/partition_sim.hpp"

namespace leak::oracle {

/// Scalar Figure 8 Monte Carlo: one path at a time through the branchy
/// per-epoch update.  Ignores cfg.block / cfg.keep_paths — it is the
/// fixed reference, always materializing the per-path matrix.
bouncing::McResult run_bouncing_mc_scalar(
    const bouncing::McConfig& cfg,
    const std::vector<std::size_t>& snapshot_epochs);

/// Scalar bouncing-attack lifetime simulator: per-validator branchy
/// loops and the run-order duration aggregation the batched driver's
/// DurationSummary must match exactly.  Ignores cfg.keep_runs.
bouncing::AttackSimResult run_attack_sim_scalar(
    const bouncing::AttackSimConfig& cfg);

/// Scalar single-population run (one shared RNG stream across the
/// honest cohort, validators updated in index order).
bouncing::PopulationRunResult run_population_bouncing_scalar(
    const bouncing::PopulationRunConfig& cfg);

/// Scalar population ensemble over run_population_bouncing_scalar.
/// Ignores cfg.keep_paths — always materializes the outcome slabs.
bouncing::PopulationEnsembleResult run_population_ensemble_scalar(
    const bouncing::PopulationEnsembleConfig& cfg);

/// Scalar partition Monte Carlo: the pre-fusion per-epoch activity /
/// metrics passes (separate total_active_balance sweep) and the serial
/// trial aggregation.  Ignores cfg.keep_trials.
sim::PartitionTrialsResult run_partition_trials_scalar(
    const sim::PartitionTrialsConfig& cfg);

}  // namespace leak::oracle
