// Verbatim pre-rollout scalar driver implementations.  See the header
// for the contract; the code below is intentionally kept byte-for-byte
// close to the last scalar revision of each driver, so the batched
// kernels always have a fixed reference to be measured against.
#include "tests/oracles/scalar_oracles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/analytic/duty_cycle.hpp"
#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/penalties/spec_config.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak::oracle {

namespace {

using bouncing::AttackSimConfig;
using bouncing::McConfig;
using bouncing::McResult;
using bouncing::PopulationRunConfig;
using sim::OutageWindow;
using sim::PartitionSimConfig;
using sim::PartitionSimResult;
using sim::RecoveryOutcome;
using sim::Strategy;

// --- scalar Figure 8 Monte Carlo ---------------------------------------

/// One path of the Figure 8 dynamics as a pure function of its RNG
/// stream: returns the path's stake at each snapshot epoch (0 once
/// ejected).  All derived statistics are computed at merge time, so a
/// path depends only on (cfg, snapshot grid, rng).
std::vector<double> simulate_path(const McConfig& cfg,
                                  const std::vector<std::size_t>& snaps,
                                  Rng rng) {
  std::vector<double> at_snap;
  at_snap.reserve(snaps.size());
  double stake = cfg.model.initial_stake;
  double score = 0.0;
  bool ejected = false;
  std::size_t next_snap = 0;
  for (std::size_t t = 1; t <= cfg.epochs && next_snap < snaps.size(); ++t) {
    if (!ejected) {
      // Eq 2 penalty with previous score, then Eq 1 update (floored).
      stake -= score * stake / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score = std::max(score - cfg.model.score_active_decrement, 0.0);
      } else {
        score += cfg.model.score_bias;
      }
      if (stake <= cfg.model.ejection_threshold) {
        ejected = true;
        stake = 0.0;
      }
    }
    if (t == snaps[next_snap]) {
      at_snap.push_back(stake);
      ++next_snap;
    }
  }
  return at_snap;
}

void validate_grid(const McConfig& cfg,
                   const std::vector<std::size_t>& snapshot_epochs) {
  if (snapshot_epochs.empty() ||
      !std::is_sorted(snapshot_epochs.begin(), snapshot_epochs.end()) ||
      std::adjacent_find(snapshot_epochs.begin(), snapshot_epochs.end()) !=
          snapshot_epochs.end() ||
      snapshot_epochs.back() > cfg.epochs) {
    throw std::invalid_argument("run_bouncing_mc_scalar: bad snapshot grid");
  }
  if (cfg.branches < 2) {
    throw std::invalid_argument(
        "run_bouncing_mc_scalar: branches must be >= 2");
  }
}

/// The pre-rollout streaming per-snapshot reduction.  Each snapshot's
/// accumulators are fed their paths in ascending path order (the
/// accumulators are order-sensitive in floating point).
class SnapshotAccumulators {
 public:
  SnapshotAccumulators(const McConfig& cfg,
                       const std::vector<std::size_t>& snaps)
      : initial_stake_(cfg.model.initial_stake),
        ejected_(snaps.size(), 0),
        capped_(snaps.size(), 0),
        exceeds_(snaps.size(), 0),
        stats_(snaps.size()),
        median_alive_(snaps.size(), P2Quantile(0.5)) {
    threshold_.resize(snaps.size());
    for (std::size_t k = 0; k < snaps.size(); ++k) {
      threshold_[k] = analytic::multibranch_exceed_threshold(
          cfg.branches, cfg.beta0, static_cast<double>(snaps[k]), cfg.model);
    }
  }

  void add(std::size_t k, double stake) {
    if (stake == 0.0) {
      ++ejected_[k];
    } else {
      median_alive_[k].add(stake);
    }
    if (stake >= initial_stake_) ++capped_[k];
    if (stake < threshold_[k]) ++exceeds_[k];
    stats_[k].add(stake);
  }

  void finalize(std::size_t n_paths, McResult* res) {
    const auto snapshots = stats_.size();
    const double n = static_cast<double>(n_paths);
    res->ejected_fraction.resize(snapshots);
    res->capped_fraction.resize(snapshots);
    res->prob_beta_exceeds.resize(snapshots);
    res->median_alive_estimate.resize(snapshots);
    for (std::size_t k = 0; k < snapshots; ++k) {
      res->ejected_fraction[k] = static_cast<double>(ejected_[k]) / n;
      res->capped_fraction[k] = static_cast<double>(capped_[k]) / n;
      res->prob_beta_exceeds[k] = static_cast<double>(exceeds_[k]) / n;
      res->median_alive_estimate[k] = median_alive_[k].estimate();
    }
    res->stake_stats = std::move(stats_);
  }

 private:
  double initial_stake_;
  std::vector<double> threshold_;
  std::vector<std::size_t> ejected_;
  std::vector<std::size_t> capped_;
  std::vector<std::size_t> exceeds_;
  std::vector<RunningStats> stats_;
  std::vector<P2Quantile> median_alive_;
};

// --- scalar attack lifetime --------------------------------------------

/// Outcome of one attack lifetime, pure in (cfg, rng).
struct RunOutcome {
  std::uint64_t duration = 0;
  /// Epoch when beta first exceeded 1/3; -1 when it never did.
  std::int64_t break_epoch = -1;
};

RunOutcome simulate_attack_run(const AttackSimConfig& cfg, Rng rng) {
  RunOutcome out;
  const std::size_t n = cfg.honest_validators;
  // Honest stake/score from branch A's viewpoint; Byzantine validators
  // are semi-active on A (active every other epoch).
  std::vector<double> stake(n, cfg.model.initial_stake);
  std::vector<double> score(n, 0.0);
  std::vector<std::uint8_t> ejected(n, 0);
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    // Current stake-weighted Byzantine proportion on branch A.
    double honest_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) honest_total += stake[i];
    const double honest_mean = honest_total / static_cast<double>(n);
    const double byz_mass = cfg.beta0 * byz_stake;
    const double denom = byz_mass + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz_mass / denom : 0.0;
    if (beta > 1.0 / 3.0 && !byz_ejected && out.break_epoch < 0) {
      out.break_epoch = static_cast<std::int64_t>(t);
    }

    // Proposer lottery: the attack needs a Byzantine proposer among
    // the first j slots of the epoch.
    const double lottery_beta = cfg.stake_weighted_lottery ? beta : cfg.beta0;
    const double p_continue = 1.0 - std::pow(1.0 - lottery_beta, cfg.j);
    if (byz_ejected || !rng.bernoulli(p_continue)) {
      out.duration = t - 1;
      break;
    }
    out.duration = t;

    // One epoch of Figure 8 dynamics.
    for (std::size_t i = 0; i < n; ++i) {
      if (ejected[i] != 0) continue;
      stake[i] -= score[i] * stake[i] / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score[i] = std::max(score[i] - cfg.model.score_active_decrement, 0.0);
      } else {
        score[i] += cfg.model.score_bias;
      }
      if (stake[i] <= cfg.model.ejection_threshold) {
        ejected[i] = 1;
        stake[i] = 0.0;
      }
    }
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      if (t % 2 == 0) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
  }
  return out;
}

// --- scalar partition Monte Carlo --------------------------------------

constexpr double kGweiPerEth = 1e9;

/// Does the Byzantine stake count toward the active side of the branch's
/// ratio (Eqs 8 and 10 count it; Eq 5 has none)?
bool byzantine_counts_active(Strategy s) {
  return s == Strategy::kSlashable || s == Strategy::kSemiActiveFinalize;
}

void validate(const PartitionSimConfig& cfg) {
  if (cfg.n_validators == 0) {
    throw std::invalid_argument("run_partition_trials_scalar: no validators");
  }
  if (cfg.beta0 < 0.0 || cfg.beta0 >= 1.0 || cfg.p0 < 0.0 || cfg.p0 > 1.0) {
    throw std::invalid_argument("run_partition_trials_scalar: bad proportions");
  }
  if (cfg.branches < 2 || cfg.branches > cfg.n_validators) {
    throw std::invalid_argument("run_partition_trials_scalar: bad branches");
  }
  if (cfg.branches > 2 && cfg.p0 != 0.5) {
    throw std::invalid_argument(
        "run_partition_trials_scalar: p0 only shapes the two-branch split");
  }
  if (!cfg.windows.empty()) {
    if (cfg.windows.size() != cfg.branches - 1 || cfg.heal_epoch != 0 ||
        cfg.heal_stagger != 0) {
      throw std::invalid_argument(
          "run_partition_trials_scalar: bad window schedule");
    }
    for (const sim::BranchWindow& w : cfg.windows) {
      if (w.open_epoch < 1 ||
          (w.heal_epoch != 0 && w.heal_epoch <= w.open_epoch)) {
        throw std::invalid_argument(
            "run_partition_trials_scalar: bad branch window");
      }
    }
  }
  for (const OutageWindow& o : cfg.outages) {
    if (o.span_epochs == 0 || o.cohort <= 0.0 || o.cohort > 1.0) {
      throw std::invalid_argument("run_partition_trials_scalar: bad outage");
    }
  }
}

/// Byzantine validator count implied by the configured proportion.
std::uint32_t byzantine_count(const PartitionSimConfig& cfg) {
  return static_cast<std::uint32_t>(
      std::llround(cfg.beta0 * static_cast<double>(cfg.n_validators)));
}

/// Verbatim pre-fusion core: per-epoch activity via the branchy
/// per-validator switch, metrics via a separate total_active_balance
/// sweep followed by the classification loop.
PartitionSimResult run_partition_core(
    const PartitionSimConfig& cfg, std::uint32_t n_byz,
    const std::vector<std::uint8_t>& branch_of_honest) {
  const auto n = cfg.n_validators;
  const auto n_honest = n - n_byz;
  const auto k = cfg.branches;

  PartitionSimResult res;
  res.branch.resize(k);
  res.n_byzantine = n_byz;
  res.n_honest_per_branch.assign(k, 0);
  for (const std::uint8_t b : branch_of_honest) {
    ++res.n_honest_per_branch[b];
  }
  res.n_honest_branch1 = res.n_honest_per_branch[0];
  res.n_honest_branch2 = k > 1 ? res.n_honest_per_branch[1] : 0;

  std::vector<std::size_t> open_at(k, 1);
  std::vector<std::size_t> heal_at(k, 0);
  if (!cfg.windows.empty()) {
    for (std::uint32_t b = 1; b < k; ++b) {
      open_at[b] = cfg.windows[b - 1].open_epoch;
      heal_at[b] = cfg.windows[b - 1].heal_epoch;
    }
  } else if (cfg.heal_epoch > 0) {
    for (std::uint32_t b = 1; b < k; ++b) {
      heal_at[b] = cfg.heal_epoch +
                   static_cast<std::size_t>(b - 1) * cfg.heal_stagger;
    }
  }
  bool healing = false;
  for (std::uint32_t b = 1; b < k; ++b) healing = healing || heal_at[b] > 0;
  std::vector<std::uint8_t> healed(k, 0);
  std::vector<std::uint8_t> opened(k, 0);
  opened[0] = 1;  // the canonical branch is always open

  penalties::SpecConfig spec = cfg.spec;
  if (healing) spec.inactivity_penalty_tracks_score = true;
  std::vector<chain::ValidatorRegistry> registry(
      k, chain::ValidatorRegistry{n});
  std::vector<penalties::InactivityTracker> tracker;
  tracker.reserve(k);
  for (std::uint32_t b = 0; b < k; ++b) {
    tracker.emplace_back(registry[b], spec);
  }

  const auto is_byz = [&](std::uint32_t i) { return i >= n_honest; };

  bool cascading = !cfg.outages.empty();
  for (std::uint32_t b = 1; b < k; ++b) {
    cascading = cascading || open_at[b] > 1;
  }

  std::vector<std::uint8_t> leak_over(k, 0);
  std::int64_t leak_end_epoch = -1;
  std::int64_t sm_streak_start = -1;

  std::vector<RecoveryOutcome> pending(k);
  std::vector<std::uint32_t> representative(k, n);  // n = no member
  for (std::uint32_t i = 0; i < n_honest; ++i) {
    const std::uint8_t b = branch_of_honest[i];
    if (representative[b] == n) representative[b] = i;
  }
  for (std::uint32_t b = 0; b < k; ++b) {
    pending[b].from_branch = b;
    pending[b].class_size = res.n_honest_per_branch[b];
  }
  bool recovery_totals_recorded = false;
  Gwei recovery_total_start{};

  std::vector<std::uint8_t> active(n, 0);

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    const Epoch epoch{t};
    for (std::uint32_t b = 1; b < k; ++b) {
      if (opened[b] == 0 && t >= open_at[b]) {
        opened[b] = 1;
        if (t > 1) registry[b] = registry[0];
      }
    }
    if (healing) {
      for (std::uint32_t b = 1; b < k; ++b) {
        if (heal_at[b] == 0) continue;
        if (healed[b] == 0 && t >= heal_at[b]) {
          healed[b] = 1;
          res.branch[b].healed_epoch = static_cast<std::int64_t>(t);
          pending[b].healed_epoch = static_cast<std::int64_t>(t);
          if (std::all_of(healed.begin() + 1, healed.end(),
                          [](std::uint8_t h) { return h != 0; })) {
            res.heal_complete_epoch = static_cast<std::int64_t>(t);
          }
        }
      }
    }
    const bool all_healed = healing && res.heal_complete_epoch >= 0;

    std::uint32_t outage_cut = 0;
    for (const OutageWindow& o : cfg.outages) {
      if (t >= o.from_epoch && t < o.from_epoch + o.span_epochs) {
        outage_cut = std::max(
            outage_cut,
            static_cast<std::uint32_t>(std::llround(
                o.cohort * static_cast<double>(n_honest))));
      }
    }

    for (std::uint32_t b = 0; b < k; ++b) {
      if (opened[b] == 0) continue;
      if (leak_over[b] != 0) continue;
      if (b > 0 && healed[b] != 0) continue;
      if (b == 0 && res.recovery_complete_epoch >= 0) continue;
      auto& reg = registry[b];
      auto& out = res.branch[b];
      const bool recovering = b == 0 && leak_end_epoch >= 0;

      if (recovering) {
        for (std::uint32_t c = 1; c < k; ++c) {
          auto& rec = pending[c];
          if (rec.return_epoch >= 0 || rec.ejected_before_return) continue;
          if (healed[c] == 0 || representative[c] == n) continue;
          const ValidatorIndex v{representative[c]};
          if (!reg.is_active(v, epoch)) {
            rec.ejected_before_return = true;
            continue;
          }
          rec.return_epoch = static_cast<std::int64_t>(t);
          rec.score_at_return =
              static_cast<double>(reg.at(v).inactivity_score);
          rec.stake_at_return_eth =
              static_cast<double>(reg.at(v).balance.value()) / kGweiPerEth;
        }
        if (!recovery_totals_recorded) {
          recovery_totals_recorded = true;
          for (std::uint32_t i = 0; i < n; ++i) {
            recovery_total_start += reg.at(ValidatorIndex{i}).balance;
          }
        }
      }

      // Activity on branch b this epoch: the pre-rollout per-validator
      // branchy switch.
      for (std::uint32_t i = 0; i < n; ++i) {
        if (is_byz(i)) {
          if (recovering) {
            active[i] = true;  // the partition is over; everyone attests
            continue;
          }
          switch (cfg.strategy) {
            case Strategy::kNone:
              active[i] = false;
              break;
            case Strategy::kSlashable:
              active[i] = true;
              break;
            case Strategy::kSemiActiveFinalize:
            case Strategy::kSemiActiveOverthrow:
              active[i] = (t % k == b);
              break;
          }
        } else if (i < outage_cut) {
          active[i] = false;  // scheduled outage: sits out everywhere
        } else {
          const std::uint8_t bi = branch_of_honest[i];
          active[i] = bi == b ||
                      (b == 0 && (healed[bi] != 0 || opened[bi] == 0));
        }
      }

      const Epoch last_finalized =
          recovering ? Epoch{t - 1} : Epoch{0};
      const auto report =
          tracker[b].process_epoch(epoch, last_finalized, active);
      if (out.honest_ejection_epoch < 0) {
        for (const ValidatorIndex v : report.ejected) {
          if (!is_byz(v.value())) {
            out.honest_ejection_epoch = static_cast<std::int64_t>(t);
            break;
          }
        }
      }

      // Branch metrics: separate total sweep, then classification — the
      // op order the fused production pass must reproduce exactly.
      const Gwei total = reg.total_active_balance(epoch);
      Gwei active_side{};
      Gwei byz_side{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const ValidatorIndex v{i};
        if (!reg.is_active(v, epoch)) continue;
        const Gwei bal = reg.at(v).balance;
        if (is_byz(i)) {
          byz_side += bal;
          if (recovering || byzantine_counts_active(cfg.strategy)) {
            active_side += bal;
          }
        } else if (i >= outage_cut) {
          const std::uint8_t bi = branch_of_honest[i];
          if (bi == b || (b == 0 && (healed[bi] != 0 || opened[bi] == 0))) {
            active_side += bal;
          }
        }
      }
      const double beta =
          total.value() > 0
              ? static_cast<double>(byz_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      const double ratio =
          total.value() > 0
              ? static_cast<double>(active_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      if (beta > out.beta_peak) {
        out.beta_peak = beta;
        out.beta_peak_epoch = static_cast<std::int64_t>(t);
      }
      if (t % cfg.trajectory_stride == 0) {
        out.ratio_trajectory.push_back(ratio);
        out.beta_trajectory.push_back(beta);
      }

      const bool supermajority =
          3 * static_cast<__uint128_t>(active_side.value()) >
          2 * static_cast<__uint128_t>(total.value());
      if (supermajority && out.supermajority_epoch < 0) {
        out.supermajority_epoch = static_cast<std::int64_t>(t);
      }
      const bool wants_finalize =
          cfg.strategy != Strategy::kSemiActiveOverthrow ||
          (b == 0 && all_healed);
      if (b == 0 && cascading) {
        if (supermajority) {
          if (sm_streak_start < 0) {
            sm_streak_start = static_cast<std::int64_t>(t);
          }
        } else {
          sm_streak_start = -1;
          if (leak_end_epoch >= 0) {
            leak_end_epoch = -1;
            recovery_totals_recorded = false;
            recovery_total_start = Gwei{};
          }
        }
        if (wants_finalize && leak_end_epoch < 0 && sm_streak_start >= 0 &&
            t > static_cast<std::size_t>(sm_streak_start)) {
          if (out.finalization_epoch < 0) {
            out.finalization_epoch = static_cast<std::int64_t>(t);
          }
          leak_end_epoch = static_cast<std::int64_t>(t);
        }
      } else if (wants_finalize && out.supermajority_epoch >= 0 &&
                 out.finalization_epoch < 0 &&
                 t > static_cast<std::size_t>(out.supermajority_epoch)) {
        out.finalization_epoch = static_cast<std::int64_t>(t);
        if (b == 0 && healing) {
          leak_end_epoch = static_cast<std::int64_t>(t);
        } else {
          leak_over[b] = 1;
        }
      }

      if (recovering) {
        for (std::uint32_t c = 1; c < k; ++c) {
          auto& rec = pending[c];
          if (rec.return_epoch < 0 || rec.recovery_epochs >= 0) continue;
          const ValidatorIndex v{representative[c]};
          const bool done = !reg.is_active(v, Epoch{t + 1}) ||
                            reg.at(v).inactivity_score == 0;
          if (done) {
            rec.recovery_epochs =
                static_cast<std::int64_t>(t) - rec.return_epoch + 1;
            rec.residual_loss_eth =
                rec.stake_at_return_eth -
                static_cast<double>(reg.at(v).balance.value()) / kGweiPerEth;
          }
        }
        if (all_healed && res.recovery_complete_epoch < 0) {
          bool all_zero = true;
          for (std::uint32_t i = 0; i < n && all_zero; ++i) {
            const ValidatorIndex v{i};
            if (reg.is_active(v, Epoch{t + 1}) &&
                reg.at(v).inactivity_score > 0) {
              all_zero = false;
            }
          }
          if (all_zero) {
            res.recovery_complete_epoch = static_cast<std::int64_t>(t);
          }
        }
      }
    }

    bool all_done = true;
    for (std::uint32_t b = 0; b < k; ++b) {
      if (b == 0) {
        const bool done0 = healing ? res.recovery_complete_epoch >= 0
                                   : leak_over[0] != 0;
        all_done = all_done && done0;
      } else {
        all_done = all_done && (leak_over[b] != 0 || healed[b] != 0);
      }
    }
    if (all_done) break;
  }

  if (recovery_totals_recorded) {
    Gwei now{};
    for (std::uint32_t i = 0; i < n; ++i) {
      now += registry[0].at(ValidatorIndex{i}).balance;
    }
    res.residual_loss_total_eth =
        static_cast<double>(recovery_total_start.value() - now.value()) /
        kGweiPerEth;
  }
  for (std::uint32_t b = 1; b < k; ++b) {
    if (pending[b].healed_epoch >= 0 || pending[b].ejected_before_return) {
      res.recovery.push_back(pending[b]);
    }
  }

  std::vector<std::int64_t> finals;
  for (const auto& br : res.branch) {
    if (br.finalization_epoch >= 0) finals.push_back(br.finalization_epoch);
  }
  if (finals.size() >= 2) {
    std::sort(finals.begin(), finals.end());
    res.conflicting_finalization_epoch = finals[1];
  }
  res.beta_exceeded_third_both =
      std::all_of(res.branch.begin(), res.branch.end(),
                  [](const sim::BranchOutcome& br) {
                    return br.beta_peak > 1.0 / 3.0;
                  });
  return res;
}

}  // namespace

McResult run_bouncing_mc_scalar(
    const McConfig& cfg, const std::vector<std::size_t>& snapshot_epochs) {
  validate_grid(cfg, snapshot_epochs);
  McResult res;
  res.epochs = snapshot_epochs;
  res.stakes.assign(snapshot_epochs.size(), {});
  for (auto& v : res.stakes) v.reserve(cfg.paths);

  // Fan the paths across the pool; each draws from its own counter
  // stream, so the result is independent of the thread count.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  const auto per_path = pool.run(cfg.paths, [&](std::size_t path) {
    return simulate_path(cfg, snapshot_epochs, seeder.stream(path));
  });

  // Merge in path order.
  for (const auto& at_snap : per_path) {
    for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
      res.stakes[k].push_back(at_snap[k]);
    }
  }
  SnapshotAccumulators acc(cfg, snapshot_epochs);
  for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
    for (std::size_t p = 0; p < cfg.paths; ++p) {
      acc.add(k, res.stakes[k][p]);
    }
  }
  acc.finalize(cfg.paths, &res);
  return res;
}

bouncing::AttackSimResult run_attack_sim_scalar(const AttackSimConfig& cfg) {
  if (cfg.runs == 0 || cfg.honest_validators == 0) {
    throw std::invalid_argument("run_attack_sim_scalar: empty configuration");
  }
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  bouncing::AttackSimResult res;
  res.durations.assign(cfg.runs, 0);
  std::vector<std::int64_t> break_epochs(cfg.runs, -1);
  pool.run_blocks(cfg.runs, runner::resolve_block(cfg.block),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t run = begin; run < end; ++run) {
                      const auto out =
                          simulate_attack_run(cfg, seeder.stream(run));
                      res.durations[run] = out.duration;
                      break_epochs[run] = out.break_epoch;
                    }
                  });

  // Compact the successful runs in run order.
  std::size_t broken = 0;
  for (const std::int64_t epoch : break_epochs) {
    if (epoch >= 0) {
      res.break_epochs.push_back(static_cast<std::uint64_t>(epoch));
      ++broken;
    }
  }

  res.prob_threshold_broken =
      static_cast<double>(broken) / static_cast<double>(cfg.runs);
  std::vector<double> d(res.durations.begin(), res.durations.end());
  RunningStats st;
  for (double x : d) st.add(x);
  res.mean_duration = st.mean();
  res.median_duration = quantile(d, 0.5);
  res.p99_duration = quantile(d, 0.99);
  return res;
}

bouncing::PopulationRunResult run_population_bouncing_scalar(
    const PopulationRunConfig& cfg) {
  bouncing::PopulationRunResult res;
  Rng rng(cfg.seed);
  const std::uint32_t n = cfg.honest_validators;
  std::vector<double> stake(n, cfg.model.initial_stake);
  std::vector<double> score(n, 0.0);
  std::vector<std::uint8_t> ejected(n, 0);

  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.epochs; ++t) {
    // Honest validators: iid branch assignment (Figure 8).
    for (std::uint32_t i = 0; i < n; ++i) {
      if (ejected[i] != 0) continue;
      stake[i] -= score[i] * stake[i] / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score[i] = std::max(score[i] - cfg.model.score_active_decrement, 0.0);
      } else {
        score[i] += cfg.model.score_bias;
      }
      if (stake[i] <= cfg.model.ejection_threshold) {
        ejected[i] = 1;
        stake[i] = 0.0;
      }
    }
    // Byzantine: semi-active from branch A's viewpoint.
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      const bool active = (t % 2 == 0);
      if (active) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
    // Branch-level Byzantine proportion (Eq 23 with population averages).
    double honest_total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) honest_total += stake[i];
    const double honest_mean = honest_total / static_cast<double>(n);
    const double byz = cfg.beta0 * byz_stake;
    const double denom = byz + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz / denom : 0.0;
    if (t % res.stride == 0) res.beta_trajectory.push_back(beta);
    if (res.first_exceed_epoch < 0 && beta > 1.0 / 3.0 && !byz_ejected) {
      res.first_exceed_epoch = static_cast<std::int64_t>(t);
    }
  }
  return res;
}

bouncing::PopulationEnsembleResult run_population_ensemble_scalar(
    const bouncing::PopulationEnsembleConfig& cfg) {
  if (cfg.paths == 0) {
    throw std::invalid_argument("run_population_ensemble_scalar: no paths");
  }
  const StreamSeeder seeder(cfg.base.seed);
  const runner::TrialRunner pool(cfg.threads);

  bouncing::PopulationEnsembleResult res;
  res.first_exceed_epochs.assign(cfg.paths, -1);
  std::vector<double> final_beta(cfg.paths, 0.0);
  pool.run_blocks(cfg.paths, runner::resolve_block(cfg.block),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t path = begin; path < end; ++path) {
                      PopulationRunConfig per_path = cfg.base;
                      per_path.seed = seeder.seed_for(path);
                      const auto r = run_population_bouncing_scalar(per_path);
                      res.first_exceed_epochs[path] = r.first_exceed_epoch;
                      if (!r.beta_trajectory.empty()) {
                        final_beta[path] = r.beta_trajectory.back();
                      }
                    }
                  });

  // Aggregate in path order.
  std::size_t exceeded = 0;
  double beta_sum = 0.0;
  for (std::size_t path = 0; path < cfg.paths; ++path) {
    if (res.first_exceed_epochs[path] >= 0) ++exceeded;
    beta_sum += final_beta[path];
  }
  res.exceed_fraction =
      static_cast<double>(exceeded) / static_cast<double>(cfg.paths);
  res.mean_final_beta = beta_sum / static_cast<double>(cfg.paths);
  return res;
}

sim::PartitionTrialsResult run_partition_trials_scalar(
    const sim::PartitionTrialsConfig& cfg) {
  validate(cfg.base);
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_partition_trials_scalar: no trials");
  }
  const auto n_byz = byzantine_count(cfg.base);
  const auto n_honest = cfg.base.n_validators - n_byz;
  const auto k = cfg.base.branches;

  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  sim::PartitionTrialsResult res;
  res.trials = cfg.trials;
  res.conflict_epochs.assign(cfg.trials, -1);
  res.beta_peaks.assign(cfg.trials, 0.0);
  res.residual_losses_eth.assign(cfg.trials, 0.0);
  res.recovery_epochs.assign(cfg.trials, -1);
  std::vector<std::uint8_t> exceeded_both(cfg.trials, 0);
  pool.run_blocks(
      cfg.trials, runner::resolve_block(cfg.block),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint8_t> branch_of_honest(n_honest);
        for (std::size_t trial = begin; trial < end; ++trial) {
          Rng rng = seeder.stream(trial);
          for (std::uint32_t i = 0; i < n_honest; ++i) {
            // Two branches keep the legacy bernoulli(p0) draw exactly;
            // k > 2 assigns uniformly over the branches.
            branch_of_honest[i] =
                k == 2 ? (rng.bernoulli(cfg.base.p0) ? 0 : 1)
                       : static_cast<std::uint8_t>(rng.uniform_index(k));
          }
          const auto r = run_partition_core(cfg.base, n_byz, branch_of_honest);
          res.conflict_epochs[trial] = r.conflicting_finalization_epoch;
          double peak = 0.0;
          for (const auto& br : r.branch) peak = std::max(peak, br.beta_peak);
          res.beta_peaks[trial] = peak;
          exceeded_both[trial] = r.beta_exceeded_third_both ? 1 : 0;
          res.residual_losses_eth[trial] = r.residual_loss_total_eth;
          res.recovery_epochs[trial] = r.recovery_complete_epoch;
        }
      });

  std::size_t conflicting = 0;
  std::size_t exceeded = 0;
  std::size_t recovered = 0;
  double conflict_epoch_sum = 0.0;
  double residual_sum = 0.0;
  double recovery_epoch_sum = 0.0;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    if (res.conflict_epochs[trial] >= 0) {
      ++conflicting;
      conflict_epoch_sum += static_cast<double>(res.conflict_epochs[trial]);
    }
    if (exceeded_both[trial] != 0) ++exceeded;
    residual_sum += res.residual_losses_eth[trial];
    if (res.recovery_epochs[trial] >= 0) {
      ++recovered;
      recovery_epoch_sum += static_cast<double>(res.recovery_epochs[trial]);
    }
  }
  const double n = static_cast<double>(cfg.trials);
  res.conflicting_fraction = static_cast<double>(conflicting) / n;
  res.beta_exceeded_fraction = static_cast<double>(exceeded) / n;
  res.mean_conflict_epoch =
      conflicting > 0 ? conflict_epoch_sum / static_cast<double>(conflicting)
                      : 0.0;
  res.recovered_fraction = static_cast<double>(recovered) / n;
  res.mean_residual_loss_eth = residual_sum / n;
  res.mean_recovery_epoch =
      recovered > 0 ? recovery_epoch_sum / static_cast<double>(recovered)
                    : 0.0;
  return res;
}

}  // namespace leak::oracle
