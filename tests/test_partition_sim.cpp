// Tests for the epoch-granular partition simulator against the paper's
// scenario outcomes and the closed-form models (protocol arithmetic vs
// continuous analysis).
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/solvers.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"

namespace leak::sim {
namespace {

// The protocol-side simulator uses the stated 16.75 ETH threshold; the
// matching analytic reference is AnalyticConfig::stated().
const analytic::AnalyticConfig kStated = analytic::AnalyticConfig::stated();

PartitionSimConfig base(Strategy s, double beta0, double p0 = 0.5) {
  PartitionSimConfig cfg;
  // 1000 validators make every test proportion exact (e.g. beta0 = 0.33
  // -> 330 Byzantine, 335/335 honest split); near beta0 = 1/3 the
  // finalization time is extremely sensitive to rounding of the split.
  cfg.n_validators = 1000;
  cfg.beta0 = beta0;
  cfg.p0 = p0;
  cfg.strategy = s;
  cfg.max_epochs = 6000;
  return cfg;
}

TEST(Scenario51, HonestOnlyConflictingFinalizationAtEjection) {
  const auto r = run_partition_sim(base(Strategy::kNone, 0.0));
  // Both branches regain 2/3 only through the ejection of the inactive
  // class; the sim's integer arithmetic lands within epochs of the
  // closed form (4661 for the 16.75 threshold), +1 to finalize.
  const double expect =
      analytic::ejection_epoch(analytic::Behavior::kInactive, kStated);
  ASSERT_GT(r.conflicting_finalization_epoch, 0);
  EXPECT_NEAR(static_cast<double>(r.conflicting_finalization_epoch),
              expect + 1.0, 12.0);
  EXPECT_EQ(r.branch[0].supermajority_epoch, r.branch[1].supermajority_epoch);
}

TEST(Scenario51, UnevenSplitFinalizesFasterOnBiggerBranch) {
  const auto r = run_partition_sim(base(Strategy::kNone, 0.0, 0.6));
  // Branch 1 (p0 = 0.6) crosses at ~3107; branch 2 (0.4) only at the
  // ejection wave.
  EXPECT_NEAR(static_cast<double>(r.branch[0].supermajority_epoch), 3107.0,
              15.0);
  EXPECT_GT(r.branch[1].supermajority_epoch, 4500);
  EXPECT_EQ(r.conflicting_finalization_epoch,
            r.branch[1].finalization_epoch);
}

TEST(Scenario521, SlashableByzantineSpeedsConflict) {
  const auto r = run_partition_sim(base(Strategy::kSlashable, 0.2));
  const double expect =
      analytic::time_to_supermajority_slashing(0.5, 0.2, kStated);
  ASSERT_GT(r.conflicting_finalization_epoch, 0);
  EXPECT_NEAR(static_cast<double>(r.branch[0].supermajority_epoch), expect,
              expect * 0.01);
  // Much faster than honest-only.
  const auto honest = run_partition_sim(base(Strategy::kNone, 0.0));
  EXPECT_LT(r.conflicting_finalization_epoch,
            honest.conflicting_finalization_epoch);
}

TEST(Scenario521, Beta033TenTimesFaster) {
  const auto r = run_partition_sim(base(Strategy::kSlashable, 0.33));
  ASSERT_GT(r.conflicting_finalization_epoch, 0);
  // Paper Table 2: ~502 epochs (sim arithmetic lands within ~2%).
  EXPECT_NEAR(static_cast<double>(r.conflicting_finalization_epoch), 503.0,
              15.0);
}

TEST(Scenario522, SemiActiveSlowerThanSlashableButFast) {
  const auto slash = run_partition_sim(base(Strategy::kSlashable, 0.33));
  const auto semi =
      run_partition_sim(base(Strategy::kSemiActiveFinalize, 0.33));
  ASSERT_GT(semi.conflicting_finalization_epoch, 0);
  EXPECT_GT(semi.conflicting_finalization_epoch,
            slash.conflicting_finalization_epoch);
  // Paper Table 3: ~556 epochs.
  EXPECT_NEAR(static_cast<double>(semi.conflicting_finalization_epoch),
              557.0, 20.0);
}

TEST(Scenario522, SymmetricBranchesFinalizeTogether) {
  const auto r = run_partition_sim(base(Strategy::kSemiActiveFinalize, 0.2));
  // p0 = 0.5: the two branch outcomes are mirror images.
  EXPECT_NEAR(static_cast<double>(r.branch[0].supermajority_epoch),
              static_cast<double>(r.branch[1].supermajority_epoch), 2.0);
}

TEST(Scenario523, OverthrowExceedsThirdOnBothBranches) {
  auto cfg = base(Strategy::kSemiActiveOverthrow, 0.3);
  cfg.max_epochs = 5200;  // past the honest ejection wave
  const auto r = run_partition_sim(cfg);
  // beta0 = 0.3 > 0.2421: the Byzantine proportion must exceed 1/3 on
  // both branches (Figure 7), peaking at the honest ejection.
  EXPECT_TRUE(r.beta_exceeded_third_both);
  EXPECT_GT(r.branch[0].beta_peak, 1.0 / 3.0);
  EXPECT_GT(r.branch[1].beta_peak, 1.0 / 3.0);
  // And no finalization was performed (they withhold it).
  EXPECT_EQ(r.branch[0].finalization_epoch, -1);
  // Peak occurs at/after the honest-inactive ejection.
  ASSERT_GT(r.branch[0].honest_ejection_epoch, 0);
  EXPECT_GE(r.branch[0].beta_peak_epoch, r.branch[0].honest_ejection_epoch);
}

TEST(Scenario523, BelowBoundStaysUnderThird) {
  auto cfg = base(Strategy::kSemiActiveOverthrow, 0.20);
  cfg.max_epochs = 5200;
  const auto r = run_partition_sim(cfg);
  // beta0 = 0.20 < 0.2421: never exceeds 1/3 on either branch.
  EXPECT_FALSE(r.beta_exceeded_third_both);
  EXPECT_LT(r.branch[0].beta_peak, 1.0 / 3.0);
}

TEST(Scenario523, BoundaryMatchesFig7Bound) {
  // Bracket the Figure 7 bound (0.2421 for the calibrated threshold;
  // slightly different for 16.75 — compute it from the stated config).
  const double bound = analytic::beta0_lower_bound(0.5, kStated);
  for (const double delta : {-0.02, 0.02}) {
    auto cfg = base(Strategy::kSemiActiveOverthrow, bound + delta);
    cfg.max_epochs = 5200;
    cfg.n_validators = 1000;
    const auto r = run_partition_sim(cfg);
    EXPECT_EQ(r.beta_exceeded_third_both, delta > 0)
        << "beta0=" << bound + delta;
  }
}

TEST(Mechanics, BranchViewsDivergeIndependently) {
  const auto r = run_partition_sim(base(Strategy::kNone, 0.0, 0.55));
  // Branch 1 (p0 = 0.55 active) regains 2/3 before the ejection wave and
  // finalizes with no honest ejection; branch 2 (0.45) only recovers by
  // ejecting the inactive class -- the two views diverge.
  EXPECT_EQ(r.branch[0].honest_ejection_epoch, -1);
  ASSERT_GT(r.branch[1].honest_ejection_epoch, 0);
  EXPECT_GT(r.branch[1].supermajority_epoch,
            r.branch[0].supermajority_epoch);
}

TEST(Mechanics, RatioTrajectoryMonotoneUntilFinalization) {
  const auto r = run_partition_sim(base(Strategy::kNone, 0.0));
  const auto& traj = r.branch[0].ratio_trajectory;
  ASSERT_GT(traj.size(), 10u);
  for (std::size_t i = 1; i < traj.size(); ++i) {
    EXPECT_GE(traj[i], traj[i - 1] - 1e-9);
  }
}

TEST(Mechanics, CountsFollowProportions) {
  auto cfg = base(Strategy::kSlashable, 0.25, 0.4);
  cfg.n_validators = 200;
  cfg.max_epochs = 10;
  const auto r = run_partition_sim(cfg);
  EXPECT_EQ(r.n_byzantine, 50u);
  EXPECT_EQ(r.n_honest_branch1, 60u);
  EXPECT_EQ(r.n_honest_branch2, 90u);
}

TEST(Mechanics, InvalidConfigThrows) {
  PartitionSimConfig cfg;
  cfg.n_validators = 0;
  EXPECT_THROW(run_partition_sim(cfg), std::invalid_argument);
  cfg.n_validators = 10;
  cfg.beta0 = 1.5;
  EXPECT_THROW(run_partition_sim(cfg), std::invalid_argument);
}

TEST(Mechanics, BetaTrajectoryPeaksThenRecorded) {
  auto cfg = base(Strategy::kSemiActiveOverthrow, 0.33);
  cfg.max_epochs = 5000;
  const auto r = run_partition_sim(cfg);
  double max_seen = 0.0;
  for (double b : r.branch[0].beta_trajectory) max_seen = std::max(max_seen, b);
  EXPECT_NEAR(r.branch[0].beta_peak, max_seen, 0.02);
  EXPECT_GE(r.branch[0].beta_peak + 1e-12, max_seen);
}

TEST(PartitionTrials, RandomSplitsReachScenario51Outcome) {
  // With no Byzantine stake and p0 = 0.5, every realised honest split
  // still leaks to conflicting finalization; the epoch varies with the
  // split's imbalance but stays within the horizon.
  PartitionTrialsConfig cfg;
  cfg.base = base(Strategy::kNone, 0.0);
  cfg.base.n_validators = 200;
  cfg.base.trajectory_stride = cfg.base.max_epochs;
  cfg.trials = env::scaled_count(16);
  const auto r = run_partition_trials(cfg);
  EXPECT_EQ(r.trials, cfg.trials);
  EXPECT_EQ(r.conflict_epochs.size(), cfg.trials);
  EXPECT_DOUBLE_EQ(r.conflicting_fraction, 1.0);
  EXPECT_GT(r.mean_conflict_epoch, 0.0);
  EXPECT_LE(r.mean_conflict_epoch, 6000.0);
}

TEST(PartitionTrials, InvalidConfigThrows) {
  PartitionTrialsConfig cfg;
  cfg.trials = 0;
  EXPECT_THROW(run_partition_trials(cfg), std::invalid_argument);
  cfg.trials = 4;
  cfg.base.n_validators = 0;
  EXPECT_THROW(run_partition_trials(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace leak::sim
