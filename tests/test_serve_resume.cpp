// Crash/recovery tests for the sweep service — the acceptance
// criterion of the serve subsystem: a job kill -9'd mid-sweep and
// resumed produces a merged artifact bit-identical (canonical form) to
// an uninterrupted run, a completed job re-runs zero cells, an
// interrupted budget run picks up exactly where it stopped, and a
// worker that dies mid-cell is respawned and its cell re-run.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "src/faults/schedule.hpp"
#include "src/scenario/registry.hpp"
#include "src/scenario/sweep.hpp"
#include "src/serve/job.hpp"
#include "src/serve/service.hpp"
#include "src/serve/store.hpp"
#include "src/serve/worker.hpp"
#include "src/support/env.hpp"

namespace leak::serve {
namespace {

using scenario::builtin_registry;

class ServeResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "serve_resume_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);  // stale state from prior runs
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// A 6-cell bouncing-mc job (paths respects LEAK_TEST_PATH_SCALE
  /// like every other acceptance test).  The kill -9 test passes a
  /// large `base_paths` so each cell runs long enough for the kill to
  /// land mid-sweep; the scheduling-only tests keep it small.
  [[nodiscard]] JobSpec make_job(std::size_t base_paths = 256) const {
    const auto& sc = *builtin_registry().find("bouncing-mc");
    JobSpec job;
    job.scenario = "bouncing-mc";
    job.base = sc.spec().defaults();
    job.base.set("paths",
                 static_cast<std::int64_t>(env::scaled_count(base_paths)));
    job.base.set("epochs", std::int64_t{1500});
    scenario::SweepAxis beta_axis, p0_axis;
    EXPECT_FALSE(scenario::parse_sweep_axis(sc.spec(), "beta0=0.3,0.33,0.35",
                                            &beta_axis)
                     .has_value());
    EXPECT_FALSE(
        scenario::parse_sweep_axis(sc.spec(), "p0=0.4,0.5", &p0_axis)
            .has_value());
    job.axes = {beta_axis, p0_axis};
    job.config.workers = 2;
    return job;
  }

  /// Submit + run the job to completion in `subdir`, return the
  /// canonical merged artifact's exact serialization.
  [[nodiscard]] std::string clean_merged_dump(const std::string& subdir,
                                              std::size_t base_paths = 256) {
    JobService service(builtin_registry(), dir_ + "/" + subdir);
    std::string error;
    const auto id = service.submit(make_job(base_paths), &error);
    EXPECT_TRUE(id.has_value()) << error;
    RunOptions opts;
    opts.backoff_ms = 0;
    const auto stats = service.run(*id, opts, &error);
    EXPECT_TRUE(stats.has_value()) << error;
    EXPECT_TRUE(stats->completed);
    const auto merged = service.merged(*id, /*canonical=*/true, &error);
    EXPECT_TRUE(merged.has_value()) << error;
    return merged->dump(2);
  }

  std::string dir_;
};

// The headline acceptance test: SIGKILL the serving process mid-sweep,
// resume in a fresh service, and require the canonical merged artifact
// to be byte-identical to an uninterrupted run's.
TEST_F(ServeResumeTest, Sigkilled9MidSweepResumesBitIdentically) {
  // ~70-700 ms per cell depending on LEAK_TEST_PATH_SCALE: the kill
  // below (sent as soon as the first record is durable) reliably
  // lands with most of the sweep still missing.
  constexpr std::size_t kKillPaths = 40000;
  const std::string reference = clean_merged_dump("clean", kKillPaths);

  JobService service(builtin_registry(), dir_ + "/killed");
  std::string error;
  const auto id = service.submit(make_job(kKillPaths), &error);
  ASSERT_TRUE(id.has_value()) << error;

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Serving process: run the job; the parent SIGKILLs us mid-sweep.
    JobService child_service(builtin_registry(), dir_ + "/killed");
    RunOptions opts;
    opts.backoff_ms = 0;
    std::string child_error;
    (void)child_service.run(*id, opts, &child_error);
    ::_exit(0);
  }
  // Wait for at least one durable record, then kill -9 the service.
  const ResultsStore store(service.job_dir(*id) + "/results.jsonl");
  for (int i = 0; i < 4000 && store.scan().records.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  // Resume in-process: only the missing cells run, and the merged
  // artifact is canonically byte-identical to the clean run's.
  RunOptions opts;
  opts.backoff_ms = 0;
  const auto stats = service.run(*id, opts, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->already_done + stats->executed, stats->total_cells);
  // The kill really landed mid-sweep: some cells survived in the
  // store, some had to be re-run.
  EXPECT_GT(stats->already_done, 0u);
  EXPECT_GT(stats->executed, 0u);
  const auto merged = service.merged(*id, /*canonical=*/true, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->dump(2), reference);
}

// The fault-schedule variant of the headline test: a job whose cells
// carry an inline `faults` schedule (a cascading staggered-open arc)
// must survive kill -9 and resume bit-identically — the schedule
// travels intact through the manifest, the worker cells and the
// resume fingerprint.
TEST_F(ServeResumeTest, FaultScheduleJobSigkilledResumesBitIdentically) {
  const auto& sc = *builtin_registry().find("cascading-partitions");
  JobSpec job;
  job.scenario = "cascading-partitions";
  job.base = sc.spec().defaults();
  job.base.set("n_validators", std::int64_t{120});
  job.base.set("max_epochs", std::int64_t{4000});
  job.base.set("paths",
               static_cast<std::int64_t>(env::scaled_count(16)));
  job.base.set("faults", faults::FaultSchedule::staggered_partition(
                             3, 100, 800, 200)
                             .dump());
  scenario::SweepAxis seed_axis, beta_axis;
  ASSERT_FALSE(
      scenario::parse_sweep_axis(sc.spec(), "seed=1,2,3", &seed_axis)
          .has_value());
  ASSERT_FALSE(
      scenario::parse_sweep_axis(sc.spec(), "beta0=0.0,0.05", &beta_axis)
          .has_value());
  job.axes = {seed_axis, beta_axis};
  job.config.workers = 2;

  const auto run_clean = [&](const std::string& subdir) -> std::string {
    JobService service(builtin_registry(), dir_ + "/" + subdir);
    std::string error;
    const auto id = service.submit(job, &error);
    EXPECT_TRUE(id.has_value()) << error;
    RunOptions opts;
    opts.backoff_ms = 0;
    const auto stats = service.run(*id, opts, &error);
    EXPECT_TRUE(stats.has_value()) << error;
    EXPECT_TRUE(stats->completed);
    const auto merged = service.merged(*id, /*canonical=*/true, &error);
    EXPECT_TRUE(merged.has_value()) << error;
    return merged->dump(2);
  };
  const std::string reference = run_clean("clean");

  JobService service(builtin_registry(), dir_ + "/killed");
  std::string error;
  const auto id = service.submit(job, &error);
  ASSERT_TRUE(id.has_value()) << error;

  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    JobService child_service(builtin_registry(), dir_ + "/killed");
    RunOptions opts;
    opts.backoff_ms = 0;
    std::string child_error;
    (void)child_service.run(*id, opts, &child_error);
    ::_exit(0);
  }
  const ResultsStore store(service.job_dir(*id) + "/results.jsonl");
  for (int i = 0; i < 4000 && store.scan().records.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::kill(child, SIGKILL);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
  ASSERT_TRUE(WIFSIGNALED(wstatus));

  RunOptions opts;
  opts.backoff_ms = 0;
  const auto stats = service.run(*id, opts, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->already_done + stats->executed, stats->total_cells);
  EXPECT_GT(stats->already_done, 0u);
  const auto merged = service.merged(*id, /*canonical=*/true, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->dump(2), reference);
}

TEST_F(ServeResumeTest, CompletedJobReRunsZeroCells) {
  JobService service(builtin_registry(), dir_);
  std::string error;
  const auto id = service.submit(make_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  RunOptions opts;
  opts.backoff_ms = 0;
  const auto first = service.run(*id, opts, &error);
  ASSERT_TRUE(first.has_value()) << error;
  ASSERT_TRUE(first->completed);
  EXPECT_EQ(first->executed, first->total_cells);

  const auto again = service.run(*id, opts, &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_TRUE(again->completed);
  EXPECT_EQ(again->executed, 0u);
  EXPECT_EQ(again->already_done, again->total_cells);
  EXPECT_EQ(again->respawns, 0u);
}

TEST_F(ServeResumeTest, MaxCellsBudgetInterruptsAndResumesExactly) {
  const std::string reference = clean_merged_dump("clean");
  JobService service(builtin_registry(), dir_ + "/budget");
  std::string error;
  const auto id = service.submit(make_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;

  RunOptions partial;
  partial.backoff_ms = 0;
  partial.max_cells = 2;
  const auto first = service.run(*id, partial, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_FALSE(first->completed);
  EXPECT_EQ(first->executed, 2u);
  const auto st = service.status(*id, &error);
  ASSERT_TRUE(st.has_value()) << error;
  EXPECT_EQ(st->done_cells, 2u);
  EXPECT_FALSE(st->merged);
  // An incomplete job has no merged artifact yet.
  EXPECT_FALSE(service.merged(*id, false, &error).has_value());

  RunOptions rest;
  rest.backoff_ms = 0;
  const auto second = service.run(*id, rest, &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_TRUE(second->completed);
  EXPECT_EQ(second->already_done, 2u);
  EXPECT_EQ(second->executed, second->total_cells - 2u);
  const auto merged = service.merged(*id, /*canonical=*/true, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->dump(2), reference);
}

TEST_F(ServeResumeTest, DeadWorkerIsRespawnedAndItsCellRerun) {
  const std::string reference = clean_merged_dump("clean");
  JobService service(builtin_registry(), dir_ + "/crashy");
  std::string error;
  JobSpec job = make_job();
  job.config.workers = 1;
  const auto id = service.submit(job, &error);
  ASSERT_TRUE(id.has_value()) << error;

  // The generation-0 worker _exit(42)s before its second cell; the
  // respawned generation runs normally.
  RunOptions opts;
  opts.backoff_ms = 0;
  opts.test_worker_abort_after = 1;
  const auto stats = service.run(*id, opts, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->completed);
  EXPECT_GE(stats->respawns, 1u);
  EXPECT_EQ(stats->executed, stats->total_cells);
  const auto merged = service.merged(*id, /*canonical=*/true, &error);
  ASSERT_TRUE(merged.has_value()) << error;
  EXPECT_EQ(merged->dump(2), reference);
}

TEST_F(ServeResumeTest, TornTailIsRepairedOnResume) {
  JobService service(builtin_registry(), dir_);
  std::string error;
  const auto id = service.submit(make_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;
  RunOptions partial;
  partial.backoff_ms = 0;
  partial.max_cells = 1;
  ASSERT_TRUE(service.run(*id, partial, &error).has_value()) << error;

  // Simulate a write torn by kill -9: half a frame, no newline.
  ResultsStore store(service.job_dir(*id) + "/results.jsonl");
  {
    std::string torn = "12345678 {\"half";
    FILE* f = std::fopen(store.path().c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(torn.data(), 1, torn.size(), f);
    std::fclose(f);
  }
  ASSERT_TRUE(store.scan().torn_tail);

  RunOptions rest;
  rest.backoff_ms = 0;
  const auto stats = service.run(*id, rest, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_TRUE(stats->completed);
  EXPECT_EQ(stats->already_done, 1u);
  EXPECT_FALSE(store.scan().torn_tail);
}

TEST_F(ServeResumeTest, FingerprintMismatchIsRejectedAtResume) {
  JobService service(builtin_registry(), dir_);
  std::string error;
  const auto id = service.submit(make_job(), &error);
  ASSERT_TRUE(id.has_value()) << error;

  // Forge a record with the right job/cell but a wrong fingerprint —
  // the drift guard against a store paired with an edited manifest.
  json::Value forged = json::Value::object();
  forged.set("type", "cell");
  forged.set("job", *id);
  forged.set("cell", std::int64_t{0});
  forged.set("fp", "00000000");
  forged.set("result", json::Value::object());
  ResultsStore store(service.job_dir(*id) + "/results.jsonl");
  ASSERT_TRUE(store.append(forged));

  RunOptions opts;
  opts.backoff_ms = 0;
  EXPECT_FALSE(service.run(*id, opts, &error).has_value());
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos) << error;
}

TEST_F(ServeResumeTest, SubmitIsIdempotentAndStatusListsJobs) {
  JobService service(builtin_registry(), dir_);
  std::string error;
  const auto first = service.submit(make_job(), &error);
  ASSERT_TRUE(first.has_value()) << error;
  const auto second = service.submit(make_job(), &error);
  ASSERT_TRUE(second.has_value()) << error;
  EXPECT_EQ(*first, *second);

  JobSpec single;
  single.scenario = "duty-cycle";
  single.base = builtin_registry().find("duty-cycle")->spec().defaults();
  const auto other = service.submit(single, &error);
  ASSERT_TRUE(other.has_value()) << error;
  EXPECT_NE(*other, *first);

  const auto jobs = service.list(&error);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_LT(jobs[0].id, jobs[1].id);
  for (const auto& st : jobs) {
    EXPECT_EQ(st.done_cells, 0u);
    EXPECT_FALSE(st.merged);
  }
  EXPECT_FALSE(service.status("no-such-job", &error).has_value());
}

TEST_F(ServeResumeTest, WorkerRecordPayloadShapes) {
  const JobSpec job = make_job();
  const json::Value err = error_record(job, 3, "boom");
  EXPECT_EQ(err.find("type")->as_string(), "error");
  EXPECT_EQ(err.find("job")->as_string(), job.id());
  EXPECT_EQ(err.find("cell")->as_int(), 3);
  EXPECT_EQ(err.find("what")->as_string(), "boom");
}

}  // namespace
}  // namespace leak::serve
