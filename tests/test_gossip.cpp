// Tests for the gossip relay overlay.
#include <gtest/gtest.h>

#include "src/net/gossip.hpp"

namespace leak::net {
namespace {

struct Rig {
  EventQueue queue;
  GossipNetwork net;
  std::vector<std::pair<std::uint32_t, std::uint64_t>> delivered;

  explicit Rig(GossipConfig cfg) : net(queue, cfg) {
    net.set_handler([this](ValidatorIndex n, std::uint64_t id) {
      delivered.emplace_back(n.value(), id);
    });
  }
};

GossipConfig cfg(std::uint32_t n, std::uint32_t fanout = 6) {
  GossipConfig c;
  c.num_nodes = n;
  c.fanout = fanout;
  c.seed = 99;  // pinned: default, explicit for determinism
  return c;
}

TEST(Gossip, ReachesEveryNodeExactlyOnce) {
  Rig rig(cfg(50));
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.queue.run_until(60.0);
  EXPECT_EQ(rig.delivered.size(), 50u);
  EXPECT_EQ(rig.net.reach(1), 50u);
  std::vector<bool> seen(50, false);
  for (const auto& [node, id] : rig.delivered) {
    EXPECT_FALSE(seen[node]) << "duplicate delivery to " << node;
    seen[node] = true;
  }
}

TEST(Gossip, FewerHopsThanFullBroadcastSquare) {
  Rig rig(cfg(100, 6));
  rig.net.publish(ValidatorIndex{3}, 9);
  rig.queue.run_until(60.0);
  EXPECT_EQ(rig.net.reach(9), 100u);
  // Flooding with degree 6 costs ~O(6n) hops, far below n^2.
  EXPECT_LT(rig.net.hops_sent(), 100u * 20u);
}

TEST(Gossip, MeshDegreeRespected) {
  Rig rig(cfg(30, 4));
  for (std::uint32_t i = 0; i < 30; ++i) {
    EXPECT_EQ(rig.net.peers(ValidatorIndex{i}).size(), 4u);
    for (const auto p : rig.net.peers(ValidatorIndex{i})) {
      EXPECT_NE(p.value(), i);  // no self-loops
      EXPECT_LT(p.value(), 30u);
    }
  }
}

TEST(Gossip, SmallNetworksClampFanout) {
  Rig rig(cfg(3, 10));
  EXPECT_EQ(rig.net.peers(ValidatorIndex{0}).size(), 2u);
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.queue.run_until(10.0);
  EXPECT_EQ(rig.net.reach(1), 3u);
}

TEST(Gossip, LinkFilterPartitionsOverlay) {
  // Split nodes into two halves and drop cross-half hops: messages stay
  // confined to the origin's half (modulo mesh connectivity).
  Rig rig(cfg(40, 6));
  rig.net.set_link_filter([](ValidatorIndex a, ValidatorIndex b) {
    return (a.value() < 20) == (b.value() < 20);
  });
  rig.net.publish(ValidatorIndex{0}, 5);
  rig.queue.run_until(60.0);
  for (const auto& [node, id] : rig.delivered) {
    EXPECT_LT(node, 20u);
  }
  EXPECT_LE(rig.net.reach(5), 20u);
}

TEST(Gossip, MultiplePayloadsIndependent) {
  Rig rig(cfg(25));
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.net.publish(ValidatorIndex{7}, 2);
  rig.queue.run_until(30.0);
  EXPECT_EQ(rig.net.reach(1), 25u);
  EXPECT_EQ(rig.net.reach(2), 25u);
  EXPECT_EQ(rig.delivered.size(), 50u);
}

TEST(Gossip, RepublishIsIdempotent) {
  Rig rig(cfg(20));
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.queue.run_until(30.0);
  const auto count = rig.delivered.size();
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.queue.run_until(60.0);
  EXPECT_EQ(rig.delivered.size(), count);
}

TEST(Gossip, PropagationLatencyBounded) {
  Rig rig(cfg(64, 8));
  double last = 0.0;
  rig.net.set_handler([&](ValidatorIndex, std::uint64_t) {
    last = std::max(last, rig.queue.now());
  });
  rig.net.publish(ValidatorIndex{0}, 1);
  rig.queue.run_until(60.0);
  // ~log_8(64) = 2 expected hop-depth; even with jitter it should be
  // well under 20 max-hop delays.
  EXPECT_LT(last, 0.2 * 20);
}

TEST(Gossip, InvalidConfigThrows) {
  EventQueue q;
  GossipConfig c;
  c.num_nodes = 0;
  EXPECT_THROW(GossipNetwork(q, c), std::invalid_argument);
  c.num_nodes = 5;
  c.fanout = 0;
  EXPECT_THROW(GossipNetwork(q, c), std::invalid_argument);
}

}  // namespace
}  // namespace leak::net
