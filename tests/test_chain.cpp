// Tests for chain data types, the block tree and the validator registry.
#include <gtest/gtest.h>

#include "src/chain/block.hpp"
#include "src/chain/blocktree.hpp"
#include "src/chain/registry.hpp"

namespace leak::chain {
namespace {

TEST(Types, SlotEpochArithmetic) {
  EXPECT_EQ(epoch_of(Slot{0}), Epoch{0});
  EXPECT_EQ(epoch_of(Slot{31}), Epoch{0});
  EXPECT_EQ(epoch_of(Slot{32}), Epoch{1});
  EXPECT_EQ(Epoch{2}.start_slot(), Slot{64});
  EXPECT_EQ(Epoch{2}.end_slot(), Slot{95});
  EXPECT_TRUE(Slot{64}.is_epoch_boundary());
  EXPECT_FALSE(Slot{65}.is_epoch_boundary());
}

TEST(Types, GweiSaturatesAtZero) {
  Gwei a = Gwei::from_eth(1.0);
  Gwei b = Gwei::from_eth(2.0);
  EXPECT_EQ((a - b).value(), 0u);
  EXPECT_DOUBLE_EQ((b - a).eth(), 1.0);
  EXPECT_DOUBLE_EQ(Gwei::from_eth(32.0).eth(), 32.0);
}

TEST(BlockTest, IdDependsOnContent) {
  const Digest parent{};
  const Block a = Block::make(parent, Slot{1}, ValidatorIndex{0});
  const Block b = Block::make(parent, Slot{2}, ValidatorIndex{0});
  const Block c = Block::make(parent, Slot{1}, ValidatorIndex{1});
  EXPECT_NE(a.id, b.id);
  EXPECT_NE(a.id, c.id);
  EXPECT_EQ(a.id, Block::make(parent, Slot{1}, ValidatorIndex{0}).id);
}

TEST(AttestationTest, SigningRootCoversVotes) {
  Attestation a;
  a.attester = ValidatorIndex{1};
  a.slot = Slot{5};
  Attestation b = a;
  b.target.epoch = Epoch{3};
  EXPECT_NE(a.signing_root(), b.signing_root());
}

TEST(AttestationTest, SignVerify) {
  crypto::KeyRegistry reg;
  const auto keys = reg.generate(2, 1);
  Attestation a;
  a.attester = ValidatorIndex{1};
  a.slot = Slot{4};
  a.sign(keys[1]);
  EXPECT_TRUE(reg.verify(a.signing_root(), a.signature));
}

TEST(Slashable, DoubleVoteDetected) {
  Attestation a, b;
  a.attester = b.attester = ValidatorIndex{7};
  a.target.epoch = b.target.epoch = Epoch{4};
  a.target.block = crypto::sha256("chain A");
  b.target.block = crypto::sha256("chain B");
  EXPECT_TRUE(is_slashable_pair(a, b));
}

TEST(Slashable, SameDataNotSlashable) {
  Attestation a;
  a.attester = ValidatorIndex{7};
  a.target.epoch = Epoch{4};
  EXPECT_FALSE(is_slashable_pair(a, a));
}

TEST(Slashable, SurroundVoteDetected) {
  Attestation outer, inner;
  outer.attester = inner.attester = ValidatorIndex{2};
  outer.source.epoch = Epoch{1};
  outer.target.epoch = Epoch{6};
  inner.source.epoch = Epoch{2};
  inner.target.epoch = Epoch{5};
  EXPECT_TRUE(is_slashable_pair(outer, inner));
  EXPECT_TRUE(is_slashable_pair(inner, outer));
}

TEST(Slashable, DifferentValidatorsNever) {
  Attestation a, b;
  a.attester = ValidatorIndex{1};
  b.attester = ValidatorIndex{2};
  a.target.epoch = b.target.epoch = Epoch{4};
  b.target.block = crypto::sha256("other");
  EXPECT_FALSE(is_slashable_pair(a, b));
}

TEST(Slashable, AdjacentEpochsNotSurround) {
  Attestation a, b;
  a.attester = b.attester = ValidatorIndex{1};
  a.source.epoch = Epoch{1};
  a.target.epoch = Epoch{2};
  b.source.epoch = Epoch{2};
  b.target.epoch = Epoch{3};
  EXPECT_FALSE(is_slashable_pair(a, b));
}

class TreeFixture : public ::testing::Test {
 protected:
  BlockTree tree;

  Block add(const Digest& parent, std::uint64_t slot, std::uint32_t proposer) {
    const Block b = Block::make(parent, Slot{slot}, ValidatorIndex{proposer});
    tree.insert(b);
    return b;
  }
};

TEST_F(TreeFixture, GenesisPresent) {
  EXPECT_TRUE(tree.contains(tree.genesis_id()));
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.genesis().slot, Slot{0});
}

TEST_F(TreeFixture, InsertAndLookup) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  EXPECT_TRUE(tree.contains(b1.id));
  EXPECT_EQ(tree.at(b1.id).parent, tree.genesis_id());
  EXPECT_EQ(tree.children(tree.genesis_id()).size(), 1u);
}

TEST_F(TreeFixture, DuplicateInsertIsNoop) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  EXPECT_FALSE(tree.insert(b1));
  EXPECT_EQ(tree.size(), 2u);
}

TEST_F(TreeFixture, UnknownParentThrows) {
  const Block orphan = Block::make(crypto::sha256("nowhere"), Slot{5},
                                   ValidatorIndex{0});
  EXPECT_THROW(tree.insert(orphan), std::invalid_argument);
}

TEST_F(TreeFixture, NonIncreasingSlotThrows) {
  const Block b1 = add(tree.genesis_id(), 3, 0);
  const Block bad = Block::make(b1.id, Slot{3}, ValidatorIndex{1});
  EXPECT_THROW(tree.insert(bad), std::invalid_argument);
}

TEST_F(TreeFixture, AncestryOnFork) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  const Block a2 = add(b1.id, 2, 1);
  const Block b2 = add(b1.id, 3, 2);  // fork
  const Block a3 = add(a2.id, 4, 3);
  EXPECT_TRUE(tree.is_ancestor(b1.id, a3.id));
  EXPECT_TRUE(tree.is_ancestor(tree.genesis_id(), b2.id));
  EXPECT_FALSE(tree.is_ancestor(b2.id, a3.id));
  EXPECT_FALSE(tree.is_ancestor(a2.id, b2.id));
  EXPECT_TRUE(tree.is_ancestor(a3.id, a3.id));
}

TEST_F(TreeFixture, AncestorAtSlot) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  const Block b2 = add(b1.id, 5, 1);
  const Block b3 = add(b2.id, 40, 2);
  EXPECT_EQ(tree.ancestor_at_slot(b3.id, Slot{39}), b2.id);
  EXPECT_EQ(tree.ancestor_at_slot(b3.id, Slot{40}), b3.id);
  EXPECT_EQ(tree.ancestor_at_slot(b3.id, Slot{1}), b1.id);
  EXPECT_EQ(tree.ancestor_at_slot(b3.id, Slot{0}), tree.genesis_id());
}

TEST_F(TreeFixture, ChainToGenesisFirst) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  const Block b2 = add(b1.id, 2, 1);
  const auto chain = tree.chain_to(b2.id);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0], tree.genesis_id());
  EXPECT_EQ(chain[2], b2.id);
}

TEST_F(TreeFixture, LeavesOnFork) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  add(b1.id, 2, 1);
  add(b1.id, 3, 2);
  EXPECT_EQ(tree.leaves().size(), 2u);
}

TEST_F(TreeFixture, CheckpointOnBranchUsesBoundaryOrEarlier) {
  const Block b1 = add(tree.genesis_id(), 1, 0);
  const Block b32 = add(b1.id, 32, 1);  // exactly at epoch-1 boundary
  const Block b40 = add(b32.id, 40, 2);
  const Checkpoint cp1 = tree.checkpoint_on_branch(b40.id, Epoch{1});
  EXPECT_EQ(cp1.block, b32.id);
  EXPECT_EQ(cp1.epoch, Epoch{1});
  // Epoch 2 boundary (slot 64) is empty: latest ancestor applies.
  const Block b70 = add(b40.id, 70, 3);
  const Checkpoint cp2 = tree.checkpoint_on_branch(b70.id, Epoch{2});
  EXPECT_EQ(cp2.block, b40.id);
}

TEST(Registry, InitialBalances) {
  ValidatorRegistry reg(4);
  EXPECT_EQ(reg.size(), 4u);
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 32.0);
  EXPECT_DOUBLE_EQ(reg.total_active_balance(Epoch{0}).eth(), 128.0);
}

TEST(Registry, EjectionRemovesFromActiveSet) {
  ValidatorRegistry reg(3);
  reg.eject(ValidatorIndex{1}, Epoch{5});
  EXPECT_TRUE(reg.is_active(ValidatorIndex{1}, Epoch{4}));
  EXPECT_FALSE(reg.is_active(ValidatorIndex{1}, Epoch{5}));
  EXPECT_DOUBLE_EQ(reg.total_active_balance(Epoch{5}).eth(), 64.0);
}

TEST(Registry, EjectionIdempotentKeepsFirstEpoch) {
  ValidatorRegistry reg(2);
  reg.eject(ValidatorIndex{0}, Epoch{3});
  reg.eject(ValidatorIndex{0}, Epoch{9});
  EXPECT_FALSE(reg.is_active(ValidatorIndex{0}, Epoch{3}));
}

TEST(Registry, BalanceWherePredicate) {
  ValidatorRegistry reg(4);
  reg.at(ValidatorIndex{2}).balance = Gwei::from_eth(10.0);
  const Gwei low = reg.balance_where([](ValidatorIndex, const ValidatorRecord& r) {
    return r.balance < Gwei::from_eth(32.0);
  });
  EXPECT_DOUBLE_EQ(low.eth(), 10.0);
}

TEST(Registry, ZeroValidatorsThrows) {
  EXPECT_THROW(ValidatorRegistry(0), std::invalid_argument);
}

}  // namespace
}  // namespace leak::chain
