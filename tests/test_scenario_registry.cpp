// Tests for the scenario registry: the builtin catalog, the uniform
// parameter contract, metadata stamping, and — the core guarantee —
// that a registry run is bit-identical to calling the underlying
// driver directly with the same configuration.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "src/analytic/duty_cycle.hpp"
#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"
#include "src/support/table.hpp"

namespace leak::scenario {
namespace {

TEST(ScenarioRegistryTest, BuiltinCatalogIsComplete) {
  const auto& r = builtin_registry();
  for (const char* name :
       {"bouncing-mc", "attack-lifetime", "population-ensemble",
        "partition-trials", "duty-cycle", "recovery", "slot-protocol",
        "table1", "balancing-attack", "semiactive-sweep",
        "multi-partition-recovery"}) {
    EXPECT_NE(r.find(name), nullptr) << name;
  }
  EXPECT_EQ(r.find("nonexistent"), nullptr);
  EXPECT_GE(r.size(), 11u);
}

TEST(ScenarioRegistryTest, EveryScenarioHonorsTheUniformContract) {
  for (const auto* s : builtin_registry().all()) {
    for (const char* p : {"paths", "seed", "threads", "block"}) {
      const ParamSpec* spec = s->spec().find(p);
      ASSERT_NE(spec, nullptr) << s->spec().name() << " lacks " << p;
      EXPECT_EQ(spec->type, ParamType::kInt) << s->spec().name();
    }
  }
}

TEST(ScenarioRegistryTest, AddRejectsDuplicatesAndContractViolations) {
  ScenarioRegistry r;
  ScenarioSpec ok("s1", "d");
  ok.add_int("paths", "", 1)
      .add_int("seed", "", 0)
      .add_int("threads", "", 0)
      .add_int("block", "", 0);
  r.add(ok, [](const ParamSet&, ScenarioResult*) {});
  EXPECT_THROW(r.add(ok, [](const ParamSet&, ScenarioResult*) {}),
               std::invalid_argument);

  ScenarioSpec no_paths("s2", "d");
  no_paths.add_int("seed", "", 0).add_int("threads", "", 0).add_int(
      "block", "", 0);
  EXPECT_THROW(
      r.add(std::move(no_paths), [](const ParamSet&, ScenarioResult*) {}),
      std::invalid_argument);

  ScenarioSpec no_block("s3", "d");
  no_block.add_int("paths", "", 1).add_int("seed", "", 0).add_int(
      "threads", "", 0);
  EXPECT_THROW(
      r.add(std::move(no_block), [](const ParamSet&, ScenarioResult*) {}),
      std::invalid_argument);
}

TEST(ScenarioRegistryTest, RunValidatesParamsAndStampsMetadata) {
  const auto& sc = *builtin_registry().find("duty-cycle");
  auto params = sc.spec().defaults();
  params.set("k_max", std::int64_t{4});
  const auto res = sc.run(params);
  EXPECT_EQ(res.scenario, "duty-cycle");
  EXPECT_GE(res.threads, 1u);
  EXPECT_FALSE(res.git_describe.empty());
  EXPECT_GE(res.wall_ms, 0.0);
  EXPECT_EQ(res.params.get_int("k_max"), 4);
  ASSERT_TRUE(res.trials.has_value());
  EXPECT_EQ(res.trials->rows(), 4u);

  params.set("k_max", std::int64_t{-2});  // below min
  EXPECT_THROW((void)sc.run(params), std::invalid_argument);
  auto unknown = sc.spec().defaults();
  unknown.set("bogus", std::int64_t{1});
  EXPECT_THROW((void)sc.run(unknown), std::invalid_argument);
}

TEST(ScenarioRegistryTest, BouncingMcMatchesDriverBitExactly) {
  const auto paths = static_cast<std::int64_t>(env::scaled_count(400));
  const auto& sc = *builtin_registry().find("bouncing-mc");
  auto params = sc.spec().defaults();
  params.set("paths", paths);
  params.set("epochs", std::int64_t{600});
  params.set("snapshots", std::string("300,600"));
  params.set("seed", std::int64_t{99});
  const auto res = sc.run(params);

  bouncing::McConfig cfg;
  cfg.paths = static_cast<std::size_t>(paths);
  cfg.epochs = 600;
  cfg.seed = 99;
  const auto direct = bouncing::run_bouncing_mc(cfg, {300, 600});
  ASSERT_TRUE(res.trials.has_value());
  ASSERT_EQ(res.trials->rows(), 2u);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(res.trials->cell(k, 1),
              Table::fmt_exact(direct.ejected_fraction[k]));
    EXPECT_EQ(res.trials->cell(k, 2),
              Table::fmt_exact(direct.capped_fraction[k]));
    EXPECT_EQ(res.trials->cell(k, 3),
              Table::fmt_exact(direct.prob_beta_exceeds[k]));
  }
  EXPECT_EQ(res.metric("ejected_fraction"), direct.ejected_fraction[1]);
  EXPECT_EQ(res.metric("prob_beta_exceeds"), direct.prob_beta_exceeds[1]);
}

TEST(ScenarioRegistryTest, AttackLifetimeMatchesDriverBitExactly) {
  const auto runs = static_cast<std::int64_t>(env::scaled_count(200));
  const auto& sc = *builtin_registry().find("attack-lifetime");
  auto params = sc.spec().defaults();
  params.set("paths", runs);
  params.set("max_epochs", std::int64_t{2000});
  const auto res = sc.run(params);

  bouncing::AttackSimConfig cfg;
  cfg.runs = static_cast<std::size_t>(runs);
  cfg.max_epochs = 2000;
  const auto direct = bouncing::run_attack_sim(cfg);
  EXPECT_EQ(res.metric("prob_threshold_broken"),
            direct.prob_threshold_broken);
  EXPECT_EQ(res.metric("mean_duration"), direct.mean_duration);
  EXPECT_EQ(res.metric("median_duration"), direct.median_duration);
  EXPECT_EQ(res.metric("p99_duration"), direct.p99_duration);
  ASSERT_TRUE(res.trials.has_value());
  ASSERT_EQ(res.trials->rows(), direct.durations.size());
  for (std::size_t i = 0; i < direct.durations.size(); ++i) {
    EXPECT_EQ(res.trials->cell(i, 1), std::to_string(direct.durations[i]));
  }
}

TEST(ScenarioRegistryTest, PartitionTrialsMatchesDriverBitExactly) {
  const auto trials = static_cast<std::int64_t>(env::scaled_count(8));
  const auto& sc = *builtin_registry().find("partition-trials");
  auto params = sc.spec().defaults();
  params.set("paths", trials);
  params.set("n_validators", std::int64_t{120});
  params.set("max_epochs", std::int64_t{1500});
  const auto res = sc.run(params);

  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = 120;
  cfg.base.strategy = sim::Strategy::kNone;
  cfg.base.max_epochs = 1500;
  cfg.base.trajectory_stride = 1500;
  cfg.trials = static_cast<std::size_t>(trials);
  cfg.seed = 2024;
  const auto direct = sim::run_partition_trials(cfg);
  EXPECT_EQ(res.metric("conflicting_fraction"), direct.conflicting_fraction);
  EXPECT_EQ(res.metric("beta_exceeded_fraction"),
            direct.beta_exceeded_fraction);
  EXPECT_EQ(res.metric("mean_conflict_epoch"), direct.mean_conflict_epoch);
}

TEST(ScenarioRegistryTest, MultiPartitionRecoveryDegeneratesToPartitionTrials) {
  // The acceptance contract of the k-branch generalization: with
  // branches = 2, heal disabled and stagger 0, multi-partition-recovery
  // is bit-identical to the legacy partition-trials driver — same RNG
  // draws, same core, same metrics and per-trial outcomes.
  const auto trials = static_cast<std::int64_t>(env::scaled_count(8));
  const auto& legacy = *builtin_registry().find("partition-trials");
  auto lp = legacy.spec().defaults();
  lp.set("paths", trials);
  lp.set("n_validators", std::int64_t{120});
  lp.set("max_epochs", std::int64_t{1500});
  const auto want = legacy.run(lp);

  const auto& multi = *builtin_registry().find("multi-partition-recovery");
  auto mp = multi.spec().defaults();
  mp.set("paths", trials);
  mp.set("n_validators", std::int64_t{120});
  mp.set("max_epochs", std::int64_t{1500});
  mp.set("branches", std::int64_t{2});
  mp.set("heal_epoch", std::int64_t{0});
  mp.set("heal_stagger", std::int64_t{0});
  const auto got = multi.run(mp);

  for (const char* metric :
       {"conflicting_fraction", "beta_exceeded_fraction",
        "mean_conflict_epoch"}) {
    EXPECT_EQ(want.metric(metric), got.metric(metric)) << metric;
  }
  // Healing disabled: the recovery tail is identically zero.
  EXPECT_EQ(got.metric("recovered_fraction"), 0.0);
  EXPECT_EQ(got.metric("mean_residual_loss_eth"), 0.0);
  // Per-trial conflict epochs and beta peaks match row by row.
  ASSERT_TRUE(want.trials && got.trials);
  ASSERT_EQ(want.trials->rows(), got.trials->rows());
  for (std::size_t i = 0; i < want.trials->rows(); ++i) {
    EXPECT_EQ(want.trials->cell(i, 1), got.trials->cell(i, 1)) << i;
    EXPECT_EQ(want.trials->cell(i, 2), got.trials->cell(i, 2)) << i;
  }
}

TEST(ScenarioRegistryTest, SemiactiveSweepMatchesDutyCycleClosedForms) {
  const auto& sc = *builtin_registry().find("semiactive-sweep");
  auto params = sc.spec().defaults();
  params.set("paths", std::int64_t{32});
  params.set("epochs", std::int64_t{512});
  params.set("branches", std::int64_t{3});
  const auto res = sc.run(params);
  const auto cfg = analytic::AnalyticConfig::paper();
  EXPECT_EQ(res.metric("beta_max"),
            analytic::multibranch_beta_max(3, 0.33, cfg));
  EXPECT_EQ(res.metric("supermajority_recovery_epoch"),
            analytic::multibranch_supermajority_epoch(3, 0.33, cfg));
  EXPECT_EQ(res.metric("beta0_lower_bound"),
            analytic::multibranch_beta0_lower_bound(3, cfg));
}

TEST(ScenarioRegistryTest, ResultsAreThreadCountInvariant) {
  const auto& sc = *builtin_registry().find("bouncing-mc");
  auto params = sc.spec().defaults();
  params.set("paths", static_cast<std::int64_t>(env::scaled_count(300)));
  params.set("epochs", std::int64_t{400});
  params.set("threads", std::int64_t{1});
  const auto base = sc.run(params);
  for (const std::int64_t threads : {2, 4}) {
    params.set("threads", threads);
    const auto r = sc.run(params);
    EXPECT_EQ(r.metrics, base.metrics) << threads << " threads";
    ASSERT_TRUE(r.trials.has_value());
    EXPECT_EQ(r.trials->to_csv(), base.trials->to_csv())
        << threads << " threads";
  }
}

TEST(ScenarioRegistryTest, SlotProtocolRunsTrialsDeterministically) {
  const auto& sc = *builtin_registry().find("slot-protocol");
  auto params = sc.spec().defaults();
  params.set("paths", std::int64_t{2});
  params.set("n_honest", std::int64_t{12});
  params.set("epochs", std::int64_t{4});
  const auto a = sc.run(params);
  const auto b = sc.run(params);
  EXPECT_EQ(a.metrics, b.metrics);
  ASSERT_TRUE(a.trials.has_value());
  EXPECT_EQ(a.trials->rows(), 2u);
  EXPECT_EQ(a.trials->to_csv(), b.trials->to_csv());
  // With everyone honest and no partition, finality advances.
  EXPECT_GT(a.metric("mean_finalized_epoch"), 0.0);
  EXPECT_EQ(a.metric("mean_safety_violations"), 0.0);
}

TEST(ScenarioRegistryTest, Table1ScenarioExposesWitnesses) {
  const auto& sc = *builtin_registry().find("table1");
  const auto res = sc.run(sc.spec().defaults());
  ASSERT_TRUE(res.trials.has_value());
  EXPECT_EQ(res.trials->rows(), 5u);
  for (const char* id : {"5.1", "5.2.1", "5.2.2", "5.2.3", "5.3"}) {
    EXPECT_TRUE(res.has_metric(std::string("witness_") + id)) << id;
  }
}

TEST(ScenarioRegistryTest, ResultJsonRoundTripsThroughParser) {
  const auto& sc = *builtin_registry().find("recovery");
  const auto res = sc.run(sc.spec().defaults());
  const auto doc = res.to_json();
  const auto parsed = json::Value::parse(doc.dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, doc);
  EXPECT_EQ(parsed->find("scenario")->as_string(), "recovery");
  ASSERT_NE(parsed->find("metrics"), nullptr);
  EXPECT_GT(parsed->find("metrics")->find("recovery_epochs")->as_double(),
            0.0);
  // Params round-trip through the spec's JSON reader too.
  std::string error;
  const auto back = sc.spec().params_from_json(*parsed->find("params"),
                                               &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_TRUE(*back == res.params);
}

}  // namespace
}  // namespace leak::scenario
