// Tests for the spec-faithful 4-bit justification window and the four
// Gasper finalization rules, including agreement with the paper's
// simplified "two consecutive justified checkpoints" rule.
#include <gtest/gtest.h>

#include "src/finality/justification_bits.hpp"

namespace leak::finality {
namespace {

using chain::Checkpoint;

Checkpoint cp(std::uint64_t e, const std::string& tag = "a") {
  return Checkpoint{crypto::sha256(tag + std::to_string(e)), Epoch{e}};
}

TEST(Bits, ShiftAndSet) {
  JustificationBits b;
  b.set(0);
  b.shift();
  EXPECT_FALSE(b.test(0));
  EXPECT_TRUE(b.test(1));
  b.shift();
  b.shift();
  EXPECT_TRUE(b.test(3));
  b.shift();
  EXPECT_FALSE(b.test(3));  // fell off the window
}

class FinalizerFixture : public ::testing::Test {
 protected:
  FinalizerFixture() : genesis(cp(0, "g")), fin(genesis) {}

  /// Feed an epoch where the current target gets justified.
  GasperFinalizer::EpochOutcome justify_current(std::uint64_t e) {
    GasperFinalizer::EpochInput in;
    in.current = Epoch{e};
    in.current_justified_now = true;
    in.current_target = cp(e);
    return fin.process(in);
  }

  /// Feed an epoch where only the previous target gets justified.
  GasperFinalizer::EpochOutcome justify_previous(std::uint64_t e) {
    GasperFinalizer::EpochInput in;
    in.current = Epoch{e};
    in.previous_justified_now = true;
    in.previous_target = cp(e - 1);
    return fin.process(in);
  }

  /// Feed an idle epoch (nothing justified).
  GasperFinalizer::EpochOutcome idle(std::uint64_t e) {
    GasperFinalizer::EpochInput in;
    in.current = Epoch{e};
    return fin.process(in);
  }

  Checkpoint genesis;
  GasperFinalizer fin;
};

TEST_F(FinalizerFixture, Rule4ConsecutiveCurrentJustification) {
  // Epoch 1 justifies target 1; epoch 2 justifies target 2 -> rule 4
  // finalizes checkpoint 1 (the paper's simplified rule).
  auto o1 = justify_current(1);
  EXPECT_TRUE(o1.newly_justified.has_value());
  // genesis(0) was old_current with bits[0..1] set: rule 4 fires for it.
  EXPECT_EQ(fin.finalized().epoch, Epoch{0});
  auto o2 = justify_current(2);
  EXPECT_EQ(o2.finalization_rule, 4);
  ASSERT_TRUE(o2.newly_finalized.has_value());
  EXPECT_EQ(o2.newly_finalized->epoch, Epoch{1});
  EXPECT_EQ(fin.justified().epoch, Epoch{2});
}

TEST_F(FinalizerFixture, ContinuousOperationAdvancesFinalityEachEpoch) {
  for (std::uint64_t e = 1; e <= 10; ++e) justify_current(e);
  EXPECT_EQ(fin.justified().epoch, Epoch{10});
  EXPECT_EQ(fin.finalized().epoch, Epoch{9});
}

TEST_F(FinalizerFixture, Rule2LateVotesFinalizeViaPreviousTarget) {
  // Epoch 1 justified normally; epoch 2's target only justified during
  // epoch 3 (votes arrived late): rule 2 finalizes epoch 1.
  justify_current(1);
  idle(2);
  auto o = justify_previous(3);
  EXPECT_EQ(o.finalization_rule, 2);
  ASSERT_TRUE(o.newly_finalized.has_value());
  EXPECT_EQ(o.newly_finalized->epoch, Epoch{1});
}

TEST_F(FinalizerFixture, NoFinalizationWhenJustificationSkipsEpochs) {
  // Justification only every other epoch: Section 3.2's "if
  // justification occurs only every other epoch, finalization is not
  // possible".
  justify_current(1);
  idle(2);
  justify_current(3);
  idle(4);
  justify_current(5);
  EXPECT_EQ(fin.justified().epoch, Epoch{5});
  EXPECT_EQ(fin.finalized().epoch, Epoch{0});
}

TEST_F(FinalizerFixture, Rule3DoubleJustificationInOneEpoch) {
  // Epoch 1 justified; epoch 2 idle; during epoch 3 both the previous
  // (2) and current (3) targets justify: old_current = 1 with bits
  // 0,1,2 set -> rule 3 finalizes 1.
  justify_current(1);
  idle(2);
  GasperFinalizer::EpochInput in;
  in.current = Epoch{3};
  in.previous_justified_now = true;
  in.previous_target = cp(2);
  in.current_justified_now = true;
  in.current_target = cp(3);
  auto o = fin.process(in);
  EXPECT_EQ(o.finalization_rule, 3);
  ASSERT_TRUE(o.newly_finalized.has_value());
  EXPECT_EQ(o.newly_finalized->epoch, Epoch{1});
}

TEST_F(FinalizerFixture, IdleEpochsFreezeFinality) {
  justify_current(1);
  justify_current(2);
  const auto fin_before = fin.finalized();
  for (std::uint64_t e = 3; e <= 8; ++e) idle(e);
  EXPECT_EQ(fin.finalized(), fin_before);
  EXPECT_EQ(fin.justified().epoch, Epoch{2});
}

TEST_F(FinalizerFixture, RecoveryAfterLongStall) {
  justify_current(1);
  justify_current(2);
  for (std::uint64_t e = 3; e <= 20; ++e) idle(e);  // leak territory
  justify_current(21);
  EXPECT_EQ(fin.finalized().epoch, Epoch{1});  // not yet
  justify_current(22);
  EXPECT_EQ(fin.finalized().epoch, Epoch{21});  // consecutive again
}

TEST_F(FinalizerFixture, EpochMustAdvanceByOne) {
  justify_current(1);
  GasperFinalizer::EpochInput in;
  in.current = Epoch{5};
  EXPECT_THROW(fin.process(in), std::invalid_argument);
}

TEST_F(FinalizerFixture, TargetEpochValidation) {
  GasperFinalizer::EpochInput in;
  in.current = Epoch{1};
  in.current_justified_now = true;
  in.current_target = cp(3);  // wrong epoch
  EXPECT_THROW(fin.process(in), std::invalid_argument);
}

TEST_F(FinalizerFixture, JustifiedNeverRegresses) {
  justify_current(1);
  justify_current(2);
  // A late justification of the previous epoch (1 again via epoch 2's
  // path) must not lower the justified checkpoint.
  GasperFinalizer::EpochInput in;
  in.current = Epoch{3};
  in.previous_justified_now = true;
  in.previous_target = cp(2);
  fin.process(in);
  EXPECT_EQ(fin.justified().epoch, Epoch{2});
}

}  // namespace
}  // namespace leak::finality
