// Contract of the parallel experiment runner: merged results are
// bit-identical for any thread count (the conf_dsn_PavloffAP24
// reproducibility requirement — one seed, one result), per-trial RNG
// streams are decorrelated, and a throwing trial propagates cleanly
// out of the pool instead of deadlocking it.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/random.hpp"

namespace leak {
namespace {

TEST(ResolveThreads, ExplicitRequestWins) {
  EXPECT_EQ(runner::resolve_threads(3), 3u);
  EXPECT_GE(runner::resolve_threads(0), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask) {
  runner::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleWithoutTasksReturnsImmediately) {
  runner::ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

std::vector<std::uint64_t> runner_draws(unsigned threads, std::size_t n) {
  const runner::TrialRunner pool(threads);
  const StreamSeeder seeder(42);
  return pool.run(n, [&seeder](std::size_t i) {
    Rng rng = seeder.stream(i);
    std::uint64_t acc = 0;
    for (int k = 0; k < 100; ++k) acc ^= rng();
    return acc;
  });
}

TEST(TrialRunner, MergedResultsIdenticalAcrossThreadCounts) {
  const auto one = runner_draws(1, 333);
  ASSERT_EQ(one.size(), 333u);
  for (const unsigned threads : {2u, 8u}) {
    EXPECT_EQ(runner_draws(threads, 333), one) << threads << " threads";
  }
}

TEST(TrialRunner, ZeroTrialsReturnsEmpty) {
  const runner::TrialRunner pool(4);
  const auto r = pool.run(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(r.empty());
}

TEST(TrialRunner, FewerTrialsThanThreads) {
  const auto r = runner_draws(8, 3);
  EXPECT_EQ(r, runner_draws(1, 3));
}

TEST(TrialRunner, ExceptionPropagatesWithoutDeadlock) {
  const runner::TrialRunner pool(4);
  EXPECT_THROW((void)pool.run(512,
                              [](std::size_t i) {
                                if (i >= 100) {
                                  throw std::runtime_error("trial failed");
                                }
                                return i;
                              }),
               std::runtime_error);
  // The pool drained cleanly: the runner is immediately reusable.
  EXPECT_EQ(pool.run(16, [](std::size_t i) { return i; }).size(), 16u);
}

TEST(TrialRunner, SerialExceptionPropagates) {
  const runner::TrialRunner pool(1);
  EXPECT_THROW((void)pool.run(8,
                              [](std::size_t i) {
                                if (i == 5) {
                                  throw std::invalid_argument("bad trial");
                                }
                                return i;
                              }),
               std::invalid_argument);
}

TEST(StreamSeeder, DeterministicAndDistinctFromMaster) {
  const StreamSeeder seeder(7);
  EXPECT_EQ(seeder.seed_for(0), seeder.seed_for(0));
  EXPECT_NE(seeder.seed_for(0), 7u);
  EXPECT_NE(seeder.seed_for(0), StreamSeeder(8).seed_for(0));
}

TEST(StreamSeeder, AdjacentSeedsWellMixed) {
  // The avalanche mixer should flip roughly half the 64 bits between
  // adjacent trial indices; [10, 54] is a very loose 6-sigma band.
  const StreamSeeder seeder(7);
  for (std::uint64_t i = 0; i < 256; ++i) {
    const std::uint64_t a = seeder.seed_for(i);
    const std::uint64_t b = seeder.seed_for(i + 1);
    ASSERT_NE(a, b);
    const int bits = std::popcount(a ^ b);
    EXPECT_GE(bits, 10) << "index " << i;
    EXPECT_LE(bits, 54) << "index " << i;
  }
}

TEST(StreamSeeder, AdjacentStreamsDecorrelated) {
  // Pearson correlation of uniforms from adjacent streams is
  // approximately N(0, 1/sqrt(n)); |r| < 4/sqrt(n) is a 4-sigma bound.
  const StreamSeeder seeder(123);
  constexpr std::size_t kN = 4096;
  Rng a = seeder.stream(1000);
  Rng b = seeder.stream(1001);
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    const double x = a.uniform();
    const double y = b.uniform();
    sx += x;
    sy += y;
    sxx += x * x;
    syy += y * y;
    sxy += x * y;
  }
  const double n = static_cast<double>(kN);
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double vx = sxx / n - (sx / n) * (sx / n);
  const double vy = syy / n - (sy / n) * (sy / n);
  const double r = cov / std::sqrt(vx * vy);
  EXPECT_LT(std::abs(r), 4.0 / std::sqrt(n));
}

// Acceptance criterion: run_bouncing_mc with the same seed returns an
// identical McResult for threads in {1, 4, hardware_concurrency}.
TEST(ParallelDeterminism, BouncingMcIdenticalAcrossThreadCounts) {
  bouncing::McConfig cfg;
  cfg.paths = 400;
  cfg.epochs = 800;
  cfg.seed = 9;
  const std::vector<std::size_t> snaps{200, 800};
  cfg.threads = 1;
  const auto base = bouncing::run_bouncing_mc(cfg, snaps);
  for (const unsigned threads : {4u, runner::resolve_threads(0)}) {
    cfg.threads = threads;
    const auto r = bouncing::run_bouncing_mc(cfg, snaps);
    EXPECT_EQ(r.epochs, base.epochs) << threads << " threads";
    EXPECT_EQ(r.stakes, base.stakes) << threads << " threads";
    EXPECT_EQ(r.ejected_fraction, base.ejected_fraction);
    EXPECT_EQ(r.capped_fraction, base.capped_fraction);
    EXPECT_EQ(r.prob_beta_exceeds, base.prob_beta_exceeds);
  }
}

TEST(ParallelDeterminism, AttackSimIdenticalAcrossThreadCounts) {
  bouncing::AttackSimConfig cfg;
  cfg.runs = 200;
  cfg.honest_validators = 30;
  cfg.max_epochs = 2000;
  cfg.seed = 77;
  cfg.threads = 1;
  const auto base = bouncing::run_attack_sim(cfg);
  for (const unsigned threads : {4u, 8u}) {
    cfg.threads = threads;
    const auto r = bouncing::run_attack_sim(cfg);
    EXPECT_EQ(r.durations, base.durations) << threads << " threads";
    EXPECT_EQ(r.break_epochs, base.break_epochs);
    EXPECT_EQ(r.mean_duration, base.mean_duration);
    EXPECT_EQ(r.prob_threshold_broken, base.prob_threshold_broken);
  }
}

TEST(ParallelDeterminism, PartitionTrialsIdenticalAcrossThreadCounts) {
  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = 120;
  cfg.base.strategy = sim::Strategy::kNone;
  cfg.base.max_epochs = 600;
  cfg.trials = 8;
  cfg.seed = 5;
  cfg.threads = 1;
  const auto base = sim::run_partition_trials(cfg);
  EXPECT_EQ(base.conflict_epochs.size(), cfg.trials);
  cfg.threads = 4;
  const auto r = sim::run_partition_trials(cfg);
  EXPECT_EQ(r.conflict_epochs, base.conflict_epochs);
  EXPECT_EQ(r.beta_peaks, base.beta_peaks);
  EXPECT_EQ(r.conflicting_fraction, base.conflicting_fraction);
  EXPECT_EQ(r.mean_conflict_epoch, base.mean_conflict_epoch);
}

TEST(ParallelDeterminism, PopulationEnsembleIdenticalAcrossThreadCounts) {
  bouncing::PopulationEnsembleConfig cfg;
  cfg.base.honest_validators = 40;
  cfg.base.epochs = 400;
  cfg.base.beta0 = 1.0 / 3.0;
  cfg.paths = 6;
  cfg.threads = 1;
  const auto base = bouncing::run_population_ensemble(cfg);
  EXPECT_EQ(base.first_exceed_epochs.size(), cfg.paths);
  EXPECT_GE(base.exceed_fraction, 0.0);
  EXPECT_LE(base.exceed_fraction, 1.0);
  cfg.threads = 4;
  const auto r = bouncing::run_population_ensemble(cfg);
  EXPECT_EQ(r.first_exceed_epochs, base.first_exceed_epochs);
  EXPECT_EQ(r.mean_final_beta, base.mean_final_beta);
}

}  // namespace
}  // namespace leak
