// Tests for the SSZ-lite codec and chain wire encoding.
#include <gtest/gtest.h>

#include "src/chain/wire.hpp"
#include "src/support/codec.hpp"

namespace leak {
namespace {

TEST(Codec, IntegerRoundTrip) {
  codec::Writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  codec::Reader r(w.bytes());
  std::uint8_t a = 0;
  std::uint32_t b = 0;
  std::uint64_t c = 0;
  ASSERT_TRUE(r.get_u8(a));
  ASSERT_TRUE(r.get_u32(b));
  ASSERT_TRUE(r.get_u64(c));
  EXPECT_EQ(a, 0xab);
  EXPECT_EQ(b, 0xdeadbeefu);
  EXPECT_EQ(c, 0x0123456789abcdefULL);
  EXPECT_TRUE(r.exhausted());
}

TEST(Codec, LittleEndianLayout) {
  codec::Writer w;
  w.put_u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x04);
  EXPECT_EQ(w.bytes()[3], 0x01);
}

TEST(Codec, TruncatedReadsFail) {
  codec::Writer w;
  w.put_u32(7);
  codec::Reader r(w.bytes());
  std::uint64_t x = 0;
  EXPECT_FALSE(r.get_u64(x));
}

TEST(Codec, BlobRoundTrip) {
  codec::Writer w;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  w.put_blob(payload);
  codec::Reader r(w.bytes());
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(r.get_blob(out));
  EXPECT_EQ(out, payload);
}

TEST(Codec, BlobLengthLies) {
  codec::Writer w;
  w.put_u32(100);  // claims 100 bytes, provides none
  codec::Reader r(w.bytes());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(r.get_blob(out));
}

TEST(Codec, ArrayRoundTrip) {
  std::array<std::uint8_t, 32> in{};
  for (std::size_t i = 0; i < 32; ++i) in[i] = static_cast<std::uint8_t>(i);
  codec::Writer w;
  w.put_array(in);
  codec::Reader r(w.bytes());
  std::array<std::uint8_t, 32> out{};
  ASSERT_TRUE(r.get_array(out));
  EXPECT_EQ(in, out);
}

TEST(Wire, BlockRoundTripPreservesId) {
  const chain::Block b = chain::Block::make(
      crypto::sha256("parent"), Slot{77}, ValidatorIndex{5},
      crypto::sha256("body"));
  const auto bytes = chain::encode_block(b);
  const auto decoded = chain::decode_block(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, b.id);
  EXPECT_EQ(decoded->parent, b.parent);
  EXPECT_EQ(decoded->slot, b.slot);
  EXPECT_EQ(decoded->proposer, b.proposer);
}

TEST(Wire, BlockDecodeRejectsTruncation) {
  const chain::Block b =
      chain::Block::make(crypto::sha256("p"), Slot{1}, ValidatorIndex{0});
  auto bytes = chain::encode_block(b);
  bytes.pop_back();
  EXPECT_FALSE(chain::decode_block(bytes).has_value());
}

TEST(Wire, BlockDecodeRejectsTrailingBytes) {
  const chain::Block b =
      chain::Block::make(crypto::sha256("p"), Slot{1}, ValidatorIndex{0});
  auto bytes = chain::encode_block(b);
  bytes.push_back(0);
  EXPECT_FALSE(chain::decode_block(bytes).has_value());
}

TEST(Wire, AttestationRoundTripPreservesSignature) {
  crypto::KeyRegistry keys;
  const auto pairs = keys.generate(4, 3);
  chain::Attestation a;
  a.attester = ValidatorIndex{2};
  a.slot = Slot{99};
  a.head = crypto::sha256("head");
  a.source = chain::Checkpoint{crypto::sha256("s"), Epoch{2}};
  a.target = chain::Checkpoint{crypto::sha256("t"), Epoch{3}};
  a.sign(pairs[2]);

  const auto bytes = chain::encode_attestation(a);
  const auto decoded = chain::decode_attestation(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->attester, a.attester);
  EXPECT_EQ(decoded->slot, a.slot);
  EXPECT_EQ(decoded->source, a.source);
  EXPECT_EQ(decoded->target, a.target);
  // The decoded signature still verifies against the registry.
  EXPECT_TRUE(keys.verify(decoded->signing_root(), decoded->signature));
}

TEST(Wire, TamperedAttestationFailsVerification) {
  crypto::KeyRegistry keys;
  const auto pairs = keys.generate(2, 3);
  chain::Attestation a;
  a.attester = ValidatorIndex{1};
  a.slot = Slot{4};
  a.sign(pairs[1]);
  auto bytes = chain::encode_attestation(a);
  bytes[4] ^= 0x01;  // flip a bit in the slot field
  const auto decoded = chain::decode_attestation(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(keys.verify(decoded->signing_root(), decoded->signature));
}

TEST(Wire, AttestationDecodeRejectsGarbage) {
  const std::vector<std::uint8_t> junk(10, 0xcc);
  EXPECT_FALSE(chain::decode_attestation(junk).has_value());
}

}  // namespace
}  // namespace leak
