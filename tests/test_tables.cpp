// Reproduction tests for the paper's Tables 1-3: every row's computed
// value must sit within a documented tolerance of the printed value.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/tables.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(Table2Repro, AllRowsWithinOneEpoch) {
  const auto rows = table2(kPaper);
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.computed_epochs, r.paper_epochs, 1.5)
        << "beta0=" << r.beta0;
  }
}

TEST(Table2Repro, RowsDecreasing) {
  const auto rows = table2(kPaper);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i].computed_epochs, rows[i - 1].computed_epochs);
  }
}

TEST(Table3Repro, EndpointsMatchPaper) {
  // The paper's own numeric example (beta0 = 0.33 -> 555.65) and the
  // honest limit (4685) reproduce to the epoch.
  const auto rows = table3(kPaper);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_NEAR(rows[0].computed_epochs, 4685.0, 1.5);
  EXPECT_NEAR(rows[4].computed_epochs, 555.65, 1.0);
}

TEST(Table3Repro, MidRowsWithinOnePercent) {
  // The paper's middle rows (4221 / 3819 / 3328) differ from the exact
  // Eq 10 roots by ~0.5% (see EXPERIMENTS.md); assert the reproduction
  // stays within 1%.
  const auto rows = table3(kPaper);
  for (const auto& r : rows) {
    EXPECT_NEAR(r.computed_epochs / r.paper_epochs, 1.0, 0.01)
        << "beta0=" << r.beta0;
  }
}

TEST(Table3Repro, SemiActiveSlowerThanSlashingRowwise) {
  const auto t2 = table2(kPaper);
  const auto t3 = table3(kPaper);
  for (std::size_t i = 1; i < t2.size(); ++i) {  // skip beta0=0 (equal)
    EXPECT_GT(t3[i].computed_epochs, t2[i].computed_epochs);
  }
}

TEST(Table1Repro, FiveScenariosWithExpectedOutcomes) {
  const auto rows = table1(kPaper);
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0].id, "5.1");
  EXPECT_EQ(rows[0].outcome, "2 finalized branches");
  EXPECT_NEAR(rows[0].witness, 4686.0, 1.5);
  EXPECT_EQ(rows[1].id, "5.2.1");
  EXPECT_NEAR(rows[1].witness, 503.0, 1.5);
  EXPECT_EQ(rows[2].id, "5.2.2");
  EXPECT_NEAR(rows[2].witness, 557.0, 1.5);
  EXPECT_EQ(rows[3].id, "5.2.3");
  EXPECT_EQ(rows[3].outcome, "beta > 1/3");
  EXPECT_NEAR(rows[3].witness, 0.2421, 5e-4);
  EXPECT_EQ(rows[4].id, "5.3");
  EXPECT_EQ(rows[4].outcome, "beta > 1/3 probably");
}

TEST(Table1Repro, ByzantineScenariosFasterThanHonest) {
  const auto rows = table1(kPaper);
  EXPECT_LT(rows[1].witness, rows[0].witness);
  EXPECT_LT(rows[2].witness, rows[0].witness);
  EXPECT_LT(rows[1].witness, rows[2].witness);
}

}  // namespace
}  // namespace leak::analytic
