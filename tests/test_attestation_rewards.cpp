// Tests for attestation rewards/penalties (Section 3.3 type (ii)) and
// their suppression during the inactivity leak (footnote 7).
#include <gtest/gtest.h>

#include "src/penalties/attestation_rewards.hpp"

namespace leak::penalties {
namespace {

using chain::ValidatorRegistry;

TEST(IntegerSqrt, KnownValues) {
  EXPECT_EQ(integer_sqrt(0), 0u);
  EXPECT_EQ(integer_sqrt(1), 1u);
  EXPECT_EQ(integer_sqrt(3), 1u);
  EXPECT_EQ(integer_sqrt(4), 2u);
  EXPECT_EQ(integer_sqrt(15), 3u);
  EXPECT_EQ(integer_sqrt(16), 4u);
  EXPECT_EQ(integer_sqrt(1'000'000'000'000ULL), 1'000'000u);
  EXPECT_EQ(integer_sqrt(~0ULL), 4294967295u);
}

TEST(IntegerSqrt, FloorProperty) {
  for (std::uint64_t n : {7ULL, 99ULL, 12345ULL, 999999999ULL}) {
    const std::uint64_t r = integer_sqrt(n);
    EXPECT_LE(r * r, n);
    EXPECT_GT((r + 1) * (r + 1), n);
  }
}

class RewardsFixture : public ::testing::Test {
 protected:
  RewardsFixture() : reg(64), rewards(reg) {}

  static Participation full() {
    return Participation{true, true, true, true};
  }
  static Participation missed() { return Participation{}; }

  ValidatorRegistry reg;
  AttestationRewards rewards;
};

TEST_F(RewardsFixture, BaseRewardScalesWithBalance) {
  const Gwei b32 = rewards.base_reward(ValidatorIndex{0}, Epoch{1});
  EXPECT_GT(b32.value(), 0u);
  reg.at(ValidatorIndex{1}).balance = Gwei::from_eth(16.0);
  const Gwei b16 = rewards.base_reward(ValidatorIndex{1}, Epoch{1});
  // Halving the balance ~halves the base reward (the total shrinks a
  // little too, so allow 1%).
  EXPECT_NEAR(static_cast<double>(b16.value()) /
                  (static_cast<double>(b32.value()) / 2.0),
              1.0, 0.01);
}

TEST_F(RewardsFixture, PerfectParticipationEarns) {
  const auto d = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, full(),
                                   /*in_leak=*/false);
  EXPECT_GT(d, 0);
  // Exactly (14 + 26 + 14)/64 of the base reward.
  const auto base =
      static_cast<std::int64_t>(rewards.base_reward(ValidatorIndex{0},
                                                    Epoch{1}).value());
  EXPECT_EQ(d, base * 14 / 64 + base * 26 / 64 + base * 14 / 64);
}

TEST_F(RewardsFixture, MissedAttestationPenalized) {
  const auto d = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, missed(),
                                   false);
  EXPECT_LT(d, 0);
  // Source + target penalized; head misses are not penalized.
  const auto base =
      static_cast<std::int64_t>(rewards.base_reward(ValidatorIndex{0},
                                                    Epoch{1}).value());
  EXPECT_EQ(d, -(base * 14 / 64 + base * 26 / 64));
}

TEST_F(RewardsFixture, LeakSuppressesRewardsKeepsPenalties) {
  const auto good = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, full(),
                                      /*in_leak=*/true);
  EXPECT_EQ(good, 0);  // perfect participation earns nothing in a leak
  const auto bad = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, missed(),
                                     /*in_leak=*/true);
  EXPECT_LT(bad, 0);  // misses still penalized
}

TEST_F(RewardsFixture, PartialParticipation) {
  Participation p;
  p.attested = true;
  p.timely_source = true;
  p.timely_target = false;  // wrong target: penalized
  p.timely_head = false;
  const auto d = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, p, false);
  const auto base =
      static_cast<std::int64_t>(rewards.base_reward(ValidatorIndex{0},
                                                    Epoch{1}).value());
  EXPECT_EQ(d, base * 14 / 64 - base * 26 / 64);
  EXPECT_LT(d, 0);  // target dominates source
}

TEST_F(RewardsFixture, ApplyMutatesRegistry) {
  const auto before = reg.at(ValidatorIndex{0}).balance;
  const auto d =
      rewards.apply(reg, ValidatorIndex{0}, Epoch{1}, full(), false);
  EXPECT_GT(d, 0);
  EXPECT_EQ(reg.at(ValidatorIndex{0}).balance.value(),
            before.value() + static_cast<std::uint64_t>(d));
  const auto d2 =
      rewards.apply(reg, ValidatorIndex{1}, Epoch{1}, missed(), false);
  EXPECT_LT(d2, 0);
  EXPECT_LT(reg.at(ValidatorIndex{1}).balance, before);
}

TEST_F(RewardsFixture, AttestationPenaltiesSmallerThanLeakPenalties) {
  // The paper's rationale for focusing on inactivity penalties: at
  // realistic network scale (many validators, so base rewards are
  // small) an inactive validator's per-epoch inactivity penalty soon
  // dwarfs its attestation penalty.  With 10k validators and 100 epochs
  // of inactivity (score 400): I*s/2^26 vs (40/64) * base_reward.
  ValidatorRegistry big(10000);
  AttestationRewards big_rewards(big);
  const auto base = static_cast<double>(
      big_rewards.base_reward(ValidatorIndex{0}, Epoch{1}).value());
  const double attestation_penalty = base * 40.0 / 64.0;
  const double inactivity_penalty =
      400.0 * 32.0e9 / 67108864.0;  // score 400, 32 ETH, quotient 2^26
  EXPECT_GT(inactivity_penalty, attestation_penalty);
}

// Parameterized: net delta is monotone in participation quality.
class ParticipationOrder : public ::testing::TestWithParam<bool> {};

TEST_P(ParticipationOrder, MoreFlagsNeverWorse) {
  const bool in_leak = GetParam();
  ValidatorRegistry reg(16);
  AttestationRewards rewards(reg);
  const Participation levels[] = {
      {},                            // missed
      {true, true, false, false},    // source only
      {true, true, true, false},     // source + target
      {true, true, true, true},      // everything
  };
  std::int64_t prev = std::numeric_limits<std::int64_t>::min();
  for (const auto& p : levels) {
    const auto d = rewards.net_delta(ValidatorIndex{0}, Epoch{1}, p, in_leak);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(LeakOnOff, ParticipationOrder, ::testing::Bool());

}  // namespace
}  // namespace leak::penalties
