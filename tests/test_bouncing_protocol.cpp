// Tests for the protocol-view bouncing attack simulator (Section 5.3
// mechanics end to end).
#include <gtest/gtest.h>

#include <cmath>

#include "src/bouncing/markov.hpp"
#include "src/sim/bouncing_protocol_sim.hpp"

namespace leak::sim {
namespace {

BouncingProtocolConfig base() {
  BouncingProtocolConfig cfg;
  cfg.n_validators = 300;
  cfg.beta0 = 0.33;
  cfg.p0 = 0.52;
  cfg.max_epochs = 500;
  cfg.seed = 17;
  return cfg;
}

TEST(BouncingProtocol, ConfigSatisfiesEq14) {
  const auto cfg = base();
  EXPECT_TRUE(bouncing::attack_feasible(cfg.p0, cfg.beta0));
}

TEST(BouncingProtocol, JustificationsAlternateWhileAttackRuns) {
  const auto r = run_bouncing_protocol(base());
  EXPECT_TRUE(r.alternation_held);
  // One justification per completed attack epoch (the final epoch may
  // have failed to justify, depending on how the attack ended).
  const auto total = r.justifications_branch1 + r.justifications_branch2;
  EXPECT_LE(total, r.duration);
  EXPECT_GE(total + 1, r.duration);
  // Alternation: the counts differ by at most one.
  const auto j1 = r.justifications_branch1;
  const auto j2 = r.justifications_branch2;
  EXPECT_LE(j1 > j2 ? j1 - j2 : j2 - j1, 1u);
}

TEST(BouncingProtocol, TypicallyDiesByLotteryQuickly) {
  // With beta0 = 0.33 and j = 8 the continuation probability is ~0.96
  // per epoch: mean lifetime ~ 25 epochs, far from 4000.
  const auto agg = run_bouncing_protocol_ensemble(base(), 60);
  EXPECT_GT(agg.prob_ended_by_lottery, 0.9);
  EXPECT_LT(agg.mean_duration, 150.0);
  EXPECT_GT(agg.mean_duration, 2.0);
  // And within such short lifetimes beta never crosses 1/3.
  EXPECT_LT(agg.prob_beta_exceeded, 0.05);
}

TEST(BouncingProtocol, MeanDurationTracksGeometricModel) {
  auto cfg = base();
  cfg.max_epochs = 2000;
  const auto agg = run_bouncing_protocol_ensemble(cfg, 120);
  // Continuation uses the *lottery over validators*; with homogeneous
  // stakes this is ~1-(1-beta0)^j per epoch.
  const double p_die = std::pow(1.0 - cfg.beta0, cfg.j);
  const double expect = (1.0 - p_die) / p_die;
  EXPECT_NEAR(agg.mean_duration, expect, expect * 0.45);
}

TEST(BouncingProtocol, FewerSlotsShorterAttack) {
  auto a = base();
  a.j = 2;
  auto b = base();
  b.j = 16;
  const auto ra = run_bouncing_protocol_ensemble(a, 40);
  const auto rb = run_bouncing_protocol_ensemble(b, 40);
  EXPECT_LT(ra.mean_duration, rb.mean_duration);
}

TEST(BouncingProtocol, InfeasibleSplitFailsJustification) {
  // p0 below the Eq 14 lower bound: released votes cannot reach 2/3 and
  // the attack collapses immediately with kJustificationFailed.
  auto cfg = base();
  cfg.p0 = 0.40;
  ASSERT_FALSE(bouncing::attack_feasible(cfg.p0, cfg.beta0));
  const auto r = run_bouncing_protocol(cfg);
  if (r.end == BouncingProtocolResult::End::kJustificationFailed) {
    EXPECT_LE(r.duration, 5u);
  } else {
    // The lottery may fail first; either way the attack dies fast.
    EXPECT_EQ(r.end, BouncingProtocolResult::End::kLotteryFailed);
  }
}

TEST(BouncingProtocol, BetaPeakBoundedDuringShortAttacks) {
  const auto r = run_bouncing_protocol(base());
  EXPECT_GT(r.beta_peak, 0.30);  // starts at ~beta0
  EXPECT_LT(r.beta_peak, 0.40);  // no time to drift far
}

TEST(BouncingProtocol, DeterministicPerSeed) {
  const auto a = run_bouncing_protocol(base());
  const auto b = run_bouncing_protocol(base());
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.beta_peak, b.beta_peak);
}

TEST(BouncingProtocol, InvalidConfigThrows) {
  BouncingProtocolConfig cfg;
  cfg.n_validators = 0;
  EXPECT_THROW(run_bouncing_protocol(cfg), std::invalid_argument);
  EXPECT_THROW(run_bouncing_protocol_ensemble(base(), 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace leak::sim
