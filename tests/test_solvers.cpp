// Tests for the threshold solvers: Eq 6 / Eq 9 closed forms, the Eq 10
// numeric root, the GST safety bound and the Figure 7 frontier.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/solvers.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(HonestTime, Eq6ClosedForm) {
  // p0 = 0.6: t = sqrt(2^25 [ln(0.8) - ln(0.6)]) ~ 3107.
  EXPECT_NEAR(time_to_supermajority_honest(0.6, kPaper), 3106.9, 1.0);
}

TEST(HonestTime, CapAtEjectionForEvenSplit) {
  // p0 <= 0.5 can only regain 2/3 via the ejection jump at 4685.
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  for (double p0 : {0.2, 0.35, 0.5}) {
    EXPECT_DOUBLE_EQ(time_to_supermajority_honest(p0, kPaper), t_eject);
  }
}

TEST(HonestTime, AlreadySupermajority) {
  EXPECT_DOUBLE_EQ(time_to_supermajority_honest(0.7, kPaper), 0.0);
  EXPECT_DOUBLE_EQ(time_to_supermajority_honest(2.0 / 3.0, kPaper), 0.0);
}

TEST(HonestTime, RatioActuallyCrossesAtSolution) {
  const double p0 = 0.55;
  const double t = time_to_supermajority_honest(p0, kPaper);
  EXPECT_LT(active_ratio_honest(t - 5.0, p0, kPaper), 2.0 / 3.0);
  EXPECT_GE(active_ratio_honest(t + 5.0, p0, kPaper), 2.0 / 3.0);
}

TEST(SlashingTime, Table2Values) {
  // Table 2 (p0 = 0.5): the paper's reported epochs.
  EXPECT_NEAR(time_to_supermajority_slashing(0.5, 0.0, kPaper), 4685.0, 1.0);
  EXPECT_NEAR(time_to_supermajority_slashing(0.5, 0.10, kPaper), 4066.0, 1.5);
  EXPECT_NEAR(time_to_supermajority_slashing(0.5, 0.15, kPaper), 3622.0, 1.5);
  EXPECT_NEAR(time_to_supermajority_slashing(0.5, 0.20, kPaper), 3107.0, 1.5);
  EXPECT_NEAR(time_to_supermajority_slashing(0.5, 0.33, kPaper), 502.0, 1.5);
}

TEST(SlashingTime, ApproachesZeroNearOneThird) {
  EXPECT_LT(time_to_supermajority_slashing(0.5, 0.333, kPaper), 200.0);
  EXPECT_DOUBLE_EQ(time_to_supermajority_slashing(0.5, 1.0 / 3.0, kPaper),
                   0.0);
}

TEST(SlashingTime, MonotoneDecreasingInBeta) {
  double prev = 1e9;
  for (double b0 = 0.0; b0 < 0.33; b0 += 0.03) {
    const double t = time_to_supermajority_slashing(0.5, b0, kPaper);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(SemiActiveTime, Table3KeyValue) {
  // The paper's numeric solution: 555.65 epochs at (0.5, 0.33).
  EXPECT_NEAR(time_to_supermajority_semiactive(0.5, 0.33, kPaper), 555.65,
              1.0);
}

TEST(SemiActiveTime, SlowerThanSlashing) {
  for (double b0 : {0.1, 0.2, 0.33}) {
    EXPECT_GT(time_to_supermajority_semiactive(0.5, b0, kPaper),
              time_to_supermajority_slashing(0.5, b0, kPaper));
  }
}

TEST(SemiActiveTime, RootSolvesEq10) {
  const double b0 = 0.25;
  const double t = time_to_supermajority_semiactive(0.5, b0, kPaper);
  EXPECT_NEAR(active_ratio_semiactive(t, 0.5, b0, kPaper), 2.0 / 3.0, 1e-6);
}

TEST(ConflictingFinalization, HonestBaselineIs4686) {
  // "Finality on both chains is achieved precisely at 4686 epochs."
  const double t = conflicting_finalization_epoch(
      0.5, 0.0, ByzantineStrategy::kNone, kPaper);
  EXPECT_NEAR(t, 4686.0, 1.5);
}

TEST(ConflictingFinalization, SlowerBranchGoverns) {
  // Uneven split: branch with p0 = 0.4 regains 2/3 only at ejection,
  // branch with 0.6 at ~3107; conflict completes with the slower one.
  const double t = conflicting_finalization_epoch(
      0.6, 0.0, ByzantineStrategy::kNone, kPaper);
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  EXPECT_NEAR(t, t_eject + 1.0, 1e-9);
}

TEST(ConflictingFinalization, ByzantineSpeedup) {
  // beta0 = 0.33 speeds conflicting finalization ~10x (slashable) and
  // ~8x (semi-active) vs the honest baseline (paper Section 5.2).
  const double honest = conflicting_finalization_epoch(
      0.5, 0.0, ByzantineStrategy::kNone, kPaper);
  const double slash = conflicting_finalization_epoch(
      0.5, 0.33, ByzantineStrategy::kSlashable, kPaper);
  const double semi = conflicting_finalization_epoch(
      0.5, 0.33, ByzantineStrategy::kSemiActive, kPaper);
  EXPECT_NEAR(honest / slash, 9.3, 0.5);
  EXPECT_NEAR(honest / semi, 8.4, 0.5);
  EXPECT_GT(slash, 0.0);
  EXPECT_GT(semi, slash);
}

TEST(GstBound, PaperValue) {
  EXPECT_NEAR(gst_safety_upper_bound(kPaper), 4686.0, 1.5);
}

TEST(GstBound, StatedThresholdValue) {
  // With the stated 16.75 threshold the bound shifts to ~4662.
  EXPECT_NEAR(gst_safety_upper_bound(AnalyticConfig::stated()), 4661.6, 1.5);
}

TEST(BetaThird, LowerBoundPaperValue) {
  // Figure 7: (p0, beta0) = (0.5, 0.2421).
  EXPECT_NEAR(beta0_lower_bound(0.5, kPaper), 0.2421, 5e-4);
}

TEST(BetaThird, ExceedsExactlyAtBound) {
  const double b = beta0_lower_bound(0.5, kPaper);
  EXPECT_TRUE(beta_exceeds_third(0.5, b + 1e-6, kPaper));
  EXPECT_FALSE(beta_exceeds_third(0.5, b - 1e-3, kPaper));
}

TEST(BetaThird, BoundGrowsWithP0) {
  // More honest actives on the branch -> more Byzantine stake needed.
  EXPECT_LT(beta0_lower_bound(0.3, kPaper), beta0_lower_bound(0.5, kPaper));
  EXPECT_LT(beta0_lower_bound(0.5, kPaper), beta0_lower_bound(0.7, kPaper));
}

TEST(Fig7, FrontierSymmetricAndOptimalAtHalf) {
  const auto pts = fig7_frontier({0.2, 0.35, 0.5, 0.65, 0.8}, kPaper);
  ASSERT_EQ(pts.size(), 5u);
  // Symmetry: both-branch frontier at p0 and 1-p0 agree.
  EXPECT_NEAR(pts[0].beta0_both, pts[4].beta0_both, 1e-12);
  EXPECT_NEAR(pts[1].beta0_both, pts[3].beta0_both, 1e-12);
  // Minimum at p0 = 0.5.
  for (const auto& p : pts) {
    EXPECT_GE(p.beta0_both + 1e-12, pts[2].beta0_both);
  }
  const auto opt = fig7_optimum(kPaper);
  EXPECT_DOUBLE_EQ(opt.p0, 0.5);
  EXPECT_NEAR(opt.beta0_both, 0.2421, 5e-4);
}

TEST(Fig7, BothBranchesRequireTheMax) {
  const auto pts = fig7_frontier({0.3}, kPaper);
  const auto& p = pts[0];
  EXPECT_DOUBLE_EQ(p.beta0_both,
                   std::max(p.beta0_branch1, p.beta0_branch2));
  // At the both-branch frontier, each branch individually exceeds 1/3.
  EXPECT_TRUE(beta_exceeds_third(0.3, p.beta0_both + 1e-9, kPaper));
  EXPECT_TRUE(beta_exceeds_third(0.7, p.beta0_both + 1e-9, kPaper));
}

// Parameterized consistency: for every (p0, beta0) pair the semi-active
// solver's root actually sits on the 2/3 level set (or at the ejection
// cap when the ratio never crosses before it).
class SemiActiveSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(SemiActiveSweep, RootOnLevelSetOrCap) {
  const auto [p0, b0] = GetParam();
  const double t = time_to_supermajority_semiactive(p0, b0, kPaper);
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  if (t < t_eject) {
    EXPECT_NEAR(active_ratio_semiactive(t, p0, b0, kPaper), 2.0 / 3.0, 1e-6);
  } else {
    EXPECT_DOUBLE_EQ(t, t_eject);
    EXPECT_LT(active_ratio_semiactive(t - 1.0, p0, b0, kPaper), 2.0 / 3.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SemiActiveSweep,
    ::testing::Values(std::pair{0.5, 0.05}, std::pair{0.5, 0.15},
                      std::pair{0.5, 0.25}, std::pair{0.5, 0.33},
                      std::pair{0.4, 0.2}, std::pair{0.3, 0.33},
                      std::pair{0.6, 0.1}, std::pair{0.2, 0.05}));

}  // namespace
}  // namespace leak::analytic
