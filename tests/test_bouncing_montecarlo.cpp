// Monte Carlo cross-validation of the Section 5.3 closed forms: the
// exact discrete protocol dynamics must agree with the censored
// log-normal law on medians and masses (the paper's Gaussian variance
// is documented to be conservative, so tolerances are on robust
// statistics, not tails).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/bouncing/distribution.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/support/env.hpp"
#include "src/support/stats.hpp"

namespace leak::bouncing {
namespace {

McConfig small_config() {
  McConfig cfg;
  cfg.paths = 2000;
  cfg.epochs = 7800;
  cfg.seed = 123;
  return cfg;
}

TEST(BouncingMc, GridValidation) {
  McConfig cfg = small_config();
  EXPECT_THROW(run_bouncing_mc(cfg, {}), std::invalid_argument);
  EXPECT_THROW(run_bouncing_mc(cfg, {100, 50}), std::invalid_argument);
  EXPECT_THROW(run_bouncing_mc(cfg, {100, 100}), std::invalid_argument);
  EXPECT_THROW(run_bouncing_mc(cfg, {90000}), std::invalid_argument);
}

TEST(BouncingMc, DeterministicForSeed) {
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(200);
  cfg.epochs = 500;
  const auto a = run_bouncing_mc(cfg, {100, 500});
  const auto b = run_bouncing_mc(cfg, {100, 500});
  EXPECT_EQ(a.stakes[1], b.stakes[1]);
}

TEST(BouncingMc, StakesWithinProtocolBounds) {
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(500);
  cfg.epochs = 4000;
  const auto r = run_bouncing_mc(cfg, {1000, 4000});
  for (const auto& snap : r.stakes) {
    for (double s : snap) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 32.0);
      // Censoring: nothing alive below the ejection threshold.
      if (s > 0.0) {
        EXPECT_GT(s, cfg.model.ejection_threshold);
      }
    }
  }
}

TEST(BouncingMc, EjectedFractionMonotone) {
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(1000);
  const auto r = run_bouncing_mc(cfg, {2000, 5000, 7000, 7800});
  for (std::size_t k = 1; k < r.ejected_fraction.size(); ++k) {
    EXPECT_GE(r.ejected_fraction[k], r.ejected_fraction[k - 1]);
  }
}

TEST(BouncingMc, MedianTracksSemiActiveDecay) {
  // The empirical median of surviving stakes at t = 4000 matches the
  // law's median (= the semi-active trajectory) within 1%.
  if (env::test_path_scale() < 1.0) {
    GTEST_SKIP() << "1% median tolerance needs the full 3000-path sample";
  }
  McConfig cfg = small_config();
  cfg.paths = 3000;
  cfg.epochs = 4000;
  const auto r = run_bouncing_mc(cfg, {4000});
  std::vector<double> alive;
  for (double s : r.stakes[0]) {
    if (s > 0.0) alive.push_back(s);
  }
  ASSERT_GT(alive.size(), 2500u);
  const double med = leak::quantile(alive, 0.5);
  const double semi =
      analytic::stake(analytic::Behavior::kSemiActive, 4000.0, cfg.model);
  EXPECT_NEAR(med / semi, 1.0, 0.01);
}

TEST(BouncingMc, EjectionWaveNearMedianCrossing) {
  // When the median trajectory reaches the ejection threshold
  // (epoch ~7650 in the paper config) roughly half the paths are gone.
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(2000);
  const auto r = run_bouncing_mc(cfg, {6000, 7650});
  EXPECT_LT(r.ejected_fraction[0], 0.25);
  EXPECT_GT(r.ejected_fraction[1], 0.25);
  EXPECT_LT(r.ejected_fraction[1], 0.75);
}

TEST(BouncingMc, CappedFractionVanishesLate) {
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(1000);
  cfg.epochs = 2000;
  const auto r = run_bouncing_mc(cfg, {50, 2000});
  EXPECT_GE(r.capped_fraction[0], 0.0);
  EXPECT_LT(r.capped_fraction[1], 0.01);
}

TEST(BouncingMc, ProbBetaNearHalfAtOneThird) {
  // Eq 24's P = 0.5 for beta0 = 1/3: the empirical exceedance frequency
  // sits near one half (the floored score walk shifts it slightly up).
  McConfig cfg = small_config();
  cfg.beta0 = 1.0 / 3.0;
  cfg.paths = env::scaled_count(3000);
  cfg.epochs = 3000;
  const auto r = run_bouncing_mc(cfg, {3000});
  EXPECT_NEAR(r.prob_beta_exceeds[0], 0.5, 0.12);
}

TEST(BouncingMc, ProbBetaNegligibleFarFromThird) {
  McConfig cfg = small_config();
  cfg.beta0 = 0.25;
  cfg.paths = env::scaled_count(1000);
  cfg.epochs = 3000;
  const auto r = run_bouncing_mc(cfg, {3000});
  EXPECT_LT(r.prob_beta_exceeds[0], 0.01);
}

TEST(BouncingMc, ProbBetaOrderedInBeta0) {
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(1500);
  cfg.epochs = 5000;
  double prev = 1.0;
  for (double b0 : {1.0 / 3.0, 0.33, 0.3}) {
    cfg.beta0 = b0;
    const auto r = run_bouncing_mc(cfg, {5000});
    EXPECT_LE(r.prob_beta_exceeds[0], prev + 0.02) << b0;
    prev = r.prob_beta_exceeds[0];
  }
}

TEST(BouncingMc, KsDistanceToCensoredLawBounded) {
  // Kolmogorov-Smirnov distance between the empirical stake sample and
  // the closed-form censored law.  The paper's Gaussian carries twice
  // the exact walk variance (see EXPERIMENTS.md), so the distance is
  // not statistical-noise small — but it stays well bounded, and this
  // test quantifies the documented deviation.
  McConfig cfg = small_config();
  cfg.paths = env::scaled_count(3000);
  cfg.epochs = 6000;
  const auto r = run_bouncing_mc(cfg, {6000});
  const StakeLaw law(cfg.p0, cfg.model);
  const double d = leak::ks_distance(r.stakes[0], [&](double s) {
    return law.cdf_censored(s, 6000.0);
  });
  EXPECT_LT(d, 0.2);
  EXPECT_GT(d, 0.001);  // and it is measurably nonzero (variance factor)
}

TEST(PopulationRun, BetaStartsAtBeta0AndStaysBounded) {
  PopulationRunConfig cfg;
  cfg.seed = 11;  // pinned: default, explicit for determinism
  cfg.beta0 = 0.33;
  cfg.epochs = 4000;
  cfg.honest_validators = 300;
  const auto r = run_population_bouncing(cfg);
  ASSERT_FALSE(r.beta_trajectory.empty());
  EXPECT_NEAR(r.beta_trajectory.front(), 0.33, 0.01);
  for (double b : r.beta_trajectory) {
    EXPECT_GT(b, 0.28);
    EXPECT_LT(b, 0.40);
  }
}

TEST(PopulationRun, TrajectoryLengthMatchesStride) {
  PopulationRunConfig cfg;
  cfg.seed = 11;  // pinned: default, explicit for determinism
  cfg.epochs = 1600;
  cfg.honest_validators = 50;
  const auto r = run_population_bouncing(cfg);
  EXPECT_EQ(r.beta_trajectory.size(), cfg.epochs / r.stride);
}

TEST(PopulationRun, SmallBetaNeverExceeds) {
  PopulationRunConfig cfg;
  cfg.seed = 11;  // pinned: default, explicit for determinism
  cfg.beta0 = 0.2;
  cfg.epochs = 4000;
  cfg.honest_validators = 100;
  const auto r = run_population_bouncing(cfg);
  EXPECT_EQ(r.first_exceed_epoch, -1);
}

TEST(PopulationRun, ExactThirdHoversAtThreshold) {
  // At beta0 = 1/3 the branch-level proportion oscillates around 1/3;
  // over a long horizon it crosses at least transiently.
  PopulationRunConfig cfg;
  cfg.beta0 = 1.0 / 3.0;
  cfg.epochs = 3000;
  cfg.honest_validators = 30;  // small population -> visible fluctuations
  cfg.seed = 5;
  const auto r = run_population_bouncing(cfg);
  double closest = 1.0;
  for (double b : r.beta_trajectory) {
    closest = std::min(closest, std::abs(b - 1.0 / 3.0));
  }
  EXPECT_LT(closest, 0.01);
}

}  // namespace
}  // namespace leak::bouncing
