// Tests for fork-choice extensions: proposer boost and equivocation
// discounting of slashed validators.
#include <gtest/gtest.h>

#include "src/chain/forkchoice.hpp"

namespace leak::chain {
namespace {

class BoostFixture : public ::testing::Test {
 protected:
  BoostFixture() : registry(10), fc(tree, registry) {}

  Block add(const Digest& parent, std::uint64_t slot, std::uint32_t p) {
    const Block b = Block::make(parent, Slot{slot}, ValidatorIndex{p});
    tree.insert(b);
    return b;
  }

  BlockTree tree;
  ValidatorRegistry registry;
  ForkChoice fc;
};

TEST_F(BoostFixture, BoostFlipsCloseRace) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  // 3 vs 2 votes for a.
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{1}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{2}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{3}, b.id, Slot{3});
  fc.on_attestation(ValidatorIndex{4}, b.id, Slot{3});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
  // A 40% boost (4 validators' worth out of 10) flips the race to b.
  fc.set_proposer_boost(b.id, 40);
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), b.id);
  fc.clear_proposer_boost();
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
}

TEST_F(BoostFixture, BoostAppliesToAncestors) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block a2 = add(a.id, 2, 1);
  fc.set_proposer_boost(a2.id, 40);
  // The boost weight counts inside every subtree containing a2.
  EXPECT_GT(fc.subtree_weight(a.id, Epoch{0}).value(), 0u);
  EXPECT_GT(fc.subtree_weight(a2.id, Epoch{0}).value(), 0u);
}

TEST_F(BoostFixture, BoostForUnknownBlockIgnored) {
  const Block a = add(tree.genesis_id(), 1, 0);
  fc.set_proposer_boost(crypto::sha256("never seen"), 40);
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
  EXPECT_EQ(fc.subtree_weight(a.id, Epoch{0}).value(), 0u);
}

TEST_F(BoostFixture, SlashedVotesDiscounted) {
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  fc.on_attestation(ValidatorIndex{0}, a.id, Slot{3});
  fc.on_attestation(ValidatorIndex{1}, b.id, Slot{3});
  fc.on_attestation(ValidatorIndex{2}, b.id, Slot{3});
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), b.id);
  // Slashing the b voters removes their weight even while they remain
  // formally in the registry (exit is delayed).
  registry.at(ValidatorIndex{1}).slashed = true;
  registry.at(ValidatorIndex{2}).slashed = true;
  EXPECT_EQ(fc.head(tree.genesis_id(), Epoch{0}), a.id);
}

TEST_F(BoostFixture, EquivocationDefenseEndToEnd) {
  // An equivocator voted both sides via two views; once slashed its
  // influence vanishes from both subtrees.
  const Block a = add(tree.genesis_id(), 1, 0);
  const Block b = add(tree.genesis_id(), 2, 1);
  fc.on_attestation(ValidatorIndex{5}, a.id, Slot{3});
  registry.at(ValidatorIndex{5}).slashed = true;
  EXPECT_EQ(fc.subtree_weight(a.id, Epoch{0}).value(), 0u);
  EXPECT_EQ(fc.subtree_weight(b.id, Epoch{0}).value(), 0u);
}

}  // namespace
}  // namespace leak::chain
