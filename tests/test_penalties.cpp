// Tests for the inactivity-leak engine and slashing.
#include <gtest/gtest.h>

#include <cmath>

#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/penalties/slashing.hpp"

namespace leak::penalties {
namespace {

using chain::ValidatorRegistry;

TEST(LeakTrigger, StartsAfterFourEpochsWithoutFinality) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  EXPECT_FALSE(tracker.is_leaking(Epoch{4}, Epoch{0}));
  EXPECT_TRUE(tracker.is_leaking(Epoch{5}, Epoch{0}));
  EXPECT_FALSE(tracker.is_leaking(Epoch{10}, Epoch{6}));
  EXPECT_THROW(static_cast<void>(tracker.is_leaking(Epoch{1}, Epoch{2})),
               std::invalid_argument);
}

TEST(Scores, ActiveDecrementsInactiveBumps) {
  ValidatorRegistry reg(2);
  InactivityTracker tracker(reg, SpecConfig::paper());
  // During a leak: active -1, inactive +4 (Eq 1).
  reg.at(ValidatorIndex{0}).inactivity_score = 10;
  reg.at(ValidatorIndex{1}).inactivity_score = 10;
  tracker.process_epoch(Epoch{10}, Epoch{0}, {true, false});
  EXPECT_EQ(reg.at(ValidatorIndex{0}).inactivity_score, 9u);
  EXPECT_EQ(reg.at(ValidatorIndex{1}).inactivity_score, 14u);
}

TEST(Scores, FlooredAtZero) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  tracker.process_epoch(Epoch{10}, Epoch{0}, {true});
  EXPECT_EQ(reg.at(ValidatorIndex{0}).inactivity_score, 0u);
}

TEST(Scores, RecoveryOutsideLeak) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  reg.at(ValidatorIndex{0}).inactivity_score = 20;
  // Not leaking: inactive +4 then recovery -16 => net -12.
  const auto rep = tracker.process_epoch(Epoch{3}, Epoch{0}, {false});
  EXPECT_FALSE(rep.leaking);
  EXPECT_EQ(reg.at(ValidatorIndex{0}).inactivity_score, 8u);
  // And no penalties outside the leak.
  EXPECT_EQ(rep.total_penalty.value(), 0u);
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 32.0);
}

TEST(Penalty, MatchesEq2) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  reg.at(ValidatorIndex{0}).inactivity_score = 100;
  const auto before = reg.at(ValidatorIndex{0}).balance.value();
  tracker.process_epoch(Epoch{10}, Epoch{0}, {false});
  const auto after = reg.at(ValidatorIndex{0}).balance.value();
  // Eq 2: penalty = I(t-1) * s(t-1) / 2^26.
  const auto expect = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(before) * 100) / (1ULL << 26));
  EXPECT_EQ(before - after, expect);
}

TEST(Penalty, ActiveValidatorNeverPenalized) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  for (std::uint64_t t = 5; t < 500; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {true});
  }
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 32.0);
}

TEST(Penalty, InactiveStakeTracksClosedForm) {
  // Discrete protocol arithmetic vs s0 e^{-t^2/2^25} within 0.2%.
  ValidatorRegistry reg(1);
  SpecConfig spec = SpecConfig::paper();
  spec.ejection_balance = Gwei{0};  // disable ejection for this check
  InactivityTracker tracker(reg, spec);
  const std::uint64_t horizon = 2000;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {false});
  }
  const double expect =
      32.0 * std::exp(-static_cast<double>(horizon * horizon) /
                      std::pow(2.0, 25));
  EXPECT_NEAR(reg.at(ValidatorIndex{0}).balance.eth() / expect, 1.0, 2e-3);
}

TEST(Penalty, EjectionAtThreshold) {
  ValidatorRegistry reg(1);
  InactivityTracker tracker(reg, SpecConfig::paper());
  std::int64_t ejected_at = -1;
  for (std::uint64_t t = 1; t <= 6000 && ejected_at < 0; ++t) {
    const auto rep = tracker.process_epoch(Epoch{t}, Epoch{0}, {false});
    if (!rep.ejected.empty()) ejected_at = static_cast<std::int64_t>(t);
  }
  // Continuous model with threshold 16.75 predicts epoch 4661.
  ASSERT_GT(ejected_at, 0);
  EXPECT_NEAR(static_cast<double>(ejected_at), 4661.0, 8.0);
}

TEST(Penalty, ExitedValidatorsUntouched) {
  ValidatorRegistry reg(2);
  InactivityTracker tracker(reg, SpecConfig::paper());
  reg.eject(ValidatorIndex{0}, Epoch{1});
  reg.at(ValidatorIndex{0}).inactivity_score = 50;
  tracker.process_epoch(Epoch{10}, Epoch{0}, {false, false});
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 32.0);
  EXPECT_EQ(reg.at(ValidatorIndex{0}).inactivity_score, 50u);
}

TEST(Penalty, ActivityVectorSizeChecked) {
  ValidatorRegistry reg(2);
  InactivityTracker tracker(reg, SpecConfig::paper());
  EXPECT_THROW(tracker.process_epoch(Epoch{10}, Epoch{0}, {true}),
               std::invalid_argument);
}

TEST(Penalty, SemiActiveSlowerThanInactive) {
  ValidatorRegistry reg(2);
  SpecConfig spec = SpecConfig::paper();
  spec.ejection_balance = Gwei{0};
  InactivityTracker tracker(reg, spec);
  for (std::uint64_t t = 1; t <= 3000; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {t % 2 == 0, false});
  }
  const double semi = reg.at(ValidatorIndex{0}).balance.eth();
  const double inact = reg.at(ValidatorIndex{1}).balance.eth();
  EXPECT_GT(semi, inact);
  EXPECT_LT(semi, 32.0);
  // Closed form for semi-active: 32 e^{-3 t^2 / 2^28}.
  const double expect = 32.0 * std::exp(-3.0 * 3000.0 * 3000.0 /
                                        std::pow(2.0, 28));
  EXPECT_NEAR(semi / expect, 1.0, 5e-3);
}

TEST(Slashing, DetectorFindsDoubleVote) {
  SlashingDetector det;
  chain::Attestation a, b;
  a.attester = b.attester = ValidatorIndex{3};
  a.target.epoch = b.target.epoch = Epoch{7};
  a.target.block = crypto::sha256("A");
  b.target.block = crypto::sha256("B");
  EXPECT_FALSE(det.observe(a).has_value());
  const auto proof = det.observe(b);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->offender(), ValidatorIndex{3});
}

TEST(Slashing, DetectorIgnoresHonestHistory) {
  SlashingDetector det;
  for (std::uint64_t e = 1; e <= 50; ++e) {
    chain::Attestation a;
    a.attester = ValidatorIndex{1};
    a.source.epoch = Epoch{e - 1};
    a.target.epoch = Epoch{e};
    a.target.block = crypto::sha256("chain" + std::to_string(e));
    EXPECT_FALSE(det.observe(a).has_value()) << e;
  }
  EXPECT_EQ(det.observed_count(ValidatorIndex{1}), 50u);
}

TEST(Slashing, DetectorFindsSurround) {
  SlashingDetector det;
  chain::Attestation inner, outer;
  inner.attester = outer.attester = ValidatorIndex{5};
  inner.source.epoch = Epoch{3};
  inner.target.epoch = Epoch{4};
  outer.source.epoch = Epoch{2};
  outer.target.epoch = Epoch{6};
  det.observe(inner);
  EXPECT_TRUE(det.observe(outer).has_value());
}

TEST(Slashing, ApplyBurnsAndEjects) {
  ValidatorRegistry reg(2);
  const Gwei burned =
      apply_slashing(reg, ValidatorIndex{0}, Epoch{4}, SpecConfig::paper());
  EXPECT_DOUBLE_EQ(burned.eth(), 1.0);  // 32/32
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 31.0);
  EXPECT_TRUE(reg.at(ValidatorIndex{0}).slashed);
  EXPECT_FALSE(reg.is_active(ValidatorIndex{0}, Epoch{4}));
}

TEST(Slashing, Idempotent) {
  ValidatorRegistry reg(1);
  apply_slashing(reg, ValidatorIndex{0}, Epoch{4}, SpecConfig::paper());
  const Gwei again =
      apply_slashing(reg, ValidatorIndex{0}, Epoch{5}, SpecConfig::paper());
  EXPECT_EQ(again.value(), 0u);
  EXPECT_DOUBLE_EQ(reg.at(ValidatorIndex{0}).balance.eth(), 31.0);
}

// Parameterized sweep: the discrete inactive trajectory matches the
// closed form across quotients (ablation configs).
class QuotientSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuotientSweep, DiscreteMatchesClosedForm) {
  const std::uint64_t quotient = GetParam();
  ValidatorRegistry reg(1);
  SpecConfig spec = SpecConfig::paper();
  spec.inactivity_penalty_quotient = quotient;
  spec.ejection_balance = Gwei{0};
  InactivityTracker tracker(reg, spec);
  const std::uint64_t horizon = 800;
  for (std::uint64_t t = 1; t <= horizon; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, {false});
  }
  const double expect =
      32.0 * std::exp(-2.0 * static_cast<double>(horizon * horizon) /
                      static_cast<double>(quotient));
  EXPECT_NEAR(reg.at(ValidatorIndex{0}).balance.eth() / expect, 1.0, 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Quotients, QuotientSweep,
                         ::testing::Values(1ULL << 24, 3ULL << 24,
                                           1ULL << 26));

}  // namespace
}  // namespace leak::penalties
