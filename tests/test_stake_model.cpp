// Tests for the Section 4.3 stake trajectories: closed forms, discrete
// recurrences, ODE agreement and ejection epochs (Figure 2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/stake_model.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(ScoreSlope, PaperValues) {
  EXPECT_DOUBLE_EQ(score_slope(Behavior::kActive, kPaper), 0.0);
  EXPECT_DOUBLE_EQ(score_slope(Behavior::kSemiActive, kPaper), 1.5);
  EXPECT_DOUBLE_EQ(score_slope(Behavior::kInactive, kPaper), 4.0);
}

TEST(Stake, ActiveIsConstant) {
  for (double t : {0.0, 100.0, 5000.0, 10000.0}) {
    EXPECT_DOUBLE_EQ(stake(Behavior::kActive, t, kPaper), 32.0);
  }
}

TEST(Stake, InactiveClosedForm) {
  // s(t) = 32 e^{-t^2/2^25} (paper Section 4.3(c)).
  for (double t : {100.0, 1000.0, 3000.0}) {
    const double expect = 32.0 * std::exp(-t * t / std::pow(2.0, 25));
    EXPECT_NEAR(stake(Behavior::kInactive, t, kPaper), expect, 1e-12);
  }
}

TEST(Stake, SemiActiveClosedForm) {
  // s(t) = 32 e^{-3 t^2 / 2^28} (paper Section 4.3(b)).
  for (double t : {100.0, 1000.0, 5000.0}) {
    const double expect = 32.0 * std::exp(-3.0 * t * t / std::pow(2.0, 28));
    EXPECT_NEAR(stake(Behavior::kSemiActive, t, kPaper), expect, 1e-12);
  }
}

TEST(Stake, OrderingActiveSemiInactive) {
  for (double t : {10.0, 500.0, 2500.0}) {
    EXPECT_GT(stake(Behavior::kActive, t, kPaper),
              stake(Behavior::kSemiActive, t, kPaper));
    EXPECT_GT(stake(Behavior::kSemiActive, t, kPaper),
              stake(Behavior::kInactive, t, kPaper));
  }
}

TEST(Stake, OdeMatchesClosedForm) {
  for (const Behavior b :
       {Behavior::kActive, Behavior::kSemiActive, Behavior::kInactive}) {
    for (double t : {500.0, 2000.0, 4000.0}) {
      EXPECT_NEAR(stake_ode(b, t, kPaper) / stake(b, t, kPaper), 1.0, 1e-6);
    }
  }
}

TEST(Ejection, PaperEpochs) {
  // The paper reports 4685 (inactive) and 7652 (semi-active); the
  // calibrated paper() config reproduces both to the epoch.
  EXPECT_NEAR(ejection_epoch(Behavior::kInactive, kPaper), 4685.0, 1.0);
  EXPECT_NEAR(ejection_epoch(Behavior::kSemiActive, kPaper), 7652.0, 3.0);
  EXPECT_TRUE(std::isinf(ejection_epoch(Behavior::kActive, kPaper)));
}

TEST(Ejection, StatedThresholdEpochs) {
  // With the literally stated 16.75 ETH threshold the closed forms give
  // 4661 / 7611 — the calibration gap documented in DESIGN.md.
  const AnalyticConfig stated = AnalyticConfig::stated();
  EXPECT_NEAR(ejection_epoch(Behavior::kInactive, stated), 4660.6, 1.0);
  EXPECT_NEAR(ejection_epoch(Behavior::kSemiActive, stated), 7610.7, 1.0);
}

TEST(Ejection, StakeWithEjectionZeroesOut) {
  const double t_eject = ejection_epoch(Behavior::kInactive, kPaper);
  EXPECT_GT(stake_with_ejection(Behavior::kInactive, t_eject - 1.0, kPaper),
            0.0);
  EXPECT_DOUBLE_EQ(
      stake_with_ejection(Behavior::kInactive, t_eject + 1.0, kPaper), 0.0);
}

TEST(Discrete, InactiveMatchesClosedFormWithin) {
  const auto traj = simulate_discrete(Behavior::kInactive, 4000, kPaper);
  for (std::size_t t : {500u, 1500u, 3000u}) {
    const double closed = stake(Behavior::kInactive, static_cast<double>(t),
                                kPaper);
    EXPECT_NEAR(traj.stake[t] / closed, 1.0, 2e-3) << t;
  }
}

TEST(Discrete, SemiActiveMatchesClosedFormWithin) {
  const auto traj = simulate_discrete(Behavior::kSemiActive, 6000, kPaper);
  for (std::size_t t : {1000u, 3000u, 5000u}) {
    const double closed = stake(Behavior::kSemiActive,
                                static_cast<double>(t), kPaper);
    EXPECT_NEAR(traj.stake[t] / closed, 1.0, 5e-3) << t;
  }
}

TEST(Discrete, ActiveKeepsFullStake) {
  const auto traj = simulate_discrete(Behavior::kActive, 100, kPaper);
  EXPECT_DOUBLE_EQ(traj.stake.back(), 32.0);
  EXPECT_EQ(traj.ejection_epoch, -1);
}

TEST(Discrete, EjectionEpochCloseToContinuous) {
  const auto traj = simulate_discrete(Behavior::kInactive, 6000, kPaper);
  ASSERT_GT(traj.ejection_epoch, 0);
  EXPECT_NEAR(static_cast<double>(traj.ejection_epoch),
              ejection_epoch(Behavior::kInactive, kPaper), 10.0);
}

TEST(Discrete, ScoreFlooredAtZero) {
  // Alternating activity starting active: score dips to 0, never below.
  std::vector<std::uint8_t> active(100);
  for (std::size_t t = 0; t < 100; ++t) active[t] = (t % 2 == 0);
  const auto traj = simulate_discrete(active, kPaper);
  for (const double s : traj.score) EXPECT_GE(s, 0.0);
}

TEST(Discrete, MonotoneNonIncreasingStake) {
  const auto traj = simulate_discrete(Behavior::kSemiActive, 3000, kPaper);
  for (std::size_t t = 1; t < traj.stake.size(); ++t) {
    EXPECT_LE(traj.stake[t], traj.stake[t - 1]);
  }
}

// Property sweep across behaviours and configs: discrete trajectory and
// closed form must stay within 1%.
struct SweepCase {
  Behavior behavior;
  AnalyticConfig cfg;
  std::size_t horizon;
};

class StakeSweep : public ::testing::TestWithParam<int> {
 protected:
  static SweepCase get(int i) {
    switch (i) {
      case 0: return {Behavior::kInactive, AnalyticConfig::paper(), 3000};
      case 1: return {Behavior::kSemiActive, AnalyticConfig::paper(), 5000};
      case 2: return {Behavior::kInactive, AnalyticConfig::mainnet(), 1500};
      case 3: return {Behavior::kSemiActive, AnalyticConfig::mainnet(), 3000};
      case 4: return {Behavior::kInactive, AnalyticConfig::stated(), 3000};
      default: return {Behavior::kActive, AnalyticConfig::paper(), 100};
    }
  }
};

TEST_P(StakeSweep, DiscreteVsClosedForm) {
  const SweepCase c = get(GetParam());
  AnalyticConfig cfg = c.cfg;
  cfg.ejection_threshold = 0.0;  // compare trajectories without ejection
  const auto traj = simulate_discrete(c.behavior, c.horizon, cfg);
  const double closed =
      stake(c.behavior, static_cast<double>(c.horizon), cfg);
  EXPECT_NEAR(traj.stake[c.horizon] / closed, 1.0, 1e-2);
}

INSTANTIATE_TEST_SUITE_P(Cases, StakeSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace leak::analytic
