// Tests for the bouncing attack feasibility conditions (Eq 14), the
// continuation probability and the Eq 15 two-epoch increment law.
#include <gtest/gtest.h>

#include <cmath>

#include "src/bouncing/markov.hpp"

namespace leak::bouncing {
namespace {

TEST(Feasibility, IntervalMatchesEq14) {
  const auto iv = feasible_p0_interval(0.2);
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->first, (2.0 - 0.6) / (3.0 * 0.8), 1e-12);
  EXPECT_NEAR(iv->second, 2.0 / (3.0 * 0.8), 1e-12);
}

TEST(Feasibility, SmallBetaForcesP0NearTwoThirds) {
  // "the closer beta0 is to 0, the closer p0 has to be to 2/3".
  const auto iv = feasible_p0_interval(0.01);
  ASSERT_TRUE(iv.has_value());
  EXPECT_NEAR(iv->first, 2.0 / 3.0, 0.02);
  EXPECT_NEAR(iv->second, 2.0 / 3.0, 0.02);
}

TEST(Feasibility, InteriorPointSatisfiesBothConditions) {
  for (double b0 : {0.1, 0.2, 0.33}) {
    const auto iv = feasible_p0_interval(b0);
    ASSERT_TRUE(iv.has_value());
    const double mid = 0.5 * (iv->first + iv->second);
    EXPECT_TRUE(attack_feasible(mid, b0));
    EXPECT_FALSE(attack_feasible(iv->first - 0.01, b0));
    EXPECT_FALSE(attack_feasible(iv->second + 0.01, b0));
  }
}

TEST(Feasibility, BadBetaThrows) {
  EXPECT_THROW(feasible_p0_interval(-0.1), std::invalid_argument);
  EXPECT_THROW(feasible_p0_interval(1.0), std::invalid_argument);
}

TEST(Continuation, PaperUpperBoundValue) {
  // (1 - (1-b0)^8)^7000 = 1.01e-121 for b0 = 1/3 (Section 5.3).
  const double p = continuation_probability(1.0 / 3.0, 8, 7000);
  EXPECT_NEAR(std::log10(p), -121.0, 0.5);
}

TEST(Continuation, OneEpochOneSlot) {
  EXPECT_NEAR(continuation_probability(0.25, 1, 1), 0.25, 1e-12);
}

TEST(Continuation, MoreSlotsHelpAttacker) {
  EXPECT_LT(continuation_probability(0.2, 2, 100),
            continuation_probability(0.2, 8, 100));
}

TEST(Continuation, ZeroSlotsKillsAttack) {
  EXPECT_DOUBLE_EQ(continuation_probability(0.3, 0, 5), 0.0);
  EXPECT_THROW(continuation_probability(0.3, -1, 5), std::invalid_argument);
}

TEST(TwoEpoch, MatchesEq15) {
  const auto inc = two_epoch_increment(0.3);
  EXPECT_NEAR(inc.p_plus8, 0.21, 1e-12);
  EXPECT_NEAR(inc.p_plus3, 0.09 + 0.49, 1e-12);
  EXPECT_NEAR(inc.p_minus2, 0.21, 1e-12);
  EXPECT_NEAR(inc.p_plus8 + inc.p_plus3 + inc.p_minus2, 1.0, 1e-12);
}

TEST(TwoEpoch, MeanIsThreeForAnyP0) {
  // E[increment over 2 epochs] = 3 regardless of p0 (hence V = 3/2).
  for (double p0 : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const auto inc = two_epoch_increment(p0);
    const double mean =
        8.0 * inc.p_plus8 + 3.0 * inc.p_plus3 - 2.0 * inc.p_minus2;
    EXPECT_NEAR(mean, 3.0, 1e-12) << p0;
  }
}

TEST(TwoEpoch, VarianceIs50P0Q) {
  for (double p0 : {0.2, 0.5, 0.8}) {
    const auto inc = two_epoch_increment(p0);
    const double m = 3.0;
    const double var = 64.0 * inc.p_plus8 + 9.0 * inc.p_plus3 +
                       4.0 * inc.p_minus2 - m * m;
    EXPECT_NEAR(var, 50.0 * p0 * (1.0 - p0), 1e-9) << p0;
  }
}

TEST(BranchSamplerTest, FrequencyMatchesP0) {
  BranchSampler s(0.7, Rng{42});
  int on_a = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) on_a += s.on_branch_a();
  EXPECT_NEAR(static_cast<double>(on_a) / n, 0.7, 0.01);
}

}  // namespace
}  // namespace leak::bouncing
