// Tests for SHA-256 (against FIPS vectors), the simulated signature
// scheme, aggregation and Merkle proofs.
#include <gtest/gtest.h>

#include "src/crypto/keys.hpp"
#include "src/crypto/merkle.hpp"
#include "src/crypto/sha256.hpp"

namespace leak::crypto {
namespace {

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(to_hex(sha256(std::string_view{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(to_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(to_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(h.finalize(), sha256("hello world"));
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64-byte message exercises the padding-into-second-block path.
  const std::string m(64, 'x');
  Sha256 h;
  h.update(m);
  EXPECT_EQ(h.finalize(), sha256(m));
  // 55/56/57 bytes bracket the length-field boundary.
  for (std::size_t len : {55u, 56u, 57u, 63u, 65u}) {
    const std::string s(len, 'y');
    Sha256 h2;
    h2.update(s);
    EXPECT_EQ(h2.finalize(), sha256(s)) << len;
  }
}

TEST(Sha256Test, ShortIdIsPrefix) {
  const Digest d = sha256("abc");
  const std::uint64_t id = short_id(d);
  EXPECT_EQ(id >> 56, d[0]);
  EXPECT_EQ((id >> 48) & 0xff, d[1]);
}

TEST(Keys, DeterministicDerivation) {
  const auto a = KeyPair::derive(ValidatorIndex{3}, 42);
  const auto b = KeyPair::derive(ValidatorIndex{3}, 42);
  EXPECT_EQ(a.public_key(), b.public_key());
  const auto c = KeyPair::derive(ValidatorIndex{4}, 42);
  EXPECT_NE(a.public_key(), c.public_key());
}

TEST(Keys, SignVerifyRoundTrip) {
  KeyRegistry reg;
  const auto pairs = reg.generate(8, 7);
  const Digest msg = sha256("attestation");
  const Signature sig = pairs[5].sign(msg);
  EXPECT_TRUE(reg.verify(msg, sig));
}

TEST(Keys, WrongMessageRejected) {
  KeyRegistry reg;
  const auto pairs = reg.generate(4, 7);
  const Signature sig = pairs[1].sign(sha256("m1"));
  EXPECT_FALSE(reg.verify(sha256("m2"), sig));
}

TEST(Keys, ForgedSignerRejected) {
  KeyRegistry reg;
  const auto pairs = reg.generate(4, 7);
  Signature sig = pairs[1].sign(sha256("m"));
  sig.signer = ValidatorIndex{2};  // claim someone else's identity
  EXPECT_FALSE(reg.verify(sha256("m"), sig));
}

TEST(Keys, UnknownSignerRejected) {
  KeyRegistry reg;
  const auto pairs = reg.generate(2, 7);
  Signature sig = pairs[0].sign(sha256("m"));
  sig.signer = ValidatorIndex{99};
  EXPECT_FALSE(reg.verify(sha256("m"), sig));
}

TEST(Aggregate, CollectsAndVerifies) {
  KeyRegistry reg;
  const auto pairs = reg.generate(10, 3);
  const Digest msg = sha256("vote");
  AggregateSignature agg;
  for (const auto& kp : pairs) agg.add(kp.sign(msg));
  EXPECT_EQ(agg.count(), 10u);
  EXPECT_TRUE(agg.verify(msg, reg));
}

TEST(Aggregate, DeduplicatesSigners) {
  KeyRegistry reg;
  const auto pairs = reg.generate(3, 3);
  const Digest msg = sha256("vote");
  AggregateSignature agg;
  agg.add(pairs[1].sign(msg));
  agg.add(pairs[1].sign(msg));
  EXPECT_EQ(agg.count(), 1u);
}

TEST(Aggregate, SignersSorted) {
  KeyRegistry reg;
  const auto pairs = reg.generate(5, 3);
  const Digest msg = sha256("vote");
  AggregateSignature agg;
  agg.add(pairs[4].sign(msg));
  agg.add(pairs[0].sign(msg));
  agg.add(pairs[2].sign(msg));
  const auto& s = agg.signers();
  EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
}

TEST(Aggregate, BadConstituentFailsVerification) {
  KeyRegistry reg;
  const auto pairs = reg.generate(3, 3);
  const Digest msg = sha256("vote");
  AggregateSignature agg;
  agg.add(pairs[0].sign(msg));
  Signature forged = pairs[1].sign(sha256("other"));
  agg.add(forged);
  EXPECT_FALSE(agg.verify(msg, reg));
}

TEST(Merkle, EmptyAndSingle) {
  EXPECT_EQ(merkle_root({}), sha256(std::string_view{}));
  const Digest leaf = sha256("a");
  EXPECT_EQ(merkle_root({leaf}), leaf);
}

TEST(Merkle, PairRoot) {
  const Digest a = sha256("a"), b = sha256("b");
  EXPECT_EQ(merkle_root({a, b}), sha256_pair(a, b));
}

TEST(Merkle, OddLayerDuplicatesLast) {
  const Digest a = sha256("a"), b = sha256("b"), c = sha256("c");
  const Digest expect = sha256_pair(sha256_pair(a, b), sha256_pair(c, c));
  EXPECT_EQ(merkle_root({a, b, c}), expect);
}

class MerkleProofSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofSweep, AllLeavesProve) {
  const std::size_t n = GetParam();
  std::vector<Digest> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(sha256("leaf" + std::to_string(i)));
  }
  const Digest root = merkle_root(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = merkle_prove(leaves, i);
    EXPECT_TRUE(merkle_verify(leaves[i], proof, root)) << "leaf " << i;
    // A wrong leaf must not verify.
    EXPECT_FALSE(merkle_verify(sha256("bogus"), proof, root));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MerkleProofSweep,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 16, 33));

TEST(Merkle, ProveOutOfRangeThrows) {
  EXPECT_THROW(merkle_prove({sha256("x")}, 1), std::out_of_range);
}

}  // namespace
}  // namespace leak::crypto
