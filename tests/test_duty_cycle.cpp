// Tests for the generalized duty-cycle behaviours and the multi-branch
// rotation attack (extension of Sections 4.3 / 5.2).
#include <gtest/gtest.h>

#include <cmath>

#include "src/analytic/duty_cycle.hpp"
#include "src/analytic/solvers.hpp"

namespace leak::analytic {
namespace {

const AnalyticConfig kPaper = AnalyticConfig::paper();

TEST(DutySlope, RecoverPaperTaxonomy) {
  // k = 1: fully active (slope clamps at 0); k = 2: the paper's
  // semi-active 3/2; k -> large: approaches the inactive slope 4.
  EXPECT_DOUBLE_EQ(duty_cycle_slope(1, kPaper), 0.0);
  EXPECT_DOUBLE_EQ(duty_cycle_slope(2, kPaper),
                   score_slope(Behavior::kSemiActive, kPaper));
  EXPECT_DOUBLE_EQ(duty_cycle_slope(0, kPaper),
                   score_slope(Behavior::kInactive, kPaper));
  EXPECT_NEAR(duty_cycle_slope(1000, kPaper), 4.0, 0.01);
}

TEST(DutySlope, MonotoneInK) {
  double prev = -1.0;
  for (unsigned k = 1; k <= 16; ++k) {
    const double v = duty_cycle_slope(k, kPaper);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(DutyStake, MatchesBehaviorClosedForms) {
  for (double t : {500.0, 2000.0, 5000.0}) {
    EXPECT_NEAR(duty_cycle_stake(2, t, kPaper),
                stake(Behavior::kSemiActive, t, kPaper), 1e-12);
    EXPECT_NEAR(duty_cycle_stake(0, t, kPaper),
                stake(Behavior::kInactive, t, kPaper), 1e-12);
    EXPECT_DOUBLE_EQ(duty_cycle_stake(1, t, kPaper), 32.0);
  }
}

TEST(DutyEjection, OrderedInK) {
  // More activity -> later ejection; k = 1 never ejects.
  EXPECT_TRUE(std::isinf(duty_cycle_ejection_epoch(1, kPaper)));
  double prev = 0.0;
  for (unsigned k = 16; k >= 2; --k) {
    const double t = duty_cycle_ejection_epoch(k, kPaper);
    EXPECT_GT(t, prev);
    prev = t;
  }
  EXPECT_NEAR(duty_cycle_ejection_epoch(2, kPaper),
              ejection_epoch(Behavior::kSemiActive, kPaper), 1e-9);
}

class DutyDiscreteSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(DutyDiscreteSweep, DiscreteTracksClosedForm) {
  const unsigned k = GetParam();
  AnalyticConfig cfg = kPaper;
  cfg.ejection_threshold = 0.0;
  const std::size_t horizon = 4000;
  const auto traj = duty_cycle_discrete(k, horizon, cfg);
  const double closed =
      duty_cycle_stake(k, static_cast<double>(horizon), cfg);
  EXPECT_NEAR(traj.stake[horizon] / closed, 1.0, 1e-2) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Cycles, DutyDiscreteSweep,
                         ::testing::Values(2, 3, 4, 8));

TEST(MultiBranch, TwoBranchesRecoversPaperResults) {
  // m = 2 must agree with the Section 5.2.2 machinery.
  EXPECT_NEAR(multibranch_supermajority_epoch(2, 0.33, kPaper),
              time_to_supermajority_semiactive(0.5, 0.33, kPaper), 1e-6);
  EXPECT_NEAR(multibranch_beta_max(2, 0.3, kPaper),
              beta_max(0.5, 0.3, kPaper), 1e-12);
  EXPECT_NEAR(multibranch_beta0_lower_bound(2, kPaper), 0.2421, 5e-4);
}

TEST(MultiBranch, MoreBranchesNeedLessByzantineStake) {
  // Spreading honest validators over more branches starves every branch
  // of honest-active stake: the beta0 needed to cross 1/3 drops.
  double prev = 1.0;
  for (unsigned m = 2; m <= 6; ++m) {
    const double b = multibranch_beta0_lower_bound(m, kPaper);
    EXPECT_LT(b, prev) << "m=" << m;
    prev = b;
  }
}

TEST(MultiBranch, BetaMaxConsistentWithBound) {
  for (unsigned m = 2; m <= 5; ++m) {
    const double bound = multibranch_beta0_lower_bound(m, kPaper);
    EXPECT_GT(multibranch_beta_max(m, bound + 1e-4, kPaper), 1.0 / 3.0);
    EXPECT_LT(multibranch_beta_max(m, bound - 1e-3, kPaper), 1.0 / 3.0);
  }
}

TEST(MultiBranch, SupermajorityLaterWithMoreBranches) {
  // With the honest side split m ways, each branch starts from a lower
  // active share: recovery (for fixed beta0) cannot be faster.
  const double t2 = multibranch_supermajority_epoch(2, 0.2, kPaper);
  const double t3 = multibranch_supermajority_epoch(3, 0.2, kPaper);
  EXPECT_GE(t3, t2);
}

TEST(MultiBranch, InvalidBranchCountThrows) {
  EXPECT_THROW(static_cast<void>(multibranch_supermajority_epoch(1, 0.2, kPaper)),
               std::invalid_argument);
  EXPECT_THROW(static_cast<void>(multibranch_beta_max(0, 0.2, kPaper)),
               std::invalid_argument);
  EXPECT_THROW(
      static_cast<void>(multibranch_exceed_threshold(1, 0.2, 100.0, kPaper)),
      std::invalid_argument);
}

TEST(MultiBranch, ExceedThresholdTwoBranchesIsLegacyCriterion) {
  // The m = 2 threshold must equal the original run_bouncing_mc
  // exceedance expression bit for bit — the CI baseline diff depends
  // on it.
  for (const double beta0 : {0.2, 0.33, 0.4}) {
    const double factor = 2.0 * beta0 / (1.0 - beta0);
    for (const double t : {100.0, 1000.0, 4024.0}) {
      EXPECT_EQ(multibranch_exceed_threshold(2, beta0, t, kPaper),
                factor * stake(Behavior::kSemiActive, t, kPaper))
          << "beta0=" << beta0 << " t=" << t;
    }
  }
}

TEST(MultiBranch, ExceedThresholdScalesWithBranches) {
  // More branches: a larger splitting factor (m beta / (1 - beta)) but
  // a slower Byzantine duty-cycle decay; early on the factor dominates.
  const double t = 500.0;
  EXPECT_GT(multibranch_exceed_threshold(4, 0.33, t, kPaper),
            multibranch_exceed_threshold(2, 0.33, t, kPaper));
  // Thresholds decay in t (the duty-cycled Byzantine stake shrinks).
  EXPECT_GT(multibranch_exceed_threshold(3, 0.33, 100.0, kPaper),
            multibranch_exceed_threshold(3, 0.33, 4000.0, kPaper));
}

}  // namespace
}  // namespace leak::analytic
