// Tests for FFG justification/finalization and the safety monitor.
#include <gtest/gtest.h>

#include "src/chain/blocktree.hpp"
#include "src/finality/ffg.hpp"
#include "src/finality/safety.hpp"

namespace leak::finality {
namespace {

using chain::Block;
using chain::BlockTree;
using chain::ValidatorRegistry;

class FfgFixture : public ::testing::Test {
 protected:
  FfgFixture()
      : registry(9),
        genesis{tree.genesis_id(), Epoch{0}},
        ffg(registry, genesis) {}

  Checkpoint make_checkpoint(Epoch e, const std::string& tag) {
    // A distinct synthetic block id per (epoch, tag).
    return Checkpoint{crypto::sha256(tag + std::to_string(e.value())), e};
  }

  void vote(std::uint32_t who, Checkpoint source, Checkpoint target) {
    Attestation a;
    a.attester = ValidatorIndex{who};
    a.slot = target.epoch.start_slot();
    a.source = source;
    a.target = target;
    ffg.on_checkpoint_vote(a);
  }

  BlockTree tree;
  ValidatorRegistry registry;
  Checkpoint genesis;
  FfgTracker ffg;
};

TEST_F(FfgFixture, GenesisJustifiedAndFinalized) {
  EXPECT_EQ(ffg.justified(), genesis);
  EXPECT_EQ(ffg.finalized(), genesis);
  EXPECT_TRUE(ffg.is_justified(genesis));
}

TEST_F(FfgFixture, SupermajorityJustifies) {
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, genesis, t1);  // 7/9 > 2/3
  const auto newly = ffg.process_epoch(Epoch{1});
  ASSERT_TRUE(newly.has_value());
  EXPECT_EQ(*newly, t1);
  EXPECT_EQ(ffg.justified(), t1);
  // Genesis (source, epoch 0) is consecutive with target epoch 1:
  // finalization of genesis happened already; finalized stays at epoch 0.
  EXPECT_EQ(ffg.finalized(), genesis);
}

TEST_F(FfgFixture, ExactTwoThirdsIsNotEnough) {
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  for (std::uint32_t i = 0; i < 6; ++i) vote(i, genesis, t1);  // exactly 2/3
  EXPECT_FALSE(ffg.process_epoch(Epoch{1}).has_value());
  EXPECT_EQ(ffg.justified(), genesis);
}

TEST_F(FfgFixture, ConsecutiveJustificationFinalizes) {
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  const Checkpoint t2 = make_checkpoint(Epoch{2}, "a");
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, genesis, t1);
  ffg.process_epoch(Epoch{1});
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, t1, t2);
  ffg.process_epoch(Epoch{2});
  EXPECT_EQ(ffg.justified(), t2);
  EXPECT_EQ(ffg.finalized(), t1);  // two consecutive justified checkpoints
  ASSERT_EQ(ffg.finalized_chain().size(), 2u);
  EXPECT_EQ(ffg.finalized_chain().back(), t1);
}

TEST_F(FfgFixture, SkippedEpochJustifiesButDoesNotFinalize) {
  // Justification every other epoch: no finalization (Section 3.2).
  const Checkpoint t2 = make_checkpoint(Epoch{2}, "a");
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, genesis, t2);
  ffg.process_epoch(Epoch{2});
  EXPECT_EQ(ffg.justified(), t2);
  EXPECT_EQ(ffg.finalized(), genesis);
  const Checkpoint t4 = make_checkpoint(Epoch{4}, "a");
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, t2, t4);
  ffg.process_epoch(Epoch{4});
  EXPECT_EQ(ffg.justified(), t4);
  EXPECT_EQ(ffg.finalized(), genesis);  // still nothing consecutive
}

TEST_F(FfgFixture, UnjustifiedSourceDoesNotCount) {
  const Checkpoint fake = make_checkpoint(Epoch{1}, "fake");
  const Checkpoint t2 = make_checkpoint(Epoch{2}, "a");
  for (std::uint32_t i = 0; i < 9; ++i) vote(i, fake, t2);
  EXPECT_FALSE(ffg.process_epoch(Epoch{2}).has_value());
  EXPECT_DOUBLE_EQ(ffg.support(t2).eth(), 0.0);
}

TEST_F(FfgFixture, DuplicateVotesCountOnce) {
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  for (int rep = 0; rep < 5; ++rep) vote(0, genesis, t1);
  EXPECT_DOUBLE_EQ(ffg.support(t1).eth(), 32.0);
}

TEST_F(FfgFixture, EquivocatingTargetCountsFirstOnly) {
  const Checkpoint t1a = make_checkpoint(Epoch{1}, "a");
  const Checkpoint t1b = make_checkpoint(Epoch{1}, "b");
  vote(0, genesis, t1a);
  vote(0, genesis, t1b);  // same epoch, different target: ignored
  EXPECT_DOUBLE_EQ(ffg.support(t1a).eth(), 32.0);
  EXPECT_DOUBLE_EQ(ffg.support(t1b).eth(), 0.0);
}

TEST_F(FfgFixture, ExitedValidatorsDoNotSupport) {
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  for (std::uint32_t i = 0; i < 7; ++i) vote(i, genesis, t1);
  for (std::uint32_t i = 0; i < 4; ++i) registry.eject(ValidatorIndex{i}, Epoch{0});
  // Only 3 of 5 remaining active validators voted: 96/160 < 2/3.
  EXPECT_FALSE(ffg.process_epoch(Epoch{1}).has_value());
}

TEST_F(FfgFixture, StakeWeightedSupermajority) {
  // One whale with 9x stake can justify with few allies.
  registry.at(ValidatorIndex{0}).balance = Gwei::from_eth(320.0);
  const Checkpoint t1 = make_checkpoint(Epoch{1}, "a");
  vote(0, genesis, t1);
  vote(1, genesis, t1);
  // Support 352 of 576 total = 61% < 2/3: not yet.
  EXPECT_FALSE(ffg.process_epoch(Epoch{1}).has_value());
  vote(2, genesis, t1);
  vote(3, genesis, t1);
  // 416/576 = 72% > 2/3.
  EXPECT_TRUE(ffg.process_epoch(Epoch{1}).has_value());
}

TEST(SafetyMonitorTest, PrefixCompatibleReportsAreFine) {
  BlockTree tree;
  const Block b1 = Block::make(tree.genesis_id(), Slot{32}, ValidatorIndex{0});
  tree.insert(b1);
  const Block b2 = Block::make(b1.id, Slot{64}, ValidatorIndex{1});
  tree.insert(b2);
  SafetyMonitor mon(tree);
  EXPECT_FALSE(mon.report(Checkpoint{b1.id, Epoch{1}}).has_value());
  EXPECT_FALSE(mon.report(Checkpoint{b2.id, Epoch{2}}).has_value());
  EXPECT_FALSE(mon.violated());
}

TEST(SafetyMonitorTest, ConflictingFinalizationDetected) {
  BlockTree tree;
  const Block a = Block::make(tree.genesis_id(), Slot{32}, ValidatorIndex{0});
  const Block b = Block::make(tree.genesis_id(), Slot{33}, ValidatorIndex{1});
  tree.insert(a);
  tree.insert(b);
  SafetyMonitor mon(tree);
  EXPECT_FALSE(mon.report(Checkpoint{a.id, Epoch{1}}).has_value());
  const auto v = mon.report(Checkpoint{b.id, Epoch{1}});
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE(mon.violated());
  EXPECT_EQ(v->a.block, a.id);
  EXPECT_EQ(v->b.block, b.id);
}

TEST(SafetyMonitorTest, SameCheckpointTwiceIsFine) {
  BlockTree tree;
  const Block a = Block::make(tree.genesis_id(), Slot{32}, ValidatorIndex{0});
  tree.insert(a);
  SafetyMonitor mon(tree);
  mon.report(Checkpoint{a.id, Epoch{1}});
  EXPECT_FALSE(mon.report(Checkpoint{a.id, Epoch{1}}).has_value());
}

}  // namespace
}  // namespace leak::finality
