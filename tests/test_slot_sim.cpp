// Tests for the slot-level protocol simulator: finalization liveness in
// good conditions, leak trigger under partition, availability, and the
// Section 5.2.1 equivocation being caught after GST.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/sim/slot_sim.hpp"

namespace leak::sim {
namespace {

TEST(SlotSimGood, FinalityAdvancesWithoutFaults) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 32;
  cfg.epochs = 8;
  const auto r = SlotSim(cfg).run();
  // After warmup the finalized checkpoint reaches near the horizon:
  // with per-epoch justification, finalized epoch ~ epochs - 2.
  for (std::uint32_t i = 0; i < cfg.n_honest; ++i) {
    EXPECT_GE(r.finalized_epoch[i], cfg.epochs - 3) << "validator " << i;
    EXPECT_GE(r.justified_epoch[i], r.finalized_epoch[i]);
  }
  EXPECT_EQ(r.safety_violations, 0u);
  EXPECT_TRUE(r.slashed.empty());
  EXPECT_FALSE(r.leak_observed);
}

TEST(SlotSimGood, ChainGrowsEverySlot) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 32;
  cfg.epochs = 4;
  const auto r = SlotSim(cfg).run();
  // One block per slot (plus genesis), no proposals lost without faults.
  EXPECT_EQ(r.blocks_seen, 4 * 32 + 1);
}

TEST(SlotSimGood, DeterministicAcrossRuns) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 16;
  cfg.epochs = 4;
  const auto a = SlotSim(cfg).run();
  const auto b = SlotSim(cfg).run();
  EXPECT_EQ(a.finalized_epoch, b.finalized_epoch);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(SlotSimPartition, LeakTriggersAndFinalityStalls) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 32;
  cfg.epochs = 10;
  cfg.p0 = 0.5;
  cfg.gst_epoch = 100.0;  // partition for the whole run
  const auto r = SlotSim(cfg).run();
  // Neither half can finalize anything beyond warmup.
  for (std::uint32_t i = 0; i < cfg.n_honest; ++i) {
    EXPECT_LE(r.finalized_epoch[i], 1u);
  }
  EXPECT_TRUE(r.leak_observed);
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(SlotSimPartition, AvailabilityBothSidesKeepBuilding) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 32;
  cfg.epochs = 6;
  cfg.p0 = 0.5;
  cfg.gst_epoch = 100.0;
  const auto r = SlotSim(cfg).run();
  // The candidate chain keeps growing (Availability): validator 0 sees
  // roughly its region's share of blocks, far more than the finalized
  // prefix would hold.
  EXPECT_GT(r.blocks_seen, 6 * 32 / 4);
}

TEST(SlotSimPartition, HealedPartitionResumesFinality) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 32;
  cfg.epochs = 12;
  cfg.p0 = 0.5;
  cfg.gst_epoch = 4.0;  // heal after 4 epochs
  const auto r = SlotSim(cfg).run();
  // After GST everyone converges and finality resumes well past the
  // partition epochs.
  for (std::uint32_t i = 0; i < cfg.n_honest; ++i) {
    EXPECT_GE(r.finalized_epoch[i], 8u) << "validator " << i;
  }
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(SlotSimByzantine, EquivocatorsSlashedAfterGst) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 30;
  cfg.n_byzantine = 2;
  cfg.epochs = 10;
  cfg.p0 = 0.5;
  cfg.gst_epoch = 5.0;  // equivocate for 5 epochs, then get caught
  const auto r = SlotSim(cfg).run();
  // Every Byzantine validator equivocated during the partition and is
  // slashed once its conflicting attestations propagate.
  std::vector<std::uint32_t> slashed;
  for (const auto v : r.slashed) slashed.push_back(v.value());
  std::sort(slashed.begin(), slashed.end());
  ASSERT_EQ(slashed.size(), 2u);
  EXPECT_EQ(slashed[0], 30u);
  EXPECT_EQ(slashed[1], 31u);
}

TEST(SlotSimByzantine, NoPartitionMeansNoEquivocation) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 30;
  cfg.n_byzantine = 2;
  cfg.epochs = 6;
  cfg.gst_epoch = 0.0;  // no partition: byzantine behave honestly here
  const auto r = SlotSim(cfg).run();
  EXPECT_TRUE(r.slashed.empty());
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(SlotSimByzantine, DualAttestationsStayHiddenDuringPartition) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = 30;
  cfg.n_byzantine = 2;
  cfg.epochs = 6;
  cfg.p0 = 0.5;
  cfg.gst_epoch = 100.0;  // never heals within the run
  const auto r = SlotSim(cfg).run();
  // Conflicting attestations never co-locate at an honest validator.
  EXPECT_TRUE(r.slashed.empty());
}

TEST(SlotSimProperty, FinalizedPrefixAcrossValidators) {
  // Safety (Property 4): across a partition-and-heal run, finalized
  // checkpoints of all validators are pairwise prefix-compatible, which
  // the monitor verifies internally: zero violations.
  for (double gst : {0.0, 3.0, 5.0}) {
    SlotSimConfig cfg;
    cfg.seed = 1;  // pinned: default, explicit for determinism
    cfg.n_honest = 24;
    cfg.epochs = 10;
    cfg.p0 = 0.5;
    cfg.gst_epoch = gst;
    const auto r = SlotSim(cfg).run();
    EXPECT_EQ(r.safety_violations, 0u) << "gst=" << gst;
  }
}

// Parameterized sweep over honest committee sizes: liveness must hold
// for any n (votes are stake-weighted, everyone attests once per epoch).
class SizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SizeSweep, FinalityAdvances) {
  SlotSimConfig cfg;
  cfg.seed = 1;  // pinned: default, explicit for determinism
  cfg.n_honest = GetParam();
  cfg.epochs = 6;
  const auto r = SlotSim(cfg).run();
  EXPECT_GE(r.finalized_epoch[0], 3u);
  EXPECT_EQ(r.safety_violations, 0u);
}

INSTANTIATE_TEST_SUITE_P(Committees, SizeSweep,
                         ::testing::Values(8, 16, 32, 48, 64));

}  // namespace
}  // namespace leak::sim
