// Tests for the balancing attack on LMD-GHOST (the slot-level
// simulator's proposer-equivocation strategy): determinism across runs
// and thread counts, the unslashability of the block-only equivocation,
// and the finality stall it induces.
#include <gtest/gtest.h>

#include "src/scenario/registry.hpp"
#include "src/sim/slot_sim.hpp"

namespace leak::sim {
namespace {

SlotSimConfig balancing_config(std::uint32_t n_byz, std::uint64_t seed) {
  SlotSimConfig cfg;
  cfg.n_honest = 32;
  cfg.n_byzantine = n_byz;
  cfg.epochs = 12;
  cfg.proposer_strategy = ProposerStrategy::kBalancing;
  cfg.seed = seed;
  return cfg;
}

TEST(BalancingAttack, ByzantineProposersEquivocate) {
  const auto r = SlotSim(balancing_config(8, 7)).run();
  // Every Byzantine proposal produced a sibling pair.
  EXPECT_GT(r.equivocating_proposals, 0u);
  // The trajectory covers every epoch boundary.
  EXPECT_EQ(r.finalized_epoch_trajectory.size(), 12u);
}

TEST(BalancingAttack, BlockOnlyEquivocationIsNeverSlashed) {
  // The balancing adversary never double-votes attestations, so honest
  // watchers have nothing slashable to report even though the withheld
  // sibling proposals are released at every epoch boundary.
  const auto r = SlotSim(balancing_config(8, 7)).run();
  EXPECT_TRUE(r.slashed.empty());
  EXPECT_EQ(r.safety_violations, 0u);
}

TEST(BalancingAttack, HonestProposersDoNotEquivocate) {
  SlotSimConfig cfg = balancing_config(0, 1);
  const auto r = SlotSim(cfg).run();
  EXPECT_EQ(r.equivocating_proposals, 0u);
  // Without an adversary the strategy knob is inert: finality advances.
  EXPECT_GE(r.finalized_epoch.front(), cfg.epochs - 3);
}

TEST(BalancingAttack, DeterministicAcrossRuns) {
  const SlotSimConfig cfg = balancing_config(6, 21);
  const auto a = SlotSim(cfg).run();
  const auto b = SlotSim(cfg).run();
  EXPECT_EQ(a.finalized_epoch, b.finalized_epoch);
  EXPECT_EQ(a.finalized_epoch_trajectory, b.finalized_epoch_trajectory);
  EXPECT_EQ(a.finality_stall_epochs, b.finality_stall_epochs);
  EXPECT_EQ(a.equivocating_proposals, b.equivocating_proposals);
  EXPECT_EQ(a.messages_delivered, b.messages_delivered);
}

TEST(BalancingAttack, StallsFinalityRelativeToHonestBaseline) {
  // Averaged over seeds, the balanced fork holds finality back: the
  // adversary's equivocations at epoch-boundary slots split the honest
  // checkpoint votes across two targets.
  std::size_t attacked_stall = 0;
  std::size_t honest_stall = 0;
  for (const std::uint64_t seed : {3u, 5u, 7u, 11u}) {
    attacked_stall += SlotSim(balancing_config(10, seed)).run()
                          .finality_stall_epochs;
    SlotSimConfig honest = balancing_config(10, seed);
    honest.proposer_strategy = ProposerStrategy::kHonest;
    honest_stall += SlotSim(honest).run().finality_stall_epochs;
  }
  EXPECT_GT(attacked_stall, honest_stall);
}

TEST(ProposerBoost, OffIsBitExactLegacyTrajectory) {
  // The countermeasure defaults to off, and off means *byte-for-byte*
  // legacy behavior: this golden trajectory was recorded before the
  // proposer-boost/release-timing knobs existed, and a default-valued
  // config must keep reproducing it exactly.
  const auto r = SlotSim(balancing_config(8, 7)).run();
  const std::vector<std::uint64_t> golden{0, 0, 0, 2, 3, 4, 5, 6, 7, 8, 8, 8};
  EXPECT_EQ(r.finalized_epoch_trajectory, golden);
  EXPECT_EQ(r.finality_stall_epochs, 3u);
  EXPECT_EQ(r.equivocating_proposals, 64u);
  EXPECT_EQ(r.messages_delivered, 38144u);
}

TEST(ProposerBoost, ExplicitZeroMatchesDefaultConfigExactly) {
  // Setting the new knobs to their defaults is indistinguishable from
  // never touching them.
  const auto legacy = SlotSim(balancing_config(8, 7)).run();
  SlotSimConfig explicit_cfg = balancing_config(8, 7);
  explicit_cfg.proposer_boost = 0;
  explicit_cfg.release_delay = 0.1;
  explicit_cfg.cross_delay = 0.1;
  const auto r = SlotSim(explicit_cfg).run();
  EXPECT_EQ(r.finalized_epoch, legacy.finalized_epoch);
  EXPECT_EQ(r.finalized_epoch_trajectory, legacy.finalized_epoch_trajectory);
  EXPECT_EQ(r.finality_stall_epochs, legacy.finality_stall_epochs);
  EXPECT_EQ(r.equivocating_proposals, legacy.equivocating_proposals);
  EXPECT_EQ(r.messages_delivered, legacy.messages_delivered);
}

TEST(ProposerBoost, BoostCountersTheBalancingAttack) {
  // With mainnet-style 40% proposer boost, a timely honest proposal
  // outweighs the adversary's balanced split, so honest attesters
  // converge on one side and finality recovers sooner.
  SlotSimConfig boosted = balancing_config(8, 7);
  boosted.proposer_boost = 40;
  const auto off = SlotSim(balancing_config(8, 7)).run();
  const auto on = SlotSim(boosted).run();
  EXPECT_LT(on.finality_stall_epochs, off.finality_stall_epochs);
  EXPECT_GE(on.finalized_epoch_trajectory.back(),
            off.finalized_epoch_trajectory.back());
  // The countermeasure changes fork choice, not message flow.
  EXPECT_EQ(on.messages_delivered, off.messages_delivered);
  EXPECT_EQ(on.equivocating_proposals, off.equivocating_proposals);
}

TEST(ProposerBoost, ScenarioParamDefaultsOffAndMatchesLegacyMetrics) {
  // Registry level: the balancing-attack scenario exposes the knob,
  // defaults it to 0, and a default run's metrics and per-trial rows
  // are identical to an explicit proposer_boost=0 run's.
  const auto& sc = *scenario::builtin_registry().find("balancing-attack");
  auto params = sc.spec().defaults();
  params.set("paths", std::int64_t{2});
  params.set("epochs", std::int64_t{6});
  EXPECT_EQ(params.get_int("proposer_boost"), 0);
  const auto legacy = sc.run(params);
  params.set("proposer_boost", std::int64_t{0});
  const auto explicit_off = sc.run(params);
  ASSERT_EQ(legacy.metrics.size(), explicit_off.metrics.size());
  for (std::size_t i = 0; i < legacy.metrics.size(); ++i) {
    EXPECT_EQ(legacy.metrics[i].second, explicit_off.metrics[i].second)
        << legacy.metrics[i].first;
  }
  ASSERT_TRUE(legacy.trials && explicit_off.trials);
  EXPECT_EQ(legacy.trials->to_csv(), explicit_off.trials->to_csv());
}

TEST(BalancingAttackScenario, BitIdenticalAcrossThreadCounts) {
  // SlotSim equivocation determinism across thread counts, at the
  // registry level: the balancing-attack scenario fans its paths over
  // the trial runner, and the merged metrics must not depend on the
  // worker count or the block size.
  const auto& sc = *scenario::builtin_registry().find("balancing-attack");
  auto params = sc.spec().defaults();
  params.set("paths", std::int64_t{4});
  params.set("epochs", std::int64_t{8});
  params.set("threads", std::int64_t{1});
  const auto one = sc.run(params);
  params.set("threads", std::int64_t{4});
  params.set("block", std::int64_t{1});
  const auto four = sc.run(params);
  ASSERT_EQ(one.metrics.size(), four.metrics.size());
  for (std::size_t i = 0; i < one.metrics.size(); ++i) {
    EXPECT_EQ(one.metrics[i].first, four.metrics[i].first);
    EXPECT_EQ(one.metrics[i].second, four.metrics[i].second)
        << one.metrics[i].first;
  }
  ASSERT_TRUE(one.trials && four.trials);
  EXPECT_EQ(one.trials->to_csv(), four.trials->to_csv());
}

}  // namespace
}  // namespace leak::sim
