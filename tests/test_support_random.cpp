// Statistical sanity tests for the deterministic PRNG.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanVariance) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 3e-3);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 2e-3);
}

TEST(Rng, UniformIndexBounds) {
  Rng rng(5);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto k = rng.uniform_index(10);
    ASSERT_LT(k, 10u);
    ++counts[static_cast<std::size_t>(k)];
  }
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(s.stddev(), 3.0, 0.05);
}

TEST(Rng, ForkIndependence) {
  Rng root(21);
  Rng a = root.fork();
  Rng b = root.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(33);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s = 0;
  const auto a = splitmix64(s);
  const auto b = splitmix64(s);
  EXPECT_NE(a, b);
  // Regression pin: splitmix64 from seed 0 (first output).
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), a);
}

}  // namespace
}  // namespace leak
