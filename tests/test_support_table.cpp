// Tests for the ASCII table / CSV emission used by the benches.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <locale>
#include <stdexcept>
#include <string>

#include "src/support/table.hpp"

namespace leak {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333333", "4"});
  const std::string s = t.to_string();
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const auto end = s.find('\n', start);
    const auto len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
  EXPECT_NE(s.find("333333"), std::string::npos);
}

TEST(TableTest, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(TableTest, CsvWriteGatedOnEnv) {
  Table t({"v"});
  t.add_row({"9"});
  unsetenv("LEAK_BENCH_CSV");
  EXPECT_FALSE(t.maybe_write_csv("/tmp/leak_table_test.csv"));
  setenv("LEAK_BENCH_CSV", "1", 1);
  EXPECT_TRUE(t.maybe_write_csv("/tmp/leak_table_test.csv"));
  std::ifstream f("/tmp/leak_table_test.csv");
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "v");
  unsetenv("LEAK_BENCH_CSV");
  std::remove("/tmp/leak_table_test.csv");
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, CsvQuotesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"a,b", "say \"hi\""});
  t.add_row({"line\nbreak", ""});
  EXPECT_EQ(t.to_csv(),
            "name,note\n\"a,b\",\"say \"\"hi\"\"\"\n\"line\nbreak\",\n");
}

TEST(TableTest, CsvRoundTripWithQuotingAndEmptyCells) {
  Table t({"k", "v", "comment"});
  t.add_row({"plain", "", "has,comma"});
  t.add_row({"quoted \"x\"", "multi\nline", "  spaced  "});
  t.add_row({"", "", ""});
  const auto back = Table::from_csv(t.to_csv());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->headers(), t.headers());
  ASSERT_EQ(back->rows(), t.rows());
  for (std::size_t r = 0; r < t.rows(); ++r) {
    EXPECT_EQ(back->row(r), t.row(r)) << "row " << r;
  }
}

TEST(TableTest, FromCsvHandlesCrlfAndMissingFinalNewline) {
  const auto t = Table::from_csv("a,b\r\n1,2\r\n3,4");
  ASSERT_TRUE(t.has_value());
  ASSERT_EQ(t->rows(), 2u);
  EXPECT_EQ(t->cell(1, 1), "4");
}

TEST(TableTest, FromCsvRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(Table::from_csv("a,b\n1\n", &error).has_value());
  EXPECT_NE(error.find("expected 2"), std::string::npos) << error;
  EXPECT_FALSE(Table::from_csv("a\n\"unterminated\n", &error).has_value());
  EXPECT_FALSE(Table::from_csv("a\nqu\"ote\n", &error).has_value());
  EXPECT_FALSE(Table::from_csv("a\n\"quoted\"junk\n", &error).has_value());
  EXPECT_FALSE(Table::from_csv("", &error).has_value());
}

TEST(TableTest, FmtIsLocaleIndependent) {
  // A global locale with a ',' decimal point must not leak into
  // formatted numbers (CSV artifacts would silently corrupt).
  std::locale saved;
  try {
    std::locale::global(std::locale("de_DE.UTF-8"));
  } catch (const std::runtime_error&) {
    GTEST_SKIP() << "de_DE.UTF-8 locale not installed";
  }
  const std::string fixed = Table::fmt(3.14159, 2);
  const std::string exact = Table::fmt_exact(0.33);
  std::locale::global(saved);
  EXPECT_EQ(fixed, "3.14");
  EXPECT_EQ(exact, "0.33");
}

TEST(TableTest, FmtExactRoundTrips) {
  for (const double v : {1.0 / 3.0, 0.1, 26.699, -0.0, 1e-17}) {
    const std::string s = Table::fmt_exact(v);
    EXPECT_EQ(std::stod(s), v) << s;
  }
  EXPECT_EQ(Table::fmt_exact(4024.0), "4024");
}

}  // namespace
}  // namespace leak
