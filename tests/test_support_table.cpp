// Tests for the ASCII table / CSV emission used by the benches.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>

#include "src/support/table.hpp"

namespace leak {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"a", "long header"});
  t.add_row({"1", "2"});
  t.add_row({"333333", "4"});
  const std::string s = t.to_string();
  // Every line has the same width.
  std::size_t width = 0;
  std::size_t start = 0;
  while (start < s.size()) {
    const auto end = s.find('\n', start);
    const auto len = end - start;
    if (width == 0) width = len;
    EXPECT_EQ(len, width);
    start = end + 1;
  }
  EXPECT_NE(s.find("333333"), std::string::npos);
}

TEST(TableTest, CsvFormat) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, RowSizeMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt(-1.5, 1), "-1.5");
}

TEST(TableTest, CsvWriteGatedOnEnv) {
  Table t({"v"});
  t.add_row({"9"});
  unsetenv("LEAK_BENCH_CSV");
  EXPECT_FALSE(t.maybe_write_csv("/tmp/leak_table_test.csv"));
  setenv("LEAK_BENCH_CSV", "1", 1);
  EXPECT_TRUE(t.maybe_write_csv("/tmp/leak_table_test.csv"));
  std::ifstream f("/tmp/leak_table_test.csv");
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "v");
  unsetenv("LEAK_BENCH_CSV");
  std::remove("/tmp/leak_table_test.csv");
}

TEST(TableTest, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace leak
