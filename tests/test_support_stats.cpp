// Tests for the statistics kit.
#include <gtest/gtest.h>

#include <cmath>

#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, ShiftInvariantVariance) {
  RunningStats a, b;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal();
    a.add(x);
    b.add(x + 1e6);
  }
  EXPECT_NEAR(a.variance(), b.variance(), 1e-4);
}

TEST(Quantile, MedianAndExtremes) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
}

TEST(Quantile, Interpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 2.5);
}

TEST(Quantile, Throws) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.5), std::invalid_argument);
}

TEST(KsDistance, UniformSampleAgainstUniformCdf) {
  Rng rng(9);
  std::vector<double> xs;
  for (int i = 0; i < 50000; ++i) xs.push_back(rng.uniform());
  const double d = ks_distance(xs, [](double x) {
    return std::clamp(x, 0.0, 1.0);
  });
  // KS statistic for a correct model ~ 1.36/sqrt(n) at 95%.
  EXPECT_LT(d, 1.95 / std::sqrt(50000.0));
}

TEST(KsDistance, DetectsWrongModel) {
  Rng rng(10);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.uniform());
  // Model claims everything is below 0.5: distance ~ 0.5.
  const double d = ks_distance(xs, [](double x) {
    return x < 0.5 ? 2.0 * std::clamp(x, 0.0, 0.5) : 1.0;
  });
  EXPECT_GT(d, 0.3);
}

TEST(KsDistance, PointMassHandled) {
  // All-zero sample vs a cdf with mass 0.7 at 0: distance 0.3.
  std::vector<double> xs(100, 0.0);
  const double d =
      ks_distance(xs, [](double x) { return x >= 0.0 ? 0.7 : 0.0; });
  EXPECT_NEAR(d, 0.7, 1e-12);  // F_n(0-) = 0 vs model 0.7
}

TEST(KsDistance, EmptyThrows) {
  EXPECT_THROW(ks_distance({}, [](double) { return 0.0; }),
               std::invalid_argument);
}

TEST(HistogramTest, BinningAndDensity) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(0.5);  // bin 0
  h.add(9.99);                                // bin 9
  h.add(10.0);                                // top edge -> last bin
  h.add(-1.0);                                // underflow
  h.add(11.0);                                // overflow
  EXPECT_EQ(h.bin_count(0), 100u);
  EXPECT_EQ(h.bin_count(9), 2u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.total(), 104u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_NEAR(h.density(0), 100.0 / 104.0, 1e-12);
}

TEST(HistogramTest, BadArgsThrow) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, AsciiRenders) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
}

// Property: histogram density integrates to ~1 for in-range samples.
TEST(HistogramTest, DensityNormalization) {
  Histogram h(-5.0, 5.0, 50);
  Rng rng(17);
  for (int i = 0; i < 200000; ++i) h.add(rng.normal());
  double mass = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) mass += h.density(b) * h.bin_width();
  EXPECT_NEAR(mass, 1.0, 1e-3);  // tails outside +-5 are ~5.7e-7
}

TEST(P2QuantileTest, RejectsDegenerateQuantiles) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2QuantileTest, EmptyAndSmallSamplesAreExact) {
  P2Quantile med(0.5);
  EXPECT_EQ(med.estimate(), 0.0);
  med.add(3.0);
  EXPECT_DOUBLE_EQ(med.estimate(), 3.0);
  med.add(1.0);
  med.add(2.0);
  // Below five observations the estimate is the exact type-7 quantile.
  EXPECT_DOUBLE_EQ(med.estimate(), 2.0);
  med.add(4.0);
  EXPECT_DOUBLE_EQ(med.estimate(), quantile({3.0, 1.0, 2.0, 4.0}, 0.5));
}

TEST(P2QuantileTest, TracksExactQuantilesOfRandomSamples) {
  for (const double q : {0.25, 0.5, 0.9}) {
    Rng rng(123);
    P2Quantile est(q);
    std::vector<double> sample;
    sample.reserve(20000);
    for (int i = 0; i < 20000; ++i) {
      const double x = rng.normal(10.0, 3.0);
      est.add(x);
      sample.push_back(x);
    }
    const double exact = quantile(std::move(sample), q);
    EXPECT_NEAR(est.estimate(), exact, 0.05) << "q=" << q;
    EXPECT_EQ(est.count(), 20000u);
  }
}

TEST(P2QuantileTest, DeterministicForTheSameInsertionOrder) {
  Rng rng_a(7);
  Rng rng_b(7);
  P2Quantile a(0.5);
  P2Quantile b(0.5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng_a.uniform();
    a.add(x);
    b.add(rng_b.uniform());
  }
  EXPECT_EQ(a.estimate(), b.estimate());
}

TEST(P2QuantileTest, HandlesPointMassSamples) {
  // Degenerate input (all observations equal) must return that value.
  P2Quantile med(0.5);
  for (int i = 0; i < 100; ++i) med.add(32.0);
  EXPECT_DOUBLE_EQ(med.estimate(), 32.0);
}

}  // namespace
}  // namespace leak
