// Tests for the censored log-normal stake law (Eqs 18-22) and the
// probability of exceeding the 1/3 threshold (Eq 24, Figure 10).
#include <gtest/gtest.h>

#include <cmath>

#include "src/bouncing/distribution.hpp"
#include "src/support/numeric.hpp"

namespace leak::bouncing {
namespace {

const analytic::AnalyticConfig kPaper = analytic::AnalyticConfig::paper();

class LawFixture : public ::testing::Test {
 protected:
  LawFixture() : law(0.5, kPaper) {}
  StakeLaw law;
};

TEST_F(LawFixture, ErfFormMatchesEq19) {
  // F(s,t) = 1/2 + 1/2 erf((2^26 ln(s/32) + V t^2/2) / sqrt(4/3 D t^3)).
  const double t = 4024.0, s = 20.0;
  const double q = kPaper.quotient;
  const double d = 6.25, v = 1.5;
  const double arg = (q * std::log(s / 32.0) + v * t * t / 2.0) /
                     std::sqrt(4.0 / 3.0 * d * t * t * t);
  const double expect = 0.5 + 0.5 * std::erf(arg);
  EXPECT_NEAR(law.cdf_uncensored(s, t), expect, 1e-12);
}

TEST_F(LawFixture, PdfIsDerivativeOfCdf) {
  // Probe within +-1 sigma of the median, where the cdf has usable
  // curvature for a finite-difference check.
  const double t = 4024.0;
  const double median = std::exp(law.mu_ln(t));
  const double sigma_s = median * law.sigma_ln(t);
  for (double s : {median - sigma_s, median, median + sigma_s}) {
    const double h = sigma_s * 1e-3;
    const double numeric =
        (law.cdf_uncensored(s + h, t) - law.cdf_uncensored(s - h, t)) /
        (2.0 * h);
    EXPECT_NEAR(law.pdf_uncensored(s, t) / numeric, 1.0, 1e-4) << s;
  }
}

TEST_F(LawFixture, CdfMonotoneInS) {
  const double t = 3500.0;
  double prev = -1.0;
  for (double s = 0.0; s <= 40.0; s += 0.5) {
    const double c = law.cdf_censored(s, t);
    EXPECT_GE(c, prev - 1e-15);
    prev = c;
  }
}

TEST_F(LawFixture, CensoredMassesSumToOne) {
  const double t = 4024.0;
  // Point masses plus interior density integrate to 1.
  const auto xs = leak::num::linspace(law.ejection_threshold() + 1e-9,
                                      law.cap() - 1e-9, 20001);
  std::vector<double> ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    ys[i] = law.pdf_censored(xs[i], t);
  }
  const double interior = leak::num::trapezoid(xs, ys);
  const double total =
      law.mass_ejected(t) + interior + law.mass_capped(t);
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST_F(LawFixture, CensoredCdfEndpoints) {
  const double t = 4024.0;
  EXPECT_DOUBLE_EQ(law.cdf_censored(-1.0, t), 0.0);
  EXPECT_NEAR(law.cdf_censored(0.0, t), law.mass_ejected(t), 1e-12);
  EXPECT_NEAR(law.cdf_censored(32.0, t), 1.0, 1e-12);
  EXPECT_NEAR(law.cdf_censored(100.0, t), 1.0, 1e-12);
}

TEST_F(LawFixture, PdfZeroOutsideInterior) {
  const double t = 2000.0;
  EXPECT_DOUBLE_EQ(law.pdf_censored(law.ejection_threshold() - 0.1, t), 0.0);
  EXPECT_DOUBLE_EQ(law.pdf_censored(law.cap() + 0.1, t), 0.0);
}

TEST_F(LawFixture, MedianFollowsSemiActiveDecay) {
  // mu_ln equals ln of the semi-active stake: the law's median tracks
  // s0 e^{-V t^2 / (2 q)} = the semi-active trajectory with V = 3/2.
  for (double t : {1000.0, 3000.0, 5000.0}) {
    const double median = std::exp(law.mu_ln(t));
    const double semi =
        analytic::stake(analytic::Behavior::kSemiActive, t, kPaper);
    EXPECT_NEAR(median / semi, 1.0, 1e-12) << t;
  }
}

TEST(Eq24, HalfAtOneThird) {
  // beta0 = 1/3 -> threshold = sB(t) = the law's median -> P = 0.5
  // (Figure 10's flat curve), for any t where the median is interior.
  StakeLaw law(0.5, kPaper);
  for (double t : {1000.0, 2500.0, 4000.0}) {
    EXPECT_NEAR(prob_beta_exceeds_third(t, 1.0 / 3.0, law, kPaper), 0.5,
                1e-9)
        << t;
  }
}

TEST(Eq24, IncreasingInTimeForNearThird) {
  StakeLaw law(0.5, kPaper);
  const double b0 = 0.33;
  double prev = 0.0;
  for (double t = 500.0; t <= 7000.0; t += 500.0) {
    const double p = prob_beta_exceeds_third(t, b0, law, kPaper);
    EXPECT_GE(p, prev - 1e-9) << t;
    prev = p;
  }
}

TEST(Eq24, OrderedInBeta0) {
  // Figure 10: curves for larger beta0 dominate.
  StakeLaw law(0.5, kPaper);
  const double t = 4000.0;
  double prev = 1.0;
  for (double b0 : {1.0 / 3.0, 0.3333, 0.333, 0.33, 0.329, 0.3}) {
    const double p = prob_beta_exceeds_third(t, b0, law, kPaper);
    EXPECT_LE(p, prev + 1e-12) << b0;
    prev = p;
  }
}

TEST(Eq24, FarFromThirdStaysNegligible) {
  StakeLaw law(0.5, kPaper);
  EXPECT_LT(prob_beta_exceeds_third(3000.0, 0.3, law, kPaper), 1e-3);
}

TEST(Eq24, RisesSharplyBeforeByzantineEjection) {
  // "The probability rises abruptly right before the expulsion of
  // Byzantine validators" — compare epochs 6000 and 7600 for b0=0.329.
  StakeLaw law(0.5, kPaper);
  const double early = prob_beta_exceeds_third(6000.0, 0.329, law, kPaper);
  const double late = prob_beta_exceeds_third(7600.0, 0.329, law, kPaper);
  EXPECT_GT(late, early * 1.5);
}

TEST(Eq24, ZeroAfterByzantineEjection) {
  StakeLaw law(0.5, kPaper);
  const double t_eject =
      analytic::ejection_epoch(analytic::Behavior::kSemiActive, kPaper);
  EXPECT_DOUBLE_EQ(
      prob_beta_exceeds_third(t_eject + 1.0, 0.33, law, kPaper), 0.0);
}

TEST(Eq24, EitherBranchDoubles) {
  StakeLaw law(0.5, kPaper);
  const double one = prob_beta_exceeds_third(5000.0, 0.33, law, kPaper);
  const double both =
      prob_beta_exceeds_third_either_branch(5000.0, 0.33, law, kPaper);
  EXPECT_NEAR(both, std::min(1.0, 2.0 * one), 1e-12);
}

// Parameterized: p0 only perturbs the variance, not the median (the
// paper notes p0 "does not have much impact on the curve").
class P0Sensitivity : public ::testing::TestWithParam<double> {};

TEST_P(P0Sensitivity, MedianIndependentOfP0) {
  StakeLaw law(GetParam(), kPaper);
  StakeLaw ref(0.5, kPaper);
  EXPECT_NEAR(law.mu_ln(3000.0), ref.mu_ln(3000.0), 1e-12);
  EXPECT_NE(law.sigma_ln(3000.0), ref.sigma_ln(3000.0));
}

INSTANTIATE_TEST_SUITE_P(Grid, P0Sensitivity,
                         ::testing::Values(0.3, 0.4, 0.6, 0.7));

}  // namespace
}  // namespace leak::bouncing
