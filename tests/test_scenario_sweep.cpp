// Tests for the sweep engine: axis parsing (list and lo:hi:step grid),
// cartesian expansion, per-cell seed stability, and the determinism
// contract — a sweep cell reproduces a direct run of the same
// parameters bit-identically, sequential or pool-fanned, which is what
// lets `leakctl sweep` regenerate the fig9 / table1 numbers from the
// registry path.
#include <gtest/gtest.h>

#include <string>

#include "src/bouncing/montecarlo.hpp"
#include "src/scenario/registry.hpp"
#include "src/scenario/sweep.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/support/env.hpp"
#include "src/support/random.hpp"
#include "src/support/table.hpp"

namespace leak::scenario {
namespace {

const Scenario& mc_scenario() {
  return *builtin_registry().find("bouncing-mc");
}

TEST(SweepAxisTest, ParsesCommaListsTyped) {
  SweepAxis axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "beta0=0.3,0.33,0.2",
                                &axis)
                   .has_value());
  EXPECT_EQ(axis.param, "beta0");
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(std::get<double>(axis.values[1]), 0.33);

  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "paths=100,200", &axis)
                   .has_value());
  EXPECT_EQ(std::get<std::int64_t>(axis.values[0]), 100);
}

TEST(SweepAxisTest, ParsesNumericGrids) {
  SweepAxis axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "p0=0.3:0.5:0.1",
                                &axis)
                   .has_value());
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_NEAR(std::get<double>(axis.values[0]), 0.3, 1e-12);
  EXPECT_NEAR(std::get<double>(axis.values[2]), 0.5, 1e-12);

  // Integer grid must land on integers.
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(),
                                "epochs=1000:3000:1000", &axis)
                   .has_value());
  ASSERT_EQ(axis.values.size(), 3u);
  EXPECT_EQ(std::get<std::int64_t>(axis.values[2]), 3000);
  // A grid landing off the integers is rejected for int parameters.
  EXPECT_TRUE(parse_sweep_axis(mc_scenario().spec(),
                               "epochs=1000:2000:250.5", &axis)
                  .has_value());
}

TEST(SweepAxisTest, RejectsMalformedAxes) {
  SweepAxis axis;
  for (const char* bad :
       {"nonexistent=1,2", "beta0=", "beta0=0.3,zebra", "beta0=0.5:0.3:0.1",
        "beta0=0.3:0.5:0", "beta0=0.3:0.5", "=1,2", "beta0=0.3,0.9"}) {
    EXPECT_TRUE(
        parse_sweep_axis(mc_scenario().spec(), bad, &axis).has_value())
        << bad;
  }
}

TEST(SweepExpandTest, RowMajorLastAxisFastest) {
  ScenarioSpec spec("s", "d");
  spec.add_int("paths", "", 1)
      .add_int("seed", "", 0)
      .add_int("threads", "", 0)
      .add_int("a", "", 0)
      .add_int("b", "", 0);
  SweepAxis a{"a", {std::int64_t{1}, std::int64_t{2}}};
  SweepAxis b{"b", {std::int64_t{10}, std::int64_t{20}, std::int64_t{30}}};
  EXPECT_EQ(sweep_cell_count({a, b}), 6u);
  const auto cells = expand_sweep(spec.defaults(), {a, b});
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].get_int("a"), 1);
  EXPECT_EQ(cells[0].get_int("b"), 10);
  EXPECT_EQ(cells[1].get_int("b"), 20);  // last axis varies fastest
  EXPECT_EQ(cells[3].get_int("a"), 2);
  EXPECT_EQ(cells[5].get_int("b"), 30);
}

TEST(SweepRunTest, TwoParamSweepMatchesDirectRunsBitExactly) {
  const auto paths = static_cast<std::int64_t>(env::scaled_count(200));
  auto base = mc_scenario().spec().defaults();
  base.set("paths", paths);
  base.set("epochs", std::int64_t{400});

  SweepAxis beta_axis, epoch_axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "beta0=0.3,0.33",
                                &beta_axis)
                   .has_value());
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "p0=0.4,0.5",
                                &epoch_axis)
                   .has_value());
  const auto sweep = run_sweep(mc_scenario(), base,
                               {beta_axis, epoch_axis}, {});
  ASSERT_EQ(sweep.cells.size(), 4u);

  for (const auto& cell : sweep.cells) {
    const auto direct = mc_scenario().run(cell.params);
    EXPECT_EQ(direct.metrics, cell.result.metrics);
  }
}

TEST(SweepRunTest, ParallelCellsBitIdenticalToSequential) {
  const auto paths = static_cast<std::int64_t>(env::scaled_count(150));
  auto base = mc_scenario().spec().defaults();
  base.set("paths", paths);
  base.set("epochs", std::int64_t{300});
  SweepAxis axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(),
                                "beta0=0.3,0.31,0.32,0.33", &axis)
                   .has_value());
  const auto sequential = run_sweep(mc_scenario(), base, {axis}, {});
  SweepConfig parallel;
  parallel.parallel_cells = true;
  parallel.threads = 4;
  const auto pooled = run_sweep(mc_scenario(), base, {axis}, parallel);
  ASSERT_EQ(sequential.cells.size(), pooled.cells.size());
  for (std::size_t i = 0; i < sequential.cells.size(); ++i) {
    EXPECT_EQ(sequential.cells[i].result.metrics,
              pooled.cells[i].result.metrics)
        << "cell " << i;
  }
  EXPECT_EQ(sequential.to_csv(), pooled.to_csv());
}

TEST(SweepRunTest, VarySeedIsStablePerCell) {
  auto base = mc_scenario().spec().defaults();
  base.set("paths", std::int64_t{50});
  base.set("epochs", std::int64_t{200});
  SweepAxis axis;
  ASSERT_FALSE(
      parse_sweep_axis(mc_scenario().spec(), "p0=0.4,0.5", &axis)
          .has_value());
  SweepConfig config;
  config.vary_seed = true;
  const auto a = run_sweep(mc_scenario(), base, {axis}, config);
  const auto b = run_sweep(mc_scenario(), base, {axis}, config);
  ASSERT_EQ(a.cells.size(), 2u);
  // Stable across invocations...
  EXPECT_EQ(a.cells[0].result.seed, b.cells[0].result.seed);
  EXPECT_EQ(a.cells[1].result.seed, b.cells[1].result.seed);
  // ...distinct across cells, derived from (base seed, index).
  EXPECT_NE(a.cells[0].result.seed, a.cells[1].result.seed);
  const StreamSeeder seeder(
      static_cast<std::uint64_t>(base.get_int("seed")));
  EXPECT_EQ(a.cells[1].result.seed, seeder.seed_for(1) >> 1);
}

// Acceptance: a >= 2-parameter sweep whose grid contains the Figure 9
// configuration reproduces the fig9 Monte Carlo numbers bit-identically
// from the registry path (same seed 99; the path count scales with
// LEAK_TEST_PATH_SCALE but sweep and direct use the same value).
TEST(SweepRunTest, SweepCellReproducesFig9Numbers) {
  const auto paths = static_cast<std::int64_t>(env::scaled_count(1000));
  const std::int64_t fig9_epochs = 4024;
  auto base = mc_scenario().spec().defaults();
  base.set("paths", paths);

  SweepAxis beta_axis, epoch_axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "beta0=0.3,0.33",
                                &beta_axis)
                   .has_value());
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(),
                                "epochs=2012:4024:2012", &epoch_axis)
                   .has_value());
  const auto sweep =
      run_sweep(mc_scenario(), base, {beta_axis, epoch_axis}, {});
  ASSERT_EQ(sweep.cells.size(), 4u);

  // Cell (beta0=0.33, epochs=4024) is the Figure 9 configuration.
  bouncing::McConfig fig9;
  fig9.paths = static_cast<std::size_t>(paths);
  fig9.epochs = static_cast<std::size_t>(fig9_epochs);
  fig9.seed = 99;
  const auto direct = bouncing::run_bouncing_mc(
      fig9, {static_cast<std::size_t>(fig9_epochs)});
  const auto& cell = sweep.cells[3];  // beta0=0.33 x epochs=4024
  ASSERT_EQ(cell.params.get_double("beta0"), 0.33);
  ASSERT_EQ(cell.params.get_int("epochs"), fig9_epochs);
  EXPECT_EQ(cell.result.metric("ejected_fraction"),
            direct.ejected_fraction[0]);
  EXPECT_EQ(cell.result.metric("capped_fraction"),
            direct.capped_fraction[0]);
  EXPECT_EQ(cell.result.metric("prob_beta_exceeds"),
            direct.prob_beta_exceeds[0]);
}

// Acceptance: a sweep containing the Table 1 verification cell (5.1
// robustness row: honest strategy, 400 validators, 5000 epochs, 32
// random splits, seed 2024) reproduces its numbers bit-identically.
TEST(SweepRunTest, SweepCellReproducesTable1VerificationNumbers) {
  const auto trials = static_cast<std::int64_t>(env::scaled_count(32));
  const std::int64_t epochs = env::test_path_scale() < 1.0 ? 2500 : 5000;
  const std::int64_t validators = env::test_path_scale() < 1.0 ? 200 : 400;
  const auto& sc = *builtin_registry().find("partition-trials");
  auto base = sc.spec().defaults();
  base.set("paths", trials);
  base.set("max_epochs", epochs);
  base.set("n_validators", validators);

  SweepAxis strategy_axis, beta_axis;
  ASSERT_FALSE(parse_sweep_axis(sc.spec(), "strategy=honest,slashable",
                                &strategy_axis)
                   .has_value());
  ASSERT_FALSE(
      parse_sweep_axis(sc.spec(), "beta0=0,0.2", &beta_axis).has_value());
  const auto sweep = run_sweep(sc, base, {strategy_axis, beta_axis}, {});
  ASSERT_EQ(sweep.cells.size(), 4u);

  sim::PartitionTrialsConfig cfg;
  cfg.base.n_validators = static_cast<std::uint32_t>(validators);
  cfg.base.strategy = sim::Strategy::kNone;
  cfg.base.max_epochs = static_cast<std::size_t>(epochs);
  cfg.base.trajectory_stride = cfg.base.max_epochs;
  cfg.trials = static_cast<std::size_t>(trials);
  cfg.seed = 2024;
  const auto direct = sim::run_partition_trials(cfg);
  const auto& cell = sweep.cells[0];  // honest x beta0=0
  ASSERT_EQ(cell.params.get_string("strategy"), "honest");
  EXPECT_EQ(cell.result.metric("conflicting_fraction"),
            direct.conflicting_fraction);
  EXPECT_EQ(cell.result.metric("beta_exceeded_fraction"),
            direct.beta_exceeded_fraction);
  EXPECT_EQ(cell.result.metric("mean_conflict_epoch"),
            direct.mean_conflict_epoch);
}

TEST(SweepRunTest, SweepJsonAndCsvArtifactsAreWellFormed) {
  const auto& sc = *builtin_registry().find("duty-cycle");
  auto base = sc.spec().defaults();
  SweepAxis k_axis, t_axis;
  ASSERT_FALSE(parse_sweep_axis(sc.spec(), "k_max=2,3", &k_axis).has_value());
  ASSERT_FALSE(parse_sweep_axis(sc.spec(), "t_eval=500:1500:500", &t_axis)
                   .has_value());
  const auto sweep = run_sweep(sc, base, {k_axis, t_axis}, {});
  ASSERT_EQ(sweep.cells.size(), 6u);

  const auto parsed = json::Value::parse(sweep.to_json().dump(2));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("cells")->size(), 6u);
  EXPECT_EQ(parsed->find("scenario")->as_string(), "duty-cycle");

  const auto csv = Table::from_csv(sweep.to_csv());
  ASSERT_TRUE(csv.has_value());
  EXPECT_EQ(csv->rows(), 6u);
  EXPECT_EQ(csv->headers().front(), "k_max");
}

// sweep_cell_params is the canonical cell identity shared with the
// serve job ledger: index i must reproduce run_sweep's cell i exactly,
// with and without vary_seed.
TEST(SweepCellParamsTest, MatchesRunSweepCellsExactly) {
  auto base = mc_scenario().spec().defaults();
  base.set("paths", std::int64_t{20});
  base.set("epochs", std::int64_t{100});
  SweepAxis beta_axis, p0_axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "beta0=0.3,0.33",
                                &beta_axis)
                   .has_value());
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "p0=0.4,0.5,0.6",
                                &p0_axis)
                   .has_value());
  for (const bool vary_seed : {false, true}) {
    SweepConfig config;
    config.vary_seed = vary_seed;
    const auto sweep =
        run_sweep(mc_scenario(), base, {beta_axis, p0_axis}, config);
    ASSERT_EQ(sweep.cells.size(), 6u);
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
      EXPECT_EQ(sweep_cell_params(base, {beta_axis, p0_axis}, i, vary_seed),
                sweep.cells[i].params)
          << "cell " << i << " vary_seed " << vary_seed;
    }
  }
}

TEST(SweepCellParamsTest, SeedAxisWinsOverVarySeed) {
  auto base = mc_scenario().spec().defaults();
  SweepAxis seed_axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "seed=7,8,9",
                                &seed_axis)
                   .has_value());
  const auto cell =
      sweep_cell_params(base, {seed_axis}, 1, /*vary_seed=*/true);
  EXPECT_EQ(cell.get_int("seed"), 8);
}

TEST(SweepAxesJsonTest, RoundTripsTypedValues) {
  SweepAxis beta_axis, paths_axis;
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "beta0=0.3,0.33",
                                &beta_axis)
                   .has_value());
  ASSERT_FALSE(parse_sweep_axis(mc_scenario().spec(), "paths=50,100",
                                &paths_axis)
                   .has_value());
  const std::vector<SweepAxis> axes = {beta_axis, paths_axis};
  const json::Value doc = axes_to_json(axes);
  std::string error;
  const auto back = axes_from_json(mc_scenario().spec(), doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].param, "beta0");
  EXPECT_EQ(std::get<double>((*back)[0].values[1]), 0.33);
  EXPECT_EQ(std::get<std::int64_t>((*back)[1].values[0]), 50);
  // Serializing the parsed form reproduces the document exactly.
  EXPECT_EQ(axes_to_json(*back).dump(), doc.dump());
}

TEST(SweepAxesJsonTest, AcceptsStringlyValuesViaSpecParser) {
  // SweepResult::to_json archives values as strings; the parser
  // accepts them through the spec's own value parser.
  const auto doc = json::Value::parse(
      R"([{"param": "beta0", "values": ["0.3", "0.33"]}])");
  ASSERT_TRUE(doc.has_value());
  const auto axes = axes_from_json(mc_scenario().spec(), *doc);
  ASSERT_TRUE(axes.has_value());
  EXPECT_EQ(std::get<double>((*axes)[0].values[1]), 0.33);
}

TEST(SweepAxesJsonTest, RejectsUnknownParamsAndBadValues) {
  std::string error;
  const auto unknown = json::Value::parse(
      R"([{"param": "zebra", "values": [1]}])");
  ASSERT_TRUE(unknown.has_value());
  EXPECT_FALSE(
      axes_from_json(mc_scenario().spec(), *unknown, &error).has_value());
  EXPECT_NE(error.find("zebra"), std::string::npos);
  EXPECT_NE(error.find("not a parameter"), std::string::npos);

  for (const char* bad : {
           R"([{"param": "beta0", "values": []}])",        // empty axis
           R"([{"param": "beta0", "values": [0.9]}])",     // out of range
           R"([{"param": "beta0", "values": [true]}])",    // ill-typed
           R"([{"param": "beta0", "values": [0.3], "x": 1}])",  // junk key
           R"([{"param": "beta0"}])",                      // no values
           R"({"param": "beta0", "values": [0.3]})",       // not an array
       }) {
    const auto doc = json::Value::parse(bad);
    ASSERT_TRUE(doc.has_value()) << bad;
    EXPECT_FALSE(
        axes_from_json(mc_scenario().spec(), *doc, &error).has_value())
        << bad;
  }
}

TEST(SweepRunTest, InvalidBaseOrAxisThrows) {
  auto base = mc_scenario().spec().defaults();
  base.set("beta0", 0.9);  // out of range
  SweepAxis axis{"p0", {0.4, 0.5}};
  EXPECT_THROW((void)run_sweep(mc_scenario(), base, {axis}, {}),
               std::invalid_argument);
  base.set("beta0", 0.33);
  SweepAxis empty{"p0", {}};
  EXPECT_THROW((void)run_sweep(mc_scenario(), base, {empty}, {}),
               std::invalid_argument);
  SweepAxis unknown{"zebra", {0.1}};
  EXPECT_THROW((void)run_sweep(mc_scenario(), base, {unknown}, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace leak::scenario
