// Tests for the fault-injection harness: strict JSON round-trip of
// FaultSchedule (hostile inputs must fail fast with actionable
// messages), the FaultDriver's two compilation directions, golden
// bit-identity of the compiled legacy_partition schedules against the
// legacy heal knobs, the cascading staggered-open arc vs the analytic
// recovery forms, and the p0-with-k-branches footgun.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <variant>

#include "src/analytic/config.hpp"
#include "src/analytic/recovery.hpp"
#include "src/faults/driver.hpp"
#include "src/faults/schedule.hpp"
#include "src/sim/partition_sim.hpp"

namespace leak::faults {
namespace {

// ---------------------------------------------------------------------------
// JSON round-trip

FaultSchedule every_kind_schedule() {
  FaultSchedule s;
  s.events.push_back(PartitionOpen{1, 1});
  s.events.push_back(PartitionOpen{40, 2});
  s.events.push_back(LatencyEpisode{50.0, 8.5, LinkClass::kCross, 2.5});
  s.events.push_back(LossEpisode{70.0, 4.0, LinkClass::kIntra, 0.25});
  s.events.push_back(ValidatorOutage{90, 10, 0.5});
  s.events.push_back(PartitionHeal{120, 1, 0});
  s.events.push_back(PartitionHeal{150, 2, 0});
  return s;
}

TEST(FaultScheduleJson, RoundTripPreservesEveryEventKind) {
  const FaultSchedule s = every_kind_schedule();
  s.validate();
  const std::string text = s.dump();
  const FaultSchedule back = FaultSchedule::from_string(text);
  ASSERT_EQ(back.events.size(), s.events.size());
  // Serialization is deterministic, so one more trip is a fixed point.
  EXPECT_EQ(back.dump(), text);

  const auto& open = std::get<PartitionOpen>(back.events[1]);
  EXPECT_EQ(open.epoch, 40u);
  EXPECT_EQ(open.branch, 2u);
  const auto& lat = std::get<LatencyEpisode>(back.events[2]);
  EXPECT_DOUBLE_EQ(lat.from_epoch, 50.0);
  EXPECT_DOUBLE_EQ(lat.span_epochs, 8.5);
  EXPECT_EQ(lat.link, LinkClass::kCross);
  EXPECT_DOUBLE_EQ(lat.factor, 2.5);
  const auto& loss = std::get<LossEpisode>(back.events[3]);
  EXPECT_EQ(loss.link, LinkClass::kIntra);
  EXPECT_DOUBLE_EQ(loss.drop, 0.25);
  const auto& outage = std::get<ValidatorOutage>(back.events[4]);
  EXPECT_EQ(outage.from_epoch, 90u);
  EXPECT_EQ(outage.span_epochs, 10u);
  EXPECT_DOUBLE_EQ(outage.cohort, 0.5);
  const auto& heal = std::get<PartitionHeal>(back.events[5]);
  EXPECT_EQ(heal.epoch, 120u);
  EXPECT_EQ(heal.into, 0u);
}

TEST(FaultScheduleJson, EventStartIsTheOrderingKey) {
  EXPECT_DOUBLE_EQ(event_start(PartitionOpen{7, 1}), 7.0);
  EXPECT_DOUBLE_EQ(event_start(PartitionHeal{9, 1, 0}), 9.0);
  EXPECT_DOUBLE_EQ(event_start(LatencyEpisode{1.5, 2.0, LinkClass::kAll, 2.0}),
                   1.5);
  EXPECT_DOUBLE_EQ(event_start(LossEpisode{3.25, 1.0, LinkClass::kAll, 0.1}),
                   3.25);
  EXPECT_DOUBLE_EQ(event_start(ValidatorOutage{11, 4, 0.2}), 11.0);
}

// Every hostile document must throw std::invalid_argument whose
// message names the offending construct -- never parse silently.
void expect_rejected(const std::string& text, const std::string& needle) {
  try {
    (void)FaultSchedule::from_string(text);
    FAIL() << "accepted hostile schedule: " << text;
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message \"" << e.what() << "\" does not mention \"" << needle
        << "\"";
  }
}

TEST(FaultScheduleJson, RejectsUnknownTopLevelKey) {
  expect_rejected(R"({"version":1,"events":[],"extra":1})", "unknown key");
}

TEST(FaultScheduleJson, RejectsUnsupportedVersion) {
  expect_rejected(R"({"version":2,"events":[]})", "version");
  expect_rejected(R"({"events":[]})", "version");
}

TEST(FaultScheduleJson, RejectsUnknownEventKind) {
  expect_rejected(
      R"({"version":1,"events":[{"kind":"meteor-strike","epoch":3}]})",
      "unknown event kind");
}

TEST(FaultScheduleJson, RejectsTypoedEventKey) {
  // "facter" must not silently mean factor = 1.
  expect_rejected(R"({"version":1,"events":[{"kind":"latency",)"
                  R"("from_epoch":1,"span_epochs":2,"link":"all",)"
                  R"("facter":3.0}]})",
                  "unknown key \"facter\"");
}

TEST(FaultScheduleJson, RejectsMissingAndMistypedKeys) {
  expect_rejected(R"({"version":1,"events":[{"kind":"partition-open"}]})",
                  "missing key \"epoch\"");
  expect_rejected(
      R"({"version":1,"events":[{"kind":"partition-open","epoch":"soon",)"
      R"("branch":1}]})",
      "non-negative integer epoch");
  expect_rejected(
      R"({"version":1,"events":[{"kind":"loss","from_epoch":1,)"
      R"("span_epochs":2,"link":"sideways","drop":0.1}]})",
      "unknown link class");
}

TEST(FaultScheduleJson, RejectsNonMonotoneTimeline) {
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":10,"branch":1},)"
      R"({"kind":"partition-open","epoch":5,"branch":2}]})",
      "ordered by start epoch");
}

TEST(FaultScheduleJson, RejectsPartitionAbuse) {
  // Double open.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":1,"branch":1},)"
      R"({"kind":"partition-open","epoch":2,"branch":1}]})",
      "opened twice");
  // Overlapping heals for one branch.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":1,"branch":1},)"
      R"({"kind":"partition-heal","epoch":10,"branch":1,"into":0},)"
      R"({"kind":"partition-heal","epoch":20,"branch":1,"into":0}]})",
      "overlapping heals");
  // Heal without an open.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-heal","epoch":10,"branch":1,"into":0}]})",
      "without a prior partition-open");
  // Heal not after its open.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":10,"branch":1},)"
      R"({"kind":"partition-heal","epoch":10,"branch":1,"into":0}]})",
      "must be after the branch opened");
  // Branch-to-branch merges are reserved.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":1,"branch":1},)"
      R"({"kind":"partition-open","epoch":1,"branch":2},)"
      R"({"kind":"partition-heal","epoch":10,"branch":2,"into":1}]})",
      "canonical branch 0");
  // Sparse branch ids have no meaning for the simulator.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"partition-open","epoch":1,"branch":2}]})",
      "contiguous from 1");
}

TEST(FaultScheduleJson, RejectsDegenerateEpisodes) {
  expect_rejected(
      R"({"version":1,"events":[{"kind":"latency","from_epoch":1,)"
      R"("span_epochs":0,"link":"all","factor":2.0}]})",
      "span_epochs must be positive");
  expect_rejected(
      R"({"version":1,"events":[{"kind":"latency","from_epoch":1,)"
      R"("span_epochs":2,"link":"all","factor":-1.0}]})",
      "factor must be > 0");
  expect_rejected(
      R"({"version":1,"events":[{"kind":"loss","from_epoch":1,)"
      R"("span_epochs":2,"link":"all","drop":1.5}]})",
      "probability in [0, 1]");
  expect_rejected(
      R"({"version":1,"events":[{"kind":"outage","from_epoch":1,)"
      R"("span_epochs":2,"cohort":0.0}]})",
      "cohort must be in (0, 1]");
}

TEST(FaultScheduleJson, RejectsCollidingWeatherEpisodes) {
  // "all" can afflict the same links as "cross": stacking is ambiguous.
  expect_rejected(
      R"({"version":1,"events":[)"
      R"({"kind":"loss","from_epoch":1,"span_epochs":5,"link":"all",)"
      R"("drop":0.1},)"
      R"({"kind":"loss","from_epoch":3,"span_epochs":5,"link":"cross",)"
      R"("drop":0.2}]})",
      "overlapping loss episodes");
}

TEST(FaultScheduleJson, DisjointLinkClassesMayOverlapInTime) {
  const auto s = FaultSchedule::from_string(
      R"({"version":1,"events":[)"
      R"({"kind":"latency","from_epoch":1,"span_epochs":5,"link":"intra",)"
      R"("factor":2.0},)"
      R"({"kind":"latency","from_epoch":2,"span_epochs":5,"link":"cross",)"
      R"("factor":4.0}]})");
  EXPECT_EQ(s.events.size(), 2u);
}

TEST(FaultScheduleJson, RejectsTruncatedDocument) {
  EXPECT_THROW((void)FaultSchedule::from_string(
                   R"({"version":1,"events":[{"kind":"partition-)"),
               std::invalid_argument);
}

std::string temp_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(FaultScheduleJson, LoadFileErrorsArePrefixedWithThePath) {
  const std::string missing = temp_path("no_such_schedule.json");
  try {
    (void)FaultSchedule::load_file(missing);
    FAIL() << "loaded a missing file";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(missing), std::string::npos);
  }

  // A torn write (truncated mid-document) must fail the strict parse,
  // again naming the file.
  const std::string torn = temp_path("torn_schedule.json");
  {
    std::ofstream out(torn);
    out << R"({"version":1,"events":[{"kind":"loss","from_)";
  }
  try {
    (void)FaultSchedule::load_file(torn);
    FAIL() << "parsed a torn schedule file";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(torn), std::string::npos);
  }
  std::remove(torn.c_str());
}

TEST(FaultScheduleJson, LoadFileRoundTripsADumpedSchedule) {
  const FaultSchedule s = every_kind_schedule();
  const std::string path = temp_path("schedule_roundtrip.json");
  {
    std::ofstream out(path);
    out << s.dump();
  }
  const FaultSchedule back = FaultSchedule::load_file(path);
  EXPECT_EQ(back.dump(), s.dump());
  std::remove(path.c_str());
}

TEST(FaultScheduleJson, FactoriesBuildValidTimelines) {
  const auto legacy = FaultSchedule::legacy_partition(3, 2000, 500);
  ASSERT_EQ(legacy.events.size(), 4u);
  EXPECT_EQ(std::get<PartitionOpen>(legacy.events[0]).epoch, 1u);
  EXPECT_EQ(std::get<PartitionOpen>(legacy.events[1]).epoch, 1u);
  EXPECT_EQ(std::get<PartitionHeal>(legacy.events[2]).epoch, 2000u);
  EXPECT_EQ(std::get<PartitionHeal>(legacy.events[3]).epoch, 2500u);
  EXPECT_EQ(legacy.max_branch(), 2u);

  const auto cascade = FaultSchedule::staggered_partition(3, 300, 2500, 500);
  ASSERT_EQ(cascade.events.size(), 4u);
  EXPECT_EQ(std::get<PartitionOpen>(cascade.events[1]).epoch, 301u);
  EXPECT_EQ(std::get<PartitionHeal>(cascade.events[3]).epoch, 3000u);

  // No-heal family: opens only.
  const auto open_only = FaultSchedule::staggered_partition(4, 100, 0, 0);
  EXPECT_EQ(open_only.events.size(), 3u);
  EXPECT_EQ(open_only.max_branch(), 3u);

  EXPECT_THROW((void)FaultSchedule::staggered_partition(1, 0, 0, 0),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FaultDriver: compile_partition

TEST(FaultDriver, CompilePartitionPopulatesWindowsAndClearsLegacyKnobs) {
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 120;
  cfg.heal_epoch = 999;   // stale legacy knobs must be cleared
  cfg.heal_stagger = 77;
  compile_partition(FaultSchedule::staggered_partition(3, 300, 2500, 500),
                    &cfg);
  EXPECT_EQ(cfg.branches, 3u);
  ASSERT_EQ(cfg.windows.size(), 2u);
  EXPECT_EQ(cfg.windows[0].open_epoch, 1u);
  EXPECT_EQ(cfg.windows[0].heal_epoch, 2500u);
  EXPECT_EQ(cfg.windows[1].open_epoch, 301u);
  EXPECT_EQ(cfg.windows[1].heal_epoch, 3000u);
  EXPECT_EQ(cfg.heal_epoch, 0u);
  EXPECT_EQ(cfg.heal_stagger, 0u);
  EXPECT_EQ(cfg.n_validators, 120u);  // untouched
}

TEST(FaultDriver, CompilePartitionCarriesOutages) {
  FaultSchedule s = FaultSchedule::legacy_partition(2, 600, 0);
  s.events.push_back(ValidatorOutage{900, 150, 0.5});
  sim::PartitionSimConfig cfg;
  compile_partition(s, &cfg);
  ASSERT_EQ(cfg.outages.size(), 1u);
  EXPECT_EQ(cfg.outages[0].from_epoch, 900u);
  EXPECT_EQ(cfg.outages[0].span_epochs, 150u);
  EXPECT_DOUBLE_EQ(cfg.outages[0].cohort, 0.5);
}

TEST(FaultDriver, CompilePartitionRejectsWeatherAndEmptySchedules) {
  sim::PartitionSimConfig cfg;
  EXPECT_THROW(compile_partition(FaultSchedule{}, &cfg),
               std::invalid_argument);

  FaultSchedule weather = FaultSchedule::legacy_partition(2, 0, 0);
  weather.events.push_back(LatencyEpisode{10.0, 2.0, LinkClass::kAll, 3.0});
  try {
    compile_partition(weather, &cfg);
    FAIL() << "compiled a latency episode into the partition path";
  } catch (const std::invalid_argument& e) {
    // The message must route the user to the right backend.
    EXPECT_NE(std::string(e.what()).find("apply_network"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// FaultDriver: apply_network

TEST(FaultDriver, ApplyNetworkConvertsEpochsToSeconds) {
  FaultSchedule s;
  s.events.push_back(LatencyEpisode{2.0, 2.0, LinkClass::kIntra, 3.0});
  s.events.push_back(LossEpisode{4.0, 2.0, LinkClass::kCross, 0.15});
  net::NetworkConfig cfg;
  cfg.num_nodes = 1;
  apply_network(s, 384.0, &cfg);  // 32 slots * 12 s
  ASSERT_EQ(cfg.latency_episodes.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.latency_episodes[0].from, 768.0);
  EXPECT_DOUBLE_EQ(cfg.latency_episodes[0].to, 1536.0);
  EXPECT_EQ(cfg.latency_episodes[0].link, net::LinkClass::kIntra);
  EXPECT_DOUBLE_EQ(cfg.latency_episodes[0].factor, 3.0);
  ASSERT_EQ(cfg.loss_episodes.size(), 1u);
  EXPECT_DOUBLE_EQ(cfg.loss_episodes[0].from, 1536.0);
  EXPECT_DOUBLE_EQ(cfg.loss_episodes[0].to, 2304.0);
  EXPECT_EQ(cfg.loss_episodes[0].link, net::LinkClass::kCross);
  EXPECT_DOUBLE_EQ(cfg.loss_episodes[0].drop, 0.15);
}

TEST(FaultDriver, ApplyNetworkRejectsPartitionEventsAndBadScale) {
  net::NetworkConfig cfg;
  cfg.num_nodes = 1;
  try {
    apply_network(FaultSchedule::legacy_partition(2, 0, 0), 384.0, &cfg);
    FAIL() << "applied a partition event to the network path";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("compile_partition"),
              std::string::npos);
  }
  FaultSchedule weather;
  weather.events.push_back(LossEpisode{1.0, 1.0, LinkClass::kAll, 0.1});
  EXPECT_THROW(apply_network(weather, 0.0, &cfg), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Golden bit-identity: legacy knobs vs the compiled schedule

void expect_same_result(const sim::PartitionSimResult& a,
                        const sim::PartitionSimResult& b) {
  ASSERT_EQ(a.branch.size(), b.branch.size());
  for (std::size_t i = 0; i < a.branch.size(); ++i) {
    const auto& x = a.branch[i];
    const auto& y = b.branch[i];
    EXPECT_EQ(x.supermajority_epoch, y.supermajority_epoch) << "branch " << i;
    EXPECT_EQ(x.finalization_epoch, y.finalization_epoch) << "branch " << i;
    EXPECT_EQ(x.beta_peak, y.beta_peak) << "branch " << i;
    EXPECT_EQ(x.beta_peak_epoch, y.beta_peak_epoch) << "branch " << i;
    EXPECT_EQ(x.honest_ejection_epoch, y.honest_ejection_epoch)
        << "branch " << i;
    EXPECT_EQ(x.healed_epoch, y.healed_epoch) << "branch " << i;
    EXPECT_EQ(x.ratio_trajectory, y.ratio_trajectory) << "branch " << i;
    EXPECT_EQ(x.beta_trajectory, y.beta_trajectory) << "branch " << i;
  }
  EXPECT_EQ(a.conflicting_finalization_epoch, b.conflicting_finalization_epoch);
  EXPECT_EQ(a.beta_exceeded_third_both, b.beta_exceeded_third_both);
  EXPECT_EQ(a.n_byzantine, b.n_byzantine);
  EXPECT_EQ(a.n_honest_per_branch, b.n_honest_per_branch);
  EXPECT_EQ(a.heal_complete_epoch, b.heal_complete_epoch);
  EXPECT_EQ(a.recovery_complete_epoch, b.recovery_complete_epoch);
  EXPECT_EQ(a.residual_loss_total_eth, b.residual_loss_total_eth);
  ASSERT_EQ(a.recovery.size(), b.recovery.size());
  for (std::size_t i = 0; i < a.recovery.size(); ++i) {
    const auto& x = a.recovery[i];
    const auto& y = b.recovery[i];
    EXPECT_EQ(x.from_branch, y.from_branch);
    EXPECT_EQ(x.class_size, y.class_size);
    EXPECT_EQ(x.healed_epoch, y.healed_epoch);
    EXPECT_EQ(x.return_epoch, y.return_epoch);
    EXPECT_EQ(x.ejected_before_return, y.ejected_before_return);
    EXPECT_EQ(x.score_at_return, y.score_at_return);
    EXPECT_EQ(x.stake_at_return_eth, y.stake_at_return_eth);
    EXPECT_EQ(x.residual_loss_eth, y.residual_loss_eth);
    EXPECT_EQ(x.recovery_epochs, y.recovery_epochs);
  }
}

TEST(FaultDriverGolden, LegacyKnobsAndCompiledScheduleAreBitIdentical) {
  struct Case {
    std::uint32_t branches;
    std::size_t heal_epoch;
    std::size_t heal_stagger;
  };
  for (const Case c : {Case{2, 1200, 0}, Case{3, 1200, 300},
                       Case{4, 900, 200}}) {
    sim::PartitionSimConfig legacy;
    legacy.n_validators = 150;
    legacy.max_epochs = 3000;
    legacy.branches = c.branches;
    legacy.heal_epoch = c.heal_epoch;
    legacy.heal_stagger = c.heal_stagger;

    sim::PartitionSimConfig compiled;
    compiled.n_validators = 150;
    compiled.max_epochs = 3000;
    compile_partition(
        FaultSchedule::legacy_partition(c.branches, c.heal_epoch,
                                        c.heal_stagger),
        &compiled);
    ASSERT_EQ(compiled.branches, c.branches);

    SCOPED_TRACE("branches=" + std::to_string(c.branches) +
                 " heal=" + std::to_string(c.heal_epoch) + "+" +
                 std::to_string(c.heal_stagger));
    expect_same_result(sim::run_partition_sim(legacy),
                       sim::run_partition_sim(compiled));

    // The randomized-split trials must agree trial for trial too.
    sim::PartitionTrialsConfig ta;
    ta.base = legacy;
    ta.trials = 4;
    ta.seed = 99;
    sim::PartitionTrialsConfig tb = ta;
    tb.base = compiled;
    const auto ra = sim::run_partition_trials(ta);
    const auto rb = sim::run_partition_trials(tb);
    EXPECT_EQ(ra.conflict_epochs, rb.conflict_epochs);
    EXPECT_EQ(ra.beta_peaks, rb.beta_peaks);
    EXPECT_EQ(ra.residual_losses_eth, rb.residual_losses_eth);
    EXPECT_EQ(ra.recovery_epochs, rb.recovery_epochs);
  }
}

// ---------------------------------------------------------------------------
// Cascading opens: re-entrant leak vs the analytic recovery forms

TEST(FaultCascade, StaggeredOpensMatchAnalyticRecoveryPerClass) {
  // The cascading-partitions scenario geometry: branch 2 opens 300
  // epochs after branch 1, heals arrive staggered.  Each healed class
  // must still match the exact discrete recurrence (sub-0.1% of its
  // stake) and the closed form (within its discretization error).
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 120;
  cfg.max_epochs = 6000;
  compile_partition(FaultSchedule::staggered_partition(3, 300, 2500, 500),
                    &cfg);
  const auto r = sim::run_partition_sim(cfg);
  ASSERT_GE(r.branch[0].finalization_epoch, 0);
  ASSERT_GT(r.recovery_complete_epoch, 3000);
  const auto acfg = analytic::AnalyticConfig::paper();
  std::size_t checked = 0;
  for (const auto& rec : r.recovery) {
    if (rec.return_epoch < 0 || rec.ejected_before_return) continue;
    ASSERT_GT(rec.score_at_return, 0.0) << "b=" << rec.from_branch;
    const double discrete = analytic::residual_loss_discrete(
        rec.score_at_return, rec.stake_at_return_eth, acfg);
    const double closed = analytic::residual_loss(
        rec.score_at_return, rec.stake_at_return_eth, acfg);
    EXPECT_NEAR(rec.residual_loss_eth, discrete,
                1e-3 * rec.stake_at_return_eth)
        << "b=" << rec.from_branch;
    EXPECT_NEAR(rec.residual_loss_eth, closed, 0.01 * (closed + 0.01))
        << "b=" << rec.from_branch;
    ++checked;
  }
  EXPECT_GE(checked, 1u);
}

TEST(FaultCascade, OutageReentersTheLeakAndDelaysRecovery) {
  // Baseline: two branches heal at 600, recovery drains undisturbed.
  sim::PartitionSimConfig plain;
  plain.n_validators = 150;
  plain.max_epochs = 4000;
  compile_partition(FaultSchedule::legacy_partition(2, 600, 0), &plain);
  const auto base = sim::run_partition_sim(plain);
  ASSERT_GT(base.recovery_complete_epoch, 600);

  // Same arc plus a half-cohort outage at 650, inside the drain
  // window: supermajority is lost mid-recovery, the leak re-enters,
  // and the full recovery can only complete after the outage lifts.
  FaultSchedule s = FaultSchedule::legacy_partition(2, 600, 0);
  s.events.push_back(ValidatorOutage{650, 150, 0.5});
  sim::PartitionSimConfig cfg;
  cfg.n_validators = 150;
  cfg.max_epochs = 4000;
  compile_partition(s, &cfg);
  const auto r = sim::run_partition_sim(cfg);
  ASSERT_GE(r.branch[0].finalization_epoch, 0);
  EXPECT_GT(r.recovery_complete_epoch, 800);  // after the outage window
  EXPECT_GT(r.recovery_complete_epoch, base.recovery_complete_epoch);
}

TEST(FaultCascade, NonDefaultP0WithManyBranchesIsRejected) {
  // The k-branch split is uniform; silently ignoring p0 was the old
  // footgun.  Both entry points must refuse the combination.
  sim::PartitionSimConfig cfg;
  cfg.branches = 3;
  cfg.p0 = 0.25;
  EXPECT_THROW((void)sim::run_partition_sim(cfg), std::invalid_argument);
  sim::PartitionTrialsConfig tcfg;
  tcfg.base = cfg;
  tcfg.trials = 2;
  EXPECT_THROW((void)sim::run_partition_trials(tcfg), std::invalid_argument);
  // p0 stays meaningful for the paper's two-branch scenarios.
  cfg.branches = 2;
  cfg.max_epochs = 50;
  EXPECT_NO_THROW((void)sim::run_partition_sim(cfg));
}

}  // namespace
}  // namespace leak::faults
