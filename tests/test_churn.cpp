// Tests for the exit churn limit and its effect on the ejection wave.
#include <gtest/gtest.h>

#include "src/penalties/churn.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/sim/partition_sim.hpp"

namespace leak::penalties {
namespace {

TEST(ChurnLimit, SpecFormula) {
  EXPECT_EQ(churn_limit(0), 4u);
  EXPECT_EQ(churn_limit(1000), 4u);
  EXPECT_EQ(churn_limit(65536 * 5), 5u);
  EXPECT_EQ(churn_limit(65536 * 100), 100u);
}

TEST(ExitQueueTest, FifoAndIdempotent) {
  chain::ValidatorRegistry reg(10);
  ExitQueue q;
  q.request_exit(ValidatorIndex{3});
  q.request_exit(ValidatorIndex{1});
  q.request_exit(ValidatorIndex{3});  // duplicate ignored
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_TRUE(q.is_queued(ValidatorIndex{3}));
  const auto out = q.process_epoch(reg, Epoch{5});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], ValidatorIndex{3});  // FIFO order
  EXPECT_EQ(out[1], ValidatorIndex{1});
  EXPECT_FALSE(reg.is_active(ValidatorIndex{3}, Epoch{5}));
  EXPECT_EQ(q.pending(), 0u);
}

TEST(ExitQueueTest, RespectsPerEpochLimit) {
  chain::ValidatorRegistry reg(100);
  ExitQueue q;  // limit = max(4, 100/65536) = 4
  for (std::uint32_t i = 0; i < 10; ++i) q.request_exit(ValidatorIndex{i});
  EXPECT_EQ(q.process_epoch(reg, Epoch{1}).size(), 4u);
  EXPECT_EQ(q.pending(), 6u);
  EXPECT_EQ(q.process_epoch(reg, Epoch{2}).size(), 4u);
  EXPECT_EQ(q.process_epoch(reg, Epoch{3}).size(), 2u);
}

TEST(ChurnTracker, EjectionWaveSmearedOverEpochs) {
  // 64 inactive validators, churn limit 4/epoch: the wave that the
  // instantaneous model finishes in one epoch takes ~16 epochs.
  chain::ValidatorRegistry reg(64);
  SpecConfig spec = SpecConfig::paper();
  spec.use_churn_limit = true;
  InactivityTracker tracker(reg, spec);
  const std::vector<std::uint8_t> inactive(64, 0);
  std::size_t total_ejected = 0;
  std::uint64_t first_ejection = 0, last_ejection = 0;
  for (std::uint64_t t = 1; t <= 6000 && total_ejected < 64; ++t) {
    const auto rep = tracker.process_epoch(Epoch{t}, Epoch{0}, inactive);
    if (!rep.ejected.empty()) {
      if (first_ejection == 0) first_ejection = t;
      last_ejection = t;
      total_ejected += rep.ejected.size();
      EXPECT_LE(rep.ejected.size(), 4u);
    }
  }
  EXPECT_EQ(total_ejected, 64u);
  EXPECT_GE(last_ejection - first_ejection + 1, 16u);
}

TEST(ChurnTracker, QueuedValidatorsKeepLeaking) {
  chain::ValidatorRegistry reg(64);
  SpecConfig spec = SpecConfig::paper();
  spec.use_churn_limit = true;
  InactivityTracker tracker(reg, spec);
  const std::vector<std::uint8_t> inactive(64, 0);
  // Run to mid-wave (64 exits at 4/epoch take ~16 epochs from ~4661):
  // the still-queued validators' balances sit at/below the threshold.
  const std::uint64_t mid_wave = 4666;
  for (std::uint64_t t = 1; t <= mid_wave; ++t) {
    tracker.process_epoch(Epoch{t}, Epoch{0}, inactive);
  }
  std::size_t below = 0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const auto& rec = reg.at(ValidatorIndex{i});
    if (reg.is_active(ValidatorIndex{i}, Epoch{mid_wave}) &&
        rec.balance <= spec.ejection_balance) {
      ++below;
    }
  }
  EXPECT_GT(below, 0u);  // the queue is backed up
  EXPECT_GT(tracker.pending_exits(), 0u);
}

TEST(ChurnAblation, PartitionRecoveryDelayed) {
  // Scenario 5.1 at p0 = 0.5: the branch recovers 2/3 via the ejection
  // wave.  With the churn limit (4/epoch over 500 inactive validators)
  // recovery needs only the first ~25 removals (the ratio sits just
  // under 2/3 at the threshold epoch), so the supermajority slips by a
  // handful of epochs — while the wave itself smears over ~125 epochs
  // (previous test).
  sim::PartitionSimConfig instant;
  instant.n_validators = 1000;
  instant.strategy = sim::Strategy::kNone;
  instant.max_epochs = 6000;
  const auto fast = sim::run_partition_sim(instant);

  sim::PartitionSimConfig churned = instant;
  churned.spec.use_churn_limit = true;
  const auto slow = sim::run_partition_sim(churned);

  ASSERT_GT(fast.branch[0].supermajority_epoch, 0);
  ASSERT_GT(slow.branch[0].supermajority_epoch, 0);
  const auto delay = slow.branch[0].supermajority_epoch -
                     fast.branch[0].supermajority_epoch;
  EXPECT_GT(delay, 2);
  EXPECT_LT(delay, 40);
}

}  // namespace
}  // namespace leak::penalties
