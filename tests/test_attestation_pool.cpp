// Tests for the attestation aggregation pool.
#include <gtest/gtest.h>

#include "src/chain/attestation_pool.hpp"

namespace leak::chain {
namespace {

class PoolFixture : public ::testing::Test {
 protected:
  PoolFixture() { keys_vec = keys.generate(16, 5); }

  Attestation make(std::uint32_t who, std::uint64_t slot,
                   const std::string& head_tag = "h") {
    Attestation a;
    a.attester = ValidatorIndex{who};
    a.slot = Slot{slot};
    a.head = crypto::sha256(head_tag);
    a.source = Checkpoint{crypto::sha256("src"), Epoch{0}};
    a.target = Checkpoint{crypto::sha256("tgt"), epoch_of(Slot{slot})};
    a.sign(keys_vec[who]);
    return a;
  }

  crypto::KeyRegistry keys;
  std::vector<crypto::KeyPair> keys_vec;
  AttestationPool pool;
};

TEST_F(PoolFixture, IngestAndAggregateSameData) {
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(pool.ingest(make(i, 7), keys));
  }
  EXPECT_EQ(pool.groups(), 1u);
  EXPECT_EQ(pool.size(), 5u);
  const auto agg = pool.aggregate_for(AttestationData::of(make(0, 7)));
  ASSERT_TRUE(agg.has_value());
  EXPECT_EQ(agg->participation(), 5u);
}

TEST_F(PoolFixture, RejectsBadSignature) {
  Attestation a = make(1, 3);
  a.signature.mac[0] ^= 0xff;
  EXPECT_FALSE(pool.ingest(a, keys));
  EXPECT_EQ(pool.size(), 0u);
}

TEST_F(PoolFixture, RejectsDuplicates) {
  EXPECT_TRUE(pool.ingest(make(2, 4), keys));
  EXPECT_FALSE(pool.ingest(make(2, 4), keys));
  EXPECT_EQ(pool.size(), 1u);
}

TEST_F(PoolFixture, SeparatesDifferentHeads) {
  pool.ingest(make(0, 9, "branchA"), keys);
  pool.ingest(make(1, 9, "branchB"), keys);
  EXPECT_EQ(pool.groups(), 2u);
}

TEST_F(PoolFixture, SelectionOrdersByParticipation) {
  for (std::uint32_t i = 0; i < 6; ++i) pool.ingest(make(i, 10, "big"), keys);
  for (std::uint32_t i = 6; i < 9; ++i) {
    pool.ingest(make(i, 11, "small"), keys);
  }
  const auto picked = pool.select_for_block(2);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].participation(), 6u);
  EXPECT_EQ(picked[1].participation(), 3u);
}

TEST_F(PoolFixture, SelectionTieBreaksOnOlderSlot) {
  pool.ingest(make(0, 20, "x"), keys);
  pool.ingest(make(1, 15, "y"), keys);
  const auto picked = pool.select_for_block(2);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].data.slot, Slot{15});
}

TEST_F(PoolFixture, SelectionCapsCount) {
  for (std::uint32_t i = 0; i < 8; ++i) {
    pool.ingest(make(i, 30 + i, "t" + std::to_string(i)), keys);
  }
  EXPECT_EQ(pool.select_for_block(3).size(), 3u);
  EXPECT_EQ(pool.select_for_block(100).size(), 8u);
}

TEST_F(PoolFixture, PruneDropsOldGroups) {
  pool.ingest(make(0, 5), keys);
  pool.ingest(make(1, 40, "later"), keys);
  EXPECT_EQ(pool.prune_before(Slot{32}), 1u);
  EXPECT_EQ(pool.groups(), 1u);
  EXPECT_EQ(pool.size(), 1u);
  // The pruned attester may attest again for a newer slot.
  EXPECT_TRUE(pool.ingest(make(0, 41, "later2"), keys));
}

TEST_F(PoolFixture, AggregateVerifiesAgainstRegistry) {
  for (std::uint32_t i = 0; i < 4; ++i) pool.ingest(make(i, 12), keys);
  const auto agg = pool.aggregate_for(AttestationData::of(make(0, 12)));
  ASSERT_TRUE(agg.has_value());
  EXPECT_TRUE(agg->signature.verify(make(0, 12).signing_root(), keys));
}

TEST_F(PoolFixture, UnknownDataReturnsNothing) {
  EXPECT_FALSE(pool.aggregate_for(AttestationData::of(make(0, 99)))
                   .has_value());
}

}  // namespace
}  // namespace leak::chain
