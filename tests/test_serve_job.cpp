// Tests for the serve job manifest: JSON round-trip, content-addressed
// identity (same experiment -> same id; execution policy is not
// identity), cell parameter/fingerprint stability, and validation of
// hostile manifests.
#include <gtest/gtest.h>

#include <string>

#include "src/scenario/registry.hpp"
#include "src/scenario/sweep.hpp"
#include "src/serve/job.hpp"

namespace leak::serve {
namespace {

using scenario::builtin_registry;

[[nodiscard]] JobSpec make_job() {
  const auto& sc = *builtin_registry().find("bouncing-mc");
  JobSpec job;
  job.scenario = "bouncing-mc";
  job.base = sc.spec().defaults();
  job.base.set("paths", std::int64_t{16});
  job.base.set("epochs", std::int64_t{100});
  scenario::SweepAxis axis;
  EXPECT_FALSE(
      scenario::parse_sweep_axis(sc.spec(), "beta0=0.3,0.33", &axis)
          .has_value());
  job.axes.push_back(std::move(axis));
  return job;
}

TEST(ServeJobTest, ManifestRoundTripsThroughJson) {
  const JobSpec job = make_job();
  std::string error;
  const auto back =
      JobSpec::from_json(builtin_registry(), job.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->scenario, job.scenario);
  EXPECT_EQ(back->base, job.base);
  EXPECT_EQ(back->config.vary_seed, job.config.vary_seed);
  EXPECT_EQ(back->config.workers, job.config.workers);
  EXPECT_EQ(back->config.max_retries, job.config.max_retries);
  EXPECT_EQ(back->id(), job.id());
  EXPECT_EQ(back->to_json().dump(), job.to_json().dump());
}

TEST(ServeJobTest, IdIsContentAddressed) {
  const JobSpec job = make_job();
  EXPECT_EQ(job.id().size(), 16u);

  // Execution policy (workers, retries) is not identity.
  JobSpec policy = make_job();
  policy.config.workers = 7;
  policy.config.max_retries = 9;
  EXPECT_EQ(policy.id(), job.id());

  // The experiment inputs are.
  JobSpec other_seed = make_job();
  other_seed.base.set("seed", std::int64_t{123});
  EXPECT_NE(other_seed.id(), job.id());
  JobSpec other_axes = make_job();
  const scenario::ParamValue extra_value = 0.35;
  other_axes.axes[0].values.push_back(extra_value);
  EXPECT_NE(other_axes.id(), job.id());
  JobSpec varied = make_job();
  varied.config.vary_seed = true;
  EXPECT_NE(varied.id(), job.id());
}

TEST(ServeJobTest, CellParamsMatchSweepIdentityWithThreadsPinned) {
  const JobSpec job = make_job();
  ASSERT_EQ(job.cell_count(), 2u);
  for (std::size_t i = 0; i < job.cell_count(); ++i) {
    auto expected = scenario::sweep_cell_params(job.base, job.axes, i,
                                                job.config.vary_seed);
    expected.set("threads", std::int64_t{1});
    EXPECT_EQ(job.cell_params(i), expected) << "cell " << i;
  }
  EXPECT_EQ(job.cell_params(0).get_double("beta0"), 0.3);
  EXPECT_EQ(job.cell_params(1).get_double("beta0"), 0.33);
}

TEST(ServeJobTest, CellFingerprintsAreStableAndDistinct) {
  const JobSpec job = make_job();
  EXPECT_EQ(job.cell_fingerprint(0), job.cell_fingerprint(0));
  EXPECT_NE(job.cell_fingerprint(0), job.cell_fingerprint(1));
  // A changed base parameter moves every cell's fingerprint.
  JobSpec other = make_job();
  other.base.set("epochs", std::int64_t{200});
  EXPECT_NE(other.cell_fingerprint(0), job.cell_fingerprint(0));
}

TEST(ServeJobTest, FromJsonRejectsHostileManifests) {
  std::string error;
  for (const char* bad : {
           R"({"scenario": "no-such-scenario"})",
           R"({"version": 2, "scenario": "bouncing-mc"})",
           R"({"scenario": "bouncing-mc",
               "axes": [{"param": "zebra", "values": [1]}]})",
           R"({"scenario": "bouncing-mc",
               "params": {"beta0": 0.9}})",
           R"({"scenario": "bouncing-mc", "config": {"zebra": 1}})",
           R"({"scenario": "bouncing-mc", "config": {"workers": 0}})",
           R"([])",
           R"({})",
       }) {
    const auto doc = json::Value::parse(bad);
    ASSERT_TRUE(doc.has_value()) << bad;
    error.clear();
    EXPECT_FALSE(
        JobSpec::from_json(builtin_registry(), *doc, &error).has_value())
        << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ServeJobTest, FromJsonFillsDefaultsForOmittedMembers) {
  const auto doc = json::Value::parse(R"({"scenario": "bouncing-mc"})");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  const auto job = JobSpec::from_json(builtin_registry(), *doc, &error);
  ASSERT_TRUE(job.has_value()) << error;
  EXPECT_EQ(job->base,
            builtin_registry().find("bouncing-mc")->spec().defaults());
  EXPECT_TRUE(job->axes.empty());
  EXPECT_EQ(job->cell_count(), 1u);  // a single-cell job is legal
}

}  // namespace
}  // namespace leak::serve
