// Partial-synchrony network with a two-region partition, following the
// paper's system model (Section 2):
//
//  * best-effort broadcast between validators;
//  * before GST the two honest regions cannot reach each other, while
//    communication *within* a region keeps the synchronous delay bound;
//  * after GST every message is delivered within the known bound Delta
//    (messages sent before GST arrive by GST + Delta);
//  * Byzantine validators are connected to both regions at all times and
//    may deliberately withhold messages, releasing them later to chosen
//    audiences (the bouncing attack's key capability).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/net/event_queue.hpp"
#include "src/support/random.hpp"
#include "src/support/types.hpp"

namespace leak::net {

/// Which side of the partition a node lives on.  Byzantine nodes are
/// kBoth: they straddle the partition.
enum class Region : std::uint8_t { kOne = 0, kTwo = 1, kBoth = 2 };

/// An opaque message: payload identifier plus sender.  Higher layers map
/// `payload_id` back to real content (attestations, blocks).
struct Packet {
  ValidatorIndex from{};
  std::uint64_t payload_id = 0;
};

/// Delivery callback: (recipient, packet, delivery time).
using DeliverFn = std::function<void(ValidatorIndex, const Packet&)>;

/// Which links a scripted weather episode afflicts.  A link is
/// cross-region when both endpoints sit in distinct fixed regions;
/// links within a region, or touching a straddling (kBoth) node, are
/// intra-region.
enum class LinkClass : std::uint8_t { kAll = 0, kIntra = 1, kCross = 2 };

/// A scripted latency episode: while the send time is in [from, to),
/// per-message jitter on matching links is stretched by `factor`
/// beyond the minimum delay (delays up to min_delay + factor *
/// (delta - min_delay)), deliberately violating the synchrony bound
/// when factor > 1.
struct LatencyEpisode {
  double from = 0.0;  ///< seconds, inclusive
  double to = 0.0;    ///< seconds, exclusive
  LinkClass link = LinkClass::kAll;
  double factor = 1.0;
};

/// A scripted loss episode: messages sent on matching links while the
/// episode is active are dropped with probability `drop`.
struct LossEpisode {
  double from = 0.0;
  double to = 0.0;
  LinkClass link = LinkClass::kAll;
  double drop = 0.0;
};

/// Configuration of the network model.
struct NetworkConfig {
  std::uint32_t num_nodes = 0;
  /// Synchronous-period delay bound Delta, seconds.
  double delta = 1.0;
  /// Minimum propagation delay, seconds.
  double min_delay = 0.05;
  /// Global Stabilization Time (seconds); before it the partition holds.
  SimTime gst = 0.0;
  /// RNG seed for per-message jitter.
  std::uint64_t seed = 42;
  /// Scripted network weather (compiled from a faults::FaultSchedule
  /// by faults::apply_network).  Loss draws come from a dedicated
  /// StreamSeeder lane off `seed`, so an empty episode list is
  /// bit-identical to the pre-weather network -- the legacy jitter
  /// stream is never perturbed.
  std::vector<LatencyEpisode> latency_episodes;
  std::vector<LossEpisode> loss_episodes;
};

/// The simulated network.  All sends are best-effort broadcast or unicast
/// with per-message uniform jitter in [min_delay, delta].
class Network {
 public:
  Network(EventQueue& queue, NetworkConfig config);

  /// Assign a node to a region (default: everyone in region one).
  void set_region(ValidatorIndex v, Region r);
  [[nodiscard]] Region region(ValidatorIndex v) const;

  /// Register the single delivery sink (the simulation dispatch).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Whether src can currently reach dst (partition rules + GST).
  [[nodiscard]] bool reachable(ValidatorIndex src, ValidatorIndex dst) const;

  /// Broadcast to every node (including self, like gossip loopback).
  /// Unreachable recipients get the message at GST + jitter instead of
  /// now + jitter — best-effort broadcast across the healed partition.
  void broadcast(ValidatorIndex from, std::uint64_t payload_id);

  /// Send to one recipient; dropped silently if never reachable.
  void unicast(ValidatorIndex from, ValidatorIndex to,
               std::uint64_t payload_id);

  /// Byzantine capability: deliver a payload to an explicit audience at an
  /// exact future time (releasing withheld attestations).  Ignores
  /// partition rules: the adversary straddles both regions.
  void release_at(SimTime when, ValidatorIndex from,
                  const std::vector<ValidatorIndex>& audience,
                  std::uint64_t payload_id);

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  /// Per-recipient copies dropped by scripted loss episodes.
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }

 private:
  void deliver_later(SimTime when, ValidatorIndex to, Packet p);
  [[nodiscard]] double jitter();
  /// Apply the weather episodes to one recipient copy: stretch the
  /// jitter, or drop the copy (returns false).  `base` is now for a
  /// reachable recipient and gst for a pre-GST cross-partition send.
  void send_one(SimTime base, ValidatorIndex from, ValidatorIndex to,
                const Packet& p);
  [[nodiscard]] bool link_is_cross(ValidatorIndex a, ValidatorIndex b) const;
  [[nodiscard]] double latency_factor(SimTime at, bool cross) const;
  [[nodiscard]] bool weather_drops(SimTime at, bool cross);

  EventQueue& queue_;
  NetworkConfig config_;
  std::vector<Region> regions_;
  DeliverFn deliver_;
  Rng rng_;
  Rng weather_rng_;  ///< dedicated lane: loss draws never touch rng_
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace leak::net
