// Partial-synchrony network with a two-region partition, following the
// paper's system model (Section 2):
//
//  * best-effort broadcast between validators;
//  * before GST the two honest regions cannot reach each other, while
//    communication *within* a region keeps the synchronous delay bound;
//  * after GST every message is delivered within the known bound Delta
//    (messages sent before GST arrive by GST + Delta);
//  * Byzantine validators are connected to both regions at all times and
//    may deliberately withhold messages, releasing them later to chosen
//    audiences (the bouncing attack's key capability).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "src/net/event_queue.hpp"
#include "src/support/random.hpp"
#include "src/support/types.hpp"

namespace leak::net {

/// Which side of the partition a node lives on.  Byzantine nodes are
/// kBoth: they straddle the partition.
enum class Region : std::uint8_t { kOne = 0, kTwo = 1, kBoth = 2 };

/// An opaque message: payload identifier plus sender.  Higher layers map
/// `payload_id` back to real content (attestations, blocks).
struct Packet {
  ValidatorIndex from{};
  std::uint64_t payload_id = 0;
};

/// Delivery callback: (recipient, packet, delivery time).
using DeliverFn = std::function<void(ValidatorIndex, const Packet&)>;

/// Configuration of the network model.
struct NetworkConfig {
  std::uint32_t num_nodes = 0;
  /// Synchronous-period delay bound Delta, seconds.
  double delta = 1.0;
  /// Minimum propagation delay, seconds.
  double min_delay = 0.05;
  /// Global Stabilization Time (seconds); before it the partition holds.
  SimTime gst = 0.0;
  /// RNG seed for per-message jitter.
  std::uint64_t seed = 42;
};

/// The simulated network.  All sends are best-effort broadcast or unicast
/// with per-message uniform jitter in [min_delay, delta].
class Network {
 public:
  Network(EventQueue& queue, NetworkConfig config);

  /// Assign a node to a region (default: everyone in region one).
  void set_region(ValidatorIndex v, Region r);
  [[nodiscard]] Region region(ValidatorIndex v) const;

  /// Register the single delivery sink (the simulation dispatch).
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Whether src can currently reach dst (partition rules + GST).
  [[nodiscard]] bool reachable(ValidatorIndex src, ValidatorIndex dst) const;

  /// Broadcast to every node (including self, like gossip loopback).
  /// Unreachable recipients get the message at GST + jitter instead of
  /// now + jitter — best-effort broadcast across the healed partition.
  void broadcast(ValidatorIndex from, std::uint64_t payload_id);

  /// Send to one recipient; dropped silently if never reachable.
  void unicast(ValidatorIndex from, ValidatorIndex to,
               std::uint64_t payload_id);

  /// Byzantine capability: deliver a payload to an explicit audience at an
  /// exact future time (releasing withheld attestations).  Ignores
  /// partition rules: the adversary straddles both regions.
  void release_at(SimTime when, ValidatorIndex from,
                  const std::vector<ValidatorIndex>& audience,
                  std::uint64_t payload_id);

  [[nodiscard]] const NetworkConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t messages_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }

 private:
  void deliver_later(SimTime when, ValidatorIndex to, Packet p);
  [[nodiscard]] double jitter();

  EventQueue& queue_;
  NetworkConfig config_;
  std::vector<Region> regions_;
  DeliverFn deliver_;
  Rng rng_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace leak::net
