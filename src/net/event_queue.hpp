// Discrete-event simulation core: a time-ordered queue of callbacks.
// Deterministic: ties in time are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/support/types.hpp"

namespace leak::net {

/// Discrete-event scheduler.  Owns simulated time.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `action` at absolute time `t` (>= now).  Events scheduled at
  /// equal times run in scheduling order.
  void schedule_at(SimTime t, Action action);

  /// Schedule `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action);

  /// Run events until the queue is empty or `limit` is passed.  Events at
  /// exactly `limit` are executed.  Returns the number of events run.
  std::size_t run_until(SimTime limit);

  /// Run everything (careful with self-perpetuating schedules).
  std::size_t run_all();

  /// Pending event count.
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Drop all pending events (used when tearing a scenario down).
  void clear();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

}  // namespace leak::net
