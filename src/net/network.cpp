#include "src/net/network.hpp"

#include <stdexcept>

namespace leak::net {

Network::Network(EventQueue& queue, NetworkConfig config)
    : queue_(queue),
      config_(config),
      regions_(config.num_nodes, Region::kOne),
      rng_(config.seed) {
  if (config.num_nodes == 0) {
    throw std::invalid_argument("Network: num_nodes must be > 0");
  }
  if (config.min_delay < 0 || config.delta < config.min_delay) {
    throw std::invalid_argument("Network: need 0 <= min_delay <= delta");
  }
}

void Network::set_region(ValidatorIndex v, Region r) {
  regions_.at(v.value()) = r;
}

Region Network::region(ValidatorIndex v) const {
  return regions_.at(v.value());
}

bool Network::reachable(ValidatorIndex src, ValidatorIndex dst) const {
  if (queue_.now() >= config_.gst) return true;
  const Region a = regions_.at(src.value());
  const Region b = regions_.at(dst.value());
  if (a == Region::kBoth || b == Region::kBoth) return true;
  return a == b;
}

double Network::jitter() {
  return rng_.uniform(config_.min_delay, config_.delta);
}

void Network::deliver_later(SimTime when, ValidatorIndex to, Packet p) {
  queue_.schedule_at(when, [this, to, p] {
    ++delivered_;
    if (deliver_) deliver_(to, p);
  });
}

void Network::broadcast(ValidatorIndex from, std::uint64_t payload_id) {
  ++sent_;
  const Packet p{from, payload_id};
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    const ValidatorIndex to{i};
    if (reachable(from, to)) {
      deliver_later(queue_.now() + jitter(), to, p);
    } else {
      // Best-effort broadcast: messages sent before GST arrive at most at
      // GST + Delta once the partition heals.
      deliver_later(config_.gst + jitter(), to, p);
    }
  }
}

void Network::unicast(ValidatorIndex from, ValidatorIndex to,
                      std::uint64_t payload_id) {
  ++sent_;
  const Packet p{from, payload_id};
  if (reachable(from, to)) {
    deliver_later(queue_.now() + jitter(), to, p);
  } else {
    deliver_later(config_.gst + jitter(), to, p);
  }
}

void Network::release_at(SimTime when, ValidatorIndex from,
                         const std::vector<ValidatorIndex>& audience,
                         std::uint64_t payload_id) {
  if (when < queue_.now()) {
    throw std::invalid_argument("release_at: time in the past");
  }
  ++sent_;
  const Packet p{from, payload_id};
  for (ValidatorIndex to : audience) {
    deliver_later(when, to, p);
  }
}

}  // namespace leak::net
