#include "src/net/network.hpp"

#include <stdexcept>

namespace leak::net {

namespace {

/// StreamSeeder lane for the weather (loss) draws: any fixed tag keeps
/// the lane disjoint from Rng(seed) itself.
constexpr std::uint64_t kWeatherStream = 0x57454154;  // "WEAT"

bool link_matches(LinkClass episode, bool cross) {
  return episode == LinkClass::kAll ||
         episode == (cross ? LinkClass::kCross : LinkClass::kIntra);
}

}  // namespace

Network::Network(EventQueue& queue, NetworkConfig config)
    : queue_(queue),
      config_(std::move(config)),
      regions_(config_.num_nodes, Region::kOne),
      rng_(config_.seed),
      weather_rng_(StreamSeeder(config_.seed).stream(kWeatherStream)) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("Network: num_nodes must be > 0");
  }
  if (config_.min_delay < 0 || config_.delta < config_.min_delay) {
    throw std::invalid_argument("Network: need 0 <= min_delay <= delta");
  }
  for (const LatencyEpisode& e : config_.latency_episodes) {
    if (e.to <= e.from || e.factor <= 0.0) {
      throw std::invalid_argument(
          "Network: latency episode needs to > from and factor > 0");
    }
  }
  for (const LossEpisode& e : config_.loss_episodes) {
    if (e.to <= e.from || e.drop < 0.0 || e.drop > 1.0) {
      throw std::invalid_argument(
          "Network: loss episode needs to > from and drop in [0, 1]");
    }
  }
}

void Network::set_region(ValidatorIndex v, Region r) {
  regions_.at(v.value()) = r;
}

Region Network::region(ValidatorIndex v) const {
  return regions_.at(v.value());
}

bool Network::reachable(ValidatorIndex src, ValidatorIndex dst) const {
  if (queue_.now() >= config_.gst) return true;
  const Region a = regions_.at(src.value());
  const Region b = regions_.at(dst.value());
  if (a == Region::kBoth || b == Region::kBoth) return true;
  return a == b;
}

double Network::jitter() {
  return rng_.uniform(config_.min_delay, config_.delta);
}

bool Network::link_is_cross(ValidatorIndex a, ValidatorIndex b) const {
  const Region ra = regions_.at(a.value());
  const Region rb = regions_.at(b.value());
  return ra != rb && ra != Region::kBoth && rb != Region::kBoth;
}

double Network::latency_factor(SimTime at, bool cross) const {
  double factor = 1.0;
  for (const LatencyEpisode& e : config_.latency_episodes) {
    if (at >= e.from && at < e.to && link_matches(e.link, cross)) {
      factor *= e.factor;
    }
  }
  return factor;
}

bool Network::weather_drops(SimTime at, bool cross) {
  double pass = 1.0;
  for (const LossEpisode& e : config_.loss_episodes) {
    if (at >= e.from && at < e.to && link_matches(e.link, cross)) {
      pass *= 1.0 - e.drop;
    }
  }
  // Draw only when an episode is actually in force, so runs without
  // active weather consume zero draws from the lane.
  if (pass >= 1.0) return false;
  return weather_rng_.bernoulli(1.0 - pass);
}

void Network::send_one(SimTime base, ValidatorIndex from, ValidatorIndex to,
                       const Packet& p) {
  // The jitter draw always happens (even for a copy that is then
  // dropped), so the legacy delay stream is identical whether or not
  // weather is configured or strikes.
  double j = jitter();
  const bool cross = link_is_cross(from, to);
  const double factor = latency_factor(queue_.now(), cross);
  if (factor != 1.0) {
    j = config_.min_delay + factor * (j - config_.min_delay);
  }
  if (weather_drops(queue_.now(), cross)) {
    ++dropped_;
    return;
  }
  deliver_later(base + j, to, p);
}

void Network::deliver_later(SimTime when, ValidatorIndex to, Packet p) {
  queue_.schedule_at(when, [this, to, p] {
    ++delivered_;
    if (deliver_) deliver_(to, p);
  });
}

void Network::broadcast(ValidatorIndex from, std::uint64_t payload_id) {
  ++sent_;
  const Packet p{from, payload_id};
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    const ValidatorIndex to{i};
    if (reachable(from, to)) {
      send_one(queue_.now(), from, to, p);
    } else {
      // Best-effort broadcast: messages sent before GST arrive at most at
      // GST + Delta once the partition heals.
      send_one(config_.gst, from, to, p);
    }
  }
}

void Network::unicast(ValidatorIndex from, ValidatorIndex to,
                      std::uint64_t payload_id) {
  ++sent_;
  const Packet p{from, payload_id};
  if (reachable(from, to)) {
    send_one(queue_.now(), from, to, p);
  } else {
    send_one(config_.gst, from, to, p);
  }
}

void Network::release_at(SimTime when, ValidatorIndex from,
                         const std::vector<ValidatorIndex>& audience,
                         std::uint64_t payload_id) {
  if (when < queue_.now()) {
    throw std::invalid_argument("release_at: time in the past");
  }
  // The adversary's release channel is out-of-band by construction
  // (withheld data handed over directly), so weather does not afflict
  // it.
  ++sent_;
  const Packet p{from, payload_id};
  for (ValidatorIndex to : audience) {
    deliver_later(when, to, p);
  }
}

}  // namespace leak::net
