#include "src/net/gossip.hpp"

#include <algorithm>
#include <stdexcept>

namespace leak::net {

GossipNetwork::GossipNetwork(EventQueue& queue, GossipConfig config)
    : queue_(queue), config_(config), rng_(config.seed) {
  if (config_.num_nodes == 0) {
    throw std::invalid_argument("GossipNetwork: num_nodes must be > 0");
  }
  if (config_.fanout == 0) {
    throw std::invalid_argument("GossipNetwork: fanout must be > 0");
  }
  // Static random mesh: every node picks `fanout` distinct peers.
  mesh_.resize(config_.num_nodes);
  for (std::uint32_t i = 0; i < config_.num_nodes; ++i) {
    std::unordered_set<std::uint32_t> picked;
    const std::uint32_t want =
        std::min(config_.fanout, config_.num_nodes - 1);
    while (picked.size() < want) {
      const auto j = static_cast<std::uint32_t>(
          rng_.uniform_index(config_.num_nodes));
      if (j != i) picked.insert(j);
    }
    for (const auto j : picked) mesh_[i].push_back(ValidatorIndex{j});
    std::sort(mesh_[i].begin(), mesh_[i].end());
  }
}

const std::vector<ValidatorIndex>& GossipNetwork::peers(
    ValidatorIndex node) const {
  return mesh_.at(node.value());
}

std::size_t GossipNetwork::reach(std::uint64_t payload_id) const {
  const auto it = seen_.find(payload_id);
  return it == seen_.end() ? 0 : it->second.size();
}

void GossipNetwork::publish(ValidatorIndex origin,
                            std::uint64_t payload_id) {
  receive(origin, payload_id);
}

void GossipNetwork::receive(ValidatorIndex node, std::uint64_t payload_id) {
  auto& seen = seen_[payload_id];
  if (!seen.insert(node.value()).second) return;  // duplicate
  if (handler_) handler_(node, payload_id);
  forward(node, payload_id);
}

void GossipNetwork::forward(ValidatorIndex from, std::uint64_t payload_id) {
  for (const ValidatorIndex peer : mesh_.at(from.value())) {
    if (link_filter_ && !link_filter_(from, peer)) continue;
    // Suppress hops to peers that already saw it *at send time*; late
    // duplicates are still filtered at receive().
    const auto& seen = seen_[payload_id];
    if (seen.contains(peer.value())) continue;
    ++hops_;
    const double delay =
        rng_.uniform(config_.min_hop_delay, config_.max_hop_delay);
    queue_.schedule_in(delay, [this, peer, payload_id] {
      receive(peer, payload_id);
    });
  }
}

}  // namespace leak::net
