#include "src/net/event_queue.hpp"

#include <stdexcept>

namespace leak::net {

void EventQueue::schedule_at(SimTime t, Action action) {
  if (t < now_) throw std::invalid_argument("schedule_at: time in the past");
  queue_.push(Entry{t, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  if (delay < 0) throw std::invalid_argument("schedule_in: negative delay");
  schedule_at(now_ + delay, std::move(action));
}

std::size_t EventQueue::run_until(SimTime limit) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= limit) {
    // Copy out before pop so the action may schedule more events.
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.action();
    ++executed;
  }
  if (now_ < limit) now_ = limit;
  return executed;
}

std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    Entry e = queue_.top();
    queue_.pop();
    now_ = e.time;
    e.action();
    ++executed;
  }
  return executed;
}

void EventQueue::clear() {
  while (!queue_.empty()) queue_.pop();
}

}  // namespace leak::net
