// Gossip relay on top of the partitioned network: nodes re-publish
// messages they have not seen before to a bounded set of mesh peers,
// reaching the whole (reachable) network in O(log n) hops without every
// sender broadcasting to everyone.  This is the propagation layer real
// clients use; the simulator's direct-broadcast mode corresponds to an
// idealized gossip with infinite mesh degree.
//
// Duplicate suppression is content-based (payload id), matching
// libp2p-gossipsub's seen-cache semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/event_queue.hpp"
#include "src/support/random.hpp"
#include "src/support/types.hpp"

namespace leak::net {

struct GossipConfig {
  std::uint32_t num_nodes = 0;
  /// Mesh degree: peers each node forwards to.
  std::uint32_t fanout = 6;
  /// Per-hop relay latency bounds, seconds.
  double min_hop_delay = 0.02;
  double max_hop_delay = 0.2;
  std::uint64_t seed = 99;
};

/// The gossip overlay.  Deliveries surface through the handler exactly
/// once per (node, payload).
class GossipNetwork {
 public:
  using Handler =
      std::function<void(ValidatorIndex node, std::uint64_t payload_id)>;

  GossipNetwork(EventQueue& queue, GossipConfig config);

  /// Install the delivery handler (first-delivery only).
  void set_handler(Handler h) { handler_ = std::move(h); }

  /// Optionally restrict which links are usable (partition emulation):
  /// return false to drop the hop.  Default: all links usable.
  using LinkFilter = std::function<bool(ValidatorIndex, ValidatorIndex)>;
  void set_link_filter(LinkFilter f) { link_filter_ = std::move(f); }

  /// Publish a payload from `origin`; it floods through the mesh.
  void publish(ValidatorIndex origin, std::uint64_t payload_id);

  /// Mesh peers of a node (static random mesh built at construction).
  [[nodiscard]] const std::vector<ValidatorIndex>& peers(
      ValidatorIndex node) const;

  /// Nodes that have seen a payload so far.
  [[nodiscard]] std::size_t reach(std::uint64_t payload_id) const;

  [[nodiscard]] std::uint64_t hops_sent() const { return hops_; }

 private:
  void receive(ValidatorIndex node, std::uint64_t payload_id);
  void forward(ValidatorIndex from, std::uint64_t payload_id);

  EventQueue& queue_;
  GossipConfig config_;
  Handler handler_;
  LinkFilter link_filter_;
  Rng rng_;
  std::vector<std::vector<ValidatorIndex>> mesh_;
  /// payload -> set of node ids that saw it.
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint32_t>>
      seen_;
  std::uint64_t hops_ = 0;
};

}  // namespace leak::net
