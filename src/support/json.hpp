// Minimal JSON document model with a strict parser and a deterministic
// serializer.  This is the machine-readable half of the reporting
// stack: scenario specs/results, the leakctl --json output, and the
// bench emission helpers all go through it.
//
// Design points:
//   - Objects preserve insertion order, so serialized output is stable
//     across runs and diffs cleanly (the README scenario catalog and
//     the CI artifacts rely on this).
//   - Numbers are locale-independent both ways (std::to_chars /
//     std::from_chars); doubles round-trip exactly via the shortest
//     representation.
//   - The parser is strict RFC 8259: no comments, no trailing commas,
//     rejects trailing garbage, bounded nesting depth.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace leak::json {

class Value;
using Array = std::vector<Value>;
/// Insertion-ordered key/value storage; keys are unique.
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kInt,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  // Implicit construction from the scalar types keeps call sites
  // (`result.set("seed", 99)`) readable.
  Value() : type_(Type::kNull) {}
  Value(std::nullptr_t) : type_(Type::kNull) {}
  Value(bool b) : type_(Type::kBool) { bool_ = b; }
  Value(int v) : type_(Type::kInt) { int_ = v; }
  Value(std::int64_t v) : type_(Type::kInt) { int_ = v; }
  Value(std::uint64_t v);
  Value(double v) : type_(Type::kDouble) { double_ = v; }
  Value(const char* s) : type_(Type::kString), str_(s) {}
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  [[nodiscard]] static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  [[nodiscard]] static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_int() const { return type_ == Type::kInt; }
  [[nodiscard]] bool is_double() const { return type_ == Type::kDouble; }
  /// Either numeric type.
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::logic_error on a type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] std::int64_t as_int() const;
  /// Numeric accessor: returns kInt values widened to double.
  [[nodiscard]] double as_double() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  // --- array interface -------------------------------------------------
  /// Append to an array (throws on non-array).
  void push_back(Value v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Value& at(std::size_t i) const;

  // --- object interface ------------------------------------------------
  /// Insert-or-assign on an object (throws on non-object); keeps the
  /// first-insertion position on overwrite.
  Value& set(std::string key, Value v);
  /// Lookup; nullptr when absent (throws on non-object).
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Serialize.  indent < 0: compact single line; indent >= 0: pretty
  /// with that many spaces per level.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parse of a complete document.  On failure returns nullopt
  /// and, when `error` is non-null, a message with the byte offset.
  [[nodiscard]] static std::optional<Value> parse(std::string_view text,
                                                  std::string* error = nullptr);

  /// Read and parse a JSON document from a file.  On failure returns
  /// nullopt and, when `error` is non-null, a message prefixed with
  /// the path.  Shared by the leakctl --params replay, the serve job
  /// manifests, and the baseline tooling.
  [[nodiscard]] static std::optional<Value> load_file(
      const std::string& path, std::string* error = nullptr);

  friend bool operator==(const Value& a, const Value& b);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  union {
    bool bool_;
    std::int64_t int_ = 0;  // keeps default-copied Values fully initialized
    double double_;
  };
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Escape a string for embedding in a JSON document (adds no quotes).
[[nodiscard]] std::string escape(std::string_view s);

/// Shortest round-trip, locale-independent formatting of a double
/// ("0.33", "1e-09", "4024").  Shared by the serializer, the CSV
/// writer, and Table.
[[nodiscard]] std::string format_double(double v);

}  // namespace leak::json
