// Environment-variable knobs shared by the simulators, the test
// suites, and the bench binaries.  Every knob is read-on-demand (no
// cached globals) so a test can set/unset variables between cases.
//
// Parsing is strict (src/support/parse.hpp): a malformed value —
// trailing garbage ("LEAK_THREADS=4x"), overflow, an empty or
// sign-prefixed string — is rejected with one clear stderr diagnostic
// and the fallback is used, instead of strtoull-style silent
// truncation handing the caller a number the user never wrote.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>
#include <string>

#include "src/support/parse.hpp"

namespace leak::env {

/// Diagnose a malformed knob, once per distinct (name, value) pair —
/// knobs are read on demand, so without the dedup a hot caller (e.g.
/// resolve_threads per pool construction) would repeat the same line.
inline void warn_invalid(const char* name, const char* raw,
                         const char* expected) {
  static std::mutex mu;
  static std::set<std::string>& seen = *new std::set<std::string>();
  {
    std::scoped_lock lk(mu);
    if (!seen.insert(std::string(name) + "=" + raw).second) return;
  }
  std::fprintf(stderr,
               "leak: ignoring invalid %s=\"%s\" (expected %s); "
               "using the default\n",
               name, raw, expected);
}

/// Unsigned integer knob; unset falls back silently, a present but
/// malformed value (garbage, overflow, empty, negative) warns on
/// stderr (once per distinct value) and falls back.
inline std::uint64_t u64_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const auto v = parse::u64(raw);
  if (!v) {
    warn_invalid(name, raw, "an unsigned integer");
    return fallback;
  }
  return *v;
}

/// Floating-point knob; same contract as u64_or.
inline double double_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return fallback;
  const auto v = parse::real(raw);
  if (!v) {
    warn_invalid(name, raw, "a finite number");
    return fallback;
  }
  return *v;
}

/// LEAK_TEST_PATH_SCALE: multiplier the slow Monte Carlo test suites
/// apply to their path/run counts so the CI Debug and sanitizer lanes
/// stay inside their wall-clock budget (clamped to [0.01, 1]).  Tests
/// whose statistical tolerances require the full sample size skip
/// themselves when the scale is below 1.
inline double test_path_scale() {
  return std::clamp(double_or("LEAK_TEST_PATH_SCALE", 1.0), 0.01, 1.0);
}

/// `base` Monte Carlo paths/runs scaled by test_path_scale(), never 0.
inline std::size_t scaled_count(std::size_t base) {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * test_path_scale());
  return std::max<std::size_t>(scaled, 1);
}

}  // namespace leak::env
