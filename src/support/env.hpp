// Environment-variable knobs shared by the simulators, the test
// suites, and the bench binaries.  Every knob is read-on-demand (no
// cached globals) so a test can set/unset variables between cases.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace leak::env {

/// Integer knob; empty, unparsable, or negative values fall back
/// (strtoull would otherwise silently wrap "-1" to 2^64 - 1).
inline std::uint64_t u64_or(const char* name, std::uint64_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  const char* p = raw;
  while (*p == ' ' || *p == '\t') ++p;
  if (*p == '-') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(p, &end, 10);
  if (end == p) return fallback;
  return static_cast<std::uint64_t>(v);
}

/// Floating-point knob; empty or unparsable values fall back.
inline double double_or(const char* name, double fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw) return fallback;
  return v;
}

/// LEAK_TEST_PATH_SCALE: multiplier the slow Monte Carlo test suites
/// apply to their path/run counts so the CI Debug and sanitizer lanes
/// stay inside their wall-clock budget (clamped to [0.01, 1]).  Tests
/// whose statistical tolerances require the full sample size skip
/// themselves when the scale is below 1.
inline double test_path_scale() {
  return std::clamp(double_or("LEAK_TEST_PATH_SCALE", 1.0), 0.01, 1.0);
}

/// `base` Monte Carlo paths/runs scaled by test_path_scale(), never 0.
inline std::size_t scaled_count(std::size_t base) {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * test_path_scale());
  return std::max<std::size_t>(scaled, 1);
}

}  // namespace leak::env
