#include "src/support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leak::json {

namespace {

constexpr int kMaxDepth = 64;

[[noreturn]] void type_error(const char* want, Value::Type got) {
  throw std::logic_error(std::string("json: expected ") + want +
                         ", value holds type #" +
                         std::to_string(static_cast<int>(got)));
}

}  // namespace

Value::Value(std::uint64_t v) {
  // JSON has one number type; keep exact integers when they fit.
  if (v <= 0x7fffffffffffffffULL) {
    type_ = Type::kInt;
    int_ = static_cast<std::int64_t>(v);
  } else {
    type_ = Type::kDouble;
    double_ = static_cast<double>(v);
  }
}

bool Value::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

std::int64_t Value::as_int() const {
  if (type_ != Type::kInt) type_error("int", type_);
  return int_;
}

double Value::as_double() const {
  if (type_ == Type::kInt) return static_cast<double>(int_);
  if (type_ != Type::kDouble) type_error("number", type_);
  return double_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Array& Value::as_array() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Object& Value::as_object() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

void Value::push_back(Value v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", type_);
}

const Value& Value::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_.at(i);
}

Value& Value::set(std::string key, Value v) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  obj_.emplace_back(std::move(key), std::move(v));
  return obj_.back().second;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::kNull:
      return true;
    case Value::Type::kBool:
      return a.bool_ == b.bool_;
    case Value::Type::kInt:
      return a.int_ == b.int_;
    case Value::Type::kDouble:
      return a.double_ == b.double_;
    case Value::Type::kString:
      return a.str_ == b.str_;
    case Value::Type::kArray:
      return a.arr_ == b.arr_;
    case Value::Type::kObject:
      return a.obj_ == b.obj_;
  }
  return false;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through verbatim
        }
    }
  }
  return out;
}

std::string format_double(double v) {
  if (std::isnan(v)) return "null";  // JSON has no NaN/Inf
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  std::string out(buf, ptr);
  // Integral doubles ("2") must keep a decimal marker so the value
  // re-parses as a double, not an int (type-faithful round-trip).
  if (out.find_first_of(".eE") == std::string::npos) out += ".0";
  return out;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kInt:
      out += std::to_string(int_);
      break;
    case Type::kDouble:
      out += format_double(double_);
      break;
    case Type::kString:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline_pad(depth + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += "\":";
        if (indent >= 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

/// Recursive-descent parser over a string_view with offset tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> run(std::string* error) {
    Value v;
    if (!parse_value(v, 0) || (skip_ws(), pos_ != text_.size())) {
      if (ok_) fail("trailing characters after JSON document");
      if (error != nullptr) {
        *error = err_ + " at byte " + std::to_string(err_pos_);
      }
      return std::nullopt;
    }
    return v;
  }

 private:
  bool fail(const std::string& msg) {
    if (ok_) {
      ok_ = false;
      err_ = msg;
      err_pos_ = pos_;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(Value& out, int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, depth);
      case '[':
        return parse_array(out, depth);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = Value(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = Value(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = Value(nullptr);
          return true;
        }
        return fail("invalid literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out, int depth) {
    ++pos_;  // '{'
    out = Value::object();
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return fail("expected ':' after object key");
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      if (out.find(key) != nullptr) {
        return fail("duplicate object key \"" + key + "\"");
      }
      out.set(std::move(key), std::move(v));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(Value& out, int depth) {
    ++pos_;  // '['
    out = Value::array();
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      Value v;
      if (!parse_value(v, depth + 1)) return false;
      out.push_back(std::move(v));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return fail("expected ',' or ']' in array");
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        ++pos_;
        continue;
      }
      ++pos_;
      if (pos_ >= text_.size()) return fail("truncated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          if (cp >= 0xd800 && cp <= 0xdbff) {
            // Surrogate pair: a low surrogate must follow.
            if (pos_ + 1 >= text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("lone high surrogate");
            }
            pos_ += 2;
            unsigned lo = 0;
            if (!parse_hex4(lo)) return false;
            if (lo < 0xdc00 || lo > 0xdfff) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
          } else if (cp >= 0xdc00 && cp <= 0xdfff) {
            return fail("lone low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
    }
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xc0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xe0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (cp & 0x3f));
    }
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return fail("invalid number");
    // RFC 8259: no leading zeros on the integer part ("01", "-007").
    const std::size_t digits = tok.front() == '-' ? 1 : 0;
    if (tok.size() > digits + 1 && tok[digits] == '0' &&
        tok[digits + 1] >= '0' && tok[digits + 1] <= '9') {
      pos_ = start;
      return fail("leading zero in number");
    }
    if (!is_double) {
      std::int64_t iv = 0;
      const auto [ptr, ec] =
          std::from_chars(tok.data(), tok.data() + tok.size(), iv);
      if (ec == std::errc{} && ptr == tok.data() + tok.size()) {
        out = Value(iv);
        return true;
      }
      // Integer overflow: fall through to the double path.
    }
    double dv = 0.0;
    const auto [ptr, ec] =
        std::from_chars(tok.data(), tok.data() + tok.size(), dv);
    if (ec != std::errc{} || ptr != tok.data() + tok.size()) {
      pos_ = start;
      return fail("invalid number");
    }
    out = Value(dv);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string err_;
  std::size_t err_pos_ = 0;
};

}  // namespace

std::optional<Value> Value::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

std::optional<Value> Value::load_file(const std::string& path,
                                      std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = path + ": cannot read";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string parse_error;
  auto doc = parse(buf.str(), &parse_error);
  if (!doc) {
    if (error != nullptr) *error = path + ": " + parse_error;
    return std::nullopt;
  }
  return doc;
}

}  // namespace leak::json
