// Strict, locale-independent string -> scalar parsing shared by the
// env knobs, the scenario parameter engine, and the CLI.  Unlike the
// strto* family these helpers consume the WHOLE input (after trimming
// ASCII whitespace) or fail: "4x", "1e3garbage", "" and out-of-range
// magnitudes all return nullopt instead of a silently truncated value.
#pragma once

#include <charconv>
#include <cstdint>
#include <optional>
#include <string_view>

namespace leak::parse {

/// Trim ASCII spaces/tabs (the only whitespace env vars and CLI args
/// legitimately carry) from both ends.
[[nodiscard]] inline std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

/// Unsigned integer; rejects empty input, sign characters, trailing
/// garbage, and values above 2^64 - 1.
[[nodiscard]] inline std::optional<std::uint64_t> u64(std::string_view raw) {
  const std::string_view s = trim(raw);
  if (s.empty() || s.front() == '+' || s.front() == '-') return std::nullopt;
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Signed integer; rejects empty input, trailing garbage, and overflow.
[[nodiscard]] inline std::optional<std::int64_t> i64(std::string_view raw) {
  const std::string_view s = trim(raw);
  if (s.empty() || s.front() == '+') return std::nullopt;
  std::int64_t v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return v;
}

/// Finite double; rejects empty input, trailing garbage, hex floats,
/// inf/nan spellings, and magnitudes that overflow to infinity.  Always
/// parses with the '.' decimal point regardless of the global locale.
[[nodiscard]] inline std::optional<double> real(std::string_view raw) {
  std::string_view s = trim(raw);
  if (s.empty()) return std::nullopt;
  if (s.front() == '+') return std::nullopt;
  double v = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v,
                                         std::chars_format::general);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  // from_chars(general) accepts "inf"/"nan"; a knob or parameter never
  // legitimately holds either.
  if (!(v == v) || v > 1.7976931348623157e308 || v < -1.7976931348623157e308) {
    return std::nullopt;
  }
  return v;
}

/// Boolean; accepts the usual spellings, case-sensitive by design so a
/// typo ("True") fails loudly instead of guessing.
[[nodiscard]] inline std::optional<bool> boolean(std::string_view raw) {
  const std::string_view s = trim(raw);
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  return std::nullopt;
}

}  // namespace leak::parse
