// CRC-32 (IEEE 802.3, the zlib polynomial) over byte strings.  Frames
// the append-only results-store records (src/serve/store.hpp) so a
// torn tail — a record cut short by a crash or kill -9 mid-write — is
// detected on scan instead of being half-parsed.  The polynomial
// matches Python's zlib.crc32, so tools/check_trajectory.py validates
// the same frames without a C++ helper.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace leak::crc32 {

namespace detail {

[[nodiscard]] constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xedb88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace detail

/// CRC-32 of `data` (initial value 0, standard pre/post inversion).
[[nodiscard]] constexpr std::uint32_t of(std::string_view data) {
  std::uint32_t c = 0xffffffffU;
  for (const char ch : data) {
    c = detail::kTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xffU] ^ (c >> 8);
  }
  return c ^ 0xffffffffU;
}

/// Fixed-width lowercase hex of a CRC ("0000c0de").
[[nodiscard]] inline std::string to_hex(std::uint32_t crc) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[crc & 0xfU];
    crc >>= 4;
  }
  return out;
}

}  // namespace leak::crc32
