// Strong value types shared by every module.
//
// The protocol measures time in slots (12 s) and epochs (32 slots) and
// measures stake in Gwei (1 ETH = 1e9 Gwei).  Using distinct wrapper types
// keeps slot/epoch/validator-index arguments from being swapped silently.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace leak {

/// Number of slots per epoch (Ethereum mainnet value).
inline constexpr std::uint64_t kSlotsPerEpoch = 32;
/// Seconds per slot (Ethereum mainnet value).
inline constexpr std::uint64_t kSecondsPerSlot = 12;
/// Gwei per ETH.
inline constexpr std::uint64_t kGweiPerEth = 1'000'000'000ULL;
/// Initial (and maximum effective) validator stake, in ETH.
inline constexpr double kInitialStakeEth = 32.0;

namespace detail {

/// CRTP base providing comparison and explicit raw access for an integral
/// wrapper.  Tag makes each instantiation a distinct type.
template <typename Tag, typename Rep = std::uint64_t>
class StrongId {
 public:
  using rep = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep v) : value_(v) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

 protected:
  Rep value_ = 0;
};

}  // namespace detail

/// A slot number (12-second interval).
class Slot : public detail::StrongId<Slot> {
 public:
  using StrongId::StrongId;
  constexpr Slot& operator++() { ++value_; return *this; }
  [[nodiscard]] constexpr Slot next() const { return Slot{value_ + 1}; }
  [[nodiscard]] constexpr std::uint64_t epoch_number() const {
    return value_ / kSlotsPerEpoch;
  }
  /// True when this slot is the first slot of its epoch (checkpoint slot).
  [[nodiscard]] constexpr bool is_epoch_boundary() const {
    return value_ % kSlotsPerEpoch == 0;
  }
};

/// An epoch number (32 slots).
class Epoch : public detail::StrongId<Epoch> {
 public:
  using StrongId::StrongId;
  constexpr Epoch& operator++() { ++value_; return *this; }
  [[nodiscard]] constexpr Epoch next() const { return Epoch{value_ + 1}; }
  [[nodiscard]] constexpr Epoch prev() const {
    return Epoch{value_ == 0 ? 0 : value_ - 1};
  }
  [[nodiscard]] constexpr Slot start_slot() const {
    return Slot{value_ * kSlotsPerEpoch};
  }
  [[nodiscard]] constexpr Slot end_slot() const {
    return Slot{value_ * kSlotsPerEpoch + kSlotsPerEpoch - 1};
  }
};

[[nodiscard]] constexpr Epoch epoch_of(Slot s) {
  return Epoch{s.epoch_number()};
}

/// Index of a validator in the registry.
class ValidatorIndex : public detail::StrongId<ValidatorIndex, std::uint32_t> {
 public:
  using StrongId::StrongId;
};

/// Stake amount in Gwei.  Arithmetic is saturating at zero on subtraction:
/// protocol balances never go negative.
class Gwei {
 public:
  constexpr Gwei() = default;
  constexpr explicit Gwei(std::uint64_t v) : value_(v) {}

  [[nodiscard]] static constexpr Gwei from_eth(double eth) {
    return Gwei{static_cast<std::uint64_t>(eth * static_cast<double>(kGweiPerEth))};
  }
  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr double eth() const {
    return static_cast<double>(value_) / static_cast<double>(kGweiPerEth);
  }

  friend constexpr auto operator<=>(Gwei, Gwei) = default;

  constexpr Gwei& operator+=(Gwei o) { value_ += o.value_; return *this; }
  constexpr Gwei& operator-=(Gwei o) {
    value_ = value_ >= o.value_ ? value_ - o.value_ : 0;
    return *this;
  }
  friend constexpr Gwei operator+(Gwei a, Gwei b) { return a += b; }
  friend constexpr Gwei operator-(Gwei a, Gwei b) { return a -= b; }

 private:
  std::uint64_t value_ = 0;
};

/// Simulated wall-clock time in seconds (discrete-event simulator time).
using SimTime = double;

inline constexpr SimTime kSimTimeInfinity =
    std::numeric_limits<SimTime>::infinity();

[[nodiscard]] inline SimTime slot_start_time(Slot s) {
  return static_cast<SimTime>(s.value() * kSecondsPerSlot);
}

}  // namespace leak

template <>
struct std::hash<leak::ValidatorIndex> {
  std::size_t operator()(leak::ValidatorIndex v) const noexcept {
    return std::hash<std::uint32_t>{}(v.value());
  }
};
template <>
struct std::hash<leak::Slot> {
  std::size_t operator()(leak::Slot s) const noexcept {
    return std::hash<std::uint64_t>{}(s.value());
  }
};
template <>
struct std::hash<leak::Epoch> {
  std::size_t operator()(leak::Epoch e) const noexcept {
    return std::hash<std::uint64_t>{}(e.value());
  }
};
