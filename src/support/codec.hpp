// SSZ-lite binary codec: little-endian fixed-width integers, byte
// arrays, and length-prefixed vectors — enough to serialize blocks and
// attestations deterministically (content-addressing and wire format
// for the simulator).  Decoding is bounds-checked and returns false on
// truncated input instead of throwing (network bytes are untrusted).
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace leak::codec {

/// Append-only encoder.
class Writer {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(v); }

  void put_u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void put_bytes(std::span<const std::uint8_t> bytes) {
    buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  }

  template <std::size_t N>
  void put_array(const std::array<std::uint8_t, N>& a) {
    put_bytes(std::span<const std::uint8_t>(a.data(), a.size()));
  }

  /// Length-prefixed (u32) blob.
  void put_blob(std::span<const std::uint8_t> bytes) {
    put_u32(static_cast<std::uint32_t>(bytes.size()));
    put_bytes(bytes);
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buf_;
  }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool get_u8(std::uint8_t& out) {
    if (pos_ + 1 > data_.size()) return false;
    out = data_[pos_++];
    return true;
  }

  [[nodiscard]] bool get_u32(std::uint32_t& out) {
    if (pos_ + 4 > data_.size()) return false;
    out = 0;
    for (int i = 3; i >= 0; --i) {
      out = (out << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    }
    pos_ += 4;
    return true;
  }

  [[nodiscard]] bool get_u64(std::uint64_t& out) {
    if (pos_ + 8 > data_.size()) return false;
    out = 0;
    for (int i = 7; i >= 0; --i) {
      out = (out << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    }
    pos_ += 8;
    return true;
  }

  template <std::size_t N>
  [[nodiscard]] bool get_array(std::array<std::uint8_t, N>& out) {
    if (pos_ + N > data_.size()) return false;
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return true;
  }

  [[nodiscard]] bool get_blob(std::vector<std::uint8_t>& out) {
    std::uint32_t len = 0;
    if (!get_u32(len)) return false;
    if (pos_ + len > data_.size()) return false;
    out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
               data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return true;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace leak::codec
