#include "src/support/version.hpp"

#include <chrono>

// The definition is injected per-TU by src/CMakeLists.txt
// (set_source_files_properties on this file only, so editing the git
// state never rebuilds the whole library).
#ifndef LEAK_GIT_DESCRIBE
#define LEAK_GIT_DESCRIBE "unknown"
#endif

namespace leak {

const char* git_describe() { return LEAK_GIT_DESCRIBE; }

double monotonic_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace leak
