#include "src/support/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leak::num {

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double tol, int max_iter) {
  RootResult r;
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0, true};
  if (fhi == 0.0) return {hi, 0, true};
  if (flo * fhi > 0.0) return r;  // not bracketed
  for (int i = 0; i < max_iter; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    ++r.iterations;
    if (fm == 0.0 || (hi - lo) * 0.5 < tol) {
      r.root = mid;
      r.converged = true;
      return r;
    }
    if (flo * fm < 0.0) {
      hi = mid;
    } else {
      lo = mid;
      flo = fm;
    }
  }
  r.root = 0.5 * (lo + hi);
  r.converged = true;  // bracket shrunk max_iter times; still usable
  return r;
}

RootResult brent(const std::function<double(double)>& f, double lo,
                 double hi, double tol, int max_iter) {
  RootResult res;
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0, true};
  if (fb == 0.0) return {b, 0, true};
  if (fa * fb > 0.0) return res;
  if (std::abs(fa) < std::abs(fb)) {
    std::swap(a, b);
    std::swap(fa, fb);
  }
  double c = a, fc = fa, s = b, fs = fb, d = 0.0;
  bool mflag = true;
  for (int i = 0; i < max_iter; ++i) {
    ++res.iterations;
    if (fb == 0.0 || std::abs(b - a) < tol) {
      res.root = b;
      res.converged = true;
      return res;
    }
    if (fa != fc && fb != fc) {
      // inverse quadratic interpolation
      s = a * fb * fc / ((fa - fb) * (fa - fc)) +
          b * fa * fc / ((fb - fa) * (fb - fc)) +
          c * fa * fb / ((fc - fa) * (fc - fb));
    } else {
      s = b - fb * (b - a) / (fb - fa);  // secant
    }
    const double mid = 0.5 * (a + b);
    const bool cond1 = (s < std::min(mid, b) || s > std::max(mid, b));
    const bool cond2 = mflag && std::abs(s - b) >= std::abs(b - c) / 2.0;
    const bool cond3 = !mflag && std::abs(s - b) >= std::abs(c - d) / 2.0;
    const bool cond4 = mflag && std::abs(b - c) < tol;
    const bool cond5 = !mflag && std::abs(c - d) < tol;
    if (cond1 || cond2 || cond3 || cond4 || cond5) {
      s = mid;
      mflag = true;
    } else {
      mflag = false;
    }
    fs = f(s);
    d = c;
    c = b;
    fc = fb;
    if (fa * fs < 0.0) {
      b = s;
      fb = fs;
    } else {
      a = s;
      fa = fs;
    }
    if (std::abs(fa) < std::abs(fb)) {
      std::swap(a, b);
      std::swap(fa, fb);
    }
  }
  res.root = b;
  res.converged = true;
  return res;
}

std::optional<std::pair<double, double>> bracket_upward(
    const std::function<double(double)>& f, double lo, double step,
    double limit) {
  double a = lo;
  double fa = f(a);
  if (fa == 0.0) return std::pair{a, a};
  while (a < limit) {
    const double b = std::min(a + step, limit);
    const double fb = f(b);
    if (fa * fb <= 0.0) return std::pair{a, b};
    a = b;
    fa = fb;
    if (b >= limit) break;
  }
  return std::nullopt;
}

std::vector<OdePoint> rk4(const std::function<double(double, double)>& f,
                          double t0, double y0, double t1, int steps) {
  if (steps < 1) throw std::invalid_argument("rk4: steps must be >= 1");
  std::vector<OdePoint> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  const double h = (t1 - t0) / steps;
  double t = t0, y = y0;
  out.push_back({t, y});
  for (int i = 0; i < steps; ++i) {
    const double k1 = f(t, y);
    const double k2 = f(t + h / 2, y + h / 2 * k1);
    const double k3 = f(t + h / 2, y + h / 2 * k2);
    const double k4 = f(t + h, y + h * k3);
    y += h / 6 * (k1 + 2 * k2 + 2 * k3 + k4);
    t = t0 + (i + 1) * h;
    out.push_back({t, y});
  }
  return out;
}

double normal_pdf(double x) {
  static const double inv_sqrt_2pi = 0.3989422804014326779;
  return inv_sqrt_2pi * std::exp(-0.5 * x * x);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_pdf(double x, double mu, double sigma) {
  return normal_pdf((x - mu) / sigma) / sigma;
}

double normal_cdf(double x, double mu, double sigma) {
  return normal_cdf((x - mu) / sigma);
}

double normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::domain_error("normal_quantile: p must be in (0,1)");
  }
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425, phigh = 1 - plow;
  double x;
  if (p < plow) {
    const double q = std::sqrt(-2 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  } else if (p <= phigh) {
    const double q = p - 0.5, r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  } else {
    const double q = std::sqrt(-2 * std::log(1 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  // One Halley refinement step using the exact cdf.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * 3.14159265358979323846) *
                   std::exp(x * x / 2.0);
  x = x - u / (1 + x * u / 2);
  return x;
}

double lognormal_pdf(double s, double mu, double sigma) {
  if (s <= 0.0) return 0.0;
  const double z = (std::log(s) - mu) / sigma;
  return normal_pdf(z) / (s * sigma);
}

double lognormal_cdf(double s, double mu, double sigma) {
  if (s <= 0.0) return 0.0;
  return normal_cdf((std::log(s) - mu) / sigma);
}

void KahanSum::add(double x) {
  const double t = sum_ + x;
  if (std::abs(sum_) >= std::abs(x)) {
    c_ += (sum_ - t) + x;
  } else {
    c_ += (x - t) + sum_;
  }
  sum_ = t;
}

double trapezoid(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("trapezoid: need matching arrays, size >= 2");
  }
  KahanSum s;
  for (std::size_t i = 1; i < x.size(); ++i) {
    s.add(0.5 * (y[i] + y[i - 1]) * (x[i] - x[i - 1]));
  }
  return s.value();
}

double lerp_table(const std::vector<double>& x, const std::vector<double>& y,
                  double xq) {
  if (x.size() != y.size() || x.empty()) {
    throw std::invalid_argument("lerp_table: bad table");
  }
  if (xq <= x.front()) return y.front();
  if (xq >= x.back()) return y.back();
  const auto it = std::upper_bound(x.begin(), x.end(), xq);
  const std::size_t i = static_cast<std::size_t>(it - x.begin());
  const double w = (xq - x[i - 1]) / (x[i] - x[i - 1]);
  return y[i - 1] + w * (y[i] - y[i - 1]);
}

std::vector<double> linspace(double lo, double hi, int n) {
  if (n < 2) throw std::invalid_argument("linspace: n must be >= 2");
  std::vector<double> out(static_cast<std::size_t>(n));
  const double h = (hi - lo) / (n - 1);
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = lo + i * h;
  out.back() = hi;
  return out;
}

}  // namespace leak::num
