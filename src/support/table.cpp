#include "src/support/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leak {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row size mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << v;
  return os.str();
}

std::string Table::to_string() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(w[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(w[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

bool Table::maybe_write_csv(const std::string& path) const {
  const char* flag = std::getenv("LEAK_BENCH_CSV");
  if (flag == nullptr || *flag == '\0') return false;
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return true;
}

}  // namespace leak
