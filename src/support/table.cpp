#include "src/support/table.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace leak {

namespace {

/// Quote a CSV cell when RFC 4180 requires it.
std::string csv_escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row size mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  // std::to_chars is locale-independent; an ostringstream would honour
  // whatever global locale the host application installed (e.g. a ','
  // decimal point under de_DE), silently corrupting CSV artifacts.
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::fixed, precision);
  if (ec != std::errc{}) return "?";
  return std::string(buf, ptr);
}

std::string Table::fmt_exact(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "?";
  return std::string(buf, ptr);
}

std::string Table::to_string() const {
  std::vector<std::size_t> w(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      w[c] = std::max(w[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(w[c] - row[c].size(), ' ') << " |";
    }
    os << "\n";
  };
  emit_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(w[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::optional<Table> Table::from_csv(std::string_view csv,
                                     std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<Table> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };

  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  std::size_t i = 0;

  const auto end_cell = [&] {
    record.push_back(std::move(cell));
    cell.clear();
    cell_was_quoted = false;
  };
  const auto end_record = [&] {
    end_cell();
    records.push_back(std::move(record));
    record.clear();
  };

  while (i < csv.size()) {
    const char c = csv[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < csv.size() && csv[i + 1] == '"') {
          cell += '"';
          i += 2;
        } else {
          in_quotes = false;
          ++i;
        }
      } else {
        cell += c;
        ++i;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!cell.empty() || cell_was_quoted) {
          return fail("quote inside unquoted cell");
        }
        in_quotes = true;
        cell_was_quoted = true;
        ++i;
        break;
      case ',':
        end_cell();
        ++i;
        break;
      case '\r':
        if (i + 1 < csv.size() && csv[i + 1] == '\n') ++i;
        [[fallthrough]];
      case '\n':
        end_record();
        ++i;
        break;
      default:
        if (cell_was_quoted) {
          return fail("characters after closing quote");
        }
        cell += c;
        ++i;
        break;
    }
  }
  if (in_quotes) return fail("unterminated quoted cell");
  // A final record without a trailing newline still counts.
  if (!cell.empty() || cell_was_quoted || !record.empty()) end_record();

  if (records.empty()) return fail("empty CSV");
  Table t(std::move(records.front()));
  for (std::size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != t.columns()) {
      return fail("row " + std::to_string(r) + " has " +
                  std::to_string(records[r].size()) + " cells, expected " +
                  std::to_string(t.columns()));
    }
    t.add_row(std::move(records[r]));
  }
  return t;
}

bool Table::maybe_write_csv(const std::string& path) const {
  const char* flag = std::getenv("LEAK_BENCH_CSV");
  if (flag == nullptr || *flag == '\0') return false;
  std::ofstream f(path);
  if (!f) return false;
  f << to_csv();
  return true;
}

}  // namespace leak
