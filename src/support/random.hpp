// Deterministic, seedable PRNG used across the simulator so that every
// experiment is reproducible from a single seed.  xoshiro256** with a
// splitmix64 seeder (public-domain algorithms by Blackman & Vigna).
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

namespace leak {

/// splitmix64 step; used to expand one 64-bit seed into a xoshiro state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator.  Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x1234abcdULL) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t t = (0 - n) % n;
      while (lo < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for per-agent streams).
  Rng fork() { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

/// Derives statistically independent per-trial RNG streams from a
/// single master seed, counter-style: stream i's seed is a splitmix64
/// hash of (master_seed, i), so trial i's randomness depends only on
/// the pair — never on which thread ran it or in what order.  This is
/// what makes the parallel trial runner bit-identical for any thread
/// count (and lets a sweep reproduce one interesting trial in
/// isolation from just (master_seed, trial_index)).
class StreamSeeder {
 public:
  explicit constexpr StreamSeeder(std::uint64_t master_seed)
      : master_(master_seed) {}

  /// 64-bit seed of stream `index`.
  [[nodiscard]] constexpr std::uint64_t seed_for(std::uint64_t index) const {
    // Domain-separate from a plain Rng(master_seed), mix the master
    // through one splitmix64 round, then offset by the index scaled
    // with the (odd) golden-ratio gamma — an injective map of the
    // index — and avalanche once more.
    std::uint64_t state = master_ ^ 0x8e9f0b7c3a5d1e24ULL;
    (void)splitmix64(state);
    state += (index + 1) * 0x9e3779b97f4a7c15ULL;
    return splitmix64(state);
  }

  /// Ready-to-use generator for stream `index`.
  [[nodiscard]] constexpr Rng stream(std::uint64_t index) const {
    return Rng{seed_for(index)};
  }

 private:
  std::uint64_t master_;
};

}  // namespace leak
