// Numerical toolkit used by the analytic models: root finding, ODE
// integration, Gaussian / log-normal distribution helpers and compensated
// summation.  Everything is header-declared here and defined in numeric.cpp.
#pragma once

#include <functional>
#include <optional>
#include <vector>

namespace leak::num {

/// Result of a root-finding call.
struct RootResult {
  double root = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Find a root of `f` in [lo, hi] by bisection.  Requires f(lo) and f(hi)
/// to have opposite signs (else returns converged=false).
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, double tol = 1e-10, int max_iter = 200);

/// Brent's method: bracketing root finder with superlinear convergence.
/// Same bracketing contract as bisect().
RootResult brent(const std::function<double(double)>& f, double lo,
                 double hi, double tol = 1e-12, int max_iter = 200);

/// Expand a bracket upward from [lo, lo+step] until f changes sign or the
/// limit is reached; returns the bracket if found.
std::optional<std::pair<double, double>> bracket_upward(
    const std::function<double(double)>& f, double lo, double step,
    double limit);

/// One trajectory point of an ODE solution.
struct OdePoint {
  double t = 0.0;
  double y = 0.0;
};

/// Integrate dy/dt = f(t, y) from (t0, y0) to t1 with classic RK4 using
/// `steps` fixed steps; returns the full trajectory (steps+1 points).
std::vector<OdePoint> rk4(const std::function<double(double, double)>& f,
                          double t0, double y0, double t1, int steps);

/// Standard normal probability density.
double normal_pdf(double x);
/// Standard normal cumulative distribution (via std::erf).
double normal_cdf(double x);
/// Normal pdf with mean mu, standard deviation sigma.
double normal_pdf(double x, double mu, double sigma);
/// Normal cdf with mean mu, standard deviation sigma.
double normal_cdf(double x, double mu, double sigma);
/// Inverse standard normal cdf (Acklam's rational approximation, refined
/// with one Halley step; |error| < 1e-9 on (0,1)).
double normal_quantile(double p);

/// Log-normal density in s for ln(s) ~ N(mu, sigma^2).
double lognormal_pdf(double s, double mu, double sigma);
/// Log-normal cdf.
double lognormal_cdf(double s, double mu, double sigma);

/// Kahan–Babuska compensated accumulator.
class KahanSum {
 public:
  void add(double x);
  [[nodiscard]] double value() const { return sum_ + c_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

/// Trapezoidal integration over sampled (x, y) pairs, x ascending.
double trapezoid(const std::vector<double>& x, const std::vector<double>& y);

/// Linear interpolation of tabulated (x, y), x strictly ascending; clamps
/// outside the range.
double lerp_table(const std::vector<double>& x, const std::vector<double>& y,
                  double xq);

/// Evenly spaced grid of n points over [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, int n);

}  // namespace leak::num
