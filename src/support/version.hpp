// Build provenance stamped into scenario results so an archived JSON
// artifact names the exact tree that produced it.
//
// This header is also the one sanctioned wall-clock site in src/
// (leaklint rule D1): timing here is provenance metadata — it stamps
// how long a run took — and never feeds simulation state, which must
// derive every bit from the seed.
#pragma once

namespace leak {

/// `git describe --always --dirty` of the tree at configure time, or
/// "unknown" when the build happened outside a git checkout.
[[nodiscard]] const char* git_describe();

/// Milliseconds on the monotonic clock, for wall-time provenance
/// stamps (ScenarioResult::wall_ms).  Differences are meaningful;
/// absolute values are not.
[[nodiscard]] double monotonic_ms();

}  // namespace leak
