// Build provenance stamped into scenario results so an archived JSON
// artifact names the exact tree that produced it.
#pragma once

namespace leak {

/// `git describe --always --dirty` of the tree at configure time, or
/// "unknown" when the build happened outside a git checkout.
[[nodiscard]] const char* git_describe();

}  // namespace leak
