// ASCII table and CSV emission used by the benchmark harnesses to print
// paper-style tables ("paper value | reproduced value | relative error").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace leak {

/// Column-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given precision.
  static std::string fmt(double v, int precision = 4);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  /// Write CSV to `path` if the LEAK_BENCH_CSV environment variable is set
  /// to a non-empty value; returns true when a file was written.
  bool maybe_write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace leak
