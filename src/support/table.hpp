// ASCII table and CSV emission used by the benchmark harnesses and the
// scenario-result writer to print paper-style tables ("paper value |
// reproduced value | relative error").  CSV output follows RFC 4180
// (cells containing commas, quotes, or newlines are quoted) and
// round-trips through from_csv.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace leak {

/// Column-aligned ASCII table builder.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with the given fixed precision.
  /// Locale-independent (always the '.' decimal point).
  static std::string fmt(double v, int precision = 4);

  /// Shortest exact round-trip formatting ("0.33", "4024", "1e-09");
  /// used for machine-consumed cells where no digit may be lost.
  static std::string fmt_exact(double v);

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const { return headers_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }
  [[nodiscard]] const std::string& cell(std::size_t row,
                                        std::size_t col) const {
    return rows_[row][col];
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;

  /// Parse RFC 4180 CSV (quoted cells, embedded commas/quotes/newlines,
  /// CRLF line endings, empty cells).  The first record is the header.
  /// Returns nullopt on malformed input (ragged rows, stray quotes) and
  /// fills `error` when non-null.
  [[nodiscard]] static std::optional<Table> from_csv(
      std::string_view csv, std::string* error = nullptr);

  /// Write CSV to `path` if the LEAK_BENCH_CSV environment variable is set
  /// to a non-empty value; returns true when a file was written.
  bool maybe_write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace leak
