// Small statistics kit: single-pass moments, quantiles, histograms.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace leak {

/// Welford single-pass mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample using linear interpolation (type-7, the numpy
/// default).  q in [0,1].  Copies and sorts the input.
double quantile(std::vector<double> xs, double q);

/// Streaming quantile accumulator: the P-squared algorithm of Jain &
/// Chlamtac (CACM 1985).  Tracks five markers in O(1) memory per
/// observation; exact below five samples, an interpolated estimate
/// above.  The estimate is a pure function of the insertion sequence,
/// so feeding samples in a deterministic order gives a bit-identical
/// value on every run (the property the batched Monte Carlo summary
/// mode relies on).
class P2Quantile {
 public:
  /// q in (0, 1); throws std::invalid_argument otherwise.
  explicit P2Quantile(double q);

  void add(double x);
  [[nodiscard]] std::size_t count() const { return count_; }
  /// Current estimate; 0.0 before the first observation.
  [[nodiscard]] double estimate() const;

 private:
  double q_;
  std::size_t count_ = 0;
  double heights_[5] = {};   ///< marker heights q0..q4
  double positions_[5] = {}; ///< actual marker positions n0..n4 (1-based)
  double desired_[5] = {};   ///< desired marker positions n'0..n'4
};

/// Kolmogorov-Smirnov distance between an empirical sample and a model
/// cdf: sup_x |F_n(x) - F(x)|.  Handles cdfs with point masses (the
/// censored stake law) by checking both sides of each sample point.
double ks_distance(std::vector<double> sample,
                   const std::function<double(double)>& cdf);

/// Fixed-range histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  [[nodiscard]] std::size_t bin_count(std::size_t i) const;
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t underflow() const { return underflow_; }
  [[nodiscard]] std::size_t overflow() const { return overflow_; }
  [[nodiscard]] double bin_center(std::size_t i) const;
  [[nodiscard]] double bin_width() const;
  /// Normalized density value of bin i (counts / (total * width)).
  [[nodiscard]] double density(std::size_t i) const;
  /// Render as a compact ASCII bar chart (for bench/debug output).
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace leak
