// Report-emission helpers shared by the bench binaries and the
// scenario subsystem: section headers, table + CSV emission, and
// JSON-to-file plumbing.  Extracted from bench/bench_common.hpp so the
// ScenarioResult writer and the benches format artifacts identically.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "src/support/json.hpp"
#include "src/support/table.hpp"

namespace leak::reporting {

/// "=== title ===" section header on stdout.
inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Print a table and optionally dump it as CSV (LEAK_BENCH_CSV=1).
inline void emit(const Table& table, const std::string& csv_name) {
  std::printf("%s", table.to_string().c_str());
  if (table.maybe_write_csv(csv_name)) {
    std::printf("(wrote %s)\n", csv_name.c_str());
  }
}

/// Write a JSON document to `path` ("-" = stdout).  Returns false when
/// the file could not be opened.
inline bool write_json(const json::Value& doc, const std::string& path,
                       int indent = 2) {
  const std::string text = doc.dump(indent);
  if (path == "-") {
    std::printf("%s\n", text.c_str());
    return true;
  }
  std::ofstream f(path);
  if (!f) return false;
  f << text << "\n";
  return f.good();
}

/// Write arbitrary text to `path` ("-" = stdout); same contract.
inline bool write_text(const std::string& text, const std::string& path) {
  if (path == "-") {
    std::printf("%s", text.c_str());
    return true;
  }
  std::ofstream f(path);
  if (!f) return false;
  f << text;
  return f.good();
}

}  // namespace leak::reporting
