#include "src/support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace leak {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double d = x - mean_;
  mean_ += d / static_cast<double>(n_);
  m2_ += d * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto i = static_cast<std::size_t>(pos);
  if (i + 1 >= xs.size()) return xs.back();
  const double w = pos - static_cast<double>(i);
  return xs[i] * (1.0 - w) + xs[i + 1] * w;
}

P2Quantile::P2Quantile(double q) : q_(q) {
  if (!(q > 0.0) || !(q < 1.0)) {
    throw std::invalid_argument("P2Quantile: q not in (0,1)");
  }
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_] = x;
    ++count_;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * q_;
      desired_[2] = 1.0 + 4.0 * q_;
      desired_[3] = 3.0 + 2.0 * q_;
      desired_[4] = 5.0;
    }
    return;
  }
  ++count_;

  // Locate the cell containing x, extending the extremes in place.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && heights_[k + 1] <= x) ++k;
  }
  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  const double dn[5] = {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
  for (int i = 0; i < 5; ++i) desired_[i] += dn[i];

  // Adjust the three interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double right = positions_[i + 1] - positions_[i];
    const double left = positions_[i - 1] - positions_[i];
    if ((d >= 1.0 && right > 1.0) || (d <= -1.0 && left < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction; fall back to linear when the
      // parabola would leave the bracketing heights.
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((positions_[i] - positions_[i - 1] + s) *
                   (heights_[i + 1] - heights_[i]) / right +
               (positions_[i + 1] - positions_[i] - s) *
                   (heights_[i] - heights_[i - 1]) / -left);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = s > 0.0 ? i + 1 : i - 1;
        heights_[i] += s * (heights_[j] - heights_[i]) /
                       (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

double P2Quantile::estimate() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    // Exact small-sample quantile over the buffered observations.
    std::vector<double> xs(heights_, heights_ + count_);
    return quantile(std::move(xs), q_);
  }
  return heights_[2];
}

double ks_distance(std::vector<double> sample,
                   const std::function<double(double)>& cdf) {
  if (sample.empty()) throw std::invalid_argument("ks_distance: empty");
  std::sort(sample.begin(), sample.end());
  const double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    const double model = cdf(sample[i]);
    const double below = static_cast<double>(i) / n;       // F_n(x-)
    const double above = static_cast<double>(i + 1) / n;   // F_n(x)
    d = std::max(d, std::abs(model - below));
    d = std::max(d, std::abs(model - above));
  }
  return d;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: bad range or bins");
  }
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    // The top edge is inclusive so a max-valued sample lands in-bin.
    if (x == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  const auto i = static_cast<std::size_t>((x - lo_) / bin_width());
  ++counts_[std::min(i, counts_.size() - 1)];
}

std::size_t Histogram::bin_count(std::size_t i) const { return counts_.at(i); }

double Histogram::bin_center(std::size_t i) const {
  return lo_ + (static_cast<double>(i) + 0.5) * bin_width();
}

double Histogram::bin_width() const {
  return (hi_ - lo_) / static_cast<double>(counts_.size());
}

double Histogram::density(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) /
         (static_cast<double>(total_) * bin_width());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t maxc = 1;
  for (auto c : counts_) maxc = std::max(maxc, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = counts_[i] * width / maxc;
    os << bin_center(i) << "\t" << counts_[i] << "\t"
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace leak
