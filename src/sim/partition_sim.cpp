#include "src/sim/partition_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/support/random.hpp"

namespace leak::sim {

namespace {

constexpr double kGweiPerEth = 1e9;

/// Does the Byzantine stake count toward the active side of the branch's
/// ratio (Eqs 8 and 10 count it; Eq 5 has none)?
bool byzantine_counts_active(Strategy s) {
  return s == Strategy::kSlashable || s == Strategy::kSemiActiveFinalize;
}

void validate(const PartitionSimConfig& cfg) {
  if (cfg.n_validators == 0) {
    throw std::invalid_argument("run_partition_sim: no validators");
  }
  if (cfg.beta0 < 0.0 || cfg.beta0 >= 1.0 || cfg.p0 < 0.0 || cfg.p0 > 1.0) {
    throw std::invalid_argument("run_partition_sim: bad proportions");
  }
  if (cfg.branches < 2 || cfg.branches > cfg.n_validators) {
    throw std::invalid_argument("run_partition_sim: bad branch count");
  }
  // p0 only shapes the two-branch split; silently ignoring it with
  // k > 2 branches turned real config mistakes into plausible results.
  if (cfg.branches > 2 && cfg.p0 != 0.5) {
    throw std::invalid_argument(
        "run_partition_sim: p0 only shapes the two-branch split; with "
        "branches > 2 the honest assignment is uniform over the branches "
        "-- leave p0 at its 0.5 default");
  }
  if (!cfg.windows.empty()) {
    if (cfg.windows.size() != cfg.branches - 1) {
      throw std::invalid_argument(
          "run_partition_sim: windows must have exactly branches-1 "
          "entries (got " + std::to_string(cfg.windows.size()) + " for " +
          std::to_string(cfg.branches) + " branches)");
    }
    if (cfg.heal_epoch != 0 || cfg.heal_stagger != 0) {
      throw std::invalid_argument(
          "run_partition_sim: windows and heal_epoch/heal_stagger are "
          "mutually exclusive -- the window schedule is the single source "
          "of truth");
    }
    for (const BranchWindow& w : cfg.windows) {
      if (w.open_epoch < 1) {
        throw std::invalid_argument(
            "run_partition_sim: branch open_epoch must be >= 1");
      }
      if (w.heal_epoch != 0 && w.heal_epoch <= w.open_epoch) {
        throw std::invalid_argument(
            "run_partition_sim: heal_epoch must be after open_epoch");
      }
    }
  }
  for (const OutageWindow& o : cfg.outages) {
    if (o.span_epochs == 0 || o.cohort <= 0.0 || o.cohort > 1.0) {
      throw std::invalid_argument(
          "run_partition_sim: outage needs span_epochs >= 1 and a cohort "
          "in (0, 1]");
    }
  }
}

/// Byzantine validator count implied by the configured proportion.
std::uint32_t byzantine_count(const PartitionSimConfig& cfg) {
  return static_cast<std::uint32_t>(
      std::llround(cfg.beta0 * static_cast<double>(cfg.n_validators)));
}

/// Core scenario run over an explicit per-honest-validator branch
/// assignment (honest indices [0, n_honest); branch_of_honest[i] in
/// [0, branches)).  Byzantine validators occupy indices [n_honest, n).
PartitionSimResult run_partition_core(
    const PartitionSimConfig& cfg, std::uint32_t n_byz,
    const std::vector<std::uint8_t>& branch_of_honest) {
  const auto n = cfg.n_validators;
  const auto n_honest = n - n_byz;
  const auto k = cfg.branches;

  PartitionSimResult res;
  res.branch.resize(k);
  res.n_byzantine = n_byz;
  res.n_honest_per_branch.assign(k, 0);
  for (const std::uint8_t b : branch_of_honest) {
    ++res.n_honest_per_branch[b];
  }
  res.n_honest_branch1 = res.n_honest_per_branch[0];
  res.n_honest_branch2 = k > 1 ? res.n_honest_per_branch[1] : 0;

  // Per-branch open/heal epochs: the explicit window schedule when
  // present, otherwise the legacy knobs (every branch opens at epoch 1
  // and heals at heal_epoch + (b-1) * heal_stagger; heal 0 = never).
  // Branch b is frozen after its heal: from then on its honest class
  // attests on branch 0.  Before its open the branch does not exist
  // yet and its honest class also attests on branch 0.
  std::vector<std::size_t> open_at(k, 1);
  std::vector<std::size_t> heal_at(k, 0);
  if (!cfg.windows.empty()) {
    for (std::uint32_t b = 1; b < k; ++b) {
      open_at[b] = cfg.windows[b - 1].open_epoch;
      heal_at[b] = cfg.windows[b - 1].heal_epoch;
    }
  } else if (cfg.heal_epoch > 0) {
    for (std::uint32_t b = 1; b < k; ++b) {
      heal_at[b] = cfg.heal_epoch +
                   static_cast<std::size_t>(b - 1) * cfg.heal_stagger;
    }
  }
  bool healing = false;
  for (std::uint32_t b = 1; b < k; ++b) healing = healing || heal_at[b] > 0;
  std::vector<std::uint8_t> healed(k, 0);
  std::vector<std::uint8_t> opened(k, 0);
  opened[0] = 1;  // the canonical branch is always open

  // One registry view and tracker per branch.  With healing enabled the
  // trackers use the real-spec penalty gate (score > 0 keeps paying
  // after finalization resumes) so the recovery tail matches
  // analytic::recovery; without healing the legacy leak-only gate keeps
  // every two-branch result bit-identical.
  penalties::SpecConfig spec = cfg.spec;
  if (healing) spec.inactivity_penalty_tracks_score = true;
  std::vector<chain::ValidatorRegistry> registry(
      k, chain::ValidatorRegistry{n});
  std::vector<penalties::InactivityTracker> tracker;
  tracker.reserve(k);
  for (std::uint32_t b = 0; b < k; ++b) {
    tracker.emplace_back(registry[b], spec);
  }

  const auto is_byz = [&](std::uint32_t i) { return i >= n_honest; };

  // Late opens (and scheduled outages) make branch 0's finality
  // non-monotone: an open after finalization resumed strips active
  // stake away and re-enters the leak.  Legacy configs (every branch
  // open from epoch 1, no outages) never take the re-entry path, so
  // they stay bit-identical.
  bool cascading = !cfg.outages.empty();
  for (std::uint32_t b = 1; b < k; ++b) {
    cascading = cascading || open_at[b] > 1;
  }

  std::vector<std::uint8_t> leak_over(k, 0);
  std::int64_t leak_end_epoch = -1;  ///< branch-0 finalization (with heals)
  std::int64_t sm_streak_start = -1;  ///< branch-0 supermajority streak

  // Recovery bookkeeping: one pending outcome per honest class that is
  // due to return (branches 1..k-1), plus the branch-wide totals.
  std::vector<RecoveryOutcome> pending(k);
  std::vector<std::uint32_t> representative(k, n);  // n = no member
  for (std::uint32_t i = 0; i < n_honest; ++i) {
    const std::uint8_t b = branch_of_honest[i];
    if (representative[b] == n) representative[b] = i;
  }
  for (std::uint32_t b = 0; b < k; ++b) {
    pending[b].from_branch = b;
    pending[b].class_size = res.n_honest_per_branch[b];
  }
  bool recovery_totals_recorded = false;
  Gwei recovery_total_start{};

  // Reused across every (epoch, branch) pair: each pass assigns every
  // index, so hoisting the buffers out of the hot loop removes one
  // allocation per simulated epoch per branch.  class_active[c] is the
  // activity of honest branch class c on the branch being processed —
  // activity depends only on a validator's class, so the per-validator
  // passes below become byte-table lookups instead of branchy
  // re-derivations.
  std::vector<std::uint8_t> active(n, 0);
  std::vector<std::uint8_t> class_active(k, 0);

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    const Epoch epoch{t};
    // Cascading opens: a branch opening after epoch 1 forks the
    // canonical chain's registry state (balances, scores, exits) as of
    // the fork epoch.  Epoch-1 opens keep the pristine initial state,
    // exactly the legacy behaviour.
    for (std::uint32_t b = 1; b < k; ++b) {
      if (opened[b] == 0 && t >= open_at[b]) {
        opened[b] = 1;
        if (t > 1) registry[b] = registry[0];
      }
    }
    if (healing) {
      for (std::uint32_t b = 1; b < k; ++b) {
        if (heal_at[b] == 0) continue;
        if (healed[b] == 0 && t >= heal_at[b]) {
          healed[b] = 1;
          res.branch[b].healed_epoch = static_cast<std::int64_t>(t);
          pending[b].healed_epoch = static_cast<std::int64_t>(t);
          if (std::all_of(healed.begin() + 1, healed.end(),
                          [](std::uint8_t h) { return h != 0; })) {
            res.heal_complete_epoch = static_cast<std::int64_t>(t);
          }
        }
      }
    }
    const bool all_healed = healing && res.heal_complete_epoch >= 0;

    // Scheduled outages: the afflicted honest prefix sits out this
    // epoch on every branch (empty for every legacy config).
    std::uint32_t outage_cut = 0;
    for (const OutageWindow& o : cfg.outages) {
      if (t >= o.from_epoch && t < o.from_epoch + o.span_epochs) {
        outage_cut = std::max(
            outage_cut,
            static_cast<std::uint32_t>(std::llround(
                o.cohort * static_cast<double>(n_honest))));
      }
    }

    for (std::uint32_t b = 0; b < k; ++b) {
      if (opened[b] == 0) continue;
      if (leak_over[b] != 0) continue;
      if (b > 0 && healed[b] != 0) continue;
      if (b == 0 && res.recovery_complete_epoch >= 0) continue;
      auto& reg = registry[b];
      auto& out = res.branch[b];
      /// Branch 0 is past finalization and in the recovery tail.
      const bool recovering = b == 0 && leak_end_epoch >= 0;

      // On the canonical branch, snapshot each returned class the first
      // epoch it recovers (healed and leak over), before this epoch's
      // penalties: the tail from here is exactly the
      // analytic::residual_loss recurrence.
      if (recovering) {
        for (std::uint32_t c = 1; c < k; ++c) {
          auto& rec = pending[c];
          if (rec.return_epoch >= 0 || rec.ejected_before_return) continue;
          if (healed[c] == 0 || representative[c] == n) continue;
          const ValidatorIndex v{representative[c]};
          if (!reg.is_active(v, epoch)) {
            rec.ejected_before_return = true;
            continue;
          }
          rec.return_epoch = static_cast<std::int64_t>(t);
          rec.score_at_return =
              static_cast<double>(reg.at(v).inactivity_score);
          rec.stake_at_return_eth =
              static_cast<double>(reg.at(v).balance.value()) / kGweiPerEth;
        }
        if (!recovery_totals_recorded) {
          recovery_totals_recorded = true;
          for (std::uint32_t i = 0; i < n; ++i) {
            recovery_total_start += reg.at(ValidatorIndex{i}).balance;
          }
        }
      }

      // Activity on branch b this epoch, assigned per class: Byzantine
      // validators occupy the index tail [n_honest, n) (never inside
      // the outage prefix, which is capped at n_honest), honest
      // validators look their branch class up in the table.
      std::uint8_t byz_active = 0;
      if (recovering) {
        byz_active = 1;  // the partition is over; everyone attests
      } else {
        switch (cfg.strategy) {
          case Strategy::kNone:
            byz_active = 0;  // unreachable unless beta0 rounds to 0 byz
            break;
          case Strategy::kSlashable:
            byz_active = 1;
            break;
          case Strategy::kSemiActiveFinalize:
          case Strategy::kSemiActiveOverthrow:
            byz_active = t % k == b ? 1 : 0;
            break;
        }
      }
      for (std::uint32_t c = 0; c < k; ++c) {
        // A class is active on its own branch; healed and not-yet-
        // opened classes attest on the canonical branch.
        class_active[c] =
            (c == b || (b == 0 && (healed[c] != 0 || opened[c] == 0))) ? 1
                                                                       : 0;
      }
      for (std::uint32_t i = 0; i < n_honest; ++i) {
        // Scheduled outage: the honest prefix sits out everywhere.
        active[i] = i < outage_cut ? 0 : class_active[branch_of_honest[i]];
      }
      for (std::uint32_t i = n_honest; i < n; ++i) active[i] = byz_active;

      // Penalties and branch metrics for this epoch.  During the
      // partition nothing has finalized since genesis; once branch 0
      // finalizes, finality advances every epoch and the tracker
      // leaves the leak.  The metric stake sums ride the tracker's
      // sweep (the fused process_epoch overload) instead of a second
      // pass over the registry: active[i] for honest validators is
      // exactly the outage-and-class condition the old metrics loop
      // re-derived, so prefix_active IS the honest active side, the
      // suffix total IS the Byzantine stake, and integer Gwei sums
      // make the regrouped totals bit-identical.  Churn mode cannot
      // fuse (queued exits land after the sweep) and takes the
      // two-pass fallback.
      const Epoch last_finalized =
          recovering ? Epoch{t - 1} : Epoch{0};
      const bool fused = !spec.use_churn_limit;
      penalties::BalanceSums sums;
      const auto report =
          fused ? tracker[b].process_epoch(epoch, last_finalized, active,
                                           n_honest, &sums)
                : tracker[b].process_epoch(epoch, last_finalized, active);
      if (out.honest_ejection_epoch < 0) {
        for (const ValidatorIndex v : report.ejected) {
          if (!is_byz(v.value())) {
            out.honest_ejection_epoch = static_cast<std::int64_t>(t);
            break;
          }
        }
      }

      // The ratio counts the stake classes per the paper's Eqs 5/8/10:
      // honest actives plus (strategy-dependent) the Byzantine stake,
      // over all non-exited stake.
      const bool byz_counts =
          recovering || byzantine_counts_active(cfg.strategy);
      Gwei total{};
      Gwei active_side{};
      Gwei byz_side{};
      if (fused) {
        byz_side = sums.suffix_total;
        total = sums.prefix_total + sums.suffix_total;
        active_side = sums.prefix_active;
        if (byz_counts) active_side += byz_side;
      } else {
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto& rec = reg.at(ValidatorIndex{i});
          if (rec.exited_by(epoch)) continue;
          const Gwei bal = rec.balance;
          total += bal;
          if (is_byz(i)) {
            byz_side += bal;
            if (byz_counts) active_side += bal;
          } else if (i >= outage_cut &&
                     class_active[branch_of_honest[i]] != 0) {
            active_side += bal;
          }
        }
      }
      const double beta =
          total.value() > 0
              ? static_cast<double>(byz_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      const double ratio =
          total.value() > 0
              ? static_cast<double>(active_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      if (beta > out.beta_peak) {
        out.beta_peak = beta;
        out.beta_peak_epoch = static_cast<std::int64_t>(t);
      }
      if (t % cfg.trajectory_stride == 0) {
        out.ratio_trajectory.push_back(ratio);
        out.beta_trajectory.push_back(beta);
      }

      // Supermajority and finalization bookkeeping.
      const bool supermajority =
          3 * static_cast<__uint128_t>(active_side.value()) >
          2 * static_cast<__uint128_t>(total.value());
      if (supermajority && out.supermajority_epoch < 0) {
        out.supermajority_epoch = static_cast<std::int64_t>(t);
      }
      // The overthrow strategy withholds the finalizing votes — but once
      // every branch has healed there is a single component whose honest
      // supermajority finalizes without Byzantine help.
      const bool wants_finalize =
          cfg.strategy != Strategy::kSemiActiveOverthrow ||
          (b == 0 && all_healed);
      if (b == 0 && cascading) {
        // Re-entrant leak: track the *current* supermajority streak
        // instead of latching the first epoch, because an open can
        // break a previously restored supermajority.
        if (supermajority) {
          if (sm_streak_start < 0) {
            sm_streak_start = static_cast<std::int64_t>(t);
          }
        } else {
          sm_streak_start = -1;
          if (leak_end_epoch >= 0) {
            // Finality lost again; the next recovery tail re-snapshots
            // its starting balances.
            leak_end_epoch = -1;
            recovery_totals_recorded = false;
            recovery_total_start = Gwei{};
          }
        }
        if (wants_finalize && leak_end_epoch < 0 && sm_streak_start >= 0 &&
            t > static_cast<std::size_t>(sm_streak_start)) {
          // One extra epoch of supermajority justifies the next
          // checkpoint and finalizes the previous one (Section 5.1).
          if (out.finalization_epoch < 0) {
            out.finalization_epoch = static_cast<std::int64_t>(t);
          }
          // The canonical branch stays live whether or not heals are
          // scheduled: a later open may re-partition it.
          leak_end_epoch = static_cast<std::int64_t>(t);
        }
      } else if (wants_finalize && out.supermajority_epoch >= 0 &&
                 out.finalization_epoch < 0 &&
                 t > static_cast<std::size_t>(out.supermajority_epoch)) {
        // One extra epoch of supermajority justifies the next checkpoint
        // and finalizes the previous one (Section 5.1).
        out.finalization_epoch = static_cast<std::int64_t>(t);
        if (b == 0 && healing) {
          // The canonical branch stays live: the recovery tail starts
          // next epoch.
          leak_end_epoch = static_cast<std::int64_t>(t);
        } else {
          leak_over[b] = 1;
        }
      }

      // Recovery-tail bookkeeping on the canonical branch.
      if (recovering) {
        for (std::uint32_t c = 1; c < k; ++c) {
          auto& rec = pending[c];
          if (rec.return_epoch < 0 || rec.recovery_epochs >= 0) continue;
          const ValidatorIndex v{representative[c]};
          const bool done = !reg.is_active(v, Epoch{t + 1}) ||
                            reg.at(v).inactivity_score == 0;
          if (done) {
            rec.recovery_epochs =
                static_cast<std::int64_t>(t) - rec.return_epoch + 1;
            rec.residual_loss_eth =
                rec.stake_at_return_eth -
                static_cast<double>(reg.at(v).balance.value()) / kGweiPerEth;
          }
        }
        if (all_healed && res.recovery_complete_epoch < 0) {
          bool all_zero = true;
          for (std::uint32_t i = 0; i < n && all_zero; ++i) {
            const ValidatorIndex v{i};
            if (reg.is_active(v, Epoch{t + 1}) &&
                reg.at(v).inactivity_score > 0) {
              all_zero = false;
            }
          }
          if (all_zero) {
            res.recovery_complete_epoch = static_cast<std::int64_t>(t);
          }
        }
      }
    }

    bool all_done = true;
    for (std::uint32_t b = 0; b < k; ++b) {
      if (b == 0) {
        const bool done0 = healing ? res.recovery_complete_epoch >= 0
                                   : leak_over[0] != 0;
        all_done = all_done && done0;
      } else {
        all_done = all_done && (leak_over[b] != 0 || healed[b] != 0);
      }
    }
    if (all_done) break;
  }

  // Total recovery-tail loss across the whole validator set (exited
  // validators keep their frozen balance, so the sum is loss-exact).
  if (recovery_totals_recorded) {
    Gwei now{};
    for (std::uint32_t i = 0; i < n; ++i) {
      now += registry[0].at(ValidatorIndex{i}).balance;
    }
    res.residual_loss_total_eth =
        static_cast<double>(recovery_total_start.value() - now.value()) /
        kGweiPerEth;
  }
  for (std::uint32_t b = 1; b < k; ++b) {
    if (pending[b].healed_epoch >= 0 || pending[b].ejected_before_return) {
      res.recovery.push_back(pending[b]);
    }
  }

  // Conflicting finalization: the epoch the second branch finalized a
  // checkpoint conflicting with another branch's (for two branches:
  // max(f1, f2), the legacy definition).
  std::vector<std::int64_t> finals;
  for (const auto& br : res.branch) {
    if (br.finalization_epoch >= 0) finals.push_back(br.finalization_epoch);
  }
  if (finals.size() >= 2) {
    std::sort(finals.begin(), finals.end());
    res.conflicting_finalization_epoch = finals[1];
  }
  res.beta_exceeded_third_both =
      std::all_of(res.branch.begin(), res.branch.end(),
                  [](const BranchOutcome& br) {
                    return br.beta_peak > 1.0 / 3.0;
                  });
  return res;
}

/// Deterministic honest split: branch 1 gets round(p0 * n_honest) for
/// the two-branch case (the legacy split); k > 2 splits into
/// equal-size contiguous chunks.
std::vector<std::uint8_t> deterministic_split(const PartitionSimConfig& cfg,
                                              std::uint32_t n_honest) {
  std::vector<std::uint8_t> branch_of_honest(n_honest, 1);
  if (cfg.branches == 2) {
    const auto n_h1 = static_cast<std::uint32_t>(
        std::llround(cfg.p0 * static_cast<double>(n_honest)));
    for (std::uint32_t i = 0; i < std::min(n_h1, n_honest); ++i) {
      branch_of_honest[i] = 0;
    }
  } else {
    for (std::uint32_t i = 0; i < n_honest; ++i) {
      branch_of_honest[i] = static_cast<std::uint8_t>(
          (static_cast<std::uint64_t>(i) * cfg.branches) / n_honest);
    }
  }
  return branch_of_honest;
}

/// The scalars of one trial that survive into the aggregates.
struct TrialOutcome {
  std::int64_t conflict_epoch = -1;
  double beta_peak = 0.0;
  std::uint8_t exceeded_both = 0;
  double residual_loss_eth = 0.0;
  std::int64_t recovery_epoch = -1;
};

TrialOutcome trial_outcome(const PartitionSimConfig& base, std::uint32_t n_byz,
                           const std::vector<std::uint8_t>& branch_of_honest) {
  const auto r = run_partition_core(base, n_byz, branch_of_honest);
  TrialOutcome out;
  out.conflict_epoch = r.conflicting_finalization_epoch;
  for (const auto& br : r.branch) {
    out.beta_peak = std::max(out.beta_peak, br.beta_peak);
  }
  out.exceeded_both = r.beta_exceeded_third_both ? 1 : 0;
  out.residual_loss_eth = r.residual_loss_total_eth;
  out.recovery_epoch = r.recovery_complete_epoch;
  return out;
}

/// Draw trial `trial`'s honest branch assignment into `branch_of_honest`.
void draw_split(const PartitionSimConfig& base, const StreamSeeder& seeder,
                std::size_t trial, std::vector<std::uint8_t>* branch_of_honest) {
  Rng rng = seeder.stream(trial);
  const auto k = base.branches;
  for (auto& b : *branch_of_honest) {
    // Two branches keep the legacy bernoulli(p0) draw exactly;
    // k > 2 assigns uniformly over the branches.
    b = k == 2 ? (rng.bernoulli(base.p0) ? 0 : 1)
               : static_cast<std::uint8_t>(rng.uniform_index(k));
  }
}

/// Order-fed aggregate shared by the trials driver's full and summary
/// modes: integer counts plus ascending-trial double sums, so both
/// modes produce bit-identical fractions and means.
struct PartitionTally {
  std::size_t conflicting = 0;
  std::size_t exceeded = 0;
  std::size_t recovered = 0;
  double conflict_epoch_sum = 0.0;
  double residual_sum = 0.0;
  double recovery_epoch_sum = 0.0;
  void add(const TrialOutcome& out) {
    if (out.conflict_epoch >= 0) {
      ++conflicting;
      conflict_epoch_sum += static_cast<double>(out.conflict_epoch);
    }
    if (out.exceeded_both != 0) ++exceeded;
    residual_sum += out.residual_loss_eth;
    if (out.recovery_epoch >= 0) {
      ++recovered;
      recovery_epoch_sum += static_cast<double>(out.recovery_epoch);
    }
  }
};

}  // namespace

PartitionSimResult run_partition_sim(const PartitionSimConfig& cfg) {
  validate(cfg);
  const auto n_byz = byzantine_count(cfg);
  const auto n_honest = cfg.n_validators - n_byz;
  return run_partition_core(cfg, n_byz, deterministic_split(cfg, n_honest));
}

PartitionTrialsResult run_partition_trials(const PartitionTrialsConfig& cfg) {
  validate(cfg.base);
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_partition_trials: no trials");
  }
  const auto n_byz = byzantine_count(cfg.base);
  const auto n_honest = cfg.base.n_validators - n_byz;

  // Trial i always draws from the (seed, i) stream, so the result is
  // bit-identical for every (block, threads) combination in either
  // mode.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  const std::size_t block = runner::resolve_block(cfg.block);
  PartitionTrialsResult res;
  res.trials = cfg.trials;
  PartitionTally tally;
  if (cfg.keep_trials) {
    // Full mode: block-scheduled fan-out straight into the result's
    // preallocated slabs (only the scalars the trials aggregate
    // survive a trial, never the full per-branch trajectories), then
    // aggregate in trial order.
    res.conflict_epochs.assign(cfg.trials, -1);
    res.beta_peaks.assign(cfg.trials, 0.0);
    res.residual_losses_eth.assign(cfg.trials, 0.0);
    res.recovery_epochs.assign(cfg.trials, -1);
    std::vector<std::uint8_t> exceeded_both(cfg.trials, 0);
    pool.run_blocks(
        cfg.trials, block, [&](std::size_t begin, std::size_t end) {
          std::vector<std::uint8_t> branch_of_honest(n_honest);
          for (std::size_t trial = begin; trial < end; ++trial) {
            draw_split(cfg.base, seeder, trial, &branch_of_honest);
            const auto out = trial_outcome(cfg.base, n_byz, branch_of_honest);
            res.conflict_epochs[trial] = out.conflict_epoch;
            res.beta_peaks[trial] = out.beta_peak;
            exceeded_both[trial] = out.exceeded_both;
            res.residual_losses_eth[trial] = out.residual_loss_eth;
            res.recovery_epochs[trial] = out.recovery_epoch;
          }
        });
    for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
      tally.add(TrialOutcome{res.conflict_epochs[trial],
                             res.beta_peaks[trial], exceeded_both[trial],
                             res.residual_losses_eth[trial],
                             res.recovery_epochs[trial]});
    }
  } else {
    // Summary mode: per-block outcome slabs fold through the ordered
    // reduction tree in ascending block order — the same add() calls
    // in the same trial order as full mode, without the O(trials)
    // slabs.
    struct OutcomeFold {
      PartitionTally* tally;
      void fold(std::size_t, std::size_t,
                std::vector<TrialOutcome>&& outcomes) const {
        for (const auto& out : outcomes) tally->add(out);
      }
    };
    (void)pool.run_reduce(
        cfg.trials, block, OutcomeFold{&tally},
        [&](std::size_t begin, std::size_t end) {
          std::vector<TrialOutcome> outcomes;
          outcomes.reserve(end - begin);
          std::vector<std::uint8_t> branch_of_honest(n_honest);
          for (std::size_t trial = begin; trial < end; ++trial) {
            draw_split(cfg.base, seeder, trial, &branch_of_honest);
            outcomes.push_back(trial_outcome(cfg.base, n_byz, branch_of_honest));
          }
          return outcomes;
        });
  }

  const double n = static_cast<double>(cfg.trials);
  res.conflicting_fraction = static_cast<double>(tally.conflicting) / n;
  res.beta_exceeded_fraction = static_cast<double>(tally.exceeded) / n;
  res.mean_conflict_epoch =
      tally.conflicting > 0
          ? tally.conflict_epoch_sum / static_cast<double>(tally.conflicting)
          : 0.0;
  res.recovered_fraction = static_cast<double>(tally.recovered) / n;
  res.mean_residual_loss_eth = tally.residual_sum / n;
  res.mean_recovery_epoch =
      tally.recovered > 0
          ? tally.recovery_epoch_sum / static_cast<double>(tally.recovered)
          : 0.0;
  return res;
}

}  // namespace leak::sim
