#include "src/sim/partition_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/support/random.hpp"

namespace leak::sim {

namespace {

/// Does the Byzantine stake count toward the active side of the branch's
/// ratio (Eqs 8 and 10 count it; Eq 5 has none)?
bool byzantine_counts_active(Strategy s) {
  return s == Strategy::kSlashable || s == Strategy::kSemiActiveFinalize;
}

void validate(const PartitionSimConfig& cfg) {
  if (cfg.n_validators == 0) {
    throw std::invalid_argument("run_partition_sim: no validators");
  }
  if (cfg.beta0 < 0.0 || cfg.beta0 >= 1.0 || cfg.p0 < 0.0 || cfg.p0 > 1.0) {
    throw std::invalid_argument("run_partition_sim: bad proportions");
  }
}

/// Byzantine validator count implied by the configured proportion.
std::uint32_t byzantine_count(const PartitionSimConfig& cfg) {
  return static_cast<std::uint32_t>(
      std::llround(cfg.beta0 * static_cast<double>(cfg.n_validators)));
}

/// Core scenario run over an explicit per-honest-validator branch
/// assignment (honest indices [0, n_honest); branch_of_honest[i] is 0
/// or 1).  Byzantine validators occupy indices [n_honest, n).
PartitionSimResult run_partition_core(
    const PartitionSimConfig& cfg, std::uint32_t n_byz,
    const std::vector<std::uint8_t>& branch_of_honest) {
  const auto n = cfg.n_validators;
  const auto n_honest = n - n_byz;
  std::uint32_t n_h1 = 0;
  for (const std::uint8_t b : branch_of_honest) {
    if (b == 0) ++n_h1;
  }

  PartitionSimResult res;
  res.n_byzantine = n_byz;
  res.n_honest_branch1 = n_h1;
  res.n_honest_branch2 = n_honest - n_h1;

  // One registry view and tracker per branch.
  std::array<chain::ValidatorRegistry, 2> registry{
      chain::ValidatorRegistry{n}, chain::ValidatorRegistry{n}};
  std::array<penalties::InactivityTracker, 2> tracker{
      penalties::InactivityTracker{registry[0], cfg.spec},
      penalties::InactivityTracker{registry[1], cfg.spec}};

  const auto is_byz = [&](std::uint32_t i) { return i >= n_honest; };
  const auto honest_branch = [&](std::uint32_t i) -> int {
    return branch_of_honest[i];
  };

  std::array<bool, 2> leak_over = {false, false};

  // Reused across every (epoch, branch) pair: each pass assigns every
  // index, so hoisting the buffer out of the hot loop removes one
  // allocation per simulated epoch per branch.
  std::vector<bool> active(n, false);

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    const Epoch epoch{t};
    for (int b = 0; b < 2; ++b) {
      if (leak_over[static_cast<std::size_t>(b)]) continue;
      auto& reg = registry[static_cast<std::size_t>(b)];
      auto& out = res.branch[static_cast<std::size_t>(b)];

      // Activity on branch b this epoch.
      for (std::uint32_t i = 0; i < n; ++i) {
        if (is_byz(i)) {
          switch (cfg.strategy) {
            case Strategy::kNone:
              active[i] = false;  // unreachable unless beta0 rounds to 0 byz
              break;
            case Strategy::kSlashable:
              active[i] = true;
              break;
            case Strategy::kSemiActiveFinalize:
            case Strategy::kSemiActiveOverthrow:
              active[i] = (t % 2 == static_cast<std::size_t>(b));
              break;
          }
        } else {
          active[i] = honest_branch(i) == b;
        }
      }

      // Penalties for this epoch (leak active: nothing finalized since 0).
      const auto report = tracker[static_cast<std::size_t>(b)].process_epoch(
          epoch, Epoch{0}, active);
      if (out.honest_ejection_epoch < 0) {
        for (const ValidatorIndex v : report.ejected) {
          if (!is_byz(v.value())) {
            out.honest_ejection_epoch = static_cast<std::int64_t>(t);
            break;
          }
        }
      }

      // Branch metrics: the ratio counts the stake classes per the
      // paper's Eqs 5/8/10 — honest actives plus (strategy-dependent)
      // the Byzantine stake, over all non-exited stake.
      const Gwei total = reg.total_active_balance(epoch);
      Gwei active_side{};
      Gwei byz_side{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const ValidatorIndex v{i};
        if (!reg.is_active(v, epoch)) continue;
        const Gwei bal = reg.at(v).balance;
        if (is_byz(i)) {
          byz_side += bal;
          if (byzantine_counts_active(cfg.strategy)) active_side += bal;
        } else if (honest_branch(i) == b) {
          active_side += bal;
        }
      }
      const double beta =
          total.value() > 0
              ? static_cast<double>(byz_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      const double ratio =
          total.value() > 0
              ? static_cast<double>(active_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      if (beta > out.beta_peak) {
        out.beta_peak = beta;
        out.beta_peak_epoch = static_cast<std::int64_t>(t);
      }
      if (t % cfg.trajectory_stride == 0) {
        out.ratio_trajectory.push_back(ratio);
        out.beta_trajectory.push_back(beta);
      }

      // Supermajority and finalization bookkeeping.
      const bool supermajority =
          3 * static_cast<__uint128_t>(active_side.value()) >
          2 * static_cast<__uint128_t>(total.value());
      if (supermajority && out.supermajority_epoch < 0) {
        out.supermajority_epoch = static_cast<std::int64_t>(t);
      }
      const bool wants_finalize =
          cfg.strategy != Strategy::kSemiActiveOverthrow;
      if (wants_finalize && out.supermajority_epoch >= 0 &&
          out.finalization_epoch < 0 &&
          t > static_cast<std::size_t>(out.supermajority_epoch)) {
        // One extra epoch of supermajority justifies the next checkpoint
        // and finalizes the previous one (Section 5.1).
        out.finalization_epoch = static_cast<std::int64_t>(t);
        leak_over[static_cast<std::size_t>(b)] = true;
      }
    }
    if (leak_over[0] && leak_over[1]) break;
  }

  const auto f1 = res.branch[0].finalization_epoch;
  const auto f2 = res.branch[1].finalization_epoch;
  if (f1 >= 0 && f2 >= 0) {
    res.conflicting_finalization_epoch = std::max(f1, f2);
  }
  res.beta_exceeded_third_both = res.branch[0].beta_peak > 1.0 / 3.0 &&
                                 res.branch[1].beta_peak > 1.0 / 3.0;
  return res;
}

}  // namespace

PartitionSimResult run_partition_sim(const PartitionSimConfig& cfg) {
  validate(cfg);
  const auto n_byz = byzantine_count(cfg);
  const auto n_honest = cfg.n_validators - n_byz;
  const auto n_h1 = static_cast<std::uint32_t>(
      std::llround(cfg.p0 * static_cast<double>(n_honest)));
  std::vector<std::uint8_t> branch_of_honest(n_honest, 1);
  for (std::uint32_t i = 0; i < n_h1; ++i) branch_of_honest[i] = 0;
  return run_partition_core(cfg, n_byz, branch_of_honest);
}

PartitionTrialsResult run_partition_trials(const PartitionTrialsConfig& cfg) {
  validate(cfg.base);
  if (cfg.trials == 0) {
    throw std::invalid_argument("run_partition_trials: no trials");
  }
  const auto n_byz = byzantine_count(cfg.base);
  const auto n_honest = cfg.base.n_validators - n_byz;

  // Block-scheduled fan-out straight into the result's preallocated
  // slabs: only the scalars the trials aggregate survive a trial,
  // never the full per-branch trajectories.  Trial i always draws
  // from the (seed, i) stream and writes at its own index, so the
  // result is bit-identical for every (block, threads) combination.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  PartitionTrialsResult res;
  res.trials = cfg.trials;
  res.conflict_epochs.assign(cfg.trials, -1);
  res.beta_peaks.assign(cfg.trials, 0.0);
  std::vector<std::uint8_t> exceeded_both(cfg.trials, 0);
  pool.run_blocks(
      cfg.trials, runner::resolve_block(cfg.block),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint8_t> branch_of_honest(n_honest);
        for (std::size_t trial = begin; trial < end; ++trial) {
          Rng rng = seeder.stream(trial);
          for (std::uint32_t i = 0; i < n_honest; ++i) {
            branch_of_honest[i] = rng.bernoulli(cfg.base.p0) ? 0 : 1;
          }
          const auto r = run_partition_core(cfg.base, n_byz, branch_of_honest);
          res.conflict_epochs[trial] = r.conflicting_finalization_epoch;
          res.beta_peaks[trial] =
              std::max(r.branch[0].beta_peak, r.branch[1].beta_peak);
          exceeded_both[trial] = r.beta_exceeded_third_both ? 1 : 0;
        }
      });

  std::size_t conflicting = 0;
  std::size_t exceeded = 0;
  double conflict_epoch_sum = 0.0;
  for (std::size_t trial = 0; trial < cfg.trials; ++trial) {
    if (res.conflict_epochs[trial] >= 0) {
      ++conflicting;
      conflict_epoch_sum += static_cast<double>(res.conflict_epochs[trial]);
    }
    if (exceeded_both[trial] != 0) ++exceeded;
  }
  const double n = static_cast<double>(cfg.trials);
  res.conflicting_fraction = static_cast<double>(conflicting) / n;
  res.beta_exceeded_fraction = static_cast<double>(exceeded) / n;
  res.mean_conflict_epoch =
      conflicting > 0 ? conflict_epoch_sum / static_cast<double>(conflicting)
                      : 0.0;
  return res;
}

}  // namespace leak::sim
