#include "src/sim/bouncing_protocol_sim.hpp"

#include <cmath>
#include <stdexcept>

#include "src/chain/registry.hpp"
#include "src/chain/shuffle.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/support/random.hpp"

namespace leak::sim {

BouncingProtocolResult run_bouncing_protocol(
    const BouncingProtocolConfig& cfg) {
  if (cfg.n_validators == 0 || cfg.beta0 < 0.0 || cfg.beta0 >= 1.0) {
    throw std::invalid_argument("run_bouncing_protocol: bad config");
  }
  const auto n = cfg.n_validators;
  const auto n_byz = static_cast<std::uint32_t>(
      std::llround(cfg.beta0 * static_cast<double>(n)));
  const auto n_honest = n - n_byz;
  const auto is_byz = [&](std::uint32_t i) { return i >= n_honest; };

  Rng rng(cfg.seed);
  BouncingProtocolResult res;

  // One registry view per branch; exact leak arithmetic on both.
  std::array<chain::ValidatorRegistry, 2> registry{
      chain::ValidatorRegistry{n}, chain::ValidatorRegistry{n}};
  std::array<penalties::InactivityTracker, 2> tracker{
      penalties::InactivityTracker{registry[0], cfg.spec},
      penalties::InactivityTracker{registry[1], cfg.spec}};

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    const Epoch epoch{t};

    // --- adversary's proposer lottery (branch A's registry drives the
    // roster; both views agree on who exists pre-ejection) ------------
    const chain::DutyRoster roster(registry[0], epoch, cfg.seed);
    bool byz_proposer_in_window = false;
    for (int s = 0; s < cfg.j; ++s) {
      if (is_byz(roster.proposer(static_cast<std::uint64_t>(s)).value())) {
        byz_proposer_in_window = true;
        break;
      }
    }
    if (!byz_proposer_in_window) {
      res.duration = t - 1;
      res.end = BouncingProtocolResult::End::kLotteryFailed;
      return res;
    }

    // --- the bounce: the adversary justifies one branch per epoch
    // (alternating) and steers a share p0 of the honest validators onto
    // that target branch (Figure 8); each honest validator lands on the
    // target independently with probability p0 --------------------------
    // The adversary observes the network and releases its withheld votes
    // exactly when a share p0 of the honest validators sits on the
    // target branch — the count is steered (Eq 14), the identities
    // re-randomize every epoch (Figure 8's per-validator Markov chain).
    const int byz_branch = (t % 2 == 1) ? 0 : 1;
    std::vector<std::uint32_t> honest_order(n_honest);
    for (std::uint32_t i = 0; i < n_honest; ++i) honest_order[i] = i;
    rng.shuffle(honest_order);
    const auto k = static_cast<std::size_t>(
        std::llround(cfg.p0 * static_cast<double>(n_honest)));
    std::vector<std::uint8_t> on_target(n, 0);
    for (std::size_t i = 0; i < k && i < honest_order.size(); ++i) {
      on_target[honest_order[i]] = 1;
    }

    bool byz_alive = false;
    bool target_justified = false;
    for (int b = 0; b < 2; ++b) {
      auto& reg = registry[static_cast<std::size_t>(b)];
      std::vector<std::uint8_t> active(n, 0);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (is_byz(i)) {
          active[i] = (byz_branch == b);
        } else {
          active[i] = (b == byz_branch) ? on_target[i] : !on_target[i];
        }
      }
      tracker[static_cast<std::size_t>(b)].process_epoch(epoch, Epoch{0},
                                                         active);

      // Justification bookkeeping: with Eq 14 satisfied, the branch the
      // adversary reveals on gathers honest-active + Byzantine stake
      // above 2/3 and is justified.
      Gwei active_side{}, byz_side{}, total{};
      for (std::uint32_t i = 0; i < n; ++i) {
        const ValidatorIndex v{i};
        if (!reg.is_active(v, epoch)) continue;
        const Gwei bal = reg.at(v).balance;
        total += bal;
        if (active[i]) active_side += bal;
        if (is_byz(i)) {
          byz_side += bal;
          byz_alive = byz_alive || bal.value() > 0;
        }
      }
      const bool justified =
          3 * static_cast<__uint128_t>(active_side.value()) >
          2 * static_cast<__uint128_t>(total.value());
      if (byz_branch == b) {
        target_justified = justified;
        if (justified) {
          if (b == 0) {
            ++res.justifications_branch1;
          } else {
            ++res.justifications_branch2;
          }
        }
      } else if (justified) {
        // Condition (a) of Eq 14 violated: the honest side justified by
        // itself, which would end the bounce.
        res.alternation_held = false;
      }

      const double beta =
          total.value() > 0
              ? static_cast<double>(byz_side.value()) /
                    static_cast<double>(total.value())
              : 0.0;
      if (beta > res.beta_peak) res.beta_peak = beta;
      if (beta > 1.0 / 3.0 && res.beta_exceeded_epoch < 0) {
        res.beta_exceeded_epoch = static_cast<std::int64_t>(t);
      }
    }

    if (!byz_alive) {
      res.duration = t;
      res.end = BouncingProtocolResult::End::kByzantineEjected;
      return res;
    }
    if (!target_justified) {
      res.duration = t;
      res.end = BouncingProtocolResult::End::kJustificationFailed;
      return res;
    }
    res.duration = t;
  }
  res.end = BouncingProtocolResult::End::kHorizon;
  return res;
}

BouncingProtocolAggregate run_bouncing_protocol_ensemble(
    BouncingProtocolConfig cfg, std::size_t runs) {
  if (runs == 0) {
    throw std::invalid_argument("ensemble: runs must be > 0");
  }
  BouncingProtocolAggregate agg;
  double total_duration = 0.0;
  std::size_t exceeded = 0, lottery = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    cfg.seed = cfg.seed * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto res = run_bouncing_protocol(cfg);
    total_duration += static_cast<double>(res.duration);
    exceeded += res.beta_exceeded_epoch >= 0 ? 1 : 0;
    lottery +=
        res.end == BouncingProtocolResult::End::kLotteryFailed ? 1 : 0;
  }
  agg.mean_duration = total_duration / static_cast<double>(runs);
  agg.prob_beta_exceeded =
      static_cast<double>(exceeded) / static_cast<double>(runs);
  agg.prob_ended_by_lottery =
      static_cast<double>(lottery) / static_cast<double>(runs);
  return agg;
}

}  // namespace leak::sim
