// Protocol-view simulation of the probabilistic bouncing attack
// (Section 5.3), at epoch granularity but with the protocol's actual
// moving parts in the loop:
//
//  * two branches whose epoch-boundary checkpoints alternate
//    justification: each epoch the adversary withholds its checkpoint
//    votes and releases them only if one of its validators is among the
//    proposers of the first j slots (drawn from the swap-or-not duty
//    roster over the *live* registry, so the lottery is stake-aware and
//    feels ejections);
//  * honest validators bounce: each epoch every honest validator
//    follows the fork-choice rule toward the branch that was justified
//    last, landing on branch A with probability p0 (the adversary
//    engineers the split per Eq 14);
//  * both branch views run the real inactivity-leak engine
//    (leak_penalties) over integer-Gwei registries, so scores, Eq 2
//    penalties and ejections are exact;
//  * the attack ends when the proposer lottery fails, when the
//    adversary is ejected, or at the horizon.
//
// Outputs per run: duration, whether/when the Byzantine proportion
// exceeded 1/3 on either branch view, and justification alternation
// checks.  This bridges the gap between the closed-form Eq 24 analysis
// and the abstract lifetime model in bouncing/attack_sim.
#pragma once

#include <cstdint>
#include <vector>

#include "src/penalties/spec_config.hpp"

namespace leak::sim {

struct BouncingProtocolConfig {
  std::uint32_t n_validators = 300;
  double beta0 = 0.33;
  /// Honest share the adversary steers onto the branch it justifies
  /// each epoch; must satisfy Eq 14:
  /// (2-3b0)/(3(1-b0)) < p0 < 2/(3(1-b0)).
  double p0 = 0.52;
  int j = 8;  ///< usable proposer slots per epoch
  std::size_t max_epochs = 4000;
  std::uint64_t seed = 17;
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
};

struct BouncingProtocolResult {
  /// Epochs the attack survived.
  std::uint64_t duration = 0;
  /// Why it stopped.
  enum class End : std::uint8_t {
    kLotteryFailed,        ///< no Byzantine proposer in the j-slot window
    kJustificationFailed,  ///< released votes no longer reach 2/3
    kByzantineEjected,     ///< adversary stake drained to ejection
    kHorizon,
  } end = End::kHorizon;
  /// First epoch beta > 1/3 on some branch view while the attack ran
  /// (-1 when never).
  std::int64_t beta_exceeded_epoch = -1;
  /// Peak Byzantine proportion over both branch views.
  double beta_peak = 0.0;
  /// Justifications seen per branch (they must alternate: the attack
  /// justifies exactly one branch per epoch).
  std::uint64_t justifications_branch1 = 0;
  std::uint64_t justifications_branch2 = 0;
  /// Checks that every attack epoch justified exactly one branch.
  bool alternation_held = true;
};

/// One run (deterministic for a seed).
BouncingProtocolResult run_bouncing_protocol(
    const BouncingProtocolConfig& cfg);

/// Aggregate over `runs` seeds: empirical continuation statistics.
struct BouncingProtocolAggregate {
  double mean_duration = 0.0;
  double prob_beta_exceeded = 0.0;
  double prob_ended_by_lottery = 0.0;
};

BouncingProtocolAggregate run_bouncing_protocol_ensemble(
    BouncingProtocolConfig cfg, std::size_t runs);

}  // namespace leak::sim
