// Epoch-granular agent simulation of the partition scenarios of
// Section 5 (5.1, 5.2.1, 5.2.2, 5.2.3), generalized to k >= 2 branches
// with a pairwise heal schedule (staggered GSTs).
//
// Branches grow independently during the partition; each branch has
// its own registry view (stakes, scores, ejections are branch-relative —
// Section 4.1: "if there are multiple branches, a validator's inactivity
// score depends on the selected branch").  Honest validators are active
// on exactly one branch; Byzantine validators behave per the configured
// strategy.  With a heal schedule, branch b merges into the canonical
// branch 0 at epoch heal_epoch + (b-1) * heal_stagger; its honest
// validators then attest on branch 0, their scores drain, and — once
// finalization resumes — the simulator tracks the post-leak recovery
// tail (the Figure 3 "penalties take some time to return to zero"
// effect) that analytic::recovery models in closed form.  The simulator
// uses the exact protocol arithmetic of leak_penalties (integer Gwei,
// floored scores), so it cross-validates the continuous closed forms of
// leak_analytic.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::sim {

/// Byzantine strategy during the partition.
enum class Strategy : std::uint8_t {
  kNone,                ///< Section 5.1: all honest
  kSlashable,           ///< Section 5.2.1: active on both branches
  kSemiActiveFinalize,  ///< Section 5.2.2: alternate; finalize ASAP
  kSemiActiveOverthrow, ///< Section 5.2.3: alternate; never finalize
};

/// Explicit partition window for one non-canonical branch (compiled
/// from a faults::FaultSchedule by faults::compile_partition).  Branch
/// b (1 <= b < branches) splits off the canonical branch at the start
/// of `open_epoch` -- forking branch 0's registry state at that
/// moment -- and merges back at the start of `heal_epoch` (0 = stays
/// partitioned for the whole horizon).  Until its branch opens, the
/// branch's honest class attests on branch 0.
struct BranchWindow {
  std::size_t open_epoch = 1;
  std::size_t heal_epoch = 0;
};

/// Scheduled validator outage: the first round(cohort * n_honest)
/// honest validators go inactive on every branch during epochs
/// [from_epoch, from_epoch + span_epochs).
struct OutageWindow {
  std::size_t from_epoch = 0;
  std::size_t span_epochs = 0;
  double cohort = 0.0;
};

struct PartitionSimConfig {
  std::uint32_t n_validators = 1000;
  double beta0 = 0.0;  ///< Byzantine stake proportion
  /// Honest proportion on branch 1 (two-branch case).  Only meaningful
  /// with branches == 2; combining a non-default p0 with branches > 2
  /// is rejected (the k-branch split is uniform).
  double p0 = 0.5;
  Strategy strategy = Strategy::kNone;
  std::size_t max_epochs = 6000;
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
  /// Record the active-stake ratio every `trajectory_stride` epochs.
  std::size_t trajectory_stride = 8;
  /// Number of partition branches k >= 2.  The paper's Section 5
  /// scenarios are branches = 2 (the default); every two-branch result
  /// is bit-identical to the pre-generalization simulator.
  std::uint32_t branches = 2;
  /// First pairwise heal epoch (the GST of branch 1 merging into
  /// branch 0); 0 disables healing and the branches stay partitioned
  /// for the whole horizon, exactly the legacy behaviour.
  std::size_t heal_epoch = 0;
  /// Gap between successive pairwise heals: branch b (b >= 1) merges
  /// into branch 0 at heal_epoch + (b - 1) * heal_stagger.  With
  /// stagger 0 every branch heals at heal_epoch simultaneously.
  std::size_t heal_stagger = 0;
  /// Explicit per-branch open/heal schedule (entry b-1 describes
  /// branch b).  Empty = the legacy schedule: every branch opens at
  /// epoch 1 and heals per heal_epoch/heal_stagger (bit-identical).
  /// When non-empty it must have exactly branches-1 entries and the
  /// legacy heal knobs must stay 0 -- the schedule is the single
  /// source of truth.  Note: a late open forks the canonical registry
  /// contents only; with use_churn_limit the canonical exit queue is
  /// not forked, so cascading opens pair with the paper's
  /// instantaneous-ejection spec.
  std::vector<BranchWindow> windows;
  /// Scheduled honest-cohort outages, applied on every branch.
  std::vector<OutageWindow> outages;
};

/// Per-branch outcome.
struct BranchOutcome {
  /// First epoch with > 2/3 active stake; -1 when never within horizon.
  std::int64_t supermajority_epoch = -1;
  /// Epoch of finalization on the branch (supermajority + 1); -1 never.
  std::int64_t finalization_epoch = -1;
  /// Maximum Byzantine stake proportion observed on the branch.
  double beta_peak = 0.0;
  /// Epoch of the Byzantine peak.
  std::int64_t beta_peak_epoch = 0;
  /// Epoch the honest-inactive class got ejected; -1 when not reached.
  std::int64_t honest_ejection_epoch = -1;
  /// Sampled active-stake ratio trajectory.
  std::vector<double> ratio_trajectory;
  /// Sampled Byzantine-proportion trajectory.
  std::vector<double> beta_trajectory;
  /// Epoch the branch merged into branch 0; -1 when it never healed.
  std::int64_t healed_epoch = -1;
};

/// Post-leak recovery of one healed honest class (the validators that
/// sat out branch 0 until their branch merged), per-validator: every
/// member of a class shares the same activity history, so one
/// representative describes the whole class.
struct RecoveryOutcome {
  std::uint32_t from_branch = 0;   ///< branch the class came from
  std::uint32_t class_size = 0;    ///< honest validators in the class
  std::int64_t healed_epoch = -1;  ///< when the class merged
  /// First epoch of the post-leak recovery (both healed and the leak
  /// over); -1 when the leak never ended within the horizon.
  std::int64_t return_epoch = -1;
  /// True when the class was ejected on branch 0 before it could heal.
  bool ejected_before_return = false;
  /// Protocol inactivity score at the start of the recovery.
  double score_at_return = 0.0;
  /// Balance at the start of the recovery, ETH.
  double stake_at_return_eth = 0.0;
  /// Balance lost after the leak ended (score > 0 keeps inflicting
  /// Eq 2 penalties while draining at decrement + recovery rate), ETH
  /// per validator.  analytic::residual_loss is the closed form.
  double residual_loss_eth = 0.0;
  /// Epochs from return until the class score reached zero; -1 when
  /// the horizon cut the recovery short.
  std::int64_t recovery_epochs = -1;
};

struct PartitionSimResult {
  /// One outcome per branch (size = config.branches).
  std::vector<BranchOutcome> branch;
  /// Epoch at which two branches had finalized conflicting checkpoints;
  /// -1 when not reached within the horizon.
  std::int64_t conflicting_finalization_epoch = -1;
  /// Whether Byzantine proportion exceeded 1/3 on every branch.
  bool beta_exceeded_third_both = false;
  /// Number of validators of each class (derived from config).
  std::uint32_t n_byzantine = 0;
  std::uint32_t n_honest_branch1 = 0;  ///< honest on branch 0 (legacy name)
  std::uint32_t n_honest_branch2 = 0;  ///< honest on branch 1 (legacy name)
  std::vector<std::uint32_t> n_honest_per_branch;
  /// Epoch the last branch merged into branch 0; -1 when healing is
  /// disabled or the schedule ran past the horizon.
  std::int64_t heal_complete_epoch = -1;
  /// Epoch every alive validator's score returned to zero after the
  /// leak ended; -1 when not reached (or healing disabled).
  std::int64_t recovery_complete_epoch = -1;
  /// Total balance lost across all validators after the leak ended
  /// (the recovery tail), ETH.
  double residual_loss_total_eth = 0.0;
  /// Per healed honest class recovery summaries (branches 1..k-1).
  std::vector<RecoveryOutcome> recovery;
};

/// Run the scenario.  Deterministic (no randomness needed: classes are
/// homogeneous, so counts are rounded from the proportions).
PartitionSimResult run_partition_sim(const PartitionSimConfig& cfg);

/// Monte Carlo over the partition scenario: each trial redraws the
/// honest branch assignment iid (with branches = 2 each honest
/// validator lands on branch 1 with probability p0, exactly the legacy
/// draw; with branches > 2 the assignment is uniform over the k
/// branches) instead of using the rounded deterministic split,
/// measuring how sensitive the Section 5 outcomes are to the realised
/// split.  Trial i always draws from the (seed, i) stream and trials
/// merge in index order, so the result is bit-identical for any thread
/// count.
struct PartitionTrialsConfig {
  PartitionSimConfig base;
  std::size_t trials = 64;
  std::uint64_t seed = 2024;
  unsigned threads = 0;   ///< 0 = LEAK_THREADS / hardware_concurrency
  std::size_t block = 0;  ///< trials per block; 0 = LEAK_BLOCK / default
  /// When false, the per-trial outcome slabs are never materialized:
  /// the four per-trial vectors stay empty and only the aggregate
  /// fractions/means are filled via the runner's ordered reduction
  /// tree.  The aggregates are bit-identical between the two modes.
  bool keep_trials = true;
};

struct PartitionTrialsResult {
  std::size_t trials = 0;
  /// Per trial: epoch of conflicting finalization (-1 when never).
  /// This and the other per-trial vectors are empty when
  /// cfg.keep_trials == false (summary mode).
  std::vector<std::int64_t> conflict_epochs;
  /// Per trial: max Byzantine-proportion peak across the branches.
  std::vector<double> beta_peaks;
  /// Fraction of trials reaching conflicting finalization.
  double conflicting_fraction = 0.0;
  /// Fraction of trials with beta > 1/3 on every branch.
  double beta_exceeded_fraction = 0.0;
  /// Mean conflict epoch over the trials that reached one (0 if none).
  double mean_conflict_epoch = 0.0;
  // Recovery aggregates; all zero / empty when healing is disabled.
  /// Per trial: total post-leak balance lost (ETH).
  std::vector<double> residual_losses_eth;
  /// Per trial: recovery_complete_epoch (-1 when not reached).
  std::vector<std::int64_t> recovery_epochs;
  /// Fraction of trials whose recovery completed within the horizon.
  double recovered_fraction = 0.0;
  /// Mean residual loss across all trials (ETH).
  double mean_residual_loss_eth = 0.0;
  /// Mean recovery-completion epoch over recovered trials (0 if none).
  double mean_recovery_epoch = 0.0;
};

PartitionTrialsResult run_partition_trials(const PartitionTrialsConfig& cfg);

}  // namespace leak::sim
