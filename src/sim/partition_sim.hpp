// Epoch-granular agent simulation of the partition scenarios of
// Section 5 (5.1, 5.2.1, 5.2.2, 5.2.3).
//
// Two branches grow independently during the partition; each branch has
// its own registry view (stakes, scores, ejections are branch-relative —
// Section 4.1: "if there are multiple branches, a validator's inactivity
// score depends on the selected branch").  Honest validators are active
// on exactly one branch; Byzantine validators behave per the configured
// strategy.  The simulator uses the exact protocol arithmetic of
// leak_penalties (integer Gwei, floored scores), so it cross-validates
// the continuous closed forms of leak_analytic.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/chain/registry.hpp"
#include "src/penalties/inactivity.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::sim {

/// Byzantine strategy during the partition.
enum class Strategy : std::uint8_t {
  kNone,                ///< Section 5.1: all honest
  kSlashable,           ///< Section 5.2.1: active on both branches
  kSemiActiveFinalize,  ///< Section 5.2.2: alternate; finalize ASAP
  kSemiActiveOverthrow, ///< Section 5.2.3: alternate; never finalize
};

struct PartitionSimConfig {
  std::uint32_t n_validators = 1000;
  double beta0 = 0.0;  ///< Byzantine stake proportion
  double p0 = 0.5;     ///< honest proportion on branch 1
  Strategy strategy = Strategy::kNone;
  std::size_t max_epochs = 6000;
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
  /// Record the active-stake ratio every `trajectory_stride` epochs.
  std::size_t trajectory_stride = 8;
};

/// Per-branch outcome.
struct BranchOutcome {
  /// First epoch with > 2/3 active stake; -1 when never within horizon.
  std::int64_t supermajority_epoch = -1;
  /// Epoch of finalization on the branch (supermajority + 1); -1 never.
  std::int64_t finalization_epoch = -1;
  /// Maximum Byzantine stake proportion observed on the branch.
  double beta_peak = 0.0;
  /// Epoch of the Byzantine peak.
  std::int64_t beta_peak_epoch = 0;
  /// Epoch the honest-inactive class got ejected; -1 when not reached.
  std::int64_t honest_ejection_epoch = -1;
  /// Sampled active-stake ratio trajectory.
  std::vector<double> ratio_trajectory;
  /// Sampled Byzantine-proportion trajectory.
  std::vector<double> beta_trajectory;
};

struct PartitionSimResult {
  std::array<BranchOutcome, 2> branch;
  /// Epoch at which both branches had finalized conflicting checkpoints;
  /// -1 when not reached within the horizon.
  std::int64_t conflicting_finalization_epoch = -1;
  /// Whether Byzantine proportion exceeded 1/3 on both branches.
  bool beta_exceeded_third_both = false;
  /// Number of validators of each class (derived from config).
  std::uint32_t n_byzantine = 0;
  std::uint32_t n_honest_branch1 = 0;
  std::uint32_t n_honest_branch2 = 0;
};

/// Run the scenario.  Deterministic (no randomness needed: classes are
/// homogeneous, so counts are rounded from the proportions).
PartitionSimResult run_partition_sim(const PartitionSimConfig& cfg);

/// Monte Carlo over the partition scenario: each trial redraws the
/// honest branch assignment iid (each honest validator lands on
/// branch 1 with probability p0) instead of using the rounded
/// deterministic split, measuring how sensitive the Section 5
/// outcomes are to the realised split.  Trial i always draws from the
/// (seed, i) stream and trials merge in index order, so the result is
/// bit-identical for any thread count.
struct PartitionTrialsConfig {
  PartitionSimConfig base;
  std::size_t trials = 64;
  std::uint64_t seed = 2024;
  unsigned threads = 0;   ///< 0 = LEAK_THREADS / hardware_concurrency
  std::size_t block = 0;  ///< trials per block; 0 = LEAK_BLOCK / default
};

struct PartitionTrialsResult {
  std::size_t trials = 0;
  /// Per trial: epoch of conflicting finalization (-1 when never).
  std::vector<std::int64_t> conflict_epochs;
  /// Per trial: max Byzantine-proportion peak across the two branches.
  std::vector<double> beta_peaks;
  /// Fraction of trials reaching conflicting finalization.
  double conflicting_fraction = 0.0;
  /// Fraction of trials with beta > 1/3 on both branches.
  double beta_exceeded_fraction = 0.0;
  /// Mean conflict epoch over the trials that reached one (0 if none).
  double mean_conflict_epoch = 0.0;
};

PartitionTrialsResult run_partition_trials(const PartitionTrialsConfig& cfg);

}  // namespace leak::sim
