// Full slot-level protocol simulation: proposers, attesters, gossip over
// the partial-synchrony network, per-validator views, LMD-GHOST fork
// choice, FFG justification/finalization, slashing detection and the
// leak trigger.  Used for protocol-level integration tests and the
// short-horizon examples; the multi-thousand-epoch leak dynamics run on
// the epoch-granular partition simulator instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "src/chain/blocktree.hpp"
#include "src/chain/forkchoice.hpp"
#include "src/chain/registry.hpp"
#include "src/crypto/keys.hpp"
#include "src/finality/ffg.hpp"
#include "src/finality/safety.hpp"
#include "src/net/event_queue.hpp"
#include "src/net/network.hpp"
#include "src/penalties/slashing.hpp"
#include "src/penalties/spec_config.hpp"

namespace leak::sim {

/// Byzantine proposer behaviour.
enum class ProposerStrategy : std::uint8_t {
  /// Byzantine proposers follow the protocol (a single block per slot).
  kHonest,
  /// The balancing attack (Neu/Tas/Tse): a Byzantine proposer
  /// equivocates — one block per fork side, each released only to its
  /// half of the honest validators (split by validator-index parity)
  /// and withheld from the other half until the epoch boundary.
  /// Byzantine attesters vote for their assigned side, keeping the
  /// LMD-GHOST weights of the two siblings balanced, so honest
  /// checkpoint votes split across two targets and justification
  /// starves without any validator equivocating its attestations.
  kBalancing,
};

struct SlotSimConfig {
  std::uint32_t n_honest = 32;
  std::uint32_t n_byzantine = 0;
  std::size_t epochs = 8;
  /// Honest fraction assigned to region one.
  double p0 = 1.0;
  /// Epoch at which the partition heals (GST); 0 disables the partition.
  double gst_epoch = 0.0;
  /// Network delay bound within a region / after GST, seconds.
  double delta = 1.0;
  /// What Byzantine proposers do with their slots.
  ProposerStrategy proposer_strategy = ProposerStrategy::kHonest;
  /// Fork-choice proposer boost: percent of the total active balance
  /// credited to the current slot's timely proposal until the slot
  /// ends (mainnet uses 40).  0 disables the boost entirely and is
  /// bit-exact with the pre-boost simulator.
  unsigned proposer_boost = 0;
  /// Balancing attack: seconds between a Byzantine proposer's slot
  /// start and the release of each equivocation sibling to its own
  /// audience half (the adversary's release timing knob).
  double release_delay = 0.1;
  /// Balancing attack: seconds past the epoch boundary at which the
  /// withheld cross-side copies are released to the opposite half.
  double cross_delay = 0.1;
  std::uint64_t seed = 1;
  penalties::SpecConfig spec = penalties::SpecConfig::paper();
  /// Scripted network weather (latency/loss episodes in simulated
  /// seconds), compiled from a faults::FaultSchedule by
  /// faults::apply_network.  Empty = the legacy network, bit-identical.
  std::vector<net::LatencyEpisode> latency_episodes;
  std::vector<net::LossEpisode> loss_episodes;
};

/// Everything a test wants to inspect after a run.
struct SlotSimResult {
  /// Finalized checkpoint epoch per validator at the end of the run.
  std::vector<std::uint64_t> finalized_epoch;
  /// Justified checkpoint epoch per validator.
  std::vector<std::uint64_t> justified_epoch;
  /// Safety violations detected across views (conflicting finalization).
  std::size_t safety_violations = 0;
  /// Slashing proofs honest validators produced (offender indices).
  std::vector<ValidatorIndex> slashed;
  /// Was the leak trigger observed by validator 0 at any epoch?
  bool leak_observed = false;
  /// Blocks in validator 0's tree at the end.
  std::size_t blocks_seen = 0;
  /// Total network messages delivered.
  std::uint64_t messages_delivered = 0;
  /// Per-recipient copies dropped by scripted loss episodes.
  std::uint64_t messages_dropped = 0;
  /// Per-epoch: did validator 0's finalized checkpoint advance?
  /// (bytes, not vector<bool> -- leaklint D3)
  std::vector<std::uint8_t> finality_advanced;
  /// Equivocating proposals the adversary produced (balancing mode).
  std::size_t equivocating_proposals = 0;
  /// Validator 0's finalized-checkpoint epoch observed at each epoch
  /// boundary (one entry per simulated epoch).
  std::vector<std::uint64_t> finalized_epoch_trajectory;
  /// Longest run of consecutive epoch boundaries without finality
  /// progress for validator 0 — the balanced fork's finality stall
  /// (includes the protocol's ~2-epoch warmup).
  std::size_t finality_stall_epochs = 0;
};

/// The simulator.  Construct, then call run().
class SlotSim {
 public:
  explicit SlotSim(SlotSimConfig cfg);
  ~SlotSim();

  SlotSim(const SlotSim&) = delete;
  SlotSim& operator=(const SlotSim&) = delete;

  SlotSimResult run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace leak::sim
