#include "src/sim/slot_sim.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <set>
#include <tuple>

#include "src/chain/shuffle.hpp"
#include "src/crypto/sha256.hpp"

namespace leak::sim {

namespace {

using chain::Attestation;
using chain::Block;
using chain::Checkpoint;
using chain::Digest;

/// Attestation broadcast offset within a slot (like mainnet's 4 s mark).
constexpr double kAttestationOffset = 4.0;

/// Sentinel for "no slot currently boosted" in a view.
constexpr std::uint64_t kNoBoostSlot = std::numeric_limits<std::uint64_t>::max();

}  // namespace

struct SlotSim::Impl {
  explicit Impl(SlotSimConfig config)
      : cfg(config),
        n(config.n_honest + config.n_byzantine),
        network(queue,
                net::NetworkConfig{
                    .num_nodes = config.n_honest + config.n_byzantine,
                    .delta = config.delta,
                    .min_delay = 0.05,
                    .gst = config.gst_epoch * 32.0 * kSecondsPerSlot,
                    .seed = config.seed,
                    .latency_episodes = config.latency_episodes,
                    .loss_episodes = config.loss_episodes}),
        registry(config.n_honest + config.n_byzantine),
        monitor(global_tree) {
    keys = keyreg.generate(n, cfg.seed);
    setup_regions();
    setup_views();
  }

  /// One validator's local view of the chain.
  struct View {
    chain::BlockTree tree;
    std::unique_ptr<chain::ForkChoice> fc;
    std::unique_ptr<finality::FfgTracker> ffg;
    /// Blocks whose parent has not arrived yet: parent -> children.
    /// Ordered maps throughout this TU (leaklint D4): src/sim is a
    /// kernel/reduction layer, and ordered containers make even an
    /// accidental future iteration deterministic.
    std::map<Digest, std::vector<Block>> orphans;
    /// Slot whose proposal currently carries the fork-choice boost in
    /// this view (kNoBoostSlot when none; unused when the boost is off).
    std::uint64_t boost_slot = kNoBoostSlot;
  };

  SlotSimConfig cfg;
  std::uint32_t n;
  net::EventQueue queue;
  net::Network network;
  chain::ValidatorRegistry registry;
  crypto::KeyRegistry keyreg;
  std::vector<crypto::KeyPair> keys;

  std::vector<std::variant<Block, Attestation>> payloads;
  std::vector<std::unique_ptr<View>> views;          // [0, n)
  std::vector<std::unique_ptr<View>> byz_alt_views;  // second view per byz
  std::vector<penalties::SlashingDetector> detectors;  // honest watchers
  /// (sender, payload id) of equivocations hidden during the partition;
  /// gossip re-propagates them once the partition heals.
  std::vector<std::pair<ValidatorIndex, std::uint64_t>> byz_withheld;

  // ---- balancing attack state ---------------------------------------
  /// Fork side of each equivocation sibling (0 / 1), plus memoized
  /// sides of their descendants; -1 marks pre-fork (neutral) blocks.
  std::map<Digest, int> side_of;
  /// (sender, payload id, side) of the withheld cross-side proposals;
  /// everything is released to the opposite half at the epoch boundary
  /// (the split must be refreshed by a new equivocation each epoch).
  std::vector<std::tuple<ValidatorIndex, std::uint64_t, int>> split_withheld;
  /// Honest validators with index parity `side`, plus every Byzantine.
  std::array<std::vector<ValidatorIndex>, 2> side_audiences;

  [[nodiscard]] bool balancing() const {
    return cfg.proposer_strategy == ProposerStrategy::kBalancing &&
           cfg.n_byzantine > 0;
  }

  chain::BlockTree global_tree;
  finality::SafetyMonitor monitor;
  std::set<std::uint32_t> slashed_set;
  SlotSimResult result;
  std::vector<std::uint64_t> last_reported_finalized;

  [[nodiscard]] bool is_byz(std::uint32_t i) const { return i >= cfg.n_honest; }

  void setup_regions() {
    const auto n_region1 = static_cast<std::uint32_t>(
        std::llround(cfg.p0 * static_cast<double>(cfg.n_honest)));
    for (std::uint32_t i = 0; i < n; ++i) {
      net::Region r = net::Region::kOne;
      if (is_byz(i)) {
        r = net::Region::kBoth;
      } else if (i >= n_region1) {
        r = net::Region::kTwo;
      }
      network.set_region(ValidatorIndex{i}, r);
    }
  }

  std::unique_ptr<View> make_view() {
    auto v = std::make_unique<View>();
    v->fc = std::make_unique<chain::ForkChoice>(v->tree, registry);
    v->ffg = std::make_unique<finality::FfgTracker>(
        registry, Checkpoint{v->tree.genesis_id(), Epoch{0}});
    return v;
  }

  void setup_views() {
    views.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) views.push_back(make_view());
    for (std::uint32_t i = 0; i < cfg.n_byzantine; ++i) {
      byz_alt_views.push_back(make_view());
    }
    detectors.resize(n);
    last_reported_finalized.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (is_byz(i)) {
        side_audiences[0].push_back(ValidatorIndex{i});
        side_audiences[1].push_back(ValidatorIndex{i});
      } else {
        side_audiences[i % 2].push_back(ValidatorIndex{i});
      }
    }
    network.set_deliver([this](ValidatorIndex to, const net::Packet& p) {
      on_deliver(to, p);
    });
  }

  /// Fork side of a block: the side of the nearest equivocation-sibling
  /// ancestor, or -1 for pre-fork blocks.  Sides are fixed at creation,
  /// so resolved values memoize safely.
  int block_side(const Digest& id) {
    std::vector<Digest> path;
    Digest cur = id;
    int side = -1;
    while (true) {
      if (const auto it = side_of.find(cur); it != side_of.end()) {
        side = it->second;
        break;
      }
      if (!global_tree.contains(cur)) break;
      path.push_back(cur);
      const Digest parent = global_tree.at(cur).parent;
      if (parent == cur) break;
      cur = parent;
    }
    for (const Digest& d : path) side_of[d] = side;
    return side;
  }

  /// The Byzantine secondary view tracks region two; the primary view of
  /// a Byzantine validator tracks region one.
  View& byz_view_for_region(std::uint32_t byz, net::Region r) {
    return r == net::Region::kTwo
               ? *byz_alt_views[byz - cfg.n_honest]
               : *views[byz];
  }

  // ---- proposer boost ----------------------------------------------

  [[nodiscard]] std::uint64_t current_slot_number() const {
    return static_cast<std::uint64_t>(queue.now() / kSecondsPerSlot);
  }

  /// Drop a boost left over from an earlier slot (the boost only lives
  /// until the slot ends).  No-op when the boost is disabled, keeping
  /// the default configuration bit-exact with the pre-boost simulator.
  void refresh_boost(View& v) {
    if (cfg.proposer_boost == 0) return;
    if (v.boost_slot != kNoBoostSlot &&
        v.boost_slot != current_slot_number()) {
      v.fc->clear_proposer_boost();
      v.boost_slot = kNoBoostSlot;
    }
  }

  /// Credit a timely current-slot proposal with the boost: the block
  /// must belong to the slot in progress and arrive before the
  /// attestation deadline, mirroring the mainnet timeliness condition.
  void maybe_boost(View& v, const Block& b) {
    if (cfg.proposer_boost == 0) return;
    refresh_boost(v);
    const std::uint64_t s = current_slot_number();
    const double offset =
        queue.now() - static_cast<double>(s) * kSecondsPerSlot;
    if (b.slot.value() == s && offset < kAttestationOffset) {
      v.fc->set_proposer_boost(b.id, cfg.proposer_boost);
      v.boost_slot = s;
    }
  }

  // ---- ingestion ----------------------------------------------------

  void ingest_block(View& v, const Block& b) {
    if (v.tree.contains(b.id)) return;
    if (!v.tree.contains(b.parent)) {
      v.orphans[b.parent].push_back(b);
      return;
    }
    v.tree.insert(b);
    maybe_boost(v, b);
    // Adopt any orphans waiting for this block, recursively.
    auto it = v.orphans.find(b.id);
    if (it != v.orphans.end()) {
      const std::vector<Block> kids = std::move(it->second);
      v.orphans.erase(it);
      for (const Block& k : kids) ingest_block(v, k);
    }
  }

  void ingest_attestation(View& v, const Attestation& a) {
    v.fc->on_attestation(a.attester, a.head, a.slot);
    v.ffg->on_checkpoint_vote(a);
  }

  void on_deliver(ValidatorIndex to, const net::Packet& p) {
    const auto& payload = payloads.at(p.payload_id);
    const std::uint32_t who = to.value();
    auto feed = [&](View& v) {
      if (std::holds_alternative<Block>(payload)) {
        ingest_block(v, std::get<Block>(payload));
      } else {
        ingest_attestation(v, std::get<Attestation>(payload));
      }
    };
    if (is_byz(who)) {
      if (balancing()) {
        // Route by fork side so each Byzantine view genuinely follows
        // one sibling's branch; pre-fork traffic feeds both.
        const int side = std::holds_alternative<Block>(payload)
                             ? block_side(std::get<Block>(payload).id)
                             : block_side(std::get<Attestation>(payload).head);
        if (side != 1) feed(*views[who]);
        if (side != 0) feed(*byz_alt_views[who - cfg.n_honest]);
        return;
      }
      // A Byzantine validator straddles the partition and receives both
      // regions' traffic; it keeps one view per region so its two
      // attestations genuinely follow the two branches.
      const net::Region sender_region = network.region(p.from);
      if (sender_region != net::Region::kTwo) feed(*views[who]);
      if (sender_region != net::Region::kOne) {
        feed(*byz_alt_views[who - cfg.n_honest]);
      }
      return;
    }
    feed(*views[who]);
    if (std::holds_alternative<Attestation>(payload)) {
      // Honest validators watch for equivocations.
      const auto& att = std::get<Attestation>(payload);
      if (!keyreg.verify(att.signing_root(), att.signature)) return;
      if (auto proof = detectors[who].observe(att)) {
        const std::uint32_t offender = proof->offender().value();
        if (!slashed_set.contains(offender)) {
          slashed_set.insert(offender);
          penalties::apply_slashing(registry, proof->offender(),
                                    current_epoch(), cfg.spec);
          result.slashed.push_back(proof->offender());
        }
      }
    }
  }

  // ---- production ---------------------------------------------------

  [[nodiscard]] Epoch current_epoch() const {
    const auto slot = static_cast<std::uint64_t>(queue.now() /
                                                 kSecondsPerSlot);
    return Epoch{slot / kSlotsPerEpoch};
  }

  /// Duty roster per epoch (swap-or-not committees, balance-weighted
  /// proposers), built lazily against the live registry.
  std::map<std::uint64_t, chain::DutyRoster> rosters;

  const chain::DutyRoster& roster_for(Epoch e) {
    auto it = rosters.find(e.value());
    if (it == rosters.end()) {
      it = rosters.emplace(e.value(),
                           chain::DutyRoster(registry, e, cfg.seed)).first;
    }
    return it->second;
  }

  [[nodiscard]] std::uint32_t proposer_for(Slot s) {
    return roster_for(epoch_of(s))
        .proposer(s.value() % kSlotsPerEpoch)
        .value();
  }

  [[nodiscard]] Digest head_of(View& v, Epoch e) {
    refresh_boost(v);
    Digest root = v.ffg->justified().block;
    if (!v.tree.contains(root)) root = v.tree.genesis_id();
    return v.fc->head(root, e);
  }

  std::uint64_t store_payload(std::variant<Block, Attestation> p) {
    payloads.push_back(std::move(p));
    return payloads.size() - 1;
  }

  void propose(std::uint32_t who, Slot slot) {
    if (slashed_set.contains(who)) return;
    if (is_byz(who) && balancing()) {
      propose_balancing(who, slot);
      return;
    }
    View& v = *views[who];
    const Epoch e = epoch_of(slot);
    const Digest head = head_of(v, e);
    const Block b = Block::make(head, slot, ValidatorIndex{who});
    global_tree.insert(b);
    ingest_block(v, b);
    const auto id = store_payload(b);
    network.broadcast(ValidatorIndex{who}, id);
  }

  /// Balancing proposer equivocation: one block per fork side, built on
  /// that side's head (on a fresh fork both sides share the parent, so
  /// the pair are true siblings), each released immediately to its half
  /// of the honest validators only.  The cross-side copies are withheld
  /// until the epoch boundary, so within the epoch each half extends
  /// and attests its own sibling and the checkpoint votes split.
  void propose_balancing(std::uint32_t who, Slot slot) {
    const Epoch e = epoch_of(slot);
    ++result.equivocating_proposals;
    for (const int side : {0, 1}) {
      View& v = side == 0 ? *views[who] : *byz_alt_views[who - cfg.n_honest];
      const Digest head = head_of(v, e);
      Digest body{};
      body[0] = static_cast<std::uint8_t>(side + 1);
      const Block b = Block::make(head, slot, ValidatorIndex{who}, body);
      global_tree.insert(b);
      side_of[b.id] = side;  // pins the side even on a fresh fork
      ingest_block(v, b);
      const auto id = store_payload(b);
      network.release_at(queue.now() + cfg.release_delay, ValidatorIndex{who},
                         side_audiences[static_cast<std::size_t>(side)], id);
      split_withheld.emplace_back(ValidatorIndex{who}, id, side);
    }
  }

  /// Balancing attester: vote once, from the assigned side's view (no
  /// attestation equivocation — the balancing adversary stays
  /// unslashable), broadcast to everyone.
  void attest_balancing(std::uint32_t who, Slot slot) {
    if (slashed_set.contains(who)) return;
    const int side = static_cast<int>((who - cfg.n_honest) % 2);
    View& v = side == 0 ? *views[who] : *byz_alt_views[who - cfg.n_honest];
    Attestation a = make_attestation(v, who, slot);
    ingest_attestation(v, a);
    const auto id = store_payload(a);
    network.broadcast(ValidatorIndex{who}, id);
  }

  Attestation make_attestation(View& v, std::uint32_t who, Slot slot) {
    const Epoch e = epoch_of(slot);
    Attestation a;
    a.attester = ValidatorIndex{who};
    a.slot = slot;
    a.head = head_of(v, e);
    a.source = v.ffg->justified();
    a.target = v.tree.checkpoint_on_branch(a.head, e);
    a.sign(keys[who]);
    return a;
  }

  void attest_honest(std::uint32_t who, Slot slot) {
    if (slashed_set.contains(who)) return;
    View& v = *views[who];
    Attestation a = make_attestation(v, who, slot);
    ingest_attestation(v, a);
    const auto id = store_payload(a);
    network.broadcast(ValidatorIndex{who}, id);
  }

  /// Byzantine behaviour: before GST, attest once per branch view and
  /// deliver each attestation only to that branch's region (the paper's
  /// Section 5.2.1 equivocation, hidden by message-delay control); the
  /// withheld equivocations are re-gossiped to everyone at GST.
  void attest_byzantine(std::uint32_t who, Slot slot) {
    if (slashed_set.contains(who)) return;
    if (balancing()) {
      attest_balancing(who, slot);
      return;
    }
    const bool partitioned = queue.now() < network.config().gst;
    if (!partitioned) {
      attest_honest(who, slot);
      return;
    }
    for (const net::Region r : {net::Region::kOne, net::Region::kTwo}) {
      View& v = byz_view_for_region(who, r);
      Attestation a = make_attestation(v, who, slot);
      ingest_attestation(v, a);
      const auto id = store_payload(a);
      byz_withheld.emplace_back(ValidatorIndex{who}, id);
      std::vector<ValidatorIndex> audience;
      for (std::uint32_t i = 0; i < n; ++i) {
        const net::Region ri = network.region(ValidatorIndex{i});
        if (ri == r || ri == net::Region::kBoth) {
          audience.push_back(ValidatorIndex{i});
        }
      }
      network.release_at(queue.now() + 0.5, ValidatorIndex{who}, audience,
                         id);
    }
  }

  void process_epoch_boundary(Epoch finished) {
    // The balancing split lapses at the boundary: every withheld
    // cross-side proposal is released, views reconcile, and the
    // adversary must re-equivocate next epoch to keep the fork
    // balanced (blocks only — attestations never equivocated, so
    // nothing here is slashable).
    if (balancing() && !split_withheld.empty()) {
      for (const auto& [from, id, side] : split_withheld) {
        network.release_at(queue.now() + cfg.cross_delay, from,
                           side_audiences[static_cast<std::size_t>(1 - side)],
                           id);
      }
      split_withheld.clear();
    }
    for (std::uint32_t i = 0; i < n; ++i) {
      View& v = *views[i];
      // Re-run the last few epochs to absorb stragglers (votes that
      // crossed the boundary or arrived after GST).
      const std::uint64_t lo =
          finished.value() > 2 ? finished.value() - 2 : 1;
      for (std::uint64_t e = lo; e <= finished.value(); ++e) {
        v.ffg->process_epoch(Epoch{e});
      }
      if (is_byz(i)) {
        View& alt = *byz_alt_views[i - cfg.n_honest];
        for (std::uint64_t e = lo; e <= finished.value(); ++e) {
          alt.ffg->process_epoch(Epoch{e});
        }
      }
      // Report newly finalized checkpoints to the safety monitor.
      const auto fin = v.ffg->finalized();
      if (fin.epoch.value() > last_reported_finalized[i]) {
        last_reported_finalized[i] = fin.epoch.value();
        if (monitor.report(fin)) ++result.safety_violations;
      }
    }
    // Validator 0's leak observation and finality progress.
    const auto fin0 = views[0]->ffg->finalized().epoch.value();
    result.finalized_epoch_trajectory.push_back(fin0);
    const bool leaking =
        finished.value() - fin0 > cfg.spec.min_epochs_to_inactivity_penalty;
    result.leak_observed = result.leak_observed || leaking;
    static_cast<void>(fin0);
  }

  SlotSimResult run() {
    const std::size_t total_slots = cfg.epochs * kSlotsPerEpoch;
    std::uint64_t prev_finalized0 = 0;
    // Once the partition heals, gossip re-propagates everything — in
    // particular the equivocating attestations the adversary audience-
    // scoped before GST, which is how slashing evidence finally reaches
    // honest validators.
    const SimTime gst = network.config().gst;
    if (gst > 0.0 &&
        gst <= static_cast<double>(total_slots + 1) * kSecondsPerSlot) {
      queue.schedule_at(gst + 0.1, [this] {
        std::vector<ValidatorIndex> everyone;
        for (std::uint32_t i = 0; i < n; ++i) {
          everyone.push_back(ValidatorIndex{i});
        }
        for (const auto& [from, id] : byz_withheld) {
          network.release_at(queue.now() + 0.2, from, everyone, id);
        }
      });
    }
    for (std::size_t s = 1; s <= total_slots; ++s) {
      const Slot slot{s};
      const SimTime t0 = slot_start_time(slot);
      queue.schedule_at(t0, [this, slot] {
        propose(proposer_for(slot), slot);
      });
      queue.schedule_at(t0 + kAttestationOffset, [this, slot] {
        // Committee assignment from the epoch's duty roster.
        const std::uint64_t pos = slot.value() % kSlotsPerEpoch;
        for (const ValidatorIndex v :
             roster_for(epoch_of(slot)).committee(pos)) {
          const std::uint32_t i = v.value();
          if (is_byz(i)) {
            attest_byzantine(i, slot);
          } else {
            attest_honest(i, slot);
          }
        }
      });
      if (slot.next().is_epoch_boundary()) {
        const Epoch finished = epoch_of(slot);
        queue.schedule_at(t0 + kSecondsPerSlot - 0.25,
                          [this, finished] { process_epoch_boundary(finished); });
      }
    }
    queue.run_until(static_cast<double>(total_slots + 2) * kSecondsPerSlot);

    // Per-epoch finality progress for validator 0 is recomputed from the
    // finalized chain (coarse but sufficient for the tests).
    result.finality_advanced.clear();
    for (std::size_t e = 1; e <= cfg.epochs; ++e) {
      // advanced if some checkpoint with epoch >= e-1 finalized
      const auto& chain0 = views[0]->ffg->finalized_chain();
      bool advanced = false;
      for (const auto& c : chain0) {
        if (c.epoch.value() + 2 >= e && c.epoch.value() > 0) advanced = true;
      }
      result.finality_advanced.push_back(advanced);
    }
    static_cast<void>(prev_finalized0);

    result.finalized_epoch.clear();
    result.justified_epoch.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      result.finalized_epoch.push_back(views[i]->ffg->finalized().epoch.value());
      result.justified_epoch.push_back(views[i]->ffg->justified().epoch.value());
    }
    // Longest run of epoch boundaries without finality progress.
    std::size_t stall = 0;
    std::size_t current = 0;
    std::uint64_t prev_fin = 0;
    for (const std::uint64_t fin : result.finalized_epoch_trajectory) {
      if (fin > prev_fin) {
        prev_fin = fin;
        current = 0;
      } else {
        ++current;
      }
      stall = std::max(stall, current);
    }
    result.finality_stall_epochs = stall;

    result.blocks_seen = views[0]->tree.size();
    result.messages_delivered = network.messages_delivered();
    result.messages_dropped = network.messages_dropped();
    return result;
  }
};

SlotSim::SlotSim(SlotSimConfig cfg) : impl_(std::make_unique<Impl>(cfg)) {}
SlotSim::~SlotSim() = default;

SlotSimResult SlotSim::run() { return impl_->run(); }

}  // namespace leak::sim
