#include "src/chain/blocktree.hpp"

#include <algorithm>
#include <stdexcept>

namespace leak::chain {

const std::vector<Digest> BlockTree::kNoChildren{};

BlockTree::BlockTree() {
  Block g = Block::make(Digest{}, Slot{0}, ValidatorIndex{0});
  genesis_id_ = g.id;
  blocks_.emplace(g.id, g);
}

bool BlockTree::insert(const Block& b) {
  if (blocks_.contains(b.id)) return false;
  const auto parent_it = blocks_.find(b.parent);
  if (parent_it == blocks_.end()) {
    throw std::invalid_argument("BlockTree::insert: unknown parent");
  }
  if (b.slot <= parent_it->second.slot) {
    throw std::invalid_argument("BlockTree::insert: slot not increasing");
  }
  blocks_.emplace(b.id, b);
  children_[b.parent].push_back(b.id);
  return true;
}

bool BlockTree::contains(const Digest& id) const {
  return blocks_.contains(id);
}

const Block& BlockTree::at(const Digest& id) const {
  const auto it = blocks_.find(id);
  if (it == blocks_.end()) {
    throw std::out_of_range("BlockTree::at: unknown block");
  }
  return it->second;
}

const std::vector<Digest>& BlockTree::children(const Digest& id) const {
  const auto it = children_.find(id);
  return it == children_.end() ? kNoChildren : it->second;
}

bool BlockTree::is_ancestor(const Digest& ancestor,
                            const Digest& descendant) const {
  Digest cur = descendant;
  const Slot target_slot = at(ancestor).slot;
  while (true) {
    if (cur == ancestor) return true;
    const Block& b = at(cur);
    if (b.slot <= target_slot) return false;
    if (cur == genesis_id_) return false;
    cur = b.parent;
  }
}

Digest BlockTree::ancestor_at_slot(const Digest& id, Slot slot) const {
  Digest cur = id;
  while (at(cur).slot > slot) {
    if (cur == genesis_id_) break;
    cur = at(cur).parent;
  }
  return cur;
}

std::vector<Digest> BlockTree::chain_to(const Digest& id) const {
  std::vector<Digest> out;
  Digest cur = id;
  while (true) {
    out.push_back(cur);
    if (cur == genesis_id_) break;
    cur = at(cur).parent;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::vector<Digest> BlockTree::leaves() const {
  std::vector<Digest> out;
  for (const auto& [id, block] : blocks_) {
    const auto it = children_.find(id);
    if (it == children_.end() || it->second.empty()) out.push_back(id);
  }
  return out;
}

Checkpoint BlockTree::checkpoint_on_branch(const Digest& head,
                                           Epoch epoch) const {
  return Checkpoint{ancestor_at_slot(head, epoch.start_slot()), epoch};
}

}  // namespace leak::chain
