#include "src/chain/block.hpp"

namespace leak::chain {

Digest Block::compute_id(const Digest& parent, Slot slot,
                         ValidatorIndex proposer, const Digest& body_root) {
  crypto::Sha256 h;
  h.update("leak/block/v1");
  h.update(std::span<const std::uint8_t>(parent.data(), parent.size()));
  h.update_value(slot.value());
  h.update_value(proposer.value());
  h.update(std::span<const std::uint8_t>(body_root.data(), body_root.size()));
  return h.finalize();
}

Block Block::make(const Digest& parent, Slot slot, ValidatorIndex proposer,
                  const Digest& body_root) {
  Block b;
  b.parent = parent;
  b.slot = slot;
  b.proposer = proposer;
  b.body_root = body_root;
  b.id = compute_id(parent, slot, proposer, body_root);
  return b;
}

Digest Attestation::signing_root() const {
  // Covers the attestation *data* only (slot + votes), like eth2's
  // AttestationData: signatures over identical data aggregate.
  crypto::Sha256 h;
  h.update("leak/attestation/v1");
  h.update_value(slot.value());
  h.update(std::span<const std::uint8_t>(head.data(), head.size()));
  h.update(std::span<const std::uint8_t>(source.block.data(),
                                         source.block.size()));
  h.update_value(source.epoch.value());
  h.update(std::span<const std::uint8_t>(target.block.data(),
                                         target.block.size()));
  h.update_value(target.epoch.value());
  return h.finalize();
}

void Attestation::sign(const crypto::KeyPair& key) {
  signature = key.sign(signing_root());
}

bool is_slashable_pair(const Attestation& a, const Attestation& b) {
  if (a.attester != b.attester) return false;
  const bool same_data =
      a.target == b.target && a.source == b.source && a.head == b.head;
  // Double vote: same target epoch, different data.
  if (a.target.epoch == b.target.epoch && !same_data) return true;
  // Surround vote: a surrounds b or b surrounds a.
  const bool a_surrounds_b =
      a.source.epoch < b.source.epoch && b.target.epoch < a.target.epoch;
  const bool b_surrounds_a =
      b.source.epoch < a.source.epoch && a.target.epoch < b.target.epoch;
  return a_surrounds_b || b_surrounds_a;
}

}  // namespace leak::chain
