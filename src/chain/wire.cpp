#include "src/chain/wire.hpp"

namespace leak::chain {

namespace {

void put_checkpoint(codec::Writer& w, const Checkpoint& c) {
  w.put_array(c.block);
  w.put_u64(c.epoch.value());
}

bool get_checkpoint(codec::Reader& r, Checkpoint& c) {
  std::uint64_t e = 0;
  if (!r.get_array(c.block)) return false;
  if (!r.get_u64(e)) return false;
  c.epoch = Epoch{e};
  return true;
}

}  // namespace

std::vector<std::uint8_t> encode_block(const Block& b) {
  codec::Writer w;
  w.put_array(b.parent);
  w.put_u64(b.slot.value());
  w.put_u32(b.proposer.value());
  w.put_array(b.body_root);
  return w.bytes();
}

std::optional<Block> decode_block(std::span<const std::uint8_t> bytes) {
  codec::Reader r(bytes);
  crypto::Digest parent{}, body{};
  std::uint64_t slot = 0;
  std::uint32_t proposer = 0;
  if (!r.get_array(parent)) return std::nullopt;
  if (!r.get_u64(slot)) return std::nullopt;
  if (!r.get_u32(proposer)) return std::nullopt;
  if (!r.get_array(body)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  // Recompute the content-addressed id rather than trusting the wire.
  return Block::make(parent, Slot{slot}, ValidatorIndex{proposer}, body);
}

std::vector<std::uint8_t> encode_attestation(const Attestation& a) {
  codec::Writer w;
  w.put_u32(a.attester.value());
  w.put_u64(a.slot.value());
  w.put_array(a.head);
  put_checkpoint(w, a.source);
  put_checkpoint(w, a.target);
  w.put_array(a.signature.mac);
  w.put_u32(a.signature.signer.value());
  return w.bytes();
}

std::optional<Attestation> decode_attestation(
    std::span<const std::uint8_t> bytes) {
  codec::Reader r(bytes);
  Attestation a;
  std::uint32_t attester = 0, signer = 0;
  std::uint64_t slot = 0;
  if (!r.get_u32(attester)) return std::nullopt;
  if (!r.get_u64(slot)) return std::nullopt;
  if (!r.get_array(a.head)) return std::nullopt;
  if (!get_checkpoint(r, a.source)) return std::nullopt;
  if (!get_checkpoint(r, a.target)) return std::nullopt;
  if (!r.get_array(a.signature.mac)) return std::nullopt;
  if (!r.get_u32(signer)) return std::nullopt;
  if (!r.exhausted()) return std::nullopt;
  a.attester = ValidatorIndex{attester};
  a.slot = Slot{slot};
  a.signature.signer = ValidatorIndex{signer};
  return a;
}

}  // namespace leak::chain
