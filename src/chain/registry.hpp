// Validator registry: stake, inactivity score, slashing and exit status.
// This is the protocol-level (integer Gwei) state the penalty engine
// mutates; the analytic module mirrors it with continuous functions.
#pragma once

#include <cstdint>
#include <vector>

#include "src/support/types.hpp"

namespace leak::chain {

/// Per-validator record.
struct ValidatorRecord {
  Gwei balance{};
  std::uint64_t inactivity_score = 0;
  bool slashed = false;
  /// Epoch at which the validator exited (ejection or slashing);
  /// kNeverExited while active.
  std::uint64_t exit_epoch = kNeverExited;

  static constexpr std::uint64_t kNeverExited = ~0ULL;

  [[nodiscard]] bool exited_by(Epoch e) const {
    return exit_epoch <= e.value();
  }
};

/// The registry.  Balances default to 32 ETH.
class ValidatorRegistry {
 public:
  explicit ValidatorRegistry(std::uint32_t n,
                             Gwei initial = Gwei::from_eth(kInitialStakeEth));

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(records_.size());
  }

  // at / is_active / total_active_balance are defined inline: the
  // penalty engine and the partition kernel call them once per
  // validator per epoch per branch, so an out-of-line call here was
  // the dominant per-epoch cost (bounds checking is kept — it is the
  // call overhead that matters, not the check).
  [[nodiscard]] ValidatorRecord& at(ValidatorIndex v) {
    return records_.at(v.value());
  }
  [[nodiscard]] const ValidatorRecord& at(ValidatorIndex v) const {
    return records_.at(v.value());
  }

  /// Is the validator in the active set at epoch e (not exited)?
  [[nodiscard]] bool is_active(ValidatorIndex v, Epoch e) const {
    return !records_.at(v.value()).exited_by(e);
  }

  /// Total balance of validators active at epoch e.
  [[nodiscard]] Gwei total_active_balance(Epoch e) const {
    Gwei total{};
    for (const auto& r : records_) {
      if (!r.exited_by(e)) total += r.balance;
    }
    return total;
  }

  /// Sum of balances over an arbitrary predicate.
  template <typename Pred>
  [[nodiscard]] Gwei balance_where(Pred pred) const {
    Gwei total{};
    for (std::uint32_t i = 0; i < size(); ++i) {
      const ValidatorIndex v{i};
      if (pred(v, records_[i])) total += records_[i].balance;
    }
    return total;
  }

  /// Mark exit (ejection / slashing exit) at the given epoch.
  void eject(ValidatorIndex v, Epoch at);

 private:
  std::vector<ValidatorRecord> records_;
};

}  // namespace leak::chain
