// Wire encoding of chain messages (blocks, attestations) on top of the
// SSZ-lite codec: deterministic round-trip serialization with
// signature preservation, for gossip transport and persistence.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "src/chain/block.hpp"
#include "src/support/codec.hpp"

namespace leak::chain {

/// Serialize a block (id is recomputed on decode, not trusted).
[[nodiscard]] std::vector<std::uint8_t> encode_block(const Block& b);
/// Decode; nullopt on truncated/trailing input.
[[nodiscard]] std::optional<Block> decode_block(
    std::span<const std::uint8_t> bytes);

/// Serialize an attestation, signature included.
[[nodiscard]] std::vector<std::uint8_t> encode_attestation(
    const Attestation& a);
[[nodiscard]] std::optional<Attestation> decode_attestation(
    std::span<const std::uint8_t> bytes);

}  // namespace leak::chain
