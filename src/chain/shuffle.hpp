// Validator shuffling and duty assignment.
//
// Implements the consensus spec's swap-or-not shuffle
// (`compute_shuffled_index`), seeded committee assignment (every
// validator attests exactly once per epoch, spread over the 32 slots)
// and balance-weighted proposer selection
// (`compute_proposer_index`-style rejection sampling on effective
// balance).  The protocol's pseudo-random duty assignment is what makes
// the bouncing attack probabilistic: the adversary needs one of its own
// validators among the first j proposers of each epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "src/chain/registry.hpp"
#include "src/crypto/sha256.hpp"

namespace leak::chain {

/// Spec: compute_shuffled_index(index, index_count, seed) — the
/// swap-or-not network with kShuffleRounds rounds.
inline constexpr int kShuffleRounds = 90;

[[nodiscard]] std::uint64_t shuffled_index(std::uint64_t index,
                                           std::uint64_t index_count,
                                           const crypto::Digest& seed,
                                           int rounds = kShuffleRounds);

/// Full permutation of [0, n) under the shuffle (for tests and
/// committee construction); O(n * rounds).
[[nodiscard]] std::vector<std::uint64_t> shuffle_list(
    std::uint64_t n, const crypto::Digest& seed,
    int rounds = kShuffleRounds);

/// Epoch duties: committee per slot and proposer per slot.
class DutyRoster {
 public:
  /// Build the roster for `epoch` over the active validators of
  /// `registry` with a protocol seed.
  DutyRoster(const ValidatorRegistry& registry, Epoch epoch,
             std::uint64_t base_seed);

  /// Validators attesting at slot (epoch_start + position).
  [[nodiscard]] const std::vector<ValidatorIndex>& committee(
      std::uint64_t position) const;

  /// The proposer of slot (epoch_start + position), selected by
  /// balance-weighted rejection sampling over the shuffled order.
  [[nodiscard]] ValidatorIndex proposer(std::uint64_t position) const;

  /// Slot position at which a validator attests this epoch.
  [[nodiscard]] std::uint64_t committee_position_of(ValidatorIndex v) const;

  [[nodiscard]] std::size_t active_count() const { return active_.size(); }

 private:
  std::vector<ValidatorIndex> active_;
  std::vector<std::vector<ValidatorIndex>> committees_;
  std::vector<ValidatorIndex> proposers_;
  std::vector<std::uint64_t> position_of_;  // by validator index
};

}  // namespace leak::chain
