#include "src/chain/forkchoice.hpp"

namespace leak::chain {

ForkChoice::ForkChoice(const BlockTree& tree,
                       const ValidatorRegistry& registry)
    : tree_(tree), registry_(registry) {}

void ForkChoice::on_attestation(ValidatorIndex v, const Digest& block,
                                Slot slot) {
  const auto it = votes_.find(v);
  if (it != votes_.end() && it->second.slot >= slot) return;
  votes_[v] = Vote{block, slot};
}

std::optional<Digest> ForkChoice::latest_vote(ValidatorIndex v) const {
  const auto it = votes_.find(v);
  if (it == votes_.end()) return std::nullopt;
  return it->second.block;
}

Gwei ForkChoice::subtree_weight(const Digest& root, Epoch e) const {
  Gwei total{};
  for (const auto& [v, vote] : votes_) {
    if (!registry_.is_active(v, e)) continue;
    // Equivocation discounting: slashed validators' latest messages no
    // longer count toward fork choice.
    if (registry_.at(v).slashed) continue;
    // Votes for blocks this view has not received yet weigh nothing
    // (the attestation can arrive before the block it points at).
    if (!tree_.contains(vote.block)) continue;
    if (tree_.is_ancestor(root, vote.block)) {
      total += registry_.at(v).balance;
    }
  }
  // Proposer boost: the current slot's timely proposal pulls extra
  // weight into every subtree that contains it.
  if (boosted_block_ && tree_.contains(*boosted_block_) &&
      tree_.is_ancestor(root, *boosted_block_)) {
    const Gwei active = registry_.total_active_balance(e);
    total += Gwei{active.value() * boost_percent_ / 100};
  }
  return total;
}

void ForkChoice::set_proposer_boost(const Digest& block, unsigned percent) {
  boosted_block_ = block;
  boost_percent_ = percent;
}

void ForkChoice::clear_proposer_boost() {
  boosted_block_.reset();
  boost_percent_ = 0;
}

Digest ForkChoice::head(const Digest& justified_root, Epoch e) const {
  Digest cur = justified_root;
  while (true) {
    const auto& kids = tree_.children(cur);
    if (kids.empty()) return cur;
    // Pick the heaviest child; break ties by block id for determinism
    // across validators (the real protocol also has a deterministic rule).
    Digest best = kids.front();
    Gwei best_w = subtree_weight(best, e);
    for (std::size_t i = 1; i < kids.size(); ++i) {
      const Gwei w = subtree_weight(kids[i], e);
      if (w > best_w || (w == best_w && kids[i] < best)) {
        best = kids[i];
        best_w = w;
      }
    }
    cur = best;
  }
}

}  // namespace leak::chain
