// Core chain data types: blocks, checkpoints, attestations.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "src/crypto/keys.hpp"
#include "src/crypto/sha256.hpp"
#include "src/support/types.hpp"

namespace leak::chain {

using crypto::Digest;

/// Hash functor for digests (first 8 bytes are already uniform).
struct DigestHash {
  std::size_t operator()(const Digest& d) const noexcept {
    return static_cast<std::size_t>(crypto::short_id(d));
  }
};

/// A beacon block: identity is the hash of (parent, slot, proposer, body).
struct Block {
  Digest id{};
  Digest parent{};
  Slot slot{};
  ValidatorIndex proposer{};
  /// Merkle root of the attestations carried in the body.
  Digest body_root{};

  /// Compute the canonical id for the given content.
  static Digest compute_id(const Digest& parent, Slot slot,
                           ValidatorIndex proposer, const Digest& body_root);

  /// Construct a block, computing its id.
  static Block make(const Digest& parent, Slot slot, ValidatorIndex proposer,
                    const Digest& body_root = Digest{});
};

/// A checkpoint: the block of the first slot of an epoch, paired with the
/// epoch number (Section 3.1 of the paper).
struct Checkpoint {
  Digest block{};
  Epoch epoch{};

  friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

struct CheckpointHash {
  std::size_t operator()(const Checkpoint& c) const noexcept {
    return DigestHash{}(c.block) ^
           (std::hash<std::uint64_t>{}(c.epoch.value()) << 1);
  }
};

/// An attestation: one per validator per epoch, carrying the two votes of
/// Section 3.2 — the block (head) vote feeding LMD-GHOST fork choice, and
/// the checkpoint (FFG) vote feeding justification/finalization.
struct Attestation {
  ValidatorIndex attester{};
  Slot slot{};
  /// Block vote: head of the chain in the attester's view.
  Digest head{};
  /// Checkpoint vote: source (last justified) -> target (current epoch
  /// boundary checkpoint).
  Checkpoint source{};
  Checkpoint target{};
  crypto::Signature signature{};

  /// Message digest covered by the signature.
  [[nodiscard]] Digest signing_root() const;

  /// Sign with the attester's key (sets `signature`).
  void sign(const crypto::KeyPair& key);
};

/// True when the two attestations constitute a slashable offense by the
/// same validator (eth2 `is_slashable_attestation_data`):
///  * double vote  — same target epoch, different attestation data;
///  * surround vote — one vote's span strictly surrounds the other's.
[[nodiscard]] bool is_slashable_pair(const Attestation& a,
                                     const Attestation& b);

}  // namespace leak::chain
