// The local tree of blocks every validator maintains (Section 2 of the
// paper: "a local data structure in form of a tree containing all the
// blocks perceived").
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "src/chain/block.hpp"

namespace leak::chain {

/// Append-only block tree rooted at a genesis block.
class BlockTree {
 public:
  /// Create a tree with a genesis block at slot 0.
  BlockTree();

  [[nodiscard]] const Block& genesis() const { return at(genesis_id_); }
  [[nodiscard]] const Digest& genesis_id() const { return genesis_id_; }

  /// Insert a block.  The parent must already be known and have a lower
  /// slot.  Returns false (no-op) when the block is already present;
  /// throws on an unknown parent or non-increasing slot.
  bool insert(const Block& b);

  [[nodiscard]] bool contains(const Digest& id) const;
  [[nodiscard]] const Block& at(const Digest& id) const;
  [[nodiscard]] std::size_t size() const { return blocks_.size(); }

  /// All children of a block, in insertion order.
  [[nodiscard]] const std::vector<Digest>& children(const Digest& id) const;

  /// Is `ancestor` on the path from `descendant` to genesis (inclusive)?
  [[nodiscard]] bool is_ancestor(const Digest& ancestor,
                                 const Digest& descendant) const;

  /// The ancestor of `id` with the highest slot <= `slot` (used to find
  /// the epoch-boundary block for checkpoints).
  [[nodiscard]] Digest ancestor_at_slot(const Digest& id, Slot slot) const;

  /// Chain from genesis to `id` (inclusive), genesis first.
  [[nodiscard]] std::vector<Digest> chain_to(const Digest& id) const;

  /// Blocks without children.
  [[nodiscard]] std::vector<Digest> leaves() const;

  /// The epoch-boundary checkpoint for `epoch` on the branch ending at
  /// `head`: the block of the first slot of the epoch or, when that slot
  /// was empty, the latest ancestor before it.
  [[nodiscard]] Checkpoint checkpoint_on_branch(const Digest& head,
                                                Epoch epoch) const;

 private:
  std::unordered_map<Digest, Block, DigestHash> blocks_;
  std::unordered_map<Digest, std::vector<Digest>, DigestHash> children_;
  Digest genesis_id_{};
  static const std::vector<Digest> kNoChildren;
};

}  // namespace leak::chain
