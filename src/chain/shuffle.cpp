#include "src/chain/shuffle.hpp"

#include <stdexcept>

namespace leak::chain {

namespace {

std::uint64_t le64(const crypto::Digest& d, std::size_t offset = 0) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | d[offset + static_cast<std::size_t>(i)];
  }
  return v;
}

crypto::Digest hash_round(const crypto::Digest& seed, std::uint8_t round) {
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(seed.data(), seed.size()));
  h.update_value(round);
  return h.finalize();
}

crypto::Digest hash_round_position(const crypto::Digest& seed,
                                   std::uint8_t round,
                                   std::uint32_t position_div) {
  crypto::Sha256 h;
  h.update(std::span<const std::uint8_t>(seed.data(), seed.size()));
  h.update_value(round);
  h.update_value(position_div);
  return h.finalize();
}

}  // namespace

std::uint64_t shuffled_index(std::uint64_t index, std::uint64_t index_count,
                             const crypto::Digest& seed, int rounds) {
  if (index >= index_count || index_count == 0) {
    throw std::invalid_argument("shuffled_index: index out of range");
  }
  for (int r = 0; r < rounds; ++r) {
    const auto round = static_cast<std::uint8_t>(r);
    const std::uint64_t pivot = le64(hash_round(seed, round)) % index_count;
    const std::uint64_t flip = (pivot + index_count - index) % index_count;
    const std::uint64_t position = std::max(index, flip);
    const crypto::Digest source = hash_round_position(
        seed, round, static_cast<std::uint32_t>(position / 256));
    const std::uint8_t byte =
        source[static_cast<std::size_t>((position % 256) / 8)];
    const bool bit = (byte >> (position % 8)) & 1;
    if (bit) index = flip;
  }
  return index;
}

std::vector<std::uint64_t> shuffle_list(std::uint64_t n,
                                        const crypto::Digest& seed,
                                        int rounds) {
  // Batched variant of shuffled_index: identical permutation, but the
  // per-round pivot and the 256-position source blocks are hashed once
  // per round instead of once per index — O(rounds * n/256) hashes.
  std::vector<std::uint64_t> out(n);
  for (std::uint64_t i = 0; i < n; ++i) out[i] = i;
  if (n <= 1) return out;
  std::vector<crypto::Digest> blocks((n + 255) / 256);
  for (int r = 0; r < rounds; ++r) {
    const auto round = static_cast<std::uint8_t>(r);
    const std::uint64_t pivot = le64(hash_round(seed, round)) % n;
    for (std::size_t blk = 0; blk < blocks.size(); ++blk) {
      blocks[blk] = hash_round_position(seed, round,
                                        static_cast<std::uint32_t>(blk));
    }
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t index = out[i];
      const std::uint64_t flip = (pivot + n - index) % n;
      const std::uint64_t position = std::max(index, flip);
      const crypto::Digest& source = blocks[position / 256];
      const std::uint8_t byte =
          source[static_cast<std::size_t>((position % 256) / 8)];
      if ((byte >> (position % 8)) & 1) out[i] = flip;
    }
  }
  return out;
}

DutyRoster::DutyRoster(const ValidatorRegistry& registry, Epoch epoch,
                       std::uint64_t base_seed) {
  // Active set at this epoch.
  for (std::uint32_t i = 0; i < registry.size(); ++i) {
    const ValidatorIndex v{i};
    if (registry.is_active(v, epoch)) active_.push_back(v);
  }
  if (active_.empty()) {
    throw std::invalid_argument("DutyRoster: no active validators");
  }

  // Epoch seed.
  crypto::Sha256 hs;
  hs.update("leak/duty-seed/v1");
  hs.update_value(base_seed);
  hs.update_value(epoch.value());
  const crypto::Digest seed = hs.finalize();

  // Committees: shuffle the active set and deal it over the 32 slots.
  const std::uint64_t n = active_.size();
  committees_.assign(kSlotsPerEpoch, {});
  position_of_.assign(registry.size(), 0);
  const auto perm = shuffle_list(n, seed);
  for (std::uint64_t i = 0; i < n; ++i) {
    const ValidatorIndex v = active_[perm[i]];
    const std::uint64_t pos = i % kSlotsPerEpoch;
    committees_[pos].push_back(v);
    position_of_[v.value()] = pos;
  }

  // Proposers: rejection-sample on effective balance along a second
  // epoch-wide shuffled order, starting each slot at a seed-derived
  // offset (compute_proposer_index-style acceptance test).
  crypto::Sha256 hp;
  hp.update("leak/proposer-seed/v1");
  hp.update(std::span<const std::uint8_t>(seed.data(), seed.size()));
  const crypto::Digest pseed = hp.finalize();
  const auto pperm = shuffle_list(n, pseed);
  proposers_.reserve(kSlotsPerEpoch);
  const auto max_balance = Gwei::from_eth(kInitialStakeEth);
  for (std::uint64_t pos = 0; pos < kSlotsPerEpoch; ++pos) {
    crypto::Sha256 ho;
    ho.update(std::span<const std::uint8_t>(pseed.data(), pseed.size()));
    ho.update_value(pos);
    const std::uint64_t offset = crypto::short_id(ho.finalize()) % n;
    ValidatorIndex chosen = active_[pperm[offset]];
    for (std::uint64_t i = 0; i <= 10000; ++i) {
      const ValidatorIndex candidate = active_[pperm[(offset + i) % n]];
      crypto::Sha256 hb;
      hb.update(std::span<const std::uint8_t>(pseed.data(), pseed.size()));
      hb.update_value(pos);
      hb.update_value(i);
      const std::uint8_t random_byte = hb.finalize()[0];
      const auto balance = registry.at(candidate).balance;
      // accept with probability balance / max_balance
      if (static_cast<__uint128_t>(balance.value()) * 255 >=
          static_cast<__uint128_t>(max_balance.value()) * random_byte) {
        chosen = candidate;
        break;
      }
    }
    proposers_.push_back(chosen);
  }
}

const std::vector<ValidatorIndex>& DutyRoster::committee(
    std::uint64_t position) const {
  return committees_.at(position);
}

ValidatorIndex DutyRoster::proposer(std::uint64_t position) const {
  return proposers_.at(position);
}

std::uint64_t DutyRoster::committee_position_of(ValidatorIndex v) const {
  return position_of_.at(v.value());
}

}  // namespace leak::chain
