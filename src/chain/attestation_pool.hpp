// Attestation aggregation pool.
//
// Ethereum gossips individual attestations, aggregates those sharing
// the same attestation data (slot, head, source, target) into one
// aggregate signature, and proposers pick the best aggregates to
// include in blocks.  This pool mirrors that pipeline: ingest, group by
// data, aggregate, select for inclusion, prune by slot age.
#pragma once

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/chain/block.hpp"
#include "src/crypto/keys.hpp"

namespace leak::chain {

/// The data shared by every attestation in one aggregate.
struct AttestationData {
  Slot slot{};
  Digest head{};
  Checkpoint source{};
  Checkpoint target{};

  friend bool operator==(const AttestationData&,
                         const AttestationData&) = default;

  [[nodiscard]] static AttestationData of(const Attestation& a) {
    return AttestationData{a.slot, a.head, a.source, a.target};
  }
};

struct AttestationDataHash {
  std::size_t operator()(const AttestationData& d) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(d.slot.value());
    h ^= DigestHash{}(d.head) + 0x9e3779b97f4a7c15ULL + (h << 6);
    h ^= CheckpointHash{}(d.source) + (h >> 2);
    h ^= CheckpointHash{}(d.target) + (h << 3);
    return h;
  }
};

/// An aggregate: shared data plus the collected signers.
struct AggregatedAttestation {
  AttestationData data{};
  crypto::AggregateSignature signature;

  [[nodiscard]] std::size_t participation() const {
    return signature.count();
  }
};

/// The pool.
class AttestationPool {
 public:
  /// Ingest one attestation; signatures are verified against the
  /// registry and invalid ones rejected.  Returns whether it was added
  /// (false for duplicates or bad signatures).
  bool ingest(const Attestation& att, const crypto::KeyRegistry& keys);

  /// Number of distinct attestation-data groups currently pooled.
  [[nodiscard]] std::size_t groups() const { return pool_.size(); }
  /// Total attestations pooled.
  [[nodiscard]] std::size_t size() const { return count_; }

  /// The aggregate for a specific data, if any.
  [[nodiscard]] std::optional<AggregatedAttestation> aggregate_for(
      const AttestationData& data) const;

  /// Select up to `max_count` aggregates for block inclusion, highest
  /// participation first (ties broken by older slot first).
  [[nodiscard]] std::vector<AggregatedAttestation> select_for_block(
      std::size_t max_count) const;

  /// Drop all groups with slot < cutoff (inclusion window expiry).
  /// Returns the number of groups removed.
  std::size_t prune_before(Slot cutoff);

 private:
  struct Group {
    AggregatedAttestation agg;
  };
  std::unordered_map<AttestationData, Group, AttestationDataHash> pool_;
  /// (attester, slot) pairs already accepted, to reject duplicates.
  struct SeenKey {
    ValidatorIndex v{};
    Slot slot{};
    friend bool operator==(const SeenKey&, const SeenKey&) = default;
  };
  struct SeenKeyHash {
    std::size_t operator()(const SeenKey& k) const noexcept {
      return std::hash<std::uint32_t>{}(k.v.value()) ^
             (std::hash<std::uint64_t>{}(k.slot.value()) << 1);
    }
  };
  std::unordered_map<SeenKey, bool, SeenKeyHash> seen_;
  std::size_t count_ = 0;
};

}  // namespace leak::chain
