#include "src/chain/registry.hpp"

#include <stdexcept>

namespace leak::chain {

ValidatorRegistry::ValidatorRegistry(std::uint32_t n, Gwei initial)
    : records_(n) {
  if (n == 0) throw std::invalid_argument("ValidatorRegistry: n must be > 0");
  for (auto& r : records_) r.balance = initial;
}

void ValidatorRegistry::eject(ValidatorIndex v, Epoch at) {
  auto& r = records_.at(v.value());
  if (r.exit_epoch == ValidatorRecord::kNeverExited) {
    r.exit_epoch = at.value();
  }
}

}  // namespace leak::chain
