#include "src/chain/registry.hpp"

#include <stdexcept>

namespace leak::chain {

ValidatorRegistry::ValidatorRegistry(std::uint32_t n, Gwei initial)
    : records_(n) {
  if (n == 0) throw std::invalid_argument("ValidatorRegistry: n must be > 0");
  for (auto& r : records_) r.balance = initial;
}

ValidatorRecord& ValidatorRegistry::at(ValidatorIndex v) {
  return records_.at(v.value());
}

const ValidatorRecord& ValidatorRegistry::at(ValidatorIndex v) const {
  return records_.at(v.value());
}

bool ValidatorRegistry::is_active(ValidatorIndex v, Epoch e) const {
  return !records_.at(v.value()).exited_by(e);
}

Gwei ValidatorRegistry::total_active_balance(Epoch e) const {
  Gwei total{};
  for (const auto& r : records_) {
    if (!r.exited_by(e)) total += r.balance;
  }
  return total;
}

void ValidatorRegistry::eject(ValidatorIndex v, Epoch at) {
  auto& r = records_.at(v.value());
  if (r.exit_epoch == ValidatorRecord::kNeverExited) {
    r.exit_epoch = at.value();
  }
}

}  // namespace leak::chain
