#include "src/chain/attestation_pool.hpp"

#include <algorithm>

namespace leak::chain {

bool AttestationPool::ingest(const Attestation& att,
                             const crypto::KeyRegistry& keys) {
  if (!keys.verify(att.signing_root(), att.signature)) return false;
  const SeenKey key{att.attester, att.slot};
  if (seen_.contains(key)) return false;
  seen_.emplace(key, true);

  const AttestationData data = AttestationData::of(att);
  auto& group = pool_[data];
  group.agg.data = data;
  group.agg.signature.add(att.signature);
  ++count_;
  return true;
}

std::optional<AggregatedAttestation> AttestationPool::aggregate_for(
    const AttestationData& data) const {
  const auto it = pool_.find(data);
  if (it == pool_.end()) return std::nullopt;
  return it->second.agg;
}

std::vector<AggregatedAttestation> AttestationPool::select_for_block(
    std::size_t max_count) const {
  std::vector<AggregatedAttestation> all;
  all.reserve(pool_.size());
  for (const auto& [data, group] : pool_) all.push_back(group.agg);
  std::sort(all.begin(), all.end(),
            [](const AggregatedAttestation& a,
               const AggregatedAttestation& b) {
              if (a.participation() != b.participation()) {
                return a.participation() > b.participation();
              }
              return a.data.slot < b.data.slot;
            });
  if (all.size() > max_count) all.resize(max_count);
  return all;
}

std::size_t AttestationPool::prune_before(Slot cutoff) {
  std::size_t removed = 0;
  for (auto it = pool_.begin(); it != pool_.end();) {
    if (it->first.slot < cutoff) {
      count_ -= it->second.agg.participation();
      it = pool_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  // Seen-set entries for pruned slots can be dropped as well.
  for (auto it = seen_.begin(); it != seen_.end();) {
    if (it->first.slot < cutoff) {
      it = seen_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace leak::chain
