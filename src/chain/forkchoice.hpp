// LMD-GHOST fork choice (latest-message-driven, greediest heaviest
// observed sub-tree), stake-weighted, starting from the justified
// checkpoint — the "fork choice rule" of Section 3.2.
#pragma once

#include <optional>
#include <unordered_map>

#include "src/chain/blocktree.hpp"
#include "src/chain/registry.hpp"

namespace leak::chain {

/// Fork choice state: remembers each validator's latest block vote and
/// selects the head by greedily descending into the heaviest subtree.
class ForkChoice {
 public:
  ForkChoice(const BlockTree& tree, const ValidatorRegistry& registry);

  /// Record a block vote.  Only the latest (by slot) vote per validator
  /// counts; stale votes are ignored.
  void on_attestation(ValidatorIndex v, const Digest& block, Slot slot);

  /// Proposer boost: credit the current slot's timely proposal with
  /// extra weight (a percentage of the total active balance, 40% on
  /// mainnet) until cleared at the next slot.
  void set_proposer_boost(const Digest& block, unsigned percent = 40);
  void clear_proposer_boost();

  /// Latest vote of a validator, if any.
  [[nodiscard]] std::optional<Digest> latest_vote(ValidatorIndex v) const;

  /// Compute the head starting from `justified_root` at epoch `e`
  /// (stake weights are read at epoch e; exited validators weigh 0).
  [[nodiscard]] Digest head(const Digest& justified_root, Epoch e) const;

  /// Total stake voting inside the subtree rooted at `root` at epoch `e`.
  [[nodiscard]] Gwei subtree_weight(const Digest& root, Epoch e) const;

 private:
  struct Vote {
    Digest block{};
    Slot slot{};
  };

  const BlockTree& tree_;
  const ValidatorRegistry& registry_;
  std::unordered_map<ValidatorIndex, Vote> votes_;
  std::optional<Digest> boosted_block_;
  unsigned boost_percent_ = 0;
};

}  // namespace leak::chain
