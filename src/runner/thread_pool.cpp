#include "src/runner/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "src/support/env.hpp"

namespace leak::runner {

unsigned resolve_threads(unsigned requested) {
  // 1024 bounds damage from e.g. a negative CLI thread arg cast to a
  // huge unsigned; any sane request is far below it.
  constexpr unsigned kMaxThreads = 1024;
  if (requested > 0) return std::min(requested, kMaxThreads);
  const std::uint64_t from_env = env::u64_or("LEAK_THREADS", 0);
  if (from_env > 0) {
    return static_cast<unsigned>(
        std::min<std::uint64_t>(from_env, kMaxThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t resolve_block(std::size_t requested) {
  // 64 paths of SoA state (stake, score, ejected, four 64-bit xoshiro
  // lanes) is ~3.3 KiB — comfortably L1-resident with room for the
  // output row — and big enough to amortise the per-block dispatch.
  constexpr std::size_t kDefaultBlock = 64;
  if (requested > 0) return requested;
  const std::uint64_t from_env = env::u64_or("LEAK_BLOCK", 0);
  if (from_env > 0) return static_cast<std::size_t>(from_env);
  return kDefaultBlock;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  all_idle_.wait(lk, [this] { return unfinished_ == 0; });
}

void ThreadPool::run_blocks(
    std::size_t n, std::size_t block,
    const std::function<bool(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  block = std::max<std::size_t>(block, 1);
  const std::size_t n_blocks = (n + block - 1) / block;
  // One claiming loop per worker; a shared cursor hands out ascending
  // block indices so claim order is deterministic even though
  // completion order is not.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(0);
  auto cancelled = std::make_shared<std::atomic<bool>>(false);
  const unsigned loops = static_cast<unsigned>(
      std::min<std::size_t>(size(), n_blocks));
  for (unsigned w = 0; w < loops; ++w) {
    submit([cursor, cancelled, n, block, n_blocks, &body] {
      while (!cancelled->load(std::memory_order_relaxed)) {
        const std::size_t b = cursor->fetch_add(1, std::memory_order_relaxed);
        if (b >= n_blocks) return;
        const std::size_t begin = b * block;
        const std::size_t end = std::min(begin + block, n);
        if (!body(begin, end)) {
          cancelled->store(true, std::memory_order_relaxed);
          return;
        }
      }
    });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_ready_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // woken by the destructor
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      --unfinished_;
      if (unfinished_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace leak::runner
