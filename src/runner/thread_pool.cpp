#include "src/runner/thread_pool.hpp"

#include <algorithm>

#include "src/support/env.hpp"

namespace leak::runner {

unsigned resolve_threads(unsigned requested) {
  // 1024 bounds damage from e.g. a negative CLI thread arg cast to a
  // huge unsigned; any sane request is far below it.
  constexpr unsigned kMaxThreads = 1024;
  if (requested > 0) return std::min(requested, kMaxThreads);
  const std::uint64_t from_env = env::u64_or("LEAK_THREADS", 0);
  if (from_env > 0) {
    return static_cast<unsigned>(
        std::min<std::uint64_t>(from_env, kMaxThreads));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lk(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lk(mu_);
    queue_.push_back(std::move(task));
    ++unfinished_;
  }
  work_ready_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  all_idle_.wait(lk, [this] { return unfinished_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_ready_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // woken by the destructor
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lk(mu_);
      --unfinished_;
      if (unfinished_ == 0) all_idle_.notify_all();
    }
  }
}

}  // namespace leak::runner
