// Deterministic fan-out of N independent Monte Carlo trials across a
// chunked thread pool.
//
// Contract: the trial function must be pure given its trial index —
// all randomness comes from a per-trial RNG stream derived from
// (master_seed, trial_index) (see leak::StreamSeeder), and trials
// never touch shared mutable state.  Results are collected into a
// vector indexed by trial, so any merge the caller performs in trial
// order is bit-identical regardless of thread count (including
// threads == 1).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <type_traits>
#include <vector>

#include "src/runner/thread_pool.hpp"

namespace leak::runner {

class TrialRunner {
 public:
  /// threads == 0 resolves via LEAK_THREADS / hardware_concurrency.
  explicit TrialRunner(unsigned threads = 0)
      : threads_(resolve_threads(threads)) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run fn(i) for i in [0, n_trials); return the results in trial
  /// order.  If any trial throws, the exception with the lowest trial
  /// index among those observed is rethrown after the pool drains (no
  /// deadlock, no detached work left behind).
  template <typename Fn>
  [[nodiscard]] auto run(std::size_t n_trials, Fn&& fn) const {
    using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    static_assert(std::is_default_constructible_v<Result>,
                  "trial results are collected into a pre-sized vector");
    static_assert(!std::is_same_v<Result, bool>,
                  "bool trials would race on std::vector<bool>'s packed "
                  "words; return std::uint8_t instead");
    std::vector<Result> results(n_trials);
    if (n_trials == 0) return results;

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(threads_, n_trials));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n_trials; ++i) results[i] = fn(i);
      return results;
    }

    // Chunked dynamic scheduling: workers claim fixed-size index
    // ranges from a shared cursor.  Chunks amortise the atomic per
    // claim while staying small enough to balance uneven trials.
    const std::size_t chunk = std::max<std::size_t>(
        1, n_trials / (static_cast<std::size_t>(workers) * 8));
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;
    std::size_t first_error_trial = std::numeric_limits<std::size_t>::max();

    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.submit([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t begin =
              cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n_trials) return;
          const std::size_t end = std::min(begin + chunk, n_trials);
          for (std::size_t i = begin; i < end; ++i) {
            try {
              results[i] = fn(i);
            } catch (...) {
              std::scoped_lock lk(err_mu);
              if (i < first_error_trial) {
                first_error_trial = i;
                first_error = std::current_exception();
              }
              failed.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
      });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

 private:
  unsigned threads_;
};

}  // namespace leak::runner
