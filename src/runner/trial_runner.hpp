// Deterministic fan-out of N independent Monte Carlo trials across a
// chunked thread pool.
//
// Contract: the trial function must be pure given its trial index —
// all randomness comes from a per-trial RNG stream derived from
// (master_seed, trial_index) (see leak::StreamSeeder), and trials
// never touch shared mutable state.  Results are collected into a
// vector indexed by trial, so any merge the caller performs in trial
// order is bit-identical regardless of thread count (including
// threads == 1).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <limits>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/runner/thread_pool.hpp"

namespace leak::runner {

class TrialRunner {
 public:
  /// threads == 0 resolves via LEAK_THREADS / hardware_concurrency.
  explicit TrialRunner(unsigned threads = 0)
      : threads_(resolve_threads(threads)) {}

  [[nodiscard]] unsigned threads() const { return threads_; }

  /// Run fn(i) for i in [0, n_trials); return the results in trial
  /// order.  If any trial throws, the exception with the lowest trial
  /// index among those observed is rethrown after the pool drains (no
  /// deadlock, no detached work left behind).
  template <typename Fn>
  [[nodiscard]] auto run(std::size_t n_trials, Fn&& fn) const {
    using Result = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
    static_assert(std::is_default_constructible_v<Result>,
                  "trial results are collected into a pre-sized vector");
    static_assert(!std::is_same_v<Result, bool>,
                  "bool trials would race on std::vector<bool>'s packed "
                  "words; return std::uint8_t instead");
    std::vector<Result> results(n_trials);
    if (n_trials == 0) return results;

    const auto workers = static_cast<unsigned>(
        std::min<std::size_t>(threads_, n_trials));
    if (workers <= 1) {
      for (std::size_t i = 0; i < n_trials; ++i) results[i] = fn(i);
      return results;
    }

    // Chunked dynamic scheduling: workers claim fixed-size index
    // ranges from a shared cursor.  Chunks amortise the atomic per
    // claim while staying small enough to balance uneven trials.
    const std::size_t chunk = std::max<std::size_t>(
        1, n_trials / (static_cast<std::size_t>(workers) * 8));
    std::atomic<std::size_t> cursor{0};
    std::atomic<bool> failed{false};
    std::mutex err_mu;
    std::exception_ptr first_error;
    std::size_t first_error_trial = std::numeric_limits<std::size_t>::max();

    ThreadPool pool(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.submit([&] {
        while (!failed.load(std::memory_order_relaxed)) {
          const std::size_t begin =
              cursor.fetch_add(chunk, std::memory_order_relaxed);
          if (begin >= n_trials) return;
          const std::size_t end = std::min(begin + chunk, n_trials);
          for (std::size_t i = begin; i < end; ++i) {
            try {
              results[i] = fn(i);
            } catch (...) {
              std::scoped_lock lk(err_mu);
              if (i < first_error_trial) {
                first_error_trial = i;
                first_error = std::current_exception();
              }
              failed.store(true, std::memory_order_relaxed);
              break;
            }
          }
        }
      });
    }
    pool.wait_idle();
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// Block-scheduled fan-out into caller-preallocated output slabs:
  /// run fn(begin, end) for each fixed-size block of [0, n_trials)
  /// (block b covers [b*block, min((b+1)*block, n_trials))).  fn
  /// writes each trial's outputs at its global index into slabs the
  /// caller sized up front, so there is no merge step and no per-trial
  /// allocation; because trial i's randomness comes from the
  /// (master_seed, i) stream, the result is bit-identical for every
  /// (block, threads) combination.  If any block throws, the exception
  /// from the lowest block among those observed is rethrown after the
  /// pool drains.
  template <typename Fn>
  void run_blocks(std::size_t n_trials, std::size_t block, Fn&& fn) const {
    if (n_trials == 0) return;
    block = std::clamp<std::size_t>(block, 1, n_trials);
    const std::size_t n_blocks = (n_trials + block - 1) / block;
    const auto workers =
        static_cast<unsigned>(std::min<std::size_t>(threads_, n_blocks));
    if (workers <= 1) {
      for (std::size_t begin = 0; begin < n_trials; begin += block) {
        fn(begin, std::min(begin + block, n_trials));
      }
      return;
    }
    std::mutex err_mu;
    std::exception_ptr first_error;
    std::size_t first_error_begin = std::numeric_limits<std::size_t>::max();
    ThreadPool pool(workers);
    pool.run_blocks(n_trials, block,
                    [&](std::size_t begin, std::size_t end) -> bool {
                      try {
                        fn(begin, end);
                        return true;
                      } catch (...) {
                        std::scoped_lock lk(err_mu);
                        if (begin < first_error_begin) {
                          first_error_begin = begin;
                          first_error = std::current_exception();
                        }
                        return false;
                      }
                    });
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Like run_blocks, but for streaming reductions whose merge order
  /// matters (floating-point accumulation is not associative): sim
  /// blocks run concurrently, and each block's value is handed to
  /// merge(begin, end, value) strictly in ascending block order, one
  /// merge at a time — so the reduction sees trials in index order and
  /// stays bit-identical for every (block, threads) combination.  A
  /// worker holds at most one unmerged block value, so peak transient
  /// memory is O(threads x block), never O(n_trials).  Exceptions
  /// cancel unclaimed blocks; the one from the lowest block rethrows.
  template <typename SimFn, typename MergeFn>
  void run_blocks(std::size_t n_trials, std::size_t block, SimFn&& sim,
                  MergeFn&& merge) const {
    using Value =
        std::decay_t<std::invoke_result_t<SimFn&, std::size_t, std::size_t>>;
    if (n_trials == 0) return;
    block = std::clamp<std::size_t>(block, 1, n_trials);
    const std::size_t n_blocks = (n_trials + block - 1) / block;
    const auto workers =
        static_cast<unsigned>(std::min<std::size_t>(threads_, n_blocks));
    if (workers <= 1) {
      for (std::size_t begin = 0; begin < n_trials; begin += block) {
        const std::size_t end = std::min(begin + block, n_trials);
        Value value = sim(begin, end);
        merge(begin, end, std::move(value));
      }
      return;
    }
    std::mutex mu;  // guards the merge turn and the error bookkeeping
    std::condition_variable turn_cv;
    std::size_t merge_turn = 0;
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::size_t first_error_block = std::numeric_limits<std::size_t>::max();
    const auto record_error = [&](std::size_t b) {
      std::scoped_lock lk(mu);
      if (b < first_error_block) {
        first_error_block = b;
        first_error = std::current_exception();
      }
      failed.store(true, std::memory_order_relaxed);
    };
    ThreadPool pool(workers);
    pool.run_blocks(
        n_trials, block, [&](std::size_t begin, std::size_t end) -> bool {
          const std::size_t b = begin / block;
          std::optional<Value> value;
          if (!failed.load(std::memory_order_relaxed)) {
            try {
              value.emplace(sim(begin, end));
            } catch (...) {
              record_error(b);
            }
          }
          {
            // Take the merge turn even on failure so later blocks
            // waiting on it are released (no deadlock on error).
            std::unique_lock lk(mu);
            turn_cv.wait(lk, [&] { return merge_turn == b; });
            if (value.has_value() &&
                !failed.load(std::memory_order_relaxed)) {
              try {
                merge(begin, end, std::move(*value));
              } catch (...) {
                lk.unlock();
                record_error(b);
                lk.lock();
              }
            }
            ++merge_turn;
          }
          turn_cv.notify_all();
          return !failed.load(std::memory_order_relaxed);
        });
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Ordered reduction tree over fixed-size blocks: sim(begin, end)
  /// produces one partial per block concurrently, and the partials
  /// fold into `acc` via acc.fold(begin, end, partial) strictly in
  /// ascending block order — a left-deep tree whose merge order is a
  /// function of (n_trials, block) alone, never of thread scheduling
  /// or completion order.  This is what lets keep_paths=false summary
  /// reductions scale past one thread while staying bit-identical to
  /// the serial fold (and to full mode, when the accumulator is the
  /// same code fed the same per-trial values in the same order).  A
  /// worker holds at most one unfolded partial, so in-flight memory is
  /// bounded by O(threads x sizeof(partial)).  Exceptions cancel
  /// unclaimed blocks; the one from the lowest block rethrows.
  template <typename Acc, typename SimFn>
  [[nodiscard]] Acc run_reduce(std::size_t n_trials, std::size_t block,
                               Acc acc, SimFn&& sim) const {
    run_blocks(n_trials, block, sim,
               [&acc](std::size_t begin, std::size_t end, auto&& partial) {
                 acc.fold(begin, end,
                          std::forward<decltype(partial)>(partial));
               });
    return acc;
  }

 private:
  unsigned threads_;
};

}  // namespace leak::runner
