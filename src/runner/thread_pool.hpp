// Fixed-size worker pool used by the trial runner.  Deliberately
// work-stealing-free: tasks are pulled from one mutex-guarded queue,
// which is ample for the coarse chunked tasks the simulators submit
// (each task is thousands of epochs of protocol dynamics) and keeps
// the scheduling trivially easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace leak::runner {

/// Resolve a `threads` knob to a worker count: an explicit positive
/// request wins; 0 means the LEAK_THREADS environment variable when
/// set, otherwise std::thread::hardware_concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned requested);

class ThreadPool {
 public:
  /// Spawns resolve_threads(threads) workers.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task.  Tasks must not throw: callers that can fail wrap
  /// their body and capture the exception (see TrialRunner).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::size_t unfinished_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
};

}  // namespace leak::runner
