// Fixed-size worker pool used by the trial runner.  Deliberately
// work-stealing-free: tasks are pulled from one mutex-guarded queue,
// which is ample for the coarse chunked tasks the simulators submit
// (each task is thousands of epochs of protocol dynamics) and keeps
// the scheduling trivially easy to reason about.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace leak::runner {

/// Resolve a `threads` knob to a worker count: an explicit positive
/// request wins; 0 means the LEAK_THREADS environment variable when
/// set, otherwise std::thread::hardware_concurrency (at least 1).
[[nodiscard]] unsigned resolve_threads(unsigned requested);

/// Resolve a `block` knob (trials per scheduled block) the same way:
/// an explicit positive request wins; 0 means the LEAK_BLOCK
/// environment variable when set, otherwise a tuned default sized so
/// the batched Monte Carlo kernel's structure-of-arrays state stays
/// inside L1 (see src/kernel/stake_batch.hpp).
[[nodiscard]] std::size_t resolve_block(std::size_t requested);

class ThreadPool {
 public:
  /// Spawns resolve_threads(threads) workers.
  explicit ThreadPool(unsigned threads = 0);

  /// Drains outstanding tasks, then joins every worker.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Enqueue a task.  Tasks must not throw: callers that can fail wrap
  /// their body and capture the exception (see TrialRunner).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished running.
  void wait_idle();

  /// Chunk fan-out: carve [0, n) into fixed-size blocks (block b
  /// covers [b*block, min((b+1)*block, n)) — boundaries depend only on
  /// (n, block), never on scheduling) and run body(begin, end) for
  /// each, blocks claimed by the workers in ascending order.  Blocks
  /// until every claimed block ran.  body must not throw (callers
  /// that can fail wrap their body, see TrialRunner::run_blocks) and
  /// returns false to cancel the blocks not yet claimed.
  void run_blocks(std::size_t n, std::size_t block,
                  const std::function<bool(std::size_t, std::size_t)>& body);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::size_t unfinished_ = 0;  ///< queued + currently running tasks
  bool stopping_ = false;
};

}  // namespace leak::runner
