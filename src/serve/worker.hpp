// Worker subprocesses for the sweep service.  The service forks one
// worker per shard slot; each worker owns two pipes:
//
//   task pipe    parent -> child    "RUN <cell>\n" | "EXIT\n"
//   result pipe  child  -> parent   one CRC-framed record line per
//                                   completed cell (store.hpp framing)
//
// The child never execs: it runs run_worker_loop() against the
// manifest it inherited and _exit()s.  Workers never touch the
// results store — the service is the single writer — so a worker
// killed at any instant costs at most its in-flight cell, which the
// service re-runs (bit-identically, by StreamSeeder cell identity)
// on a respawned worker.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/serve/job.hpp"
#include "src/support/json.hpp"

namespace leak::serve {

/// Parent-side handle to one worker subprocess.
struct Worker {
  pid_t pid = -1;
  int task_fd = -1;    ///< parent writes task lines here
  int result_fd = -1;  ///< parent reads framed record lines here
  std::string buf;     ///< partial-line read buffer
  std::optional<std::size_t> in_flight;  ///< assigned cell, if any
  unsigned generation = 0;
  bool exiting = false;  ///< EXIT sent, waiting for EOF

  /// Close both pipe ends (idempotent).
  void close_fds();
};

/// Options threaded through to the child loop.
struct WorkerOptions {
  unsigned generation = 0;
  /// Test hook (0 = off): a generation-0 worker _exit(42)s instead of
  /// running its (n+1)-th cell, losing the in-flight assignment —
  /// deterministic coverage for the service's retry-on-worker-death
  /// path.  Respawned generations run normally.
  unsigned test_abort_after = 0;
};

/// Fork a worker for `job`.  In the parent: returns the handle (or
/// nullopt with `error` set).  In the child: never returns.
/// `close_in_child` lists parent-side fds the child must close so
/// sibling pipes don't keep each other alive.
[[nodiscard]] std::optional<Worker> spawn_worker(
    const scenario::Scenario& sc, const JobSpec& job,
    const WorkerOptions& options, const std::vector<int>& close_in_child,
    std::string* error);

/// Send "RUN <cell>" / "EXIT" on the task pipe.  false on a dead pipe
/// (the worker is gone; the service reaps it via the result-pipe EOF).
[[nodiscard]] bool send_task(Worker& worker, std::size_t cell);
[[nodiscard]] bool send_exit(Worker& worker);

/// The record payload a worker emits for one completed cell:
/// {"type": "cell", "job": <id>, "cell": <index>, "fp": <crc32 hex>,
///  "result": <ScenarioResult JSON>}.  Exposed for tests.
[[nodiscard]] json::Value cell_record(const JobSpec& job, std::size_t index,
                                      const scenario::ScenarioResult& result);

/// The payload for a cell whose run threw: {"type": "error", ...}.
[[nodiscard]] json::Value error_record(const JobSpec& job, std::size_t index,
                                       const std::string& what);

}  // namespace leak::serve
