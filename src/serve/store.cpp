#include "src/serve/store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "src/support/crc32.hpp"

namespace leak::serve {

namespace {

[[nodiscard]] bool is_hex(char c) {
  return (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
}

/// Full-buffer write(2) loop, EINTR-safe.
[[nodiscard]] bool write_all(int fd, const char* data, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ResultsStore::ResultsStore(std::string path) : path_(std::move(path)) {}

ResultsStore::~ResultsStore() {
  if (fd_ >= 0) ::close(fd_);
}

std::string ResultsStore::frame(const json::Value& payload) {
  const std::string body = payload.dump();
  return crc32::to_hex(crc32::of(body)) + " " + body;
}

std::optional<json::Value> ResultsStore::unframe(std::string_view line) {
  if (line.size() < 10 || line[8] != ' ') return std::nullopt;
  for (std::size_t i = 0; i < 8; ++i) {
    if (!is_hex(line[i])) return std::nullopt;
  }
  const std::string_view body = line.substr(9);
  if (crc32::to_hex(crc32::of(body)) != line.substr(0, 8)) {
    return std::nullopt;
  }
  return json::Value::parse(body);
}

bool ResultsStore::write_line(std::string_view line, bool sync) {
  if (fd_ < 0) {
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0) return false;
  }
  std::string out(line);
  out.push_back('\n');
  if (!write_all(fd_, out.data(), out.size())) return false;
  return !sync || ::fsync(fd_) == 0;
}

bool ResultsStore::append(const json::Value& payload, bool sync) {
  return write_line(frame(payload), sync);
}

bool ResultsStore::append_framed(std::string_view line, bool sync) {
  if (!unframe(line)) return false;
  return write_line(line, sync);
}

StoreScan ResultsStore::scan(std::string* error) const {
  StoreScan out;
  std::ifstream in(path_, std::ios::binary);
  if (!in) return out;  // absent store == empty store
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) break;  // torn: no terminating newline
    auto payload = unframe(std::string_view(text).substr(pos, nl - pos));
    if (!payload) break;  // torn or corrupt frame
    out.records.push_back(StoreRecord{std::move(*payload), pos});
    pos = nl + 1;
  }
  out.valid_bytes = pos;
  out.torn_tail = pos < text.size();
  if (out.torn_tail && error != nullptr) {
    *error = path_ + ": torn tail at byte " + std::to_string(pos) + " (" +
             std::to_string(text.size() - pos) + " bytes dropped)";
  }
  return out;
}

bool ResultsStore::repair(std::string* error) {
  const StoreScan s = scan();
  if (!s.torn_tail) return true;
  // Close the append fd around the truncate so the kernel offset and
  // the file agree afterwards.
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (::truncate(path_.c_str(), static_cast<off_t>(s.valid_bytes)) != 0) {
    if (error != nullptr) {
      *error = path_ + ": truncate failed: " + std::strerror(errno);
    }
    return false;
  }
  return true;
}

}  // namespace leak::serve
