#include "src/serve/job.hpp"

#include "src/crypto/sha256.hpp"
#include "src/support/crc32.hpp"

namespace leak::serve {

namespace {

/// The identity core: everything that determines the numbers.
[[nodiscard]] json::Value identity_json(const JobSpec& job) {
  json::Value doc = json::Value::object();
  doc.set("scenario", job.scenario);
  doc.set("params", job.base.to_json());
  doc.set("axes", scenario::axes_to_json(job.axes));
  doc.set("vary_seed", job.config.vary_seed);
  return doc;
}

}  // namespace

scenario::ParamSet JobSpec::cell_params(std::size_t index) const {
  scenario::ParamSet cell =
      scenario::sweep_cell_params(base, axes, index, config.vary_seed);
  cell.set("threads", std::int64_t{1});
  return cell;
}

std::string JobSpec::id() const {
  const auto digest = crypto::sha256(identity_json(*this).dump());
  return crypto::to_hex(digest).substr(0, 16);
}

std::uint32_t JobSpec::cell_fingerprint(std::size_t index) const {
  return crc32::of(scenario + "\n" + cell_params(index).to_json().dump());
}

json::Value JobSpec::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("version", std::int64_t{1});
  doc.set("scenario", scenario);
  doc.set("params", base.to_json());
  doc.set("axes", scenario::axes_to_json(axes));
  json::Value cfg = json::Value::object();
  cfg.set("vary_seed", config.vary_seed);
  cfg.set("workers", static_cast<std::int64_t>(config.workers));
  cfg.set("max_retries", static_cast<std::int64_t>(config.max_retries));
  doc.set("config", std::move(cfg));
  return doc;
}

std::optional<JobSpec> JobSpec::from_json(
    const scenario::ScenarioRegistry& registry, const json::Value& doc,
    std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("job manifest must be a JSON object");
  const json::Value* version = doc.find("version");
  if (version != nullptr && (!version->is_int() || version->as_int() != 1)) {
    return fail("unsupported job manifest version");
  }
  const json::Value* name = doc.find("scenario");
  if (name == nullptr || !name->is_string()) {
    return fail("job manifest needs a \"scenario\" string");
  }
  const scenario::Scenario* sc = registry.find(name->as_string());
  if (sc == nullptr) {
    return fail("unknown scenario \"" + name->as_string() + "\"");
  }

  JobSpec job;
  job.scenario = name->as_string();

  std::string sub_error;
  const json::Value* params = doc.find("params");
  if (params != nullptr) {
    auto set = sc->spec().params_from_json(*params, &sub_error);
    if (!set) return fail("params: " + sub_error);
    job.base = std::move(*set);
  } else {
    job.base = sc->spec().defaults();
  }

  const json::Value* axes = doc.find("axes");
  if (axes != nullptr) {
    auto parsed = scenario::axes_from_json(sc->spec(), *axes, &sub_error);
    if (!parsed) return fail(sub_error);
    job.axes = std::move(*parsed);
  }

  const json::Value* cfg = doc.find("config");
  if (cfg != nullptr) {
    if (!cfg->is_object()) return fail("\"config\" must be an object");
    for (const auto& [key, value] : cfg->as_object()) {
      if (key == "vary_seed" && value.is_bool()) {
        job.config.vary_seed = value.as_bool();
      } else if (key == "workers" && value.is_int() && value.as_int() > 0) {
        job.config.workers = static_cast<unsigned>(value.as_int());
      } else if (key == "max_retries" && value.is_int() &&
                 value.as_int() >= 0) {
        job.config.max_retries = static_cast<unsigned>(value.as_int());
      } else {
        return fail("config: unknown or ill-typed key \"" + key + "\"");
      }
    }
  }
  if (auto err = sc->spec().validate(job.base)) {
    return fail("params: " + *err);
  }
  return job;
}

}  // namespace leak::serve
