#include "src/serve/worker.hpp"

#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/serve/store.hpp"
#include "src/support/crc32.hpp"
#include "src/support/parse.hpp"

namespace leak::serve {

namespace {

[[nodiscard]] bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Blocking single-line read (task lines are a few bytes; the
/// byte-at-a-time read is irrelevant next to a multi-ms cell run).
[[nodiscard]] bool read_line(int fd, std::string* line) {
  line->clear();
  for (;;) {
    char c = 0;
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;  // EOF: parent is gone
    if (c == '\n') return true;
    line->push_back(c);
  }
}

/// Child main: serve task lines until EXIT/EOF, then _exit.
[[noreturn]] void run_worker_loop(const scenario::Scenario& sc,
                                  const JobSpec& job,
                                  const WorkerOptions& options, int task_fd,
                                  int result_fd) {
  std::string line;
  unsigned completed = 0;
  while (read_line(task_fd, &line)) {
    if (line == "EXIT") break;
    if (line.rfind("RUN ", 0) != 0) break;  // protocol error: bail out
    const auto index = parse::u64(std::string_view(line).substr(4));
    if (!index || *index >= job.cell_count()) break;
    if (options.test_abort_after > 0 && options.generation == 0 &&
        completed >= options.test_abort_after) {
      ::_exit(42);  // simulated crash: the in-flight cell is lost
    }
    json::Value payload;
    try {
      const scenario::ScenarioResult result =
          sc.run(job.cell_params(*index));
      payload = cell_record(job, *index, result);
    } catch (const std::exception& e) {
      payload = error_record(job, *index, e.what());
    }
    if (!write_all(result_fd, ResultsStore::frame(payload) + "\n")) break;
    ++completed;
  }
  ::_exit(0);
}

}  // namespace

void Worker::close_fds() {
  if (task_fd >= 0) ::close(task_fd);
  if (result_fd >= 0) ::close(result_fd);
  task_fd = -1;
  result_fd = -1;
}

std::optional<Worker> spawn_worker(const scenario::Scenario& sc,
                                   const JobSpec& job,
                                   const WorkerOptions& options,
                                   const std::vector<int>& close_in_child,
                                   std::string* error) {
  int task_pipe[2] = {-1, -1};    // [0] child reads, [1] parent writes
  int result_pipe[2] = {-1, -1};  // [0] parent reads, [1] child writes
  if (::pipe(task_pipe) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return std::nullopt;
  }
  if (::pipe(result_pipe) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    ::close(task_pipe[0]);
    ::close(task_pipe[1]);
    return std::nullopt;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    for (const int fd : {task_pipe[0], task_pipe[1], result_pipe[0],
                         result_pipe[1]}) {
      ::close(fd);
    }
    return std::nullopt;
  }
  if (pid == 0) {
    // Child: drop the parent-side ends and every sibling fd, so a
    // sibling can't hold this worker's pipes open past its death.
    ::close(task_pipe[1]);
    ::close(result_pipe[0]);
    for (const int fd : close_in_child) {
      if (fd >= 0) ::close(fd);
    }
    run_worker_loop(sc, job, options, task_pipe[0], result_pipe[1]);
  }
  // Parent.
  ::close(task_pipe[0]);
  ::close(result_pipe[1]);
  Worker w;
  w.pid = pid;
  w.task_fd = task_pipe[1];
  w.result_fd = result_pipe[0];
  w.generation = options.generation;
  return w;
}

bool send_task(Worker& worker, std::size_t cell) {
  if (!write_all(worker.task_fd, "RUN " + std::to_string(cell) + "\n")) {
    return false;
  }
  worker.in_flight = cell;
  return true;
}

bool send_exit(Worker& worker) {
  worker.exiting = true;
  return write_all(worker.task_fd, "EXIT\n");
}

json::Value cell_record(const JobSpec& job, std::size_t index,
                        const scenario::ScenarioResult& result) {
  json::Value doc = json::Value::object();
  doc.set("type", "cell");
  doc.set("job", job.id());
  doc.set("cell", static_cast<std::int64_t>(index));
  doc.set("fp", crc32::to_hex(job.cell_fingerprint(index)));
  doc.set("result", result.to_json());
  return doc;
}

json::Value error_record(const JobSpec& job, std::size_t index,
                         const std::string& what) {
  json::Value doc = json::Value::object();
  doc.set("type", "error");
  doc.set("job", job.id());
  doc.set("cell", static_cast<std::int64_t>(index));
  doc.set("what", what);
  return doc;
}

}  // namespace leak::serve
