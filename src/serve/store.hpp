// Append-only JSONL results store: the durable half of the sweep
// service.  Every completed sweep cell is one CRC-framed line
//
//   <crc32 hex of payload> <compact JSON payload>\n
//
// appended with a single write(2) and fsync'd, so the store survives
// kill -9 at any instant with at most one torn tail line.  scan()
// stops at the first invalid line (bad frame, CRC mismatch, missing
// newline) and reports where the valid prefix ends; repair()
// truncates the torn tail so appends continue from a clean boundary.
// One writer at a time (the service process) — readers are safe at
// any time because a record is only visible once its newline landed.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/json.hpp"

namespace leak::serve {

/// One validated record scanned from the store.
struct StoreRecord {
  json::Value payload;
  std::size_t offset = 0;  ///< byte offset of the line start
};

/// Result of a full scan: the valid record prefix plus where it ends.
struct StoreScan {
  std::vector<StoreRecord> records;
  std::size_t valid_bytes = 0;  ///< offset one past the last valid line
  bool torn_tail = false;       ///< bytes after valid_bytes were dropped
};

class ResultsStore {
 public:
  explicit ResultsStore(std::string path);
  ~ResultsStore();

  ResultsStore(const ResultsStore&) = delete;
  ResultsStore& operator=(const ResultsStore&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }

  /// Append one payload as a framed line (O_APPEND, one write call);
  /// fsyncs before returning when `sync`.  Returns false on I/O error.
  [[nodiscard]] bool append(const json::Value& payload, bool sync = true);

  /// Append an already-framed line (as produced by frame(), without
  /// the trailing newline), re-validating it first.  This is the
  /// worker-protocol fast path: workers send framed lines over their
  /// result pipe and the service appends them verbatim.
  [[nodiscard]] bool append_framed(std::string_view line, bool sync = true);

  /// Scan from the start.  A missing file scans as empty (not an
  /// error).  Never modifies the file.
  [[nodiscard]] StoreScan scan(std::string* error = nullptr) const;

  /// Truncate any torn tail so the file ends at the last valid
  /// record.  Returns false on I/O error.
  [[nodiscard]] bool repair(std::string* error = nullptr);

  /// Frame one payload: "<crc32 hex> <compact JSON>" (no newline).
  [[nodiscard]] static std::string frame(const json::Value& payload);

  /// Parse one framed line (no newline); nullopt when the frame is
  /// malformed, the CRC mismatches, or the payload is not valid JSON.
  [[nodiscard]] static std::optional<json::Value> unframe(
      std::string_view line);

 private:
  [[nodiscard]] bool write_line(std::string_view line, bool sync);

  std::string path_;
  int fd_ = -1;  ///< lazily-opened append fd, owned
};

}  // namespace leak::serve
