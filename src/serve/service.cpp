#include "src/serve/service.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>

#include "src/serve/store.hpp"
#include "src/serve/worker.hpp"
#include "src/support/crc32.hpp"

namespace leak::serve {

namespace {

[[nodiscard]] bool write_all(int fd, std::string_view data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// mkdir -p: every component, EEXIST is fine.
[[nodiscard]] bool make_dirs(const std::string& path) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    const std::size_t end = slash == std::string::npos ? path.size() : slash;
    prefix.assign(path, 0, end);
    pos = end + 1;
    if (prefix.empty() || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
    if (slash == std::string::npos) break;
  }
  return true;
}

/// Durable atomic file replace: write <path>.tmp, fsync, rename.
[[nodiscard]] bool atomic_write(const std::string& path,
                                const std::string& text) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return false;
  const bool ok = write_all(fd, text) && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  return ::rename(tmp.c_str(), path.c_str()) == 0;
}

[[nodiscard]] bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Validated view of one store record against a loaded job.
struct LedgerEntry {
  std::size_t cell = 0;
  bool is_error = false;
  json::Value payload;
};

[[nodiscard]] std::optional<LedgerEntry> validate_record(
    const JobSpec& job, const std::string& id, const json::Value& payload,
    std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (!payload.is_object()) return fail("store record is not an object");
  const json::Value* type = payload.find("type");
  const json::Value* rec_job = payload.find("job");
  const json::Value* cell = payload.find("cell");
  if (type == nullptr || !type->is_string() || rec_job == nullptr ||
      !rec_job->is_string() || cell == nullptr || !cell->is_int() ||
      cell->as_int() < 0) {
    return fail("store record is missing type/job/cell");
  }
  if (rec_job->as_string() != id) {
    return fail("store record belongs to job " + rec_job->as_string() +
                ", not " + id);
  }
  LedgerEntry entry;
  entry.cell = static_cast<std::size_t>(cell->as_int());
  if (entry.cell >= job.cell_count()) {
    return fail("store record cell " + std::to_string(entry.cell) +
                " is out of range");
  }
  if (type->as_string() == "error") {
    entry.is_error = true;
  } else if (type->as_string() == "cell") {
    const json::Value* fp = payload.find("fp");
    if (fp == nullptr || !fp->is_string() ||
        fp->as_string() != crc32::to_hex(job.cell_fingerprint(entry.cell))) {
      return fail("store record for cell " + std::to_string(entry.cell) +
                  " does not match the manifest (fingerprint mismatch)");
    }
    if (payload.find("result") == nullptr) {
      return fail("store record for cell " + std::to_string(entry.cell) +
                  " has no result");
    }
  } else {
    return fail("store record has unknown type \"" + type->as_string() +
                "\"");
  }
  entry.payload = payload;
  return entry;
}

/// Rebuild one cell result with meta.wall_ms zeroed (json::Value has
/// no mutable nested access; set() replaces in place on a copy).
[[nodiscard]] json::Value zero_wall_ms(const json::Value& result) {
  if (!result.is_object()) return result;
  const json::Value* meta = result.find("meta");
  if (meta == nullptr || !meta->is_object()) return result;
  json::Value new_meta = *meta;
  new_meta.set("wall_ms", 0.0);
  json::Value out = result;
  out.set("meta", std::move(new_meta));
  return out;
}

/// CSV field for a scalar JSON value (strings unquoted, numbers via
/// the deterministic serializer).
[[nodiscard]] std::string csv_field(const json::Value& v) {
  return v.is_string() ? v.as_string() : v.dump();
}

}  // namespace

JobService::JobService(const scenario::ScenarioRegistry& registry,
                       std::string jobs_dir)
    : registry_(registry), jobs_dir_(std::move(jobs_dir)) {}

std::string JobService::job_dir(const std::string& id) const {
  return jobs_dir_ + "/" + id;
}

std::optional<std::string> JobService::submit(const JobSpec& job,
                                              std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  const scenario::Scenario* sc = registry_.find(job.scenario);
  if (sc == nullptr) {
    return fail("unknown scenario \"" + job.scenario + "\"");
  }
  if (auto err = sc->spec().validate(job.base)) return fail(*err);
  if (job.cell_count() == 0) return fail("job has no cells (empty axis)");
  const std::string id = job.id();
  const std::string dir = job_dir(id);
  if (!make_dirs(dir)) {
    return fail(dir + ": cannot create job directory");
  }
  const std::string manifest = dir + "/manifest.json";
  if (file_exists(manifest)) {
    // Content-addressed id: an existing manifest is the same
    // experiment.  Re-submitting resumes it instead of duplicating.
    return id;
  }
  if (!atomic_write(manifest, job.to_json().dump(2) + "\n")) {
    return fail(manifest + ": cannot write manifest");
  }
  return id;
}

std::optional<JobSpec> JobService::load(const std::string& id,
                                        std::string* error) const {
  const std::string manifest = job_dir(id) + "/manifest.json";
  auto doc = json::Value::load_file(manifest, error);
  if (!doc) return std::nullopt;
  auto job = JobSpec::from_json(registry_, *doc, error);
  if (!job) return std::nullopt;
  if (job->id() != id) {
    if (error != nullptr) {
      *error = manifest + ": manifest identity " + job->id() +
               " does not match job directory " + id;
    }
    return std::nullopt;
  }
  return job;
}

std::optional<JobStatus> JobService::status(const std::string& id,
                                            std::string* error) const {
  auto job = load(id, error);
  if (!job) return std::nullopt;
  JobStatus st;
  st.id = id;
  st.scenario = job->scenario;
  st.total_cells = job->cell_count();
  const ResultsStore store(job_dir(id) + "/results.jsonl");
  const StoreScan scan = store.scan(error);
  std::vector<std::uint8_t> done(st.total_cells, 0);
  for (const StoreRecord& rec : scan.records) {
    auto entry = validate_record(*job, id, rec.payload, nullptr);
    if (entry && done[entry->cell] == 0) {
      done[entry->cell] = 1;
      ++st.done_cells;
    }
  }
  st.merged = file_exists(job_dir(id) + "/merged.json");
  return st;
}

std::vector<JobStatus> JobService::list(std::string* error) const {
  std::vector<JobStatus> out;
  DIR* dir = ::opendir(jobs_dir_.c_str());
  if (dir == nullptr) return out;  // no directory yet: no jobs
  while (const dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (!file_exists(job_dir(name) + "/manifest.json")) continue;
    if (auto st = status(name, error)) out.push_back(std::move(*st));
  }
  ::closedir(dir);
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) { return a.id < b.id; });
  return out;
}

std::optional<RunStats> JobService::run(const std::string& id,
                                        const RunOptions& options,
                                        std::string* error) {
  auto job = load(id, error);
  if (!job) return std::nullopt;
  const scenario::Scenario* sc = registry_.find(job->scenario);

  ResultsStore store(job_dir(id) + "/results.jsonl");
  StoreScan scan = store.scan(error);
  if (scan.torn_tail && !store.repair(error)) return std::nullopt;

  RunStats stats;
  stats.total_cells = job->cell_count();
  std::vector<std::uint8_t> done(stats.total_cells, 0);
  std::vector<json::Value> payloads(stats.total_cells);
  bool had_errors = false;
  for (const StoreRecord& rec : scan.records) {
    auto entry = validate_record(*job, id, rec.payload, error);
    if (!entry) return std::nullopt;
    if (done[entry->cell] != 0) continue;
    done[entry->cell] = 1;
    had_errors = had_errors || entry->is_error;
    payloads[entry->cell] = std::move(entry->payload);
    ++stats.already_done;
  }

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < stats.total_cells; ++i) {
    if (done[i] == 0) pending.push_back(i);
  }

  const unsigned max_retries =
      options.max_retries != 0 ? options.max_retries : job->config.max_retries;
  std::vector<unsigned> attempts(stats.total_cells, 0);

  // Writing to a pipe whose worker died must surface as an error
  // return, not a fatal SIGPIPE.  Save/restore the disposition so the
  // service is embeddable (tests, leakctl) without global side effects.
  struct sigaction ignore_pipe{};
  ignore_pipe.sa_handler = SIG_IGN;
  struct sigaction saved_pipe{};
  ::sigaction(SIGPIPE, &ignore_pipe, &saved_pipe);

  std::vector<Worker> workers;
  unsigned consecutive_respawns = 0;
  std::string run_error;

  const auto sibling_fds = [&](std::size_t self) {
    std::vector<int> fds;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (i == self) continue;
      if (workers[i].task_fd >= 0) fds.push_back(workers[i].task_fd);
      if (workers[i].result_fd >= 0) fds.push_back(workers[i].result_fd);
    }
    return fds;
  };
  const auto spawn_slot = [&](std::size_t slot, unsigned generation) {
    WorkerOptions wopts;
    wopts.generation = generation;
    wopts.test_abort_after = options.test_worker_abort_after;
    std::string spawn_error;
    auto w = spawn_worker(*sc, *job, wopts, sibling_fds(slot), &spawn_error);
    if (!w) {
      run_error = "cannot spawn worker: " + spawn_error;
      return false;
    }
    workers[slot] = std::move(*w);
    return true;
  };
  const auto reap = [](Worker& w) {
    w.close_fds();
    if (w.pid > 0) {
      int wstatus = 0;
      while (::waitpid(w.pid, &wstatus, 0) < 0 && errno == EINTR) {
      }
      w.pid = -1;
    }
    w.in_flight.reset();
  };
  // Process one framed record line from a worker.  Returns false on a
  // fatal error (run_error set).
  const auto handle_line = [&](Worker& w, const std::string& line) {
    auto payload = ResultsStore::unframe(line);
    if (!payload) {
      run_error = "worker sent a corrupt record line";
      return false;
    }
    auto entry = validate_record(*job, id, *payload, &run_error);
    if (!entry) return false;
    if (!w.in_flight || *w.in_flight != entry->cell) {
      run_error = "worker answered cell " + std::to_string(entry->cell) +
                  " out of turn";
      return false;
    }
    if (!store.append_framed(line, options.fsync_records)) {
      run_error = store.path() + ": append failed";
      return false;
    }
    if (done[entry->cell] == 0) {
      done[entry->cell] = 1;
      had_errors = had_errors || entry->is_error;
      payloads[entry->cell] = std::move(entry->payload);
      ++stats.executed;
    }
    w.in_flight.reset();
    consecutive_respawns = 0;
    return true;
  };

  unsigned worker_count =
      options.workers != 0 ? options.workers : job->config.workers;
  worker_count = std::max(1u, worker_count);
  worker_count = static_cast<unsigned>(std::min<std::size_t>(
      worker_count, std::max<std::size_t>(1, pending.size())));
  workers.resize(worker_count);
  for (std::size_t slot = 0; slot < workers.size() && run_error.empty();
       ++slot) {
    if (!pending.empty() && !spawn_slot(slot, /*generation=*/0)) break;
  }

  while (run_error.empty()) {
    const bool budget_left =
        options.max_cells == 0 || stats.executed < options.max_cells;
    // Count every in-flight cell before assigning any new ones: the
    // budget check below must see the whole outstanding set, not just
    // the workers already visited in this pass.
    std::size_t in_flight = 0;
    std::size_t live = 0;
    for (const Worker& w : workers) {
      if (w.pid < 0) continue;
      ++live;
      if (w.in_flight) ++in_flight;
    }
    for (Worker& w : workers) {
      if (w.pid < 0 || w.in_flight || w.exiting) continue;
      std::size_t budget_room =
          options.max_cells == 0
              ? pending.size()
              : options.max_cells -
                    std::min<std::size_t>(options.max_cells,
                                          stats.executed + in_flight);
      if (!pending.empty() && budget_room > 0) {
        const std::size_t cell = pending.front();
        pending.pop_front();
        if (send_task(w, cell)) {
          ++in_flight;
        } else {
          // Dead pipe: the EOF path below reaps and retries.
          pending.push_front(cell);
        }
      } else if (!send_exit(w)) {
        w.exiting = true;  // dead pipe: EOF path reaps it
      }
    }
    if (in_flight == 0 && (pending.empty() || !budget_left)) break;
    if (live == 0) {
      // Work remains but every worker is gone (all spawns failed).
      if (run_error.empty()) run_error = "no live workers";
      break;
    }

    std::vector<pollfd> fds;
    std::vector<std::size_t> slot_of;
    for (std::size_t i = 0; i < workers.size(); ++i) {
      if (workers[i].pid < 0 || workers[i].result_fd < 0) continue;
      fds.push_back(pollfd{workers[i].result_fd, POLLIN, 0});
      slot_of.push_back(i);
    }
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      run_error = std::string("poll: ") + std::strerror(errno);
      break;
    }
    for (std::size_t k = 0; k < fds.size() && run_error.empty(); ++k) {
      if ((fds[k].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Worker& w = workers[slot_of[k]];
      char chunk[4096];
      const ssize_t n = ::read(w.result_fd, chunk, sizeof chunk);
      if (n < 0) {
        if (errno == EINTR) continue;
        run_error = std::string("read: ") + std::strerror(errno);
        break;
      }
      if (n > 0) {
        w.buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl = 0;
        while ((nl = w.buf.find('\n')) != std::string::npos) {
          const std::string line = w.buf.substr(0, nl);
          w.buf.erase(0, nl + 1);
          if (!handle_line(w, line)) break;
        }
        continue;
      }
      // EOF: the worker is gone.
      const bool was_exiting = w.exiting;
      const std::optional<std::size_t> lost = w.in_flight;
      const unsigned generation = w.generation;
      reap(w);
      if (was_exiting) continue;
      if (lost) {
        if (++attempts[*lost] > max_retries) {
          run_error = "cell " + std::to_string(*lost) + " failed after " +
                      std::to_string(attempts[*lost]) + " attempts";
          break;
        }
        pending.push_front(*lost);
      }
      if (pending.empty()) continue;
      ++stats.respawns;
      ++consecutive_respawns;
      if (options.backoff_ms > 0) {
        const unsigned shift = std::min(consecutive_respawns - 1, 4u);
        const unsigned delay =
            std::min(options.backoff_ms << shift, 1000u);
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
      if (!spawn_slot(slot_of[k], generation + 1)) break;
    }
  }

  // Shut the pool down: EXIT every live worker, drain, reap.
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    if (!w.exiting) (void)send_exit(w);
  }
  for (Worker& w : workers) {
    if (w.pid < 0) continue;
    // Drain any record that raced the EXIT (none expected: EXIT is
    // only sent to idle workers, but be safe on error paths).
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(w.result_fd, chunk, sizeof chunk);
      if (n > 0) continue;
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    reap(w);
  }
  ::sigaction(SIGPIPE, &saved_pipe, nullptr);

  if (!run_error.empty()) {
    if (error != nullptr) *error = run_error;
    return std::nullopt;
  }

  const bool all_done =
      std::all_of(done.begin(), done.end(),
                  [](std::uint8_t d) { return d != 0; });
  if (all_done && !had_errors) {
    json::Value merged_doc = json::Value::object();
    merged_doc.set("scenario", job->scenario);
    merged_doc.set("job", id);
    merged_doc.set("axes", scenario::axes_to_json(job->axes));
    json::Value cells = json::Value::array();
    for (std::size_t i = 0; i < stats.total_cells; ++i) {
      cells.push_back(*payloads[i].find("result"));
    }
    merged_doc.set("cells", std::move(cells));
    if (!atomic_write(job_dir(id) + "/merged.json",
                      merged_doc.dump(2) + "\n")) {
      if (error != nullptr) {
        *error = job_dir(id) + "/merged.json: cannot write";
      }
      return std::nullopt;
    }
    stats.completed = true;
  } else if (all_done && had_errors && error != nullptr) {
    // Not a run failure — the store faithfully records the throwing
    // cells — but the job cannot merge.  Report which cells failed.
    std::string cells_list;
    for (std::size_t i = 0; i < stats.total_cells; ++i) {
      const json::Value* type = payloads[i].find("type");
      if (type != nullptr && type->as_string() == "error") {
        if (!cells_list.empty()) cells_list += ", ";
        cells_list += std::to_string(i);
      }
    }
    *error = "cells failed: " + cells_list;
  }
  return stats;
}

std::optional<json::Value> JobService::merged(const std::string& id,
                                              bool canonical,
                                              std::string* error) const {
  const std::string path = job_dir(id) + "/merged.json";
  auto doc = json::Value::load_file(path, error);
  if (!doc) {
    if (error != nullptr && !file_exists(path)) {
      *error = "job " + id + " has no merged result (not complete; " +
               "run `leakctl resume " + id + "`)";
    }
    return std::nullopt;
  }
  if (canonical) return canonicalize(std::move(*doc));
  return doc;
}

json::Value JobService::canonicalize(json::Value merged) {
  const json::Value* cells = merged.find("cells");
  if (cells == nullptr || !cells->is_array()) return merged;
  json::Value out_cells = json::Value::array();
  for (const json::Value& cell : cells->as_array()) {
    out_cells.push_back(zero_wall_ms(cell));
  }
  merged.set("cells", std::move(out_cells));
  return merged;
}

std::string JobService::merged_to_csv(const json::Value& merged) {
  const json::Value* cells = merged.find("cells");
  if (cells == nullptr || !cells->is_array() || cells->size() == 0) {
    return "";
  }
  std::vector<std::string> axis_names;
  const json::Value* axes = merged.find("axes");
  if (axes != nullptr && axes->is_array()) {
    for (const json::Value& axis : axes->as_array()) {
      const json::Value* name = axis.find("param");
      if (name != nullptr && name->is_string()) {
        axis_names.push_back(name->as_string());
      }
    }
  }
  std::vector<std::string> metric_names;
  if (const json::Value* metrics = cells->at(0).find("metrics")) {
    for (const auto& [name, value] : metrics->as_object()) {
      (void)value;
      metric_names.push_back(name);
    }
  }
  std::string csv = "cell";
  for (const std::string& name : axis_names) csv += "," + name;
  for (const std::string& name : metric_names) csv += "," + name;
  csv += "\n";
  for (std::size_t i = 0; i < cells->size(); ++i) {
    const json::Value& cell = cells->at(i);
    csv += std::to_string(i);
    const json::Value* params = cell.find("params");
    for (const std::string& name : axis_names) {
      const json::Value* v =
          params != nullptr && params->is_object() ? params->find(name)
                                                   : nullptr;
      csv += ",";
      if (v != nullptr) csv += csv_field(*v);
    }
    const json::Value* metrics = cell.find("metrics");
    for (const std::string& name : metric_names) {
      const json::Value* v =
          metrics != nullptr && metrics->is_object() ? metrics->find(name)
                                                     : nullptr;
      csv += ",";
      if (v != nullptr) csv += csv_field(*v);
    }
    csv += "\n";
  }
  return csv;
}

}  // namespace leak::serve
