// JobService: the sweep service over a jobs directory.
//
//   <jobs_dir>/<job_id>/manifest.json   submitted JobSpec (atomic write)
//   <jobs_dir>/<job_id>/results.jsonl   append-only cell ledger (store.hpp)
//   <jobs_dir>/<job_id>/merged.json     complete merged artifact (atomic)
//
// run() executes exactly the cells the ledger is missing, sharding
// them across forked worker subprocesses (worker.hpp), appending one
// fsync'd record per completed cell, and retrying cells lost to a
// dead worker with a bounded exponential backoff.  Because cell
// identity is pure (scenario, manifest, index) — StreamSeeder seeding,
// no placement dependence — a job kill -9'd mid-run and resumed
// produces a merged artifact bit-identical (modulo wall-clock
// metadata; see canonicalize) to an uninterrupted run, and re-running
// a completed job executes zero cells.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/serve/job.hpp"
#include "src/support/json.hpp"

namespace leak::serve {

struct RunOptions {
  /// Worker subprocesses (0 = the job's config.workers).
  unsigned workers = 0;
  /// Per-cell retry budget on worker death (0 = the job's config).
  unsigned max_retries = 0;
  /// Stop cleanly after this many newly-executed cells (0 = run to
  /// completion).  The budget makes interruption deterministic in
  /// tests and lets an operator drain a huge job incrementally.
  std::size_t max_cells = 0;
  /// Base respawn backoff in ms; doubles per consecutive respawn,
  /// capped at 1 s.  Tests set 0.
  unsigned backoff_ms = 50;
  /// fsync every appended record (the durability contract; tests that
  /// only exercise scheduling may turn it off).
  bool fsync_records = true;
  /// Forwarded to WorkerOptions::test_abort_after.
  unsigned test_worker_abort_after = 0;
};

struct RunStats {
  std::size_t total_cells = 0;
  std::size_t already_done = 0;  ///< ledger hits before this run
  std::size_t executed = 0;      ///< cells run (and recorded) this run
  std::size_t respawns = 0;      ///< workers respawned after dying
  bool completed = false;        ///< merged.json written (job is done)
};

struct JobStatus {
  std::string id;
  std::string scenario;
  std::size_t total_cells = 0;
  std::size_t done_cells = 0;
  bool merged = false;
};

class JobService {
 public:
  JobService(const scenario::ScenarioRegistry& registry,
             std::string jobs_dir);

  [[nodiscard]] const std::string& jobs_dir() const { return jobs_dir_; }
  [[nodiscard]] std::string job_dir(const std::string& id) const;

  /// Create <jobs_dir>/<id>/manifest.json (atomically; idempotent for
  /// an identical manifest — the id is a content hash, so the same
  /// experiment resumes instead of duplicating).  Returns the job id.
  [[nodiscard]] std::optional<std::string> submit(const JobSpec& job,
                                                  std::string* error);

  /// Load a job's manifest back, validated against the registry.
  [[nodiscard]] std::optional<JobSpec> load(const std::string& id,
                                            std::string* error) const;

  [[nodiscard]] std::optional<JobStatus> status(const std::string& id,
                                                std::string* error) const;

  /// Every job in the directory, sorted by id.
  [[nodiscard]] std::vector<JobStatus> list(std::string* error) const;

  /// Run/resume: repair the ledger's torn tail if any, execute the
  /// missing cells, and write merged.json once every cell is present.
  [[nodiscard]] std::optional<RunStats> run(const std::string& id,
                                            const RunOptions& options,
                                            std::string* error);

  /// The merged artifact ({"scenario", "job", "axes", "cells": [...]}).
  /// With `canonical`, wall-clock metadata (meta.wall_ms) is zeroed in
  /// every cell so two runs of the same job compare byte-for-byte.
  [[nodiscard]] std::optional<json::Value> merged(const std::string& id,
                                                  bool canonical,
                                                  std::string* error) const;

  /// Zero the nondeterministic metadata of a merged artifact.
  [[nodiscard]] static json::Value canonicalize(json::Value merged);

  /// CSV summary of a merged artifact: one row per cell, axis params
  /// then the first cell's metrics.
  [[nodiscard]] static std::string merged_to_csv(const json::Value& merged);

 private:
  const scenario::ScenarioRegistry& registry_;
  std::string jobs_dir_;
};

}  // namespace leak::serve
