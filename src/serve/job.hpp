// Job manifest for the sweep service: one job = one scenario, a full
// base parameter set, optional sweep axes, and run configuration.
// The manifest round-trips through JSON (the on-disk
// <jobs>/<id>/manifest.json), and the job id is a content hash of the
// experiment identity (scenario + params + axes + vary_seed) — the
// same experiment always maps to the same job, so a re-submit resumes
// instead of duplicating work.
//
// Cell identity is delegated to scenario::sweep_cell_params, the same
// function run_sweep uses, so cell i of a served job is bit-identical
// to cell i of a foreground `leakctl sweep` with the same inputs —
// except that serve pins each cell to one inner thread (the shard is
// the parallelism unit), which by the thread-invariance guarantee
// changes metadata only, never numbers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/scenario/registry.hpp"
#include "src/scenario/sweep.hpp"
#include "src/support/json.hpp"

namespace leak::serve {

struct JobConfig {
  /// Derive per-cell seeds from (base seed, cell index).
  bool vary_seed = false;
  /// Worker subprocesses to shard cells across.
  unsigned workers = 1;
  /// Re-run budget per cell when a worker dies mid-cell.
  unsigned max_retries = 2;
};

struct JobSpec {
  std::string scenario;
  scenario::ParamSet base;  ///< full parameter set (defaults filled)
  std::vector<scenario::SweepAxis> axes;  ///< empty = single-cell job
  JobConfig config;

  [[nodiscard]] std::size_t cell_count() const {
    return scenario::sweep_cell_count(axes);
  }

  /// Parameters of cell `index`: sweep_cell_params with the inner
  /// thread count pinned to 1 (serve's parallelism is the shard).
  [[nodiscard]] scenario::ParamSet cell_params(std::size_t index) const;

  /// Content-addressed job id: 16 hex chars of the SHA-256 of the
  /// identity core (scenario, base params, axes, vary_seed).  The
  /// worker/retry knobs are execution policy, not identity.
  [[nodiscard]] std::string id() const;

  /// Drift guard stamped into every store record: CRC-32 of the
  /// canonical serialization of cell `index`'s parameters.  A record
  /// whose fingerprint disagrees with the manifest (edited manifest,
  /// store copied between jobs) is rejected at resume time.
  [[nodiscard]] std::uint32_t cell_fingerprint(std::size_t index) const;

  /// Manifest document: {"version": 1, "scenario": ..., "params":
  /// {...}, "axes": [...], "config": {...}}.
  [[nodiscard]] json::Value to_json() const;

  /// Inverse of to_json, validated against the registry: the scenario
  /// must exist, params must satisfy its spec, and axes must name
  /// declared parameters with in-range values.  Returns nullopt and
  /// sets `error` on failure.
  [[nodiscard]] static std::optional<JobSpec> from_json(
      const scenario::ScenarioRegistry& registry, const json::Value& doc,
      std::string* error = nullptr);
};

}  // namespace leak::serve
