// The probabilistic bouncing attack's branch-assignment process
// (Section 5.3, Figure 8): every epoch each honest validator ends up on
// branch A with probability p0 and on branch B with probability 1 - p0,
// while Byzantine validators alternate branches to keep justification
// happening only every other epoch.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>

#include "src/support/random.hpp"

namespace leak::bouncing {

/// Eq 14 — the (open) interval of honest split p0 for which the attack
/// can continue: (2 - 3 b0) / (3 (1 - b0)) < p0 < 2 / (3 (1 - b0)).
/// Returns nullopt when the interval is empty (beta0 >= values where no
/// p0 works) — for beta0 in (0, 1/3) it is always non-empty.
std::optional<std::pair<double, double>> feasible_p0_interval(double beta0);

/// True when (p0, beta0) satisfies both attack conditions of Eq 14.
bool attack_feasible(double p0, double beta0);

/// Probability that the attack continues for k epochs when a Byzantine
/// proposer is needed within the j first slots of each epoch:
/// (1 - (1 - beta0)^j)^k  (Section 5.3).
double continuation_probability(double beta0, int j, std::uint64_t k);

/// Eq 15 — distribution of a validator's inactivity-score increment over
/// two epochs, from one branch's viewpoint.
struct TwoEpochIncrement {
  double p_plus8 = 0.0;   ///< inactive twice:        p0 (1-p0)
  double p_plus3 = 0.0;   ///< one epoch each:        p0^2 + (1-p0)^2
  double p_minus2 = 0.0;  ///< active twice:          p0 (1-p0)
};

/// Compute the Eq 15 probabilities for a given p0.
TwoEpochIncrement two_epoch_increment(double p0);

/// Sampler for the per-epoch branch assignment of one honest validator.
class BranchSampler {
 public:
  BranchSampler(double p0, Rng rng) : p0_(p0), rng_(rng) {}

  /// True = on branch A this epoch (active from A's viewpoint).
  bool on_branch_a() { return rng_.bernoulli(p0_); }

 private:
  double p0_;
  Rng rng_;
};

}  // namespace leak::bouncing
