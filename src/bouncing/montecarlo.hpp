// Monte Carlo cross-validation of the Section 5.3 analysis: simulate the
// exact discrete protocol dynamics (Eq 1 with the score floored at zero,
// Eq 2 penalties, ejection, stake cap) for honest validators randomly
// re-assigned to a branch every epoch (Figure 8), and measure empirically
// what the closed-form law of distribution.hpp predicts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/support/random.hpp"

namespace leak::bouncing {

struct McConfig {
  double p0 = 0.5;        ///< honest branch-assignment probability
  double beta0 = 0.33;    ///< Byzantine stake proportion
  std::size_t paths = 10000;
  std::size_t epochs = 8000;
  std::uint64_t seed = 7;
  /// Worker threads for the path fan-out; 0 = LEAK_THREADS env or
  /// hardware_concurrency.  Results are bit-identical for any value:
  /// path i always draws from the (seed, i) stream and paths merge in
  /// index order.
  unsigned threads = 0;
  analytic::AnalyticConfig model = analytic::AnalyticConfig::paper();
};

/// Empirical distribution snapshots of one honest validator's stake.
struct McResult {
  /// Epoch grid at which snapshots were taken.
  std::vector<std::size_t> epochs;
  /// stakes[k][i] = stake of path i at epochs[k] (0 when ejected).
  std::vector<std::vector<double>> stakes;
  /// Fraction of paths ejected by epochs[k].
  std::vector<double> ejected_fraction;
  /// Fraction of paths still at the cap (score never bit) at epochs[k].
  std::vector<double> capped_fraction;
  /// Empirical P[beta(t) > 1/3] at epochs[k] (Eq 23 criterion against
  /// the semi-active Byzantine stake, one branch).
  std::vector<double> prob_beta_exceeds;
};

/// Run the Monte Carlo; `snapshot_epochs` must be ascending and within
/// [1, cfg.epochs].
McResult run_bouncing_mc(const McConfig& cfg,
                         const std::vector<std::size_t>& snapshot_epochs);

/// Finite-population run: N honest validators per path, branch-level
/// Byzantine proportion measured per epoch on branch A.  Returns the
/// first epoch where beta exceeded 1/3 (or -1) for each path.
struct PopulationRunConfig {
  double p0 = 0.5;
  double beta0 = 0.33;
  std::uint32_t honest_validators = 200;
  std::size_t epochs = 6000;
  std::uint64_t seed = 11;
  analytic::AnalyticConfig model = analytic::AnalyticConfig::paper();
};

struct PopulationRunResult {
  /// Epoch when beta > 1/3 first held on branch A; -1 when never.
  std::int64_t first_exceed_epoch = -1;
  /// beta trajectory on branch A, sampled every `stride` epochs.
  std::vector<double> beta_trajectory;
  std::size_t stride = 16;
};

PopulationRunResult run_population_bouncing(const PopulationRunConfig& cfg);

/// Ensemble of independent finite-population runs ("population
/// paths"): path i re-runs run_population_bouncing with the seed of
/// stream (cfg.base.seed, i), fanned across the trial runner.
struct PopulationEnsembleConfig {
  PopulationRunConfig base;   ///< base.seed is the ensemble master seed
  std::size_t paths = 100;
  unsigned threads = 0;       ///< 0 = LEAK_THREADS / hardware_concurrency
};

struct PopulationEnsembleResult {
  /// Per path: epoch when beta first exceeded 1/3 on branch A; -1 never.
  std::vector<std::int64_t> first_exceed_epochs;
  /// Fraction of paths whose beta ever exceeded 1/3.
  double exceed_fraction = 0.0;
  /// Mean of the final sampled beta across paths.
  double mean_final_beta = 0.0;
};

PopulationEnsembleResult run_population_ensemble(
    const PopulationEnsembleConfig& cfg);

}  // namespace leak::bouncing
