// Monte Carlo cross-validation of the Section 5.3 analysis: simulate the
// exact discrete protocol dynamics (Eq 1 with the score floored at zero,
// Eq 2 penalties, ejection, stake cap) for honest validators randomly
// re-assigned to a branch every epoch (Figure 8), and measure empirically
// what the closed-form law of distribution.hpp predicts.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak::bouncing {

struct McConfig {
  double p0 = 0.5;        ///< honest branch-assignment probability
  double beta0 = 0.33;    ///< Byzantine stake proportion
  /// Branches of the rotation attack the exceedance criterion assumes:
  /// the Byzantine stake on the observed branch follows the 1-in-m
  /// duty-cycle decay (m = 2 is the paper's semi-active two-branch
  /// case and keeps every result bit-identical).  The honest dynamics
  /// are governed by p0 — set p0 = 1/branches for the symmetric
  /// m-branch attack.
  unsigned branches = 2;
  std::size_t paths = 10000;
  std::size_t epochs = 8000;
  std::uint64_t seed = 7;
  /// Worker threads for the path fan-out; 0 = LEAK_THREADS env or
  /// hardware_concurrency.  Results are bit-identical for any value:
  /// path i always draws from the (seed, i) stream and paths merge in
  /// index order.
  unsigned threads = 0;
  /// Paths simulated per lockstep block by the batched SoA kernel
  /// (src/kernel/stake_batch.hpp); 0 = LEAK_BLOCK env or the
  /// tuned default.  Results are bit-identical for any value,
  /// including block = 1 and block = paths.
  std::size_t block = 0;
  /// When false, the full per-path stake matrix is never materialized:
  /// McResult::stakes stays empty and only the streaming per-snapshot
  /// summaries are filled, so memory is O(snapshots x block) transient
  /// instead of O(snapshots x paths).  The summaries themselves are
  /// bit-identical between the two modes.
  bool keep_paths = true;
  analytic::AnalyticConfig model = analytic::AnalyticConfig::paper();
};

/// Empirical distribution snapshots of one honest validator's stake.
struct McResult {
  /// Epoch grid at which snapshots were taken.
  std::vector<std::size_t> epochs;
  /// stakes[k][i] = stake of path i at epochs[k] (0 when ejected).
  /// Empty when cfg.keep_paths == false (summary mode).
  std::vector<std::vector<double>> stakes;
  /// Fraction of paths ejected by epochs[k].
  std::vector<double> ejected_fraction;
  /// Fraction of paths still at the cap (score never bit) at epochs[k].
  std::vector<double> capped_fraction;
  /// Empirical P[beta(t) > 1/3] at epochs[k] (Eq 23 criterion against
  /// the semi-active Byzantine stake, one branch).
  std::vector<double> prob_beta_exceeds;
  /// Streaming per-snapshot summaries, filled in both modes (fed in
  /// path order, so bit-identical for any block/threads/mode):
  /// moments of the full censored sample at epochs[k]...
  std::vector<RunningStats> stake_stats;
  /// ...and the P-squared estimate of the median of the *alive*
  /// (stake > 0) paths at epochs[k] (0 when every path is ejected).
  /// In full mode the exact sample median is available from `stakes`.
  std::vector<double> median_alive_estimate;
};

/// Run the Monte Carlo through the batched lockstep kernel;
/// `snapshot_epochs` must be ascending and within [1, cfg.epochs].
/// The scalar reference kernel lives in tests/oracles/ (oracle only;
/// this batched path is bit-identical to it for every (block, threads)
/// pair — the kernel-parity suite enforces it).
McResult run_bouncing_mc(const McConfig& cfg,
                         const std::vector<std::size_t>& snapshot_epochs);

/// Finite-population run: N honest validators per path, branch-level
/// Byzantine proportion measured per epoch on branch A.  Returns the
/// first epoch where beta exceeded 1/3 (or -1) for each path.
struct PopulationRunConfig {
  double p0 = 0.5;
  double beta0 = 0.33;
  std::uint32_t honest_validators = 200;
  std::size_t epochs = 6000;
  std::uint64_t seed = 11;
  analytic::AnalyticConfig model = analytic::AnalyticConfig::paper();
};

struct PopulationRunResult {
  /// Epoch when beta > 1/3 first held on branch A; -1 when never.
  std::int64_t first_exceed_epoch = -1;
  /// beta trajectory on branch A, sampled every `stride` epochs.
  std::vector<double> beta_trajectory;
  std::size_t stride = 16;
};

PopulationRunResult run_population_bouncing(const PopulationRunConfig& cfg);

/// Ensemble of independent finite-population runs ("population
/// paths"): path i re-runs run_population_bouncing with the seed of
/// stream (cfg.base.seed, i), block-scheduled across the trial runner
/// into preallocated outcome slabs.
struct PopulationEnsembleConfig {
  PopulationRunConfig base;   ///< base.seed is the ensemble master seed
  std::size_t paths = 100;
  unsigned threads = 0;       ///< 0 = LEAK_THREADS / hardware_concurrency
  std::size_t block = 0;      ///< paths per block; 0 = LEAK_BLOCK / default
  /// When false, the per-path outcome slab is never materialized:
  /// first_exceed_epochs stays empty and only the aggregate fractions
  /// are filled via the runner's ordered reduction tree.  The
  /// aggregates are bit-identical between the two modes.
  bool keep_paths = true;
};

struct PopulationEnsembleResult {
  /// Per path: epoch when beta first exceeded 1/3 on branch A; -1 never.
  /// Empty when cfg.keep_paths == false (summary mode).
  std::vector<std::int64_t> first_exceed_epochs;
  /// Fraction of paths whose beta ever exceeded 1/3.
  double exceed_fraction = 0.0;
  /// Mean of the final sampled beta across paths.
  double mean_final_beta = 0.0;
};

PopulationEnsembleResult run_population_ensemble(
    const PopulationEnsembleConfig& cfg);

}  // namespace leak::bouncing
