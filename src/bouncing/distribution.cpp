#include "src/bouncing/distribution.hpp"

#include <algorithm>
#include <cmath>

#include "src/support/numeric.hpp"

namespace leak::bouncing {

StakeLaw::StakeLaw(double p0, const analytic::AnalyticConfig& cfg)
    : p0_(p0),
      q_(cfg.quotient),
      s0_(cfg.initial_stake),
      a_(cfg.ejection_threshold),
      b_(cfg.initial_stake),
      walk_(WalkParams::paper(p0)) {}

double StakeLaw::mu_ln(double t) const {
  // q ln(s/s0) has mean -V t^2 / 2 (integrated drift of the score walk).
  return std::log(s0_) - walk_.drift * t * t / (2.0 * q_);
}

double StakeLaw::sigma_ln(double t) const {
  // Variance of q ln(s/s0) is (2/3) D t^3 — half the paper's erf
  // denominator (4/3) D t^3 squared, consistent with Eq 19.
  return std::sqrt(2.0 / 3.0 * walk_.diffusion * t * t * t) / q_;
}

double StakeLaw::cdf_uncensored(double s, double t) const {
  if (t <= 0.0) return s >= s0_ ? 1.0 : 0.0;
  return num::lognormal_cdf(s, mu_ln(t), sigma_ln(t));
}

double StakeLaw::pdf_uncensored(double s, double t) const {
  if (t <= 0.0) return 0.0;
  return num::lognormal_pdf(s, mu_ln(t), sigma_ln(t));
}

double StakeLaw::mass_ejected(double t) const {
  return cdf_uncensored(a_, t);
}

double StakeLaw::mass_capped(double t) const {
  return 1.0 - cdf_uncensored(b_, t);
}

double StakeLaw::pdf_censored(double x, double t) const {
  if (x <= a_ || x >= b_) return 0.0;  // point masses handled separately
  return pdf_uncensored(x, t);
}

double StakeLaw::cdf_censored(double x, double t) const {
  // Eq 22: F(a) + H(x-a)[F(x) - F(a)] + H(x-b)[1 - F(b)].
  if (x < 0.0) return 0.0;
  double acc = mass_ejected(t);
  if (x >= a_) acc += cdf_uncensored(x, t) - mass_ejected(t);
  if (x >= b_) acc += mass_capped(t);
  return std::clamp(acc, 0.0, 1.0);
}

double prob_beta_exceeds_third(double t, double beta0, const StakeLaw& law,
                               const analytic::AnalyticConfig& cfg) {
  const double t_eject_byz =
      analytic::ejection_epoch(analytic::Behavior::kSemiActive, cfg);
  if (t >= t_eject_byz) return 0.0;  // Byzantine stake gone
  if (t <= 0.0) return beta0 > 1.0 / 3.0 ? 1.0 : 0.0;
  const double sb = analytic::stake(analytic::Behavior::kSemiActive, t, cfg);
  // beta(t) > 1/3  <=>  sH < 2 beta0 / (1 - beta0) * sB(t)  (Eq 23-24).
  const double threshold = 2.0 * beta0 / (1.0 - beta0) * sb;
  return law.cdf_censored(threshold, t);
}

double prob_beta_exceeds_third_either_branch(
    double t, double beta0, const StakeLaw& law,
    const analytic::AnalyticConfig& cfg) {
  return std::min(1.0, 2.0 * prob_beta_exceeds_third(t, beta0, law, cfg));
}

}  // namespace leak::bouncing
