// The inactivity-score random walk of Section 5.3.
//
// From one branch's viewpoint, an honest validator randomly re-assigned
// every epoch takes a step of +bias (inactive, probability 1-p0) or
// -decrement (active, probability p0).  The paper approximates the score
// after t epochs with the Gaussian phi(I,t) of Eq 16, drift V = 3/2 and
// diffusion D = 25 p0 (1-p0), deliberately ignoring the protocol's floor
// of the score at zero.  This module provides:
//   * the paper-verbatim Gaussian (phi);
//   * the exact step moments, showing the Gaussian's variance is twice
//     the walk's true variance (documented in EXPERIMENTS.md);
//   * an exact discrete pmf via dynamic programming, with or without the
//     floor at zero, used to quantify both approximations.
#pragma once

#include <cstddef>
#include <vector>

namespace leak::bouncing {

/// Paper constants: drift V and diffusion D for the Eq 16 Gaussian.
struct WalkParams {
  double drift = 1.5;       ///< V = 3/2 (independent of p0, see Eq 15)
  double diffusion = 6.25;  ///< D = 25 p0 (1-p0)

  static WalkParams paper(double p0);
};

/// Exact per-epoch moments of the score step (+4 w.p. 1-p0, -1 w.p. p0).
struct StepMoments {
  double mean = 0.0;
  double variance = 0.0;
};
StepMoments step_moments(double p0, double bias = 4.0,
                         double decrement = 1.0);

/// Eq 16 — the paper's Gaussian density of the inactivity score at
/// epoch t: phi(I, t) = exp(-(I - V t)^2 / (4 D t)) / sqrt(4 pi D t).
double phi(double score, double t, const WalkParams& params);

/// Exact pmf of the score after `epochs` steps via dynamic programming.
/// Score support is {0, 1, 2, ...} when floored, or shifted integers
/// otherwise.  p[i] is the probability of score == i - offset.
struct ScorePmf {
  std::vector<double> p;
  /// Value represented by index 0 (0 when floored, -epochs*decrement
  /// otherwise).
  long long offset = 0;

  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double prob_at(long long score) const;
  /// P[score <= x].
  [[nodiscard]] double cdf(long long score) const;
};

/// Run the DP for `epochs` epochs with inactive probability (1-p0).
/// `floor_at_zero` replicates the protocol's max(score, 0).
ScorePmf exact_score_pmf(double p0, std::size_t epochs, bool floor_at_zero,
                         int bias = 4, int decrement = 1);

}  // namespace leak::bouncing
