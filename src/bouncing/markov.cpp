#include "src/bouncing/markov.hpp"

#include <cmath>
#include <stdexcept>

namespace leak::bouncing {

std::optional<std::pair<double, double>> feasible_p0_interval(double beta0) {
  if (beta0 < 0.0 || beta0 >= 1.0) {
    throw std::invalid_argument("feasible_p0_interval: beta0 in [0,1)");
  }
  const double lo = (2.0 - 3.0 * beta0) / (3.0 * (1.0 - beta0));
  const double hi = 2.0 / (3.0 * (1.0 - beta0));
  if (lo >= hi) return std::nullopt;
  return std::pair{lo, hi};
}

bool attack_feasible(double p0, double beta0) {
  // (a) honest actives alone cannot justify: p0 (1-beta0) < 2/3;
  // (b) honest actives + Byzantine can:      p0 (1-beta0) + beta0 > 2/3.
  return p0 * (1.0 - beta0) < 2.0 / 3.0 &&
         p0 * (1.0 - beta0) + beta0 > 2.0 / 3.0;
}

double continuation_probability(double beta0, int j, std::uint64_t k) {
  if (j < 0) throw std::invalid_argument("continuation_probability: j >= 0");
  const double per_epoch = 1.0 - std::pow(1.0 - beta0, j);
  return std::pow(per_epoch, static_cast<double>(k));
}

TwoEpochIncrement two_epoch_increment(double p0) {
  if (p0 < 0.0 || p0 > 1.0) {
    throw std::invalid_argument("two_epoch_increment: p0 in [0,1]");
  }
  TwoEpochIncrement t;
  t.p_plus8 = p0 * (1.0 - p0);
  t.p_plus3 = p0 * p0 + (1.0 - p0) * (1.0 - p0);
  t.p_minus2 = p0 * (1.0 - p0);
  return t;
}

}  // namespace leak::bouncing
