#include "src/bouncing/walk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace leak::bouncing {

WalkParams WalkParams::paper(double p0) {
  WalkParams w;
  w.drift = 1.5;
  w.diffusion = 25.0 * p0 * (1.0 - p0);
  return w;
}

StepMoments step_moments(double p0, double bias, double decrement) {
  StepMoments m;
  const double q = 1.0 - p0;  // probability of being inactive
  m.mean = bias * q - decrement * p0;
  const double ex2 = bias * bias * q + decrement * decrement * p0;
  m.variance = ex2 - m.mean * m.mean;
  return m;
}

double phi(double score, double t, const WalkParams& params) {
  if (t <= 0.0) throw std::invalid_argument("phi: t must be > 0");
  const double var2 = 4.0 * params.diffusion * t;  // paper's 4 D t
  const double d = score - params.drift * t;
  return std::exp(-d * d / var2) / std::sqrt(M_PI * var2);
}

double ScorePmf::mean() const {
  double m = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    m += p[i] * static_cast<double>(static_cast<long long>(i) + offset);
  }
  return m;
}

double ScorePmf::variance() const {
  const double m = mean();
  double v = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double x = static_cast<double>(static_cast<long long>(i) + offset);
    v += p[i] * (x - m) * (x - m);
  }
  return v;
}

double ScorePmf::prob_at(long long score) const {
  const long long idx = score - offset;
  if (idx < 0 || idx >= static_cast<long long>(p.size())) return 0.0;
  return p[static_cast<std::size_t>(idx)];
}

double ScorePmf::cdf(long long score) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (static_cast<long long>(i) + offset <= score) acc += p[i];
  }
  return acc;
}

ScorePmf exact_score_pmf(double p0, std::size_t epochs, bool floor_at_zero,
                         int bias, int decrement) {
  if (p0 < 0.0 || p0 > 1.0) {
    throw std::invalid_argument("exact_score_pmf: p0 in [0,1]");
  }
  if (bias <= 0 || decrement <= 0) {
    throw std::invalid_argument("exact_score_pmf: bias/decrement > 0");
  }
  const double q = 1.0 - p0;  // step +bias
  ScorePmf out;
  if (floor_at_zero) {
    // Support [0, bias*epochs].
    const std::size_t n = epochs * static_cast<std::size_t>(bias) + 1;
    std::vector<double> cur(n, 0.0), next(n, 0.0);
    cur[0] = 1.0;
    for (std::size_t t = 0; t < epochs; ++t) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (cur[i] == 0.0) continue;
        const std::size_t up = i + static_cast<std::size_t>(bias);
        if (up < n) next[up] += cur[i] * q;
        const long long down = static_cast<long long>(i) - decrement;
        next[static_cast<std::size_t>(std::max(down, 0LL))] += cur[i] * p0;
      }
      std::swap(cur, next);
    }
    out.p = std::move(cur);
    out.offset = 0;
  } else {
    // Support [-decrement*epochs, bias*epochs].
    const long long lo = -static_cast<long long>(epochs) * decrement;
    const long long hi = static_cast<long long>(epochs) * bias;
    const std::size_t n = static_cast<std::size_t>(hi - lo) + 1;
    std::vector<double> cur(n, 0.0), next(n, 0.0);
    cur[static_cast<std::size_t>(-lo)] = 1.0;  // score 0 at index -lo
    for (std::size_t t = 0; t < epochs; ++t) {
      std::fill(next.begin(), next.end(), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        if (cur[i] == 0.0) continue;
        const std::size_t up = i + static_cast<std::size_t>(bias);
        if (up < n) next[up] += cur[i] * q;
        if (i >= static_cast<std::size_t>(decrement)) {
          next[i - static_cast<std::size_t>(decrement)] += cur[i] * p0;
        }
      }
      std::swap(cur, next);
    }
    out.p = std::move(cur);
    out.offset = lo;
  }
  return out;
}

}  // namespace leak::bouncing
