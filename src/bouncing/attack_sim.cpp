#include "src/bouncing/attack_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak::bouncing {

namespace {

/// Outcome of one attack lifetime, pure in (cfg, rng).
struct RunOutcome {
  std::uint64_t duration = 0;
  /// Epoch when beta first exceeded 1/3; -1 when it never did.
  std::int64_t break_epoch = -1;
};

RunOutcome simulate_attack_run(const AttackSimConfig& cfg, Rng rng) {
  RunOutcome out;
  const std::size_t n = cfg.honest_validators;
  // Honest stake/score from branch A's viewpoint; Byzantine validators
  // are semi-active on A (active every other epoch).
  std::vector<double> stake(n, cfg.model.initial_stake);
  std::vector<double> score(n, 0.0);
  std::vector<std::uint8_t> ejected(n, 0);
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    // Current stake-weighted Byzantine proportion on branch A.
    double honest_total = 0.0;
    for (std::size_t i = 0; i < n; ++i) honest_total += stake[i];
    const double honest_mean = honest_total / static_cast<double>(n);
    const double byz_mass = cfg.beta0 * byz_stake;
    const double denom = byz_mass + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz_mass / denom : 0.0;
    if (beta > 1.0 / 3.0 && !byz_ejected && out.break_epoch < 0) {
      out.break_epoch = static_cast<std::int64_t>(t);
    }

    // Proposer lottery: the attack needs a Byzantine proposer among
    // the first j slots of the epoch.
    const double lottery_beta = cfg.stake_weighted_lottery ? beta : cfg.beta0;
    const double p_continue = 1.0 - std::pow(1.0 - lottery_beta, cfg.j);
    if (byz_ejected || !rng.bernoulli(p_continue)) {
      out.duration = t - 1;
      break;
    }
    out.duration = t;

    // One epoch of Figure 8 dynamics.
    for (std::size_t i = 0; i < n; ++i) {
      if (ejected[i] != 0) continue;
      stake[i] -= score[i] * stake[i] / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score[i] = std::max(score[i] - cfg.model.score_active_decrement, 0.0);
      } else {
        score[i] += cfg.model.score_bias;
      }
      if (stake[i] <= cfg.model.ejection_threshold) {
        ejected[i] = 1;
        stake[i] = 0.0;
      }
    }
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      if (t % 2 == 0) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
  }
  return out;
}

}  // namespace

AttackSimResult run_attack_sim(const AttackSimConfig& cfg) {
  if (cfg.runs == 0 || cfg.honest_validators == 0) {
    throw std::invalid_argument("run_attack_sim: empty configuration");
  }
  // Block-scheduled fan-out straight into the result's preallocated
  // slabs; run i always draws from the (seed, i) stream and writes at
  // its own index, so there is no merge step and the result is
  // bit-identical for every (block, threads) combination.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  AttackSimResult res;
  res.durations.assign(cfg.runs, 0);
  std::vector<std::int64_t> break_epochs(cfg.runs, -1);
  pool.run_blocks(cfg.runs, runner::resolve_block(cfg.block),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t run = begin; run < end; ++run) {
                      const auto out =
                          simulate_attack_run(cfg, seeder.stream(run));
                      res.durations[run] = out.duration;
                      break_epochs[run] = out.break_epoch;
                    }
                  });

  // Compact the successful runs in run order.
  std::size_t broken = 0;
  for (const std::int64_t epoch : break_epochs) {
    if (epoch >= 0) {
      res.break_epochs.push_back(static_cast<std::uint64_t>(epoch));
      ++broken;
    }
  }

  res.prob_threshold_broken =
      static_cast<double>(broken) / static_cast<double>(cfg.runs);
  std::vector<double> d(res.durations.begin(), res.durations.end());
  RunningStats st;
  for (double x : d) st.add(x);
  res.mean_duration = st.mean();
  res.median_duration = quantile(d, 0.5);
  res.p99_duration = quantile(d, 0.99);
  return res;
}

double expected_duration_constant_beta(double beta0, int j) {
  // Duration ~ Geometric(success = attack dies) with per-epoch death
  // probability (1-beta0)^j; expectation = p_continue / p_die.
  const double p_continue = 1.0 - std::pow(1.0 - beta0, j);
  const double p_die = 1.0 - p_continue;
  if (p_die <= 0.0) return std::numeric_limits<double>::infinity();
  return p_continue / p_die;
}

}  // namespace leak::bouncing
