#include "src/bouncing/attack_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "src/kernel/accumulators.hpp"
#include "src/kernel/cohort.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"

namespace leak::bouncing {

namespace {

/// Outcome of one attack lifetime, pure in (cfg, rng).
struct RunOutcome {
  std::uint64_t duration = 0;
  /// Epoch when beta first exceeded 1/3; -1 when it never did.
  std::int64_t break_epoch = -1;
};

RunOutcome simulate_attack_run(const AttackSimConfig& cfg, Rng rng) {
  RunOutcome out;
  const std::size_t n = cfg.honest_validators;
  // Honest stake/score from branch A's viewpoint rides the SoA
  // draw/update kernel: the run's single RNG stream feeds the lottery
  // draw, then one uniform per live validator in index order — exactly
  // the scalar oracle's consumption order — and the update pass is
  // branchless over the lanes.  Byzantine validators are semi-active
  // on A (active every other epoch), scalar as before.  Scratch is per
  // worker thread, reused across the runs it claims — purely an
  // allocation cache, fully re-initialized per run.
  // leaklint: allow(D5): per-thread allocation cache only; contents fully re-initialized per run, results bit-identical across thread counts
  static thread_local kernel::LeakCohort cohort;
  cohort.reset(n, cfg.model);
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.max_epochs; ++t) {
    // Current stake-weighted Byzantine proportion on branch A.
    const double honest_mean =
        cohort.stake_sum() / static_cast<double>(n);
    const double byz_mass = cfg.beta0 * byz_stake;
    const double denom = byz_mass + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz_mass / denom : 0.0;
    if (beta > 1.0 / 3.0 && !byz_ejected && out.break_epoch < 0) {
      out.break_epoch = static_cast<std::int64_t>(t);
    }

    // Proposer lottery: the attack needs a Byzantine proposer among
    // the first j slots of the epoch.
    const double lottery_beta = cfg.stake_weighted_lottery ? beta : cfg.beta0;
    const double p_continue = 1.0 - std::pow(1.0 - lottery_beta, cfg.j);
    if (byz_ejected || !rng.bernoulli(p_continue)) {
      out.duration = t - 1;
      break;
    }
    out.duration = t;

    // One epoch of Figure 8 dynamics.
    cohort.draw(rng);
    cohort.update(cfg.model, cfg.p0);
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      if (t % 2 == 0) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
  }
  return out;
}

/// Order-fed aggregate shared by the full and summary modes: the
/// duration summary and the break count see runs in ascending run
/// order in both, so every derived statistic is bit-identical.
struct AttackTally {
  kernel::DurationSummary durations;
  std::size_t broken = 0;
  void add(const RunOutcome& out) {
    durations.add(out.duration);
    if (out.break_epoch >= 0) ++broken;
  }
};

}  // namespace

AttackSimResult run_attack_sim(const AttackSimConfig& cfg) {
  if (cfg.runs == 0 || cfg.honest_validators == 0) {
    throw std::invalid_argument("run_attack_sim: empty configuration");
  }
  // Run i always draws from the (seed, i) stream, so the result is
  // bit-identical for every (block, threads) combination in either
  // mode.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  const std::size_t block = runner::resolve_block(cfg.block);
  AttackSimResult res;
  AttackTally tally;
  if (cfg.keep_runs) {
    // Full mode: block-scheduled fan-out straight into the result's
    // preallocated slabs (no merge step), then aggregate in run order.
    res.durations.assign(cfg.runs, 0);
    std::vector<std::int64_t> break_epochs(cfg.runs, -1);
    pool.run_blocks(cfg.runs, block,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t run = begin; run < end; ++run) {
                        const auto out =
                            simulate_attack_run(cfg, seeder.stream(run));
                        res.durations[run] = out.duration;
                        break_epochs[run] = out.break_epoch;
                      }
                    });
    // Compact the successful runs in run order.
    for (std::size_t run = 0; run < cfg.runs; ++run) {
      tally.add(RunOutcome{res.durations[run], break_epochs[run]});
      if (break_epochs[run] >= 0) {
        res.break_epochs.push_back(
            static_cast<std::uint64_t>(break_epochs[run]));
      }
    }
  } else {
    // Summary mode: per-block outcome slabs fold through the ordered
    // reduction tree in ascending block order — the same add() calls
    // in the same run order as full mode, without the O(runs) slabs.
    struct OutcomeFold {
      AttackTally* tally;
      void fold(std::size_t, std::size_t,
                std::vector<RunOutcome>&& outcomes) const {
        for (const auto& out : outcomes) tally->add(out);
      }
    };
    (void)pool.run_reduce(cfg.runs, block, OutcomeFold{&tally},
                          [&](std::size_t begin, std::size_t end) {
                            std::vector<RunOutcome> outcomes;
                            outcomes.reserve(end - begin);
                            for (std::size_t run = begin; run < end; ++run) {
                              outcomes.push_back(simulate_attack_run(
                                  cfg, seeder.stream(run)));
                            }
                            return outcomes;
                          });
  }

  res.prob_threshold_broken =
      static_cast<double>(tally.broken) / static_cast<double>(cfg.runs);
  res.mean_duration = tally.durations.mean();
  res.median_duration = tally.durations.quantile(0.5);
  res.p99_duration = tally.durations.quantile(0.99);
  return res;
}

double expected_duration_constant_beta(double beta0, int j) {
  // Duration ~ Geometric(success = attack dies) with per-epoch death
  // probability (1-beta0)^j; expectation = p_continue / p_die.
  const double p_continue = 1.0 - std::pow(1.0 - beta0, j);
  const double p_die = 1.0 - p_continue;
  if (p_die <= 0.0) return std::numeric_limits<double>::infinity();
  return p_continue / p_die;
}

}  // namespace leak::bouncing
