// Stochastic simulation of the probabilistic bouncing attack as a whole
// (Section 5.3): unlike the per-epoch stake law, this models the
// attack's *lifetime*.  Each epoch the attack only continues if a
// Byzantine proposer lands in one of the first j slots (probability
// 1 - (1-beta)^j, with beta the Byzantine proportion *at that epoch* —
// the stake-weighted refinement of the paper's constant-beta0 bound);
// while it runs, stakes evolve under the Figure 8 dynamics.  The
// simulator measures the attack-duration distribution and the
// unconditional probability that the Byzantine proportion crosses 1/3
// before the attack dies or the Byzantine validators are ejected.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"

namespace leak::bouncing {

struct AttackSimConfig {
  double beta0 = 0.33;  ///< initial Byzantine stake proportion
  double p0 = 0.5;      ///< honest split maintained by the adversary
  int j = 8;            ///< proposer slots usable per epoch
  std::size_t honest_validators = 200;
  std::size_t max_epochs = 8000;
  std::size_t runs = 1000;
  std::uint64_t seed = 2024;
  /// Worker threads for the run fan-out; 0 = LEAK_THREADS env or
  /// hardware_concurrency.  Bit-identical results for any value.
  unsigned threads = 0;
  /// Runs per scheduled block; 0 = LEAK_BLOCK env or the tuned
  /// default.  Bit-identical results for any value.
  std::size_t block = 0;
  analytic::AnalyticConfig model = analytic::AnalyticConfig::paper();
  /// When true the per-epoch continuation probability uses the current
  /// stake-weighted beta; when false the constant beta0 (paper bound).
  bool stake_weighted_lottery = true;
  /// When false, the per-run outcome slabs are never materialized:
  /// AttackSimResult::durations / break_epochs stay empty and only the
  /// aggregate statistics are filled via the runner's ordered
  /// reduction tree.  The aggregates are bit-identical between modes.
  bool keep_runs = true;
};

struct AttackSimResult {
  /// Attack duration (epochs) per run.  Empty when cfg.keep_runs ==
  /// false (summary mode).
  std::vector<std::uint64_t> durations;
  /// Fraction of runs where beta exceeded 1/3 before the attack ended.
  double prob_threshold_broken = 0.0;
  /// Mean / p50 / p99 of the duration distribution.
  double mean_duration = 0.0;
  double median_duration = 0.0;
  double p99_duration = 0.0;
  /// Epoch of threshold break per successful run (for conditioning).
  /// Empty when cfg.keep_runs == false (summary mode).
  std::vector<std::uint64_t> break_epochs;
};

/// Run the attack-lifetime Monte Carlo.
AttackSimResult run_attack_sim(const AttackSimConfig& cfg);

/// Closed-form expected duration under the constant-beta0 lottery:
/// geometric with failure probability (1-beta0)^j per epoch.
[[nodiscard]] double expected_duration_constant_beta(double beta0, int j);

}  // namespace leak::bouncing
