// The honest-validator stake law during the bouncing attack
// (Equations 17-24 of the paper).
//
// Integrating the stake ODE ds/dt = -I(t) s / q over the random score
// path makes ln(s) Gaussian:  ln s ~ N(ln s0 - V t^2 / (2 q),
// (2/3) D t^3 / q^2), i.e. the log-normal F of Eq 19.  The protocol then
// censors the law (Eqs 20-22): mass below the ejection threshold `a`
// collapses to a point mass at 0 (ejected validators), and the cap at
// s0 = 32 keeps a point mass at `b` (validators whose score never bit).
// Eq 24 turns the censored cdf into the probability that the Byzantine
// proportion beta(t) exceeds 1/3.
#pragma once

#include "src/analytic/config.hpp"
#include "src/analytic/stake_model.hpp"
#include "src/bouncing/walk.hpp"

namespace leak::bouncing {

/// The censored log-normal stake law of Section 5.3.
class StakeLaw {
 public:
  /// p0: honest branch-assignment probability; cfg supplies s0, the
  /// quotient q and the ejection threshold a.
  StakeLaw(double p0, const analytic::AnalyticConfig& cfg);

  /// Mean of ln(s) at epoch t (drift term of Eq 19).
  [[nodiscard]] double mu_ln(double t) const;
  /// Standard deviation of ln(s) at epoch t (diffusion term of Eq 19).
  [[nodiscard]] double sigma_ln(double t) const;

  /// Eq 19 — uncensored cdf F(s, t).
  [[nodiscard]] double cdf_uncensored(double s, double t) const;
  /// Eq 18 — uncensored density P(s, t) (the exact derivative of F).
  [[nodiscard]] double pdf_uncensored(double s, double t) const;

  /// Point mass at 0 (ejected): F(a, t).
  [[nodiscard]] double mass_ejected(double t) const;
  /// Point mass at b = s0 (stake still capped): 1 - F(b, t).
  [[nodiscard]] double mass_capped(double t) const;
  /// Interior density of the censored law on (a, b) (Eq 21).
  [[nodiscard]] double pdf_censored(double x, double t) const;
  /// Eq 22 — censored cdf  𝓕(x, t).
  [[nodiscard]] double cdf_censored(double x, double t) const;

  [[nodiscard]] double ejection_threshold() const { return a_; }
  [[nodiscard]] double cap() const { return b_; }
  [[nodiscard]] const WalkParams& walk() const { return walk_; }

 private:
  double p0_;
  double q_;      ///< penalty quotient (2^26)
  double s0_;     ///< initial stake (32)
  double a_;      ///< ejection threshold
  double b_;      ///< cap (= s0)
  WalkParams walk_;
};

/// Eq 24 — probability that the Byzantine proportion exceeds 1/3 at
/// epoch t on one branch, for semi-active Byzantine stake
/// sB(t) = s0 e^{-3 t^2 / 2^28}: cdf_censored(2 b0/(1-b0) * sB(t), t).
/// Returns 0 after the Byzantine ejection epoch (their stake is gone).
double prob_beta_exceeds_third(double t, double beta0, const StakeLaw& law,
                               const analytic::AnalyticConfig& cfg);

/// The paper's two-branch observation: with branches mirrored, the
/// probability that at least one branch exceeds 1/3 can be doubled
/// (clamped to 1).
double prob_beta_exceeds_third_either_branch(
    double t, double beta0, const StakeLaw& law,
    const analytic::AnalyticConfig& cfg);

}  // namespace leak::bouncing
