#include "src/bouncing/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/analytic/stake_model.hpp"
#include "src/runner/trial_runner.hpp"

namespace leak::bouncing {

namespace {

/// One path of the Figure 8 dynamics as a pure function of its RNG
/// stream: returns the path's stake at each snapshot epoch (0 once
/// ejected).  All derived statistics are computed at merge time, so a
/// path depends only on (cfg, snapshot grid, rng).
std::vector<double> simulate_path(const McConfig& cfg,
                                  const std::vector<std::size_t>& snaps,
                                  Rng rng) {
  std::vector<double> at_snap;
  at_snap.reserve(snaps.size());
  double stake = cfg.model.initial_stake;
  double score = 0.0;
  bool ejected = false;
  std::size_t next_snap = 0;
  for (std::size_t t = 1; t <= cfg.epochs && next_snap < snaps.size(); ++t) {
    if (!ejected) {
      // Eq 2 penalty with previous score, then Eq 1 update (floored).
      stake -= score * stake / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score = std::max(score - cfg.model.score_active_decrement, 0.0);
      } else {
        score += cfg.model.score_bias;
      }
      if (stake <= cfg.model.ejection_threshold) {
        ejected = true;
        stake = 0.0;
      }
    }
    if (t == snaps[next_snap]) {
      at_snap.push_back(stake);
      ++next_snap;
    }
  }
  return at_snap;
}

}  // namespace

McResult run_bouncing_mc(const McConfig& cfg,
                         const std::vector<std::size_t>& snapshot_epochs) {
  // The grid must be strictly increasing: a path records one value per
  // matched epoch, so duplicates would leave the merge reading past it.
  if (snapshot_epochs.empty() ||
      !std::is_sorted(snapshot_epochs.begin(), snapshot_epochs.end()) ||
      std::adjacent_find(snapshot_epochs.begin(), snapshot_epochs.end()) !=
          snapshot_epochs.end() ||
      snapshot_epochs.back() > cfg.epochs) {
    throw std::invalid_argument("run_bouncing_mc: bad snapshot grid");
  }
  McResult res;
  res.epochs = snapshot_epochs;
  res.stakes.assign(snapshot_epochs.size(), {});
  for (auto& v : res.stakes) v.reserve(cfg.paths);
  res.ejected_fraction.assign(snapshot_epochs.size(), 0.0);
  res.capped_fraction.assign(snapshot_epochs.size(), 0.0);
  res.prob_beta_exceeds.assign(snapshot_epochs.size(), 0.0);

  // Byzantine (semi-active) reference stake at each snapshot epoch.
  std::vector<double> sb(snapshot_epochs.size());
  for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
    sb[k] = analytic::stake(analytic::Behavior::kSemiActive,
                            static_cast<double>(snapshot_epochs[k]),
                            cfg.model);
  }
  const double factor = 2.0 * cfg.beta0 / (1.0 - cfg.beta0);

  // Fan the paths across the pool; each draws from its own counter
  // stream, so the result is independent of the thread count.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  const auto per_path =
      pool.run(cfg.paths, [&](std::size_t path) {
        return simulate_path(cfg, snapshot_epochs, seeder.stream(path));
      });

  // Merge in path order (ejection <=> stake flushed to exactly 0:
  // live stake always stays above the ejection threshold).
  for (const auto& at_snap : per_path) {
    for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
      const double stake = at_snap[k];
      res.stakes[k].push_back(stake);
      if (stake == 0.0) res.ejected_fraction[k] += 1.0;
      if (stake >= cfg.model.initial_stake) res.capped_fraction[k] += 1.0;
      if (stake < factor * sb[k]) res.prob_beta_exceeds[k] += 1.0;
    }
  }
  const double n = static_cast<double>(cfg.paths);
  for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
    res.ejected_fraction[k] /= n;
    res.capped_fraction[k] /= n;
    res.prob_beta_exceeds[k] /= n;
  }
  return res;
}

PopulationRunResult run_population_bouncing(const PopulationRunConfig& cfg) {
  PopulationRunResult res;
  Rng rng(cfg.seed);
  const std::uint32_t n = cfg.honest_validators;
  std::vector<double> stake(n, cfg.model.initial_stake);
  std::vector<double> score(n, 0.0);
  std::vector<bool> ejected(n, false);

  // Byzantine stake per validator-equivalent; they are semi-active on
  // branch A (tracked branch), with their own floored discrete dynamics.
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.epochs; ++t) {
    // Honest validators: iid branch assignment (Figure 8).
    for (std::uint32_t i = 0; i < n; ++i) {
      if (ejected[i]) continue;
      stake[i] -= score[i] * stake[i] / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score[i] = std::max(score[i] - cfg.model.score_active_decrement, 0.0);
      } else {
        score[i] += cfg.model.score_bias;
      }
      if (stake[i] <= cfg.model.ejection_threshold) {
        ejected[i] = true;
        stake[i] = 0.0;
      }
    }
    // Byzantine: semi-active from branch A's viewpoint.
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      const bool active = (t % 2 == 0);
      if (active) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
    // Branch-level Byzantine proportion (Eq 23 with population averages).
    double honest_total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) honest_total += stake[i];
    const double honest_mean = honest_total / static_cast<double>(n);
    const double byz = cfg.beta0 * byz_stake;
    const double denom = byz + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz / denom : 0.0;
    if (t % res.stride == 0) res.beta_trajectory.push_back(beta);
    if (res.first_exceed_epoch < 0 && beta > 1.0 / 3.0 && !byz_ejected) {
      res.first_exceed_epoch = static_cast<std::int64_t>(t);
    }
  }
  return res;
}

PopulationEnsembleResult run_population_ensemble(
    const PopulationEnsembleConfig& cfg) {
  if (cfg.paths == 0) {
    throw std::invalid_argument("run_population_ensemble: no paths");
  }
  const StreamSeeder seeder(cfg.base.seed);
  const runner::TrialRunner pool(cfg.threads);
  const auto runs = pool.run(cfg.paths, [&](std::size_t path) {
    PopulationRunConfig per_path = cfg.base;
    per_path.seed = seeder.seed_for(path);
    return run_population_bouncing(per_path);
  });

  PopulationEnsembleResult res;
  res.first_exceed_epochs.reserve(cfg.paths);
  std::size_t exceeded = 0;
  double beta_sum = 0.0;
  for (const auto& r : runs) {
    res.first_exceed_epochs.push_back(r.first_exceed_epoch);
    if (r.first_exceed_epoch >= 0) ++exceeded;
    if (!r.beta_trajectory.empty()) beta_sum += r.beta_trajectory.back();
  }
  res.exceed_fraction =
      static_cast<double>(exceeded) / static_cast<double>(cfg.paths);
  res.mean_final_beta = beta_sum / static_cast<double>(cfg.paths);
  return res;
}

}  // namespace leak::bouncing
