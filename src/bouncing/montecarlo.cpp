#include "src/bouncing/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/analytic/duty_cycle.hpp"
#include "src/analytic/stake_model.hpp"
#include "src/bouncing/montecarlo_batch.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"

namespace leak::bouncing {

namespace {

/// One path of the Figure 8 dynamics as a pure function of its RNG
/// stream: returns the path's stake at each snapshot epoch (0 once
/// ejected).  All derived statistics are computed at merge time, so a
/// path depends only on (cfg, snapshot grid, rng).
std::vector<double> simulate_path(const McConfig& cfg,
                                  const std::vector<std::size_t>& snaps,
                                  Rng rng) {
  std::vector<double> at_snap;
  at_snap.reserve(snaps.size());
  double stake = cfg.model.initial_stake;
  double score = 0.0;
  bool ejected = false;
  std::size_t next_snap = 0;
  for (std::size_t t = 1; t <= cfg.epochs && next_snap < snaps.size(); ++t) {
    if (!ejected) {
      // Eq 2 penalty with previous score, then Eq 1 update (floored).
      stake -= score * stake / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score = std::max(score - cfg.model.score_active_decrement, 0.0);
      } else {
        score += cfg.model.score_bias;
      }
      if (stake <= cfg.model.ejection_threshold) {
        ejected = true;
        stake = 0.0;
      }
    }
    if (t == snaps[next_snap]) {
      at_snap.push_back(stake);
      ++next_snap;
    }
  }
  return at_snap;
}

void validate_grid(const McConfig& cfg,
                   const std::vector<std::size_t>& snapshot_epochs) {
  // The grid must be strictly increasing: a path records one value per
  // matched epoch, so duplicates would leave the merge reading past it.
  if (snapshot_epochs.empty() ||
      !std::is_sorted(snapshot_epochs.begin(), snapshot_epochs.end()) ||
      std::adjacent_find(snapshot_epochs.begin(), snapshot_epochs.end()) !=
          snapshot_epochs.end() ||
      snapshot_epochs.back() > cfg.epochs) {
    throw std::invalid_argument("run_bouncing_mc: bad snapshot grid");
  }
  if (cfg.branches < 2) {
    throw std::invalid_argument("run_bouncing_mc: branches must be >= 2");
  }
}

/// Streaming per-snapshot reduction shared by the scalar and batched
/// drivers.  Each snapshot's accumulators must be fed its paths in
/// ascending path order (the accumulators are order-sensitive in
/// floating point); snapshots are independent of each other.
class SnapshotAccumulators {
 public:
  SnapshotAccumulators(const McConfig& cfg,
                       const std::vector<std::size_t>& snaps)
      : initial_stake_(cfg.model.initial_stake),
        ejected_(snaps.size(), 0),
        capped_(snaps.size(), 0),
        exceeds_(snaps.size(), 0),
        stats_(snaps.size()),
        median_alive_(snaps.size(), P2Quantile(0.5)) {
    // Byzantine (1-in-m duty-cycled; m = 2 is the paper's semi-active
    // case) reference stake at each snapshot epoch for the Eq 23
    // exceedance criterion.
    threshold_.resize(snaps.size());
    for (std::size_t k = 0; k < snaps.size(); ++k) {
      threshold_[k] = analytic::multibranch_exceed_threshold(
          cfg.branches, cfg.beta0, static_cast<double>(snaps[k]), cfg.model);
    }
  }

  /// Fold one path's stake at snapshot k (ejection <=> stake flushed
  /// to exactly 0: live stake always stays above the threshold).
  void add(std::size_t k, double stake) {
    if (stake == 0.0) {
      ++ejected_[k];
    } else {
      median_alive_[k].add(stake);
    }
    if (stake >= initial_stake_) ++capped_[k];
    if (stake < threshold_[k]) ++exceeds_[k];
    stats_[k].add(stake);
  }

  /// Freeze the counts into fractions and move the summaries out.
  void finalize(std::size_t n_paths, McResult* res) {
    const auto snapshots = stats_.size();
    const double n = static_cast<double>(n_paths);
    res->ejected_fraction.resize(snapshots);
    res->capped_fraction.resize(snapshots);
    res->prob_beta_exceeds.resize(snapshots);
    res->median_alive_estimate.resize(snapshots);
    for (std::size_t k = 0; k < snapshots; ++k) {
      res->ejected_fraction[k] = static_cast<double>(ejected_[k]) / n;
      res->capped_fraction[k] = static_cast<double>(capped_[k]) / n;
      res->prob_beta_exceeds[k] = static_cast<double>(exceeds_[k]) / n;
      res->median_alive_estimate[k] = median_alive_[k].estimate();
    }
    res->stake_stats = std::move(stats_);
  }

 private:
  double initial_stake_;
  std::vector<double> threshold_;
  std::vector<std::size_t> ejected_;
  std::vector<std::size_t> capped_;
  std::vector<std::size_t> exceeds_;
  std::vector<RunningStats> stats_;
  std::vector<P2Quantile> median_alive_;
};

}  // namespace

McResult run_bouncing_mc(const McConfig& cfg,
                         const std::vector<std::size_t>& snapshot_epochs) {
  validate_grid(cfg, snapshot_epochs);
  McResult res;
  res.epochs = snapshot_epochs;
  const std::size_t snapshots = snapshot_epochs.size();
  SnapshotAccumulators acc(cfg, snapshot_epochs);

  const std::size_t block = runner::resolve_block(cfg.block);
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);

  if (cfg.keep_paths) {
    // Full mode: blocks write disjoint column ranges of the
    // preallocated matrix — no merge step, no per-path allocation —
    // and the summaries stream over the finished rows in path order.
    res.stakes.assign(snapshots, std::vector<double>(cfg.paths));
    std::vector<double*> rows(snapshots);
    for (std::size_t k = 0; k < snapshots; ++k) {
      rows[k] = res.stakes[k].data();
    }
    pool.run_blocks(cfg.paths, block,
                    [&](std::size_t begin, std::size_t end) {
                      // One scratch per worker thread, reused across
                      // the blocks it claims (reset() re-seeds without
                      // reallocating).  Purely an allocation cache:
                      // every value in it is re-derived from the
                      // (seed, path) stream before use, so thread
                      // placement can never reach the results
                      // (enforced by the scalar-vs-batched
                      // bit-identity suite).
                      // leaklint: allow(D5): per-thread allocation cache only; contents fully re-seeded per block, results bit-identical across thread counts
                      static thread_local BatchPaths scratch;
                      simulate_stake_block(cfg, snapshot_epochs, seeder,
                                           begin, end - begin, scratch,
                                           rows.data(), begin);
                    });
    for (std::size_t k = 0; k < snapshots; ++k) {
      for (std::size_t p = 0; p < cfg.paths; ++p) {
        acc.add(k, res.stakes[k][p]);
      }
    }
  } else {
    // Summary mode: each block fills a transient snapshots x block
    // slab, folded into the accumulators in ascending block order, so
    // peak memory is O(threads x block x snapshots) and every
    // accumulator still sees paths in index order.
    struct BlockSlab {
      std::size_t n_paths = 0;
      std::vector<double> data;  ///< row-major [snapshot][path in block]
    };
    pool.run_blocks(
        cfg.paths, block,
        [&](std::size_t begin, std::size_t end) {
          BlockSlab slab;
          slab.n_paths = end - begin;
          slab.data.resize(snapshots * slab.n_paths);
          std::vector<double*> rows(snapshots);
          for (std::size_t k = 0; k < snapshots; ++k) {
            rows[k] = slab.data.data() + k * slab.n_paths;
          }
          // Same allocation-cache pattern as the keep-paths branch.
          // leaklint: allow(D5): per-thread allocation cache only; contents fully re-seeded per block, results bit-identical across thread counts
          static thread_local BatchPaths scratch;
          simulate_stake_block(cfg, snapshot_epochs, seeder, begin,
                               slab.n_paths, scratch, rows.data(), 0);
          return slab;
        },
        [&](std::size_t, std::size_t, BlockSlab slab) {
          for (std::size_t k = 0; k < snapshots; ++k) {
            const double* row = slab.data.data() + k * slab.n_paths;
            for (std::size_t i = 0; i < slab.n_paths; ++i) {
              acc.add(k, row[i]);
            }
          }
        });
  }
  acc.finalize(cfg.paths, &res);
  return res;
}

McResult run_bouncing_mc_scalar(
    const McConfig& cfg, const std::vector<std::size_t>& snapshot_epochs) {
  validate_grid(cfg, snapshot_epochs);
  McResult res;
  res.epochs = snapshot_epochs;
  res.stakes.assign(snapshot_epochs.size(), {});
  for (auto& v : res.stakes) v.reserve(cfg.paths);

  // Fan the paths across the pool; each draws from its own counter
  // stream, so the result is independent of the thread count.
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);
  const auto per_path = pool.run(cfg.paths, [&](std::size_t path) {
    return simulate_path(cfg, snapshot_epochs, seeder.stream(path));
  });

  // Merge in path order.
  for (const auto& at_snap : per_path) {
    for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
      res.stakes[k].push_back(at_snap[k]);
    }
  }
  SnapshotAccumulators acc(cfg, snapshot_epochs);
  for (std::size_t k = 0; k < snapshot_epochs.size(); ++k) {
    for (std::size_t p = 0; p < cfg.paths; ++p) {
      acc.add(k, res.stakes[k][p]);
    }
  }
  acc.finalize(cfg.paths, &res);
  return res;
}

PopulationRunResult run_population_bouncing(const PopulationRunConfig& cfg) {
  PopulationRunResult res;
  Rng rng(cfg.seed);
  const std::uint32_t n = cfg.honest_validators;
  std::vector<double> stake(n, cfg.model.initial_stake);
  std::vector<double> score(n, 0.0);
  // uint8_t, not vector<bool>: SoA-consistent flat bytes (and immune
  // to the packed-word aliasing the runner's static_assert guards).
  std::vector<std::uint8_t> ejected(n, 0);

  // Byzantine stake per validator-equivalent; they are semi-active on
  // branch A (tracked branch), with their own floored discrete dynamics.
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.epochs; ++t) {
    // Honest validators: iid branch assignment (Figure 8).
    for (std::uint32_t i = 0; i < n; ++i) {
      if (ejected[i] != 0) continue;
      stake[i] -= score[i] * stake[i] / cfg.model.quotient;
      const bool active = rng.bernoulli(cfg.p0);
      if (active) {
        score[i] = std::max(score[i] - cfg.model.score_active_decrement, 0.0);
      } else {
        score[i] += cfg.model.score_bias;
      }
      if (stake[i] <= cfg.model.ejection_threshold) {
        ejected[i] = 1;
        stake[i] = 0.0;
      }
    }
    // Byzantine: semi-active from branch A's viewpoint.
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      const bool active = (t % 2 == 0);
      if (active) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
    // Branch-level Byzantine proportion (Eq 23 with population averages).
    double honest_total = 0.0;
    for (std::uint32_t i = 0; i < n; ++i) honest_total += stake[i];
    const double honest_mean = honest_total / static_cast<double>(n);
    const double byz = cfg.beta0 * byz_stake;
    const double denom = byz + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz / denom : 0.0;
    if (t % res.stride == 0) res.beta_trajectory.push_back(beta);
    if (res.first_exceed_epoch < 0 && beta > 1.0 / 3.0 && !byz_ejected) {
      res.first_exceed_epoch = static_cast<std::int64_t>(t);
    }
  }
  return res;
}

PopulationEnsembleResult run_population_ensemble(
    const PopulationEnsembleConfig& cfg) {
  if (cfg.paths == 0) {
    throw std::invalid_argument("run_population_ensemble: no paths");
  }
  const StreamSeeder seeder(cfg.base.seed);
  const runner::TrialRunner pool(cfg.threads);

  // Block-scheduled fan-out into preallocated outcome slabs: only the
  // two scalars the ensemble aggregates survive a path, never its
  // full trajectory.
  PopulationEnsembleResult res;
  res.first_exceed_epochs.assign(cfg.paths, -1);
  std::vector<double> final_beta(cfg.paths, 0.0);
  pool.run_blocks(cfg.paths, runner::resolve_block(cfg.block),
                  [&](std::size_t begin, std::size_t end) {
                    for (std::size_t path = begin; path < end; ++path) {
                      PopulationRunConfig per_path = cfg.base;
                      per_path.seed = seeder.seed_for(path);
                      const auto r = run_population_bouncing(per_path);
                      res.first_exceed_epochs[path] = r.first_exceed_epoch;
                      if (!r.beta_trajectory.empty()) {
                        final_beta[path] = r.beta_trajectory.back();
                      }
                    }
                  });

  // Aggregate in path order.
  std::size_t exceeded = 0;
  double beta_sum = 0.0;
  for (std::size_t path = 0; path < cfg.paths; ++path) {
    if (res.first_exceed_epochs[path] >= 0) ++exceeded;
    beta_sum += final_beta[path];
  }
  res.exceed_fraction =
      static_cast<double>(exceeded) / static_cast<double>(cfg.paths);
  res.mean_final_beta = beta_sum / static_cast<double>(cfg.paths);
  return res;
}

}  // namespace leak::bouncing
