#include "src/bouncing/montecarlo.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "src/kernel/accumulators.hpp"
#include "src/kernel/cohort.hpp"
#include "src/kernel/stake_batch.hpp"
#include "src/runner/thread_pool.hpp"
#include "src/runner/trial_runner.hpp"

namespace leak::bouncing {

namespace {

void validate_grid(const McConfig& cfg,
                   const std::vector<std::size_t>& snapshot_epochs) {
  // The grid must be strictly increasing: a path records one value per
  // matched epoch, so duplicates would leave the merge reading past it.
  if (snapshot_epochs.empty() ||
      !std::is_sorted(snapshot_epochs.begin(), snapshot_epochs.end()) ||
      std::adjacent_find(snapshot_epochs.begin(), snapshot_epochs.end()) !=
          snapshot_epochs.end() ||
      snapshot_epochs.back() > cfg.epochs) {
    throw std::invalid_argument("run_bouncing_mc: bad snapshot grid");
  }
  if (cfg.branches < 2) {
    throw std::invalid_argument("run_bouncing_mc: branches must be >= 2");
  }
}

}  // namespace

McResult run_bouncing_mc(const McConfig& cfg,
                         const std::vector<std::size_t>& snapshot_epochs) {
  validate_grid(cfg, snapshot_epochs);
  McResult res;
  res.epochs = snapshot_epochs;
  const std::size_t snapshots = snapshot_epochs.size();
  kernel::SnapshotAccumulators acc(cfg.branches, cfg.beta0, cfg.model,
                                   snapshot_epochs);
  const auto finalize = [&] {
    acc.finalize(cfg.paths, &res.ejected_fraction, &res.capped_fraction,
                 &res.prob_beta_exceeds, &res.median_alive_estimate,
                 &res.stake_stats);
  };

  const std::size_t block = runner::resolve_block(cfg.block);
  const StreamSeeder seeder(cfg.seed);
  const runner::TrialRunner pool(cfg.threads);

  if (cfg.keep_paths) {
    // Full mode: blocks write disjoint column ranges of the
    // preallocated matrix — no merge step, no per-path allocation —
    // and the summaries stream over the finished rows in path order.
    res.stakes.assign(snapshots, std::vector<double>(cfg.paths));
    std::vector<double*> rows(snapshots);
    for (std::size_t k = 0; k < snapshots; ++k) {
      rows[k] = res.stakes[k].data();
    }
    pool.run_blocks(cfg.paths, block,
                    [&](std::size_t begin, std::size_t end) {
                      // One scratch per worker thread, reused across
                      // the blocks it claims (reset() re-seeds without
                      // reallocating).  Purely an allocation cache:
                      // every value in it is re-derived from the
                      // (seed, path) stream before use, so thread
                      // placement can never reach the results
                      // (enforced by the oracle-vs-batched
                      // bit-identity suite).
                      // leaklint: allow(D5): per-thread allocation cache only; contents fully re-seeded per block, results bit-identical across thread counts
                      static thread_local kernel::BatchPaths scratch;
                      kernel::simulate_stake_block(
                          cfg.model, cfg.p0, cfg.epochs, snapshot_epochs,
                          seeder, begin, end - begin, scratch, rows.data(),
                          begin);
                    });
    for (std::size_t k = 0; k < snapshots; ++k) {
      for (std::size_t p = 0; p < cfg.paths; ++p) {
        acc.add(k, res.stakes[k][p]);
      }
    }
  } else {
    // Summary mode: each block fills a transient snapshots x block
    // slab, folded into the accumulators in ascending block order by
    // the runner's ordered reduction tree, so peak memory is
    // O(threads x block x snapshots) and every accumulator still sees
    // paths in index order.
    struct BlockSlab {
      std::size_t n_paths = 0;
      std::vector<double> data;  ///< row-major [snapshot][path in block]
    };
    struct SlabFold {
      kernel::SnapshotAccumulators* acc;
      std::size_t snapshots;
      void fold(std::size_t, std::size_t, BlockSlab&& slab) const {
        for (std::size_t k = 0; k < snapshots; ++k) {
          const double* row = slab.data.data() + k * slab.n_paths;
          for (std::size_t i = 0; i < slab.n_paths; ++i) {
            acc->add(k, row[i]);
          }
        }
      }
    };
    (void)pool.run_reduce(
        cfg.paths, block, SlabFold{&acc, snapshots},
        [&](std::size_t begin, std::size_t end) {
          BlockSlab slab;
          slab.n_paths = end - begin;
          slab.data.resize(snapshots * slab.n_paths);
          std::vector<double*> rows(snapshots);
          for (std::size_t k = 0; k < snapshots; ++k) {
            rows[k] = slab.data.data() + k * slab.n_paths;
          }
          // Same allocation-cache pattern as the keep-paths branch.
          // leaklint: allow(D5): per-thread allocation cache only; contents fully re-seeded per block, results bit-identical across thread counts
          static thread_local kernel::BatchPaths scratch;
          kernel::simulate_stake_block(cfg.model, cfg.p0, cfg.epochs,
                                       snapshot_epochs, seeder, begin,
                                       slab.n_paths, scratch, rows.data(), 0);
          return slab;
        });
  }
  finalize();
  return res;
}

PopulationRunResult run_population_bouncing(const PopulationRunConfig& cfg) {
  PopulationRunResult res;
  Rng rng(cfg.seed);
  const std::uint32_t n = cfg.honest_validators;
  // Honest cohort rides the SoA draw/update kernel: one uniform per
  // live validator in index order (exactly the scalar oracle's stream
  // consumption), then a branchless vectorized update pass.  Scratch
  // is per worker thread, reused across the runs it claims — purely an
  // allocation cache, fully re-initialized per call.
  // leaklint: allow(D5): per-thread allocation cache only; contents fully re-initialized per run, results bit-identical across thread counts
  static thread_local kernel::LeakCohort cohort;
  cohort.reset(n, cfg.model);

  // Byzantine stake per validator-equivalent; they are semi-active on
  // branch A (tracked branch), with their own floored discrete dynamics.
  double byz_stake = cfg.model.initial_stake;
  double byz_score = 0.0;
  bool byz_ejected = false;

  for (std::size_t t = 1; t <= cfg.epochs; ++t) {
    // Honest validators: iid branch assignment (Figure 8).
    cohort.draw(rng);
    cohort.update(cfg.model, cfg.p0);
    // Byzantine: semi-active from branch A's viewpoint.
    if (!byz_ejected) {
      byz_stake -= byz_score * byz_stake / cfg.model.quotient;
      const bool active = (t % 2 == 0);
      if (active) {
        byz_score = std::max(byz_score - cfg.model.score_active_decrement, 0.0);
      } else {
        byz_score += cfg.model.score_bias;
      }
      if (byz_stake <= cfg.model.ejection_threshold) {
        byz_ejected = true;
        byz_stake = 0.0;
      }
    }
    // Branch-level Byzantine proportion (Eq 23 with population averages).
    const double honest_mean = cohort.stake_sum() / static_cast<double>(n);
    const double byz = cfg.beta0 * byz_stake;
    const double denom = byz + (1.0 - cfg.beta0) * honest_mean;
    const double beta = denom > 0.0 ? byz / denom : 0.0;
    if (t % res.stride == 0) res.beta_trajectory.push_back(beta);
    if (res.first_exceed_epoch < 0 && beta > 1.0 / 3.0 && !byz_ejected) {
      res.first_exceed_epoch = static_cast<std::int64_t>(t);
    }
  }
  return res;
}

namespace {

/// Order-fed aggregate shared by the population ensemble's full and
/// summary modes: integer count plus an ascending-index double sum, so
/// both modes produce bit-identical fractions.
struct PopulationTally {
  std::size_t exceeded = 0;
  double beta_sum = 0.0;
  void add(std::int64_t first_exceed_epoch, double final_beta) {
    if (first_exceed_epoch >= 0) ++exceeded;
    beta_sum += final_beta;
  }
};

/// One path's surviving scalars.
struct PopulationOutcome {
  std::int64_t first_exceed_epoch = -1;
  double final_beta = 0.0;
};

PopulationOutcome population_outcome(const PopulationRunConfig& base,
                                     const StreamSeeder& seeder,
                                     std::size_t path) {
  PopulationRunConfig per_path = base;
  per_path.seed = seeder.seed_for(path);
  const auto r = run_population_bouncing(per_path);
  PopulationOutcome out;
  out.first_exceed_epoch = r.first_exceed_epoch;
  if (!r.beta_trajectory.empty()) out.final_beta = r.beta_trajectory.back();
  return out;
}

}  // namespace

PopulationEnsembleResult run_population_ensemble(
    const PopulationEnsembleConfig& cfg) {
  if (cfg.paths == 0) {
    throw std::invalid_argument("run_population_ensemble: no paths");
  }
  const StreamSeeder seeder(cfg.base.seed);
  const runner::TrialRunner pool(cfg.threads);
  const std::size_t block = runner::resolve_block(cfg.block);

  PopulationEnsembleResult res;
  PopulationTally tally;
  if (cfg.keep_paths) {
    // Full mode: block-scheduled fan-out into preallocated outcome
    // slabs (only the two scalars the ensemble aggregates survive a
    // path, never its full trajectory), then aggregate in path order.
    res.first_exceed_epochs.assign(cfg.paths, -1);
    std::vector<double> final_beta(cfg.paths, 0.0);
    pool.run_blocks(cfg.paths, block,
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t path = begin; path < end; ++path) {
                        const auto out =
                            population_outcome(cfg.base, seeder, path);
                        res.first_exceed_epochs[path] = out.first_exceed_epoch;
                        final_beta[path] = out.final_beta;
                      }
                    });
    for (std::size_t path = 0; path < cfg.paths; ++path) {
      tally.add(res.first_exceed_epochs[path], final_beta[path]);
    }
  } else {
    // Summary mode: per-block outcome slabs fold through the ordered
    // reduction tree in ascending block order — the same add() calls
    // in the same path order as full mode, without the O(paths) slabs.
    struct OutcomeFold {
      PopulationTally* tally;
      void fold(std::size_t, std::size_t,
                std::vector<PopulationOutcome>&& outcomes) const {
        for (const auto& out : outcomes) {
          tally->add(out.first_exceed_epoch, out.final_beta);
        }
      }
    };
    (void)pool.run_reduce(cfg.paths, block, OutcomeFold{&tally},
                          [&](std::size_t begin, std::size_t end) {
                            std::vector<PopulationOutcome> outcomes;
                            outcomes.reserve(end - begin);
                            for (std::size_t path = begin; path < end;
                                 ++path) {
                              outcomes.push_back(
                                  population_outcome(cfg.base, seeder, path));
                            }
                            return outcomes;
                          });
  }
  res.exceed_fraction =
      static_cast<double>(tally.exceeded) / static_cast<double>(cfg.paths);
  res.mean_final_beta = tally.beta_sum / static_cast<double>(cfg.paths);
  return res;
}

}  // namespace leak::bouncing
