#include "src/analytic/duty_cycle.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/support/numeric.hpp"

namespace leak::analytic {

double duty_cycle_slope(unsigned k, const AnalyticConfig& cfg) {
  if (k == 0) return cfg.score_bias;  // never active
  const double kk = static_cast<double>(k);
  const double v =
      (cfg.score_bias * (kk - 1.0) - cfg.score_active_decrement) / kk;
  // The protocol floors the score at zero: a fully active validator's
  // score cannot drift negative.
  return std::max(v, 0.0);
}

double duty_cycle_stake(unsigned k, double t, const AnalyticConfig& cfg) {
  const double v = duty_cycle_slope(k, cfg);
  return cfg.initial_stake * std::exp(-v * t * t / (2.0 * cfg.quotient));
}

double duty_cycle_ejection_epoch(unsigned k, const AnalyticConfig& cfg) {
  const double v = duty_cycle_slope(k, cfg);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  const double ratio = cfg.initial_stake / cfg.ejection_threshold;
  return std::sqrt(2.0 * cfg.quotient * std::log(ratio) / v);
}

DiscreteTrajectory duty_cycle_discrete(unsigned k, std::size_t epochs,
                                       const AnalyticConfig& cfg) {
  if (k == 0) return simulate_discrete(Behavior::kInactive, epochs, cfg);
  std::vector<std::uint8_t> active(epochs);
  for (std::size_t t = 0; t < epochs; ++t) active[t] = (t % k == k - 1);
  return simulate_discrete(active, cfg);
}

namespace {

/// Active-stake ratio on one branch of the m-branch rotation attack.
double multibranch_ratio(unsigned m, double beta0, double t,
                         const AnalyticConfig& cfg) {
  const double p = 1.0 / static_cast<double>(m);
  const double eb = duty_cycle_stake(m, t, cfg) / cfg.initial_stake;
  const double ei =
      stake(Behavior::kInactive, t, cfg) / cfg.initial_stake;
  const double t_ej = ejection_epoch(Behavior::kInactive, cfg);
  const double inact_w = t >= t_ej ? 0.0 : ei;
  const double act = p * (1.0 - beta0) + beta0 * eb;
  const double denom = act + (1.0 - p) * (1.0 - beta0) * inact_w;
  return denom > 0.0 ? act / denom : 0.0;
}

}  // namespace

double multibranch_supermajority_epoch(unsigned branches, double beta0,
                                       const AnalyticConfig& cfg) {
  if (branches < 2) {
    throw std::invalid_argument("multibranch: need >= 2 branches");
  }
  const double t_ej = ejection_epoch(Behavior::kInactive, cfg);
  const auto gap = [&](double t) {
    return multibranch_ratio(branches, beta0, t, cfg) - 2.0 / 3.0;
  };
  if (gap(0.0) >= 0.0) return 0.0;
  const auto bracket = num::bracket_upward(gap, 0.0, 64.0, t_ej - 1e-6);
  if (!bracket) return t_ej;
  const auto root = num::brent(gap, bracket->first, bracket->second, 1e-9);
  if (!root.converged) {
    throw std::runtime_error("multibranch_supermajority_epoch: no root");
  }
  return root.root;
}

double multibranch_beta_max(unsigned branches, double beta0,
                            const AnalyticConfig& cfg) {
  if (branches < 2) {
    throw std::invalid_argument("multibranch: need >= 2 branches");
  }
  const double p = 1.0 / static_cast<double>(branches);
  const double t_ej = ejection_epoch(Behavior::kInactive, cfg);
  const double eb = duty_cycle_stake(branches, t_ej, cfg) /
                    cfg.initial_stake;
  const double byz = beta0 * eb;
  const double denom = p * (1.0 - beta0) + byz;
  return denom > 0.0 ? byz / denom : 0.0;
}

double multibranch_exceed_threshold(unsigned branches, double beta0,
                                    double t, const AnalyticConfig& cfg) {
  if (branches < 2) {
    throw std::invalid_argument("multibranch: need >= 2 branches");
  }
  const double factor =
      static_cast<double>(branches) * beta0 / (1.0 - beta0);
  // branches = 2 must stay bit-identical to the legacy Monte Carlo
  // criterion, which references the paper's semi-active closed form
  // (numerically the duty-cycle k = 2 law, but routed through
  // stake_model so the expression matches to the last bit).
  if (branches == 2) return factor * stake(Behavior::kSemiActive, t, cfg);
  return factor * duty_cycle_stake(branches, t, cfg);
}

double multibranch_beta0_lower_bound(unsigned branches,
                                     const AnalyticConfig& cfg) {
  if (branches < 2) {
    throw std::invalid_argument("multibranch: need >= 2 branches");
  }
  // beta_max >= 1/3  <=>  beta0 >= 1 / (1 + 2 m E), with E the duty-
  // cycle decay at the honest-inactive ejection epoch; m = 2 recovers
  // the paper's 1/(1 + 4 E) = 0.2421.
  const double t_ej = ejection_epoch(Behavior::kInactive, cfg);
  const double e = duty_cycle_stake(branches, t_ej, cfg) /
                   cfg.initial_stake;
  return 1.0 / (1.0 + 2.0 * static_cast<double>(branches) * e);
}

}  // namespace leak::analytic
