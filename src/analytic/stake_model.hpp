// Stake trajectories during an inactivity leak (Section 4.3).
//
// The paper models the stake with the ODE s'(t) = -I(t) s(t) / 2^26
// (Eq 3) and distinguishes three behaviours:
//   active      I(t) = 0            s(t) = s0
//   semi-active I(t) = 3t/2         s(t) = s0 e^{-3 t^2 / 2^28}
//   inactive    I(t) = 4t           s(t) = s0 e^{-t^2 / 2^25}
// This module provides those closed forms (generalized over the config's
// bias/quotient), the exact discrete recurrences of Eqs 1-2, RK4-based
// numeric integration of Eq 3 for arbitrary score paths, and ejection
// epochs for each behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "src/analytic/config.hpp"

namespace leak::analytic {

/// Validator behaviour during a leak, from one branch's point of view.
enum class Behavior : std::uint8_t { kActive, kSemiActive, kInactive };

/// Mean inactivity-score slope v for a behaviour, so that I(t) ~ v * t:
/// active 0; semi-active (bias - decrement)/2 = 3/2; inactive bias = 4.
[[nodiscard]] double score_slope(Behavior b, const AnalyticConfig& cfg);

/// Mean inactivity score at continuous time t (I(t) = v t, Section 4.3).
[[nodiscard]] double inactivity_score(Behavior b, double t,
                                      const AnalyticConfig& cfg);

/// Closed-form stake at continuous time t, *ignoring* ejection:
/// s(t) = s0 exp(-v t^2 / (2 q)).
[[nodiscard]] double stake(Behavior b, double t, const AnalyticConfig& cfg);

/// Stake with ejection applied: zero once s(t) falls to the threshold.
[[nodiscard]] double stake_with_ejection(Behavior b, double t,
                                         const AnalyticConfig& cfg);

/// Continuous ejection epoch: t such that s(t) = threshold; +inf for a
/// behaviour that never ejects (active).  For the paper config this is
/// 4685 (inactive) and 7652 (semi-active), matching Figure 2.
[[nodiscard]] double ejection_epoch(Behavior b, const AnalyticConfig& cfg);

/// One epoch step of the exact discrete protocol recurrences.
struct DiscreteState {
  double stake = 32.0;
  double score = 0.0;
  bool ejected = false;
};

/// Result of a discrete epoch-by-epoch simulation of Eqs 1-2.
struct DiscreteTrajectory {
  std::vector<double> stake;  ///< stake[t] before ejection-zeroing
  std::vector<double> score;  ///< inactivity score after epoch t
  /// First epoch where stake <= threshold; -1 if never within horizon.
  std::int64_t ejection_epoch = -1;
};

/// Run the exact discrete recurrence for `epochs` epochs.  `active_at[t]`
/// (nonzero = active) says whether the validator is active at epoch t.
/// Scores are floored at zero (as in the protocol; the continuous model
/// ignores the floor).  Activity flags are bytes, not vector<bool>:
/// the packed-word proxy races under concurrent writers (leaklint D3).
DiscreteTrajectory simulate_discrete(
    const std::vector<std::uint8_t>& active_at, const AnalyticConfig& cfg);

/// Convenience: discrete trajectory for one of the three behaviours.
DiscreteTrajectory simulate_discrete(Behavior b, std::size_t epochs,
                                     const AnalyticConfig& cfg);

/// Numeric integration of the ODE (Eq 3) with the behaviour's mean score,
/// used to validate the closed form; returns stake at time t.
[[nodiscard]] double stake_ode(Behavior b, double t,
                               const AnalyticConfig& cfg, int steps = 2000);

}  // namespace leak::analytic
