// Mixed-population leak dynamics — the general form of the paper's
// branch analysis (Section 5), for arbitrary mixtures of behaviour
// classes instead of the fixed {honest-active, honest-inactive,
// Byzantine-semi-active} triple.
//
// A branch is described by a list of classes, each with an initial
// stake share and a mean inactivity-score slope (0 = always active,
// 4 = never active, 3/2 = the paper's semi-active, or anything in
// between, e.g. a realistic fleet that misses 5% of its duties).  The
// model provides the active-stake ratio over time, the supermajority
// crossing epoch, and any class's stake proportion — all with
// per-class ejection handled at the class's own ejection epoch.
//
// Setting up the paper's scenarios:
//   Eq 5  = {(p0, slope 0, active), (1-p0, slope 4, inactive)}
//   Eq 8  = {(p0(1-b0), 0, A), (b0, 0, A), ((1-p0)(1-b0), 4, I)}
//   Eq 10 = {(p0(1-b0), 0, A), (b0, 3/2, A), ((1-p0)(1-b0), 4, I)}
#pragma once

#include <string>
#include <vector>

#include "src/analytic/config.hpp"

namespace leak::analytic {

/// One behaviour class on a branch.
struct PopulationClass {
  std::string name;
  /// Initial share of the branch's total stake (shares must sum to 1).
  double share = 0.0;
  /// Mean inactivity-score slope v, so I(t) = v t (0 <= v <= bias).
  double score_slope = 0.0;
  /// Does this class count toward the branch's *active* side of the
  /// supermajority ratio (i.e. does it vote on this branch)?
  bool counts_active = false;
};

/// The mixed-population branch model.
class Population {
 public:
  Population(std::vector<PopulationClass> classes,
             AnalyticConfig cfg = AnalyticConfig::paper());

  [[nodiscard]] const std::vector<PopulationClass>& classes() const {
    return classes_;
  }

  /// Normalized stake weight (s(t)/s0, with ejection) of class k.
  [[nodiscard]] double weight(std::size_t k, double t) const;

  /// Ejection epoch of class k (+inf for slope 0).
  [[nodiscard]] double ejection_epoch_of(std::size_t k) const;

  /// Active-stake ratio of the branch at epoch t (generalized Eq 10).
  [[nodiscard]] double active_ratio(double t) const;

  /// Stake proportion of class k at epoch t (generalized Eq 11).
  [[nodiscard]] double proportion(std::size_t k, double t) const;

  /// First epoch the active ratio exceeds 2/3, found numerically over
  /// [0, horizon]; -1 when it never does within the horizon.  The ratio
  /// may be non-monotone for exotic mixtures, so the search is a scan
  /// refined by bisection on the first sign change.
  [[nodiscard]] double supermajority_epoch(double horizon = 20000.0) const;

  /// Peak proportion of class k over [0, horizon] (scan granularity
  /// `step`), e.g. a Byzantine class's beta-max.
  struct Peak {
    double value = 0.0;
    double epoch = 0.0;
  };
  [[nodiscard]] Peak peak_proportion(std::size_t k, double horizon = 20000.0,
                                     double step = 1.0) const;

 private:
  std::vector<PopulationClass> classes_;
  AnalyticConfig cfg_;
};

/// Convenience constructors for the paper's scenarios.
[[nodiscard]] Population make_honest_partition_population(
    double p0, const AnalyticConfig& cfg = AnalyticConfig::paper());
[[nodiscard]] Population make_slashable_population(
    double p0, double beta0,
    const AnalyticConfig& cfg = AnalyticConfig::paper());
[[nodiscard]] Population make_semiactive_population(
    double p0, double beta0,
    const AnalyticConfig& cfg = AnalyticConfig::paper());

}  // namespace leak::analytic
