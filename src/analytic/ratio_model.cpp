#include "src/analytic/ratio_model.hpp"

#include <stdexcept>

namespace leak::analytic {

namespace {

void check_params(double p0, double beta0) {
  if (p0 < 0.0 || p0 > 1.0) {
    throw std::invalid_argument("ratio_model: p0 must be in [0,1]");
  }
  if (beta0 < 0.0 || beta0 >= 1.0) {
    throw std::invalid_argument("ratio_model: beta0 must be in [0,1)");
  }
}

/// Normalized stake (s/s0) of a behaviour class with ejection zeroing.
double weight(Behavior b, double t, const AnalyticConfig& cfg) {
  return stake_with_ejection(b, t, cfg) / cfg.initial_stake;
}

}  // namespace

double active_ratio_honest(double t, double p0, const AnalyticConfig& cfg) {
  check_params(p0, 0.0);
  const double inact = weight(Behavior::kInactive, t, cfg);
  const double denom = p0 + (1.0 - p0) * inact;
  if (denom == 0.0) return 0.0;  // empty branch (p0 == 0 after ejection)
  return p0 / denom;
}

double active_ratio_slashing(double t, double p0, double beta0,
                             const AnalyticConfig& cfg) {
  check_params(p0, beta0);
  const double inact = weight(Behavior::kInactive, t, cfg);
  const double act = p0 * (1.0 - beta0) + beta0;
  const double denom = act + (1.0 - p0) * (1.0 - beta0) * inact;
  if (denom == 0.0) return 0.0;
  return act / denom;
}

double active_ratio_semiactive(double t, double p0, double beta0,
                               const AnalyticConfig& cfg) {
  check_params(p0, beta0);
  const double inact = weight(Behavior::kInactive, t, cfg);
  const double semi = weight(Behavior::kSemiActive, t, cfg);
  const double act = p0 * (1.0 - beta0) + beta0 * semi;
  const double denom = act + (1.0 - p0) * (1.0 - beta0) * inact;
  if (denom == 0.0) return 0.0;
  return act / denom;
}

double byzantine_proportion(double t, double p0, double beta0,
                            const AnalyticConfig& cfg) {
  check_params(p0, beta0);
  const double inact = weight(Behavior::kInactive, t, cfg);
  const double semi = weight(Behavior::kSemiActive, t, cfg);
  const double byz = beta0 * semi;
  const double denom =
      p0 * (1.0 - beta0) + (1.0 - p0) * (1.0 - beta0) * inact + byz;
  if (denom == 0.0) return 0.0;
  return byz / denom;
}

double beta_max(double p0, double beta0, const AnalyticConfig& cfg) {
  check_params(p0, beta0);
  // Evaluated at the ejection of the honest inactive class (Eq 13): the
  // inactive weight is zero and the semi-active weight is at its gap
  // maximum relative to the actives.
  const double t_eject = ejection_epoch(Behavior::kInactive, cfg);
  const double semi = stake(Behavior::kSemiActive, t_eject, cfg) /
                      cfg.initial_stake;
  const double byz = beta0 * semi;
  const double denom = p0 * (1.0 - beta0) + byz;
  if (denom == 0.0) return 0.0;
  return byz / denom;
}

}  // namespace leak::analytic
