// Generators for the paper's Tables 1-3: each row carries the paper's
// reported value next to the value this library computes, so benches and
// tests can assert reproduction quality.
#pragma once

#include <string>
#include <vector>

#include "src/analytic/solvers.hpp"

namespace leak::analytic {

/// One row of Table 2 or Table 3.
struct FinalizationTimeRow {
  double beta0 = 0.0;
  double paper_epochs = 0.0;     ///< value printed in the paper
  double computed_epochs = 0.0;  ///< our reproduction
};

/// Table 2 — time before conflicting finalization, slashable strategy,
/// p0 = 0.5, beta0 in {0, 0.1, 0.15, 0.2, 0.33}.
[[nodiscard]] std::vector<FinalizationTimeRow> table2(
    const AnalyticConfig& cfg);

/// Table 3 — same for the non-slashable (semi-active) strategy.
[[nodiscard]] std::vector<FinalizationTimeRow> table3(
    const AnalyticConfig& cfg);

/// One row of Table 1 — scenario and qualitative outcome.
struct ScenarioRow {
  std::string id;
  std::string name;
  std::string outcome;
  /// Key quantitative witness computed by this library (epochs or
  /// probability, depending on the scenario).
  double witness = 0.0;
  std::string witness_label;
};

/// Table 1 — the five analysed scenarios with computed witnesses.
[[nodiscard]] std::vector<ScenarioRow> table1(const AnalyticConfig& cfg);

}  // namespace leak::analytic
