// Active-stake ratios and Byzantine stake proportion on a branch during
// the leak (Equations 4-13 of the paper).
//
// Branch convention: `p0` is the initial proportion of *honest*
// validators active on the branch under consideration; `beta0` the
// initial Byzantine stake proportion (held out of the honest split).
// All functions account for the ejection of drained validator classes at
// their continuous ejection epoch, which produces the jump to 1 seen in
// Figure 3 at t = 4685.
#pragma once

#include "src/analytic/config.hpp"
#include "src/analytic/stake_model.hpp"

namespace leak::analytic {

/// Eq 5 — all-honest partition: ratio of active stake on a branch with
/// initial active proportion p0 at epoch t.
[[nodiscard]] double active_ratio_honest(double t, double p0,
                                         const AnalyticConfig& cfg);

/// Eq 8 — Byzantine validators active on BOTH branches (slashable,
/// Section 5.2.1): active-stake ratio on the branch.
[[nodiscard]] double active_ratio_slashing(double t, double p0, double beta0,
                                           const AnalyticConfig& cfg);

/// Eq 10 — Byzantine validators semi-active on each branch
/// (non-slashable, Section 5.2.2): ratio counting the Byzantine stake
/// (decayed by semi-activity) toward the active side.
[[nodiscard]] double active_ratio_semiactive(double t, double p0,
                                             double beta0,
                                             const AnalyticConfig& cfg);

/// Eq 11 — proportion of Byzantine stake on the branch over time when
/// Byzantine validators are semi-active and honest actives stay at s0.
[[nodiscard]] double byzantine_proportion(double t, double p0, double beta0,
                                          const AnalyticConfig& cfg);

/// Eq 13 — the maximum Byzantine proportion, reached at the ejection of
/// the honest inactive class.
[[nodiscard]] double beta_max(double p0, double beta0,
                              const AnalyticConfig& cfg);

}  // namespace leak::analytic
