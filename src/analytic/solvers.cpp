#include "src/analytic/solvers.hpp"

#include <cmath>
#include <stdexcept>

#include "src/support/numeric.hpp"

namespace leak::analytic {

namespace {

/// Cap a supermajority time at the inactive-ejection epoch: at ejection
/// the inactive class leaves the denominator and the ratio jumps to 1.
double cap_at_ejection(double t, const AnalyticConfig& cfg) {
  const double t_eject = ejection_epoch(Behavior::kInactive, cfg);
  return std::min(t, t_eject);
}

}  // namespace

double time_to_supermajority_honest(double p0, const AnalyticConfig& cfg) {
  if (p0 >= kSupermajority) return 0.0;
  if (p0 <= 0.0) return ejection_epoch(Behavior::kInactive, cfg);
  // Eq 6: t = sqrt(2^25 [ln(2(1-p0)) - ln(p0)]), generalized to
  // sqrt((2 q / bias) * [...]) for arbitrary quotient/bias.
  const double scale = 2.0 * cfg.quotient / cfg.score_bias;
  const double arg = std::log(2.0 * (1.0 - p0)) - std::log(p0);
  return cap_at_ejection(std::sqrt(scale * arg), cfg);
}

double time_to_supermajority_slashing(double p0, double beta0,
                                      const AnalyticConfig& cfg) {
  const double act = p0 * (1.0 - beta0) + beta0;
  if (act >= kSupermajority * (act + (1.0 - p0) * (1.0 - beta0))) return 0.0;
  // Eq 9: t = sqrt(2^25 [ln(2(1-p0)) - ln(p0 + beta0/(1-beta0))]).
  const double scale = 2.0 * cfg.quotient / cfg.score_bias;
  const double arg = std::log(2.0 * (1.0 - p0)) -
                     std::log(p0 + beta0 / (1.0 - beta0));
  if (arg <= 0.0) return 0.0;
  return cap_at_ejection(std::sqrt(scale * arg), cfg);
}

double time_to_supermajority_semiactive(double p0, double beta0,
                                        const AnalyticConfig& cfg) {
  const double t_eject = ejection_epoch(Behavior::kInactive, cfg);
  const auto gap = [&](double t) {
    return active_ratio_semiactive(t, p0, beta0, cfg) - kSupermajority;
  };
  if (gap(0.0) >= 0.0) return 0.0;
  // The ratio is increasing in t up to ejection; bracket then refine.
  // Stop the bracket just below the ejection jump so the discontinuity
  // is never mistaken for a smooth crossing.
  const double limit = t_eject - 1e-6;
  const auto bracket = num::bracket_upward(gap, 0.0, 64.0, limit);
  if (!bracket) return t_eject;  // supermajority only via ejection jump
  const auto root = num::brent(gap, bracket->first, bracket->second, 1e-9);
  if (!root.converged) {
    throw std::runtime_error("time_to_supermajority_semiactive: no root");
  }
  return root.root;
}

double conflicting_finalization_epoch(double p0, double beta0,
                                      ByzantineStrategy strategy,
                                      const AnalyticConfig& cfg) {
  const auto branch_time = [&](double p) {
    switch (strategy) {
      case ByzantineStrategy::kNone:
        return time_to_supermajority_honest(p, cfg);
      case ByzantineStrategy::kSlashable:
        return time_to_supermajority_slashing(p, beta0, cfg);
      case ByzantineStrategy::kSemiActive:
        return time_to_supermajority_semiactive(p, beta0, cfg);
    }
    throw std::logic_error("conflicting_finalization_epoch: bad strategy");
  };
  // The fork's two branches have honest-active shares p0 and 1-p0; the
  // conflict completes when the slower branch finalizes, one epoch after
  // regaining 2/3 (finalizing the preceding justified checkpoint).
  const double slower = std::max(branch_time(p0), branch_time(1.0 - p0));
  return slower + 1.0;
}

double gst_safety_upper_bound(const AnalyticConfig& cfg) {
  // Honest-only, best case for the attackers of Safety is the even split
  // p0 = 0.5, and even then both branches only finalize at the ejection
  // epoch (Section 5.1): bound = ejection + 1.
  return conflicting_finalization_epoch(0.5, 0.0, ByzantineStrategy::kNone,
                                        cfg);
}

bool beta_exceeds_third(double p0, double beta0, const AnalyticConfig& cfg) {
  return beta_max(p0, beta0, cfg) >= 1.0 / 3.0;
}

double beta0_lower_bound(double p0, const AnalyticConfig& cfg) {
  if (p0 <= 0.0) return 0.0;
  // beta_max >= 1/3  <=>  3 beta0 E >= p0 (1-beta0) + beta0 E
  //                  <=>  beta0 >= p0 / (p0 + 2E)
  // with E = semi-active decay at the inactive-ejection epoch.
  const double t_eject = ejection_epoch(Behavior::kInactive, cfg);
  const double e = stake(Behavior::kSemiActive, t_eject, cfg) /
                   cfg.initial_stake;
  return p0 / (p0 + 2.0 * e);
}

std::vector<Fig7Point> fig7_frontier(const std::vector<double>& p0_grid,
                                     const AnalyticConfig& cfg) {
  std::vector<Fig7Point> out;
  out.reserve(p0_grid.size());
  for (const double p0 : p0_grid) {
    Fig7Point pt;
    pt.p0 = p0;
    pt.beta0_branch1 = beta0_lower_bound(p0, cfg);
    pt.beta0_branch2 = beta0_lower_bound(1.0 - p0, cfg);
    pt.beta0_both = std::max(pt.beta0_branch1, pt.beta0_branch2);
    out.push_back(pt);
  }
  return out;
}

Fig7Point fig7_optimum(const AnalyticConfig& cfg) {
  // beta0_both is symmetric around p0 = 0.5 and increasing in
  // max(p0, 1-p0); its minimum is at the even split.
  Fig7Point pt;
  pt.p0 = 0.5;
  pt.beta0_branch1 = beta0_lower_bound(0.5, cfg);
  pt.beta0_branch2 = pt.beta0_branch1;
  pt.beta0_both = pt.beta0_branch1;
  return pt;
}

}  // namespace leak::analytic
