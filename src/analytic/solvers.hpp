// Threshold solvers: when does a branch regain a 2/3 active-stake
// supermajority, when do both branches of the fork finalize, and for
// which (p0, beta0) does the Byzantine proportion exceed 1/3
// (Equations 6, 9, 10, 12-14 and the scenario results of Section 5).
#pragma once

#include <optional>
#include <vector>

#include "src/analytic/config.hpp"
#include "src/analytic/ratio_model.hpp"

namespace leak::analytic {

/// Threshold for justification: strictly more than 2/3 of the stake.
inline constexpr double kSupermajority = 2.0 / 3.0;

/// Eq 6 — epochs for a branch with honest-only validators and initial
/// active proportion p0 (< 2/3) to regain 2/3 active stake, capped at
/// the inactive-ejection epoch.
[[nodiscard]] double time_to_supermajority_honest(double p0,
                                                  const AnalyticConfig& cfg);

/// Eq 9 — same with Byzantine stake beta0 active on both branches
/// (slashable strategy of Section 5.2.1).
[[nodiscard]] double time_to_supermajority_slashing(
    double p0, double beta0, const AnalyticConfig& cfg);

/// Numeric root of Eq 10 = 2/3 — Byzantine semi-active (Section 5.2.2),
/// capped at the inactive-ejection epoch.
[[nodiscard]] double time_to_supermajority_semiactive(
    double p0, double beta0, const AnalyticConfig& cfg);

/// Epoch of *conflicting finalization* for a fork whose honest validators
/// split p0 / 1-p0: one epoch after the slower branch regains 2/3
/// ("adding an epoch is necessary after gaining 2/3 of active stake to
/// finalize the preceding justified checkpoint").  Scenario selector:
enum class ByzantineStrategy : std::uint8_t {
  kNone,        ///< Section 5.1 (honest only)
  kSlashable,   ///< Section 5.2.1 (active on both branches)
  kSemiActive,  ///< Section 5.2.2 (alternating, non-slashable)
};

[[nodiscard]] double conflicting_finalization_epoch(
    double p0, double beta0, ByzantineStrategy strategy,
    const AnalyticConfig& cfg);

/// GST upper bound for Safety with only honest validators (Section 5.1):
/// any partition lasting longer than this many epochs of leak forfeits
/// Safety.  Equals 4686 for the paper configuration.
[[nodiscard]] double gst_safety_upper_bound(const AnalyticConfig& cfg);

/// Eq 12/13 — does (p0, beta0) let the Byzantine proportion exceed 1/3
/// on the branch with honest-active share p0?
[[nodiscard]] bool beta_exceeds_third(double p0, double beta0,
                                      const AnalyticConfig& cfg);

/// Smallest beta0 such that beta_max(p0, beta0) >= 1/3, in closed form:
/// beta0 = p0 / (p0 + 2 E) with E the semi-active decay at the ejection
/// epoch.  Returns 0.2421 at p0 = 0.5 for the paper configuration.
[[nodiscard]] double beta0_lower_bound(double p0, const AnalyticConfig& cfg);

/// A point of the Figure 7 frontier: for a given p0, the minimal beta0
/// whose beta_max reaches 1/3 on *both* branches (the figure's two
/// mirrored curves; both-branches feasibility needs the max of the two).
struct Fig7Point {
  double p0 = 0.0;
  double beta0_branch1 = 0.0;   ///< frontier for the p0 branch
  double beta0_branch2 = 0.0;   ///< frontier for the 1-p0 branch
  double beta0_both = 0.0;      ///< max of the two: both branches exceed
};

/// Sample the Figure 7 frontier over a p0 grid.
[[nodiscard]] std::vector<Fig7Point> fig7_frontier(
    const std::vector<double>& p0_grid, const AnalyticConfig& cfg);

/// The global minimum of `beta0_both` over p0 (attained at p0 = 0.5).
[[nodiscard]] Fig7Point fig7_optimum(const AnalyticConfig& cfg);

}  // namespace leak::analytic
