// Configuration of the continuous (analytic) model of Section 4.3.
//
// Calibration note (see DESIGN.md §4): the paper states an ejection
// threshold of 16.75 ETH but reports ejection epochs 4685 (inactive) and
// 7652 (semi-active); those epochs correspond to an effective threshold
// of ~16.6375 ETH.  `paper()` uses the calibrated threshold so every
// downstream number (Tables 2/3, Figure 7's 0.2421 bound, the 4686-epoch
// GST bound) reproduces the paper exactly; `stated()` uses the literal
// 16.75 and `mainnet()` the spec's 16 ETH, both for sensitivity checks.
#pragma once

#include <cmath>
#include <cstdint>

namespace leak::analytic {

struct AnalyticConfig {
  /// Initial stake s0 in ETH.
  double initial_stake = 32.0;
  /// Inactivity penalty quotient (2^26 in the paper's Eq 2/3).
  double quotient = 67108864.0;  // 2^26
  /// Score added per inactive epoch.
  double score_bias = 4.0;
  /// Score removed per active epoch during a leak.
  double score_active_decrement = 1.0;
  /// Ejection threshold in ETH.
  double ejection_threshold = 16.6375;

  [[nodiscard]] static AnalyticConfig paper() { return AnalyticConfig{}; }

  [[nodiscard]] static AnalyticConfig stated() {
    AnalyticConfig c;
    c.ejection_threshold = 16.75;
    return c;
  }

  [[nodiscard]] static AnalyticConfig mainnet() {
    AnalyticConfig c;
    c.quotient = 16777216.0;  // 2^24 (Bellatrix)
    c.ejection_threshold = 16.0;
    return c;
  }
};

}  // namespace leak::analytic
