// Generalized duty-cycle behaviours — an extension of the paper's
// three-way active / semi-active / inactive taxonomy (Section 4.3).
//
// A validator with duty cycle 1/k is active one epoch out of every k
// (k = 1: active, k = 2: the paper's semi-active, k -> inf: inactive).
// Its inactivity score grows with mean slope
//     v(k) = (bias * (k-1) - decrement) / k
// so its stake decays as s0 * exp(-v(k) t^2 / (2 q)).  This family is
// exactly the design space of non-slashable strategies: a Byzantine
// validator alternating over m >= 2 branches is active on each branch
// with duty cycle 1/m.  The tools here answer the paper's implicit
// follow-up question: how does the attack degrade when the adversary
// spreads over more than two branches?
#pragma once

#include <optional>

#include "src/analytic/config.hpp"
#include "src/analytic/stake_model.hpp"

namespace leak::analytic {

/// Mean score slope of a 1-in-k duty cycle (k >= 1); k = 0 means never
/// active (slope = bias).
[[nodiscard]] double duty_cycle_slope(unsigned k, const AnalyticConfig& cfg);

/// Closed-form stake of a 1-in-k validator at epoch t (no ejection).
[[nodiscard]] double duty_cycle_stake(unsigned k, double t,
                                      const AnalyticConfig& cfg);

/// Ejection epoch of a 1-in-k validator (+inf for k = 1 when the slope
/// is <= 0, i.e. fully active).
[[nodiscard]] double duty_cycle_ejection_epoch(unsigned k,
                                               const AnalyticConfig& cfg);

/// Discrete trajectory of a 1-in-k validator (active at epochs where
/// t % k == k-1), for cross-validation of the slope formula.
[[nodiscard]] DiscreteTrajectory duty_cycle_discrete(
    unsigned k, std::size_t epochs, const AnalyticConfig& cfg);

/// Multi-branch generalization of the Section 5.2.2 attack: Byzantine
/// validators rotate over m branches (duty cycle 1/m per branch) while
/// honest validators split evenly (p0 = 1/m per branch).  Returns the
/// epochs until a branch regains a 2/3 supermajority (the slowest =
/// only branch time, by symmetry), capped at the inactive ejection.
[[nodiscard]] double multibranch_supermajority_epoch(
    unsigned branches, double beta0, const AnalyticConfig& cfg);

/// beta_max for the m-branch attack (Eq 13 generalized): the Byzantine
/// proportion reached on each branch at the honest-inactive ejection.
[[nodiscard]] double multibranch_beta_max(unsigned branches, double beta0,
                                          const AnalyticConfig& cfg);

/// Minimum beta0 whose m-branch beta_max reaches 1/3.
[[nodiscard]] double multibranch_beta0_lower_bound(
    unsigned branches, const AnalyticConfig& cfg);

/// Per-validator honest-stake threshold of the Eq 23 exceedance
/// criterion on one branch of the m-branch rotation at epoch t: the
/// branch's Byzantine proportion exceeds 1/3 exactly when the honest
/// stake falls below this value.  branches = 2 reproduces the
/// two-branch criterion run_bouncing_mc has always used,
/// bit-identically.
[[nodiscard]] double multibranch_exceed_threshold(unsigned branches,
                                                  double beta0, double t,
                                                  const AnalyticConfig& cfg);

}  // namespace leak::analytic
