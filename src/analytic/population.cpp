#include "src/analytic/population.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/support/numeric.hpp"

namespace leak::analytic {

Population::Population(std::vector<PopulationClass> classes,
                       AnalyticConfig cfg)
    : classes_(std::move(classes)), cfg_(cfg) {
  if (classes_.empty()) {
    throw std::invalid_argument("Population: no classes");
  }
  double total = 0.0;
  for (const auto& c : classes_) {
    if (c.share < 0.0) {
      throw std::invalid_argument("Population: negative share");
    }
    if (c.score_slope < 0.0 || c.score_slope > cfg_.score_bias) {
      throw std::invalid_argument("Population: slope outside [0, bias]");
    }
    total += c.share;
  }
  if (std::abs(total - 1.0) > 1e-9) {
    throw std::invalid_argument("Population: shares must sum to 1");
  }
}

double Population::ejection_epoch_of(std::size_t k) const {
  const double v = classes_.at(k).score_slope;
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  const double ratio = cfg_.initial_stake / cfg_.ejection_threshold;
  return std::sqrt(2.0 * cfg_.quotient * std::log(ratio) / v);
}

double Population::weight(std::size_t k, double t) const {
  const double v = classes_.at(k).score_slope;
  if (v <= 0.0) return 1.0;
  if (t >= ejection_epoch_of(k)) return 0.0;
  return std::exp(-v * t * t / (2.0 * cfg_.quotient));
}

double Population::active_ratio(double t) const {
  double active = 0.0, total = 0.0;
  for (std::size_t k = 0; k < classes_.size(); ++k) {
    const double mass = classes_[k].share * weight(k, t);
    total += mass;
    if (classes_[k].counts_active) active += mass;
  }
  return total > 0.0 ? active / total : 0.0;
}

double Population::proportion(std::size_t k, double t) const {
  double total = 0.0;
  for (std::size_t i = 0; i < classes_.size(); ++i) {
    total += classes_[i].share * weight(i, t);
  }
  if (total <= 0.0) return 0.0;
  return classes_.at(k).share * weight(k, t) / total;
}

double Population::supermajority_epoch(double horizon) const {
  const auto gap = [&](double t) { return active_ratio(t) - 2.0 / 3.0; };
  if (gap(0.0) >= 0.0) return 0.0;
  // Scan for the first sign change (the ratio can jump at per-class
  // ejection epochs), then refine within the bracket.
  const double step = 4.0;
  double prev = 0.0;
  for (double t = step; t <= horizon; t += step) {
    if (gap(t) >= 0.0) {
      const auto root = num::brent(gap, prev, t, 1e-9);
      // A jump discontinuity still brackets: brent converges to it.
      return root.converged ? root.root : t;
    }
    prev = t;
  }
  return -1.0;
}

Population::Peak Population::peak_proportion(std::size_t k, double horizon,
                                             double step) const {
  Peak best;
  for (double t = 0.0; t <= horizon; t += step) {
    const double p = proportion(k, t);
    if (p > best.value) {
      best.value = p;
      best.epoch = t;
    }
  }
  return best;
}

Population make_honest_partition_population(double p0,
                                            const AnalyticConfig& cfg) {
  return Population(
      {
          {"honest-active", p0, 0.0, true},
          {"honest-inactive", 1.0 - p0, cfg.score_bias, false},
      },
      cfg);
}

Population make_slashable_population(double p0, double beta0,
                                     const AnalyticConfig& cfg) {
  return Population(
      {
          {"honest-active", p0 * (1.0 - beta0), 0.0, true},
          {"byzantine", beta0, 0.0, true},
          {"honest-inactive", (1.0 - p0) * (1.0 - beta0), cfg.score_bias,
           false},
      },
      cfg);
}

Population make_semiactive_population(double p0, double beta0,
                                      const AnalyticConfig& cfg) {
  const double semi = (cfg.score_bias - cfg.score_active_decrement) / 2.0;
  return Population(
      {
          {"honest-active", p0 * (1.0 - beta0), 0.0, true},
          {"byzantine", beta0, semi, true},
          {"honest-inactive", (1.0 - p0) * (1.0 - beta0), cfg.score_bias,
           false},
      },
      cfg);
}

}  // namespace leak::analytic
