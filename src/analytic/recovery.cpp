#include "src/analytic/recovery.hpp"

#include <cmath>
#include <stdexcept>

namespace leak::analytic {

double recovery_epochs(double score0, const RecoveryConfig& rc) {
  if (score0 < 0.0) throw std::invalid_argument("recovery: score0 < 0");
  return score0 / rc.decay_per_epoch;
}

double residual_loss(double score0, double stake_end,
                     const AnalyticConfig& cfg, const RecoveryConfig& rc) {
  if (score0 < 0.0 || stake_end < 0.0) {
    throw std::invalid_argument("residual_loss: negative inputs");
  }
  // Score decays linearly: I(t) = score0 - d t over T = score0/d epochs.
  // ds/dt = -I(t) s / q  =>  s(T) = s_end * exp(-score0^2 / (2 d q)).
  const double d = rc.decay_per_epoch;
  const double factor = std::exp(-score0 * score0 / (2.0 * d * cfg.quotient));
  return stake_end * (1.0 - factor);
}

double residual_loss_discrete(double score0, double stake_end,
                              const AnalyticConfig& cfg,
                              const RecoveryConfig& rc) {
  double s = stake_end;
  double score = score0;
  while (score > 0.0) {
    s -= score * s / cfg.quotient;
    score = std::max(score - rc.decay_per_epoch, 0.0);
  }
  return stake_end - s;
}

double score_at_leak_end(double t, const AnalyticConfig& cfg) {
  return cfg.score_bias * t;
}

}  // namespace leak::analytic
