#include "src/analytic/stake_model.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/support/numeric.hpp"

namespace leak::analytic {

double score_slope(Behavior b, const AnalyticConfig& cfg) {
  switch (b) {
    case Behavior::kActive:
      return 0.0;
    case Behavior::kSemiActive:
      // +bias one epoch, -decrement the next: net (bias - dec) per two
      // epochs, i.e. slope (bias - dec) / 2 = 3/2 for the paper values.
      return (cfg.score_bias - cfg.score_active_decrement) / 2.0;
    case Behavior::kInactive:
      return cfg.score_bias;
  }
  throw std::logic_error("score_slope: bad behavior");
}

double inactivity_score(Behavior b, double t, const AnalyticConfig& cfg) {
  return score_slope(b, cfg) * t;
}

double stake(Behavior b, double t, const AnalyticConfig& cfg) {
  const double v = score_slope(b, cfg);
  return cfg.initial_stake * std::exp(-v * t * t / (2.0 * cfg.quotient));
}

double stake_with_ejection(Behavior b, double t, const AnalyticConfig& cfg) {
  const double s = stake(b, t, cfg);
  return s <= cfg.ejection_threshold ? 0.0 : s;
}

double ejection_epoch(Behavior b, const AnalyticConfig& cfg) {
  const double v = score_slope(b, cfg);
  if (v <= 0.0) return std::numeric_limits<double>::infinity();
  // s0 exp(-v t^2 / 2q) = threshold  =>  t = sqrt(2q ln(s0/thr) / v).
  const double ratio = cfg.initial_stake / cfg.ejection_threshold;
  return std::sqrt(2.0 * cfg.quotient * std::log(ratio) / v);
}

DiscreteTrajectory simulate_discrete(
    const std::vector<std::uint8_t>& active_at,
                                     const AnalyticConfig& cfg) {
  DiscreteTrajectory out;
  out.stake.reserve(active_at.size() + 1);
  out.score.reserve(active_at.size() + 1);
  double s = cfg.initial_stake;
  double score = 0.0;
  out.stake.push_back(s);
  out.score.push_back(score);
  for (std::size_t t = 0; t < active_at.size(); ++t) {
    // Eq 2: penalty uses the score and stake of the previous epoch.
    s -= score * s / cfg.quotient;
    // Eq 1: score update with the protocol's floor at zero.
    if (active_at[t] != 0) {
      score = std::max(score - cfg.score_active_decrement, 0.0);
    } else {
      score += cfg.score_bias;
    }
    out.stake.push_back(s);
    out.score.push_back(score);
    if (out.ejection_epoch < 0 && s <= cfg.ejection_threshold) {
      out.ejection_epoch = static_cast<std::int64_t>(t + 1);
    }
  }
  return out;
}

DiscreteTrajectory simulate_discrete(Behavior b, std::size_t epochs,
                                     const AnalyticConfig& cfg) {
  std::vector<std::uint8_t> active(epochs);
  for (std::size_t t = 0; t < epochs; ++t) {
    switch (b) {
      case Behavior::kActive:
        active[t] = true;
        break;
      case Behavior::kSemiActive:
        active[t] = (t % 2 == 1);  // inactive first, active the next
        break;
      case Behavior::kInactive:
        active[t] = false;
        break;
    }
  }
  return simulate_discrete(active, cfg);
}

double stake_ode(Behavior b, double t, const AnalyticConfig& cfg,
                 int steps) {
  const double v = score_slope(b, cfg);
  const auto rhs = [&](double tt, double y) {
    return -(v * tt) * y / cfg.quotient;
  };
  const auto traj = num::rk4(rhs, 0.0, cfg.initial_stake, t, steps);
  return traj.back().y;
}

}  // namespace leak::analytic
