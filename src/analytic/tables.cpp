#include "src/analytic/tables.hpp"

#include <cmath>

namespace leak::analytic {

namespace {

/// The beta0 grid and paper-reported epochs for Tables 2 and 3.
struct PaperRow {
  double beta0;
  double table2_epochs;
  double table3_epochs;
};
constexpr PaperRow kPaperRows[] = {
    {0.00, 4685.0, 4685.0}, {0.10, 4066.0, 4221.0}, {0.15, 3622.0, 3819.0},
    {0.20, 3107.0, 3328.0}, {0.33, 502.0, 556.0},
};

}  // namespace

std::vector<FinalizationTimeRow> table2(const AnalyticConfig& cfg) {
  std::vector<FinalizationTimeRow> rows;
  for (const auto& pr : kPaperRows) {
    FinalizationTimeRow r;
    r.beta0 = pr.beta0;
    r.paper_epochs = pr.table2_epochs;
    r.computed_epochs =
        time_to_supermajority_slashing(0.5, pr.beta0, cfg);
    rows.push_back(r);
  }
  return rows;
}

std::vector<FinalizationTimeRow> table3(const AnalyticConfig& cfg) {
  std::vector<FinalizationTimeRow> rows;
  for (const auto& pr : kPaperRows) {
    FinalizationTimeRow r;
    r.beta0 = pr.beta0;
    r.paper_epochs = pr.table3_epochs;
    r.computed_epochs =
        time_to_supermajority_semiactive(0.5, pr.beta0, cfg);
    rows.push_back(r);
  }
  return rows;
}

std::vector<ScenarioRow> table1(const AnalyticConfig& cfg) {
  std::vector<ScenarioRow> rows;
  {
    ScenarioRow r;
    r.id = "5.1";
    r.name = "All honest";
    r.outcome = "2 finalized branches";
    r.witness = gst_safety_upper_bound(cfg);
    r.witness_label = "conflicting finalization epoch (p0=0.5)";
    rows.push_back(r);
  }
  {
    ScenarioRow r;
    r.id = "5.2.1";
    r.name = "Slashable Byzantine";
    r.outcome = "2 finalized branches";
    r.witness = conflicting_finalization_epoch(
        0.5, 0.33, ByzantineStrategy::kSlashable, cfg);
    r.witness_label = "conflicting finalization epoch (p0=0.5, b0=0.33)";
    rows.push_back(r);
  }
  {
    ScenarioRow r;
    r.id = "5.2.2";
    r.name = "Non slashable Byzantine";
    r.outcome = "2 finalized branches";
    r.witness = conflicting_finalization_epoch(
        0.5, 0.33, ByzantineStrategy::kSemiActive, cfg);
    r.witness_label = "conflicting finalization epoch (p0=0.5, b0=0.33)";
    rows.push_back(r);
  }
  {
    ScenarioRow r;
    r.id = "5.2.3";
    r.name = "Non slashable Byzantine";
    r.outcome = "beta > 1/3";
    r.witness = beta0_lower_bound(0.5, cfg);
    r.witness_label = "min beta0 to exceed 1/3 on both branches (p0=0.5)";
    rows.push_back(r);
  }
  {
    ScenarioRow r;
    r.id = "5.3";
    r.name = "Probabilistic Bouncing attack";
    r.outcome = "beta > 1/3 probably";
    // Witness: probability 0.5 at beta0 = 1/3 (see Figure 10 discussion).
    r.witness = 0.5;
    r.witness_label = "P[beta>1/3] for beta0=1/3 (single branch)";
    rows.push_back(r);
  }
  return rows;
}

}  // namespace leak::analytic
