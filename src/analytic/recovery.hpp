// Post-leak recovery dynamics.
//
// The paper observes (Figure 3 discussion) that the active-stake ratio
// keeps rising for a while after the 2/3 threshold is regained "because
// the penalties for inactive validators take some time to return to
// zero".  This module quantifies that tail: once finalization resumes,
// a previously-inactive validator's score decays by
// (active decrement + recovery rate) per epoch while its (shrinking)
// score keeps inflicting Eq 2 penalties.
#pragma once

#include "src/analytic/config.hpp"

namespace leak::analytic {

/// Protocol score decay per epoch once the leak has ended and the
/// validator attests again (-1 active, -16 out-of-leak recovery).
struct RecoveryConfig {
  double decay_per_epoch = 17.0;
};

/// Epochs until a score of `score0` returns to zero after the leak.
[[nodiscard]] double recovery_epochs(double score0,
                                     const RecoveryConfig& rc = {});

/// Residual stake lost *after* the leak ends, starting from score0 and
/// stake s_end, in ETH (closed form of the sum of Eq 2 penalties over
/// the linearly decaying score; exact for the continuous model).
[[nodiscard]] double residual_loss(double score0, double stake_end,
                                   const AnalyticConfig& cfg,
                                   const RecoveryConfig& rc = {});

/// Discrete cross-check: iterate the exact recurrences until the score
/// reaches zero; returns the lost stake in ETH.
[[nodiscard]] double residual_loss_discrete(double score0, double stake_end,
                                            const AnalyticConfig& cfg,
                                            const RecoveryConfig& rc = {});

/// The score an inactive validator carries when its branch regains the
/// supermajority at epoch t (score slope * t, for the continuous model).
[[nodiscard]] double score_at_leak_end(double t, const AnalyticConfig& cfg);

}  // namespace leak::analytic
