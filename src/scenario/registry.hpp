// The experiment registry: every attack/leak experiment is a named,
// parameterized, sweepable artifact.  A Scenario couples a declarative
// ScenarioSpec with a run function; the ScenarioRegistry holds them by
// name.  Registering a new experiment is ~50 lines (spec + adapter
// around an existing driver) instead of a new binary.
//
// Uniform contract, enforced at registration time: every spec declares
// the int parameters `paths` (trial count), `seed` (master RNG seed),
// `threads` (0 = LEAK_THREADS / hardware_concurrency), and `block`
// (trials per scheduled block, 0 = LEAK_BLOCK / tuned default), so
// generic tooling — `leakctl run <name> --paths 64 --block 256`, the
// CI scenario-smoke job, the sweep engine's per-cell seeding — works
// on every scenario without scenario-specific knowledge.
// Deterministic analytic scenarios accept them and note that they are
// ignored.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/scenario/result.hpp"
#include "src/scenario/spec.hpp"

namespace leak::scenario {

/// Fills a ScenarioResult's metrics/stats/trials from validated
/// parameters; the wrapper stamps identity and metadata.
using RunFn = std::function<void(const ParamSet&, ScenarioResult*)>;

class Scenario {
 public:
  Scenario(ScenarioSpec spec, RunFn run);

  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  /// Validate `params` against the spec, run, and stamp metadata
  /// (scenario name, params, seed, resolved threads, git describe,
  /// wall-clock ms).  Throws std::invalid_argument on invalid params.
  [[nodiscard]] ScenarioResult run(const ParamSet& params) const;

 private:
  ScenarioSpec spec_;
  RunFn run_;
};

class ScenarioRegistry {
 public:
  /// Register; throws std::invalid_argument on a duplicate name or a
  /// spec missing the uniform paths/seed/threads parameters.
  void add(ScenarioSpec spec, RunFn run);

  [[nodiscard]] const Scenario* find(std::string_view name) const;
  /// All scenarios, sorted by name.
  [[nodiscard]] std::vector<const Scenario*> all() const;
  [[nodiscard]] std::size_t size() const { return scenarios_.size(); }

 private:
  std::vector<std::unique_ptr<Scenario>> scenarios_;
};

/// The process-wide registry pre-loaded with the built-in scenarios
/// (bouncing-mc, attack-lifetime, population-ensemble,
/// partition-trials, duty-cycle, recovery, slot-protocol, table1,
/// balancing-attack, semiactive-sweep, multi-partition-recovery).
/// Construct-on-first-use; safe to call from multiple threads after
/// first use, but intended to be touched from main-thread setup code.
[[nodiscard]] ScenarioRegistry& builtin_registry();

/// Register the built-ins into an arbitrary registry (exposed for
/// tests that want a fresh instance).
void register_builtin_scenarios(ScenarioRegistry& registry);

}  // namespace leak::scenario
