// Built-in scenario registrations: one adapter per existing driver.
// Each registration is a spec (typed parameters with defaults that
// reproduce the corresponding paper artifact) plus a run function that
// maps the validated ParamSet onto the driver's config struct and the
// driver's result onto the uniform ScenarioResult.  Every Monte Carlo
// scenario fans its trials through TrialRunner, so results are
// bit-identical for any thread count.
#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/analytic/duty_cycle.hpp"
#include "src/analytic/recovery.hpp"
#include "src/analytic/stake_model.hpp"
#include "src/analytic/tables.hpp"
#include "src/bouncing/attack_sim.hpp"
#include "src/bouncing/montecarlo.hpp"
#include "src/faults/driver.hpp"
#include "src/faults/schedule.hpp"
#include "src/runner/trial_runner.hpp"
#include "src/scenario/registry.hpp"
#include "src/sim/partition_sim.hpp"
#include "src/sim/slot_sim.hpp"
#include "src/support/parse.hpp"
#include "src/support/random.hpp"
#include "src/support/stats.hpp"
#include "src/support/types.hpp"

namespace leak::scenario {

namespace {

[[noreturn]] void bad_params(const std::string& msg) {
  throw std::invalid_argument(msg);
}

/// Parse a comma-separated, strictly increasing epoch grid ("2000,4024").
std::vector<std::size_t> parse_snapshot_grid(const std::string& text,
                                             std::size_t max_epoch) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const auto comma = text.find(',', start);
    const auto piece = text.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    const auto v = parse::u64(piece);
    if (!v || *v == 0) {
      bad_params("snapshots: \"" + piece + "\" is not a positive epoch");
    }
    if (!out.empty() && *v <= out.back()) {
      bad_params("snapshots must be strictly increasing");
    }
    if (*v > max_epoch) {
      bad_params("snapshot epoch " + std::to_string(*v) +
                 " is beyond epochs=" + std::to_string(max_epoch));
    }
    out.push_back(static_cast<std::size_t>(*v));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

double median_alive(const std::vector<double>& stakes) {
  std::vector<double> alive;
  for (const double s : stakes) {
    if (s > 0.0) alive.push_back(s);
  }
  return alive.empty() ? 0.0 : quantile(std::move(alive), 0.5);
}

sim::Strategy strategy_from_name(const std::string& name) {
  if (name == "honest") return sim::Strategy::kNone;
  if (name == "slashable") return sim::Strategy::kSlashable;
  if (name == "semiactive") return sim::Strategy::kSemiActiveFinalize;
  return sim::Strategy::kSemiActiveOverthrow;  // "overthrow"
}

faults::LinkClass link_from_name(const std::string& name) {
  if (name == "intra") return faults::LinkClass::kIntra;
  if (name == "cross") return faults::LinkClass::kCross;
  return faults::LinkClass::kAll;  // "all"
}

/// The shared `faults` param: an inline fault-schedule JSON document
/// (the compact FaultSchedule::dump form, or anything from_string
/// accepts).  Inline -- not a path -- so sweep cells, serve jobs and
/// search journals stay self-contained and resumable; leakctl --faults
/// reads the file and injects its contents here.
ScenarioSpec& add_faults_param(ScenarioSpec& spec) {
  return spec.add_string(
      "faults",
      "inline fault-schedule JSON overriding the scenario's own "
      "partition/weather knobs (empty = knobs; leakctl --faults FILE "
      "fills this)",
      "");
}

/// Resolve the effective schedule: the `faults` param wins, otherwise
/// the knob-built fallback.
faults::FaultSchedule resolve_schedule(const ParamSet& p,
                                       faults::FaultSchedule fallback) {
  const std::string& text = p.get_string("faults");
  if (text.empty()) return fallback;
  return faults::FaultSchedule::from_string(text);
}

// --- bouncing-mc --------------------------------------------------------
// Figure 9 defaults: censored stake law at t = 4024, 4000 paths, seed 99.

void register_bouncing_mc(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "bouncing-mc",
      "Monte Carlo of the Figure 8 bouncing-attack stake dynamics; "
      "empirical censored stake law vs the closed form (Fig 9) and "
      "P[beta > 1/3] (Fig 10 cross-check)");
  spec.add_int("paths", "independent Monte Carlo paths", 4000, 1, 1e9)
      .add_int("epochs", "horizon in epochs", 4024, 1, 1e7)
      .add_double("p0", "honest branch-assignment probability", 0.5, 0.0, 1.0)
      .add_double("beta0", "Byzantine stake proportion", 0.33, 0.0, 0.5)
      .add_string("snapshots",
                  "comma-separated snapshot epochs; empty = final epoch only",
                  "")
      .add_int("seed", "master RNG seed", 99)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "paths per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    bouncing::McConfig cfg;
    cfg.paths = static_cast<std::size_t>(p.get_int("paths"));
    cfg.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    cfg.p0 = p.get_double("p0");
    cfg.beta0 = p.get_double("beta0");
    cfg.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    std::vector<std::size_t> snaps;
    const std::string& grid = p.get_string("snapshots");
    if (grid.empty()) {
      snaps = {cfg.epochs};
    } else {
      snaps = parse_snapshot_grid(grid, cfg.epochs);
    }
    const auto res = bouncing::run_bouncing_mc(cfg, snaps);

    Table rows({"epoch", "ejected_fraction", "capped_fraction",
                "prob_beta_exceeds", "median_alive_stake"});
    for (std::size_t k = 0; k < res.epochs.size(); ++k) {
      rows.add_row({std::to_string(res.epochs[k]),
                    Table::fmt_exact(res.ejected_fraction[k]),
                    Table::fmt_exact(res.capped_fraction[k]),
                    Table::fmt_exact(res.prob_beta_exceeds[k]),
                    Table::fmt_exact(median_alive(res.stakes[k]))});
    }
    out->trials = std::move(rows);

    const std::size_t last = res.epochs.size() - 1;
    out->add_metric("ejected_fraction", res.ejected_fraction[last]);
    out->add_metric("capped_fraction", res.capped_fraction[last]);
    out->add_metric("prob_beta_exceeds", res.prob_beta_exceeds[last]);
    out->add_metric("median_alive_stake", median_alive(res.stakes[last]));
    RunningStats final_stakes;
    for (const double s : res.stakes[last]) final_stakes.add(s);
    out->add_stats("final_stake", final_stakes);
  });
}

// --- attack-lifetime ----------------------------------------------------

void register_attack_lifetime(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "attack-lifetime",
      "Stochastic lifetime of the probabilistic bouncing attack "
      "(Section 5.3): per-epoch proposer lottery, attack-duration "
      "distribution, and P[beta crosses 1/3 before the attack dies]");
  spec.add_int("paths", "independent attack runs", 1000, 1, 1e9)
      .add_double("beta0", "initial Byzantine stake proportion", 0.33, 0.0,
                  0.5)
      .add_double("p0", "honest split maintained by the adversary", 0.5, 0.0,
                  1.0)
      .add_int("j", "proposer slots usable per epoch", 8, 1, 32)
      .add_int("honest_validators", "honest validators per run", 200, 1, 1e6)
      .add_int("max_epochs", "horizon in epochs", 8000, 1, 1e7)
      .add_bool("stake_weighted",
                "continuation lottery uses the current stake-weighted beta "
                "(false = constant beta0 paper bound)",
                true)
      .add_int("seed", "master RNG seed", 2024)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "runs per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    bouncing::AttackSimConfig cfg;
    cfg.runs = static_cast<std::size_t>(p.get_int("paths"));
    cfg.beta0 = p.get_double("beta0");
    cfg.p0 = p.get_double("p0");
    cfg.j = static_cast<int>(p.get_int("j"));
    cfg.honest_validators =
        static_cast<std::size_t>(p.get_int("honest_validators"));
    cfg.max_epochs = static_cast<std::size_t>(p.get_int("max_epochs"));
    cfg.stake_weighted_lottery = p.get_bool("stake_weighted");
    cfg.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    const auto res = bouncing::run_attack_sim(cfg);

    out->add_metric("prob_threshold_broken", res.prob_threshold_broken);
    out->add_metric("mean_duration", res.mean_duration);
    out->add_metric("median_duration", res.median_duration);
    out->add_metric("p99_duration", res.p99_duration);
    out->add_metric(
        "expected_duration_const_beta",
        bouncing::expected_duration_constant_beta(cfg.beta0, cfg.j));
    RunningStats durations;
    for (const auto d : res.durations) {
      durations.add(static_cast<double>(d));
    }
    out->add_stats("duration", durations);
    Table rows({"run", "duration"});
    for (std::size_t i = 0; i < res.durations.size(); ++i) {
      rows.add_row({std::to_string(i), std::to_string(res.durations[i])});
    }
    out->trials = std::move(rows);
  });
}

// --- population-ensemble ------------------------------------------------

void register_population_ensemble(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "population-ensemble",
      "Ensemble of finite-population bouncing runs: N honest validators "
      "per path, per-epoch branch-level Byzantine proportion, fraction "
      "of paths where beta ever exceeds 1/3");
  spec.add_int("paths", "independent population runs", 100, 1, 1e9)
      .add_int("honest_validators", "honest validators per run", 200, 1, 1e6)
      .add_int("epochs", "horizon in epochs", 6000, 1, 1e7)
      .add_double("p0", "honest branch-assignment probability", 0.5, 0.0, 1.0)
      .add_double("beta0", "Byzantine stake proportion", 0.33, 0.0, 0.5)
      .add_int("seed", "master RNG seed", 11)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "paths per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    bouncing::PopulationEnsembleConfig cfg;
    cfg.base.honest_validators =
        static_cast<std::uint32_t>(p.get_int("honest_validators"));
    cfg.base.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    cfg.base.p0 = p.get_double("p0");
    cfg.base.beta0 = p.get_double("beta0");
    cfg.base.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.paths = static_cast<std::size_t>(p.get_int("paths"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    const auto res = bouncing::run_population_ensemble(cfg);

    out->add_metric("exceed_fraction", res.exceed_fraction);
    out->add_metric("mean_final_beta", res.mean_final_beta);
    RunningStats exceed_epochs;
    Table rows({"path", "first_exceed_epoch"});
    for (std::size_t i = 0; i < res.first_exceed_epochs.size(); ++i) {
      const auto e = res.first_exceed_epochs[i];
      if (e >= 0) exceed_epochs.add(static_cast<double>(e));
      rows.add_row({std::to_string(i), std::to_string(e)});
    }
    out->add_stats("first_exceed_epoch", exceed_epochs);
    out->trials = std::move(rows);
  });
}

// --- partition-trials ---------------------------------------------------
// Defaults match the Table 1 end-to-end verification row: 32 random
// honest splits of the Section 5.1 scenario (400 validators, honest,
// 5000-epoch horizon, seed 2024).

void register_partition_trials(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "partition-trials",
      "Monte Carlo over the Section 5 partition scenarios: each trial "
      "redraws the honest branch assignment iid and runs the "
      "epoch-granular partition simulator (conflicting finalization, "
      "beta > 1/3 on both branches)");
  spec.add_int("paths", "randomized-split trials", 32, 1, 1e9)
      .add_int("n_validators", "total validators", 400, 2, 1e6)
      .add_double("beta0", "Byzantine stake proportion", 0.0, 0.0, 0.5)
      .add_double("p0", "honest proportion on branch 1", 0.5, 0.0, 1.0)
      .add_string("strategy", "Byzantine strategy during the partition",
                  "honest", {"honest", "slashable", "semiactive", "overthrow"})
      .add_int("max_epochs", "horizon in epochs", 5000, 1, 1e7)
      .add_int("seed", "master RNG seed", 2024)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  add_faults_param(spec);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::PartitionTrialsConfig cfg;
    cfg.base.n_validators =
        static_cast<std::uint32_t>(p.get_int("n_validators"));
    cfg.base.beta0 = p.get_double("beta0");
    cfg.base.p0 = p.get_double("p0");
    cfg.base.strategy = strategy_from_name(p.get_string("strategy"));
    cfg.base.max_epochs = static_cast<std::size_t>(p.get_int("max_epochs"));
    // Trajectories are per-epoch bulk the trials never read; sample at
    // the horizon only.
    cfg.base.trajectory_stride = cfg.base.max_epochs;
    // Always route through the compiled fault schedule (the knob path
    // compiles to the same two-branch window), so every run exercises
    // the FaultDriver and the baselines pin its bit-identity.
    faults::compile_partition(
        resolve_schedule(p, faults::FaultSchedule::legacy_partition(2, 0, 0)),
        &cfg.base);
    cfg.trials = static_cast<std::size_t>(p.get_int("paths"));
    cfg.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    const auto res = sim::run_partition_trials(cfg);

    out->add_metric("conflicting_fraction", res.conflicting_fraction);
    out->add_metric("beta_exceeded_fraction", res.beta_exceeded_fraction);
    out->add_metric("mean_conflict_epoch", res.mean_conflict_epoch);
    RunningStats peaks;
    Table rows({"trial", "conflict_epoch", "beta_peak"});
    for (std::size_t i = 0; i < res.conflict_epochs.size(); ++i) {
      peaks.add(res.beta_peaks[i]);
      rows.add_row({std::to_string(i), std::to_string(res.conflict_epochs[i]),
                    Table::fmt_exact(res.beta_peaks[i])});
    }
    out->add_stats("beta_peak", peaks);
    out->trials = std::move(rows);
  });
}

// --- duty-cycle ---------------------------------------------------------

void register_duty_cycle(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "duty-cycle",
      "Closed-form 1-in-k duty-cycle family (active / semi-active / "
      "inactive generalization) and the m-branch attack bounds; "
      "deterministic, paths/seed ignored");
  spec.add_int("k_max", "largest duty cycle 1/k to tabulate", 8, 1, 64)
      .add_double("t_eval", "epoch at which to evaluate the stake", 1000.0,
                  1.0, 1e7)
      .add_double("beta0", "Byzantine proportion for the m-branch bounds",
                  0.33, 0.0, 0.5)
      .add_int("paths", "(ignored - deterministic scenario)", 1, 1, 1e9)
      .add_int("seed", "(ignored - deterministic scenario)", 0)
      .add_int("threads", "(ignored - deterministic scenario)", 0, 0, 1024)
      .add_int("block", "(ignored - deterministic scenario)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    const auto cfg = analytic::AnalyticConfig::paper();
    const auto k_max = static_cast<unsigned>(p.get_int("k_max"));
    const double t_eval = p.get_double("t_eval");
    const double beta0 = p.get_double("beta0");

    Table rows({"k", "score_slope", "ejection_epoch", "stake_at_t",
                "mbranch_supermajority_epoch", "mbranch_beta_max"});
    for (unsigned k = 1; k <= k_max; ++k) {
      const bool multi = k >= 2;
      rows.add_row(
          {std::to_string(k),
           Table::fmt_exact(analytic::duty_cycle_slope(k, cfg)),
           Table::fmt_exact(analytic::duty_cycle_ejection_epoch(k, cfg)),
           Table::fmt_exact(analytic::duty_cycle_stake(k, t_eval, cfg)),
           multi ? Table::fmt_exact(
                       analytic::multibranch_supermajority_epoch(k, beta0,
                                                                 cfg))
                 : "-",
           multi ? Table::fmt_exact(
                       analytic::multibranch_beta_max(k, beta0, cfg))
                 : "-"});
    }
    out->trials = std::move(rows);

    out->add_metric("semi_active_slope", analytic::duty_cycle_slope(2, cfg));
    out->add_metric("semi_active_ejection_epoch",
                    analytic::duty_cycle_ejection_epoch(2, cfg));
    out->add_metric("stake_at_t_k2",
                    analytic::duty_cycle_stake(2, t_eval, cfg));
    out->add_metric("beta0_lower_bound_m2",
                    analytic::multibranch_beta0_lower_bound(2, cfg));
    if (k_max >= 3) {
      out->add_metric("beta0_lower_bound_m3",
                      analytic::multibranch_beta0_lower_bound(3, cfg));
    }
  });
}

// --- recovery -----------------------------------------------------------

void register_recovery(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "recovery",
      "Post-leak recovery tail (Figure 3 discussion): score decay after "
      "finalization resumes and the residual stake lost, closed form vs "
      "exact discrete recurrence; deterministic, paths/seed ignored");
  spec.add_double("t_end", "epoch at which the leak ends", 500.0, 1.0, 1e7)
      .add_int("paths", "(ignored - deterministic scenario)", 1, 1, 1e9)
      .add_int("seed", "(ignored - deterministic scenario)", 0)
      .add_int("threads", "(ignored - deterministic scenario)", 0, 0, 1024)
      .add_int("block", "(ignored - deterministic scenario)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    const auto cfg = analytic::AnalyticConfig::paper();
    const double t_end = p.get_double("t_end");
    const double score0 = analytic::score_at_leak_end(t_end, cfg);
    const double stake_end = analytic::stake_with_ejection(
        analytic::Behavior::kInactive, t_end, cfg);
    const double closed = analytic::residual_loss(score0, stake_end, cfg);
    const double discrete =
        analytic::residual_loss_discrete(score0, stake_end, cfg);
    out->add_metric("score_at_leak_end", score0);
    out->add_metric("stake_at_leak_end", stake_end);
    out->add_metric("recovery_epochs", analytic::recovery_epochs(score0));
    out->add_metric("residual_loss_closed", closed);
    out->add_metric("residual_loss_discrete", discrete);
    out->add_metric("closed_vs_discrete_abs_err",
                    std::fabs(closed - discrete));
  });
}

// --- slot-protocol ------------------------------------------------------

void register_slot_protocol(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "slot-protocol",
      "Full slot-level protocol simulation (proposers, gossip, "
      "LMD-GHOST, FFG, slashing): N independent seeds through the "
      "trial runner, measuring finality progress, safety violations, "
      "and slashing detection");
  spec.add_int("paths", "independent simulation trials", 4, 1, 1e6)
      .add_int("n_honest", "honest validators", 32, 1, 4096)
      .add_int("n_byzantine", "Byzantine (equivocating) validators", 0, 0,
               4096)
      .add_int("epochs", "horizon in epochs", 8, 1, 256)
      .add_double("p0", "honest fraction assigned to region one", 1.0, 0.0,
                  1.0)
      .add_double("gst_epoch",
                  "epoch at which the partition heals (0 = no partition)",
                  0.0, 0.0, 1e6)
      .add_double("delta", "network delay bound in seconds", 1.0, 0.0, 60.0)
      .add_int("proposer_boost",
               "fork-choice proposer-boost percent (0 = off, mainnet 40)", 0,
               0, 100)
      .add_int("seed", "master RNG seed", 1)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::SlotSimConfig base;
    base.n_honest = static_cast<std::uint32_t>(p.get_int("n_honest"));
    base.n_byzantine = static_cast<std::uint32_t>(p.get_int("n_byzantine"));
    base.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    base.p0 = p.get_double("p0");
    base.gst_epoch = p.get_double("gst_epoch");
    base.delta = p.get_double("delta");
    base.proposer_boost = static_cast<unsigned>(p.get_int("proposer_boost"));
    const auto paths = static_cast<std::size_t>(p.get_int("paths"));
    const StreamSeeder seeder(
        static_cast<std::uint64_t>(p.get_int("seed")));
    const runner::TrialRunner pool(
        static_cast<unsigned>(p.get_int("threads")));
    std::vector<sim::SlotSimResult> trials(paths);
    pool.run_blocks(paths,
                    runner::resolve_block(
                        static_cast<std::size_t>(p.get_int("block"))),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        sim::SlotSimConfig cfg = base;
                        cfg.seed = seeder.seed_for(i);
                        trials[i] = sim::SlotSim(cfg).run();
                      }
                    });

    RunningStats finalized, violations, slashed, messages;
    std::size_t leaks = 0;
    Table rows({"trial", "finalized_epoch", "justified_epoch",
                "safety_violations", "slashed", "messages", "leak_observed"});
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const auto& t = trials[i];
      const double fin =
          t.finalized_epoch.empty()
              ? 0.0
              : static_cast<double>(t.finalized_epoch.front());
      const double just =
          t.justified_epoch.empty()
              ? 0.0
              : static_cast<double>(t.justified_epoch.front());
      finalized.add(fin);
      violations.add(static_cast<double>(t.safety_violations));
      slashed.add(static_cast<double>(t.slashed.size()));
      messages.add(static_cast<double>(t.messages_delivered));
      if (t.leak_observed) ++leaks;
      rows.add_row({std::to_string(i), Table::fmt_exact(fin),
                    Table::fmt_exact(just),
                    std::to_string(t.safety_violations),
                    std::to_string(t.slashed.size()),
                    std::to_string(t.messages_delivered),
                    t.leak_observed ? "true" : "false"});
    }
    out->add_metric("mean_finalized_epoch", finalized.mean());
    out->add_metric("mean_safety_violations", violations.mean());
    out->add_metric("mean_slashed", slashed.mean());
    out->add_metric("mean_messages", messages.mean());
    out->add_metric("leak_observed_fraction",
                    trials.empty() ? 0.0
                                   : static_cast<double>(leaks) /
                                         static_cast<double>(trials.size()));
    out->add_stats("finalized_epoch", finalized);
    out->trials = std::move(rows);
  });
}

// --- balancing-attack ---------------------------------------------------
// The classic Neu/Tas/Tse balancing attack on LMD-GHOST, driven through
// the slot-level protocol simulator's proposer-equivocation strategy.

void register_balancing_attack(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "balancing-attack",
      "Balancing attack on LMD-GHOST (proposer equivocation splits the "
      "honest head votes across two sibling blocks; Byzantine attesters "
      "keep the fork balanced without slashable votes), measuring how "
      "long the balanced fork stalls finality vs the Section 5 leak "
      "trigger; sweep n_byzantine x delta");
  spec.add_int("paths", "independent simulation trials", 8, 1, 1e6)
      .add_int("n_honest", "honest validators", 32, 2, 4096)
      .add_int("n_byzantine", "Byzantine (equivocating) validators", 8, 1,
               4096)
      .add_int("epochs", "horizon in epochs", 16, 1, 256)
      .add_double("delta", "network delay bound in seconds", 1.0, 0.0, 60.0)
      .add_double("release_delay",
                  "seconds before an equivocation sibling reaches its own "
                  "audience half (adversary release-timing knob)",
                  0.1, 0.0, 8.0)
      .add_double("cross_delay",
                  "seconds past the epoch boundary before the withheld "
                  "cross-side copies are released",
                  0.1, 0.0, 8.0)
      .add_int("proposer_boost",
               "fork-choice proposer-boost percent (0 = off, mainnet 40)", 0,
               0, 100)
      .add_int("seed", "master RNG seed", 42)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::SlotSimConfig base;
    base.n_honest = static_cast<std::uint32_t>(p.get_int("n_honest"));
    base.n_byzantine = static_cast<std::uint32_t>(p.get_int("n_byzantine"));
    base.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    base.delta = p.get_double("delta");
    base.release_delay = p.get_double("release_delay");
    base.cross_delay = p.get_double("cross_delay");
    base.proposer_boost = static_cast<unsigned>(p.get_int("proposer_boost"));
    base.proposer_strategy = sim::ProposerStrategy::kBalancing;
    const auto paths = static_cast<std::size_t>(p.get_int("paths"));
    const StreamSeeder seeder(static_cast<std::uint64_t>(p.get_int("seed")));
    const runner::TrialRunner pool(
        static_cast<unsigned>(p.get_int("threads")));
    std::vector<sim::SlotSimResult> trials(paths);
    pool.run_blocks(paths,
                    runner::resolve_block(
                        static_cast<std::size_t>(p.get_int("block"))),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        sim::SlotSimConfig cfg = base;
                        cfg.seed = seeder.seed_for(i);
                        trials[i] = sim::SlotSim(cfg).run();
                      }
                    });

    const double leak_trigger = static_cast<double>(
        base.spec.min_epochs_to_inactivity_penalty);
    RunningStats stalls, finalized, equivocations;
    std::size_t leaks = 0;
    std::size_t exceeds_trigger = 0;
    double stalled_fraction_sum = 0.0;
    Table rows({"trial", "finality_stall_epochs", "finalized_epoch",
                "equivocating_proposals", "leak_observed",
                "safety_violations"});
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const auto& t = trials[i];
      const double stall = static_cast<double>(t.finality_stall_epochs);
      stalls.add(stall);
      finalized.add(t.finalized_epoch.empty()
                        ? 0.0
                        : static_cast<double>(t.finalized_epoch.front()));
      equivocations.add(static_cast<double>(t.equivocating_proposals));
      if (t.leak_observed) ++leaks;
      if (stall > leak_trigger) ++exceeds_trigger;
      // Fraction of epoch boundaries without finality progress.
      std::size_t stalled = 0;
      std::uint64_t prev = 0;
      for (const std::uint64_t fin : t.finalized_epoch_trajectory) {
        if (fin > prev) {
          prev = fin;
        } else {
          ++stalled;
        }
      }
      stalled_fraction_sum +=
          t.finalized_epoch_trajectory.empty()
              ? 0.0
              : static_cast<double>(stalled) /
                    static_cast<double>(t.finalized_epoch_trajectory.size());
      rows.add_row({std::to_string(i), Table::fmt_exact(stall),
                    std::to_string(t.finalized_epoch.empty()
                                       ? 0
                                       : t.finalized_epoch.front()),
                    std::to_string(t.equivocating_proposals),
                    t.leak_observed ? "true" : "false",
                    std::to_string(t.safety_violations)});
    }
    const double n = trials.empty() ? 1.0 : static_cast<double>(trials.size());
    out->add_metric("mean_finality_stall_epochs", stalls.mean());
    out->add_metric("max_finality_stall_epochs", stalls.max());
    out->add_metric("stalled_epoch_fraction", stalled_fraction_sum / n);
    out->add_metric("mean_finalized_epoch", finalized.mean());
    out->add_metric("mean_equivocating_proposals", equivocations.mean());
    out->add_metric("leak_observed_fraction",
                    static_cast<double>(leaks) / n);
    out->add_metric("leak_trigger_epochs", leak_trigger);
    out->add_metric("stall_exceeds_leak_trigger_fraction",
                    static_cast<double>(exceeds_trigger) / n);
    out->add_stats("finality_stall_epochs", stalls);
    out->trials = std::move(rows);
  });
}

// --- semiactive-sweep ---------------------------------------------------
// Duty-cycled 1/m Byzantine rotation over m >= 2 branches: the
// analytic::multibranch_* closed forms cross-checked by run_bouncing_mc
// on the branch-level exceedance criterion.

void register_semiactive_sweep(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "semiactive-sweep",
      "Semi-active leak generalized to a 1/m duty-cycle rotation over "
      "m >= 2 branches: closed-form beta_max, supermajority-recovery "
      "epoch and minimum beta0 (analytic::multibranch_*), cross-checked "
      "by a run_bouncing_mc Monte Carlo of the branch-level exceedance "
      "criterion; sweep branches x beta0");
  spec.add_int("branches", "rotation branches m (2 = paper's semi-active)",
               2, 2, 16)
      .add_double("beta0", "Byzantine stake proportion", 0.33, 0.0, 0.5)
      .add_int("paths", "Monte Carlo paths for the cross-check", 2000, 1,
               1e9)
      .add_int("epochs", "Monte Carlo horizon in epochs", 4024, 4, 1e7)
      .add_int("seed", "master RNG seed", 7)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "paths per scheduled block (0 = auto)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    const auto cfg = analytic::AnalyticConfig::paper();
    const auto m = static_cast<unsigned>(p.get_int("branches"));
    const double beta0 = p.get_double("beta0");

    // Closed forms.
    const double beta_max = analytic::multibranch_beta_max(m, beta0, cfg);
    const double sm_epoch =
        analytic::multibranch_supermajority_epoch(m, beta0, cfg);
    out->add_metric("beta_max", beta_max);
    out->add_metric("supermajority_recovery_epoch", sm_epoch);
    out->add_metric("beta0_lower_bound",
                    analytic::multibranch_beta0_lower_bound(m, cfg));
    out->add_metric("duty_cycle_slope", analytic::duty_cycle_slope(m, cfg));
    out->add_metric("byz_ejection_epoch",
                    analytic::duty_cycle_ejection_epoch(m, cfg));

    // Monte Carlo cross-check: honest validators bounce with
    // p0 = 1/m; the exceedance criterion uses the duty-cycled
    // Byzantine reference stake on one branch.
    bouncing::McConfig mc;
    mc.branches = m;
    mc.p0 = 1.0 / static_cast<double>(m);
    mc.beta0 = beta0;
    mc.paths = static_cast<std::size_t>(p.get_int("paths"));
    mc.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    mc.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    mc.threads = static_cast<unsigned>(p.get_int("threads"));
    mc.block = static_cast<std::size_t>(p.get_int("block"));
    mc.keep_paths = false;  // summaries only
    std::vector<std::size_t> snaps;
    for (const std::size_t q : {1ul, 2ul, 3ul, 4ul}) {
      const std::size_t e = mc.epochs * q / 4;
      if (e > 0 && (snaps.empty() || e > snaps.back())) snaps.push_back(e);
    }
    const auto res = bouncing::run_bouncing_mc(mc, snaps);

    Table rows({"epoch", "ejected_fraction", "prob_beta_exceeds",
                "mean_stake", "exceed_threshold"});
    for (std::size_t k = 0; k < res.epochs.size(); ++k) {
      rows.add_row(
          {std::to_string(res.epochs[k]),
           Table::fmt_exact(res.ejected_fraction[k]),
           Table::fmt_exact(res.prob_beta_exceeds[k]),
           Table::fmt_exact(res.stake_stats[k].mean()),
           Table::fmt_exact(analytic::multibranch_exceed_threshold(
               m, beta0, static_cast<double>(res.epochs[k]), cfg))});
    }
    out->trials = std::move(rows);

    const std::size_t last = res.epochs.size() - 1;
    out->add_metric("mc_prob_beta_exceeds", res.prob_beta_exceeds[last]);
    out->add_metric("mc_ejected_fraction", res.ejected_fraction[last]);
    out->add_metric("mc_mean_stake", res.stake_stats[last].mean());
    // Agreement indicator: when the closed-form beta_max clears 1/3 the
    // Monte Carlo exceedance probability should approach 1 by the
    // ejection horizon (and stay near 0 otherwise).
    out->add_metric("analytic_predicts_exceed",
                    beta_max > 1.0 / 3.0 ? 1.0 : 0.0);
    out->add_stats("final_stake", res.stake_stats[last]);
  });
}

// --- multi-partition-recovery -------------------------------------------
// k >= 2 partition branches healing pairwise at staggered GSTs, with
// the post-leak recovery tail validated against analytic::recovery.

void register_multi_partition_recovery(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "multi-partition-recovery",
      "Partition into k branches healing pairwise at staggered GSTs "
      "(branch b merges at heal_epoch + (b-1) * heal_stagger): "
      "randomized-split trials of the epoch-granular simulator, "
      "measuring conflicting finalization, the recovery tail after "
      "finality resumes, and the residual losses vs the "
      "analytic::recovery closed form; sweep branches x heal_stagger");
  spec.add_int("paths", "randomized-split trials", 16, 1, 1e9)
      .add_int("n_validators", "total validators", 400, 2, 1e6)
      .add_double("beta0", "Byzantine stake proportion", 0.0, 0.0, 0.5)
      .add_double("p0",
                  "honest proportion on branch 1 (two-branch case only)",
                  0.5, 0.0, 1.0)
      .add_string("strategy", "Byzantine strategy during the partition",
                  "honest", {"honest", "slashable", "semiactive", "overthrow"})
      .add_int("branches", "partition branches k", 3, 2, 64)
      .add_int("heal_epoch", "first pairwise heal epoch (0 = never heal)",
               2000, 0, 1e7)
      .add_int("heal_stagger", "epochs between successive pairwise heals",
               500, 0, 1e7)
      .add_int("max_epochs", "horizon in epochs", 8000, 1, 1e7)
      .add_int("seed", "master RNG seed", 2024)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  add_faults_param(spec);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::PartitionTrialsConfig cfg;
    cfg.base.n_validators =
        static_cast<std::uint32_t>(p.get_int("n_validators"));
    cfg.base.beta0 = p.get_double("beta0");
    cfg.base.p0 = p.get_double("p0");
    cfg.base.strategy = strategy_from_name(p.get_string("strategy"));
    // The heal knobs compile to a schedule (branch b heals at
    // heal_epoch + (b-1) * heal_stagger) so the run always goes through
    // the FaultDriver; a non-empty `faults` schedule supersedes
    // branches/heal_epoch/heal_stagger entirely.
    faults::compile_partition(
        resolve_schedule(
            p, faults::FaultSchedule::legacy_partition(
                   static_cast<std::uint32_t>(p.get_int("branches")),
                   static_cast<std::size_t>(p.get_int("heal_epoch")),
                   static_cast<std::size_t>(p.get_int("heal_stagger")))),
        &cfg.base);
    cfg.base.max_epochs = static_cast<std::size_t>(p.get_int("max_epochs"));
    // Trajectories are per-epoch bulk the trials never read; sample at
    // the horizon only.
    cfg.base.trajectory_stride = cfg.base.max_epochs;
    cfg.trials = static_cast<std::size_t>(p.get_int("paths"));
    cfg.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    const auto res = sim::run_partition_trials(cfg);

    out->add_metric("conflicting_fraction", res.conflicting_fraction);
    out->add_metric("beta_exceeded_fraction", res.beta_exceeded_fraction);
    out->add_metric("mean_conflict_epoch", res.mean_conflict_epoch);
    out->add_metric("recovered_fraction", res.recovered_fraction);
    out->add_metric("mean_residual_loss_eth", res.mean_residual_loss_eth);
    out->add_metric("mean_recovery_epoch", res.mean_recovery_epoch);

    // Deterministic closed-form cross-check: the even-split run's
    // homogeneous classes let analytic::residual_loss be compared
    // per validator against the sim's exact-arithmetic recovery tail.
    const auto det = sim::run_partition_sim(cfg.base);
    out->add_metric("det_heal_complete_epoch",
                    static_cast<double>(det.heal_complete_epoch));
    out->add_metric("det_recovery_complete_epoch",
                    static_cast<double>(det.recovery_complete_epoch));
    out->add_metric("det_residual_loss_total_eth",
                    det.residual_loss_total_eth);
    const sim::RecoveryOutcome* worst = nullptr;
    for (const auto& rec : det.recovery) {
      // Only classes whose recovery finished inside the horizon have a
      // measured residual to compare against the closed form.
      if (rec.return_epoch < 0 || rec.recovery_epochs < 0) continue;
      if (worst == nullptr || rec.score_at_return > worst->score_at_return) {
        worst = &rec;
      }
    }
    if (worst != nullptr) {
      const auto acfg = analytic::AnalyticConfig::paper();
      const double closed = analytic::residual_loss(
          worst->score_at_return, worst->stake_at_return_eth, acfg);
      out->add_metric("det_worst_class_score_at_return",
                      worst->score_at_return);
      out->add_metric("det_worst_class_residual_loss_eth",
                      worst->residual_loss_eth);
      out->add_metric("det_worst_class_residual_loss_closed_eth", closed);
      out->add_metric("det_recovery_closed_form_abs_err",
                      std::fabs(closed - worst->residual_loss_eth));
    }

    RunningStats peaks;
    Table rows({"trial", "conflict_epoch", "beta_peak", "residual_loss_eth",
                "recovery_epoch"});
    for (std::size_t i = 0; i < res.conflict_epochs.size(); ++i) {
      peaks.add(res.beta_peaks[i]);
      rows.add_row({std::to_string(i), std::to_string(res.conflict_epochs[i]),
                    Table::fmt_exact(res.beta_peaks[i]),
                    Table::fmt_exact(res.residual_losses_eth[i]),
                    std::to_string(res.recovery_epochs[i])});
    }
    out->add_stats("beta_peak", peaks);
    RunningStats losses;
    for (const double l : res.residual_losses_eth) losses.add(l);
    out->add_stats("residual_loss_eth", losses);
    out->trials = std::move(rows);
  });
}

// --- cascading-partitions -----------------------------------------------
// The fault harness end to end on the epoch-granular path: a staggered
// cascade of partition opens healing pairwise, with every healed
// class's recovery tail cross-checked against both recovery models.

void register_cascading_partitions(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "cascading-partitions",
      "Cascading partition weather compiled from a FaultSchedule: "
      "branch b opens at 1 + (b-1) * open_stagger and heals at "
      "heal_epoch + (b-1) * heal_stagger; every healed class's recovery "
      "tail is validated per class against analytic::residual_loss "
      "(closed form) and the exact discrete recurrence; sweep branches "
      "x open_stagger x heal_stagger");
  spec.add_int("paths", "randomized-split trials", 16, 1, 1e9)
      .add_int("n_validators", "total validators", 300, 2, 1e6)
      .add_double("beta0", "Byzantine stake proportion", 0.0, 0.0, 0.5)
      .add_string("strategy", "Byzantine strategy during the partition",
                  "honest", {"honest", "slashable", "semiactive", "overthrow"})
      .add_int("branches", "partition branches k", 3, 2, 8)
      .add_int("open_stagger", "epochs between successive branch opens", 300,
               0, 1e7)
      .add_int("heal_epoch", "first pairwise heal epoch (0 = never heal)",
               2500, 0, 1e7)
      .add_int("heal_stagger", "epochs between successive pairwise heals",
               500, 0, 1e7)
      .add_int("max_epochs", "horizon in epochs", 9000, 1, 1e7)
      .add_int("seed", "master RNG seed", 2024)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  add_faults_param(spec);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::PartitionTrialsConfig cfg;
    cfg.base.n_validators =
        static_cast<std::uint32_t>(p.get_int("n_validators"));
    cfg.base.beta0 = p.get_double("beta0");
    cfg.base.strategy = strategy_from_name(p.get_string("strategy"));
    cfg.base.max_epochs = static_cast<std::size_t>(p.get_int("max_epochs"));
    cfg.base.trajectory_stride = cfg.base.max_epochs;
    faults::compile_partition(
        resolve_schedule(
            p, faults::FaultSchedule::staggered_partition(
                   static_cast<std::uint32_t>(p.get_int("branches")),
                   static_cast<std::size_t>(p.get_int("open_stagger")),
                   static_cast<std::size_t>(p.get_int("heal_epoch")),
                   static_cast<std::size_t>(p.get_int("heal_stagger")))),
        &cfg.base);
    cfg.trials = static_cast<std::size_t>(p.get_int("paths"));
    cfg.seed = static_cast<std::uint64_t>(p.get_int("seed"));
    cfg.threads = static_cast<unsigned>(p.get_int("threads"));
    cfg.block = static_cast<std::size_t>(p.get_int("block"));
    const auto res = sim::run_partition_trials(cfg);

    out->add_metric("conflicting_fraction", res.conflicting_fraction);
    out->add_metric("beta_exceeded_fraction", res.beta_exceeded_fraction);
    out->add_metric("mean_conflict_epoch", res.mean_conflict_epoch);
    out->add_metric("recovered_fraction", res.recovered_fraction);
    out->add_metric("mean_residual_loss_eth", res.mean_residual_loss_eth);
    out->add_metric("mean_recovery_epoch", res.mean_recovery_epoch);

    // Per-episode analytic cross-check: the deterministic even-split
    // run yields one homogeneous class per healed branch, so each
    // class's exact-arithmetic recovery tail can be compared against
    // both recovery models class by class.
    const auto det = sim::run_partition_sim(cfg.base);
    out->add_metric("det_heal_complete_epoch",
                    static_cast<double>(det.heal_complete_epoch));
    out->add_metric("det_recovery_complete_epoch",
                    static_cast<double>(det.recovery_complete_epoch));
    out->add_metric("det_residual_loss_total_eth",
                    det.residual_loss_total_eth);
    const auto acfg = analytic::AnalyticConfig::paper();
    std::size_t healed_classes = 0;
    double max_discrete_rel_err = 0.0;
    double max_closed_rel_err = 0.0;
    for (const auto& rec : det.recovery) {
      // Only classes whose recovery finished inside the horizon have a
      // measured residual to compare.
      if (rec.return_epoch < 0 || rec.recovery_epochs < 0) continue;
      ++healed_classes;
      const double closed = analytic::residual_loss(
          rec.score_at_return, rec.stake_at_return_eth, acfg);
      const double discrete = analytic::residual_loss_discrete(
          rec.score_at_return, rec.stake_at_return_eth, acfg);
      const std::string tag = "class_b" + std::to_string(rec.from_branch);
      out->add_metric(tag + "_score_at_return", rec.score_at_return);
      out->add_metric(tag + "_residual_loss_eth", rec.residual_loss_eth);
      out->add_metric(tag + "_residual_loss_closed_eth", closed);
      out->add_metric(tag + "_residual_loss_discrete_eth", discrete);
      if (rec.stake_at_return_eth > 0.0) {
        max_discrete_rel_err = std::max(
            max_discrete_rel_err,
            std::fabs(discrete - rec.residual_loss_eth) /
                rec.stake_at_return_eth);
      }
      max_closed_rel_err =
          std::max(max_closed_rel_err,
                   std::fabs(closed - rec.residual_loss_eth) / (closed + 0.01));
    }
    out->add_metric("healed_classes", static_cast<double>(healed_classes));
    out->add_metric("max_class_discrete_rel_err", max_discrete_rel_err);
    out->add_metric("max_class_closed_rel_err", max_closed_rel_err);

    RunningStats peaks;
    Table rows({"trial", "conflict_epoch", "beta_peak", "residual_loss_eth",
                "recovery_epoch"});
    for (std::size_t i = 0; i < res.conflict_epochs.size(); ++i) {
      peaks.add(res.beta_peaks[i]);
      rows.add_row({std::to_string(i), std::to_string(res.conflict_epochs[i]),
                    Table::fmt_exact(res.beta_peaks[i]),
                    Table::fmt_exact(res.residual_losses_eth[i]),
                    std::to_string(res.recovery_epochs[i])});
    }
    out->add_stats("beta_peak", peaks);
    RunningStats losses;
    for (const double l : res.residual_losses_eth) losses.add(l);
    out->add_stats("residual_loss_eth", losses);
    out->trials = std::move(rows);
  });
}

// --- flaky-network ------------------------------------------------------
// The fault harness on the event-queue path: scripted latency/loss
// weather over the slot-level protocol simulator.

void register_flaky_network(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "flaky-network",
      "Scripted network weather on the slot-level protocol simulator: "
      "a latency episode stretches per-message jitter beyond the "
      "synchrony bound and a loss episode drops messages from a "
      "dedicated weather RNG lane (legacy delivery stream untouched), "
      "measuring finality stalls, message loss, and the leak trigger; "
      "sweep latency_factor x loss_drop");
  spec.add_int("paths", "independent simulation trials", 8, 1, 1e6)
      .add_int("n_honest", "honest validators", 32, 1, 4096)
      .add_int("n_byzantine", "Byzantine (equivocating) validators", 0, 0,
               4096)
      .add_int("epochs", "horizon in epochs", 10, 1, 256)
      .add_double("p0", "honest fraction assigned to region one", 1.0, 0.0,
                  1.0)
      .add_double("gst_epoch",
                  "epoch at which the partition heals (0 = no partition)",
                  0.0, 0.0, 1e6)
      .add_double("delta", "network delay bound in seconds", 1.0, 0.0, 60.0)
      .add_int("proposer_boost",
               "fork-choice proposer-boost percent (0 = off, mainnet 40)", 0,
               0, 100)
      .add_double("latency_factor",
                  "jitter stretch on matching links while the latency "
                  "episode is active (1 = off)",
                  3.0, 1.0, 100.0)
      .add_int("latency_from_epoch", "latency episode start epoch", 2, 0, 256)
      .add_int("latency_span_epochs",
               "latency episode length in epochs (0 = no episode)", 2, 0, 256)
      .add_string("latency_link", "links the latency episode afflicts",
                  "all", {"all", "intra", "cross"})
      .add_double("loss_drop",
                  "per-message drop probability while the loss episode is "
                  "active (0 = off)",
                  0.15, 0.0, 1.0)
      .add_int("loss_from_epoch", "loss episode start epoch", 4, 0, 256)
      .add_int("loss_span_epochs",
               "loss episode length in epochs (0 = no episode)", 2, 0, 256)
      .add_string("loss_link", "links the loss episode afflicts", "all",
                  {"all", "intra", "cross"})
      .add_int("seed", "master RNG seed", 7)
      .add_int("threads", "worker threads (0 = auto)", 0, 0, 1024)
      .add_int("block", "trials per scheduled block (0 = auto)", 0, 0, 1e9);
  add_faults_param(spec);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    sim::SlotSimConfig base;
    base.n_honest = static_cast<std::uint32_t>(p.get_int("n_honest"));
    base.n_byzantine = static_cast<std::uint32_t>(p.get_int("n_byzantine"));
    base.epochs = static_cast<std::size_t>(p.get_int("epochs"));
    base.p0 = p.get_double("p0");
    base.gst_epoch = p.get_double("gst_epoch");
    base.delta = p.get_double("delta");
    base.proposer_boost = static_cast<unsigned>(p.get_int("proposer_boost"));

    // Build the weather timeline from the episode knobs (or take the
    // `faults` schedule verbatim) and compile it to per-link episodes
    // in simulated seconds.
    faults::FaultSchedule knobs;
    const double factor = p.get_double("latency_factor");
    const auto latency_span = p.get_int("latency_span_epochs");
    if (factor != 1.0 && latency_span > 0) {
      knobs.events.push_back(faults::LatencyEpisode{
          static_cast<double>(p.get_int("latency_from_epoch")),
          static_cast<double>(latency_span),
          link_from_name(p.get_string("latency_link")), factor});
    }
    const double drop = p.get_double("loss_drop");
    const auto loss_span = p.get_int("loss_span_epochs");
    if (drop > 0.0 && loss_span > 0) {
      knobs.events.push_back(faults::LossEpisode{
          static_cast<double>(p.get_int("loss_from_epoch")),
          static_cast<double>(loss_span),
          link_from_name(p.get_string("loss_link")), drop});
    }
    std::stable_sort(knobs.events.begin(), knobs.events.end(),
                     [](const faults::FaultEvent& a,
                        const faults::FaultEvent& b) {
                       return faults::event_start(a) < faults::event_start(b);
                     });
    const faults::FaultSchedule sched =
        resolve_schedule(p, std::move(knobs));
    net::NetworkConfig weather;
    weather.num_nodes = 1;  // scratch: only the episode vectors are read
    faults::apply_network(
        sched, static_cast<double>(kSlotsPerEpoch * kSecondsPerSlot),
        &weather);
    base.latency_episodes = std::move(weather.latency_episodes);
    base.loss_episodes = std::move(weather.loss_episodes);

    const auto paths = static_cast<std::size_t>(p.get_int("paths"));
    const StreamSeeder seeder(static_cast<std::uint64_t>(p.get_int("seed")));
    const runner::TrialRunner pool(
        static_cast<unsigned>(p.get_int("threads")));
    std::vector<sim::SlotSimResult> trials(paths);
    pool.run_blocks(paths,
                    runner::resolve_block(
                        static_cast<std::size_t>(p.get_int("block"))),
                    [&](std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        sim::SlotSimConfig cfg = base;
                        cfg.seed = seeder.seed_for(i);
                        trials[i] = sim::SlotSim(cfg).run();
                      }
                    });

    RunningStats finalized, stalls, delivered, dropped;
    std::size_t leaks = 0;
    double dropped_sum = 0.0;
    double sent_to_drop_sum = 0.0;
    Table rows({"trial", "finalized_epoch", "finality_stall_epochs",
                "messages_delivered", "messages_dropped", "leak_observed"});
    for (std::size_t i = 0; i < trials.size(); ++i) {
      const auto& t = trials[i];
      const double fin =
          t.finalized_epoch.empty()
              ? 0.0
              : static_cast<double>(t.finalized_epoch.front());
      finalized.add(fin);
      stalls.add(static_cast<double>(t.finality_stall_epochs));
      delivered.add(static_cast<double>(t.messages_delivered));
      dropped.add(static_cast<double>(t.messages_dropped));
      dropped_sum += static_cast<double>(t.messages_dropped);
      sent_to_drop_sum += static_cast<double>(t.messages_dropped) +
                          static_cast<double>(t.messages_delivered);
      if (t.leak_observed) ++leaks;
      rows.add_row({std::to_string(i), Table::fmt_exact(fin),
                    std::to_string(t.finality_stall_epochs),
                    std::to_string(t.messages_delivered),
                    std::to_string(t.messages_dropped),
                    t.leak_observed ? "true" : "false"});
    }
    const double n = trials.empty() ? 1.0 : static_cast<double>(trials.size());
    out->add_metric("mean_finalized_epoch", finalized.mean());
    out->add_metric("mean_finality_stall_epochs", stalls.mean());
    out->add_metric("mean_messages_delivered", delivered.mean());
    out->add_metric("mean_messages_dropped", dropped.mean());
    out->add_metric("dropped_fraction",
                    sent_to_drop_sum > 0.0 ? dropped_sum / sent_to_drop_sum
                                           : 0.0);
    out->add_metric("leak_observed_fraction",
                    static_cast<double>(leaks) / n);
    out->add_stats("finalized_epoch", finalized);
    out->add_stats("messages_dropped", dropped);
    out->trials = std::move(rows);
  });
}

// --- table1 -------------------------------------------------------------

void register_table1(ScenarioRegistry& r) {
  ScenarioSpec spec(
      "table1",
      "Paper Table 1: the five analysed scenarios with their outcomes "
      "and a quantitative witness each, computed end to end; "
      "deterministic, paths/seed ignored");
  spec.add_int("paths", "(ignored - deterministic scenario)", 1, 1, 1e9)
      .add_int("seed", "(ignored - deterministic scenario)", 0)
      .add_int("threads", "(ignored - deterministic scenario)", 0, 0, 1024)
      .add_int("block", "(ignored - deterministic scenario)", 0, 0, 1e9);
  r.add(std::move(spec), [](const ParamSet& p, ScenarioResult* out) {
    (void)p;
    const auto cfg = analytic::AnalyticConfig::paper();
    Table rows({"scenario", "byzantine behaviour", "outcome", "witness",
                "witness_value"});
    for (const auto& row : analytic::table1(cfg)) {
      rows.add_row({row.id, row.name, row.outcome, row.witness_label,
                    Table::fmt_exact(row.witness)});
      out->add_metric("witness_" + row.id, row.witness);
    }
    out->trials = std::move(rows);
  });
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  register_bouncing_mc(registry);
  register_attack_lifetime(registry);
  register_population_ensemble(registry);
  register_partition_trials(registry);
  register_duty_cycle(registry);
  register_recovery(registry);
  register_slot_protocol(registry);
  register_table1(registry);
  register_balancing_attack(registry);
  register_semiactive_sweep(registry);
  register_multi_partition_recovery(registry);
  register_cascading_partitions(registry);
  register_flaky_network(registry);
}

}  // namespace leak::scenario
