// Declarative description of one experiment's parameter surface.
//
// A ScenarioSpec names a scenario and types its parameters (int /
// double / bool / string, each with a default, optional numeric range,
// and optional string choices).  A ParamSet is one concrete assignment
// of those parameters.  Both round-trip through JSON, and ParamSets can
// be built from "key=value" strings (the leakctl --set syntax) with
// strict parsing, so every experiment in the registry is reproducible
// from a command line or an archived JSON artifact alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/support/json.hpp"

namespace leak::scenario {

enum class ParamType : std::uint8_t { kInt, kDouble, kBool, kString };

/// Human-readable type name ("int", "double", "bool", "string").
[[nodiscard]] const char* param_type_name(ParamType t);

using ParamValue = std::variant<std::int64_t, double, bool, std::string>;

[[nodiscard]] ParamType param_type_of(const ParamValue& v);

/// One typed parameter: default value plus validation constraints.
struct ParamSpec {
  std::string name;
  std::string description;
  ParamType type = ParamType::kInt;
  ParamValue default_value = std::int64_t{0};
  /// Inclusive numeric bounds (int/double parameters only).
  std::optional<double> min_value;
  std::optional<double> max_value;
  /// Allowed values for string parameters; empty = unconstrained.
  std::vector<std::string> choices;
};

/// One concrete parameter assignment, ordered like its spec.
class ParamSet {
 public:
  /// Insert or overwrite.
  void set(std::string name, ParamValue value);

  [[nodiscard]] const ParamValue* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const {
    return find(name) != nullptr;
  }

  /// Typed getters; throw std::out_of_range when the name is absent
  /// and std::logic_error on a type mismatch.  get_double widens an
  /// int value.
  [[nodiscard]] std::int64_t get_int(std::string_view name) const;
  [[nodiscard]] double get_double(std::string_view name) const;
  [[nodiscard]] bool get_bool(std::string_view name) const;
  [[nodiscard]] const std::string& get_string(std::string_view name) const;

  [[nodiscard]] const std::vector<std::pair<std::string, ParamValue>>& items()
      const {
    return items_;
  }

  /// Render one value as a string (exact round-trip for doubles).
  [[nodiscard]] static std::string value_to_string(const ParamValue& v);

  [[nodiscard]] json::Value to_json() const;

  friend bool operator==(const ParamSet& a, const ParamSet& b) {
    return a.items_ == b.items_;
  }

 private:
  std::vector<std::pair<std::string, ParamValue>> items_;
};

/// The declarative registry entry: name, description, parameter table.
class ScenarioSpec {
 public:
  ScenarioSpec(std::string name, std::string description);

  // Builder interface (fluent, used by the registration sites).
  ScenarioSpec& add_int(std::string name, std::string description,
                        std::int64_t default_value,
                        std::optional<double> min_value = std::nullopt,
                        std::optional<double> max_value = std::nullopt);
  ScenarioSpec& add_double(std::string name, std::string description,
                           double default_value,
                           std::optional<double> min_value = std::nullopt,
                           std::optional<double> max_value = std::nullopt);
  ScenarioSpec& add_bool(std::string name, std::string description,
                         bool default_value);
  ScenarioSpec& add_string(std::string name, std::string description,
                           std::string default_value,
                           std::vector<std::string> choices = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& description() const {
    return description_;
  }
  [[nodiscard]] const std::vector<ParamSpec>& params() const {
    return params_;
  }
  [[nodiscard]] const ParamSpec* find(std::string_view param) const;

  /// " (known params: a, b, c)" — appended to every unknown-parameter
  /// error (--set, --sweep/--axis, params JSON) so a mistyped knob
  /// fails fast with the declared surface in view.
  [[nodiscard]] std::string known_params_hint() const;

  /// ParamSet holding every parameter at its default.
  [[nodiscard]] ParamSet defaults() const;

  /// Parse one strictly-typed value for `param` ("0.33", "true",
  /// "semiactive").  Returns the error message on failure.
  [[nodiscard]] std::optional<std::string> parse_value(
      std::string_view param, std::string_view text, ParamValue* out) const;

  /// Apply one "key=value" assignment to `params` (the --set syntax).
  /// Returns the error message on failure.
  [[nodiscard]] std::optional<std::string> apply_kv(std::string_view kv,
                                                    ParamSet* params) const;

  /// Check that `params` assigns every declared parameter a value of
  /// the right type inside its constraints, with no unknown names.
  /// Returns the first error message, or nullopt when valid.
  [[nodiscard]] std::optional<std::string> validate(
      const ParamSet& params) const;

  [[nodiscard]] json::Value to_json() const;

  /// Inverse of to_json; rejects unknown keys at both the spec and the
  /// parameter level.  Returns nullopt and sets `error` on failure.
  [[nodiscard]] static std::optional<ScenarioSpec> from_json(
      const json::Value& doc, std::string* error = nullptr);

  /// Parse a ParamSet from a JSON object, validating against this spec
  /// (unknown keys rejected, missing keys filled from defaults).
  [[nodiscard]] std::optional<ParamSet> params_from_json(
      const json::Value& doc, std::string* error = nullptr) const;

 private:
  ScenarioSpec& add_param(ParamSpec p);

  std::string name_;
  std::string description_;
  std::vector<ParamSpec> params_;
};

}  // namespace leak::scenario
