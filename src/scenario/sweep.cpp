#include "src/scenario/sweep.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/runner/trial_runner.hpp"
#include "src/support/parse.hpp"
#include "src/support/random.hpp"
#include "src/support/table.hpp"

namespace leak::scenario {

std::optional<std::string> parse_sweep_axis(const ScenarioSpec& spec,
                                            std::string_view text,
                                            SweepAxis* out) {
  const auto eq = text.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return "malformed sweep \"" + std::string(text) +
           "\" (expected key=v1,v2,... or key=lo:hi:step)";
  }
  const std::string param(parse::trim(text.substr(0, eq)));
  const std::string_view body = text.substr(eq + 1);
  const ParamSpec* p = spec.find(param);
  if (p == nullptr) {
    return "unknown parameter \"" + param + "\" for scenario \"" +
           spec.name() + "\"" + spec.known_params_hint();
  }

  SweepAxis axis;
  axis.param = param;

  // Numeric grid form lo:hi:step (two ':' separators, no commas).
  const bool numeric = p->type == ParamType::kInt ||
                       p->type == ParamType::kDouble;
  if (numeric && body.find(':') != std::string_view::npos) {
    std::vector<std::string_view> pieces;
    std::size_t start = 0;
    for (;;) {
      const auto colon = body.find(':', start);
      pieces.push_back(body.substr(
          start,
          colon == std::string_view::npos ? std::string_view::npos
                                          : colon - start));
      if (colon == std::string_view::npos) break;
      start = colon + 1;
    }
    if (pieces.size() != 3) {
      return "grid sweep \"" + std::string(body) +
             "\" must be lo:hi:step";
    }
    const auto lo = parse::real(pieces[0]);
    const auto hi = parse::real(pieces[1]);
    const auto step = parse::real(pieces[2]);
    if (!lo || !hi || !step || *step <= 0.0) {
      return "grid sweep \"" + std::string(body) +
             "\" needs finite lo:hi and step > 0";
    }
    if (*hi < *lo) {
      return "grid sweep \"" + std::string(body) + "\" has hi < lo";
    }
    // Inclusive of hi up to half a step of float slack.
    const auto count =
        static_cast<std::size_t>(std::floor((*hi - *lo) / *step + 0.5)) + 1;
    if (count > 100000) {
      return "grid sweep \"" + std::string(body) + "\" expands to " +
             std::to_string(count) + " values (limit 100000)";
    }
    for (std::size_t i = 0; i < count; ++i) {
      const double x = *lo + static_cast<double>(i) * *step;
      if (x > *hi + 0.5 * *step) break;
      ParamValue v;
      if (p->type == ParamType::kInt) {
        const double rounded = std::round(x);
        if (std::fabs(rounded - x) > 1e-9) {
          return "grid sweep for int parameter \"" + param +
                 "\" produced non-integer " + Table::fmt_exact(x);
        }
        v = static_cast<std::int64_t>(rounded);
      } else {
        v = x;
      }
      // Range check through the spec's own validator.
      if (auto err = spec.parse_value(param, ParamSet::value_to_string(v),
                                      nullptr)) {
        return err;
      }
      axis.values.push_back(std::move(v));
    }
  } else {
    // Comma-list form.
    std::size_t start = 0;
    while (start <= body.size()) {
      const auto comma = body.find(',', start);
      const auto piece = body.substr(
          start, comma == std::string_view::npos ? std::string_view::npos
                                                 : comma - start);
      ParamValue v;
      if (auto err = spec.parse_value(param, piece, &v)) return err;
      axis.values.push_back(std::move(v));
      if (comma == std::string_view::npos) break;
      start = comma + 1;
    }
  }
  if (axis.values.empty()) {
    return "sweep over \"" + param + "\" has no values";
  }
  if (out != nullptr) *out = std::move(axis);
  return std::nullopt;
}

std::size_t sweep_cell_count(const std::vector<SweepAxis>& axes) {
  std::size_t n = 1;
  for (const auto& a : axes) n *= a.values.size();
  return n;
}

std::vector<ParamSet> expand_sweep(const ParamSet& base,
                                   const std::vector<SweepAxis>& axes) {
  const std::size_t n = sweep_cell_count(axes);
  std::vector<ParamSet> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ParamSet cell = base;
    // Row-major: the last axis varies fastest.
    std::size_t rem = i;
    for (std::size_t a = axes.size(); a-- > 0;) {
      const auto& axis = axes[a];
      cell.set(axis.param, axis.values[rem % axis.values.size()]);
      rem /= axis.values.size();
    }
    cells.push_back(std::move(cell));
  }
  return cells;
}

ParamSet sweep_cell_params(const ParamSet& base,
                           const std::vector<SweepAxis>& axes,
                           std::size_t index, bool vary_seed) {
  ParamSet cell = base;
  std::size_t rem = index;
  for (std::size_t a = axes.size(); a-- > 0;) {
    const auto& axis = axes[a];
    cell.set(axis.param, axis.values[rem % axis.values.size()]);
    rem /= axis.values.size();
  }
  if (vary_seed) {
    // An axis sweeping `seed` itself wins over the derived per-cell
    // seed (matching run_sweep's historical behaviour).
    bool axes_sweep_seed = false;
    for (const auto& a : axes) {
      if (a.param == "seed") axes_sweep_seed = true;
    }
    if (!axes_sweep_seed) {
      const StreamSeeder seeder(
          static_cast<std::uint64_t>(base.get_int("seed")));
      cell.set("seed",
               static_cast<std::int64_t>(seeder.seed_for(index) >> 1));
    }
  }
  return cell;
}

json::Value axes_to_json(const std::vector<SweepAxis>& axes) {
  json::Value doc = json::Value::array();
  for (const auto& a : axes) {
    json::Value one = json::Value::object();
    one.set("param", a.param);
    json::Value vals = json::Value::array();
    for (const auto& v : a.values) {
      std::visit([&vals](const auto& x) { vals.push_back(json::Value(x)); },
                 v);
    }
    one.set("values", std::move(vals));
    doc.push_back(std::move(one));
  }
  return doc;
}

std::optional<std::vector<SweepAxis>> axes_from_json(const ScenarioSpec& spec,
                                                     const json::Value& doc,
                                                     std::string* error) {
  const auto fail = [&](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
    return std::nullopt;
  };
  if (!doc.is_array()) return fail("\"axes\" must be an array");
  std::vector<SweepAxis> axes;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const json::Value& entry = doc.at(i);
    if (!entry.is_object()) {
      return fail("axes[" + std::to_string(i) + "] must be an object");
    }
    const json::Value* param = entry.find("param");
    const json::Value* values = entry.find("values");
    if (param == nullptr || !param->is_string() || values == nullptr ||
        !values->is_array()) {
      return fail("axes[" + std::to_string(i) +
                  "] needs a \"param\" string and a \"values\" array");
    }
    for (const auto& [key, unused] : entry.as_object()) {
      (void)unused;
      if (key != "param" && key != "values") {
        return fail("axes[" + std::to_string(i) + "]: unknown key \"" + key +
                    "\"");
      }
    }
    SweepAxis axis;
    axis.param = param->as_string();
    const ParamSpec* p = spec.find(axis.param);
    if (p == nullptr) {
      return fail("sweep axis \"" + axis.param +
                  "\" is not a parameter of scenario \"" + spec.name() +
                  "\"");
    }
    if (values->size() == 0) {
      return fail("sweep axis \"" + axis.param + "\" has no values");
    }
    for (std::size_t j = 0; j < values->size(); ++j) {
      const json::Value& v = values->at(j);
      ParamValue out;
      if (v.is_string() && p->type != ParamType::kString) {
        // Stringly-typed values (SweepResult::to_json archives) go
        // through the spec's own parser, same as the CLI would.
        if (auto err = spec.parse_value(axis.param, v.as_string(), &out)) {
          return fail(*err);
        }
        axis.values.push_back(std::move(out));
        continue;
      }
      switch (p->type) {
        case ParamType::kInt:
          if (!v.is_int()) {
            return fail("sweep axis \"" + axis.param + "\" value " +
                        std::to_string(j) + " must be an integer");
          }
          out = v.as_int();
          break;
        case ParamType::kDouble:
          if (!v.is_number()) {
            return fail("sweep axis \"" + axis.param + "\" value " +
                        std::to_string(j) + " must be a number");
          }
          out = v.as_double();
          break;
        case ParamType::kBool:
          if (!v.is_bool()) {
            return fail("sweep axis \"" + axis.param + "\" value " +
                        std::to_string(j) + " must be a bool");
          }
          out = v.as_bool();
          break;
        case ParamType::kString:
          if (!v.is_string()) {
            return fail("sweep axis \"" + axis.param + "\" value " +
                        std::to_string(j) + " must be a string");
          }
          out = v.as_string();
          break;
      }
      // Range/choice constraints through the spec's own validator.
      if (auto err = spec.parse_value(axis.param,
                                      ParamSet::value_to_string(out),
                                      nullptr)) {
        return fail(*err);
      }
      axis.values.push_back(std::move(out));
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

SweepResult run_sweep(const Scenario& scenario, const ParamSet& base,
                      std::vector<SweepAxis> axes,
                      const SweepConfig& config) {
  if (auto err = scenario.spec().validate(base)) {
    throw std::invalid_argument("sweep base: " + *err);
  }
  for (const auto& axis : axes) {
    if (axis.values.empty()) {
      throw std::invalid_argument("sweep axis \"" + axis.param +
                                  "\" has no values");
    }
    if (scenario.spec().find(axis.param) == nullptr) {
      throw std::invalid_argument("sweep axis \"" + axis.param +
                                  "\" is not a parameter of scenario \"" +
                                  scenario.spec().name() + "\"");
    }
  }

  SweepResult out;
  out.scenario = scenario.spec().name();
  out.axes = std::move(axes);
  // Cells come from the one canonical identity function — the same
  // one the serve job ledger uses — so a served cell re-runs
  // bit-identically to a foreground sweep cell.
  const std::size_t n = sweep_cell_count(out.axes);
  std::vector<ParamSet> cells;
  cells.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cells.push_back(
        sweep_cell_params(base, out.axes, i, config.vary_seed));
  }

  out.cells.resize(cells.size());
  if (config.parallel_cells && cells.size() > 1) {
    // Outer parallelism: cells fan across the pool, each cell pinned
    // to one inner thread.  Bit-identical to the sequential path by
    // the drivers' thread-count-invariance guarantee.
    std::vector<ParamSet> pinned = cells;
    for (auto& c : pinned) c.set("threads", std::int64_t{1});
    const runner::TrialRunner pool(config.threads);
    auto results = pool.run(cells.size(), [&](std::size_t i) {
      return scenario.run(pinned[i]);
    });
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out.cells[i].params = std::move(cells[i]);
      out.cells[i].result = std::move(results[i]);
    }
  } else {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out.cells[i].result = scenario.run(cells[i]);
      out.cells[i].params = std::move(cells[i]);
    }
  }
  return out;
}

namespace {

/// Summary table: swept params then the metric set of the first cell.
Table summary_table(const SweepResult& r) {
  std::vector<std::string> headers;
  for (const auto& a : r.axes) headers.push_back(a.param);
  if (!r.cells.empty()) {
    for (const auto& m : r.cells.front().result.metrics) {
      headers.push_back(m.first);
    }
  }
  if (headers.empty()) headers.push_back("cell");
  Table t(std::move(headers));
  for (const auto& cell : r.cells) {
    std::vector<std::string> row;
    for (const auto& a : r.axes) {
      const ParamValue* v = cell.params.find(a.param);
      row.push_back(v != nullptr ? ParamSet::value_to_string(*v) : "?");
    }
    for (const auto& m : r.cells.front().result.metrics) {
      row.push_back(cell.result.has_metric(m.first)
                        ? Table::fmt_exact(cell.result.metric(m.first))
                        : "?");
    }
    if (row.empty()) row.push_back("-");
    t.add_row(std::move(row));
  }
  return t;
}

}  // namespace

json::Value SweepResult::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("scenario", scenario);
  json::Value aj = json::Value::array();
  for (const auto& a : axes) {
    json::Value one = json::Value::object();
    one.set("param", a.param);
    json::Value vals = json::Value::array();
    for (const auto& v : a.values) {
      vals.push_back(ParamSet::value_to_string(v));
    }
    one.set("values", std::move(vals));
    aj.push_back(std::move(one));
  }
  doc.set("axes", std::move(aj));
  json::Value cj = json::Value::array();
  for (const auto& cell : cells) cj.push_back(cell.result.to_json());
  doc.set("cells", std::move(cj));
  return doc;
}

std::string SweepResult::to_csv() const {
  return summary_table(*this).to_csv();
}

std::string SweepResult::to_text() const {
  std::ostringstream os;
  os << "sweep: " << scenario << " (" << cells.size() << " cells";
  for (const auto& a : axes) {
    os << ", " << a.param << " x" << a.values.size();
  }
  os << ")\n";
  os << summary_table(*this).to_string();
  return os.str();
}

}  // namespace leak::scenario
