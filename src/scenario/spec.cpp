#include "src/scenario/spec.hpp"

#include <stdexcept>

#include "src/support/parse.hpp"
#include "src/support/table.hpp"

namespace leak::scenario {

namespace {

std::string join_choices(const std::vector<std::string>& choices) {
  std::string out;
  for (const auto& c : choices) {
    if (!out.empty()) out += "|";
    out += c;
  }
  return out;
}

}  // namespace

const char* param_type_name(ParamType t) {
  switch (t) {
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kBool:
      return "bool";
    case ParamType::kString:
      return "string";
  }
  return "?";
}

ParamType param_type_of(const ParamValue& v) {
  switch (v.index()) {
    case 0:
      return ParamType::kInt;
    case 1:
      return ParamType::kDouble;
    case 2:
      return ParamType::kBool;
    default:
      return ParamType::kString;
  }
}

// --- ParamSet -----------------------------------------------------------

void ParamSet::set(std::string name, ParamValue value) {
  for (auto& [n, v] : items_) {
    if (n == name) {
      v = std::move(value);
      return;
    }
  }
  items_.emplace_back(std::move(name), std::move(value));
}

const ParamValue* ParamSet::find(std::string_view name) const {
  for (const auto& [n, v] : items_) {
    if (n == name) return &v;
  }
  return nullptr;
}

namespace {

[[noreturn]] void missing_param(std::string_view name) {
  throw std::out_of_range("ParamSet: no parameter \"" + std::string(name) +
                          "\"");
}

[[noreturn]] void wrong_type(std::string_view name, const char* want,
                             ParamType got) {
  throw std::logic_error("ParamSet: parameter \"" + std::string(name) +
                         "\" is " + param_type_name(got) + ", wanted " +
                         want);
}

}  // namespace

std::int64_t ParamSet::get_int(std::string_view name) const {
  const ParamValue* v = find(name);
  if (v == nullptr) missing_param(name);
  if (const auto* i = std::get_if<std::int64_t>(v)) return *i;
  wrong_type(name, "int", param_type_of(*v));
}

double ParamSet::get_double(std::string_view name) const {
  const ParamValue* v = find(name);
  if (v == nullptr) missing_param(name);
  if (const auto* d = std::get_if<double>(v)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(v)) {
    return static_cast<double>(*i);
  }
  wrong_type(name, "double", param_type_of(*v));
}

bool ParamSet::get_bool(std::string_view name) const {
  const ParamValue* v = find(name);
  if (v == nullptr) missing_param(name);
  if (const auto* b = std::get_if<bool>(v)) return *b;
  wrong_type(name, "bool", param_type_of(*v));
}

const std::string& ParamSet::get_string(std::string_view name) const {
  const ParamValue* v = find(name);
  if (v == nullptr) missing_param(name);
  if (const auto* s = std::get_if<std::string>(v)) return *s;
  wrong_type(name, "string", param_type_of(*v));
}

std::string ParamSet::value_to_string(const ParamValue& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<std::int64_t>(v));
    case 1:
      return Table::fmt_exact(std::get<double>(v));
    case 2:
      return std::get<bool>(v) ? "true" : "false";
    default:
      return std::get<std::string>(v);
  }
}

json::Value ParamSet::to_json() const {
  json::Value obj = json::Value::object();
  for (const auto& [name, value] : items_) {
    switch (value.index()) {
      case 0:
        obj.set(name, std::get<std::int64_t>(value));
        break;
      case 1:
        obj.set(name, std::get<double>(value));
        break;
      case 2:
        obj.set(name, std::get<bool>(value));
        break;
      default:
        obj.set(name, std::get<std::string>(value));
        break;
    }
  }
  return obj;
}

// --- ScenarioSpec -------------------------------------------------------

ScenarioSpec::ScenarioSpec(std::string name, std::string description)
    : name_(std::move(name)), description_(std::move(description)) {
  if (name_.empty()) {
    throw std::invalid_argument("ScenarioSpec: empty name");
  }
}

ScenarioSpec& ScenarioSpec::add_param(ParamSpec p) {
  if (p.name.empty()) {
    throw std::invalid_argument("ScenarioSpec: empty parameter name");
  }
  if (find(p.name) != nullptr) {
    throw std::invalid_argument("ScenarioSpec: duplicate parameter \"" +
                                p.name + "\"");
  }
  params_.push_back(std::move(p));
  return *this;
}

ScenarioSpec& ScenarioSpec::add_int(std::string name, std::string description,
                                    std::int64_t default_value,
                                    std::optional<double> min_value,
                                    std::optional<double> max_value) {
  ParamSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.type = ParamType::kInt;
  p.default_value = default_value;
  p.min_value = min_value;
  p.max_value = max_value;
  return add_param(std::move(p));
}

ScenarioSpec& ScenarioSpec::add_double(std::string name,
                                       std::string description,
                                       double default_value,
                                       std::optional<double> min_value,
                                       std::optional<double> max_value) {
  ParamSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.type = ParamType::kDouble;
  p.default_value = default_value;
  p.min_value = min_value;
  p.max_value = max_value;
  return add_param(std::move(p));
}

ScenarioSpec& ScenarioSpec::add_bool(std::string name, std::string description,
                                     bool default_value) {
  ParamSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.type = ParamType::kBool;
  p.default_value = default_value;
  return add_param(std::move(p));
}

ScenarioSpec& ScenarioSpec::add_string(std::string name,
                                       std::string description,
                                       std::string default_value,
                                       std::vector<std::string> choices) {
  ParamSpec p;
  p.name = std::move(name);
  p.description = std::move(description);
  p.type = ParamType::kString;
  p.default_value = std::move(default_value);
  p.choices = std::move(choices);
  return add_param(std::move(p));
}

const ParamSpec* ScenarioSpec::find(std::string_view param) const {
  for (const auto& p : params_) {
    if (p.name == param) return &p;
  }
  return nullptr;
}

ParamSet ScenarioSpec::defaults() const {
  ParamSet out;
  for (const auto& p : params_) out.set(p.name, p.default_value);
  return out;
}

namespace {

/// Range/choices check for one value already known to match p.type.
std::optional<std::string> check_constraints(const ParamSpec& p,
                                             const ParamValue& v) {
  if (p.type == ParamType::kInt || p.type == ParamType::kDouble) {
    const double x = p.type == ParamType::kInt
                         ? static_cast<double>(std::get<std::int64_t>(v))
                         : std::get<double>(v);
    if (p.min_value && x < *p.min_value) {
      return "parameter \"" + p.name + "\": " + ParamSet::value_to_string(v) +
             " is below the minimum " + Table::fmt_exact(*p.min_value);
    }
    if (p.max_value && x > *p.max_value) {
      return "parameter \"" + p.name + "\": " + ParamSet::value_to_string(v) +
             " is above the maximum " + Table::fmt_exact(*p.max_value);
    }
  }
  if (p.type == ParamType::kString && !p.choices.empty()) {
    const auto& s = std::get<std::string>(v);
    for (const auto& c : p.choices) {
      if (c == s) return std::nullopt;
    }
    return "parameter \"" + p.name + "\": \"" + s + "\" is not one of " +
           join_choices(p.choices);
  }
  return std::nullopt;
}

}  // namespace

std::string ScenarioSpec::known_params_hint() const {
  std::string hint = " (known params: ";
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (i != 0) hint += ", ";
    hint += params_[i].name;
  }
  hint += ")";
  return hint;
}

std::optional<std::string> ScenarioSpec::parse_value(std::string_view param,
                                                     std::string_view text,
                                                     ParamValue* out) const {
  const ParamSpec* p = find(param);
  if (p == nullptr) {
    return "unknown parameter \"" + std::string(param) + "\" for scenario \"" +
           name_ + "\"" + known_params_hint();
  }
  ParamValue v;
  switch (p->type) {
    case ParamType::kInt: {
      const auto parsed = parse::i64(text);
      if (!parsed) {
        return "parameter \"" + p->name + "\": \"" + std::string(text) +
               "\" is not an integer";
      }
      v = *parsed;
      break;
    }
    case ParamType::kDouble: {
      const auto parsed = parse::real(text);
      if (!parsed) {
        return "parameter \"" + p->name + "\": \"" + std::string(text) +
               "\" is not a finite number";
      }
      v = *parsed;
      break;
    }
    case ParamType::kBool: {
      const auto parsed = parse::boolean(text);
      if (!parsed) {
        return "parameter \"" + p->name + "\": \"" + std::string(text) +
               "\" is not a boolean (true|false|1|0|yes|no|on|off)";
      }
      v = *parsed;
      break;
    }
    case ParamType::kString:
      v = std::string(parse::trim(text));
      break;
  }
  if (auto err = check_constraints(*p, v)) return err;
  if (out != nullptr) *out = std::move(v);
  return std::nullopt;
}

std::optional<std::string> ScenarioSpec::apply_kv(std::string_view kv,
                                                  ParamSet* params) const {
  const auto eq = kv.find('=');
  if (eq == std::string_view::npos || eq == 0) {
    return "malformed assignment \"" + std::string(kv) +
           "\" (expected key=value)";
  }
  const std::string_view key = parse::trim(kv.substr(0, eq));
  const std::string_view text = kv.substr(eq + 1);
  ParamValue v;
  if (auto err = parse_value(key, text, &v)) return err;
  params->set(std::string(key), std::move(v));
  return std::nullopt;
}

std::optional<std::string> ScenarioSpec::validate(
    const ParamSet& params) const {
  for (const auto& [name, value] : params.items()) {
    const ParamSpec* p = find(name);
    if (p == nullptr) {
      return "unknown parameter \"" + name + "\" for scenario \"" + name_ +
             "\"" + known_params_hint();
    }
    if (param_type_of(value) != p->type) {
      return "parameter \"" + name + "\": expected " +
             param_type_name(p->type) + ", got " +
             param_type_name(param_type_of(value));
    }
    if (auto err = check_constraints(*p, value)) return err;
  }
  for (const auto& p : params_) {
    if (!params.contains(p.name)) {
      return "missing parameter \"" + p.name + "\"";
    }
  }
  return std::nullopt;
}

json::Value ScenarioSpec::to_json() const {
  json::Value doc = json::Value::object();
  doc.set("name", name_);
  doc.set("description", description_);
  json::Value params = json::Value::array();
  for (const auto& p : params_) {
    json::Value pj = json::Value::object();
    pj.set("name", p.name);
    pj.set("type", param_type_name(p.type));
    pj.set("description", p.description);
    switch (p.type) {
      case ParamType::kInt:
        pj.set("default", std::get<std::int64_t>(p.default_value));
        break;
      case ParamType::kDouble:
        pj.set("default", std::get<double>(p.default_value));
        break;
      case ParamType::kBool:
        pj.set("default", std::get<bool>(p.default_value));
        break;
      case ParamType::kString:
        pj.set("default", std::get<std::string>(p.default_value));
        break;
    }
    if (p.min_value) pj.set("min", *p.min_value);
    if (p.max_value) pj.set("max", *p.max_value);
    if (!p.choices.empty()) {
      json::Value cj = json::Value::array();
      for (const auto& c : p.choices) cj.push_back(c);
      pj.set("choices", std::move(cj));
    }
    params.push_back(std::move(pj));
  }
  doc.set("params", std::move(params));
  return doc;
}

namespace {

std::optional<std::string> reject_unknown_keys(
    const json::Value& obj, std::initializer_list<std::string_view> known,
    const char* where) {
  for (const auto& [key, value] : obj.as_object()) {
    bool ok = false;
    for (const auto k : known) ok = ok || key == k;
    if (!ok) {
      return std::string("unknown key \"") + key + "\" in " + where;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<ScenarioSpec> ScenarioSpec::from_json(const json::Value& doc,
                                                    std::string* error) {
  const auto fail = [&](const std::string& msg) -> std::optional<ScenarioSpec> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("spec document is not an object");
  if (auto err = reject_unknown_keys(doc, {"name", "description", "params"},
                                     "spec")) {
    return fail(*err);
  }
  const json::Value* name = doc.find("name");
  const json::Value* desc = doc.find("description");
  const json::Value* params = doc.find("params");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail("spec requires a non-empty string \"name\"");
  }
  if (desc == nullptr || !desc->is_string()) {
    return fail("spec requires a string \"description\"");
  }
  if (params == nullptr || !params->is_array()) {
    return fail("spec requires an array \"params\"");
  }
  ScenarioSpec spec(name->as_string(), desc->as_string());
  for (const auto& pj : params->as_array()) {
    if (!pj.is_object()) return fail("param entry is not an object");
    if (auto err = reject_unknown_keys(
            pj, {"name", "type", "description", "default", "min", "max",
                 "choices"},
            "param entry")) {
      return fail(*err);
    }
    const json::Value* pname = pj.find("name");
    const json::Value* ptype = pj.find("type");
    const json::Value* pdesc = pj.find("description");
    const json::Value* pdef = pj.find("default");
    if (pname == nullptr || !pname->is_string() || ptype == nullptr ||
        !ptype->is_string() || pdef == nullptr) {
      return fail("param entry requires name, type, and default");
    }
    const std::string& type = ptype->as_string();
    const std::string description =
        pdesc != nullptr && pdesc->is_string() ? pdesc->as_string() : "";
    const json::Value* pmin = pj.find("min");
    const json::Value* pmax = pj.find("max");
    std::optional<double> min_value, max_value;
    if (pmin != nullptr) {
      if (!pmin->is_number()) return fail("param \"min\" must be numeric");
      min_value = pmin->as_double();
    }
    if (pmax != nullptr) {
      if (!pmax->is_number()) return fail("param \"max\" must be numeric");
      max_value = pmax->as_double();
    }
    try {
      if (type == "int") {
        if (!pdef->is_int()) return fail("int param needs an integer default");
        spec.add_int(pname->as_string(), description, pdef->as_int(),
                     min_value, max_value);
      } else if (type == "double") {
        if (!pdef->is_number()) {
          return fail("double param needs a numeric default");
        }
        spec.add_double(pname->as_string(), description, pdef->as_double(),
                        min_value, max_value);
      } else if (type == "bool") {
        if (!pdef->is_bool()) return fail("bool param needs a bool default");
        spec.add_bool(pname->as_string(), description, pdef->as_bool());
      } else if (type == "string") {
        if (!pdef->is_string()) {
          return fail("string param needs a string default");
        }
        std::vector<std::string> choices;
        if (const json::Value* cj = pj.find("choices")) {
          if (!cj->is_array()) return fail("param \"choices\" must be array");
          for (const auto& c : cj->as_array()) {
            if (!c.is_string()) return fail("choices must be strings");
            choices.push_back(c.as_string());
          }
        }
        spec.add_string(pname->as_string(), description, pdef->as_string(),
                        std::move(choices));
      } else {
        return fail("unknown param type \"" + type + "\"");
      }
    } catch (const std::invalid_argument& e) {
      return fail(e.what());
    }
  }
  return spec;
}

std::optional<ParamSet> ScenarioSpec::params_from_json(
    const json::Value& doc, std::string* error) const {
  const auto fail = [&](const std::string& msg) -> std::optional<ParamSet> {
    if (error != nullptr) *error = msg;
    return std::nullopt;
  };
  if (!doc.is_object()) return fail("params document is not an object");
  ParamSet out = defaults();
  for (const auto& [key, value] : doc.as_object()) {
    const ParamSpec* p = find(key);
    if (p == nullptr) {
      return fail("unknown parameter \"" + key + "\" for scenario \"" +
                  name_ + "\"" + known_params_hint());
    }
    ParamValue v;
    switch (p->type) {
      case ParamType::kInt:
        if (!value.is_int()) {
          return fail("parameter \"" + key + "\" must be an integer");
        }
        v = value.as_int();
        break;
      case ParamType::kDouble:
        if (!value.is_number()) {
          return fail("parameter \"" + key + "\" must be numeric");
        }
        v = value.as_double();
        break;
      case ParamType::kBool:
        if (!value.is_bool()) {
          return fail("parameter \"" + key + "\" must be a boolean");
        }
        v = value.as_bool();
        break;
      case ParamType::kString:
        if (!value.is_string()) {
          return fail("parameter \"" + key + "\" must be a string");
        }
        v = value.as_string();
        break;
    }
    if (auto err = check_constraints(*p, v)) return fail(*err);
    out.set(key, std::move(v));
  }
  return out;
}

}  // namespace leak::scenario
